#include "shape/shape.h"

#include <gtest/gtest.h>

#include <cmath>

#include "shape/delta_shape.h"
#include "tests/test_util.h"

namespace avm {
namespace {

TEST(ShapeTest, EmptyShape) {
  Shape s(2);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.Contains({0, 0}));
}

TEST(ShapeTest, FromOffsetsDeduplicates) {
  auto s = Shape::FromOffsets(2, {{0, 0}, {0, 1}, {0, 0}});
  ASSERT_OK(s.status());
  EXPECT_EQ(s->size(), 2u);
}

TEST(ShapeTest, FromOffsetsRejectsArityMismatch) {
  EXPECT_TRUE(
      Shape::FromOffsets(2, {{0, 0, 0}}).status().IsInvalidArgument());
}

TEST(ShapeTest, L1RadiusOneIsTheFiveCellCross) {
  const Shape s = Shape::L1Ball(2, 1);
  EXPECT_EQ(s.size(), 5u);  // the paper's L1(1) cross
  EXPECT_TRUE(s.Contains({0, 0}));
  EXPECT_TRUE(s.Contains({1, 0}));
  EXPECT_TRUE(s.Contains({-1, 0}));
  EXPECT_TRUE(s.Contains({0, 1}));
  EXPECT_TRUE(s.Contains({0, -1}));
  EXPECT_FALSE(s.Contains({1, 1}));
}

TEST(ShapeTest, L1SizesFollowDiamondNumbers) {
  EXPECT_EQ(Shape::L1Ball(2, 0).size(), 1u);
  EXPECT_EQ(Shape::L1Ball(2, 2).size(), 13u);
  EXPECT_EQ(Shape::L1Ball(2, 3).size(), 25u);
}

TEST(ShapeTest, LinfIsTheFullSquare) {
  const Shape s = Shape::LinfBall(2, 1);
  EXPECT_EQ(s.size(), 9u);
  EXPECT_EQ(Shape::LinfBall(2, 2).size(), 25u);  // the paper's L∞(2)
  EXPECT_TRUE(s.Contains({1, 1}));
  EXPECT_TRUE(s.Contains({-1, 1}));
}

TEST(ShapeTest, L2BallMatchesEuclideanPredicate) {
  const Shape s = Shape::L2Ball(2, 2.0);
  for (int64_t x = -3; x <= 3; ++x) {
    for (int64_t y = -3; y <= 3; ++y) {
      const bool in = std::sqrt(static_cast<double>(x * x + y * y)) <= 2.0;
      EXPECT_EQ(s.Contains({x, y}), in) << x << "," << y;
    }
  }
}

TEST(ShapeTest, ExcludeCenter) {
  const Shape s = Shape::L1Ball(2, 1, {}, /*include_center=*/false);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_FALSE(s.Contains({0, 0}));
}

TEST(ShapeTest, DimSubsetConfinesOffsets) {
  // L1(1) on dims {1,2} of a 3-D array: offsets are zero on dim 0.
  const Shape s = Shape::L1Ball(3, 1, {1, 2});
  EXPECT_EQ(s.size(), 5u);
  for (const auto& o : s.offsets()) EXPECT_EQ(o[0], 0);
}

TEST(ShapeTest, HammingBallCountsNonzeroComponents) {
  const Shape s = Shape::HammingBall(2, 1, 2);
  // At most 1 nonzero component, each within [-2, 2]: center + 2*4 = 9.
  EXPECT_EQ(s.size(), 9u);
  EXPECT_TRUE(s.Contains({2, 0}));
  EXPECT_FALSE(s.Contains({1, 1}));
}

TEST(ShapeTest, WindowSpansRange) {
  const Shape s = Shape::Window(3, 0, -4, 0);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_TRUE(s.Contains({-4, 0, 0}));
  EXPECT_TRUE(s.Contains({0, 0, 0}));
  EXPECT_FALSE(s.Contains({1, 0, 0}));
  EXPECT_FALSE(s.Contains({-5, 0, 0}));
}

TEST(ShapeTest, MinkowskiSumBuildsProductShapes) {
  // The PTF-5 construction: a spatial cross times a time window.
  const Shape spatial = Shape::L1Ball(3, 1, {1, 2});
  const Shape window = Shape::Window(3, 0, -2, 0);
  auto product = Shape::MinkowskiSum(spatial, window);
  ASSERT_OK(product.status());
  EXPECT_EQ(product->size(), 15u);
  EXPECT_TRUE(product->Contains({-2, 1, 0}));
  EXPECT_TRUE(product->Contains({0, 0, 0}));
  EXPECT_FALSE(product->Contains({-3, 0, 0}));
  EXPECT_FALSE(product->Contains({-1, 1, 1}));
}

TEST(ShapeTest, MinkowskiSumRejectsDimMismatch) {
  EXPECT_TRUE(Shape::MinkowskiSum(Shape::L1Ball(2, 1), Shape::L1Ball(3, 1))
                  .status()
                  .IsInvalidArgument());
}

TEST(ShapeTest, BoundingBox) {
  const Shape s = Shape::L1Ball(2, 3);
  const Box box = s.BoundingBox();
  EXPECT_EQ(box.lo, (CellCoord{-3, -3}));
  EXPECT_EQ(box.hi, (CellCoord{3, 3}));
}

TEST(ShapeTest, BoundingBoxOfAsymmetricWindow) {
  const Shape s = Shape::Window(2, 0, -5, -1);
  const Box box = s.BoundingBox();
  EXPECT_EQ(box.lo[0], -5);
  EXPECT_EQ(box.hi[0], -1);
}

TEST(ShapeTest, SymmetryDetection) {
  EXPECT_TRUE(Shape::L1Ball(2, 2).IsSymmetric());
  EXPECT_TRUE(Shape::LinfBall(2, 1).IsSymmetric());
  EXPECT_FALSE(Shape::Window(2, 0, -3, 0).IsSymmetric());
}

TEST(ShapeTest, ReflectedNegatesOffsets) {
  const Shape s = Shape::Window(2, 0, -3, -1);
  const Shape r = s.Reflected();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.Contains({1, 0}));
  EXPECT_TRUE(r.Contains({3, 0}));
  EXPECT_FALSE(r.Contains({-1, 0}));
}

TEST(ShapeTest, ReflectionIsInvolution) {
  const Shape s = Shape::Window(3, 0, -7, 2);
  EXPECT_EQ(s.Reflected().Reflected(), s);
}

TEST(ShapeTest, SymmetricShapeEqualsItsReflection) {
  const Shape s = Shape::L1Ball(2, 2);
  EXPECT_EQ(s.Reflected(), s);
}

TEST(ShapeTest, SetAlgebra) {
  const Shape l1 = Shape::L1Ball(2, 1);
  const Shape linf = Shape::LinfBall(2, 1);
  auto uni = Shape::Union(l1, linf);
  auto inter = Shape::Intersection(l1, linf);
  auto diff = Shape::Difference(linf, l1);
  ASSERT_OK(uni.status());
  ASSERT_OK(inter.status());
  ASSERT_OK(diff.status());
  EXPECT_EQ(uni->size(), 9u);    // L1(1) ⊂ L∞(1)
  EXPECT_EQ(inter->size(), 5u);
  EXPECT_EQ(diff->size(), 4u);   // the four corners
  EXPECT_TRUE(diff->Contains({1, 1}));
  EXPECT_FALSE(diff->Contains({1, 0}));
}

TEST(DeltaShapeTest, PaperFigure4bLinf1FromL1_1) {
  // ∆(L∞(1) query from L1(1) view): |plus| = 4 corners, |minus| = 0.
  auto delta = ComputeDeltaShape(Shape::L1Ball(2, 1), Shape::LinfBall(2, 1));
  ASSERT_OK(delta.status());
  EXPECT_EQ(delta->plus.size(), 4u);
  EXPECT_EQ(delta->minus.size(), 0u);
  EXPECT_EQ(delta->size(), 4u);
}

TEST(DeltaShapeTest, PaperFigure4bLinf1FromLinf2) {
  // ∆(L∞(1) query from L∞(2) view): 25 - 9 = 16 retractions, ratio 16/9.
  auto delta = ComputeDeltaShape(Shape::LinfBall(2, 2), Shape::LinfBall(2, 1));
  ASSERT_OK(delta.status());
  EXPECT_EQ(delta->plus.size(), 0u);
  EXPECT_EQ(delta->minus.size(), 16u);
}

TEST(DeltaShapeTest, IdenticalShapesGiveEmptyDelta) {
  auto delta = ComputeDeltaShape(Shape::L1Ball(2, 2), Shape::L1Ball(2, 2));
  ASSERT_OK(delta.status());
  EXPECT_TRUE(delta->empty());
}

TEST(DeltaShapeTest, RejectsDimMismatch) {
  EXPECT_TRUE(ComputeDeltaShape(Shape::L1Ball(2, 1), Shape::L1Ball(3, 1))
                  .status()
                  .IsInvalidArgument());
}

// Property sweep: |view| - |minus| + |plus| == |query| for any shape pair.
class DeltaShapeProperty
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(DeltaShapeProperty, SizesAreConsistent) {
  const auto [vr, qr] = GetParam();
  const Shape view = Shape::L1Ball(2, vr);
  const Shape query = Shape::LinfBall(2, qr);
  auto delta = ComputeDeltaShape(view, query);
  ASSERT_OK(delta.status());
  EXPECT_EQ(view.size() - delta->minus.size() + delta->plus.size(),
            query.size());
  // plus ∩ view = ∅ and minus ⊂ view.
  for (const auto& o : delta->plus.offsets()) EXPECT_FALSE(view.Contains(o));
  for (const auto& o : delta->minus.offsets()) EXPECT_TRUE(view.Contains(o));
}

INSTANTIATE_TEST_SUITE_P(
    Radii, DeltaShapeProperty,
    ::testing::Values(std::pair<int64_t, int64_t>{1, 1},
                      std::pair<int64_t, int64_t>{1, 2},
                      std::pair<int64_t, int64_t>{2, 1},
                      std::pair<int64_t, int64_t>{3, 2},
                      std::pair<int64_t, int64_t>{2, 3},
                      std::pair<int64_t, int64_t>{0, 2}));

TEST(ShapeTest, ToStringIsDeterministic) {
  const Shape s = Shape::L1Ball(2, 1);
  EXPECT_EQ(s.ToString(), s.ToString());
  EXPECT_NE(s.ToString().find("(0,0)"), std::string::npos);
}

}  // namespace
}  // namespace avm
