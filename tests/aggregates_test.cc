#include "agg/aggregates.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "agg/state_utils.h"
#include "common/check.h"
#include "tests/test_util.h"

namespace avm {
namespace {

AggregateLayout MakeLayout(std::vector<AggregateSpec> specs,
                           size_t num_attrs = 2) {
  auto layout = AggregateLayout::Create(std::move(specs), num_attrs);
  AVM_CHECK(layout.ok());
  return std::move(layout).value();
}

TEST(AggregateLayoutTest, RejectsEmptySpecs) {
  EXPECT_TRUE(AggregateLayout::Create({}, 1).status().IsInvalidArgument());
}

TEST(AggregateLayoutTest, RejectsOutOfRangeAttr) {
  EXPECT_TRUE(AggregateLayout::Create({{AggregateFunction::kSum, 5, "s"}}, 2)
                  .status()
                  .IsInvalidArgument());
}

TEST(AggregateLayoutTest, CountIgnoresAttrIndex) {
  EXPECT_OK(AggregateLayout::Create({{AggregateFunction::kCount, 99, "c"}}, 0)
                .status());
}

TEST(AggregateLayoutTest, SlotLayoutAvgTakesTwo) {
  const auto layout = MakeLayout({{AggregateFunction::kCount, 0, "c"},
                                  {AggregateFunction::kAvg, 1, "a"},
                                  {AggregateFunction::kSum, 0, "s"}});
  EXPECT_EQ(layout.num_state_slots(), 4u);
  EXPECT_EQ(layout.slot_of(0), 0u);
  EXPECT_EQ(layout.slot_of(1), 1u);
  EXPECT_EQ(layout.slot_of(2), 3u);
}

TEST(AggregateLayoutTest, DefaultOutputNames) {
  auto layout = AggregateLayout::Create({{AggregateFunction::kSum, 1, ""}}, 2);
  ASSERT_OK(layout.status());
  EXPECT_EQ(layout->specs()[0].output_name, "SUM_1");
}

TEST(AggregateLayoutTest, StateAttributesExpandAvg) {
  const auto layout = MakeLayout({{AggregateFunction::kAvg, 0, "avg_b"}});
  const auto attrs = layout.StateAttributes();
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].name, "avg_b.sum");
  EXPECT_EQ(attrs[1].name, "avg_b.count");
}

TEST(AggregateStateTest, CountUpdateMergeFinalize) {
  const auto layout = MakeLayout({{AggregateFunction::kCount, 0, "c"}});
  std::vector<double> s1(1), s2(1), out(1);
  layout.InitState(s1);
  layout.InitState(s2);
  const double row[2] = {3.0, 4.0};
  ASSERT_OK(layout.UpdateState(s1, row, 1));
  ASSERT_OK(layout.UpdateState(s1, row, 1));
  ASSERT_OK(layout.UpdateState(s2, row, 1));
  layout.MergeState(s1, s2);
  layout.Finalize(s1, out);
  EXPECT_EQ(out[0], 3.0);
}

TEST(AggregateStateTest, CountRetraction) {
  const auto layout = MakeLayout({{AggregateFunction::kCount, 0, "c"}});
  std::vector<double> s(1), out(1);
  layout.InitState(s);
  const double row[2] = {1.0, 1.0};
  ASSERT_OK(layout.UpdateState(s, row, 1));
  ASSERT_OK(layout.UpdateState(s, row, 1));
  ASSERT_OK(layout.UpdateState(s, row, -1));
  layout.Finalize(s, out);
  EXPECT_EQ(out[0], 1.0);
}

TEST(AggregateStateTest, SumTracksAttribute) {
  const auto layout = MakeLayout({{AggregateFunction::kSum, 1, "s"}});
  std::vector<double> s(1), out(1);
  layout.InitState(s);
  const double r1[2] = {1.0, 10.0};
  const double r2[2] = {2.0, 32.0};
  ASSERT_OK(layout.UpdateState(s, r1, 1));
  ASSERT_OK(layout.UpdateState(s, r2, 1));
  layout.Finalize(s, out);
  EXPECT_EQ(out[0], 42.0);
  ASSERT_OK(layout.UpdateState(s, r1, -1));
  layout.Finalize(s, out);
  EXPECT_EQ(out[0], 32.0);
}

TEST(AggregateStateTest, AvgIsExactUnderMerge) {
  const auto layout = MakeLayout({{AggregateFunction::kAvg, 0, "a"}});
  std::vector<double> s1(2), s2(2), out(1);
  layout.InitState(s1);
  layout.InitState(s2);
  const double r1[2] = {10.0, 0}, r2[2] = {20.0, 0}, r3[2] = {60.0, 0};
  ASSERT_OK(layout.UpdateState(s1, r1, 1));
  ASSERT_OK(layout.UpdateState(s2, r2, 1));
  ASSERT_OK(layout.UpdateState(s2, r3, 1));
  layout.MergeState(s1, s2);
  layout.Finalize(s1, out);
  EXPECT_EQ(out[0], 30.0);
}

TEST(AggregateStateTest, AvgOfNothingIsNaN) {
  const auto layout = MakeLayout({{AggregateFunction::kAvg, 0, "a"}});
  std::vector<double> s(2), out(1);
  layout.InitState(s);
  layout.Finalize(s, out);
  EXPECT_TRUE(std::isnan(out[0]));
}

TEST(AggregateStateTest, MinMaxTrackExtremes) {
  const auto layout = MakeLayout({{AggregateFunction::kMin, 0, "mn"},
                                  {AggregateFunction::kMax, 0, "mx"}});
  std::vector<double> s(2), out(2);
  layout.InitState(s);
  for (double v : {5.0, -2.0, 9.0, 1.0}) {
    const double row[2] = {v, 0};
    ASSERT_OK(layout.UpdateState(s, row, 1));
  }
  layout.Finalize(s, out);
  EXPECT_EQ(out[0], -2.0);
  EXPECT_EQ(out[1], 9.0);
}

TEST(AggregateStateTest, MinMaxIdentitiesAreInfinite) {
  const auto layout = MakeLayout({{AggregateFunction::kMin, 0, "mn"},
                                  {AggregateFunction::kMax, 0, "mx"}});
  std::vector<double> s(2), out(2);
  layout.InitState(s);
  layout.Finalize(s, out);
  EXPECT_EQ(out[0], std::numeric_limits<double>::infinity());
  EXPECT_EQ(out[1], -std::numeric_limits<double>::infinity());
}

TEST(AggregateStateTest, MinMaxRejectRetraction) {
  const auto layout = MakeLayout({{AggregateFunction::kMin, 0, "mn"}});
  std::vector<double> s(1);
  layout.InitState(s);
  const double row[2] = {1.0, 0};
  EXPECT_TRUE(layout.UpdateState(s, row, -1).IsFailedPrecondition());
}

TEST(AggregateStateTest, RetractionSupportFlag) {
  EXPECT_TRUE(MakeLayout({{AggregateFunction::kCount, 0, "c"},
                          {AggregateFunction::kSum, 0, "s"},
                          {AggregateFunction::kAvg, 0, "a"}})
                  .SupportsRetraction());
  EXPECT_FALSE(MakeLayout({{AggregateFunction::kCount, 0, "c"},
                           {AggregateFunction::kMax, 0, "m"}})
                   .SupportsRetraction());
}

TEST(AggregateStateTest, MinMergeTakesSmaller) {
  const auto layout = MakeLayout({{AggregateFunction::kMin, 0, "mn"}});
  std::vector<double> s1(1), s2(1);
  layout.InitState(s1);
  layout.InitState(s2);
  const double r1[2] = {4.0, 0}, r2[2] = {2.0, 0};
  ASSERT_OK(layout.UpdateState(s1, r1, 1));
  ASSERT_OK(layout.UpdateState(s2, r2, 1));
  layout.MergeState(s1, s2);
  EXPECT_EQ(s1[0], 2.0);
}

TEST(AggregateStateTest, IsIdentityDetection) {
  const auto layout = MakeLayout({{AggregateFunction::kCount, 0, "c"},
                                  {AggregateFunction::kAvg, 0, "a"}});
  std::vector<double> s(3);
  layout.InitState(s);
  EXPECT_TRUE(layout.IsIdentity(s));
  const double row[2] = {1.0, 0};
  ASSERT_OK(layout.UpdateState(s, row, 1));
  EXPECT_FALSE(layout.IsIdentity(s));
  ASSERT_OK(layout.UpdateState(s, row, -1));
  EXPECT_TRUE(layout.IsIdentity(s));
}

TEST(AggregateStateTest, MergeOfIdentityIsNoop) {
  const auto layout = MakeLayout({{AggregateFunction::kSum, 0, "s"},
                                  {AggregateFunction::kMax, 1, "m"}});
  std::vector<double> s(2), identity(2);
  layout.InitState(s);
  layout.InitState(identity);
  const double row[2] = {3.0, 7.0};
  ASSERT_OK(layout.UpdateState(s, row, 1));
  std::vector<double> before = s;
  layout.MergeState(s, identity);
  EXPECT_EQ(s, before);
}

TEST(AggregateFunctionNameTest, Names) {
  EXPECT_EQ(AggregateFunctionName(AggregateFunction::kCount), "COUNT");
  EXPECT_EQ(AggregateFunctionName(AggregateFunction::kAvg), "AVG");
}

TEST(StripIdentityCellsTest, RemovesOnlyIdentityCells) {
  const auto layout = MakeLayout({{AggregateFunction::kCount, 0, "c"}}, 1);
  auto schema = ArraySchema::Create("S", {{"x", 1, 10, 5}}, {{"c"}});
  ASSERT_OK(schema.status());
  SparseArray states(schema.value());
  ASSERT_OK(states.Set({1}, std::vector<double>{0.0}));  // identity
  ASSERT_OK(states.Set({2}, std::vector<double>{3.0}));
  ASSERT_OK(states.Set({3}, std::vector<double>{0.0}));  // identity
  auto removed = StripIdentityCells(&states, layout);
  ASSERT_OK(removed.status());
  EXPECT_EQ(*removed, 2u);
  EXPECT_EQ(states.NumCells(), 1u);
  EXPECT_TRUE(states.Has({2}));
}

TEST(StripIdentityCellsTest, RejectsLayoutMismatch) {
  const auto layout = MakeLayout({{AggregateFunction::kAvg, 0, "a"}}, 1);
  auto schema = ArraySchema::Create("S", {{"x", 1, 10, 5}}, {{"c"}});
  ASSERT_OK(schema.status());
  SparseArray states(schema.value());
  EXPECT_TRUE(
      StripIdentityCells(&states, layout).status().IsInvalidArgument());
}

}  // namespace
}  // namespace avm
