#include "common/mutex.h"

#include <gtest/gtest.h>

#include <string>

#include "common/check.h"

// ThreadSanitizer has its own lock-order-inversion detector, which
// (correctly) flags the deliberately inverted schedules in the Release
// branches below. Those branches exist to prove the rank checker compiles
// out, not to exercise TSan, so they skip under it.
#if defined(__SANITIZE_THREAD__)
#define AVM_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AVM_TEST_UNDER_TSAN 1
#endif
#endif
#ifndef AVM_TEST_UNDER_TSAN
#define AVM_TEST_UNDER_TSAN 0
#endif

namespace avm {
namespace {

constexpr bool kUnderTsan = AVM_TEST_UNDER_TSAN != 0;

// The runtime half of the concurrency-correctness story (the static half is
// the clang -Wthread-safety CI leg): in Debug builds every acquisition must
// have a rank strictly greater than every lock the thread already holds.
// Release builds compile the tracking out, so the same schedules must run
// silently there — these tests assert both behaviors from one source.

TEST(LockRankTest, AscendingAcquisitionPassesInEveryBuildMode) {
  Mutex low{"rank_test.low", LockRank::kChunkStore};
  Mutex high{"rank_test.high", LockRank::kEpochManager};
  MutexLock outer(low);
  MutexLock inner(high);
  SUCCEED();
}

TEST(LockRankTest, RankResetsOnceTheLockIsReleased) {
  Mutex low{"rank_test.low", LockRank::kChunkStore};
  Mutex high{"rank_test.high", LockRank::kEpochManager};
  // high then low is fine when they are never held together.
  {
    MutexLock lock(high);
  }
  {
    MutexLock lock(low);
  }
  SUCCEED();
}

TEST(LockRankTest, DescendingAcquisitionFiresWithBothLockNames) {
  Mutex low{"rank_test.low", LockRank::kChunkStore};
  Mutex high{"rank_test.high", LockRank::kEpochManager};
  MutexLock hold(high);
  if constexpr (kDebugChecksEnabled) {
    ScopedThrowingCheckHandler guard;
    try {
      low.Lock();
      low.Unlock();
      FAIL() << "descending-rank acquisition did not fire";
    } catch (const CheckFailedError& error) {
      // The diagnostic must identify the offending acquisition AND what the
      // thread already held — that pair is the whole debugging value.
      const std::string what = error.what();
      EXPECT_NE(what.find("rank_test.low"), std::string::npos) << what;
      EXPECT_NE(what.find("rank_test.high"), std::string::npos) << what;
    }
  } else if (!kUnderTsan) {
    // Release: the bookkeeping is compiled out; the same schedule is silent.
    low.Lock();
    low.Unlock();
  }
}

TEST(LockRankTest, EqualRankIsAnOrderViolation) {
  // Two leaf locks promise they are each the *last* lock acquired; holding
  // both at once breaks that promise (and is how ABBA deadlocks start).
  Mutex first{"rank_test.leaf_a"};
  Mutex second{"rank_test.leaf_b"};
  MutexLock hold(first);
  if constexpr (kDebugChecksEnabled) {
    ScopedThrowingCheckHandler guard;
    try {
      second.Lock();
      second.Unlock();
      FAIL() << "equal-rank acquisition did not fire";
    } catch (const CheckFailedError& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find("rank_test.leaf_a"), std::string::npos) << what;
      EXPECT_NE(what.find("rank_test.leaf_b"), std::string::npos) << what;
    }
  } else if (!kUnderTsan) {
    second.Lock();
    second.Unlock();
  }
}

TEST(LockRankTest, ReleasingAnUnheldLockFiresInDebug) {
  Mutex mu{"rank_test.unheld"};
  if constexpr (kDebugChecksEnabled) {
    ScopedThrowingCheckHandler guard;
    EXPECT_THROW(mutex_internal::RecordRelease(mu), CheckFailedError);
  }
}

}  // namespace
}  // namespace avm
