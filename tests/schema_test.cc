#include "array/schema.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace avm {
namespace {

TEST(DimensionSpecTest, ExtentAndChunks) {
  DimensionSpec d{"i", 1, 6, 2};
  EXPECT_EQ(d.Extent(), 6);
  EXPECT_EQ(d.NumChunks(), 3);
}

TEST(DimensionSpecTest, RaggedLastChunk) {
  DimensionSpec d{"i", 1, 7, 2};
  EXPECT_EQ(d.NumChunks(), 4);
}

TEST(DimensionSpecTest, NonUnitOrigin) {
  DimensionSpec d{"i", 5, 14, 5};
  EXPECT_EQ(d.Extent(), 10);
  EXPECT_EQ(d.NumChunks(), 2);
}

TEST(ArraySchemaTest, CreateValid) {
  auto schema = ArraySchema::Create("A", {{"i", 1, 6, 2}, {"j", 1, 8, 2}},
                                    {{"r"}, {"s"}});
  ASSERT_OK(schema.status());
  EXPECT_EQ(schema->num_dims(), 2u);
  EXPECT_EQ(schema->num_attrs(), 2u);
  EXPECT_EQ(schema->name(), "A");
}

TEST(ArraySchemaTest, RejectsNoDims) {
  EXPECT_TRUE(ArraySchema::Create("A", {}, {}).status().IsInvalidArgument());
}

TEST(ArraySchemaTest, RejectsBadRange) {
  EXPECT_TRUE(ArraySchema::Create("A", {{"i", 5, 4, 2}}, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(ArraySchemaTest, RejectsZeroChunkExtent) {
  EXPECT_TRUE(ArraySchema::Create("A", {{"i", 1, 4, 0}}, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(ArraySchemaTest, RejectsDuplicateNames) {
  EXPECT_TRUE(ArraySchema::Create("A", {{"i", 1, 4, 2}, {"i", 1, 4, 2}}, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ArraySchema::Create("A", {{"i", 1, 4, 2}}, {{"i"}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ArraySchema::Create("A", {{"i", 1, 4, 2}}, {{"r"}, {"r"}})
                  .status()
                  .IsInvalidArgument());
}

TEST(ArraySchemaTest, RejectsEmptyNames) {
  EXPECT_TRUE(ArraySchema::Create("A", {{"", 1, 4, 2}}, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(ArraySchemaTest, AttributeAndDimensionIndex) {
  auto schema = ArraySchema::Create("A", {{"i", 1, 4, 2}, {"j", 1, 4, 2}},
                                    {{"r"}, {"s"}});
  ASSERT_OK(schema.status());
  EXPECT_EQ(schema->AttributeIndex("s").value(), 1u);
  EXPECT_TRUE(schema->AttributeIndex("zzz").status().IsNotFound());
  EXPECT_EQ(schema->DimensionIndex("j").value(), 1u);
  EXPECT_TRUE(schema->DimensionIndex("zzz").status().IsNotFound());
}

TEST(ArraySchemaTest, ContainsCoord) {
  auto schema =
      ArraySchema::Create("A", {{"i", 1, 6, 2}, {"j", 1, 8, 2}}, {{"r"}});
  ASSERT_OK(schema.status());
  EXPECT_TRUE(schema->ContainsCoord({1, 1}));
  EXPECT_TRUE(schema->ContainsCoord({6, 8}));
  EXPECT_FALSE(schema->ContainsCoord({0, 1}));
  EXPECT_FALSE(schema->ContainsCoord({7, 1}));
  EXPECT_FALSE(schema->ContainsCoord({1, 9}));
  EXPECT_FALSE(schema->ContainsCoord({1}));
  EXPECT_FALSE(schema->ContainsCoord({1, 1, 1}));
}

TEST(ArraySchemaTest, CellBytes) {
  auto schema = ArraySchema::Create("A", {{"i", 1, 4, 2}, {"j", 1, 4, 2}},
                                    {{"r"}, {"s"}, {"t"}});
  ASSERT_OK(schema.status());
  EXPECT_EQ(schema->CellBytes(), 8u * 5u);
}

TEST(ArraySchemaTest, ToStringMatchesAqlNotation) {
  auto schema = ArraySchema::Create(
      "A", {{"i", 1, 6, 2}, {"j", 1, 8, 2}},
      {{"r", AttributeType::kInt64}, {"s", AttributeType::kDouble}});
  ASSERT_OK(schema.status());
  EXPECT_EQ(schema->ToString(), "A<r:int64,s:double>[i=1,6,2;j=1,8,2]");
}

TEST(ArraySchemaTest, StructuralEqualityIgnoresName) {
  auto a = ArraySchema::Create("A", {{"i", 1, 4, 2}}, {{"r"}});
  auto b = ArraySchema::Create("B", {{"i", 1, 4, 2}}, {{"r"}});
  auto c = ArraySchema::Create("C", {{"i", 1, 4, 4}}, {{"r"}});
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  ASSERT_OK(c.status());
  EXPECT_TRUE(a->StructurallyEquals(*b));
  EXPECT_FALSE(a->StructurallyEquals(*c));
}

TEST(ArraySchemaTest, StructuralEqualityChecksAttrTypes) {
  auto a = ArraySchema::Create("A", {{"i", 1, 4, 2}},
                               {{"r", AttributeType::kInt64}});
  auto b = ArraySchema::Create("A", {{"i", 1, 4, 2}},
                               {{"r", AttributeType::kDouble}});
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  EXPECT_FALSE(a->StructurallyEquals(*b));
}

}  // namespace
}  // namespace avm
