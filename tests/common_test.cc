#include <gtest/gtest.h>

#include "common/status.h"

TEST(Bootstrap, StatusOk) { EXPECT_TRUE(avm::Status::OK().ok()); }
