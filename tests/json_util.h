#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// Minimal recursive-descent JSON parser for machine-checking the telemetry
/// exporters in tests (Chrome trace JSON, metrics JSON). Handles the full
/// value grammar — objects, arrays, strings with escapes, numbers, booleans,
/// null — and rejects trailing garbage. Test-only: error reporting is just
/// "nullopt", and numbers all become double.

namespace avm::testing_util {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr if absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

namespace json_internal {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    std::optional<JsonValue> value = ParseValue();
    SkipSpace();
    if (!value.has_value() || pos_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // BMP code point to UTF-8 (surrogate pairs are not produced by our
          // exporters; decode them as two raw code units).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    JsonValue value;
    if (c == '{') {
      ++pos_;
      value.kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (Consume('}')) return value;
      for (;;) {
        std::optional<std::string> key = ParseString();
        if (!key.has_value() || !Consume(':')) return std::nullopt;
        std::optional<JsonValue> member = ParseValue();
        if (!member.has_value()) return std::nullopt;
        value.object.emplace(std::move(*key), std::move(*member));
        if (Consume(',')) continue;
        if (Consume('}')) return value;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      value.kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (Consume(']')) return value;
      for (;;) {
        std::optional<JsonValue> element = ParseValue();
        if (!element.has_value()) return std::nullopt;
        value.array.push_back(std::move(*element));
        if (Consume(',')) continue;
        if (Consume(']')) return value;
        return std::nullopt;
      }
    }
    if (c == '"') {
      std::optional<std::string> s = ParseString();
      if (!s.has_value()) return std::nullopt;
      value.kind = JsonValue::Kind::kString;
      value.string = std::move(*s);
      return value;
    }
    if (c == 't') {
      if (!ConsumeLiteral("true")) return std::nullopt;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (c == 'f') {
      if (!ConsumeLiteral("false")) return std::nullopt;
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    if (c == 'n') {
      if (!ConsumeLiteral("null")) return std::nullopt;
      return value;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* start = text_.data() + pos_;
      char* end = nullptr;
      value.kind = JsonValue::Kind::kNumber;
      value.number = std::strtod(start, &end);
      if (end == start) return std::nullopt;
      pos_ += static_cast<size_t>(end - start);
      return value;
    }
    return std::nullopt;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace json_internal

/// Parses `text` as one JSON document; nullopt on any syntax error or
/// trailing garbage.
inline std::optional<JsonValue> ParseJson(std::string_view text) {
  return json_internal::Parser(text).Parse();
}

}  // namespace avm::testing_util
