#include "common/logging.h"

#include <gtest/gtest.h>

namespace avm {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, BelowThresholdMessagesAreDropped) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  AVM_LOG(Info) << "should not appear";
  AVM_LOG(Error) << "should appear";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should not appear"), std::string::npos);
  EXPECT_NE(captured.find("should appear"), std::string::npos);
}

TEST(LoggingTest, MessagesCarryFileTag) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  AVM_LOG(Warning) << "tagged";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(captured.find("[W "), std::string::npos);
}

TEST(LoggingTest, CheckPassesSilently) {
  AVM_CHECK(1 + 1 == 2) << "never evaluated";
  AVM_CHECK_EQ(4, 4);
  AVM_CHECK_LT(1, 2);
  AVM_CHECK_GE(2, 2);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ AVM_CHECK(false) << "boom"; }, "Check failed: false boom");
  EXPECT_DEATH({ AVM_CHECK_EQ(1, 2); }, "Check failed");
}

TEST(LoggingTest, CheckInsideIfElseBindsCorrectly) {
  // The voidify pattern must not steal the else branch.
  bool took_else = false;
  if (false)
    AVM_CHECK(true);
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

}  // namespace
}  // namespace avm
