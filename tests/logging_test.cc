#include "common/logging.h"

#include <gtest/gtest.h>

namespace avm {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, BelowThresholdMessagesAreDropped) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  AVM_LOG(Info) << "should not appear";
  AVM_LOG(Error) << "should appear";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should not appear"), std::string::npos);
  EXPECT_NE(captured.find("should appear"), std::string::npos);
}

TEST(LoggingTest, MessagesCarryFileTag) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  AVM_LOG(Warning) << "tagged";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(captured.find("[W "), std::string::npos);
}

// The AVM_CHECK contract-macro tests live in check_test.cc alongside the
// failure-handler machinery.

}  // namespace
}  // namespace avm
