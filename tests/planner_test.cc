#include <gtest/gtest.h>

#include <set>

#include "maintenance/baseline_planner.h"
#include "maintenance/differential_planner.h"
#include "maintenance/exact_solver.h"
#include "maintenance/objective.h"
#include "maintenance/triple_gen.h"
#include "maintenance/view_reassigner.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::MakeCountViewFixture;

/// Shared scaffolding: a fixture plus a generated triple set for a random
/// delta.
struct PlannedBatch {
  testing_util::ViewFixture fixture;
  std::unique_ptr<DistributedArray> delta;
  TripleSet triples;
};

Result<PlannedBatch> MakePlannedBatch(int num_workers, size_t base_cells,
                                      size_t delta_cells, uint64_t seed,
                                      Shape shape) {
  PlannedBatch batch;
  AVM_ASSIGN_OR_RETURN(
      batch.fixture,
      MakeCountViewFixture(num_workers, base_cells, std::move(shape), seed));
  Rng rng(seed + 1);
  SparseArray cells = testing_util::RandomDisjointDelta(
      batch.fixture.local_base, delta_cells, &rng);
  ArraySchema schema("delta", cells.schema().dims(), cells.schema().attrs());
  AVM_ASSIGN_OR_RETURN(
      DistributedArray delta,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(),
                               batch.fixture.catalog.get(),
                               batch.fixture.cluster.get()));
  Status status = Status::OK();
  cells.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    if (!status.ok()) return;
    status = delta.PutChunk(id, chunk, kCoordinatorNode);
  });
  AVM_RETURN_IF_ERROR(status);
  batch.delta = std::make_unique<DistributedArray>(std::move(delta));
  AVM_ASSIGN_OR_RETURN(
      batch.triples,
      GenerateTriples(*batch.fixture.view, batch.delta.get(), nullptr));
  return batch;
}

/// Structural validity shared by every planner: C1/C3-style invariants.
void CheckPlanInvariants(const MaintenancePlan& plan, const TripleSet& triples,
                         int num_workers) {
  // C3/C5: every pair is assigned exactly once, to a worker.
  std::set<size_t> assigned;
  for (const auto& join : plan.joins) {
    EXPECT_TRUE(assigned.insert(join.pair_index).second);
    EXPECT_GE(join.node, 0);
    EXPECT_LT(join.node, num_workers);
  }
  EXPECT_EQ(assigned.size(), triples.pairs.size());

  // C2: after the planned transfers, both operands of every join are
  // available at its node.
  std::set<std::pair<MChunkRef, NodeId>> available;
  for (const auto& [ref, node] : triples.location) {
    available.insert({ref, node});
  }
  for (const auto& t : plan.transfers) {
    EXPECT_TRUE(available.count({t.chunk, t.from}) > 0)
        << "transfer from a node that does not hold the chunk";
    available.insert({t.chunk, t.to});
  }
  for (const auto& join : plan.joins) {
    const JoinPair& pair = triples.pairs[join.pair_index];
    EXPECT_TRUE(available.count({pair.a, join.node}) > 0);
    EXPECT_TRUE(available.count({pair.b, join.node}) > 0);
  }

  // Every affected view chunk has a home on a worker (y, C1).
  for (const auto& pair : triples.pairs) {
    for (ChunkId v : pair.AllViewTargets()) {
      auto it = plan.view_home.find(v);
      ASSERT_TRUE(it != plan.view_home.end());
      EXPECT_GE(it->second, 0);
      EXPECT_LT(it->second, num_workers);
    }
  }
}

TEST(BaselinePlannerTest, PlanIsValid) {
  ASSERT_OK_AND_ASSIGN(
      auto batch,
      MakePlannedBatch(4, 100, 40, 11, Shape::L1Ball(2, 1)));
  ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                       PlanBaseline(*batch.fixture.view, batch.triples, 4));
  CheckPlanInvariants(plan, batch.triples, 4);
}

TEST(BaselinePlannerTest, DeltaChunksPlacedByStrategy) {
  ASSERT_OK_AND_ASSIGN(
      auto batch,
      MakePlannedBatch(4, 60, 30, 12, Shape::L1Ball(2, 1)));
  ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                       PlanBaseline(*batch.fixture.view, batch.triples, 4));
  const Catalog* catalog = batch.fixture.catalog.get();
  const ArrayId base_id = batch.fixture.view->left_base().id();
  for (const auto& move : plan.array_moves) {
    ASSERT_TRUE(IsDeltaSide(move.chunk.side));
    EXPECT_EQ(move.node,
              catalog->PlaceByStrategy(base_id, move.chunk.id, 4));
  }
}

TEST(BaselinePlannerTest, JoinsAtStoredOperand) {
  ASSERT_OK_AND_ASSIGN(
      auto batch,
      MakePlannedBatch(4, 80, 30, 13, Shape::L1Ball(2, 1)));
  ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                       PlanBaseline(*batch.fixture.view, batch.triples, 4));
  for (const auto& join : plan.joins) {
    const JoinPair& pair = batch.triples.pairs[join.pair_index];
    if (!IsDeltaSide(pair.a.side)) {
      EXPECT_EQ(join.node, batch.triples.location.at(pair.a));
    } else if (!IsDeltaSide(pair.b.side)) {
      EXPECT_EQ(join.node, batch.triples.location.at(pair.b));
    }
  }
}

TEST(DifferentialPlannerTest, PlanIsValid) {
  ASSERT_OK_AND_ASSIGN(
      auto batch,
      MakePlannedBatch(4, 100, 40, 14, Shape::L1Ball(2, 1)));
  PlannerOptions options;
  ASSERT_OK_AND_ASSIGN(
      DifferentialPlanResult result,
      PlanDifferentialView(*batch.fixture.view, batch.triples, 4,
                           batch.fixture.cluster->cost_model(), options));
  CheckPlanInvariants(result.plan, batch.triples, 4);
}

TEST(DifferentialPlannerTest, TrackerMatchesStage1Objective) {
  ASSERT_OK_AND_ASSIGN(
      auto batch,
      MakePlannedBatch(3, 80, 30, 15, Shape::L1Ball(2, 1)));
  PlannerOptions options;
  const CostModel& cost = batch.fixture.cluster->cost_model();
  ASSERT_OK_AND_ASSIGN(
      DifferentialPlanResult result,
      PlanDifferentialView(*batch.fixture.view, batch.triples, 3, cost,
                           options));
  // Reconstruct the assignment and evaluate with the independent formula.
  std::vector<NodeId> assignment(batch.triples.pairs.size(), 0);
  for (const auto& join : result.plan.joins) {
    assignment[join.pair_index] = join.node;
  }
  ASSERT_OK_AND_ASSIGN(
      double objective,
      EvaluateStage1Assignment(batch.triples, assignment, 3, cost));
  EXPECT_NEAR(result.tracker.CurrentMax(), objective, 1e-12);
}

TEST(DifferentialPlannerTest, NeverWorseThanBaselineOnStage1Objective) {
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    ASSERT_OK_AND_ASSIGN(
        auto batch,
        MakePlannedBatch(4, 120, 50, seed, Shape::LinfBall(2, 1)));
    const CostModel& cost = batch.fixture.cluster->cost_model();
    PlannerOptions options;
    options.seed = seed;
    ASSERT_OK_AND_ASSIGN(
        DifferentialPlanResult diff,
        PlanDifferentialView(*batch.fixture.view, batch.triples, 4, cost,
                             options));
    ASSERT_OK_AND_ASSIGN(
        MaintenancePlan baseline,
        PlanBaseline(*batch.fixture.view, batch.triples, 4));
    // Evaluate both on the same stage-1 objective. The baseline pays the
    // initial coordinator->placement shipping too, so compare its full
    // transfer+cpu breakdown via the objective evaluator without the merge
    // term.
    ASSERT_OK_AND_ASSIGN(
        ObjectiveBreakdown diff_cost,
        EvaluateCurrentBatchObjective(diff.plan, batch.triples, 4, cost,
                                      /*include_merge_term=*/false));
    ASSERT_OK_AND_ASSIGN(
        ObjectiveBreakdown base_cost,
        EvaluateCurrentBatchObjective(baseline, batch.triples, 4, cost,
                                      /*include_merge_term=*/false));
    EXPECT_LE(diff_cost.Makespan(), base_cost.Makespan() + 1e-12)
        << "seed " << seed;
  }
}

TEST(DifferentialPlannerTest, DeterministicForFixedSeed) {
  ASSERT_OK_AND_ASSIGN(
      auto b1, MakePlannedBatch(4, 80, 30, 31, Shape::L1Ball(2, 1)));
  ASSERT_OK_AND_ASSIGN(
      auto b2, MakePlannedBatch(4, 80, 30, 31, Shape::L1Ball(2, 1)));
  PlannerOptions options;
  const CostModel& cost = b1.fixture.cluster->cost_model();
  ASSERT_OK_AND_ASSIGN(
      DifferentialPlanResult r1,
      PlanDifferentialView(*b1.fixture.view, b1.triples, 4, cost, options));
  ASSERT_OK_AND_ASSIGN(
      DifferentialPlanResult r2,
      PlanDifferentialView(*b2.fixture.view, b2.triples, 4, cost, options));
  ASSERT_EQ(r1.plan.joins.size(), r2.plan.joins.size());
  for (size_t i = 0; i < r1.plan.joins.size(); ++i) {
    EXPECT_EQ(r1.plan.joins[i].pair_index, r2.plan.joins[i].pair_index);
    EXPECT_EQ(r1.plan.joins[i].node, r2.plan.joins[i].node);
  }
}

TEST(ExactSolverTest, HeuristicWithinFactorTwoOfExactOnTinyInstances) {
  // Small instances keep the pair count <= 10 for the exhaustive search.
  for (uint64_t seed : {41u, 42u, 43u, 44u, 45u}) {
    ASSERT_OK_AND_ASSIGN(
        auto batch, MakePlannedBatch(3, 6, 4, seed, Shape::L1Ball(2, 1)));
    if (batch.triples.pairs.size() > 10 || batch.triples.pairs.empty()) {
      continue;
    }
    const CostModel& cost = batch.fixture.cluster->cost_model();
    ASSERT_OK_AND_ASSIGN(ExactStage1Solution exact,
                         SolveStage1Exact(batch.triples, 3, cost));
    PlannerOptions options;
    options.seed = seed;
    ASSERT_OK_AND_ASSIGN(
        DifferentialPlanResult heuristic,
        PlanDifferentialView(*batch.fixture.view, batch.triples, 3, cost,
                             options));
    EXPECT_GE(heuristic.tracker.CurrentMax(), exact.objective - 1e-12);
    EXPECT_LE(heuristic.tracker.CurrentMax(), 2.0 * exact.objective + 1e-12)
        << "seed " << seed;
  }
}

TEST(ExactSolverTest, RejectsOversizedInstances) {
  TripleSet triples;
  triples.pairs.resize(11);
  EXPECT_TRUE(SolveStage1Exact(triples, 2, CostModel())
                  .status()
                  .IsInvalidArgument());
}

TEST(ExactSolverTest, EvaluateRejectsIncompleteAssignment) {
  TripleSet triples;
  triples.pairs.resize(2);
  EXPECT_TRUE(EvaluateStage1Assignment(triples, {0}, 2, CostModel())
                  .status()
                  .IsInvalidArgument());
}

TEST(ViewReassignerTest, AssignsEveryAffectedViewChunk) {
  ASSERT_OK_AND_ASSIGN(
      auto batch,
      MakePlannedBatch(4, 100, 40, 51, Shape::L1Ball(2, 1)));
  const CostModel& cost = batch.fixture.cluster->cost_model();
  PlannerOptions options;
  ASSERT_OK_AND_ASSIGN(
      DifferentialPlanResult result,
      PlanDifferentialView(*batch.fixture.view, batch.triples, 4, cost,
                           options));
  ASSERT_OK(ReassignViewChunks(batch.triples, 4, cost, options,
                               &result.tracker, &result.plan));
  CheckPlanInvariants(result.plan, batch.triples, 4);
}

TEST(ViewReassignerTest, RequiresStage1First) {
  ASSERT_OK_AND_ASSIGN(
      auto batch, MakePlannedBatch(3, 50, 20, 52, Shape::L1Ball(2, 1)));
  MaintenancePlan empty_plan;
  MakespanTracker tracker(3);
  EXPECT_TRUE(ReassignViewChunks(batch.triples, 3,
                                 batch.fixture.cluster->cost_model(),
                                 PlannerOptions(), &tracker, &empty_plan)
                  .IsFailedPrecondition());
}

TEST(ObjectiveTest, BreakdownMakespan) {
  ObjectiveBreakdown breakdown;
  breakdown.ntwk = {1.0, 5.0, 2.0};
  breakdown.cpu = {4.0, 3.0, 0.0};
  EXPECT_DOUBLE_EQ(breakdown.Makespan(), 5.0);
}

}  // namespace
}  // namespace avm
