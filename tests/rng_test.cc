#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace avm {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next64() == b.Next64()) ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(13), 13u);
}

TEST(RngTest, UniformBoundOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-10, 10);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, 10);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(5);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(50.0, 5.0);
  EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleDeterministic) {
  std::vector<int> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng r1(77);
  Rng r2(77);
  r1.Shuffle(a);
  r2.Shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent2(99);
  parent2.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child.Next64() == parent.Next64());
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace avm
