#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace avm {
namespace {

/// A tiny scale so the full pipeline (generate, load, materialize, maintain)
/// runs in well under a second per case.
ExperimentScale TinyScale() {
  ExperimentScale scale;
  scale.num_workers = 4;
  scale.num_batches = 3;
  scale.ptf.time_range = 1536;
  scale.ptf.base_cells = 1500;
  scale.ptf.batch_cells_min = 150;
  scale.ptf.batch_cells_max = 300;
  scale.geo.seed_pois = 500;
  scale.geo.batch_frac = 0.02;
  return scale;
}

TEST(HarnessTest, Names) {
  EXPECT_EQ(DatasetKindName(DatasetKind::kPtf5), "PTF-5");
  EXPECT_EQ(DatasetKindName(DatasetKind::kPtf25), "PTF-25");
  EXPECT_EQ(DatasetKindName(DatasetKind::kGeo), "GEO");
  EXPECT_EQ(BatchRegimeName(BatchRegime::kCorrelated), "correlated");
}

TEST(HarnessTest, PreparesGeoExperiment) {
  ASSERT_OK_AND_ASSIGN(
      PreparedExperiment experiment,
      PrepareExperiment(DatasetKind::kGeo, BatchRegime::kRandom, TinyScale()));
  EXPECT_EQ(experiment.batches.size(), 3u);
  EXPECT_GT(experiment.view->array().NumCells(), 0u);
  EXPECT_DOUBLE_EQ(experiment.cluster->MakespanSeconds(), 0.0);  // reset
}

TEST(HarnessTest, PreparesPtf5Experiment) {
  ASSERT_OK_AND_ASSIGN(
      PreparedExperiment experiment,
      PrepareExperiment(DatasetKind::kPtf5, BatchRegime::kReal, TinyScale()));
  EXPECT_EQ(experiment.batches.size(), 3u);
  EXPECT_EQ(experiment.view->left_base().schema().num_dims(), 3u);
  // PTF-5's shape is the backward-looking space-time product.
  EXPECT_FALSE(experiment.view->definition().shape.IsSymmetric());
}

TEST(HarnessTest, Ptf25ShapeIsTimeSymmetric) {
  ASSERT_OK_AND_ASSIGN(
      PreparedExperiment experiment,
      PrepareExperiment(DatasetKind::kPtf25, BatchRegime::kReal, TinyScale()));
  EXPECT_TRUE(experiment.view->definition().shape.IsSymmetric());
}

TEST(HarnessTest, RunsSeriesAndMaintainsCorrectness) {
  ASSERT_OK_AND_ASSIGN(
      PreparedExperiment experiment,
      PrepareExperiment(DatasetKind::kGeo, BatchRegime::kRandom, TinyScale()));
  ASSERT_OK_AND_ASSIGN(
      BatchSeries series,
      RunMaintenanceSeries(&experiment, MaintenanceMethod::kReassign,
                           PlannerOptions()));
  EXPECT_EQ(series.reports.size(), 3u);
  EXPECT_GT(series.TotalMaintenanceSeconds(), 0.0);
  EXPECT_GT(series.MeanOptimizationSeconds(), 0.0);
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(*experiment.view));
}

TEST(HarnessTest, SameSeedGivesIdenticalBatchesAcrossMethods) {
  const ExperimentScale scale = TinyScale();
  ASSERT_OK_AND_ASSIGN(
      PreparedExperiment e1,
      PrepareExperiment(DatasetKind::kGeo, BatchRegime::kRandom, scale));
  ASSERT_OK_AND_ASSIGN(
      PreparedExperiment e2,
      PrepareExperiment(DatasetKind::kGeo, BatchRegime::kRandom, scale));
  ASSERT_EQ(e1.batches.size(), e2.batches.size());
  for (size_t i = 0; i < e1.batches.size(); ++i) {
    EXPECT_TRUE(e1.batches[i].ContentEquals(e2.batches[i]));
  }
}

TEST(HarnessTest, RunAllMethodsProducesThreeSeries) {
  ExperimentScale scale = TinyScale();
  scale.num_batches = 2;
  ASSERT_OK_AND_ASSIGN(
      auto all,
      RunAllMethods(DatasetKind::kGeo, BatchRegime::kCorrelated, scale,
                    PlannerOptions()));
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].method, MaintenanceMethod::kBaseline);
  EXPECT_EQ(all[1].method, MaintenanceMethod::kDifferential);
  EXPECT_EQ(all[2].method, MaintenanceMethod::kReassign);
  for (const auto& series : all) {
    EXPECT_EQ(series.reports.size(), 2u);
  }
}

TEST(HarnessTest, PtfMaintenanceStaysCorrectAcrossRegimes) {
  for (BatchRegime regime : {BatchRegime::kReal, BatchRegime::kCorrelated,
                             BatchRegime::kPeriodic}) {
    ExperimentScale scale = TinyScale();
    scale.num_batches = 2;
    ASSERT_OK_AND_ASSIGN(
        PreparedExperiment experiment,
        PrepareExperiment(DatasetKind::kPtf5, regime, scale));
    ASSERT_OK_AND_ASSIGN(
        BatchSeries series,
        RunMaintenanceSeries(&experiment, MaintenanceMethod::kReassign,
                             PlannerOptions()));
    EXPECT_EQ(series.reports.size(), 2u);
    EXPECT_TRUE(testing_util::ViewMatchesRecompute(*experiment.view))
        << BatchRegimeName(regime);
  }
}

}  // namespace
}  // namespace avm
