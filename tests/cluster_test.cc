#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <set>

#include "cluster/catalog.h"
#include "cluster/placement.h"
#include "storage/chunk_store.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;

Chunk OneCellChunk(double value = 1.0) {
  Chunk chunk(2, 1);
  chunk.UpsertCell(0, {1, 1}, std::vector<double>{value});
  return chunk;
}

TEST(ChunkStoreTest, PutGetErase) {
  ChunkStore store;
  EXPECT_EQ(store.Put(0, 7, OneCellChunk()), 8u * 3u);
  ASSERT_NE(store.Get(0, 7), nullptr);
  EXPECT_TRUE(store.Contains(0, 7));
  EXPECT_FALSE(store.Contains(0, 8));
  EXPECT_TRUE(store.Erase(0, 7));
  EXPECT_FALSE(store.Erase(0, 7));
  EXPECT_EQ(store.Get(0, 7), nullptr);
}

TEST(ChunkStoreTest, KeysAreArrayScoped) {
  ChunkStore store;
  store.Put(0, 7, OneCellChunk(1.0));
  store.Put(1, 7, OneCellChunk(2.0));
  EXPECT_EQ(store.Get(0, 7)->GetCell(0)[0], 1.0);
  EXPECT_EQ(store.Get(1, 7)->GetCell(0)[0], 2.0);
  EXPECT_EQ(store.NumChunks(), 2u);
}

TEST(ChunkStoreTest, GetOrCreate) {
  ChunkStore store;
  Chunk& c = store.GetOrCreate(0, 3, 2, 1);
  EXPECT_TRUE(c.empty());
  c.UpsertCell(0, {1, 1}, std::vector<double>{9.0});
  EXPECT_EQ(store.GetOrCreate(0, 3, 2, 1).num_cells(), 1u);
}

TEST(ChunkStoreTest, EraseArrayDropsOnlyThatArray) {
  ChunkStore store;
  store.Put(0, 1, OneCellChunk());
  store.Put(0, 2, OneCellChunk());
  store.Put(1, 1, OneCellChunk());
  EXPECT_EQ(store.EraseArray(0), 2u);
  EXPECT_EQ(store.NumChunks(), 1u);
  EXPECT_TRUE(store.Contains(1, 1));
}

TEST(ChunkStoreTest, SizeBytesSumsChunks) {
  ChunkStore store;
  store.Put(0, 1, OneCellChunk());
  store.Put(0, 2, OneCellChunk());
  EXPECT_EQ(store.SizeBytes(), 2u * 24u);
}

TEST(ClusterTest, CreatesWorkersAndCoordinator) {
  Cluster cluster(3);
  EXPECT_EQ(cluster.num_workers(), 3);
  // Every store is distinct.
  cluster.store(0).Put(0, 1, OneCellChunk());
  EXPECT_FALSE(cluster.store(1).Contains(0, 1));
  EXPECT_FALSE(cluster.store(kCoordinatorNode).Contains(0, 1));
}

TEST(ClusterTest, TransferCopiesAndChargesSender) {
  Cluster cluster(2);
  cluster.store(0).Put(0, 5, OneCellChunk());
  ASSERT_OK(cluster.TransferChunk(0, 5, 0, 1));
  EXPECT_TRUE(cluster.store(0).Contains(0, 5));  // source keeps its copy
  EXPECT_TRUE(cluster.store(1).Contains(0, 5));
  EXPECT_GT(cluster.clock(0).ntwk_seconds, 0.0);
  EXPECT_EQ(cluster.clock(1).ntwk_seconds, 0.0);
  EXPECT_EQ(cluster.clock(0).cpu_seconds, 0.0);
}

TEST(ClusterTest, TransferToSelfIsFree) {
  Cluster cluster(2);
  cluster.store(0).Put(0, 5, OneCellChunk());
  ASSERT_OK(cluster.TransferChunk(0, 5, 0, 0));
  EXPECT_EQ(cluster.clock(0).ntwk_seconds, 0.0);
}

TEST(ClusterTest, TransferMissingChunkFails) {
  Cluster cluster(2);
  EXPECT_TRUE(cluster.TransferChunk(0, 5, 0, 1).IsNotFound());
}

TEST(ClusterTest, TransferFromCoordinator) {
  Cluster cluster(2);
  cluster.store(kCoordinatorNode).Put(0, 5, OneCellChunk());
  ASSERT_OK(cluster.TransferChunk(0, 5, kCoordinatorNode, 1));
  EXPECT_TRUE(cluster.store(1).Contains(0, 5));
  EXPECT_GT(cluster.clock(kCoordinatorNode).ntwk_seconds, 0.0);
}

TEST(ClusterTest, ChargesFollowCostModel) {
  CostModel model;
  model.t_ntwk_per_byte = 2.0;
  model.t_cpu_per_byte = 0.5;
  Cluster cluster(2, model);
  cluster.ChargeNetwork(0, 10);
  cluster.ChargeJoin(1, 10);
  EXPECT_DOUBLE_EQ(cluster.clock(0).ntwk_seconds, 20.0);
  EXPECT_DOUBLE_EQ(cluster.clock(1).cpu_seconds, 5.0);
}

TEST(ClusterTest, MakespanIsMaxOfPerNodeBusy) {
  CostModel model;
  model.t_ntwk_per_byte = 1.0;
  model.t_cpu_per_byte = 1.0;
  Cluster cluster(2, model);
  cluster.ChargeNetwork(0, 10);
  cluster.ChargeJoin(0, 4);   // node 0 busy = max(10, 4) = 10
  cluster.ChargeJoin(1, 7);   // node 1 busy = 7
  EXPECT_DOUBLE_EQ(cluster.MakespanSeconds(), 10.0);
}

TEST(ClusterTest, ResetClocksZeroesEverything) {
  Cluster cluster(2);
  cluster.ChargeNetwork(0, 100);
  cluster.ChargeNetwork(kCoordinatorNode, 100);
  cluster.ResetClocks();
  EXPECT_DOUBLE_EQ(cluster.MakespanSeconds(), 0.0);
}

TEST(ClusterTest, LoadImbalanceOfBalancedLoadIsOne) {
  CostModel model;
  model.t_cpu_per_byte = 1.0;
  Cluster cluster(2, model);
  cluster.ChargeJoin(0, 10);
  cluster.ChargeJoin(1, 10);
  EXPECT_DOUBLE_EQ(cluster.LoadImbalance(), 1.0);
  cluster.ChargeJoin(0, 10);
  EXPECT_NEAR(cluster.LoadImbalance(), 20.0 / 15.0, 1e-12);
}

TEST(ClusterClockSnapshotTest, MeasuresWindowedMakespan) {
  CostModel model;
  model.t_ntwk_per_byte = 1.0;
  model.t_cpu_per_byte = 1.0;
  Cluster cluster(2, model);
  cluster.ChargeJoin(0, 100);  // before the window
  const ClusterClockSnapshot snap = ClusterClockSnapshot::Take(cluster);
  cluster.ChargeJoin(1, 5);
  cluster.ChargeNetwork(0, 3);
  EXPECT_DOUBLE_EQ(snap.MakespanSince(cluster), 5.0);
}

TEST(PlacementTest, RoundRobinCyclesNodes) {
  const ArraySchema schema = Make2DSchema("A");
  const ChunkGrid grid(schema);
  RoundRobinPlacement placement;
  EXPECT_EQ(placement.PlaceChunk(0, grid, 3), 0);
  EXPECT_EQ(placement.PlaceChunk(1, grid, 3), 1);
  EXPECT_EQ(placement.PlaceChunk(2, grid, 3), 2);
  EXPECT_EQ(placement.PlaceChunk(3, grid, 3), 0);
}

TEST(PlacementTest, HashSpreadsAndIsDeterministic) {
  const ArraySchema schema = Make2DSchema("A", 400, 8, 240, 6);
  const ChunkGrid grid(schema);
  HashPlacement placement;
  std::set<NodeId> seen;
  for (ChunkId id = 0; id < 64; ++id) {
    const NodeId n = placement.PlaceChunk(id, grid, 4);
    EXPECT_EQ(n, placement.PlaceChunk(id, grid, 4));
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 4);
    seen.insert(n);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(PlacementTest, RangePartitionsIntoContiguousSlabs) {
  const ArraySchema schema = Make2DSchema("A");  // 5 x 4 chunks
  const ChunkGrid grid(schema);
  RangePlacement placement(0);
  // Slabs along dim 0 must be monotone in the chunk row.
  NodeId last = 0;
  for (int64_t row = 0; row < grid.ChunksInDim(0); ++row) {
    const NodeId n = placement.PlaceChunk(grid.IdOfPos({row, 0}), grid, 2);
    EXPECT_GE(n, last);
    last = n;
    // Same row, different column -> same node.
    EXPECT_EQ(n, placement.PlaceChunk(grid.IdOfPos({row, 3}), grid, 2));
  }
  EXPECT_EQ(last, 1);
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  auto id = catalog.RegisterArray(Make2DSchema("A"), MakeRoundRobinPlacement());
  ASSERT_OK(id.status());
  EXPECT_EQ(catalog.ArrayIdByName("A").value(), *id);
  EXPECT_TRUE(catalog.ArrayIdByName("B").status().IsNotFound());
  EXPECT_EQ(catalog.NumArrays(), 1u);
}

TEST(CatalogTest, RejectsDuplicateNames) {
  Catalog catalog;
  ASSERT_OK(catalog.RegisterArray(Make2DSchema("A"), MakeRoundRobinPlacement())
                .status());
  EXPECT_TRUE(
      catalog.RegisterArray(Make2DSchema("A"), MakeRoundRobinPlacement())
          .status()
          .IsAlreadyExists());
}

TEST(CatalogTest, ChunkAssignmentLifecycle) {
  Catalog catalog;
  auto id = catalog.RegisterArray(Make2DSchema("A"), MakeRoundRobinPlacement());
  ASSERT_OK(id.status());
  EXPECT_FALSE(catalog.HasChunk(*id, 3));
  EXPECT_TRUE(catalog.NodeOf(*id, 3).status().IsNotFound());
  catalog.AssignChunk(*id, 3, 2);
  catalog.SetChunkBytes(*id, 3, 123);
  EXPECT_TRUE(catalog.HasChunk(*id, 3));
  EXPECT_EQ(catalog.NodeOf(*id, 3).value(), 2);
  EXPECT_EQ(catalog.ChunkBytes(*id, 3), 123u);
  catalog.AssignChunk(*id, 3, 0);  // reassignment
  EXPECT_EQ(catalog.NodeOf(*id, 3).value(), 0);
}

TEST(CatalogTest, ChunkIdsSortedAndCounts) {
  Catalog catalog;
  auto id = catalog.RegisterArray(Make2DSchema("A"), MakeRoundRobinPlacement());
  ASSERT_OK(id.status());
  catalog.AssignChunk(*id, 9, 1);
  catalog.AssignChunk(*id, 2, 1);
  catalog.AssignChunk(*id, 5, 0);
  EXPECT_EQ(catalog.ChunkIdsOf(*id), (std::vector<ChunkId>{2, 5, 9}));
  EXPECT_EQ(catalog.NumChunksOnNode(*id, 1), 2u);
  EXPECT_EQ(catalog.NumChunksOnNode(*id, 0), 1u);
}

TEST(CatalogTest, UnregisterFreesName) {
  Catalog catalog;
  auto id = catalog.RegisterArray(Make2DSchema("A"), MakeRoundRobinPlacement());
  ASSERT_OK(id.status());
  EXPECT_TRUE(catalog.UnregisterArray(*id));
  EXPECT_FALSE(catalog.UnregisterArray(*id));
  EXPECT_TRUE(catalog.ArrayIdByName("A").status().IsNotFound());
  // The name can be reused.
  EXPECT_OK(catalog.RegisterArray(Make2DSchema("A"), MakeRoundRobinPlacement())
                .status());
}

TEST(CatalogTest, PlaceByStrategyUsesArrayPlacement) {
  Catalog catalog;
  auto id = catalog.RegisterArray(Make2DSchema("A"), MakeRoundRobinPlacement());
  ASSERT_OK(id.status());
  EXPECT_EQ(catalog.PlaceByStrategy(*id, 4, 3), 1);
}

}  // namespace
}  // namespace avm
