#include "common/string_util.h"

#include <gtest/gtest.h>

namespace avm {
namespace {

TEST(StringUtilTest, JoinWithSeparator) {
  EXPECT_EQ(Join(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(Join(std::vector<int>{7}, ", "), "7");
  EXPECT_EQ(Join(std::vector<int>{}, ", "), "");
}

TEST(StringUtilTest, VecToString) {
  EXPECT_EQ(VecToString(std::vector<int64_t>{1, -2}), "[1, -2]");
  EXPECT_EQ(VecToString(std::vector<int64_t>{}), "[]");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1024), "1.0 KB");
  EXPECT_EQ(HumanBytes(1536), "1.5 KB");
  EXPECT_EQ(HumanBytes(1024ull * 1024), "1.0 MB");
  EXPECT_EQ(HumanBytes(343ull * 1024 * 1024 * 1024), "343.0 GB");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace avm
