#include "maintenance/deletions.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "maintenance/maintainer.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::MakeCountViewFixture;
using testing_util::RandomDisjointDelta;
using testing_util::ViewMatchesRecompute;

/// Picks `n` existing cells of the base as a deletion batch.
SparseArray PickVictims(const SparseArray& base, size_t n) {
  SparseArray victims(base.schema());
  size_t taken = 0;
  base.ForEachCell(
      [&](std::span<const int64_t> coord, std::span<const double> values) {
        if (taken >= n) return;
        if (taken % 2 == 0 || n > base.NumCells() / 2) {
          CellCoord c(coord.begin(), coord.end());
          AVM_CHECK(victims.Set(c, values).ok());
          ++taken;
        } else {
          ++taken;  // skip every other candidate for variety
        }
      });
  return victims;
}

TEST(DeletionsTest, DeletedCellsVanishFromBaseAndView) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 120, Shape::L1Ball(2, 1), 800,
                                            /*with_sum=*/true));
  SparseArray victims = PickVictims(fixture.local_base, 30);
  ASSERT_OK_AND_ASSIGN(DeletionStats stats,
                       ApplyDeletionBatch(fixture.view.get(), victims));
  EXPECT_GT(stats.deleted_cells, 0u);
  ASSERT_OK_AND_ASSIGN(SparseArray base_now,
                       fixture.view->left_base().Gather());
  victims.ForEachCell(
      [&](std::span<const int64_t> coord, std::span<const double>) {
        EXPECT_FALSE(base_now.Has(CellCoord(coord.begin(), coord.end())));
      });
  EXPECT_TRUE(ViewMatchesRecompute(*fixture.view));
}

TEST(DeletionsTest, InterleavedInsertsAndDeletes) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(4, 100, Shape::LinfBall(2, 1),
                                            801, /*with_sum=*/true));
  ViewMaintainer maintainer(fixture.view.get(),
                            MaintenanceMethod::kReassign);
  Rng rng(802);
  for (int round = 0; round < 3; ++round) {
    ASSERT_OK_AND_ASSIGN(SparseArray base_now,
                         fixture.view->left_base().Gather());
    SparseArray inserts = RandomDisjointDelta(base_now, 40, &rng);
    ASSERT_OK(maintainer.ApplyBatch(inserts).status());
    ASSERT_OK_AND_ASSIGN(SparseArray base_after,
                         fixture.view->left_base().Gather());
    SparseArray victims = PickVictims(base_after, 25);
    ASSERT_OK(ApplyDeletionBatch(fixture.view.get(), victims).status());
    ASSERT_TRUE(ViewMatchesRecompute(*fixture.view)) << "round " << round;
  }
}

TEST(DeletionsTest, DeleteEverythingEmptiesTheView) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 60, Shape::L1Ball(2, 1), 803));
  ASSERT_OK_AND_ASSIGN(SparseArray all, fixture.view->left_base().Gather());
  ASSERT_OK_AND_ASSIGN(DeletionStats stats,
                       ApplyDeletionBatch(fixture.view.get(), all));
  EXPECT_EQ(stats.deleted_cells, 60u);
  EXPECT_EQ(fixture.view->left_base().NumCells(), 0u);
  EXPECT_EQ(fixture.view->array().NumCells(), 0u);
}

TEST(DeletionsTest, MissingCoordinatesAreIgnored) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 40, Shape::L1Ball(2, 1), 804));
  Rng rng(805);
  SparseArray bogus = RandomDisjointDelta(fixture.local_base, 10, &rng);
  ASSERT_OK_AND_ASSIGN(DeletionStats stats,
                       ApplyDeletionBatch(fixture.view.get(), bogus));
  EXPECT_EQ(stats.deleted_cells, 0u);
  EXPECT_TRUE(ViewMatchesRecompute(*fixture.view));
}

TEST(DeletionsTest, DeleteIsIdempotent) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 80, Shape::L1Ball(2, 1), 806));
  SparseArray victims = PickVictims(fixture.local_base, 20);
  ASSERT_OK(ApplyDeletionBatch(fixture.view.get(), victims).status());
  ASSERT_OK_AND_ASSIGN(DeletionStats second,
                       ApplyDeletionBatch(fixture.view.get(), victims));
  EXPECT_EQ(second.deleted_cells, 0u);
  EXPECT_TRUE(ViewMatchesRecompute(*fixture.view));
}

TEST(DeletionsTest, AsymmetricShapeRetractsBothRoles) {
  auto window = Shape::MinkowskiSum(Shape::L1Ball(2, 1, {1}),
                                    Shape::Window(2, 0, -6, 0));
  ASSERT_OK(window.status());
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 100, *window, 807,
                                            /*with_sum=*/true));
  SparseArray victims = PickVictims(fixture.local_base, 30);
  ASSERT_OK(ApplyDeletionBatch(fixture.view.get(), victims).status());
  EXPECT_TRUE(ViewMatchesRecompute(*fixture.view));
}

TEST(DeletionsTest, MinMaxViewsRejected) {
  Catalog catalog;
  Cluster cluster(2);
  const ArraySchema schema = testing_util::Make2DSchema("base");
  SparseArray local(schema);
  ASSERT_OK(local.Set({5, 5}, std::vector<double>{1.0}));
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(base.Ingest(local));
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "base";
  def.right_array = "base";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::L1Ball(2, 1);
  def.aggregates = {{AggregateFunction::kMax, 0, "mx"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), MakeRoundRobinPlacement(),
                             &catalog, &cluster));
  EXPECT_TRUE(
      ApplyDeletionBatch(&view, local).status().IsFailedPrecondition());
}

TEST(DeletionsTest, ChargesSimulatedTime) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 80, Shape::L1Ball(2, 1), 808));
  SparseArray victims = PickVictims(fixture.local_base, 20);
  ASSERT_OK_AND_ASSIGN(DeletionStats stats,
                       ApplyDeletionBatch(fixture.view.get(), victims));
  EXPECT_GT(stats.retraction_joins, 0u);
  EXPECT_GT(stats.maintenance_seconds, 0.0);
}

}  // namespace
}  // namespace avm
