#include "storage/chunk_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>

#include "array/chunk.h"
#include "array/chunk_pool.h"
#include "array/coords.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace avm {
namespace {

/// A 2-d, 1-attr chunk with rows at offsets 0..cells-1.
Chunk MakeChunk(size_t cells) {
  Chunk chunk(/*num_dims=*/2, /*num_attrs=*/1);
  chunk.Reserve(cells);
  CellCoord coord(2);
  for (size_t i = 0; i < cells; ++i) {
    coord[0] = static_cast<int64_t>(i / 8);
    coord[1] = static_cast<int64_t>(i % 8);
    const double v = static_cast<double>(i) * 0.5;
    chunk.UpsertCell(i, coord, {&v, 1});
  }
  return chunk;
}

/// Restores the process-wide aliasing switch on scope exit.
struct AliasingModeGuard {
  ~AliasingModeGuard() { SetChunkAliasingEnabled(true); }
};

/// Holds one epoch pin for the scope, as a live ViewEpoch would.
struct EpochPinGuard {
  EpochPinGuard() { AddEpochPin(); }
  ~EpochPinGuard() { ReleaseEpochPin(); }
};

TEST(ChunkStoreTest, PutHandleAliasesTheSameChunk) {
  ChunkStore a;
  ChunkStore b;
  a.Put(0, 0, MakeChunk(10));
  ChunkHandle handle = a.GetHandle(0, 0);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(b.PutHandle(0, 0, std::move(handle)), a.Get(0, 0)->SizeBytes());
  // Copy-free: both stores resolve to the same object.
  EXPECT_EQ(a.Get(0, 0), b.Get(0, 0));
  EXPECT_TRUE(a.IsAliased(0, 0));
  EXPECT_TRUE(b.IsAliased(0, 0));
  // Logical residency still charges each holder in full.
  EXPECT_EQ(a.SizeBytes(), b.SizeBytes());
}

TEST(ChunkStoreTest, GetMutableBreaksSharingBeforeMutation) {
  ChunkStore a;
  ChunkStore b;
  a.Put(0, 0, MakeChunk(10));
  b.PutHandle(0, 0, a.GetHandle(0, 0));
  const Chunk* shared = a.Get(0, 0);

  Chunk* mut = b.GetMutable(0, 0);
  ASSERT_NE(mut, nullptr);
  EXPECT_NE(mut, shared) << "mutable access to a shared chunk must COW";
  const double v = 42.0;
  mut->UpsertCell(99, {9, 9}, {&v, 1});

  EXPECT_EQ(a.Get(0, 0), shared);
  EXPECT_EQ(a.Get(0, 0)->num_cells(), 10u);
  EXPECT_EQ(b.Get(0, 0)->num_cells(), 11u);
  EXPECT_FALSE(a.IsAliased(0, 0));
  EXPECT_FALSE(b.IsAliased(0, 0));
}

TEST(ChunkStoreTest, GetMutableOnSoleOwnerDoesNotCopy) {
  ChunkStore store;
  store.Put(0, 0, MakeChunk(10));
  const Chunk* before = store.Get(0, 0);
  EXPECT_EQ(store.GetMutable(0, 0), before);
  EXPECT_EQ(store.GetMutable(7, 7), nullptr);
}

TEST(ChunkStoreTest, GetOrCreateAppliesCopyOnWrite) {
  ChunkStore a;
  ChunkStore b;
  a.Put(0, 0, MakeChunk(4));
  b.PutHandle(0, 0, a.GetHandle(0, 0));
  const Chunk* shared = a.Get(0, 0);
  Chunk& broken = b.GetOrCreate(0, 0, 2, 1);
  EXPECT_NE(&broken, shared);
  EXPECT_EQ(broken.num_cells(), 4u);
  // Absent key: creates empty with the requested layout.
  Chunk& fresh = b.GetOrCreate(1, 5, 3, 2);
  EXPECT_EQ(fresh.num_cells(), 0u);
  EXPECT_EQ(fresh.num_dims(), 3u);
  EXPECT_EQ(fresh.num_attrs(), 2u);
}

TEST(ChunkStoreTest, EraseOfOneReplicaLeavesTheOtherIntact) {
  ChunkStore a;
  ChunkStore b;
  a.Put(0, 0, MakeChunk(6));
  b.PutHandle(0, 0, a.GetHandle(0, 0));
  EXPECT_TRUE(a.Erase(0, 0));
  ASSERT_NE(b.Get(0, 0), nullptr);
  EXPECT_EQ(b.Get(0, 0)->num_cells(), 6u);
  EXPECT_FALSE(b.IsAliased(0, 0));
  b.CheckInvariants();
}

TEST(ChunkStoreTest, HandleOutlivesTheStoreEntry) {
  ChunkStore store;
  store.Put(0, 0, MakeChunk(3));
  ChunkHandle handle = store.GetHandle(0, 0);
  store.Erase(0, 0);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->num_cells(), 3u);
}

TEST(ChunkStoreTest, DisabledAliasingDeepCopiesOnPutHandle) {
  AliasingModeGuard guard;
  ChunkStore a;
  ChunkStore b;
  a.Put(0, 0, MakeChunk(5));
  SetChunkAliasingEnabled(false);
  b.PutHandle(0, 0, a.GetHandle(0, 0));
  EXPECT_NE(a.Get(0, 0), b.Get(0, 0));
  EXPECT_FALSE(a.IsAliased(0, 0));
  EXPECT_TRUE(b.Get(0, 0)->ContentEquals(*a.Get(0, 0)));
}

TEST(ChunkStoreTest, TelemetryCountsAliasesDeepCopiesAndCowBreaks) {
  AliasingModeGuard guard;
  EnableTelemetry();
  MetricsRegistry::Global().ResetForTesting();

  ChunkStore a;
  ChunkStore b;
  ChunkStore c;
  a.Put(0, 0, MakeChunk(8));
  b.PutHandle(0, 0, a.GetHandle(0, 0));      // aliased
  SetChunkAliasingEnabled(false);
  c.PutHandle(0, 0, a.GetHandle(0, 0));      // deep copy
  SetChunkAliasingEnabled(true);
  (void)b.GetMutable(0, 0);                  // COW break (a still shares)
  (void)b.GetMutable(0, 0);                  // sole owner now: no break

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter(CounterId::kStoreChunksAliased), 1u);
  EXPECT_EQ(snapshot.counter(CounterId::kStoreChunksDeepCopied), 1u);
  EXPECT_EQ(snapshot.counter(CounterId::kStoreCowBreaks), 1u);
  DisableTelemetry();
}

// Two stores alias one chunk; one thread keeps reading through store `a`
// while another thread takes mutable access through store `b`. The COW break
// replaces only b's entry, so the reader never observes the mutation — and
// the whole schedule must be race-free under AVM_SANITIZE=thread.
TEST(ChunkStoreTest, CowBreakIsRaceFreeAgainstReadersOfOtherStores) {
  ChunkStore a;
  ChunkStore b;
  constexpr size_t kCells = 256;
  a.Put(0, 0, MakeChunk(kCells));
  b.PutHandle(0, 0, a.GetHandle(0, 0));

  std::atomic<bool> go{false};
  double checksum = 0.0;
  std::thread reader([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    const Chunk* chunk = a.Get(0, 0);
    double sum = 0.0;
    for (int iter = 0; iter < 50; ++iter) {
      for (size_t row = 0; row < chunk->num_cells(); ++row) {
        sum += chunk->ValuesOfRow(row)[0];
      }
    }
    checksum = sum;
  });
  std::thread writer([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    Chunk* mut = b.GetMutable(0, 0);
    ASSERT_NE(mut, nullptr);
    const double v = -1.0;
    mut->UpsertCell(kCells + 1, {31, 31}, {&v, 1});
  });
  go.store(true, std::memory_order_release);
  reader.join();
  writer.join();

  EXPECT_GT(checksum, 0.0);
  EXPECT_EQ(a.Get(0, 0)->num_cells(), kCells);
  EXPECT_EQ(b.Get(0, 0)->num_cells(), kCells + 1);
  a.CheckInvariants();
  b.CheckInvariants();
}

// The transient-use_count hazard: while a snapshot reader may clone handles
// out of a published epoch at any moment, observing use_count() == 1 on the
// mutating thread proves nothing — the store must deep-copy even apparent
// sole owners. These tests pin an epoch directly and check the conservative
// contract that replaces the old external-quiescence assumption.
TEST(ChunkStoreTest, EpochPinForcesDeepCopyOnApparentSoleOwner) {
  ChunkStore store;
  store.Put(0, 0, MakeChunk(10));
  const Chunk* before = store.Get(0, 0);
  ASSERT_FALSE(store.IsAliased(0, 0)) << "entry must start as sole owner";

  EpochPinGuard pin;
  Chunk* mut = store.GetMutable(0, 0);
  ASSERT_NE(mut, nullptr);
  // Pointer comparison only: the copy is allocated while `before` is still
  // alive, so distinct addresses are guaranteed (the original is freed right
  // after the swap — never dereference it here).
  EXPECT_NE(mut, before)
      << "with a live epoch, even use_count()==1 entries must deep-copy";
  EXPECT_EQ(mut->num_cells(), 10u);
  // The replaced entry serves subsequent reads; a second mutable access
  // copies again (the new entry could have been pinned meanwhile).
  EXPECT_EQ(store.Get(0, 0), mut);
  EXPECT_NE(store.GetMutable(0, 0), mut);
  EXPECT_EQ(store.GetMutable(9, 9), nullptr);
}

TEST(ChunkStoreTest, EpochPinPreservesPinnedHandleContent) {
  ChunkStore store;
  store.Put(0, 0, MakeChunk(6));
  ChunkHandle pinned = store.GetHandle(0, 0);  // as an epoch would hold it

  EpochPinGuard pin;
  Chunk* mut = store.GetMutable(0, 0);
  ASSERT_NE(mut, nullptr);
  const double v = 7.0;
  mut->UpsertCell(50, {6, 2}, {&v, 1});
  // The epoch's handle still observes the pre-mutation chunk, bit for bit.
  EXPECT_EQ(pinned->num_cells(), 6u);
  EXPECT_EQ(store.Get(0, 0)->num_cells(), 7u);
}

TEST(ChunkStoreTest, EpochPinAppliesToGetOrCreateButNotFreshCreates) {
  EnableTelemetry();
  MetricsRegistry::Global().ResetForTesting();
  ChunkStore store;
  store.Put(0, 0, MakeChunk(5));
  const Chunk* before = store.Get(0, 0);

  EpochPinGuard pin;
  Chunk& broken = store.GetOrCreate(0, 0, 2, 1);
  EXPECT_NE(&broken, before);
  EXPECT_EQ(broken.num_cells(), 5u);
  // Creating an absent entry mints a chunk no epoch can reference: no copy.
  Chunk& fresh = store.GetOrCreate(1, 1, 2, 1);
  EXPECT_EQ(fresh.num_cells(), 0u);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter(CounterId::kStoreCowBreaks), 1u);
  DisableTelemetry();
}

TEST(ChunkStoreTest, SoleOwnerFastPathReturnsOnceEpochsRetire) {
  ChunkStore store;
  store.Put(0, 0, MakeChunk(4));
  {
    EpochPinGuard pin;
    const Chunk* pinned_entry = store.Get(0, 0);
    EXPECT_NE(store.GetMutable(0, 0), pinned_entry) << "copy while pinned";
  }
  // No live epochs: the quiesced in-place fast path is sound again.
  const Chunk* entry = store.Get(0, 0);
  EXPECT_EQ(store.GetMutable(0, 0), entry);
}

TEST(ChunkPoolTest, ReuseReturnsAClearedChunk) {
  ChunkPool::DrainForTesting();
  ChunkPool::Release(MakeChunk(64));
  EXPECT_EQ(ChunkPool::LocalFreeForTesting(), 1u);
  Chunk reused = ChunkPool::Acquire(3, 2);
  EXPECT_EQ(ChunkPool::LocalFreeForTesting(), 0u);
  EXPECT_EQ(reused.num_cells(), 0u);
  EXPECT_EQ(reused.num_dims(), 3u);
  EXPECT_EQ(reused.num_attrs(), 2u);
  // Indistinguishable from fresh: usable under the new layout.
  const double vals[2] = {1.0, 2.0};
  reused.UpsertCell(0, {0, 0, 0}, vals);
  EXPECT_EQ(reused.num_cells(), 1u);
  reused.CheckInvariants();
  ChunkPool::DrainForTesting();
}

TEST(ChunkPoolTest, ReuseRetainsBufferCapacity) {
  ChunkPool::DrainForTesting();
  Chunk big = MakeChunk(512);
  const uint64_t capacity = big.CapacityBytes();
  ASSERT_GT(capacity, 0u);
  ChunkPool::Release(std::move(big));
  Chunk reused = ChunkPool::Acquire(2, 1);
  EXPECT_GE(reused.CapacityBytes(), capacity)
      << "pooled reuse must keep the row-buffer capacity";
  ChunkPool::DrainForTesting();
}

TEST(ChunkPoolTest, AcquireOnEmptyPoolAllocatesFresh) {
  ChunkPool::DrainForTesting();
  Chunk fresh = ChunkPool::Acquire(2, 1);
  EXPECT_EQ(fresh.num_cells(), 0u);
  EXPECT_EQ(fresh.num_dims(), 2u);
}

TEST(ChunkPoolTest, ParkedMemoryIsBounded) {
  ChunkPool::DrainForTesting();
  // Far more releases than the local shard holds: the surplus spills to the
  // overflow (or dies), never growing the local free list unboundedly.
  for (int i = 0; i < 64; ++i) ChunkPool::Release(MakeChunk(4));
  EXPECT_LE(ChunkPool::LocalFreeForTesting(), 16u);
  ChunkPool::DrainForTesting();
  EXPECT_EQ(ChunkPool::LocalFreeForTesting(), 0u);
}

TEST(ChunkPoolTest, TelemetryCountsHitsMissesAndParkedBytes) {
  ChunkPool::DrainForTesting();
  EnableTelemetry();
  MetricsRegistry::Global().ResetForTesting();

  ChunkPool::Release(MakeChunk(32));
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_GT(snapshot.gauge(GaugeId::kChunkPoolBytes), 0);

  Chunk hit = ChunkPool::Acquire(2, 1);    // served from the free list
  Chunk miss = ChunkPool::Acquire(2, 1);   // pool now empty
  snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter(CounterId::kChunkPoolHits), 1u);
  EXPECT_EQ(snapshot.counter(CounterId::kChunkPoolMisses), 1u);
  EXPECT_EQ(snapshot.gauge(GaugeId::kChunkPoolBytes), 0);

  ChunkPool::DrainForTesting();
  DisableTelemetry();
}

}  // namespace
}  // namespace avm
