#include "join/join_kernel.h"

#include <gtest/gtest.h>

#include <map>

#include "common/check.h"
#include "join/pair_enumeration.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;

AggregateLayout CountLayout() {
  auto layout =
      AggregateLayout::Create({{AggregateFunction::kCount, 0, "cnt"}}, 1);
  AVM_CHECK(layout.ok());
  return std::move(layout).value();
}

AggregateLayout CountSumLayout() {
  auto layout = AggregateLayout::Create({{AggregateFunction::kCount, 0, "c"},
                                         {AggregateFunction::kSum, 0, "s"}},
                                        1);
  AVM_CHECK(layout.ok());
  return std::move(layout).value();
}

/// Fixture: one array, the kernel applied to (chunk, chunk) pairs, compared
/// to a brute-force per-cell evaluation.
class JoinKernelTest : public ::testing::Test {
 protected:
  JoinKernelTest()
      : schema_(Make2DSchema("A", 16, 4, 16, 4)),
        array_(schema_),
        view_grid_(schema_),
        group_dims_({0, 1}) {}

  /// Sum of kernel outputs over all chunk pairs of the self-join.
  std::map<CellCoord, double> RunKernelSelfJoin(const Shape& shape,
                                                const AggregateLayout& layout,
                                                int multiplicity = 1,
                                                size_t value_index = 0) {
    const DimMapping mapping = DimMapping::Identity(2);
    const ViewTarget target{&group_dims_, &view_grid_};
    std::map<ChunkId, Chunk> fragments;
    for (ChunkId p : array_.ChunkIds()) {
      for (ChunkId q : EnumerateJoinPartners(
               array_.grid(), p, mapping, shape, array_.grid(),
               [&](ChunkId c) { return array_.GetChunk(c) != nullptr; })) {
        const RightOperand rop{array_.GetChunk(q), q, &array_.grid()};
        AVM_CHECK(JoinAggregateChunkPair(*array_.GetChunk(p), rop, mapping,
                                         shape, layout, target, multiplicity,
                                         &fragments)
                      .ok());
      }
    }
    std::map<CellCoord, double> out;
    for (const auto& [v, frag] : fragments) {
      frag.ForEachCell([&](std::span<const int64_t> coord,
                           std::span<const double> state) {
        out[CellCoord(coord.begin(), coord.end())] += state[value_index];
      });
    }
    return out;
  }

  /// Brute-force: for every cell x, count/sum partners y with y-x in shape.
  std::map<CellCoord, double> BruteForce(const Shape& shape, bool sum) {
    std::map<CellCoord, double> out;
    array_.ForEachCell([&](std::span<const int64_t> xs,
                           std::span<const double>) {
      CellCoord x(xs.begin(), xs.end());
      for (const auto& o : shape.offsets()) {
        CellCoord y = {x[0] + o[0], x[1] + o[1]};
        auto partner = array_.Get(y);
        if (!partner.ok()) continue;
        out[x] += sum ? (*partner)[0] : 1.0;
      }
    });
    return out;
  }

  ArraySchema schema_;
  SparseArray array_;
  ChunkGrid view_grid_;
  std::vector<size_t> group_dims_;
};

TEST_F(JoinKernelTest, CountMatchesBruteForceOnRandomData) {
  Rng rng(21);
  testing_util::FillRandom(&array_, 80, &rng);
  const Shape shape = Shape::L1Ball(2, 1);
  EXPECT_EQ(RunKernelSelfJoin(shape, CountLayout()), BruteForce(shape, false));
}

TEST_F(JoinKernelTest, CountMatchesBruteForceAcrossChunkBoundaries) {
  // Cells packed along a chunk boundary exercise cross-chunk pairs.
  for (int64_t y = 1; y <= 16; ++y) {
    ASSERT_OK(array_.Set({4, y}, std::vector<double>{1.0}));
    ASSERT_OK(array_.Set({5, y}, std::vector<double>{1.0}));
  }
  const Shape shape = Shape::LinfBall(2, 1);
  EXPECT_EQ(RunKernelSelfJoin(shape, CountLayout()), BruteForce(shape, false));
}

TEST_F(JoinKernelTest, SumAggregatesRightValues) {
  Rng rng(23);
  testing_util::FillRandom(&array_, 60, &rng);
  const Shape shape = Shape::LinfBall(2, 1);
  auto kernel = RunKernelSelfJoin(shape, CountSumLayout(), 1, 1);
  auto brute = BruteForce(shape, true);
  ASSERT_EQ(kernel.size(), brute.size());
  for (const auto& [coord, value] : brute) {
    EXPECT_NEAR(kernel.at(coord), value, 1e-9);
  }
}

TEST_F(JoinKernelTest, AsymmetricShapeRespectsDirection) {
  ASSERT_OK(array_.Set({8, 8}, std::vector<double>{1.0}));
  ASSERT_OK(array_.Set({9, 8}, std::vector<double>{1.0}));
  // Window looking only backward along x: cell (9,8) sees (8,8), not vice
  // versa.
  auto shape = Shape::FromOffsets(2, {{-1, 0}});
  ASSERT_OK(shape.status());
  auto result = RunKernelSelfJoin(*shape, CountLayout());
  EXPECT_EQ(result.size(), 1u);
  EXPECT_EQ(result.at({9, 8}), 1.0);
}

TEST_F(JoinKernelTest, NegativeMultiplicityRetracts) {
  Rng rng(25);
  testing_util::FillRandom(&array_, 40, &rng);
  const Shape shape = Shape::L1Ball(2, 1);
  auto plus = RunKernelSelfJoin(shape, CountLayout(), 1);
  auto minus = RunKernelSelfJoin(shape, CountLayout(), -1);
  ASSERT_EQ(plus.size(), minus.size());
  for (const auto& [coord, value] : plus) {
    EXPECT_EQ(minus.at(coord), -value);
  }
}

TEST_F(JoinKernelTest, BothStrategiesAgree) {
  Rng rng(27);
  testing_util::FillRandom(&array_, 100, &rng);
  // A large shape forces the scan strategy; a small one the probe strategy.
  // Their union of outputs must match brute force either way.
  for (int64_t radius : {1, 3, 6}) {
    const Shape shape = Shape::LinfBall(2, radius);
    EXPECT_EQ(RunKernelSelfJoin(shape, CountLayout()),
              BruteForce(shape, false))
        << "radius " << radius;
  }
}

TEST(ChooseJoinStrategyTest, PinsCostCrossoverOnBothSides) {
  // With kProbeCostPerOffset = 1.0 and kScanCostPerRightCell = 2.5, the
  // crossover for 100 right cells sits at exactly 250 shape offsets (ties
  // go to probing). These pins fail if either constant drifts.
  EXPECT_EQ(ChooseJoinStrategy(250, 100), JoinStrategy::kProbeOffsets);
  EXPECT_EQ(ChooseJoinStrategy(251, 100), JoinStrategy::kScanRight);
  // Small-end sanity: a 2-offset shape probes even over a 1-cell chunk; a
  // 3-offset shape scans it.
  EXPECT_EQ(ChooseJoinStrategy(2, 1), JoinStrategy::kProbeOffsets);
  EXPECT_EQ(ChooseJoinStrategy(3, 1), JoinStrategy::kScanRight);
}

TEST_F(JoinKernelTest, EmptyShapeProducesNothing) {
  Rng rng(29);
  testing_util::FillRandom(&array_, 20, &rng);
  EXPECT_TRUE(RunKernelSelfJoin(Shape(2), CountLayout()).empty());
}

TEST_F(JoinKernelTest, RejectsBadMultiplicity) {
  ASSERT_OK(array_.Set({1, 1}, std::vector<double>{1.0}));
  const DimMapping mapping = DimMapping::Identity(2);
  const ViewTarget target{&group_dims_, &view_grid_};
  std::map<ChunkId, Chunk> fragments;
  const ChunkId id = array_.ChunkIds()[0];
  const RightOperand rop{array_.GetChunk(id), id, &array_.grid()};
  EXPECT_TRUE(JoinAggregateChunkPair(*array_.GetChunk(id), rop, mapping,
                                     Shape::L1Ball(2, 1), CountLayout(),
                                     target, 2, &fragments)
                  .IsInvalidArgument());
}

TEST_F(JoinKernelTest, GroupByProjectionCollapsesDimensions) {
  // Group by x only: the view is 1-D.
  auto view_schema = ArraySchema::Create("V", {{"x", 1, 16, 4}}, {{"cnt"}});
  ASSERT_OK(view_schema.status());
  const ChunkGrid view_grid(view_schema.value());
  std::vector<size_t> group_dims = {0};
  ASSERT_OK(array_.Set({2, 3}, std::vector<double>{1.0}));
  ASSERT_OK(array_.Set({2, 9}, std::vector<double>{1.0}));
  const DimMapping mapping = DimMapping::Identity(2);
  const ViewTarget target{&group_dims, &view_grid};
  std::map<ChunkId, Chunk> fragments;
  const Shape shape = Shape::L1Ball(2, 0);  // self only
  for (ChunkId p : array_.ChunkIds()) {
    const RightOperand rop{array_.GetChunk(p), p, &array_.grid()};
    ASSERT_OK(JoinAggregateChunkPair(*array_.GetChunk(p), rop, mapping, shape,
                                     CountLayout(), target, 1, &fragments));
  }
  // Both cells have x = 2, so a single view cell accumulates count 2.
  double total = 0;
  size_t cells = 0;
  for (const auto& [v, frag] : fragments) {
    frag.ForEachCell(
        [&](std::span<const int64_t> coord, std::span<const double> state) {
          EXPECT_EQ(coord.size(), 1u);
          EXPECT_EQ(coord[0], 2);
          total += state[0];
          ++cells;
        });
  }
  EXPECT_EQ(cells, 1u);
  EXPECT_EQ(total, 2.0);
}

TEST(PairEnumerationTest, PartnersCoverShapeReach) {
  const ArraySchema schema = Make2DSchema("A", 16, 4, 16, 4);
  const ChunkGrid grid(schema);
  // Chunk (1,1) covers cells (5..8, 5..8); with L1(1) its reach touches the
  // 4-neighborhood chunks but not the diagonals.
  const ChunkId center = grid.IdOfPos({1, 1});
  auto partners = EnumerateJoinPartners(grid, center, DimMapping::Identity(2),
                                        Shape::L1Ball(2, 1), grid,
                                        [](ChunkId) { return true; });
  EXPECT_EQ(partners.size(), 9u);  // bbox expansion includes diagonals
  auto no_expand = EnumerateJoinPartners(grid, center,
                                         DimMapping::Identity(2),
                                         Shape::L1Ball(2, 0), grid,
                                         [](ChunkId) { return true; });
  EXPECT_EQ(no_expand.size(), 1u);
}

TEST(PairEnumerationTest, ExistenceFilterApplies) {
  const ArraySchema schema = Make2DSchema("A", 16, 4, 16, 4);
  const ChunkGrid grid(schema);
  auto partners = EnumerateJoinPartners(
      grid, grid.IdOfPos({1, 1}), DimMapping::Identity(2),
      Shape::LinfBall(2, 1), grid, [&](ChunkId id) { return id % 2 == 0; });
  for (ChunkId id : partners) EXPECT_EQ(id % 2, 0u);
}

TEST(PairEnumerationTest, ViewTargetsProjectChunkBox) {
  const ArraySchema schema = Make2DSchema("A", 16, 4, 16, 4);
  const ChunkGrid grid(schema);
  auto view_schema = ArraySchema::Create("V", {{"x", 1, 16, 4}}, {{"cnt"}});
  ASSERT_OK(view_schema.status());
  const ChunkGrid view_grid(view_schema.value());
  auto targets = EnumerateViewTargets(grid, grid.IdOfPos({2, 1}), {0},
                                      view_grid);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], 2u);
}

TEST(PairEnumerationTest, EmptyShapeHasNoPartners) {
  const ArraySchema schema = Make2DSchema("A", 16, 4, 16, 4);
  const ChunkGrid grid(schema);
  auto partners =
      EnumerateJoinPartners(grid, 0, DimMapping::Identity(2), Shape(2), grid,
                            [](ChunkId) { return true; });
  EXPECT_TRUE(partners.empty());
}

}  // namespace
}  // namespace avm
