// Section 3's "recursive maintenance" idea in its composable form: a
// materialized view is itself an array in the catalog, so another view can
// be defined over it (views stack). These tests materialize a second-level
// view over a first-level view's state array and check both levels against
// reference computations.

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "view/materialized_view.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;

TEST(RecursiveViewTest, ViewOverViewMaterializes) {
  Catalog catalog;
  Cluster cluster(3);
  const ArraySchema schema = Make2DSchema("base");
  SparseArray local(schema);
  Rng rng(900);
  testing_util::FillRandom(&local, 100, &rng);
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(base.Ingest(local));

  // Level 1: neighbor counts.
  ViewDefinition def1;
  def1.view_name = "counts";
  def1.left_array = "base";
  def1.right_array = "base";
  def1.mapping = DimMapping::Identity(2);
  def1.shape = Shape::L1Ball(2, 1);
  def1.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView level1,
      CreateMaterializedView(std::move(def1), MakeRoundRobinPlacement(),
                             &catalog, &cluster));

  // Level 2: the total neighbor count in each cell's L∞(1) neighborhood —
  // SUM over the level-1 view's single state attribute.
  ViewDefinition def2;
  def2.view_name = "density";
  def2.left_array = "counts";
  def2.right_array = "counts";
  def2.mapping = DimMapping::Identity(2);
  def2.shape = Shape::LinfBall(2, 1);
  def2.aggregates = {{AggregateFunction::kSum, 0, "total_cnt"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView level2,
      CreateMaterializedView(std::move(def2), MakeHashPlacement(), &catalog,
                             &cluster));

  // Both levels equal their reference computations.
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(level1));
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(level2));

  // Spot-check the composition on one cell: level2[x] = sum of level1
  // counts over x's L∞(1) neighborhood.
  ASSERT_OK_AND_ASSIGN(SparseArray l1, level1.array().Gather());
  ASSERT_OK_AND_ASSIGN(SparseArray l2, level2.array().Gather());
  size_t checked = 0;
  l2.ForEachCell([&](std::span<const int64_t> coord,
                     std::span<const double> state) {
    if (checked >= 10) return;
    ++checked;
    double expected = 0;
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        auto v = l1.Get({coord[0] + dx, coord[1] + dy});
        if (v.ok()) expected += (*v)[0];
      }
    }
    EXPECT_NEAR(state[0], expected, 1e-9);
  });
  EXPECT_GT(checked, 0u);
}

TEST(RecursiveViewTest, StackedMaintenanceViaRematerialization) {
  // The paper's restricted recursive maintenance materializes auxiliary
  // views that themselves require maintenance. Our maintainer keeps level 1
  // incremental; level 2 is refreshed by rematerialization over level 1's
  // current state (a correct, if not incremental, strategy — incremental
  // level-2 maintenance would need level-1 deltas as retractions, which
  // MaterializedView exposes the state for).
  Catalog catalog;
  Cluster cluster(3);
  const ArraySchema schema = Make2DSchema("base");
  SparseArray local(schema);
  Rng rng(901);
  testing_util::FillRandom(&local, 80, &rng);
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(base.Ingest(local));
  ViewDefinition def1;
  def1.view_name = "counts";
  def1.left_array = "base";
  def1.right_array = "base";
  def1.mapping = DimMapping::Identity(2);
  def1.shape = Shape::L1Ball(2, 1);
  def1.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView level1,
      CreateMaterializedView(std::move(def1), MakeRoundRobinPlacement(),
                             &catalog, &cluster));

  ViewMaintainer maintainer(&level1, MaintenanceMethod::kReassign);
  SparseArray delta = testing_util::RandomDisjointDelta(local, 30, &rng);
  ASSERT_OK(maintainer.ApplyBatch(delta).status());
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(level1));

  // Rematerialize level 2 over the *maintained* level 1.
  ViewDefinition def2;
  def2.view_name = "density";
  def2.left_array = "counts";
  def2.right_array = "counts";
  def2.mapping = DimMapping::Identity(2);
  def2.shape = Shape::LinfBall(2, 1);
  def2.aggregates = {{AggregateFunction::kSum, 0, "total_cnt"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView level2,
      CreateMaterializedView(std::move(def2), MakeRoundRobinPlacement(),
                             &catalog, &cluster));
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(level2));
}

}  // namespace
}  // namespace avm
