#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace avm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("bad").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ErrorsAreNotOk) {
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::NotFound("chunk 7");
  EXPECT_EQ(s.ToString(), "NotFound: chunk 7");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Status FailsWhen(bool fail) {
  if (fail) return Status::Internal("requested failure");
  return Status::OK();
}

Status Propagates(bool fail) {
  AVM_RETURN_IF_ERROR(FailsWhen(fail));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagates(false).ok());
  EXPECT_TRUE(Propagates(true).IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> err = Status::NotFound("nope");
  EXPECT_EQ(err.value_or(-1), -1);
  Result<int> ok = 7;
  EXPECT_EQ(ok.value_or(-1), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  AVM_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(QuarterEven(6).status().IsInvalidArgument());  // 3 is odd
  EXPECT_TRUE(QuarterEven(5).status().IsInvalidArgument());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace avm
