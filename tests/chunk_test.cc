#include "array/chunk.h"

#include <gtest/gtest.h>

#include <vector>

namespace avm {
namespace {

std::vector<double> Vals(std::initializer_list<double> v) { return v; }

TEST(ChunkTest, StartsEmpty) {
  Chunk chunk(2, 1);
  EXPECT_TRUE(chunk.empty());
  EXPECT_EQ(chunk.num_cells(), 0u);
  EXPECT_EQ(chunk.SizeBytes(), 0u);
}

TEST(ChunkTest, UpsertInsertsAndLooksUp) {
  Chunk chunk(2, 2);
  chunk.UpsertCell(3, {1, 2}, Vals({5.0, 6.0}));
  ASSERT_TRUE(chunk.HasCell(3));
  const double* v = chunk.GetCell(3);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v[0], 5.0);
  EXPECT_EQ(v[1], 6.0);
  EXPECT_EQ(chunk.num_cells(), 1u);
}

TEST(ChunkTest, UpsertOverwrites) {
  Chunk chunk(1, 1);
  chunk.UpsertCell(0, {7}, Vals({1.0}));
  chunk.UpsertCell(0, {7}, Vals({2.0}));
  EXPECT_EQ(chunk.num_cells(), 1u);
  EXPECT_EQ(chunk.GetCell(0)[0], 2.0);
}

TEST(ChunkTest, AccumulateAddsElementwise) {
  Chunk chunk(1, 2);
  chunk.AccumulateCell(5, {3}, Vals({1.0, 10.0}));
  chunk.AccumulateCell(5, {3}, Vals({2.0, 20.0}));
  const double* v = chunk.GetCell(5);
  EXPECT_EQ(v[0], 3.0);
  EXPECT_EQ(v[1], 30.0);
}

TEST(ChunkTest, AccumulateCreatesMissingCell) {
  Chunk chunk(1, 1);
  chunk.AccumulateCell(9, {4}, Vals({7.0}));
  EXPECT_EQ(chunk.GetCell(9)[0], 7.0);
}

TEST(ChunkTest, GetMissingReturnsNull) {
  Chunk chunk(1, 1);
  EXPECT_EQ(chunk.GetCell(42), nullptr);
}

TEST(ChunkTest, EraseRemoves) {
  Chunk chunk(1, 1);
  chunk.UpsertCell(1, {1}, Vals({1.0}));
  chunk.UpsertCell(2, {2}, Vals({2.0}));
  EXPECT_TRUE(chunk.EraseCell(1));
  EXPECT_FALSE(chunk.EraseCell(1));
  EXPECT_EQ(chunk.num_cells(), 1u);
  EXPECT_EQ(chunk.GetCell(2)[0], 2.0);
  EXPECT_EQ(chunk.GetCell(1), nullptr);
}

TEST(ChunkTest, EraseMiddlePreservesOthers) {
  Chunk chunk(1, 1);
  for (uint64_t i = 0; i < 10; ++i) {
    chunk.UpsertCell(i, {static_cast<int64_t>(i)},
                     Vals({static_cast<double>(i)}));
  }
  EXPECT_TRUE(chunk.EraseCell(4));
  EXPECT_EQ(chunk.num_cells(), 9u);
  for (uint64_t i = 0; i < 10; ++i) {
    if (i == 4) {
      EXPECT_EQ(chunk.GetCell(i), nullptr);
    } else {
      ASSERT_NE(chunk.GetCell(i), nullptr);
      EXPECT_EQ(chunk.GetCell(i)[0], static_cast<double>(i));
    }
  }
}

TEST(ChunkTest, SizeBytesCountsCoordsAndValues) {
  Chunk chunk(3, 2);
  chunk.UpsertCell(0, {1, 2, 3}, Vals({1.0, 2.0}));
  chunk.UpsertCell(1, {1, 2, 4}, Vals({1.0, 2.0}));
  EXPECT_EQ(chunk.SizeBytes(), 2u * 8u * (3u + 2u));
}

TEST(ChunkTest, ForEachCellVisitsAll) {
  Chunk chunk(2, 1);
  chunk.UpsertCell(0, {1, 1}, Vals({1.0}));
  chunk.UpsertCell(1, {1, 2}, Vals({2.0}));
  double total = 0;
  size_t visits = 0;
  chunk.ForEachCell([&](std::span<const int64_t> coord,
                        std::span<const double> values) {
    EXPECT_EQ(coord.size(), 2u);
    total += values[0];
    ++visits;
  });
  EXPECT_EQ(visits, 2u);
  EXPECT_EQ(total, 3.0);
}

TEST(ChunkTest, AccumulateChunkMergesCellwise) {
  Chunk a(1, 1);
  a.UpsertCell(0, {1}, Vals({1.0}));
  a.UpsertCell(1, {2}, Vals({2.0}));
  Chunk b(1, 1);
  b.UpsertCell(1, {2}, Vals({10.0}));
  b.UpsertCell(2, {3}, Vals({20.0}));
  ASSERT_TRUE(a.AccumulateChunk(b).ok());
  EXPECT_EQ(a.num_cells(), 3u);
  EXPECT_EQ(a.GetCell(0)[0], 1.0);
  EXPECT_EQ(a.GetCell(1)[0], 12.0);
  EXPECT_EQ(a.GetCell(2)[0], 20.0);
}

TEST(ChunkTest, AccumulateChunkRejectsLayoutMismatch) {
  Chunk a(1, 1);
  Chunk b(2, 1);
  EXPECT_TRUE(a.AccumulateChunk(b).IsInvalidArgument());
}

TEST(ChunkTest, ContentEqualsIgnoresInsertionOrder) {
  Chunk a(1, 1);
  a.UpsertCell(0, {1}, Vals({1.0}));
  a.UpsertCell(1, {2}, Vals({2.0}));
  Chunk b(1, 1);
  b.UpsertCell(1, {2}, Vals({2.0}));
  b.UpsertCell(0, {1}, Vals({1.0}));
  EXPECT_TRUE(a.ContentEquals(b));
  EXPECT_TRUE(b.ContentEquals(a));
}

TEST(ChunkTest, ContentEqualsDetectsValueDiff) {
  Chunk a(1, 1);
  a.UpsertCell(0, {1}, Vals({1.0}));
  Chunk b(1, 1);
  b.UpsertCell(0, {1}, Vals({1.5}));
  EXPECT_FALSE(a.ContentEquals(b));
  EXPECT_TRUE(a.ContentEquals(b, 0.6));
}

TEST(ChunkTest, ContentEqualsDetectsMissingCell) {
  Chunk a(1, 1);
  a.UpsertCell(0, {1}, Vals({1.0}));
  Chunk b(1, 1);
  EXPECT_FALSE(a.ContentEquals(b));
}

TEST(ChunkTest, RowAccessors) {
  Chunk chunk(2, 1);
  chunk.UpsertCell(7, {3, 4}, Vals({9.0}));
  ASSERT_EQ(chunk.num_cells(), 1u);
  auto coord = chunk.CoordOfRow(0);
  EXPECT_EQ(coord[0], 3);
  EXPECT_EQ(coord[1], 4);
  EXPECT_EQ(chunk.ValuesOfRow(0)[0], 9.0);
  EXPECT_EQ(chunk.OffsetOfRow(0), 7u);
}

TEST(ChunkTest, ReservePreservesContentAcrossBulkInsert) {
  Chunk chunk(1, 1);
  chunk.UpsertCell(0, {0}, Vals({-1.0}));
  chunk.Reserve(1000);
  EXPECT_EQ(chunk.num_cells(), 1u);
  for (uint64_t i = 1; i < 1000; ++i) {
    chunk.UpsertCell(i, {static_cast<int64_t>(i)},
                     Vals({static_cast<double>(i)}));
  }
  ASSERT_EQ(chunk.num_cells(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) {
    const double* v = chunk.GetCell(i);
    ASSERT_NE(v, nullptr) << "offset " << i;
    EXPECT_EQ(v[0], i == 0 ? -1.0 : static_cast<double>(i));
  }
}

TEST(ChunkTest, GetOrCreateRowInsertsOnceAndStaysStable) {
  Chunk chunk(2, 2);
  const std::vector<int64_t> coord = {5, 6};
  const size_t row = chunk.GetOrCreateRow(11, coord, Vals({0.0, 0.0}));
  EXPECT_EQ(chunk.num_cells(), 1u);
  EXPECT_EQ(chunk.GetOrCreateRow(11, coord, Vals({9.0, 9.0})), row);
  EXPECT_EQ(chunk.num_cells(), 1u);
  // Second call must not overwrite: init applies only on insert.
  EXPECT_EQ(chunk.ValuesOfRow(row)[0], 0.0);

  chunk.MutableValuesOfRow(row)[0] = 4.0;
  chunk.MutableValuesOfRow(row)[1] = 8.0;
  // The row survives value-buffer growth from later inserts.
  for (uint64_t i = 0; i < 100; ++i) {
    chunk.GetOrCreateRow(100 + i, coord, Vals({1.0, 1.0}));
  }
  EXPECT_EQ(chunk.GetCell(11)[0], 4.0);
  EXPECT_EQ(chunk.ValuesOfRow(row)[1], 8.0);
}

TEST(ChunkTest, EraseThenReinsertKeepsIndexConsistent) {
  // Swap-with-last erase plus tombstoned index slots: interleave erases and
  // re-inserts and verify every surviving cell resolves correctly.
  Chunk chunk(1, 1);
  for (uint64_t i = 0; i < 64; ++i) {
    chunk.UpsertCell(i, {static_cast<int64_t>(i)},
                     Vals({static_cast<double>(i)}));
  }
  for (uint64_t i = 0; i < 64; i += 2) EXPECT_TRUE(chunk.EraseCell(i));
  for (uint64_t i = 0; i < 64; i += 4) {
    chunk.UpsertCell(i, {static_cast<int64_t>(i)}, Vals({100.0 + i}));
  }
  ASSERT_EQ(chunk.num_cells(), 32u + 16u);
  for (uint64_t i = 0; i < 64; ++i) {
    const double* v = chunk.GetCell(i);
    if (i % 4 == 0) {
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(v[0], 100.0 + i);
    } else if (i % 2 == 0) {
      EXPECT_EQ(v, nullptr);
    } else {
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(v[0], static_cast<double>(i));
    }
  }
}

}  // namespace
}  // namespace avm
