#include "shape/chunk_footprint.h"

#include <gtest/gtest.h>

#include <set>

#include "join/pair_enumeration.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;

std::set<CellCoord> DeltaSet(const ChunkFootprint& fp) {
  return std::set<CellCoord>(fp.deltas().begin(), fp.deltas().end());
}

TEST(ChunkFootprintTest, RejectsBadInputs) {
  EXPECT_TRUE(ChunkFootprint::Compute(Shape::L1Ball(2, 1), {4})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ChunkFootprint::Compute(Shape::L1Ball(2, 1), {4, 0})
                  .status()
                  .IsInvalidArgument());
}

TEST(ChunkFootprintTest, CenterOnlyShapeStaysInChunkNeighborhood) {
  auto fp = ChunkFootprint::Compute(Shape::L1Ball(2, 0), {4, 4});
  ASSERT_OK(fp.status());
  EXPECT_EQ(fp->size(), 1u);
  EXPECT_TRUE(fp->Contains({0, 0}));
}

TEST(ChunkFootprintTest, SmallCrossReachesAxisNeighbors) {
  // L1(1) with 4-cell chunks: a border cell can cross into the next chunk
  // along each axis, but never diagonally.
  auto fp = ChunkFootprint::Compute(Shape::L1Ball(2, 1), {4, 4});
  ASSERT_OK(fp.status());
  EXPECT_EQ(DeltaSet(*fp),
            (std::set<CellCoord>{{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}}));
}

TEST(ChunkFootprintTest, LinfReachesDiagonals) {
  auto fp = ChunkFootprint::Compute(Shape::LinfBall(2, 1), {4, 4});
  ASSERT_OK(fp.status());
  EXPECT_EQ(fp->size(), 9u);
  EXPECT_TRUE(fp->Contains({1, 1}));
  EXPECT_TRUE(fp->Contains({-1, -1}));
}

TEST(ChunkFootprintTest, ChunkScaleDiamondPrunesCorners) {
  // An L1 ball of radius 3 chunks: the bbox has 7x7(+boundary) deltas but
  // the diamond footprint excludes the far corners.
  const Shape diamond =
      Shape::WeightedBall(2, Shape::Norm::kL1, 3.0, {4.0, 4.0});
  auto fp = ChunkFootprint::Compute(diamond, {4, 4});
  ASSERT_OK(fp.status());
  EXPECT_FALSE(fp->Contains({3, 3}));
  EXPECT_FALSE(fp->Contains({-3, 3}));
  EXPECT_TRUE(fp->Contains({3, 0}));
  EXPECT_TRUE(fp->Contains({1, 2}));
  // Strictly smaller than the bbox enumeration.
  const Box bbox = diamond.BoundingBox();
  const int64_t bbox_deltas =
      ((bbox.hi[0] / 4 + 1) - (bbox.lo[0] / 4 - 1) + 1) *
      ((bbox.hi[1] / 4 + 1) - (bbox.lo[1] / 4 - 1) + 1);
  EXPECT_LT(static_cast<int64_t>(fp->size()), bbox_deltas);
}

TEST(ChunkFootprintTest, AsymmetricWindowIsOneSided) {
  auto fp =
      ChunkFootprint::Compute(Shape::Window(2, 0, -8, 0), {4, 4});
  ASSERT_OK(fp.status());
  EXPECT_TRUE(fp->Contains({-2, 0}));
  EXPECT_TRUE(fp->Contains({0, 0}));
  EXPECT_FALSE(fp->Contains({1, 0}));
  EXPECT_FALSE(fp->Contains({-3, 0}));
}

TEST(ChunkFootprintTest, ExactEnumerationMatchesBruteForceCellCheck) {
  // Property: for random shapes, the footprint-based partner set equals
  // the set of chunks holding an actual cell-level match, for fully
  // occupied chunks.
  const ArraySchema schema = Make2DSchema("A", 40, 4, 40, 4);
  const ChunkGrid grid(schema);
  Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<CellCoord> offsets;
    const int n = 1 + static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < n; ++i) {
      offsets.push_back({rng.UniformInt(-6, 6), rng.UniformInt(-6, 6)});
    }
    auto shape = Shape::FromOffsets(2, offsets);
    ASSERT_OK(shape.status());
    auto fp = ChunkFootprint::Compute(*shape, {4, 4});
    ASSERT_OK(fp.status());

    const ChunkId p = grid.IdOfPos({5, 5});
    auto exact = EnumerateJoinPartnersExact(grid, p, *fp,
                                            [](ChunkId) { return true; });
    // Brute force: every cell of p, every offset, mark the target chunk.
    std::set<ChunkId> expected;
    const Box box = grid.ChunkBoxOfId(p);
    for (int64_t x = box.lo[0]; x <= box.hi[0]; ++x) {
      for (int64_t y = box.lo[1]; y <= box.hi[1]; ++y) {
        for (const auto& o : shape->offsets()) {
          const CellCoord target = {x + o[0], y + o[1]};
          if (schema.ContainsCoord(target)) {
            expected.insert(grid.IdOfCell(target));
          }
        }
      }
    }
    EXPECT_EQ(std::set<ChunkId>(exact.begin(), exact.end()), expected)
        << "trial " << trial;
  }
}

TEST(ChunkFootprintTest, ExactIsSubsetOfBoundingBoxEnumeration) {
  const ArraySchema schema = Make2DSchema("A", 40, 4, 40, 4);
  const ChunkGrid grid(schema);
  const Shape diamond =
      Shape::WeightedBall(2, Shape::Norm::kL1, 2.0, {4.0, 4.0});
  auto fp = ChunkFootprint::Compute(diamond, {4, 4});
  ASSERT_OK(fp.status());
  const ChunkId p = grid.IdOfPos({5, 5});
  auto exact = EnumerateJoinPartnersExact(grid, p, *fp,
                                          [](ChunkId) { return true; });
  auto bbox = EnumerateJoinPartners(grid, p, DimMapping::Identity(2), diamond,
                                    grid, [](ChunkId) { return true; });
  std::set<ChunkId> bbox_set(bbox.begin(), bbox.end());
  for (ChunkId q : exact) EXPECT_TRUE(bbox_set.count(q) > 0);
  EXPECT_LT(exact.size(), bbox.size());
}

TEST(WeightedBallTest, WeightsScaleTheReach) {
  // Radius 1 "chunk" with weights (4, 2): reach 4 cells on x, 2 on y.
  const Shape ball =
      Shape::WeightedBall(2, Shape::Norm::kLinf, 1.0, {4.0, 2.0});
  EXPECT_TRUE(ball.Contains({4, 2}));
  EXPECT_TRUE(ball.Contains({-4, -2}));
  EXPECT_FALSE(ball.Contains({5, 0}));
  EXPECT_FALSE(ball.Contains({0, 3}));
}

TEST(WeightedBallTest, L1DiamondInScaledSpace) {
  const Shape ball = Shape::WeightedBall(2, Shape::Norm::kL1, 1.0,
                                         {4.0, 2.0});
  EXPECT_TRUE(ball.Contains({4, 0}));
  EXPECT_TRUE(ball.Contains({0, 2}));
  EXPECT_TRUE(ball.Contains({2, 1}));   // 0.5 + 0.5 = 1
  EXPECT_FALSE(ball.Contains({3, 1}));  // 0.75 + 0.5 > 1
}

TEST(WeightedBallTest, L2EllipseMembership) {
  const Shape ball = Shape::WeightedBall(2, Shape::Norm::kL2, 1.0,
                                         {4.0, 2.0});
  EXPECT_TRUE(ball.Contains({4, 0}));
  EXPECT_TRUE(ball.Contains({0, 2}));
  EXPECT_FALSE(ball.Contains({4, 2}));  // sqrt(1 + 1) > 1
  EXPECT_FALSE(ball.Contains({3, 2}));  // sqrt(0.5625 + 1) > 1
}

TEST(WeightedBallTest, UnitWeightsMatchPlainBalls) {
  EXPECT_EQ(Shape::WeightedBall(2, Shape::Norm::kL1, 2.0, {1.0, 1.0}),
            Shape::L1Ball(2, 2));
  EXPECT_EQ(Shape::WeightedBall(2, Shape::Norm::kLinf, 2.0, {1.0, 1.0}),
            Shape::LinfBall(2, 2));
  EXPECT_EQ(Shape::WeightedBall(2, Shape::Norm::kL2, 2.0, {1.0, 1.0}),
            Shape::L2Ball(2, 2.0));
}

TEST(WeightedBallTest, SubsetDims) {
  const Shape ball = Shape::WeightedBall(3, Shape::Norm::kLinf, 1.0,
                                         {4.0, 2.0}, {1, 2});
  for (const auto& o : ball.offsets()) EXPECT_EQ(o[0], 0);
  EXPECT_TRUE(ball.Contains({0, 4, 2}));
}

}  // namespace
}  // namespace avm
