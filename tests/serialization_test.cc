#include "array/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;

TEST(SerializationTest, RoundTripsContentAndSchema) {
  SparseArray original(Make2DSchema("saved", 40, 8, 24, 6, 2));
  Rng rng(950);
  testing_util::FillRandom(&original, 150, &rng);
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArray(buffer));
  EXPECT_TRUE(loaded.ContentEquals(original));
  EXPECT_TRUE(loaded.schema().StructurallyEquals(original.schema()));
  EXPECT_EQ(loaded.schema().name(), "saved");
}

TEST(SerializationTest, RoundTripsEmptyArray) {
  SparseArray original(Make2DSchema("empty"));
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArray(buffer));
  EXPECT_EQ(loaded.NumCells(), 0u);
  EXPECT_TRUE(loaded.schema().StructurallyEquals(original.schema()));
}

TEST(SerializationTest, PreservesAttributeTypesAndNegativeValues) {
  auto schema = ArraySchema::Create(
      "typed", {{"t", -10, 10, 4}},
      {{"i", AttributeType::kInt64}, {"d", AttributeType::kDouble}});
  ASSERT_OK(schema.status());
  SparseArray original(schema.value());
  ASSERT_OK(original.Set({-7}, std::vector<double>{-42.0, 2.5}));
  ASSERT_OK(original.Set({10}, std::vector<double>{7.0, -0.125}));
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArray(buffer));
  EXPECT_TRUE(loaded.ContentEquals(original));
  EXPECT_EQ(loaded.schema().attrs()[0].type, AttributeType::kInt64);
  EXPECT_EQ((*loaded.Get({-7}))[0], -42.0);
}

TEST(SerializationTest, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "DEFINITELY NOT AN ARRAY FILE";
  EXPECT_TRUE(LoadArray(buffer).status().IsInvalidArgument());
}

TEST(SerializationTest, DetectsTruncation) {
  SparseArray original(Make2DSchema("trunc"));
  Rng rng(951);
  testing_util::FillRandom(&original, 50, &rng);
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_FALSE(LoadArray(cut).ok());
}

TEST(SerializationTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/avm_roundtrip.arr";
  SparseArray original(Make2DSchema("file"));
  Rng rng(952);
  testing_util::FillRandom(&original, 80, &rng);
  ASSERT_OK(SaveArrayToFile(original, path));
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArrayFromFile(path));
  EXPECT_TRUE(loaded.ContentEquals(original));
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsNotFound) {
  EXPECT_TRUE(
      LoadArrayFromFile("/nonexistent/path.arr").status().IsNotFound());
}

}  // namespace
}  // namespace avm
