#include "array/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;

TEST(SerializationTest, RoundTripsContentAndSchema) {
  SparseArray original(Make2DSchema("saved", 40, 8, 24, 6, 2));
  Rng rng(950);
  testing_util::FillRandom(&original, 150, &rng);
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArray(buffer));
  EXPECT_TRUE(loaded.ContentEquals(original));
  EXPECT_TRUE(loaded.schema().StructurallyEquals(original.schema()));
  EXPECT_EQ(loaded.schema().name(), "saved");
}

TEST(SerializationTest, RoundTripsEmptyArray) {
  SparseArray original(Make2DSchema("empty"));
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArray(buffer));
  EXPECT_EQ(loaded.NumCells(), 0u);
  EXPECT_TRUE(loaded.schema().StructurallyEquals(original.schema()));
}

TEST(SerializationTest, PreservesAttributeTypesAndNegativeValues) {
  auto schema = ArraySchema::Create(
      "typed", {{"t", -10, 10, 4}},
      {{"i", AttributeType::kInt64}, {"d", AttributeType::kDouble}});
  ASSERT_OK(schema.status());
  SparseArray original(schema.value());
  ASSERT_OK(original.Set({-7}, std::vector<double>{-42.0, 2.5}));
  ASSERT_OK(original.Set({10}, std::vector<double>{7.0, -0.125}));
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArray(buffer));
  EXPECT_TRUE(loaded.ContentEquals(original));
  EXPECT_EQ(loaded.schema().attrs()[0].type, AttributeType::kInt64);
  EXPECT_EQ((*loaded.Get({-7}))[0], -42.0);
}

TEST(SerializationTest, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "DEFINITELY NOT AN ARRAY FILE";
  EXPECT_TRUE(LoadArray(buffer).status().IsInvalidArgument());
}

TEST(SerializationTest, DetectsTruncation) {
  SparseArray original(Make2DSchema("trunc"));
  Rng rng(951);
  testing_util::FillRandom(&original, 50, &rng);
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_FALSE(LoadArray(cut).ok());
}

TEST(SerializationTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/avm_roundtrip.arr";
  SparseArray original(Make2DSchema("file"));
  Rng rng(952);
  testing_util::FillRandom(&original, 80, &rng);
  ASSERT_OK(SaveArrayToFile(original, path));
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArrayFromFile(path));
  EXPECT_TRUE(loaded.ContentEquals(original));
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsNotFound) {
  EXPECT_TRUE(
      LoadArrayFromFile("/nonexistent/path.arr").status().IsNotFound());
}

TEST(SerializationTest, WritesTheV3Magic) {
  SparseArray original(Make2DSchema("magic"));
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  EXPECT_EQ(buffer.str().substr(0, 8), "AVMARR03");
}

TEST(SerializationTest, ReadsTheLegacyV1Format) {
  SparseArray original(Make2DSchema("legacy", 40, 8, 24, 6, 2));
  Rng rng(953);
  testing_util::FillRandom(&original, 120, &rng);
  std::stringstream buffer;
  ASSERT_OK(SaveArrayV1(original, buffer));
  ASSERT_EQ(buffer.str().substr(0, 8), "AVMARR01");
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArray(buffer));
  EXPECT_TRUE(loaded.ContentEquals(original));
  EXPECT_TRUE(loaded.schema().StructurallyEquals(original.schema()));
}

TEST(SerializationTest, V1AndV2LoadsAgree) {
  SparseArray original(Make2DSchema("agree", 40, 8, 24, 6, 2));
  Rng rng(954);
  testing_util::FillRandom(&original, 200, &rng);
  std::stringstream v1;
  std::stringstream v2;
  ASSERT_OK(SaveArrayV1(original, v1));
  ASSERT_OK(SaveArray(original, v2));
  ASSERT_OK_AND_ASSIGN(SparseArray from_v1, LoadArray(v1));
  ASSERT_OK_AND_ASSIGN(SparseArray from_v2, LoadArray(v2));
  EXPECT_TRUE(from_v1.ContentEquals(from_v2));
}

TEST(SerializationTest, DetectsTruncationInsideABulkBlock) {
  SparseArray original(Make2DSchema("trunc2"));
  Rng rng(955);
  testing_util::FillRandom(&original, 60, &rng);
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  const std::string full = buffer.str();
  // Cut mid-file at several depths: every prefix must fail with a Status,
  // never a crash or a silently short array.
  for (size_t frac = 1; frac < 8; ++frac) {
    std::stringstream cut(full.substr(0, full.size() * frac / 8));
    EXPECT_FALSE(LoadArray(cut).ok()) << "prefix of " << frac << "/8 loaded";
  }
}

TEST(SerializationTest, RejectsCorruptedChunkGeometry) {
  SparseArray original(Make2DSchema("corrupt", 40, 8, 24, 6, 2));
  Rng rng(956);
  testing_util::FillRandom(&original, 100, &rng);
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  const std::string full = buffer.str();
  // Flip a byte in the back half of the file (chunk data, past the schema):
  // the loader must reject the row whose coordinate or offset no longer
  // linearizes to its recorded chunk slot — corrupt data never loads as a
  // structurally invalid array.
  for (size_t pos : {full.size() / 2, full.size() * 3 / 4, full.size() - 9}) {
    std::string flipped = full;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x5A);
    std::stringstream in(flipped);
    auto loaded = LoadArray(in);
    if (loaded.ok()) {
      // A flip in a value byte is legal — the payload doubles carry no
      // structure. The array must still be structurally sound.
      loaded.value().CheckInvariants();
    }
  }
}

/// Pins the densification policy while building fixtures.
class ScopedDensificationMode {
 public:
  explicit ScopedDensificationMode(DensificationMode mode)
      : saved_(GetDensificationMode()) {
    SetDensificationMode(mode);
  }
  ~ScopedDensificationMode() { SetDensificationMode(saved_); }

 private:
  DensificationMode saved_;
};

/// A populated array whose chunks are all dense, on a grid with clipped
/// edge chunks (39 % 8 != 0, 22 % 6 != 0) so the loader's clipped-box
/// validation runs against real geometry.
SparseArray MakeForcedDenseArray(uint64_t seed, size_t cells = 150) {
  ScopedDensificationMode pin(DensificationMode::kForceDense);
  SparseArray array(Make2DSchema("dense", 39, 8, 22, 6, 2));
  Rng rng(seed);
  testing_util::FillRandom(&array, cells, &rng);
  return array;
}

TEST(SerializationTest, DenseChunksRoundTripInTheirRepresentation) {
  SparseArray original = MakeForcedDenseArray(960);
  size_t dense_chunks = 0;
  original.ForEachChunk([&](ChunkId, const Chunk& chunk) {
    if (chunk.rep() == ChunkRep::kDense) ++dense_chunks;
  });
  ASSERT_GT(dense_chunks, 0u);

  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  // Keep the loader on the stored representation, not the live policy.
  ScopedDensificationMode pin(DensificationMode::kAuto);
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArray(buffer));
  EXPECT_TRUE(loaded.ContentEquals(original));
  loaded.CheckInvariants();
  loaded.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    const Chunk* source = original.GetChunk(id);
    ASSERT_NE(source, nullptr);
    EXPECT_EQ(chunk.rep(), source->rep()) << "chunk " << id;
  });
}

TEST(SerializationTest, MixedRepresentationsArePreservedPerChunk) {
  SparseArray original(Make2DSchema("mixed", 39, 8, 22, 6, 2));
  Rng rng(961);
  {
    ScopedDensificationMode pin(DensificationMode::kForceSparse);
    testing_util::FillRandom(&original, 80, &rng);
  }
  {
    // Densify a subset by touching them again under the forced-dense
    // policy: only chunks that receive a mutation convert.
    ScopedDensificationMode pin(DensificationMode::kForceDense);
    testing_util::FillRandom(&original, 20, &rng);
  }
  size_t dense_chunks = 0;
  size_t sparse_chunks = 0;
  original.ForEachChunk([&](ChunkId, const Chunk& chunk) {
    ++(chunk.rep() == ChunkRep::kDense ? dense_chunks : sparse_chunks);
  });
  ASSERT_GT(dense_chunks, 0u);
  ASSERT_GT(sparse_chunks, 0u);

  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  ScopedDensificationMode pin(DensificationMode::kAuto);
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArray(buffer));
  EXPECT_TRUE(loaded.ContentEquals(original));
  loaded.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    EXPECT_EQ(chunk.rep(), original.GetChunk(id)->rep()) << "chunk " << id;
  });
}

TEST(SerializationTest, LegacyV2WriterFlattensDenseChunks) {
  SparseArray original = MakeForcedDenseArray(962);
  std::stringstream buffer;
  ASSERT_OK(SaveArrayV2(original, buffer));
  ASSERT_EQ(buffer.str().substr(0, 8), "AVMARR02");
  ScopedDensificationMode pin(DensificationMode::kAuto);
  ASSERT_OK_AND_ASSIGN(SparseArray loaded, LoadArray(buffer));
  EXPECT_TRUE(loaded.ContentEquals(original));
  // The v2 format has no representation tag: everything loads sparse.
  loaded.ForEachChunk([&](ChunkId, const Chunk& chunk) {
    EXPECT_EQ(chunk.rep(), ChunkRep::kSparse);
  });
}

TEST(SerializationTest, DetectsTruncationInsideDenseBlocks) {
  SparseArray original = MakeForcedDenseArray(963);
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  const std::string full = buffer.str();
  ScopedDensificationMode pin(DensificationMode::kAuto);
  for (size_t frac = 1; frac < 16; ++frac) {
    std::stringstream cut(full.substr(0, full.size() * frac / 16));
    EXPECT_FALSE(LoadArray(cut).ok()) << "prefix of " << frac << "/16 loaded";
  }
}

TEST(SerializationTest, RejectsCorruptedDenseBlocks) {
  SparseArray original = MakeForcedDenseArray(964);
  std::stringstream buffer;
  ASSERT_OK(SaveArray(original, buffer));
  const std::string full = buffer.str();
  ScopedDensificationMode pin(DensificationMode::kAuto);
  // Flip one byte at every 8-byte step through the chunk data (past the
  // schema block). Each flip lands in a representation tag, a volume, a
  // bitmap word, or a value lane; the loader must reject the first three
  // classes (unknown tag / volume mismatch / bit outside the clipped box or
  // under a short population) or, for pure value damage, still produce a
  // structurally sound array.
  for (size_t pos = full.size() / 3; pos < full.size(); pos += 8) {
    std::string flipped = full;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x5A);
    std::stringstream in(flipped);
    auto loaded = LoadArray(in);
    if (loaded.ok()) {
      loaded.value().CheckInvariants();
    }
  }
}

}  // namespace
}  // namespace avm
