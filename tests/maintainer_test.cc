#include "maintenance/maintainer.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::MakeCountViewFixture;
using testing_util::RandomDisjointDelta;
using testing_util::ViewMatchesRecompute;

TEST(MaintainerTest, MethodNames) {
  EXPECT_EQ(MaintenanceMethodName(MaintenanceMethod::kBaseline), "baseline");
  EXPECT_EQ(MaintenanceMethodName(MaintenanceMethod::kDifferential),
            "differential");
  EXPECT_EQ(MaintenanceMethodName(MaintenanceMethod::kReassign), "reassign");
}

// The central correctness property of the whole system: after any sequence
// of maintained batches, the view equals recomputation from scratch —
// for every method, shape, and placement strategy.
struct MaintainCase {
  std::string name;
  MaintenanceMethod method;
  std::string placement;
  int64_t radius;
  bool linf;
  int batches;
  size_t cells_per_batch;
};

class MaintainerPropertyTest : public ::testing::TestWithParam<MaintainCase> {
};

TEST_P(MaintainerPropertyTest, IncrementalEqualsRecompute) {
  const MaintainCase& param = GetParam();
  const Shape shape = param.linf ? Shape::LinfBall(2, param.radius)
                                 : Shape::L1Ball(2, param.radius);
  ASSERT_OK_AND_ASSIGN(
      auto fixture,
      MakeCountViewFixture(4, 150, shape, 100, /*with_sum=*/true,
                           param.placement));
  ViewMaintainer maintainer(fixture.view.get(), param.method);
  Rng rng(200);
  for (int b = 0; b < param.batches; ++b) {
    ASSERT_OK_AND_ASSIGN(SparseArray local_base_now,
                         fixture.view->left_base().Gather());
    SparseArray delta =
        RandomDisjointDelta(local_base_now, param.cells_per_batch, &rng);
    ASSERT_OK_AND_ASSIGN(MaintenanceReport report,
                         maintainer.ApplyBatch(delta));
    EXPECT_EQ(report.delta_cells, param.cells_per_batch);
    ASSERT_TRUE(ViewMatchesRecompute(*fixture.view))
        << param.name << " diverged at batch " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, MaintainerPropertyTest,
    ::testing::Values(
        MaintainCase{"baseline_rr", MaintenanceMethod::kBaseline,
                     "round-robin", 1, false, 3, 60},
        MaintainCase{"differential_rr", MaintenanceMethod::kDifferential,
                     "round-robin", 1, false, 3, 60},
        MaintainCase{"reassign_rr", MaintenanceMethod::kReassign,
                     "round-robin", 1, false, 3, 60},
        MaintainCase{"baseline_hash", MaintenanceMethod::kBaseline, "hash", 1,
                     true, 3, 50},
        MaintainCase{"differential_hash", MaintenanceMethod::kDifferential,
                     "hash", 1, true, 3, 50},
        MaintainCase{"reassign_hash", MaintenanceMethod::kReassign, "hash", 1,
                     true, 3, 50},
        MaintainCase{"reassign_range", MaintenanceMethod::kReassign, "range",
                     2, true, 3, 50},
        MaintainCase{"baseline_range", MaintenanceMethod::kBaseline, "range",
                     2, true, 3, 50},
        MaintainCase{"reassign_large_shape", MaintenanceMethod::kReassign,
                     "round-robin", 3, true, 2, 40}),
    [](const ::testing::TestParamInfo<MaintainCase>& info) {
      return info.param.name;
    });

TEST(MaintainerTest, AsymmetricShapeMaintainsCorrectly) {
  // A backward-looking window (the PTF-5 structure): new cells must update
  // *older* cells' views in one direction only.
  auto window = Shape::MinkowskiSum(Shape::L1Ball(2, 1, {1}),
                                    Shape::Window(2, 0, -6, 0));
  ASSERT_OK(window.status());
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 120, *window, 300));
  ViewMaintainer maintainer(fixture.view.get(),
                            MaintenanceMethod::kReassign);
  Rng rng(301);
  for (int b = 0; b < 3; ++b) {
    ASSERT_OK_AND_ASSIGN(SparseArray base_now,
                         fixture.view->left_base().Gather());
    SparseArray delta = RandomDisjointDelta(base_now, 50, &rng);
    ASSERT_OK(maintainer.ApplyBatch(delta).status());
    ASSERT_TRUE(ViewMatchesRecompute(*fixture.view)) << "batch " << b;
  }
}

TEST(MaintainerTest, EmptyBatchIsANoop) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 80, Shape::L1Ball(2, 1), 310));
  ASSERT_OK_AND_ASSIGN(SparseArray before, fixture.view->array().Gather());
  ViewMaintainer maintainer(fixture.view.get(),
                            MaintenanceMethod::kReassign);
  SparseArray empty(fixture.local_base.schema());
  ASSERT_OK_AND_ASSIGN(MaintenanceReport report,
                       maintainer.ApplyBatch(empty));
  EXPECT_EQ(report.num_pairs, 0u);
  EXPECT_EQ(report.maintenance_seconds, 0.0);
  ASSERT_OK_AND_ASSIGN(SparseArray after, fixture.view->array().Gather());
  EXPECT_TRUE(before.ContentEquals(after));
}

TEST(MaintainerTest, IrrelevantUpdateTouchesNoViewCell) {
  // A delta far away from all data with a small shape: no pairs beyond the
  // delta's own, view gains exactly the new cells' self-counts.
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 0, Shape::L1Ball(2, 1), 311));
  SparseArray delta(fixture.local_base.schema());
  ASSERT_OK(delta.Set({30, 20}, std::vector<double>{1.0}));
  ViewMaintainer maintainer(fixture.view.get(),
                            MaintenanceMethod::kBaseline);
  ASSERT_OK(maintainer.ApplyBatch(delta).status());
  ASSERT_OK_AND_ASSIGN(SparseArray view_now, fixture.view->array().Gather());
  EXPECT_EQ(view_now.NumCells(), 1u);
  EXPECT_TRUE(ViewMatchesRecompute(*fixture.view));
}

TEST(MaintainerTest, BaseArrayReflectsAllBatches) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 100, Shape::L1Ball(2, 1), 312));
  ViewMaintainer maintainer(fixture.view.get(),
                            MaintenanceMethod::kDifferential);
  Rng rng(313);
  SparseArray expected = fixture.local_base.Clone();
  for (int b = 0; b < 3; ++b) {
    SparseArray delta = RandomDisjointDelta(expected, 40, &rng);
    delta.ForEachCell([&](std::span<const int64_t> coord,
                          std::span<const double> values) {
      CellCoord c(coord.begin(), coord.end());
      AVM_CHECK(expected.Set(c, values).ok());
    });
    ASSERT_OK(maintainer.ApplyBatch(delta).status());
  }
  ASSERT_OK_AND_ASSIGN(SparseArray base_now,
                       fixture.view->left_base().Gather());
  EXPECT_TRUE(base_now.ContentEquals(expected));
}

TEST(MaintainerTest, ReportsPlausibleMetrics) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(4, 150, Shape::L1Ball(2, 1), 314));
  ViewMaintainer maintainer(fixture.view.get(),
                            MaintenanceMethod::kReassign);
  Rng rng(315);
  SparseArray delta = RandomDisjointDelta(fixture.local_base, 60, &rng);
  ASSERT_OK_AND_ASSIGN(MaintenanceReport report, maintainer.ApplyBatch(delta));
  EXPECT_GT(report.num_pairs, 0u);
  EXPECT_GE(report.num_triples, report.num_pairs);
  EXPECT_GT(report.num_delta_chunks, 0u);
  EXPECT_GT(report.maintenance_seconds, 0.0);
  EXPECT_GE(report.optimization_seconds(), report.triple_gen_seconds);
  EXPECT_GT(report.exec.joins_executed, 0u);
  EXPECT_GT(report.exec.delta_chunks_merged, 0u);
  EXPECT_EQ(report.modified_cells, 0u);
}

TEST(MaintainerTest, HistoryWindowIsBounded) {
  PlannerOptions options;
  options.history_window = 3;
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 80, Shape::L1Ball(2, 1), 316));
  ViewMaintainer maintainer(fixture.view.get(), MaintenanceMethod::kReassign,
                            options);
  Rng rng(317);
  for (int b = 0; b < 6; ++b) {
    ASSERT_OK_AND_ASSIGN(SparseArray base_now,
                         fixture.view->left_base().Gather());
    SparseArray delta = RandomDisjointDelta(base_now, 20, &rng);
    ASSERT_OK(maintainer.ApplyBatch(delta).status());
  }
  EXPECT_EQ(maintainer.history().size(), 3u);
}

TEST(MaintainerTest, NoReplicasLeakAcrossBatches) {
  // After maintenance, every store holds only primary copies.
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(4, 100, Shape::LinfBall(2, 1),
                                            318));
  ViewMaintainer maintainer(fixture.view.get(),
                            MaintenanceMethod::kReassign);
  Rng rng(319);
  SparseArray delta = RandomDisjointDelta(fixture.local_base, 50, &rng);
  ASSERT_OK(maintainer.ApplyBatch(delta).status());
  Catalog* catalog = fixture.catalog.get();
  Cluster* cluster = fixture.cluster.get();
  size_t stored = 0;
  for (NodeId n = -1; n < 4; ++n) {
    cluster->store(n).ForEach([&](ArrayId array, ChunkId chunk,
                                  const Chunk&) {
      auto primary = catalog->NodeOf(array, chunk);
      ASSERT_TRUE(primary.ok());
      EXPECT_EQ(primary.value(), n)
          << "replica of array " << array << " chunk " << chunk
          << " leaked on node " << n;
      ++stored;
    });
  }
  // Everything the catalog lists is physically present (counted above).
  size_t expected = 0;
  for (const std::string name : {"base", "view"}) {
    auto id = catalog->ArrayIdByName(name);
    ASSERT_OK(id.status());
    expected += catalog->ChunkIdsOf(*id).size();
  }
  EXPECT_EQ(stored, expected);
}

TEST(MaintainerTest, TwoArrayViewMaintainsUnderLeftAndRightDeltas) {
  Catalog catalog;
  Cluster cluster(3);
  const ArraySchema a_schema = testing_util::Make2DSchema("A");
  const ArraySchema b_schema = testing_util::Make2DSchema("B");
  SparseArray a_local(a_schema), b_local(b_schema);
  Rng rng(320);
  testing_util::FillRandom(&a_local, 80, &rng);
  testing_util::FillRandom(&b_local, 80, &rng);
  ASSERT_OK_AND_ASSIGN(
      DistributedArray a,
      DistributedArray::Create(a_schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK_AND_ASSIGN(
      DistributedArray b,
      DistributedArray::Create(b_schema, MakeHashPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(a.Ingest(a_local));
  ASSERT_OK(b.Ingest(b_local));
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "A";
  def.right_array = "B";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::LinfBall(2, 1);
  def.aggregates = {{AggregateFunction::kCount, 0, "cnt"},
                    {AggregateFunction::kSum, 0, "s"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), MakeRoundRobinPlacement(),
                             &catalog, &cluster));
  ViewMaintainer maintainer(&view, MaintenanceMethod::kReassign);

  for (int b_idx = 0; b_idx < 2; ++b_idx) {
    ASSERT_OK_AND_ASSIGN(SparseArray a_now, view.left_base().Gather());
    ASSERT_OK_AND_ASSIGN(SparseArray b_now, view.right_base().Gather());
    SparseArray a_delta = RandomDisjointDelta(a_now, 30, &rng);
    SparseArray b_delta = RandomDisjointDelta(b_now, 30, &rng);
    ASSERT_OK(maintainer.ApplyBatch(a_delta, &b_delta).status());
    ASSERT_TRUE(ViewMatchesRecompute(view)) << "batch " << b_idx;
  }
}

TEST(MaintainerTest, TwoArrayViewLeftOnlyDelta) {
  Catalog catalog;
  Cluster cluster(2);
  const ArraySchema a_schema = testing_util::Make2DSchema("A");
  const ArraySchema b_schema = testing_util::Make2DSchema("B");
  SparseArray a_local(a_schema), b_local(b_schema);
  Rng rng(321);
  testing_util::FillRandom(&a_local, 50, &rng);
  testing_util::FillRandom(&b_local, 50, &rng);
  ASSERT_OK_AND_ASSIGN(
      DistributedArray a,
      DistributedArray::Create(a_schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK_AND_ASSIGN(
      DistributedArray b,
      DistributedArray::Create(b_schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(a.Ingest(a_local));
  ASSERT_OK(b.Ingest(b_local));
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "A";
  def.right_array = "B";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::L1Ball(2, 2);
  def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), MakeRoundRobinPlacement(),
                             &catalog, &cluster));
  ViewMaintainer maintainer(&view, MaintenanceMethod::kDifferential);
  SparseArray a_delta = RandomDisjointDelta(a_local, 25, &rng);
  ASSERT_OK(maintainer.ApplyBatch(a_delta).status());
  EXPECT_TRUE(ViewMatchesRecompute(view));
}

TEST(MaintainerTest, DeterministicAcrossRuns) {
  auto run = [&](uint64_t seed) -> Result<double> {
    AVM_ASSIGN_OR_RETURN(
        auto fixture,
        MakeCountViewFixture(4, 120, Shape::L1Ball(2, 1), seed));
    ViewMaintainer maintainer(fixture.view.get(),
                              MaintenanceMethod::kReassign);
    Rng rng(seed + 1);
    double total = 0;
    for (int b = 0; b < 2; ++b) {
      AVM_ASSIGN_OR_RETURN(SparseArray base_now,
                           fixture.view->left_base().Gather());
      SparseArray delta = RandomDisjointDelta(base_now, 40, &rng);
      AVM_ASSIGN_OR_RETURN(MaintenanceReport report,
                           maintainer.ApplyBatch(delta));
      total += report.maintenance_seconds;
    }
    return total;
  };
  auto r1 = run(777);
  auto r2 = run(777);
  ASSERT_OK(r1.status());
  ASSERT_OK(r2.status());
  EXPECT_DOUBLE_EQ(*r1, *r2);
}

}  // namespace
}  // namespace avm
