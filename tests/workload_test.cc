#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "tests/test_util.h"
#include "workload/geo.h"
#include "workload/ptf.h"

namespace avm {
namespace {

PtfOptions SmallPtf() {
  PtfOptions options;
  options.time_range = 2240;
  options.base_cells = 3000;
  options.batch_cells_min = 300;
  options.batch_cells_max = 600;
  return options;
}

TEST(PtfGeneratorTest, BaseHasRequestedCells) {
  ASSERT_OK_AND_ASSIGN(PtfGenerator gen, PtfGenerator::Create(SmallPtf()));
  EXPECT_EQ(gen.base().NumCells(), 3000u);
  EXPECT_EQ(gen.schema().num_dims(), 3u);
  EXPECT_EQ(gen.schema().num_attrs(), 2u);
}

TEST(PtfGeneratorTest, DeterministicForSeed) {
  ASSERT_OK_AND_ASSIGN(PtfGenerator g1, PtfGenerator::Create(SmallPtf()));
  ASSERT_OK_AND_ASSIGN(PtfGenerator g2, PtfGenerator::Create(SmallPtf()));
  EXPECT_TRUE(g1.base().ContentEquals(g2.base()));
  ASSERT_OK_AND_ASSIGN(auto b1, g1.MakeRealBatches(3));
  ASSERT_OK_AND_ASSIGN(auto b2, g2.MakeRealBatches(3));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(b1[i].ContentEquals(b2[i]));
  }
}

TEST(PtfGeneratorTest, NoCoordinateEverRepeats) {
  ASSERT_OK_AND_ASSIGN(PtfGenerator gen, PtfGenerator::Create(SmallPtf()));
  std::unordered_set<CellCoord, CoordHash> seen;
  auto absorb = [&](const SparseArray& array) {
    array.ForEachCell(
        [&](std::span<const int64_t> coord, std::span<const double>) {
          EXPECT_TRUE(
              seen.insert(CellCoord(coord.begin(), coord.end())).second);
        });
  };
  absorb(gen.base());
  ASSERT_OK_AND_ASSIGN(auto real, gen.MakeRealBatches(2));
  for (const auto& b : real) absorb(b);
  ASSERT_OK_AND_ASSIGN(auto corr, gen.MakeCorrelatedBatches(3));
  for (const auto& b : corr) absorb(b);
  ASSERT_OK_AND_ASSIGN(auto peri, gen.MakePeriodicBatches(4));
  for (const auto& b : peri) absorb(b);
}

TEST(PtfGeneratorTest, RealBatchesAdvanceInTime) {
  ASSERT_OK_AND_ASSIGN(PtfGenerator gen, PtfGenerator::Create(SmallPtf()));
  ASSERT_OK_AND_ASSIGN(auto batches, gen.MakeRealBatches(3));
  int64_t last_max_time = 0;
  for (const auto& batch : batches) {
    int64_t min_time = INT64_MAX, max_time = 0;
    batch.ForEachCell(
        [&](std::span<const int64_t> coord, std::span<const double>) {
          min_time = std::min(min_time, coord[0]);
          max_time = std::max(max_time, coord[0]);
        });
    EXPECT_GT(min_time, last_max_time);
    last_max_time = max_time;
  }
}

TEST(PtfGeneratorTest, RealBatchSizesVary) {
  ASSERT_OK_AND_ASSIGN(PtfGenerator gen, PtfGenerator::Create(SmallPtf()));
  ASSERT_OK_AND_ASSIGN(auto batches, gen.MakeRealBatches(5));
  std::set<uint64_t> sizes;
  for (const auto& batch : batches) {
    EXPECT_GE(batch.NumCells(), SmallPtf().batch_cells_min);
    EXPECT_LE(batch.NumCells(), SmallPtf().batch_cells_max);
    sizes.insert(batch.NumCells());
  }
  EXPECT_GT(sizes.size(), 1u);  // night-to-night variation
}

TEST(PtfGeneratorTest, CorrelatedBatchesShareChunkFootprint) {
  ASSERT_OK_AND_ASSIGN(PtfGenerator gen, PtfGenerator::Create(SmallPtf()));
  ASSERT_OK_AND_ASSIGN(auto batches, gen.MakeCorrelatedBatches(4));
  const auto footprint = batches[0].ChunkIds();
  for (const auto& batch : batches) {
    // Footprints are near-identical (same pointing, same time slice).
    const auto ids = batch.ChunkIds();
    size_t common = 0;
    std::set<ChunkId> base_set(footprint.begin(), footprint.end());
    for (ChunkId id : ids) common += base_set.count(id);
    EXPECT_GE(static_cast<double>(common),
              0.8 * static_cast<double>(footprint.size()));
  }
}

TEST(PtfGeneratorTest, PeriodicBatchesFollowThePattern) {
  ASSERT_OK_AND_ASSIGN(PtfGenerator gen, PtfGenerator::Create(SmallPtf()));
  ASSERT_OK_AND_ASSIGN(auto batches, gen.MakePeriodicBatches(10));
  auto footprint = [](const SparseArray& b) {
    auto ids = b.ChunkIds();
    return std::set<ChunkId>(ids.begin(), ids.end());
  };
  // Pattern 1,2,3,3,2,1,...: batches 2 and 3 share a pointing, 0 and 5 too.
  auto overlap = [&](int i, int j) {
    const auto a = footprint(batches[static_cast<size_t>(i)]);
    const auto b = footprint(batches[static_cast<size_t>(j)]);
    size_t common = 0;
    for (ChunkId id : a) common += b.count(id);
    return static_cast<double>(common) /
           static_cast<double>(std::max(a.size(), b.size()));
  };
  EXPECT_GT(overlap(2, 3), 0.7);
  EXPECT_GT(overlap(0, 5), 0.7);
  EXPECT_LT(overlap(0, 1), 0.5);  // different pointings barely overlap
}

TEST(PtfGeneratorTest, SpreadBatchesStayInWindow) {
  ASSERT_OK_AND_ASSIGN(PtfGenerator gen, PtfGenerator::Create(SmallPtf()));
  const int64_t spread = 4;
  ASSERT_OK_AND_ASSIGN(auto batches, gen.MakeSpreadBatches(2, spread, 200));
  const PtfOptions& options = gen.options();
  const int64_t ra_half = spread * options.ra_chunk / 2;
  const int64_t dec_half = spread * options.dec_chunk / 2;
  for (const auto& batch : batches) {
    batch.ForEachCell(
        [&](std::span<const int64_t> coord, std::span<const double>) {
          EXPECT_NEAR(static_cast<double>(coord[1]),
                      static_cast<double>(options.ra_range / 2),
                      static_cast<double>(ra_half) + 1);
          EXPECT_NEAR(static_cast<double>(coord[2]),
                      static_cast<double>(options.dec_range / 2),
                      static_cast<double>(dec_half) + 1);
        });
  }
}

TEST(PtfGeneratorTest, FailsWhenTimeRangeExhausted) {
  PtfOptions options = SmallPtf();
  options.time_range = options.night_len * (options.base_nights + 2);
  ASSERT_OK_AND_ASSIGN(PtfGenerator gen, PtfGenerator::Create(options));
  ASSERT_OK(gen.MakeRealBatches(2).status());
  EXPECT_TRUE(gen.MakeRealBatches(1).status().IsOutOfRange());
}

TEST(PtfGeneratorTest, DecSkewConcentratesDetections) {
  PtfOptions options = SmallPtf();
  options.dec_sigma_frac = 0.05;
  ASSERT_OK_AND_ASSIGN(PtfGenerator gen, PtfGenerator::Create(options));
  // At least 60% of base cells within 2 sigma of the band, widened by the
  // pointing window's half extent (night pointings spread around their
  // center).
  const double mean =
      options.dec_mean_frac * static_cast<double>(options.dec_range);
  const double two_sigma =
      2 * options.dec_sigma_frac * static_cast<double>(options.dec_range) +
      static_cast<double>(options.pointing_dec_chunks * options.dec_chunk) /
          2.0;
  size_t inside = 0;
  gen.base().ForEachCell(
      [&](std::span<const int64_t> coord, std::span<const double>) {
        if (std::abs(static_cast<double>(coord[2]) - mean) <= two_sigma) {
          ++inside;
        }
      });
  EXPECT_GT(static_cast<double>(inside),
            0.6 * static_cast<double>(gen.base().NumCells()));
}

GeoOptions SmallGeo() {
  GeoOptions options;
  options.seed_pois = 800;
  options.batch_frac = 0.02;
  return options;
}

TEST(GeoGeneratorTest, SplitsBaseAndBatches) {
  ASSERT_OK_AND_ASSIGN(GeoDataset dataset, GenerateGeo(SmallGeo(), 5));
  EXPECT_EQ(dataset.random_batches.size(), 5u);
  EXPECT_GT(dataset.base.NumCells(), 0u);
  for (const auto& batch : dataset.random_batches) {
    EXPECT_GT(batch.NumCells(), 0u);
  }
}

TEST(GeoGeneratorTest, BatchesDisjointFromBaseAndEachOther) {
  ASSERT_OK_AND_ASSIGN(GeoDataset dataset, GenerateGeo(SmallGeo(), 4));
  std::unordered_set<CellCoord, CoordHash> seen;
  auto absorb = [&](const SparseArray& array) {
    array.ForEachCell(
        [&](std::span<const int64_t> coord, std::span<const double>) {
          EXPECT_TRUE(
              seen.insert(CellCoord(coord.begin(), coord.end())).second);
        });
  };
  absorb(dataset.base);
  for (const auto& batch : dataset.random_batches) absorb(batch);
}

TEST(GeoGeneratorTest, DeterministicForSeed) {
  ASSERT_OK_AND_ASSIGN(GeoDataset d1, GenerateGeo(SmallGeo(), 3));
  ASSERT_OK_AND_ASSIGN(GeoDataset d2, GenerateGeo(SmallGeo(), 3));
  EXPECT_TRUE(d1.base.ContentEquals(d2.base));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(d1.random_batches[i].ContentEquals(d2.random_batches[i]));
  }
}

TEST(GeoGeneratorTest, CorrelatedBatchesReuseFootprint) {
  ASSERT_OK_AND_ASSIGN(GeoDataset dataset, GenerateGeo(SmallGeo(), 3));
  ASSERT_OK_AND_ASSIGN(auto correlated,
                       MakeCorrelatedGeoBatches(&dataset, 4));
  const auto proto = dataset.random_batches[0].ChunkIds();
  for (const auto& batch : correlated) {
    EXPECT_EQ(batch.ChunkIds(), proto);
  }
}

TEST(GeoGeneratorTest, PeriodicRequiresThreePrototypes) {
  ASSERT_OK_AND_ASSIGN(GeoDataset dataset, GenerateGeo(SmallGeo(), 2));
  EXPECT_TRUE(
      MakePeriodicGeoBatches(&dataset, 4).status().IsInvalidArgument());
}

TEST(GeoGeneratorTest, PeriodicCyclesPrototypes) {
  ASSERT_OK_AND_ASSIGN(GeoDataset dataset, GenerateGeo(SmallGeo(), 3));
  ASSERT_OK_AND_ASSIGN(auto periodic, MakePeriodicGeoBatches(&dataset, 10));
  ASSERT_EQ(periodic.size(), 10u);
  // Pattern 0,1,2,2,1,0,0,1,2,2: batches 2 and 3 share a footprint.
  EXPECT_EQ(periodic[2].ChunkIds(), periodic[3].ChunkIds());
  EXPECT_EQ(periodic[0].ChunkIds(), periodic[5].ChunkIds());
}

TEST(GeoGeneratorTest, ClustersMakeDataSkewed) {
  GeoOptions options = SmallGeo();
  options.uniform_frac = 0.0;
  options.num_clusters = 3;
  ASSERT_OK_AND_ASSIGN(GeoDataset dataset, GenerateGeo(options, 0));
  // With 3 tight clusters, the occupied chunks are far fewer than the grid.
  const ChunkGrid grid(dataset.schema);
  EXPECT_LT(dataset.base.NumChunks(),
            static_cast<size_t>(grid.TotalChunkSlots() / 2));
}

}  // namespace
}  // namespace avm
