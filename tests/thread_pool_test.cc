#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace avm {
namespace {

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); });
  // Inline execution: the task already ran, on the calling thread.
  EXPECT_EQ(ran_on, caller);
  pool.Wait();  // no-op, must not hang
}

TEST(ThreadPoolTest, ClampsThreadCountToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOneItems) {
  ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(64, [&](size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ThreadPoolTest, ParallelForUsesMultipleThreadsWhenAvailable) {
  ThreadPool pool(4);
  Mutex mu;
  std::set<std::thread::id> ids;
  pool.ParallelFor(256, [&](size_t) {
    MutexLock lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  // The caller thread always participates; with 3 workers more may join. On
  // a single-core host everything may still land on one thread, so only
  // assert the set is non-empty and bounded by the pool size.
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 4u);
}

}  // namespace
}  // namespace avm
