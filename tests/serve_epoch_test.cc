#include "serve/epoch_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "array/chunk.h"
#include "common/rng.h"
#include "serve/view_epoch.h"
#include "shape/shape.h"
#include "storage/chunk_store.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::MakeCountViewFixture;
using testing_util::ViewFixture;

/// A standalone handle to a 2-d, 1-attr chunk with `cells` rows.
ChunkHandle MakeHandle(size_t cells) {
  auto chunk = std::make_shared<Chunk>(/*num_dims=*/2, /*num_attrs=*/1);
  CellCoord coord(2);
  for (size_t i = 0; i < cells; ++i) {
    coord[0] = static_cast<int64_t>(i / 8);
    coord[1] = static_cast<int64_t>(i % 8);
    const double v = static_cast<double>(i);
    chunk->UpsertCell(i, coord, {&v, 1});
  }
  return chunk;
}

/// A pin of a synthetic one-chunk view (no catalog/cluster needed).
ViewPin MakePin(const std::string& name, size_t cells) {
  ViewPin pin;
  pin.name = name;
  pin.schema = testing_util::Make2DSchema(name);
  pin.layout = AggregateLayout::Create(
                   {{AggregateFunction::kCount, 0, "cnt"}}, 1)
                   .value();
  pin.chunks.emplace(0, MakeHandle(cells));
  pin.cells = cells;
  return pin;
}

TEST(ViewEpochTest, PublishAssignsMonotoneIdsStartingAtOne) {
  EpochManager manager;
  EXPECT_EQ(manager.current_epoch_id(), 0u);
  EXPECT_FALSE(manager.OpenSnapshot().valid());
  EXPECT_EQ(manager.OpenSnapshot().epoch_id(), 0u);

  std::vector<ViewPin> first;
  first.push_back(MakePin("v", 4));
  EXPECT_EQ(manager.Publish(std::move(first)), 1u);
  for (uint64_t expected = 2; expected <= 6; ++expected) {
    std::vector<ViewPin> pins;
    pins.push_back(MakePin("v", 4));
    EXPECT_EQ(manager.Publish(std::move(pins)), expected);
    EXPECT_EQ(manager.current_epoch_id(), expected);
  }
}

TEST(ViewEpochTest, SnapshotHeldAcrossPublishesReadsOriginalHandles) {
  EpochManager manager;
  std::vector<ViewPin> pins;
  pins.push_back(MakePin("v", 7));
  manager.Publish(std::move(pins));

  ReadSnapshot held = manager.OpenSnapshot();
  ASSERT_TRUE(held.valid());
  EXPECT_EQ(held.epoch_id(), 1u);
  const ViewPin* pin = held.epoch().Find("v");
  ASSERT_NE(pin, nullptr);
  const Chunk* original = pin->chunks.at(0).get();

  for (int i = 0; i < 10; ++i) {
    std::vector<ViewPin> next;
    next.push_back(MakePin("v", 7 + i));
    manager.Publish(std::move(next));
  }
  EXPECT_EQ(manager.current_epoch_id(), 11u);

  // The held snapshot still resolves the exact pre-publish handles.
  EXPECT_EQ(held.epoch_id(), 1u);
  EXPECT_EQ(held.epoch().Find("v")->chunks.at(0).get(), original);
  EXPECT_EQ(held.epoch().Find("v")->chunks.at(0)->num_cells(), 7u);

  ReadSnapshot fresh = manager.OpenSnapshot();
  EXPECT_EQ(fresh.epoch_id(), 11u);
  EXPECT_NE(fresh.epoch().Find("v")->chunks.at(0).get(), original);
}

TEST(ViewEpochTest, RetiredEpochFreesSoleOwnerChunks) {
  EnableTelemetry();
  MetricsRegistry::Global().ResetForTesting();
  const int64_t pins_before = EpochPinsActive();

  EpochManager manager;
  ChunkStore store;
  std::weak_ptr<const Chunk> watch;
  {
    // The chunk lives in a store, is pinned by epoch 1, then erased from the
    // store — the epoch is now the sole owner.
    Chunk chunk(2, 1);
    const double v = 3.0;
    chunk.UpsertCell(0, {1, 1}, {&v, 1});
    store.Put(0, 0, std::move(chunk));
    ViewPin pin = MakePin("v", 2);
    pin.chunks[0] = store.GetHandle(0, 0);
    watch = pin.chunks[0];
    std::vector<ViewPin> pins;
    pins.push_back(std::move(pin));
    manager.Publish(std::move(pins));
    store.Erase(0, 0);
  }
  EXPECT_EQ(EpochPinsActive(), pins_before + 1);
  EXPECT_FALSE(watch.expired()) << "pinned chunk freed while its epoch lives";
  EXPECT_EQ(manager.epochs_live(), 1u);

  // Superseding with no open snapshots retires epoch 1 immediately; its
  // sole-owner chunk must be freed with it (no leak).
  std::vector<ViewPin> next;
  next.push_back(MakePin("v", 3));
  manager.Publish(std::move(next));
  EXPECT_TRUE(watch.expired())
      << "retired epoch must release its sole-owner chunks";
  EXPECT_EQ(manager.epochs_live(), 1u);
  EXPECT_EQ(EpochPinsActive(), pins_before + 1);

  // The pin count is mirrored to the store.epochs_live gauge.
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter(CounterId::kServeEpochsPublished), 2u);
  EXPECT_EQ(snapshot.counter(CounterId::kServeEpochsRetired), 1u);
  DisableTelemetry();
}

TEST(ViewEpochTest, SnapshotKeepsSupersededEpochAliveUntilDropped) {
  const int64_t pins_before = EpochPinsActive();
  EpochManager manager;
  std::vector<ViewPin> pins;
  pins.push_back(MakePin("v", 5));
  manager.Publish(std::move(pins));

  std::weak_ptr<const Chunk> watch;
  {
    ReadSnapshot held = manager.OpenSnapshot();
    watch = held.epoch().Find("v")->chunks.at(0);
    std::vector<ViewPin> next;
    next.push_back(MakePin("v", 6));
    manager.Publish(std::move(next));
    // Superseded but pinned by `held`: chunk stays, both epochs live.
    EXPECT_FALSE(watch.expired());
    EXPECT_EQ(manager.epochs_live(), 2u);
    EXPECT_EQ(EpochPinsActive(), pins_before + 2);
  }
  // Last reader dropped: epoch 1 retires on the closing thread.
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(manager.epochs_live(), 1u);
  EXPECT_EQ(EpochPinsActive(), pins_before + 1);

  const EpochManager::RetirementStats stats = manager.retirement();
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.retired, 1u);
  EXPECT_EQ(stats.lagged, 1u);
  EXPECT_GE(stats.max_lag_seconds, 0.0);
  EXPECT_GE(stats.total_lag_seconds, 0.0);
}

TEST(ViewEpochTest, MoveTransfersTheLease) {
  EpochManager manager;
  std::vector<ViewPin> pins;
  pins.push_back(MakePin("v", 2));
  manager.Publish(std::move(pins));

  ReadSnapshot a = manager.OpenSnapshot();
  ASSERT_TRUE(a.valid());
  ReadSnapshot b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): tested on purpose
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.epoch_id(), 1u);
  ReadSnapshot c;
  c = std::move(b);
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(manager.epochs_live(), 1u);
}

// Randomized open/close/publish interleavings: after every step the manager's
// live-epoch accounting, the process-wide pin count, and every snapshot's
// pinned id must agree with a shadow model.
TEST(ViewEpochTest, RandomizedInterleavingsKeepAccountingExact) {
  const int64_t pins_before = EpochPinsActive();
  EpochManager manager;
  Rng rng(20260809);
  std::vector<ReadSnapshot> open;
  std::vector<uint64_t> open_ids;  // shadow: epoch id per open snapshot
  uint64_t last_published = 0;

  for (int step = 0; step < 400; ++step) {
    const uint64_t action = rng.Uniform(3);
    if (action == 0) {
      std::vector<ViewPin> pins;
      pins.push_back(MakePin("v", 1 + rng.Uniform(8)));
      const uint64_t id = manager.Publish(std::move(pins));
      EXPECT_EQ(id, last_published + 1) << "publish ids must be monotone";
      last_published = id;
    } else if (action == 1 && last_published > 0) {
      ReadSnapshot snapshot = manager.OpenSnapshot();
      ASSERT_TRUE(snapshot.valid());
      EXPECT_EQ(snapshot.epoch_id(), last_published)
          << "a new snapshot must pin the current epoch";
      open_ids.push_back(snapshot.epoch_id());
      open.push_back(std::move(snapshot));
    } else if (!open.empty()) {
      const size_t victim = rng.Uniform(open.size());
      EXPECT_EQ(open[victim].epoch_id(), open_ids[victim])
          << "a held snapshot must keep its epoch id across publishes";
      open.erase(open.begin() + victim);
      open_ids.erase(open_ids.begin() + victim);
    }

    // Live epochs = the current one plus every distinct superseded epoch
    // still pinned by an open snapshot.
    std::set<uint64_t> alive(open_ids.begin(), open_ids.end());
    if (last_published > 0) alive.insert(last_published);
    EXPECT_EQ(manager.epochs_live(), alive.size());
    EXPECT_EQ(EpochPinsActive() - pins_before,
              static_cast<int64_t>(alive.size()));
  }

  open.clear();
  if (last_published > 0) {
    EXPECT_EQ(manager.epochs_live(), 1u);
    EXPECT_EQ(EpochPinsActive() - pins_before, 1);
  }
  const EpochManager::RetirementStats stats = manager.retirement();
  EXPECT_EQ(stats.published, last_published);
  EXPECT_EQ(stats.retired + manager.epochs_live(), stats.published);
}

TEST(ViewEpochTest, PinViewCapturesTheMaintainedViewByValue) {
  ASSERT_OK_AND_ASSIGN(ViewFixture fixture,
                       MakeCountViewFixture(/*num_workers=*/2,
                                            /*base_cells=*/60,
                                            Shape::LinfBall(2, 1)));
  EpochManager manager;
  ViewPin pin = EpochManager::PinView(*fixture.view);
  EXPECT_EQ(pin.name, "view");
  EXPECT_EQ(pin.array_id, fixture.view->array().id());
  EXPECT_EQ(pin.cells, fixture.view->array().NumCells());
  EXPECT_EQ(pin.layout.num_specs(), fixture.view->layout().num_specs());
  uint64_t pinned_cells = 0;
  for (const auto& [chunk_id, handle] : pin.chunks) {
    ASSERT_NE(handle, nullptr);
    pinned_cells += handle->num_cells();
  }
  EXPECT_EQ(pinned_cells, pin.cells);
  std::vector<ViewPin> pins;
  pins.push_back(std::move(pin));
  EXPECT_EQ(manager.Publish(std::move(pins)), 1u);
  EXPECT_GT(manager.OpenSnapshot().epoch().PinnedBytes(), 0u);
}

TEST(ViewEpochTest, AttachedMaintainerPublishesAtBatchCommit) {
  ASSERT_OK_AND_ASSIGN(ViewFixture fixture,
                       MakeCountViewFixture(/*num_workers=*/2,
                                            /*base_cells=*/50,
                                            Shape::LinfBall(2, 1)));
  EpochManager manager;
  ViewMaintainer maintainer(fixture.view.get(), MaintenanceMethod::kReassign);
  maintainer.AttachEpochManager(&manager);
  EXPECT_EQ(manager.current_epoch_id(), 0u);

  Rng rng(7);
  for (uint64_t batch = 1; batch <= 3; ++batch) {
    const SparseArray delta =
        testing_util::RandomDisjointDelta(fixture.local_base, 20, &rng);
    delta.ForEachCell([&](std::span<const int64_t> c,
                          std::span<const double> v) {
      const CellCoord coord(c.begin(), c.end());
      AVM_CHECK(fixture.local_base.Set(coord, v).ok());
    });
    ASSERT_OK_AND_ASSIGN(MaintenanceReport report,
                         maintainer.ApplyBatch(delta));
    EXPECT_EQ(report.published_epoch, batch);
    EXPECT_EQ(manager.current_epoch_id(), batch);
  }
}

}  // namespace
}  // namespace avm
