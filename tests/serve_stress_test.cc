#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "array/chunk.h"
#include "common/mutex.h"
#include "maintenance/deletions.h"
#include "serve/epoch_manager.h"
#include "serve/snapshot_query.h"
#include "shape/shape.h"
#include "storage/chunk_store.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::MakeCountViewFixture;
using testing_util::ViewFixture;

class ScopedDensificationMode {
 public:
  explicit ScopedDensificationMode(DensificationMode mode)
      : saved_(GetDensificationMode()) {
    SetDensificationMode(mode);
  }
  ~ScopedDensificationMode() { SetDensificationMode(saved_); }

 private:
  DensificationMode saved_;
};

// The concurrency stress oracle of the serve layer: M reader threads open
// snapshots and evaluate a fixed probe query while the control thread commits
// K maintenance batches (inserts and deletions) and publishes each commit as
// an epoch. Every observed result must bit-match the expected finalized view
// of *some* published epoch — no torn reads (a mix of two epochs), no
// invented epochs — and epoch ids must be non-decreasing per reader.
//
// Protocol: the control thread derives the expected finalized content from
// the freshly maintained view (itself cross-checked against the differential
// oracle's from-scratch recomputation), registers it under the epoch id it is
// about to publish, and only then publishes. A reader can therefore never
// observe an epoch whose expectation is not yet registered.
//
// The whole schedule runs under TSan in the serve-smoke CI job. The
// densification mode is part of the schedule: under kForceDense every
// pinned epoch holds dense chunks, so mutations behind a live pin exercise
// the COW deep copy of the dense representation.
void RunConcurrentReaderStress(DensificationMode mode, uint64_t seed) {
  ScopedDensificationMode pin(mode);
  constexpr int kReaders = 3;
  constexpr int kBatches = 6;
  constexpr size_t kBatchCells = 24;
  const int num_workers = 2;

  ASSERT_OK_AND_ASSIGN(
      ViewFixture fixture,
      MakeCountViewFixture(num_workers, /*base_cells=*/120,
                           Shape::LinfBall(2, 1), seed,
                           /*with_sum=*/true));
  MaterializedView* view = fixture.view.get();
  ViewMaintainer maintainer(view, MaintenanceMethod::kReassign);
  EpochManager manager;

  // Expected finalized content per published epoch, registered pre-publish.
  // Test mutexes rank kLeaf (the default): acquired last, so they must not
  // be held across manager calls — the manager's own locks rank lower.
  Mutex oracle_mu{"test.oracle"};
  std::map<uint64_t, SparseArray> expected;

  auto publish_with_oracle = [&]() {
    ASSERT_OK_AND_ASSIGN(SparseArray finalized, view->GatherFinalized());
    const uint64_t next_id = manager.current_epoch_id() + 1;
    {
      MutexLock lock(oracle_mu);
      expected.emplace(next_id, std::move(finalized));
    }
    const uint64_t id = manager.Publish({EpochManager::PinView(*view)});
    MutexLock lock(oracle_mu);
    ASSERT_TRUE(expected.count(id) == 1)
        << "published id " << id << " skipped the registered expectation";
  };
  publish_with_oracle();  // epoch 1: the initial materialization

  // Representation preconditions: the epoch just pinned must actually hold
  // chunks in the representation under test.
  {
    ChunkStore::FormatResidency residency;
    for (int n = 0; n < num_workers; ++n) {
      const auto r = fixture.cluster->store(n).ResidencyByFormat();
      residency.sparse_chunks += r.sparse_chunks;
      residency.dense_chunks += r.dense_chunks;
    }
    if (mode == DensificationMode::kForceDense) {
      ASSERT_GT(residency.dense_chunks, 0u)
          << "forced-dense fixture pinned no dense chunks";
    } else {
      ASSERT_GT(residency.sparse_chunks, 0u);
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_served{0};
  Mutex failures_mu{"test.failures"};
  std::vector<std::string> failures;
  auto fail = [&](std::string message) {
    MutexLock lock(failures_mu);
    failures.push_back(std::move(message));
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_seen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ReadSnapshot snapshot = manager.OpenSnapshot();
        Result<SnapshotQueryResult> result =
            EvaluateSnapshotQuery(snapshot, SnapshotQuery{"view", {}, {}});
        if (!result.ok()) {
          fail("reader " + std::to_string(r) +
               ": query failed: " + result.status().ToString());
          return;
        }
        const uint64_t epoch = result.value().epoch_id;
        if (epoch < last_seen) {
          fail("reader " + std::to_string(r) + ": epoch went backwards: " +
               std::to_string(last_seen) + " -> " + std::to_string(epoch));
          return;
        }
        last_seen = epoch;
        // The oracle check runs under oracle_mu; fail() takes the (equally
        // leaf-ranked) failures mutex, so report only after releasing.
        std::string mismatch;
        {
          MutexLock lock(oracle_mu);
          auto it = expected.find(epoch);
          if (it == expected.end()) {
            mismatch = "reader " + std::to_string(r) + ": observed epoch " +
                       std::to_string(epoch) + " was never registered";
          } else if (!result.value().finalized.ContentEquals(it->second,
                                                             0.0)) {
            // Bit-match (tolerance 0): the result must be exactly the
            // finalized content of the published epoch, not a torn blend.
            mismatch = "reader " + std::to_string(r) +
                       ": result diverged from epoch " +
                       std::to_string(epoch) + " (torn read?)";
          }
        }
        if (!mismatch.empty()) {
          fail(std::move(mismatch));
          return;
        }
        queries_served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Maintenance loop: alternate insert batches with deletion batches, verify
  // the maintained view against the differential oracle, publish each commit.
  Rng rng(99);
  for (int batch = 0; batch < kBatches; ++batch) {
    if (batch % 2 == 0) {
      const SparseArray delta = testing_util::RandomDisjointDelta(
          fixture.local_base, kBatchCells, &rng);
      delta.ForEachCell([&](std::span<const int64_t> c,
                            std::span<const double> v) {
        const CellCoord coord(c.begin(), c.end());
        ASSERT_OK(fixture.local_base.Set(coord, v));
      });
      ASSERT_OK(maintainer.ApplyBatch(delta));
    } else {
      // Delete a sample of existing cells.
      SparseArray doomed(fixture.local_base.schema());
      size_t taken = 0;
      fixture.local_base.ForEachCell([&](std::span<const int64_t> c,
                                         std::span<const double> v) {
        if (taken >= kBatchCells / 2 || rng.Uniform(4) != 0) return;
        const CellCoord coord(c.begin(), c.end());
        ASSERT_OK(doomed.Set(coord, v));
        ++taken;
      });
      doomed.ForEachCell([&](std::span<const int64_t> c,
                             std::span<const double>) {
        const CellCoord coord(c.begin(), c.end());
        ASSERT_TRUE(fixture.local_base.Erase(coord));
      });
      ASSERT_OK(ApplyDeletionBatch(view, doomed));
    }
    ASSERT_TRUE(testing_util::ViewMatchesRecompute(*view));
    publish_with_oracle();
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  for (const std::string& message : failures) ADD_FAILURE() << message;
  EXPECT_GT(queries_served.load(), 0u) << "readers never completed a query";
  EXPECT_EQ(manager.current_epoch_id(),
            static_cast<uint64_t>(kBatches) + 1);

  // Quiesced: the final epoch's content equals the live view's.
  ASSERT_OK_AND_ASSIGN(
      SnapshotQueryResult last,
      EvaluateSnapshotQuery(manager.OpenSnapshot(),
                            SnapshotQuery{"view", {}, {}}));
  ASSERT_OK_AND_ASSIGN(SparseArray now, view->GatherFinalized());
  EXPECT_TRUE(last.finalized.ContentEquals(now, 0.0));
}

TEST(ServeStressTest, ConcurrentReadersBitMatchSomePublishedEpoch) {
  RunConcurrentReaderStress(DensificationMode::kAuto, /*seed=*/11);
}

// Same schedule with every chunk forced dense: snapshot readers hold pins
// on epochs of dense chunks while maintenance mutates them, so every COW
// break deep-copies the dense buffers under concurrency (TSan-checked in
// the serve-smoke CI job).
TEST(ServeStressTest, ConcurrentReadersPinEpochsOfDenseChunks) {
  RunConcurrentReaderStress(DensificationMode::kForceDense, /*seed=*/13);
}

// Bounded (regioned) snapshot queries prune by the pinned grid geometry and
// still return exactly the finalized cells inside the region.
TEST(ServeStressTest, BoundedQueryMatchesFilteredGather) {
  ASSERT_OK_AND_ASSIGN(ViewFixture fixture,
                       MakeCountViewFixture(/*num_workers=*/2,
                                            /*base_cells=*/100,
                                            Shape::LinfBall(2, 1)));
  EpochManager manager;
  manager.Publish({EpochManager::PinView(*fixture.view)});

  const SnapshotQuery query{"view", {1, 1}, {12, 9}};
  ASSERT_OK_AND_ASSIGN(
      SnapshotQueryResult result,
      EvaluateSnapshotQuery(manager.OpenSnapshot(), query));
  ASSERT_OK_AND_ASSIGN(SparseArray all, fixture.view->GatherFinalized());
  SparseArray inside(result.finalized.schema());
  all.ForEachCell([&](std::span<const int64_t> c,
                      std::span<const double> v) {
    if (c[0] < 1 || c[0] > 12 || c[1] < 1 || c[1] > 9) return;
    const CellCoord coord(c.begin(), c.end());
    ASSERT_OK(inside.Set(coord, v));
  });
  EXPECT_TRUE(result.finalized.ContentEquals(inside, 0.0));
  EXPECT_GE(result.cells_scanned, inside.NumCells());
  EXPECT_LE(result.cells_scanned, all.NumCells())
      << "chunk pruning must not scan more than the whole view";
}

TEST(ServeStressTest, QueryErrorsAreTyped) {
  EpochManager manager;
  const Result<SnapshotQueryResult> invalid =
      EvaluateSnapshotQuery(manager.OpenSnapshot(), SnapshotQuery{"v", {}, {}});
  EXPECT_EQ(invalid.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_OK_AND_ASSIGN(ViewFixture fixture,
                       MakeCountViewFixture(/*num_workers=*/1,
                                            /*base_cells=*/20,
                                            Shape::LinfBall(2, 1)));
  manager.Publish({EpochManager::PinView(*fixture.view)});
  EXPECT_EQ(EvaluateSnapshotQuery(manager.OpenSnapshot(),
                                  SnapshotQuery{"nope", {}, {}})
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(EvaluateSnapshotQuery(manager.OpenSnapshot(),
                                  SnapshotQuery{"view", {1}, {2}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EvaluateSnapshotQuery(manager.OpenSnapshot(),
                                  SnapshotQuery{"view", {5, 5}, {1, 1}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace avm
