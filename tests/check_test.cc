#include "common/check.h"

#include <gtest/gtest.h>

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace avm {
namespace {

TEST(CheckTest, HandlerRoundTrips) {
  CheckFailureHandler previous =
      SetCheckFailureHandler(ThrowingCheckFailureHandler);
  EXPECT_EQ(SetCheckFailureHandler(previous), &ThrowingCheckFailureHandler);
}

TEST(CheckTest, NullRestoresDefaultHandler) {
  SetCheckFailureHandler(ThrowingCheckFailureHandler);
  SetCheckFailureHandler(nullptr);
  EXPECT_EQ(SetCheckFailureHandler(nullptr), &AbortingCheckFailureHandler);
}

TEST(CheckTest, ScopedHandlerRestoresOnExit) {
  CheckFailureHandler before = SetCheckFailureHandler(nullptr);
  SetCheckFailureHandler(before);
  {
    ScopedThrowingCheckHandler guard;
    EXPECT_THROW(AVM_CHECK(false), CheckFailedError);
  }
  EXPECT_EQ(SetCheckFailureHandler(before), before);
}

TEST(CheckTest, PassingCheckIsSilent) {
  ScopedThrowingCheckHandler guard;
  AVM_CHECK(true);
  AVM_CHECK(1 + 1 == 2) << "never evaluated";
  AVM_CHECK_EQ(4, 4);
  AVM_CHECK_NE(4, 5);
  AVM_CHECK_LT(4, 5);
  AVM_CHECK_LE(4, 4);
  AVM_CHECK_GT(5, 4);
  AVM_CHECK_GE(5, 5);
}

TEST(CheckTest, FailureMessageNamesConditionAndLocation) {
  ScopedThrowingCheckHandler guard;
  try {
    AVM_CHECK(2 < 1);
    FAIL() << "check did not fire";
  } catch (const CheckFailedError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Check failed: 2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
  }
}

TEST(CheckTest, StreamedContextReachesTheMessage) {
  ScopedThrowingCheckHandler guard;
  const int n = -3;
  try {
    AVM_CHECK(n >= 0) << "need a count, got " << n;
    FAIL() << "check did not fire";
  } catch (const CheckFailedError& e) {
    EXPECT_NE(std::string(e.what()).find("need a count, got -3"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckTest, ComparisonFormsPrintBothOperands) {
  ScopedThrowingCheckHandler guard;
  try {
    AVM_CHECK_EQ(3, 4) << "extra";
    FAIL() << "check did not fire";
  } catch (const CheckFailedError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("(3 vs 4)"), std::string::npos) << what;
    EXPECT_NE(what.find("extra"), std::string::npos) << what;
  }
}

TEST(CheckTest, BindsCorrectlyInsideUnbracedIfElse) {
  ScopedThrowingCheckHandler guard;
  // The ternary expansion must not capture the else branch.
  bool reached_else = false;
  if (false)
    AVM_CHECK(true) << "not this one";
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

Status CountedStatus(int* calls, Status result) {
  ++*calls;
  return result;
}

TEST(CheckTest, CheckOkPassesAndEvaluatesOnce) {
  ScopedThrowingCheckHandler guard;
  int calls = 0;
  AVM_CHECK_OK(CountedStatus(&calls, Status::OK()));
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, CheckOkFailureCarriesStatusAndContext) {
  ScopedThrowingCheckHandler guard;
  int calls = 0;
  try {
    AVM_CHECK_OK(CountedStatus(&calls, Status::InvalidArgument("bad arg")))
        << "while testing";
    FAIL() << "check did not fire";
  } catch (const CheckFailedError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad arg"), std::string::npos) << what;
    EXPECT_NE(what.find("while testing"), std::string::npos) << what;
  }
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, CheckOkAcceptsResult) {
  ScopedThrowingCheckHandler guard;
  Result<int> good(7);
  AVM_CHECK_OK(good);
  Result<int> bad(Status::NotFound("no such thing"));
  EXPECT_THROW(AVM_CHECK_OK(bad), CheckFailedError);
}

TEST(CheckTest, CheckOkBindsCorrectlyInsideUnbracedIfElse) {
  ScopedThrowingCheckHandler guard;
  bool reached_else = false;
  if (false)
    AVM_CHECK_OK(Status::OK());
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

bool SetFlagAndReturnTrue(bool* flag) {
  *flag = true;
  return true;
}

TEST(CheckTest, DcheckEvaluatesOperandsOnlyInDebugBuilds) {
  ScopedThrowingCheckHandler guard;
  bool evaluated = false;
  AVM_DCHECK(SetFlagAndReturnTrue(&evaluated));
  EXPECT_EQ(evaluated, kDebugChecksEnabled);

  int ok_calls = 0;
  AVM_DCHECK_OK(CountedStatus(&ok_calls, Status::OK()));
  EXPECT_EQ(ok_calls, kDebugChecksEnabled ? 1 : 0);
}

TEST(CheckTest, DcheckFiresOnlyInDebugBuilds) {
  ScopedThrowingCheckHandler guard;
  if (kDebugChecksEnabled) {
    EXPECT_THROW(AVM_DCHECK(false), CheckFailedError);
    EXPECT_THROW(AVM_DCHECK_EQ(1, 2), CheckFailedError);
    EXPECT_THROW(AVM_DCHECK_OK(Status::Internal("boom")), CheckFailedError);
  } else {
    AVM_DCHECK(false) << "dead in this build";
    AVM_DCHECK_EQ(1, 2);
    AVM_DCHECK_OK(Status::Internal("boom"));
  }
}

TEST(CheckTest, DebugChecksFlagMatchesBuildMode) {
#ifdef NDEBUG
  EXPECT_FALSE(kDebugChecksEnabled);
#else
  EXPECT_TRUE(kDebugChecksEnabled);
#endif
}

TEST(CheckTest, ThrowingHandlerFormatsFileLineMessage) {
  try {
    ThrowingCheckFailureHandler("some/file.cc", 42, "the message");
    FAIL() << "handler did not throw";
  } catch (const CheckFailedError& e) {
    EXPECT_STREQ(e.what(), "some/file.cc:42 the message");
  }
}

}  // namespace
}  // namespace avm
