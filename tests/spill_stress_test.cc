#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "array/chunk.h"
#include "buffer/buffer_manager.h"
#include "common/mutex.h"
#include "serve/epoch_manager.h"
#include "serve/snapshot_query.h"
#include "shape/shape.h"
#include "storage/chunk_store.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::MakeCountViewFixture;
using testing_util::ViewFixture;

// The out-of-core concurrency stress oracle: snapshot readers evaluate a
// probe query against pinned view epochs while (a) the control thread runs
// maintenance batches and (b) a dedicated churn thread keeps driving the
// buffer manager's clock hand, so unpinned chunks spill to disk and fault
// back in continuously under the readers' feet. The invariants are the
// serve layer's, unchanged by spilling: every observed result bit-matches
// the finalized content of some published epoch (an epoch's pins are
// handles, i.e. eviction-proof), epoch ids are monotone per reader, and the
// maintained view always equals from-scratch recomputation.
//
// Runs under TSan in the spill-smoke CI job: the schedule crosses the
// BufferManager(25) -> ChunkStore(30) -> SpillFile(35) lock path with the
// store-access path on every fault-in, so races in the residency-note
// plumbing or the clock ring surface here.
TEST(SpillStressTest, ReadersBitMatchEpochsWhileBufferManagerChurns) {
  constexpr int kReaders = 3;
  constexpr int kBatches = 6;
  constexpr size_t kBatchCells = 24;
  const int num_workers = 2;

  ASSERT_OK_AND_ASSIGN(
      ViewFixture fixture,
      MakeCountViewFixture(num_workers, /*base_cells=*/150,
                           Shape::LinfBall(2, 1), /*seed=*/17,
                           /*with_sum=*/true));
  MaterializedView* view = fixture.view.get();

  // Budget: a quarter of the post-materialization footprint, so the
  // maintenance loop and the readers themselves generate constant
  // spill/reload traffic.
  uint64_t footprint = 0;
  auto add_store = [&](NodeId n) {
    const ChunkStore::FormatResidency r =
        fixture.cluster->store(n).ResidencyByFormat();
    footprint += r.sparse_bytes + r.dense_bytes;
  };
  for (NodeId n = 0; n < num_workers; ++n) add_store(n);
  add_store(kCoordinatorNode);
  ASSERT_GT(footprint, 0u);

  BufferOptions options;
  options.budget_bytes = footprint / 4;
  options.spill_dir = "spill_stress_tmp";
  BufferManager manager(options);
  for (NodeId n = 0; n < num_workers; ++n) {
    manager.Register(&fixture.cluster->store(n));
  }
  manager.Register(&fixture.cluster->store(kCoordinatorNode));
  ASSERT_GT(manager.GetStats().evictions, 0u)
      << "the budget must actually force spills before the stress starts";

  ViewMaintainer maintainer(view, MaintenanceMethod::kReassign);
  EpochManager epochs;

  // Expected finalized content per published epoch, registered pre-publish
  // (see serve_stress_test.cc for the protocol).
  Mutex oracle_mu{"test.oracle"};
  std::map<uint64_t, SparseArray> expected;
  auto publish_with_oracle = [&]() {
    ASSERT_OK_AND_ASSIGN(SparseArray finalized, view->GatherFinalized());
    const uint64_t next_id = epochs.current_epoch_id() + 1;
    {
      MutexLock lock(oracle_mu);
      expected.emplace(next_id, std::move(finalized));
    }
    const uint64_t id = epochs.Publish({EpochManager::PinView(*view)});
    MutexLock lock(oracle_mu);
    ASSERT_TRUE(expected.count(id) == 1);
  };
  publish_with_oracle();  // epoch 1: the initial materialization

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_served{0};
  Mutex failures_mu{"test.failures"};
  std::vector<std::string> failures;
  auto fail = [&](std::string message) {
    MutexLock lock(failures_mu);
    failures.push_back(std::move(message));
  };

  // The churn thread: re-enforces the budget in a tight loop, so the clock
  // hand keeps sweeping (and evicting whatever the readers and the
  // maintainer just unpinned) concurrently with everything else.
  std::thread churn([&] {
    while (!stop.load(std::memory_order_acquire)) {
      manager.Rebalance();
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_seen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ReadSnapshot snapshot = epochs.OpenSnapshot();
        Result<SnapshotQueryResult> result =
            EvaluateSnapshotQuery(snapshot, SnapshotQuery{"view", {}, {}});
        if (!result.ok()) {
          fail("reader " + std::to_string(r) +
               ": query failed: " + result.status().ToString());
          return;
        }
        const uint64_t epoch = result.value().epoch_id;
        if (epoch < last_seen) {
          fail("reader " + std::to_string(r) + ": epoch went backwards");
          return;
        }
        last_seen = epoch;
        std::string mismatch;
        {
          MutexLock lock(oracle_mu);
          auto it = expected.find(epoch);
          if (it == expected.end()) {
            mismatch = "reader " + std::to_string(r) + ": observed epoch " +
                       std::to_string(epoch) + " was never registered";
          } else if (!result.value().finalized.ContentEquals(it->second,
                                                             0.0)) {
            mismatch = "reader " + std::to_string(r) +
                       ": result diverged from epoch " +
                       std::to_string(epoch) +
                       " (torn read under spill churn?)";
          }
        }
        if (!mismatch.empty()) {
          fail(std::move(mismatch));
          return;
        }
        queries_served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Rng rng(45);
  for (int batch = 0; batch < kBatches; ++batch) {
    const SparseArray delta = testing_util::RandomDisjointDelta(
        fixture.local_base, kBatchCells, &rng);
    delta.ForEachCell(
        [&](std::span<const int64_t> c, std::span<const double> v) {
          const CellCoord coord(c.begin(), c.end());
          ASSERT_OK(fixture.local_base.Set(coord, v));
        });
    ASSERT_OK(maintainer.ApplyBatch(delta));
    ASSERT_TRUE(testing_util::ViewMatchesRecompute(*view));
    publish_with_oracle();
  }

  stop.store(true, std::memory_order_release);
  churn.join();
  for (std::thread& reader : readers) reader.join();

  for (const std::string& message : failures) ADD_FAILURE() << message;
  EXPECT_GT(queries_served.load(), 0u) << "readers never completed a query";
  EXPECT_EQ(epochs.current_epoch_id(), static_cast<uint64_t>(kBatches) + 1);

  // Quiesced cross-check: the last epoch's pinned (eviction-proof) content
  // must equal a fresh gather of the live view, which faults whatever is
  // currently spilled back in — the spilled and resident halves of the
  // view agree bit for bit.
  ASSERT_OK_AND_ASSIGN(
      SnapshotQueryResult last,
      EvaluateSnapshotQuery(epochs.OpenSnapshot(),
                            SnapshotQuery{"view", {}, {}}));
  ASSERT_OK_AND_ASSIGN(SparseArray now, view->GatherFinalized());
  EXPECT_TRUE(last.finalized.ContentEquals(now, 0.0));
}

}  // namespace
}  // namespace avm
