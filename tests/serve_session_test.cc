#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "aql/session.h"
#include "common/mutex.h"
#include "tests/test_util.h"

namespace avm::aql {
namespace {

/// Two arrays, one maintained view over each: the smallest session where
/// per-view (non-atomic) publishing would be observable.
class ServeSessionTest : public ::testing::Test {
 protected:
  ServeSessionTest() : cluster_(2), session_(&catalog_, &cluster_) {}

  void SetUpViews() {
    ASSERT_OK(session_.Execute("CREATE ARRAY A <r> [i=1,12,3; j=1,12,3]")
                  .status());
    ASSERT_OK(session_.Execute("CREATE ARRAY B <r> [i=1,12,3; j=1,12,3]")
                  .status());
    mirror_a_ = SparseArray(session_.GetArray("A")->schema());
    mirror_b_ = SparseArray(session_.GetArray("B")->schema());
    Rng rng(5);
    SparseArray init_a = testing_util::RandomDisjointDelta(mirror_a_, 30, &rng);
    SparseArray init_b = testing_util::RandomDisjointDelta(mirror_b_, 30, &rng);
    Absorb(&mirror_a_, init_a);
    Absorb(&mirror_b_, init_b);
    ASSERT_OK(session_.InsertCells("A", init_a).status());
    ASSERT_OK(session_.InsertCells("B", init_b).status());
    ASSERT_OK(session_
                  .Execute("CREATE ARRAY VIEW VA AS SELECT COUNT(*) AS cnt "
                           "FROM A A1 SIMILARITY JOIN A A2 "
                           "ON (A1.i = A2.i) AND (A1.j = A2.j) "
                           "WITH SHAPE L1(1) GROUP BY A1.i, A1.j")
                  .status());
    ASSERT_OK(session_
                  .Execute("CREATE ARRAY VIEW VB AS SELECT COUNT(*) AS cnt "
                           "FROM B B1 SIMILARITY JOIN B B2 "
                           "ON (B1.i = B2.i) AND (B1.j = B2.j) "
                           "WITH SHAPE LINF(1) GROUP BY B1.i, B1.j")
                  .status());
  }

  static void Absorb(SparseArray* into, const SparseArray& delta) {
    delta.ForEachCell([&](std::span<const int64_t> c,
                          std::span<const double> v) {
      const CellCoord coord(c.begin(), c.end());
      ASSERT_OK(into->Set(coord, v));
    });
  }

  Catalog catalog_;
  Cluster cluster_;
  AqlSession session_;
  SparseArray mirror_a_{testing_util::Make2DSchema("unused")};
  SparseArray mirror_b_{testing_util::Make2DSchema("unused")};
};

TEST_F(ServeSessionTest, StatementsPublishOneEpochForTheWholeViewSet) {
  SetUpViews();
  // Plain ingests (no views yet) publish nothing; each CREATE VIEW publishes
  // exactly one epoch. VA's creation epoch does not carry VB yet.
  EXPECT_EQ(session_.epoch_manager().current_epoch_id(), 2u);
  ReadSnapshot snapshot = session_.OpenSnapshot();
  ASSERT_TRUE(snapshot.valid());
  EXPECT_NE(snapshot.epoch().Find("VA"), nullptr);
  EXPECT_NE(snapshot.epoch().Find("VB"), nullptr);

  // One InsertCells = one epoch, even though only VA is maintained by it.
  Rng rng(17);
  const SparseArray delta =
      testing_util::RandomDisjointDelta(mirror_a_, 10, &rng);
  Absorb(&mirror_a_, delta);
  ASSERT_OK_AND_ASSIGN(auto reports, session_.InsertCells("A", delta));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].published_epoch, 3u);
  EXPECT_EQ(session_.epoch_manager().current_epoch_id(), 3u);
}

TEST_F(ServeSessionTest, HeldSnapshotServesThePrePublishViewSet) {
  SetUpViews();
  ReadSnapshot held = session_.OpenSnapshot();
  ASSERT_OK_AND_ASSIGN(SnapshotQueryResult va_before,
                       session_.Query(held, SnapshotQuery{"VA", {}, {}}));
  ASSERT_OK_AND_ASSIGN(SnapshotQueryResult vb_before,
                       session_.Query(held, SnapshotQuery{"VB", {}, {}}));

  Rng rng(23);
  const SparseArray delta =
      testing_util::RandomDisjointDelta(mirror_a_, 12, &rng);
  Absorb(&mirror_a_, delta);
  ASSERT_OK(session_.InsertCells("A", delta).status());

  // The held snapshot still reads the pre-batch content of BOTH views.
  ASSERT_OK_AND_ASSIGN(SnapshotQueryResult va_held,
                       session_.Query(held, SnapshotQuery{"VA", {}, {}}));
  ASSERT_OK_AND_ASSIGN(SnapshotQueryResult vb_held,
                       session_.Query(held, SnapshotQuery{"VB", {}, {}}));
  EXPECT_EQ(va_held.epoch_id, va_before.epoch_id);
  EXPECT_TRUE(va_held.finalized.ContentEquals(va_before.finalized, 0.0));
  EXPECT_TRUE(vb_held.finalized.ContentEquals(vb_before.finalized, 0.0));

  // A fresh snapshot sees the new epoch: VA moved, VB re-pinned unchanged.
  ASSERT_OK_AND_ASSIGN(SnapshotQueryResult va_now,
                       session_.Query(SnapshotQuery{"VA", {}, {}}));
  ASSERT_OK_AND_ASSIGN(SnapshotQueryResult vb_now,
                       session_.Query(SnapshotQuery{"VB", {}, {}}));
  EXPECT_EQ(va_now.epoch_id, va_before.epoch_id + 1);
  EXPECT_FALSE(va_now.finalized.ContentEquals(va_before.finalized, 0.0));
  EXPECT_TRUE(vb_now.finalized.ContentEquals(vb_before.finalized, 0.0));
  ASSERT_OK_AND_ASSIGN(SparseArray va_truth,
                       session_.GetView("VA")->GatherFinalized());
  EXPECT_TRUE(va_now.finalized.ContentEquals(va_truth, 0.0));
}

// The regression the serve layer exists to prevent: while batches land
// alternately in A and B, no snapshot may ever pair view VA from one epoch
// with view VB from another. A reader thread keeps querying both views
// through one snapshot; every observed (epoch, VA, VB) triple must match the
// (VA, VB) pair the control thread recorded for exactly that epoch.
TEST_F(ServeSessionTest, ReadersNeverObserveATornViewSet) {
  SetUpViews();

  struct Pair {
    SparseArray va;
    SparseArray vb;
  };
  Mutex mu{"test.torn_view_oracle"};
  std::map<uint64_t, Pair> expected;   // control thread, post-statement
  std::map<uint64_t, Pair> observed;   // reader, first observation per epoch
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  auto record_expected = [&](uint64_t epoch) {
    ASSERT_OK_AND_ASSIGN(SparseArray va,
                         session_.GetView("VA")->GatherFinalized());
    ASSERT_OK_AND_ASSIGN(SparseArray vb,
                         session_.GetView("VB")->GatherFinalized());
    MutexLock lock(mu);
    expected.emplace(epoch, Pair{std::move(va), std::move(vb)});
  };
  record_expected(session_.epoch_manager().current_epoch_id());

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ReadSnapshot snapshot = session_.OpenSnapshot();
      Result<SnapshotQueryResult> va =
          session_.Query(snapshot, SnapshotQuery{"VA", {}, {}});
      Result<SnapshotQueryResult> vb =
          session_.Query(snapshot, SnapshotQuery{"VB", {}, {}});
      if (!va.ok() || !vb.ok()) continue;
      reads.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(mu);
      if (observed.count(va.value().epoch_id) == 0) {
        observed.emplace(va.value().epoch_id,
                         Pair{std::move(va.value().finalized),
                              std::move(vb.value().finalized)});
      }
    }
  });

  Rng rng(31);
  for (int batch = 0; batch < 4; ++batch) {
    SparseArray* mirror = (batch % 2 == 0) ? &mirror_a_ : &mirror_b_;
    const std::string target = (batch % 2 == 0) ? "A" : "B";
    const SparseArray delta =
        testing_util::RandomDisjointDelta(*mirror, 10, &rng);
    Absorb(mirror, delta);
    ASSERT_OK_AND_ASSIGN(auto reports, session_.InsertCells(target, delta));
    ASSERT_EQ(reports.size(), 1u);
    record_expected(reports[0].published_epoch);
  }
  // The tiny batches can outrun the reader; let it observe the (already
  // registered) final epoch before stopping so the oracle checks something.
  while (reads.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(reads.load(), 0u);
  for (const auto& [epoch, pair] : observed) {
    auto it = expected.find(epoch);
    ASSERT_NE(it, expected.end())
        << "reader observed unpublished epoch " << epoch;
    EXPECT_TRUE(pair.va.ContentEquals(it->second.va, 0.0))
        << "VA content of epoch " << epoch << " was torn";
    EXPECT_TRUE(pair.vb.ContentEquals(it->second.vb, 0.0))
        << "VB content of epoch " << epoch << " was torn";
  }
}

}  // namespace
}  // namespace avm::aql
