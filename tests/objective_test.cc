#include "maintenance/objective.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace avm {
namespace {

/// A hand-built two-pair triple set on 2 workers:
///   pair 0: delta chunk 1 (coordinator, 100 B) x base chunk 2 (node 0,
///           300 B), affecting view chunk 1 (node 1, 50 B)
///   pair 1: delta chunk 1 x delta chunk 3 (coordinator, 200 B), affecting
///           view chunk 3 (new)
TripleSet MakeTriples() {
  TripleSet triples;
  const MChunkRef d1{ChunkSide::kLeftDelta, 1};
  const MChunkRef b2{ChunkSide::kLeftBase, 2};
  const MChunkRef d3{ChunkSide::kLeftDelta, 3};
  triples.location[d1] = kCoordinatorNode;
  triples.location[b2] = 0;
  triples.location[d3] = kCoordinatorNode;
  triples.bytes[d1] = 100;
  triples.bytes[b2] = 300;
  triples.bytes[d3] = 200;
  JoinPair p0;
  p0.a = b2;
  p0.b = d1;
  p0.dir_ab = p0.dir_ba = true;
  p0.bytes = 400;
  p0.view_targets_ab = {1};
  JoinPair p1;
  p1.a = d1;
  p1.b = d3;
  p1.dir_ab = true;
  p1.bytes = 300;
  p1.view_targets_ab = {3};
  triples.pairs = {p0, p1};
  triples.view_location[1] = 1;
  triples.view_bytes[1] = 50;
  return triples;
}

CostModel UnitCost() {
  CostModel cost;
  cost.t_ntwk_per_byte = 1.0;  // 1 second per byte: easy arithmetic
  cost.t_cpu_per_byte = 0.5;
  return cost;
}

TEST(ObjectiveTest, HandComputedPlanCost) {
  const TripleSet triples = MakeTriples();
  MaintenancePlan plan;
  // Join both pairs at node 1; ship d1 from the coordinator and b2 from 0.
  plan.transfers.push_back({{ChunkSide::kLeftDelta, 1}, kCoordinatorNode, 1});
  plan.transfers.push_back({{ChunkSide::kLeftBase, 2}, 0, 1});
  plan.transfers.push_back({{ChunkSide::kLeftDelta, 3}, kCoordinatorNode, 1});
  plan.joins.push_back({0, 1});
  plan.joins.push_back({1, 1});
  plan.view_home[1] = 1;  // merge local to the join node
  plan.view_home[3] = 0;  // new chunk homed elsewhere -> merge term fires
  ASSERT_OK_AND_ASSIGN(
      ObjectiveBreakdown breakdown,
      EvaluateCurrentBatchObjective(plan, triples, 2, UnitCost()));
  // Node 0 sends b2 (300 B): ntwk[0] = 300. The coordinator (slot 2) sends
  // d1 + d3 = 300 but is not scored. Joins at node 1: cpu[1] = 0.5 * (400 +
  // 300) = 350. Merge term: pair 1's result (300 B) ships from node 1 to
  // view chunk 3's home 0: ntwk[1] = 300; pair 0 merges locally.
  EXPECT_DOUBLE_EQ(breakdown.ntwk[0], 300.0);
  EXPECT_DOUBLE_EQ(breakdown.ntwk[1], 300.0);
  EXPECT_DOUBLE_EQ(breakdown.ntwk[2], 300.0);  // coordinator, informational
  EXPECT_DOUBLE_EQ(breakdown.cpu[1], 350.0);
  EXPECT_DOUBLE_EQ(breakdown.Makespan(), 350.0);  // max over workers only
}

TEST(ObjectiveTest, MergeTermToggles) {
  const TripleSet triples = MakeTriples();
  MaintenancePlan plan;
  plan.joins.push_back({0, 0});  // join where both operands... (cost only)
  plan.joins.push_back({1, 0});
  plan.view_home[1] = 1;  // remote merge from node 0
  plan.view_home[3] = 0;
  ASSERT_OK_AND_ASSIGN(
      ObjectiveBreakdown with_merge,
      EvaluateCurrentBatchObjective(plan, triples, 2, UnitCost(), true));
  ASSERT_OK_AND_ASSIGN(
      ObjectiveBreakdown without_merge,
      EvaluateCurrentBatchObjective(plan, triples, 2, UnitCost(), false));
  // With the merge term, pair 0's 400 B result ships 0 -> 1.
  EXPECT_DOUBLE_EQ(with_merge.ntwk[0] - without_merge.ntwk[0], 400.0);
}

TEST(ObjectiveTest, ViewRelocationCharged) {
  const TripleSet triples = MakeTriples();
  MaintenancePlan plan;
  plan.joins.push_back({0, 1});
  plan.joins.push_back({1, 1});
  plan.view_home[1] = 0;  // move the existing 50 B view chunk off node 1
  plan.view_home[3] = 1;
  ASSERT_OK_AND_ASSIGN(
      ObjectiveBreakdown breakdown,
      EvaluateCurrentBatchObjective(plan, triples, 2, UnitCost(), true));
  // Node 1 ships pair 0's result (400) to node 0, plus the view chunk move
  // (50): 450.
  EXPECT_DOUBLE_EQ(breakdown.ntwk[1], 450.0);
}

TEST(ObjectiveTest, RejectsUnknownChunksAndPairs) {
  const TripleSet triples = MakeTriples();
  MaintenancePlan bad_transfer;
  bad_transfer.transfers.push_back({{ChunkSide::kLeftBase, 99}, 0, 1});
  EXPECT_TRUE(
      EvaluateCurrentBatchObjective(bad_transfer, triples, 2, UnitCost())
          .status()
          .IsInvalidArgument());
  MaintenancePlan bad_join;
  bad_join.joins.push_back({7, 0});
  EXPECT_TRUE(EvaluateCurrentBatchObjective(bad_join, triples, 2, UnitCost())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(EvaluateCurrentBatchObjective(MaintenancePlan{}, triples, 0,
                                            UnitCost())
                  .status()
                  .IsInvalidArgument());
}

TEST(ObjectiveTest, AllViewTargetsCacheMatchesRecompute) {
  JoinPair pair;
  pair.view_targets_ab = {3, 1};
  pair.view_targets_ba = {2, 3};
  // Lazily computed union is sorted and deduplicated.
  EXPECT_EQ(pair.AllViewTargets(), (std::vector<ChunkId>{1, 2, 3}));
  // Idempotent.
  EXPECT_EQ(pair.AllViewTargets(), (std::vector<ChunkId>{1, 2, 3}));
}

}  // namespace
}  // namespace avm
