#include "cluster/distributed_array.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;

class DistributedArrayTest : public ::testing::Test {
 protected:
  DistributedArrayTest() : cluster_(3), local_(Make2DSchema("A")) {}

  Catalog catalog_;
  Cluster cluster_;
  SparseArray local_;
};

TEST_F(DistributedArrayTest, CreateRegistersInCatalog) {
  auto array = DistributedArray::Create(Make2DSchema("A"),
                                        MakeRoundRobinPlacement(), &catalog_,
                                        &cluster_);
  ASSERT_OK(array.status());
  EXPECT_OK(catalog_.ArrayIdByName("A").status());
}

TEST_F(DistributedArrayTest, OpenBindsExisting) {
  ASSERT_OK(DistributedArray::Create(Make2DSchema("A"),
                                     MakeRoundRobinPlacement(), &catalog_,
                                     &cluster_)
                .status());
  auto opened = DistributedArray::Open("A", &catalog_, &cluster_);
  ASSERT_OK(opened.status());
  EXPECT_TRUE(DistributedArray::Open("missing", &catalog_, &cluster_)
                  .status()
                  .IsNotFound());
}

TEST_F(DistributedArrayTest, IngestDistributesByPlacement) {
  Rng rng(3);
  testing_util::FillRandom(&local_, 120, &rng);
  auto array = DistributedArray::Create(Make2DSchema("A"),
                                        MakeRoundRobinPlacement(), &catalog_,
                                        &cluster_);
  ASSERT_OK(array.status());
  ASSERT_OK(array->Ingest(local_));
  EXPECT_EQ(array->NumCells(), 120u);
  EXPECT_EQ(array->NumChunks(), local_.NumChunks());
  // Chunks must land on the placement-designated nodes.
  for (ChunkId id : catalog_.ChunkIdsOf(array->id())) {
    const NodeId expected = catalog_.PlaceByStrategy(array->id(), id, 3);
    EXPECT_EQ(catalog_.NodeOf(array->id(), id).value(), expected);
    EXPECT_TRUE(cluster_.store(expected).Contains(array->id(), id));
  }
}

TEST_F(DistributedArrayTest, IngestRejectsSchemaMismatch) {
  auto array = DistributedArray::Create(Make2DSchema("A"),
                                        MakeRoundRobinPlacement(), &catalog_,
                                        &cluster_);
  ASSERT_OK(array.status());
  SparseArray other(Make2DSchema("B", 10, 5, 10, 5));
  EXPECT_TRUE(array->Ingest(other).IsInvalidArgument());
}

TEST_F(DistributedArrayTest, GatherRoundTripsContent) {
  Rng rng(4);
  testing_util::FillRandom(&local_, 200, &rng);
  auto array = DistributedArray::Create(Make2DSchema("A"),
                                        MakeHashPlacement(), &catalog_,
                                        &cluster_);
  ASSERT_OK(array.status());
  ASSERT_OK(array->Ingest(local_));
  auto gathered = array->Gather();
  ASSERT_OK(gathered.status());
  EXPECT_TRUE(gathered->ContentEquals(local_));
}

TEST_F(DistributedArrayTest, IngestUpsertsIntoExistingChunks) {
  auto array = DistributedArray::Create(Make2DSchema("A"),
                                        MakeRoundRobinPlacement(), &catalog_,
                                        &cluster_);
  ASSERT_OK(array.status());
  ASSERT_OK(local_.Set({1, 1}, std::vector<double>{1.0}));
  ASSERT_OK(array->Ingest(local_));
  SparseArray more(Make2DSchema("A"));
  ASSERT_OK(more.Set({1, 2}, std::vector<double>{2.0}));   // same chunk
  ASSERT_OK(more.Set({1, 1}, std::vector<double>{9.0}));   // overwrite
  ASSERT_OK(array->Ingest(more));
  auto gathered = array->Gather();
  ASSERT_OK(gathered.status());
  EXPECT_EQ(gathered->NumCells(), 2u);
  EXPECT_EQ((*gathered->Get({1, 1}))[0], 9.0);
}

TEST_F(DistributedArrayTest, PutChunkToCoordinator) {
  auto array = DistributedArray::Create(Make2DSchema("A"),
                                        MakeRoundRobinPlacement(), &catalog_,
                                        &cluster_);
  ASSERT_OK(array.status());
  Chunk chunk(2, 1);
  chunk.UpsertCell(0, {1, 1}, std::vector<double>{1.0});
  ASSERT_OK(array->PutChunk(0, std::move(chunk), kCoordinatorNode));
  EXPECT_EQ(catalog_.NodeOf(array->id(), 0).value(), kCoordinatorNode);
  EXPECT_TRUE(cluster_.store(kCoordinatorNode).Contains(array->id(), 0));
}

TEST_F(DistributedArrayTest, PutChunkRejectsBadNode) {
  auto array = DistributedArray::Create(Make2DSchema("A"),
                                        MakeRoundRobinPlacement(), &catalog_,
                                        &cluster_);
  ASSERT_OK(array.status());
  EXPECT_TRUE(
      array->PutChunk(0, Chunk(2, 1), 99).IsInvalidArgument());
}

TEST_F(DistributedArrayTest, AccumulateIntoChunkMergesAndTracksBytes) {
  auto array = DistributedArray::Create(Make2DSchema("A"),
                                        MakeRoundRobinPlacement(), &catalog_,
                                        &cluster_);
  ASSERT_OK(array.status());
  Chunk delta(2, 1);
  delta.UpsertCell(0, {1, 1}, std::vector<double>{2.0});
  ASSERT_OK(array->AccumulateIntoChunk(0, delta, /*fallback_node=*/1));
  ASSERT_OK(array->AccumulateIntoChunk(0, delta, /*fallback_node=*/2));
  EXPECT_EQ(catalog_.NodeOf(array->id(), 0).value(), 1);  // fallback once
  auto chunk = array->GetPrimaryChunk(0);
  ASSERT_OK(chunk.status());
  EXPECT_EQ((*chunk)->GetCell(0)[0], 4.0);
  EXPECT_EQ(catalog_.ChunkBytes(array->id(), 0), (*chunk)->SizeBytes());
}

TEST_F(DistributedArrayTest, TotalBytesMatchesCatalog) {
  Rng rng(5);
  testing_util::FillRandom(&local_, 50, &rng);
  auto array = DistributedArray::Create(Make2DSchema("A"),
                                        MakeRoundRobinPlacement(), &catalog_,
                                        &cluster_);
  ASSERT_OK(array.status());
  ASSERT_OK(array->Ingest(local_));
  EXPECT_EQ(array->TotalBytes(), local_.SizeBytes());
}

}  // namespace
}  // namespace avm
