#include "maintenance/executor.h"

#include <gtest/gtest.h>

#include <string_view>

#include "common/check.h"
#include "maintenance/baseline_planner.h"
#include "maintenance/triple_gen.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::MakeCountViewFixture;

/// Executes a deliberately malformed plan and expects rejection. In
/// Debug/test builds the structural validator at the executor entry fires
/// first (surfaced through the throwing handler); in Release the executor's
/// own Status path rejects it with `expected_message`.
void ExpectPlanRejected(const MaintenancePlan& plan, const TripleSet& triples,
                        MaterializedView* view, DistributedArray* left_delta,
                        DistributedArray* right_delta,
                        std::string_view expected_message = {}) {
  if constexpr (kDebugChecksEnabled) {
    ScopedThrowingCheckHandler guard;
    EXPECT_THROW(ExecuteMaintenancePlan(plan, triples, view, left_delta,
                                        right_delta)
                     .status(),
                 CheckFailedError);
  } else {
    auto status =
        ExecuteMaintenancePlan(plan, triples, view, left_delta, right_delta)
            .status();
    EXPECT_TRUE(status.IsInternal()) << status.ToString();
    if (!expected_message.empty()) {
      EXPECT_EQ(status.message(), expected_message);
    }
  }
}

struct ExecFixture {
  testing_util::ViewFixture fixture;
  std::unique_ptr<DistributedArray> delta;
  TripleSet triples;
};

Result<ExecFixture> MakeExecFixture(uint64_t seed, size_t base_cells = 80,
                                    size_t delta_cells = 30) {
  ExecFixture out;
  AVM_ASSIGN_OR_RETURN(
      out.fixture,
      MakeCountViewFixture(3, base_cells, Shape::L1Ball(2, 1), seed));
  Rng rng(seed + 1);
  SparseArray cells = testing_util::RandomDisjointDelta(
      out.fixture.local_base, delta_cells, &rng);
  ArraySchema schema("delta", cells.schema().dims(), cells.schema().attrs());
  AVM_ASSIGN_OR_RETURN(
      DistributedArray delta,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(),
                               out.fixture.catalog.get(),
                               out.fixture.cluster.get()));
  Status status = Status::OK();
  cells.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    if (!status.ok()) return;
    status = delta.PutChunk(id, chunk, kCoordinatorNode);
  });
  AVM_RETURN_IF_ERROR(status);
  out.delta = std::make_unique<DistributedArray>(std::move(delta));
  AVM_ASSIGN_OR_RETURN(out.triples,
                       GenerateTriples(*out.fixture.view, out.delta.get(),
                                       nullptr));
  return out;
}

TEST(ExecutorTest, ExecutesBaselinePlanAndReportsStats) {
  ASSERT_OK_AND_ASSIGN(auto exec_fixture, MakeExecFixture(600));
  ASSERT_OK_AND_ASSIGN(
      MaintenancePlan plan,
      PlanBaseline(*exec_fixture.fixture.view, exec_fixture.triples, 3));
  ASSERT_OK_AND_ASSIGN(
      ExecutionStats stats,
      ExecuteMaintenancePlan(plan, exec_fixture.triples,
                             exec_fixture.fixture.view.get(),
                             exec_fixture.delta.get(), nullptr));
  EXPECT_GT(stats.joins_executed, 0u);
  EXPECT_GT(stats.delta_chunks_merged, 0u);
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(*exec_fixture.fixture.view));
}

TEST(ExecutorTest, RejectsPlanWithoutColocation) {
  ASSERT_OK_AND_ASSIGN(auto exec_fixture, MakeExecFixture(601));
  ASSERT_FALSE(exec_fixture.triples.pairs.empty());
  // A plan that assigns joins but ships nothing: the delta operand never
  // reaches a worker, so the executor must fail loudly.
  MaintenancePlan bogus;
  for (size_t i = 0; i < exec_fixture.triples.pairs.size(); ++i) {
    bogus.joins.push_back({i, 0});
  }
  ExpectPlanRejected(bogus, exec_fixture.triples,
                     exec_fixture.fixture.view.get(),
                     exec_fixture.delta.get(), nullptr);
}

TEST(ExecutorTest, RejectsJoinReferencingUnknownPair) {
  ASSERT_OK_AND_ASSIGN(auto exec_fixture, MakeExecFixture(602));
  MaintenancePlan bogus;
  bogus.joins.push_back({exec_fixture.triples.pairs.size() + 5, 0});
  ExpectPlanRejected(bogus, exec_fixture.triples,
                     exec_fixture.fixture.view.get(),
                     exec_fixture.delta.get(), nullptr);
}

TEST(ExecutorTest, EmptyPlanStillMergesDeltaChunks) {
  // A plan with no joins (e.g. all updates irrelevant) must still fold the
  // delta into the base.
  ASSERT_OK_AND_ASSIGN(
      auto fixture,
      MakeCountViewFixture(3, 0, Shape::L1Ball(2, 1), 603));
  SparseArray cells(fixture.local_base.schema());
  ASSERT_OK(cells.Set({20, 12}, std::vector<double>{1.0}));
  ArraySchema schema("delta", cells.schema().dims(), cells.schema().attrs());
  ASSERT_OK_AND_ASSIGN(
      DistributedArray delta,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(),
                               fixture.catalog.get(), fixture.cluster.get()));
  Status status = Status::OK();
  cells.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    status = delta.PutChunk(id, chunk, kCoordinatorNode);
  });
  ASSERT_OK(status);
  TripleSet empty_triples;
  MaintenancePlan empty_plan;
  ASSERT_OK_AND_ASSIGN(
      ExecutionStats stats,
      ExecuteMaintenancePlan(empty_plan, empty_triples, fixture.view.get(),
                             &delta, nullptr));
  EXPECT_EQ(stats.joins_executed, 0u);
  EXPECT_EQ(stats.delta_chunks_merged, 1u);
  ASSERT_OK_AND_ASSIGN(SparseArray base_now,
                       fixture.view->left_base().Gather());
  EXPECT_TRUE(base_now.Has({20, 12}));
}

TEST(ExecutorTest, FreshBaseDeltaFoldAliasesInsteadOfCopying) {
  // Regression for the step-5 fold: a delta chunk with no existing base
  // chunk must *become* the base via a handle alias — zero deep copies and
  // zero COW breaks end to end, proven through the store telemetry.
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 0, Shape::L1Ball(2, 1), 612));
  SparseArray cells(fixture.local_base.schema());
  ASSERT_OK(cells.Set({20, 12}, std::vector<double>{1.0}));
  ASSERT_OK(cells.Set({4, 20}, std::vector<double>{2.0}));
  ArraySchema schema("delta", cells.schema().dims(), cells.schema().attrs());
  ASSERT_OK_AND_ASSIGN(
      DistributedArray delta,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(),
                               fixture.catalog.get(), fixture.cluster.get()));
  Status status = Status::OK();
  cells.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    status = delta.PutChunk(id, chunk, kCoordinatorNode);
  });
  ASSERT_OK(status);

  EnableTelemetry();
  MetricsRegistry::Global().ResetForTesting();
  TripleSet empty_triples;
  MaintenancePlan empty_plan;
  ASSERT_OK_AND_ASSIGN(
      ExecutionStats stats,
      ExecuteMaintenancePlan(empty_plan, empty_triples, fixture.view.get(),
                             &delta, nullptr));
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  DisableTelemetry();

  EXPECT_GT(stats.delta_chunks_merged, 0u);
  EXPECT_GT(snapshot.counter(CounterId::kStoreChunksAliased), 0u)
      << "delta-to-base fold should ride the handle path";
  EXPECT_EQ(snapshot.counter(CounterId::kStoreChunksDeepCopied), 0u)
      << "no store should deep-copy during a fresh-base fold";
  EXPECT_EQ(snapshot.counter(CounterId::kStoreCowBreaks), 0u);
  ASSERT_OK_AND_ASSIGN(SparseArray base_now,
                       fixture.view->left_base().Gather());
  EXPECT_TRUE(base_now.Has({20, 12}));
  EXPECT_TRUE(base_now.Has({4, 20}));
}

TEST(ExecutorTest, ViewHomeRelocationMovesChunkAndCatalog) {
  ASSERT_OK_AND_ASSIGN(auto exec_fixture, MakeExecFixture(604));
  Catalog* catalog = exec_fixture.fixture.catalog.get();
  const ArrayId view_id = exec_fixture.fixture.view->array().id();
  // Build a baseline plan and forcibly relocate every affected existing
  // view chunk to node 2.
  ASSERT_OK_AND_ASSIGN(
      MaintenancePlan plan,
      PlanBaseline(*exec_fixture.fixture.view, exec_fixture.triples, 3));
  for (auto& [v, home] : plan.view_home) home = 2;
  ASSERT_OK(ExecuteMaintenancePlan(plan, exec_fixture.triples,
                                   exec_fixture.fixture.view.get(),
                                   exec_fixture.delta.get(), nullptr)
                .status());
  for (const auto& [v, home] : plan.view_home) {
    EXPECT_EQ(catalog->NodeOf(view_id, v).value(), 2);
    EXPECT_TRUE(
        exec_fixture.fixture.cluster->store(2).Contains(view_id, v));
  }
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(*exec_fixture.fixture.view));
}

TEST(ExecutorTest, NullViewRejected) {
  TripleSet triples;
  MaintenancePlan plan;
  EXPECT_TRUE(ExecuteMaintenancePlan(plan, triples, nullptr, nullptr, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(ExecutorTest, MissingLeftDeltaRejected) {
  ASSERT_OK_AND_ASSIGN(auto exec_fixture, MakeExecFixture(605));
  // The plan ships a left-delta chunk, but no left delta was supplied.
  MaintenancePlan plan;
  plan.transfers.push_back(
      {MChunkRef{ChunkSide::kLeftDelta, 0}, kCoordinatorNode, 0});
  ExpectPlanRejected(plan, exec_fixture.triples,
                     exec_fixture.fixture.view.get(),
                     /*left_delta=*/nullptr, /*right_delta=*/nullptr,
                     "plan references a missing left delta");
}

TEST(ExecutorTest, MissingRightDeltaRejected) {
  ASSERT_OK_AND_ASSIGN(auto exec_fixture, MakeExecFixture(606));
  MaintenancePlan plan;
  plan.transfers.push_back(
      {MChunkRef{ChunkSide::kRightDelta, 0}, kCoordinatorNode, 0});
  ExpectPlanRejected(plan, exec_fixture.triples,
                     exec_fixture.fixture.view.get(),
                     exec_fixture.delta.get(), /*right_delta=*/nullptr,
                     "plan references a missing right delta");
}

TEST(ExecutorTest, JoinOnMissingDeltaRejectedBeforeFanOut) {
  // A join whose pair references the (absent) delta must fail with the
  // missing-delta message, not crash inside a worker task.
  ASSERT_OK_AND_ASSIGN(auto exec_fixture, MakeExecFixture(607));
  ASSERT_FALSE(exec_fixture.triples.pairs.empty());
  MaintenancePlan plan;
  plan.joins.push_back({0, 0});
  ExpectPlanRejected(plan, exec_fixture.triples,
                     exec_fixture.fixture.view.get(),
                     /*left_delta=*/nullptr, /*right_delta=*/nullptr,
                     "plan references a missing left delta");
}

TEST(ExecutorTest, UnknownJoinNodeRejected) {
  ASSERT_OK_AND_ASSIGN(auto exec_fixture, MakeExecFixture(608));
  ASSERT_FALSE(exec_fixture.triples.pairs.empty());
  MaintenancePlan plan;
  plan.joins.push_back({0, 99});
  ExpectPlanRejected(plan, exec_fixture.triples,
                     exec_fixture.fixture.view.get(),
                     exec_fixture.delta.get(), nullptr,
                     "join assigned to unknown node id 99");
}

TEST(ExecutorTest, JoinAssignedToCoordinatorRejected) {
  // The coordinator never executes joins; a plan placing one there is a
  // planner bug, reported as Internal instead of tripping a CHECK.
  ASSERT_OK_AND_ASSIGN(auto exec_fixture, MakeExecFixture(609));
  ASSERT_FALSE(exec_fixture.triples.pairs.empty());
  MaintenancePlan plan;
  plan.joins.push_back({0, kCoordinatorNode});
  ExpectPlanRejected(plan, exec_fixture.triples,
                     exec_fixture.fixture.view.get(),
                     exec_fixture.delta.get(), nullptr,
                     "join assigned to unknown node id -1");
}

TEST(ExecutorTest, UnknownTransferNodeRejected) {
  ASSERT_OK_AND_ASSIGN(auto exec_fixture, MakeExecFixture(610));
  MaintenancePlan plan;
  plan.transfers.push_back(
      {MChunkRef{ChunkSide::kLeftDelta, 0}, kCoordinatorNode, 42});
  ExpectPlanRejected(plan, exec_fixture.triples,
                     exec_fixture.fixture.view.get(),
                     exec_fixture.delta.get(), nullptr,
                     "transfer destination references unknown node id 42");
}

TEST(ExecutorTest, UnknownViewHomeRejected) {
  ASSERT_OK_AND_ASSIGN(auto exec_fixture, MakeExecFixture(611));
  MaintenancePlan plan;
  plan.view_home[0] = 17;
  ExpectPlanRejected(plan, exec_fixture.triples,
                     exec_fixture.fixture.view.get(),
                     exec_fixture.delta.get(), nullptr,
                     "view home references unknown node id 17");
}

TEST(ExecutorTest, EmptyPlanWithoutDeltasIsANoOp) {
  // No joins, no transfers, no deltas: nothing to do, and that is OK — not
  // a crash, not an error.
  ASSERT_OK_AND_ASSIGN(
      auto fixture, MakeCountViewFixture(3, 40, Shape::L1Ball(2, 1), 612));
  TripleSet empty_triples;
  MaintenancePlan empty_plan;
  ASSERT_OK_AND_ASSIGN(
      ExecutionStats stats,
      ExecuteMaintenancePlan(empty_plan, empty_triples, fixture.view.get(),
                             nullptr, nullptr));
  EXPECT_EQ(stats.joins_executed, 0u);
  EXPECT_EQ(stats.fragments_merged, 0u);
  EXPECT_EQ(stats.delta_chunks_merged, 0u);
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(*fixture.view));
}

TEST(ExecutorTest, ParallelExecutionMatchesSerialBitForBit) {
  // The same plan executed on a 1-thread and a 4-thread cluster must leave
  // identical views and identical simulated clocks.
  auto run = [](int threads) -> Result<std::pair<SparseArray, double>> {
    ExecFixture f;
    AVM_ASSIGN_OR_RETURN(
        f.fixture,
        MakeCountViewFixture(3, 80, Shape::L1Ball(2, 1), 613,
                             /*with_sum=*/true, "round-robin", threads));
    Rng rng(614);
    SparseArray cells =
        testing_util::RandomDisjointDelta(f.fixture.local_base, 30, &rng);
    ArraySchema schema("delta", cells.schema().dims(),
                       cells.schema().attrs());
    AVM_ASSIGN_OR_RETURN(
        DistributedArray delta,
        DistributedArray::Create(schema, MakeRoundRobinPlacement(),
                                 f.fixture.catalog.get(),
                                 f.fixture.cluster.get()));
    Status status = Status::OK();
    cells.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
      if (!status.ok()) return;
      status = delta.PutChunk(id, chunk, kCoordinatorNode);
    });
    AVM_RETURN_IF_ERROR(status);
    f.delta = std::make_unique<DistributedArray>(std::move(delta));
    AVM_ASSIGN_OR_RETURN(
        f.triples,
        GenerateTriples(*f.fixture.view, f.delta.get(), nullptr));
    AVM_ASSIGN_OR_RETURN(MaintenancePlan plan,
                         PlanBaseline(*f.fixture.view, f.triples, 3));
    AVM_RETURN_IF_ERROR(ExecuteMaintenancePlan(plan, f.triples,
                                               f.fixture.view.get(),
                                               f.delta.get(), nullptr)
                            .status());
    AVM_ASSIGN_OR_RETURN(SparseArray view_content,
                         f.fixture.view->array().Gather());
    return std::make_pair(std::move(view_content),
                          f.fixture.cluster->MakespanSeconds());
  };
  auto serial = run(1);
  auto parallel = run(4);
  ASSERT_OK(serial.status());
  ASSERT_OK(parallel.status());
  EXPECT_TRUE(serial.value().first.ContentEquals(parallel.value().first,
                                                 /*tolerance=*/0.0));
  EXPECT_EQ(serial.value().second, parallel.value().second);
}

}  // namespace
}  // namespace avm
