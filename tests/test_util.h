#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "array/sparse_array.h"
#include "cluster/distributed_array.h"
#include "common/check.h"
#include "common/result.h"
#include "common/rng.h"
#include "maintenance/maintainer.h"
#include "view/materialized_view.h"

namespace avm::testing_util {

/// Copies the status out of a `Status` or `Result<T>` expression so the
/// ASSERT_OK/EXPECT_OK macros never hold a reference into a temporary
/// (`ASSERT_OK(f().status())` would otherwise read a dead stack frame).
inline ::avm::Status StatusFrom(::avm::Status status) { return status; }
template <typename T>
::avm::Status StatusFrom(const ::avm::Result<T>& result) {
  return result.status();
}

}  // namespace avm::testing_util

#define ASSERT_OK(expr)                                                   \
  do {                                                                    \
    const ::avm::Status _s = ::avm::testing_util::StatusFrom((expr));     \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                                \
  } while (0)

#define EXPECT_OK(expr)                                                   \
  do {                                                                    \
    const ::avm::Status _s = ::avm::testing_util::StatusFrom((expr));     \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                                \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                        \
  ASSERT_OK_AND_ASSIGN_IMPL_(                                   \
      AVM_RESULT_CONCAT_(_assert_result, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, rexpr)             \
  auto tmp = (rexpr);                                           \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();             \
  lhs = std::move(tmp).value()

namespace avm::testing_util {

/// A 2-D test schema [x=1,x_range,x_chunk; y=1,y_range,y_chunk] with
/// `num_attrs` double attributes a0, a1, ...
inline ArraySchema Make2DSchema(const std::string& name, int64_t x_range = 40,
                                int64_t x_chunk = 8, int64_t y_range = 24,
                                int64_t y_chunk = 6, size_t num_attrs = 1) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < num_attrs; ++i) {
    attrs.push_back({"a" + std::to_string(i), AttributeType::kDouble});
  }
  auto schema = ArraySchema::Create(
      name, {{"x", 1, x_range, x_chunk}, {"y", 1, y_range, y_chunk}},
      std::move(attrs));
  AVM_CHECK(schema.ok());
  return std::move(schema).value();
}

/// Fills `array` with `cells` random distinct cells (values uniform in
/// [0, 100)).
inline void FillRandom(SparseArray* array, size_t cells, Rng* rng) {
  const auto& dims = array->schema().dims();
  std::vector<double> values(array->schema().num_attrs());
  size_t placed = 0;
  while (placed < cells) {
    CellCoord coord(dims.size());
    for (size_t d = 0; d < dims.size(); ++d) {
      coord[d] = rng->UniformInt(dims[d].lo, dims[d].hi);
    }
    if (array->Has(coord)) continue;
    for (auto& v : values) v = rng->UniformDouble() * 100.0;
    AVM_CHECK(array->Set(coord, values).ok());
    ++placed;
  }
}

/// Draws `cells` random cells disjoint from `existing` (and from each
/// other) into a fresh array.
inline SparseArray RandomDisjointDelta(const SparseArray& existing,
                                       size_t cells, Rng* rng) {
  SparseArray delta(existing.schema());
  const auto& dims = existing.schema().dims();
  std::vector<double> values(existing.schema().num_attrs());
  size_t placed = 0;
  int attempts = 0;
  while (placed < cells && attempts < 100000) {
    ++attempts;
    CellCoord coord(dims.size());
    for (size_t d = 0; d < dims.size(); ++d) {
      coord[d] = rng->UniformInt(dims[d].lo, dims[d].hi);
    }
    if (existing.Has(coord) || delta.Has(coord)) continue;
    for (auto& v : values) v = rng->UniformDouble() * 100.0;
    AVM_CHECK(delta.Set(coord, values).ok());
    ++placed;
  }
  return delta;
}

/// A self-join COUNT view over a freshly loaded 2-D base array, ready for
/// maintenance tests.
struct ViewFixture {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<MaterializedView> view;
  SparseArray local_base;  // mirror of the initial content

  ViewFixture() : local_base(Make2DSchema("unused")) {}
};

/// Builds a fixture: `base_cells` random cells, the given shape, COUNT(*)
/// plus optional SUM(a0). `num_threads` sizes the cluster's host execution
/// pool (1 = serial maintenance).
inline Result<ViewFixture> MakeCountViewFixture(
    int num_workers, size_t base_cells, Shape shape, uint64_t seed = 1,
    bool with_sum = false, const std::string& placement = "round-robin",
    int num_threads = 1) {
  ViewFixture fixture;
  fixture.catalog = std::make_unique<Catalog>();
  fixture.cluster =
      std::make_unique<Cluster>(num_workers, CostModel(), num_threads);
  ArraySchema schema = Make2DSchema("base");
  fixture.local_base = SparseArray(schema);
  Rng rng(seed);
  FillRandom(&fixture.local_base, base_cells, &rng);

  auto make_placement = [&]() -> std::unique_ptr<ChunkPlacement> {
    if (placement == "hash") return MakeHashPlacement();
    if (placement == "range") return MakeRangePlacement(0);
    return MakeRoundRobinPlacement();
  };
  AVM_ASSIGN_OR_RETURN(
      DistributedArray base,
      DistributedArray::Create(schema, make_placement(),
                               fixture.catalog.get(), fixture.cluster.get()));
  AVM_RETURN_IF_ERROR(base.Ingest(fixture.local_base));

  ViewDefinition def;
  def.view_name = "view";
  def.left_array = "base";
  def.right_array = "base";
  def.mapping = DimMapping::Identity(2);
  def.shape = std::move(shape);
  def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  if (with_sum) {
    def.aggregates.push_back({AggregateFunction::kSum, 0, "sum_a0"});
  }
  AVM_ASSIGN_OR_RETURN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), make_placement(),
                             fixture.catalog.get(), fixture.cluster.get()));
  fixture.view = std::make_unique<MaterializedView>(std::move(view));
  fixture.cluster->ResetClocks();
  return fixture;
}

/// Checks that the maintained view equals recomputation from scratch.
inline ::testing::AssertionResult ViewMatchesRecompute(
    const MaterializedView& view) {
  auto gathered = view.array().Gather();
  if (!gathered.ok()) {
    return ::testing::AssertionFailure()
           << "gather failed: " << gathered.status().ToString();
  }
  auto reference = view.RecomputeReferenceStates();
  if (!reference.ok()) {
    return ::testing::AssertionFailure()
           << "recompute failed: " << reference.status().ToString();
  }
  if (!gathered.value().ContentEquals(reference.value(), 1e-9)) {
    return ::testing::AssertionFailure()
           << "maintained view diverged from recomputation: "
           << gathered.value().NumCells() << " vs "
           << reference.value().NumCells() << " cells";
  }
  return ::testing::AssertionSuccess();
}

}  // namespace avm::testing_util

