#include "join/similarity_join.h"

#include <gtest/gtest.h>

#include "join/reference.h"
#include "tests/test_util.h"
#include "view/view_definition.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;

struct JoinCase {
  std::string name;
  int64_t radius;
  bool linf;
  std::string placement;
  size_t cells;
};

class DistributedJoinTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(DistributedJoinTest, MatchesReferenceEvaluation) {
  const JoinCase& param = GetParam();
  Catalog catalog;
  Cluster cluster(4);
  const ArraySchema schema = Make2DSchema("A", 32, 8, 32, 8);
  SparseArray local(schema);
  Rng rng(31);
  testing_util::FillRandom(&local, param.cells, &rng);

  auto make_placement = [&]() -> std::unique_ptr<ChunkPlacement> {
    if (param.placement == "hash") return MakeHashPlacement();
    if (param.placement == "range") return MakeRangePlacement(0);
    return MakeRoundRobinPlacement();
  };
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, make_placement(), &catalog, &cluster));
  ASSERT_OK(base.Ingest(local));

  SimilarityJoinSpec spec;
  spec.mapping = DimMapping::Identity(2);
  spec.shape = param.linf ? Shape::LinfBall(2, param.radius)
                          : Shape::L1Ball(2, param.radius);
  ASSERT_OK_AND_ASSIGN(
      spec.layout,
      AggregateLayout::Create({{AggregateFunction::kCount, 0, "cnt"},
                               {AggregateFunction::kSum, 0, "s"}},
                              1));
  spec.group_dims = {0, 1};

  ASSERT_OK_AND_ASSIGN(
      ArraySchema result_schema,
      ArraySchema::Create("R", schema.dims(), spec.layout.StateAttributes()));
  ASSERT_OK_AND_ASSIGN(
      DistributedArray result,
      DistributedArray::Create(result_schema, make_placement(), &catalog,
                               &cluster));
  ASSERT_OK_AND_ASSIGN(
      JoinExecutionStats stats,
      ExecuteDistributedJoinAggregate(base, base, spec, &result));
  EXPECT_GT(stats.chunk_pairs, 0u);

  ASSERT_OK_AND_ASSIGN(SparseArray reference,
                       ReferenceJoinAggregate(local, local, spec,
                                              result_schema));
  ASSERT_OK_AND_ASSIGN(SparseArray gathered, result.Gather());
  EXPECT_TRUE(gathered.ContentEquals(reference, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributedJoinTest,
    ::testing::Values(JoinCase{"l1_rr", 1, false, "round-robin", 120},
                      JoinCase{"linf_rr", 1, true, "round-robin", 120},
                      JoinCase{"linf2_hash", 2, true, "hash", 100},
                      JoinCase{"l1_range", 2, false, "range", 100},
                      JoinCase{"dense_linf", 1, true, "hash", 400},
                      JoinCase{"sparse", 3, true, "round-robin", 15}),
    [](const ::testing::TestParamInfo<JoinCase>& info) {
      return info.param.name;
    });

TEST(DistributedJoinTest, ChargesClocks) {
  Catalog catalog;
  Cluster cluster(2);
  const ArraySchema schema = Make2DSchema("A", 32, 8, 32, 8);
  SparseArray local(schema);
  Rng rng(33);
  testing_util::FillRandom(&local, 200, &rng);
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(base.Ingest(local));

  SimilarityJoinSpec spec;
  spec.mapping = DimMapping::Identity(2);
  spec.shape = Shape::LinfBall(2, 1);
  ASSERT_OK_AND_ASSIGN(
      spec.layout,
      AggregateLayout::Create({{AggregateFunction::kCount, 0, "cnt"}}, 1));
  spec.group_dims = {0, 1};
  ASSERT_OK_AND_ASSIGN(
      ArraySchema result_schema,
      ArraySchema::Create("R", schema.dims(), spec.layout.StateAttributes()));
  ASSERT_OK_AND_ASSIGN(
      DistributedArray result,
      DistributedArray::Create(result_schema, MakeRoundRobinPlacement(),
                               &catalog, &cluster));
  cluster.ResetClocks();
  ASSERT_OK(
      ExecuteDistributedJoinAggregate(base, base, spec, &result).status());
  EXPECT_GT(cluster.MakespanSeconds(), 0.0);
}

TEST(DistributedJoinTest, RejectsShapeDimMismatch) {
  Catalog catalog;
  Cluster cluster(2);
  const ArraySchema schema = Make2DSchema("A");
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  SimilarityJoinSpec spec;
  spec.mapping = DimMapping::Identity(2);
  spec.shape = Shape::L1Ball(3, 1);
  ASSERT_OK_AND_ASSIGN(
      spec.layout,
      AggregateLayout::Create({{AggregateFunction::kCount, 0, "cnt"}}, 1));
  spec.group_dims = {0, 1};
  ASSERT_OK_AND_ASSIGN(
      ArraySchema result_schema,
      ArraySchema::Create("R", schema.dims(), spec.layout.StateAttributes()));
  ASSERT_OK_AND_ASSIGN(
      DistributedArray result,
      DistributedArray::Create(result_schema, MakeRoundRobinPlacement(),
                               &catalog, &cluster));
  EXPECT_TRUE(ExecuteDistributedJoinAggregate(base, base, spec, &result)
                  .status()
                  .IsInvalidArgument());
}

TEST(ReferenceJoinTest, TwoArrayJoin) {
  const ArraySchema schema = Make2DSchema("A", 16, 4, 16, 4);
  SparseArray left(schema);
  SparseArray right(schema);
  ASSERT_OK(left.Set({5, 5}, std::vector<double>{1.0}));
  ASSERT_OK(right.Set({5, 6}, std::vector<double>{10.0}));
  ASSERT_OK(right.Set({6, 5}, std::vector<double>{20.0}));
  ASSERT_OK(right.Set({9, 9}, std::vector<double>{30.0}));

  SimilarityJoinSpec spec;
  spec.mapping = DimMapping::Identity(2);
  spec.shape = Shape::L1Ball(2, 1);
  ASSERT_OK_AND_ASSIGN(
      spec.layout,
      AggregateLayout::Create({{AggregateFunction::kSum, 0, "s"}}, 1));
  spec.group_dims = {0, 1};
  ASSERT_OK_AND_ASSIGN(
      ArraySchema result_schema,
      ArraySchema::Create("R", schema.dims(), spec.layout.StateAttributes()));
  ASSERT_OK_AND_ASSIGN(
      SparseArray result,
      ReferenceJoinAggregate(left, right, spec, result_schema));
  EXPECT_EQ(result.NumCells(), 1u);
  EXPECT_EQ((*result.Get({5, 5}))[0], 30.0);  // 10 + 20, not the far cell
}

}  // namespace
}  // namespace avm
