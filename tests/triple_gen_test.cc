#include "maintenance/triple_gen.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;
using testing_util::MakeCountViewFixture;

/// Registers a delta array holding `cells` at the coordinator.
Result<DistributedArray> MakeDelta(const testing_util::ViewFixture& fixture,
                                   const SparseArray& cells,
                                   const std::string& name = "delta") {
  ArraySchema schema(name, cells.schema().dims(), cells.schema().attrs());
  AVM_ASSIGN_OR_RETURN(
      DistributedArray delta,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(),
                               fixture.catalog.get(), fixture.cluster.get()));
  Status status = Status::OK();
  cells.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    if (!status.ok()) return;
    status = delta.PutChunk(id, chunk, kCoordinatorNode);
  });
  AVM_RETURN_IF_ERROR(status);
  return delta;
}

TEST(TripleGenTest, EmptyDeltaYieldsNoPairs) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 50, Shape::L1Ball(2, 1)));
  SparseArray empty(fixture.local_base.schema());
  ASSERT_OK_AND_ASSIGN(DistributedArray delta, MakeDelta(fixture, empty));
  ASSERT_OK_AND_ASSIGN(TripleSet triples,
                       GenerateTriples(*fixture.view, &delta, nullptr));
  EXPECT_TRUE(triples.pairs.empty());
  EXPECT_EQ(triples.num_triples(), 0u);
}

TEST(TripleGenTest, IsolatedDeltaChunkHasOnlySelfPair) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 0, Shape::L1Ball(2, 1)));
  SparseArray cells(fixture.local_base.schema());
  ASSERT_OK(cells.Set({20, 12}, std::vector<double>{1.0}));
  ASSERT_OK_AND_ASSIGN(DistributedArray delta, MakeDelta(fixture, cells));
  ASSERT_OK_AND_ASSIGN(TripleSet triples,
                       GenerateTriples(*fixture.view, &delta, nullptr));
  ASSERT_EQ(triples.pairs.size(), 1u);
  EXPECT_EQ(triples.pairs[0].a, triples.pairs[0].b);
  EXPECT_EQ(triples.pairs[0].a.side, ChunkSide::kLeftDelta);
  EXPECT_TRUE(triples.pairs[0].dir_ab);
}

TEST(TripleGenTest, DeltaNextToBaseProducesBothDirections) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 0, Shape::L1Ball(2, 1)));
  // Seed one base cell, then a delta cell in the adjacent chunk.
  SparseArray base_cells(fixture.local_base.schema());
  ASSERT_OK(base_cells.Set({8, 6}, std::vector<double>{1.0}));
  ASSERT_OK(fixture.view->left_base().Ingest(base_cells));
  SparseArray delta_cells(fixture.local_base.schema());
  ASSERT_OK(delta_cells.Set({9, 6}, std::vector<double>{1.0}));
  ASSERT_OK_AND_ASSIGN(DistributedArray delta,
                       MakeDelta(fixture, delta_cells));
  ASSERT_OK_AND_ASSIGN(TripleSet triples,
                       GenerateTriples(*fixture.view, &delta, nullptr));
  // Pairs: delta self-pair plus (delta, base-neighbor) with both directions
  // (symmetric shape).
  bool found_cross = false;
  for (const auto& pair : triples.pairs) {
    const bool cross = IsDeltaSide(pair.a.side) != IsDeltaSide(pair.b.side);
    if (cross) {
      found_cross = true;
      EXPECT_TRUE(pair.dir_ab);
      EXPECT_TRUE(pair.dir_ba);
    }
  }
  EXPECT_TRUE(found_cross);
}

TEST(TripleGenTest, AsymmetricShapeSplitsDirections) {
  // Shape looks only backward along x: the delta cell at larger x sees the
  // base cell, but not vice versa.
  auto shape = Shape::FromOffsets(2, {{0, 0}, {-8, 0}});
  ASSERT_OK(shape.status());
  ASSERT_OK_AND_ASSIGN(auto fixture, MakeCountViewFixture(3, 0, *shape));
  SparseArray base_cells(fixture.local_base.schema());
  ASSERT_OK(base_cells.Set({8, 6}, std::vector<double>{1.0}));
  ASSERT_OK(fixture.view->left_base().Ingest(base_cells));
  SparseArray delta_cells(fixture.local_base.schema());
  ASSERT_OK(delta_cells.Set({16, 6}, std::vector<double>{1.0}));
  ASSERT_OK_AND_ASSIGN(DistributedArray delta,
                       MakeDelta(fixture, delta_cells));
  ASSERT_OK_AND_ASSIGN(TripleSet triples,
                       GenerateTriples(*fixture.view, &delta, nullptr));
  // The cross pair must run with the *delta* as the group-by side only.
  for (const auto& pair : triples.pairs) {
    if (IsDeltaSide(pair.a.side) != IsDeltaSide(pair.b.side)) {
      const bool delta_is_a = IsDeltaSide(pair.a.side);
      EXPECT_EQ(pair.dir_ab, delta_is_a);
      EXPECT_EQ(pair.dir_ba, !delta_is_a);
    }
  }
}

TEST(TripleGenTest, LocationsAndSizesSnapshotted) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 80, Shape::L1Ball(2, 1), 5));
  Rng rng(6);
  SparseArray cells =
      testing_util::RandomDisjointDelta(fixture.local_base, 30, &rng);
  ASSERT_OK_AND_ASSIGN(DistributedArray delta, MakeDelta(fixture, cells));
  ASSERT_OK_AND_ASSIGN(TripleSet triples,
                       GenerateTriples(*fixture.view, &delta, nullptr));
  for (const auto& pair : triples.pairs) {
    for (const MChunkRef& ref : {pair.a, pair.b}) {
      ASSERT_TRUE(triples.location.count(ref) > 0);
      ASSERT_TRUE(triples.bytes.count(ref) > 0);
      EXPECT_GT(triples.bytes.at(ref), 0u);
      if (IsDeltaSide(ref.side)) {
        EXPECT_EQ(triples.location.at(ref), kCoordinatorNode);
      } else {
        EXPECT_GE(triples.location.at(ref), 0);
      }
    }
    EXPECT_EQ(pair.bytes,
              triples.bytes.at(pair.a) + triples.bytes.at(pair.b));
  }
}

TEST(TripleGenTest, ViewTargetsCoverDeltaChunks) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 80, Shape::L1Ball(2, 1), 7));
  Rng rng(8);
  SparseArray cells =
      testing_util::RandomDisjointDelta(fixture.local_base, 30, &rng);
  ASSERT_OK_AND_ASSIGN(DistributedArray delta, MakeDelta(fixture, cells));
  ASSERT_OK_AND_ASSIGN(TripleSet triples,
                       GenerateTriples(*fixture.view, &delta, nullptr));
  // Every delta chunk's view image must appear among some pair's targets
  // (the view inherits the base grid, so ids match).
  std::set<ChunkId> targeted;
  for (const auto& pair : triples.pairs) {
    for (ChunkId v : pair.AllViewTargets()) targeted.insert(v);
  }
  for (ChunkId d : cells.ChunkIds()) {
    EXPECT_TRUE(targeted.count(d) > 0) << "delta chunk " << d;
  }
}

TEST(TripleGenTest, PairsCoverEveryActualCellMatch) {
  // Property: for random data, every (delta cell, base cell) match under
  // the shape is covered by some generated pair with the right direction.
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 120, Shape::LinfBall(2, 2), 9));
  Rng rng(10);
  SparseArray cells =
      testing_util::RandomDisjointDelta(fixture.local_base, 40, &rng);
  ASSERT_OK_AND_ASSIGN(DistributedArray delta, MakeDelta(fixture, cells));
  ASSERT_OK_AND_ASSIGN(TripleSet triples,
                       GenerateTriples(*fixture.view, &delta, nullptr));

  std::set<std::pair<std::pair<int, ChunkId>, std::pair<int, ChunkId>>>
      directions;
  for (const auto& pair : triples.pairs) {
    auto key = [](const MChunkRef& r) {
      return std::pair<int, ChunkId>{IsDeltaSide(r.side) ? 1 : 0, r.id};
    };
    if (pair.dir_ab) directions.insert({key(pair.a), key(pair.b)});
    if (pair.dir_ba) directions.insert({key(pair.b), key(pair.a)});
  }
  const ChunkGrid& grid = fixture.view->left_base().grid();
  const Shape& shape = fixture.view->definition().shape;
  // delta -> base matches.
  cells.ForEachCell([&](std::span<const int64_t> xs, std::span<const double>) {
    CellCoord x(xs.begin(), xs.end());
    for (const auto& o : shape.offsets()) {
      CellCoord y = {x[0] + o[0], x[1] + o[1]};
      if (fixture.local_base.Has(y)) {
        EXPECT_TRUE(directions.count({{1, grid.IdOfCell(x)},
                                      {0, grid.IdOfCell(y)}}) > 0);
      }
      if (cells.Has(y)) {
        EXPECT_TRUE(directions.count({{1, grid.IdOfCell(x)},
                                      {1, grid.IdOfCell(y)}}) > 0);
      }
    }
  });
  // base -> delta matches.
  fixture.local_base.ForEachCell(
      [&](std::span<const int64_t> xs, std::span<const double>) {
        CellCoord x(xs.begin(), xs.end());
        for (const auto& o : shape.offsets()) {
          CellCoord y = {x[0] + o[0], x[1] + o[1]};
          if (cells.Has(y)) {
            EXPECT_TRUE(directions.count({{0, grid.IdOfCell(x)},
                                          {1, grid.IdOfCell(y)}}) > 0);
          }
        }
      });
}

TEST(TripleGenTest, RejectsInvalidInputs) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 10, Shape::L1Ball(2, 1)));
  EXPECT_TRUE(GenerateTriples(*fixture.view, nullptr, nullptr)
                  .status()
                  .IsInvalidArgument());
  SparseArray cells(fixture.local_base.schema());
  ASSERT_OK_AND_ASSIGN(DistributedArray delta, MakeDelta(fixture, cells));
  // Self-join views reject a right delta.
  EXPECT_TRUE(GenerateTriples(*fixture.view, &delta, &delta)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace avm
