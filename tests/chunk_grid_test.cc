#include "array/chunk_grid.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace avm {
namespace {

ChunkGrid Paper2DGrid() {
  // Figure 1's A[i=1,6,2; j=1,8,2]: a 3x4 chunk grid.
  auto schema =
      ArraySchema::Create("A", {{"i", 1, 6, 2}, {"j", 1, 8, 2}}, {{"r"}});
  AVM_CHECK(schema.ok());
  return ChunkGrid(schema.value());
}

TEST(ChunkGridTest, TotalSlots) {
  EXPECT_EQ(Paper2DGrid().TotalChunkSlots(), 12);
}

TEST(ChunkGridTest, ChunksInDim) {
  const ChunkGrid grid = Paper2DGrid();
  EXPECT_EQ(grid.ChunksInDim(0), 3);
  EXPECT_EQ(grid.ChunksInDim(1), 4);
}

TEST(ChunkGridTest, PosOfCell) {
  const ChunkGrid grid = Paper2DGrid();
  EXPECT_EQ(grid.PosOfCell({1, 1}), (ChunkPos{0, 0}));
  EXPECT_EQ(grid.PosOfCell({2, 2}), (ChunkPos{0, 0}));
  EXPECT_EQ(grid.PosOfCell({3, 1}), (ChunkPos{1, 0}));
  EXPECT_EQ(grid.PosOfCell({6, 8}), (ChunkPos{2, 3}));
}

TEST(ChunkGridTest, IdRoundTrip) {
  const ChunkGrid grid = Paper2DGrid();
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      const ChunkId id = grid.IdOfPos({i, j});
      EXPECT_EQ(grid.PosOfId(id), (ChunkPos{i, j}));
    }
  }
}

TEST(ChunkGridTest, IdsAreRowMajorAndDense) {
  const ChunkGrid grid = Paper2DGrid();
  EXPECT_EQ(grid.IdOfPos({0, 0}), 0u);
  EXPECT_EQ(grid.IdOfPos({0, 1}), 1u);
  EXPECT_EQ(grid.IdOfPos({1, 0}), 4u);
  EXPECT_EQ(grid.IdOfPos({2, 3}), 11u);
}

TEST(ChunkGridTest, ChunkBox) {
  const ChunkGrid grid = Paper2DGrid();
  const Box box = grid.ChunkBox({1, 2});
  EXPECT_EQ(box.lo, (CellCoord{3, 5}));
  EXPECT_EQ(box.hi, (CellCoord{4, 6}));
}

TEST(ChunkGridTest, RaggedChunkBoxClipsToRange) {
  auto schema = ArraySchema::Create("A", {{"i", 1, 7, 3}}, {{"r"}});
  ASSERT_OK(schema.status());
  const ChunkGrid grid(schema.value());
  EXPECT_EQ(grid.ChunksInDim(0), 3);
  const Box last = grid.ChunkBox({2});
  EXPECT_EQ(last.lo[0], 7);
  EXPECT_EQ(last.hi[0], 7);
}

TEST(ChunkGridTest, InChunkOffsetIsRowMajorWithinChunk) {
  const ChunkGrid grid = Paper2DGrid();
  EXPECT_EQ(grid.InChunkOffset({1, 1}), 0u);
  EXPECT_EQ(grid.InChunkOffset({1, 2}), 1u);
  EXPECT_EQ(grid.InChunkOffset({2, 1}), 2u);
  EXPECT_EQ(grid.InChunkOffset({2, 2}), 3u);
  // Same relative offsets in another chunk.
  EXPECT_EQ(grid.InChunkOffset({3, 5}), 0u);
  EXPECT_EQ(grid.InChunkOffset({4, 6}), 3u);
}

TEST(ChunkGridTest, OffsetsDistinctWithinChunk) {
  const ChunkGrid grid = Paper2DGrid();
  std::set<uint64_t> offsets;
  for (int64_t i = 3; i <= 4; ++i) {
    for (int64_t j = 5; j <= 6; ++j) {
      EXPECT_TRUE(offsets.insert(grid.InChunkOffset({i, j})).second);
    }
  }
}

TEST(ChunkGridTest, ForEachChunkOverlappingFullRange) {
  const ChunkGrid grid = Paper2DGrid();
  std::set<ChunkId> ids;
  grid.ForEachChunkOverlapping({{1, 1}, {6, 8}},
                               [&](ChunkId id) { ids.insert(id); });
  EXPECT_EQ(ids.size(), 12u);
}

TEST(ChunkGridTest, ForEachChunkOverlappingSingleCell) {
  const ChunkGrid grid = Paper2DGrid();
  std::set<ChunkId> ids;
  grid.ForEachChunkOverlapping({{3, 5}, {3, 5}},
                               [&](ChunkId id) { ids.insert(id); });
  EXPECT_EQ(ids, (std::set<ChunkId>{grid.IdOfPos({1, 2})}));
}

TEST(ChunkGridTest, ForEachChunkOverlappingClipsOutOfRange) {
  const ChunkGrid grid = Paper2DGrid();
  std::set<ChunkId> ids;
  grid.ForEachChunkOverlapping({{-5, -5}, {1, 1}},
                               [&](ChunkId id) { ids.insert(id); });
  EXPECT_EQ(ids, (std::set<ChunkId>{0}));
}

TEST(ChunkGridTest, ForEachChunkOverlappingEmptyIntersection) {
  const ChunkGrid grid = Paper2DGrid();
  int count = 0;
  grid.ForEachChunkOverlapping({{7, 9}, {10, 12}}, [&](ChunkId) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ChunkGridTest, ForEachChunkOverlappingCrossBoundary) {
  const ChunkGrid grid = Paper2DGrid();
  std::set<ChunkId> ids;
  grid.ForEachChunkOverlapping({{2, 2}, {3, 3}},
                               [&](ChunkId id) { ids.insert(id); });
  // Cells (2..3, 2..3) span chunk rows 0-1 and chunk cols 0-1.
  EXPECT_EQ(ids.size(), 4u);
}

TEST(ChunkGridTest, ThreeDimensionalRoundTrip) {
  auto schema = ArraySchema::Create(
      "P", {{"t", 1, 30, 7}, {"ra", 1, 20, 5}, {"dec", 1, 10, 3}}, {{"b"}});
  ASSERT_OK(schema.status());
  const ChunkGrid grid(schema.value());
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    CellCoord coord = {rng.UniformInt(1, 30), rng.UniformInt(1, 20),
                       rng.UniformInt(1, 10)};
    const ChunkPos pos = grid.PosOfCell(coord);
    const ChunkId id = grid.IdOfPos(pos);
    EXPECT_EQ(grid.PosOfId(id), pos);
    EXPECT_TRUE(grid.ChunkBox(pos).Contains(coord));
  }
}

// Property sweep: the chunk boxes of all slots partition the array domain.
class GridPartitionTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(GridPartitionTest, BoxesPartitionDomain) {
  const int64_t extent = GetParam();
  auto schema = ArraySchema::Create(
      "A", {{"i", 1, 23, extent}, {"j", 1, 17, 5}}, {{"r"}});
  ASSERT_OK(schema.status());
  const ChunkGrid grid(schema.value());
  int64_t covered = 0;
  for (int64_t ci = 0; ci < grid.ChunksInDim(0); ++ci) {
    for (int64_t cj = 0; cj < grid.ChunksInDim(1); ++cj) {
      covered += grid.ChunkBox({ci, cj}).NumCells();
    }
  }
  EXPECT_EQ(covered, 23 * 17);
}

INSTANTIATE_TEST_SUITE_P(Extents, GridPartitionTest,
                         ::testing::Values(1, 2, 3, 5, 7, 11, 23, 30));

TEST(BoxTest, ContainsAndIntersects) {
  const Box a{{1, 1}, {4, 4}};
  const Box b{{4, 4}, {6, 6}};
  const Box c{{5, 5}, {6, 6}};
  EXPECT_TRUE(a.Contains({2, 3}));
  EXPECT_FALSE(a.Contains({5, 2}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_EQ(a.NumCells(), 16);
}

}  // namespace
}  // namespace avm
