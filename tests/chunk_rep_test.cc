// Contract and differential tests for the dual chunk representation:
// sparse<->dense conversions, representation-dispatched mutation, the
// densification policy (hysteresis + forced modes), AdoptDense input
// validation, and bit-equivalence of the vectorized dense join path against
// the sparse reference kernel.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "agg/aggregates.h"
#include "array/chunk.h"
#include "array/chunk_grid.h"
#include "array/chunk_pool.h"
#include "array/schema.h"
#include "array/sparse_array.h"
#include "common/check.h"
#include "common/rng.h"
#include "join/compiled_shape.h"
#include "join/join_kernel.h"
#include "join/mapping.h"
#include "maintenance/maintainer.h"
#include "shape/shape.h"
#include "telemetry/telemetry.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;
using testing_util::MakeCountViewFixture;
using testing_util::RandomDisjointDelta;

class ScopedDensificationMode {
 public:
  explicit ScopedDensificationMode(DensificationMode mode)
      : saved_(GetDensificationMode()) {
    SetDensificationMode(mode);
  }
  ~ScopedDensificationMode() { SetDensificationMode(saved_); }
  ScopedDensificationMode(const ScopedDensificationMode&) = delete;
  ScopedDensificationMode& operator=(const ScopedDensificationMode&) = delete;

 private:
  DensificationMode saved_;
};

/// Single-chunk schema [0, extent)^2 with `num_attrs` double attributes.
ArraySchema MakeOneChunkSchema(int64_t extent, size_t num_attrs = 1) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < num_attrs; ++i) {
    attrs.push_back({"a" + std::to_string(i), AttributeType::kDouble});
  }
  auto schema = ArraySchema::Create(
      "one", {{"x", 0, extent - 1, extent}, {"y", 0, extent - 1, extent}},
      std::move(attrs));
  AVM_CHECK(schema.ok()) << schema.status().ToString();
  return std::move(schema).value();
}

/// Fills `chunk` (on chunk 0 of `grid`) to roughly `density` with
/// deterministic Bernoulli draws, in row-major cell order.
void FillChunk(const ChunkGrid& grid, double density, uint64_t seed,
               Chunk* chunk) {
  Rng rng(seed);
  const Box box = grid.ChunkBoxOfId(0);
  std::vector<double> values(chunk->num_attrs());
  CellCoord coord = box.lo;
  for (;;) {
    if (rng.Bernoulli(density)) {
      for (auto& v : values) v = rng.UniformDouble() * 100.0 - 50.0;
      chunk->UpsertCell(grid.InChunkOffset(coord), coord, values);
    }
    size_t d = coord.size();
    while (d-- > 0) {
      if (++coord[d] <= box.hi[d]) break;
      coord[d] = box.lo[d];
      if (d == 0) return;
    }
  }
}

TEST(ChunkRepTest, DensifySparsifyRoundTripsRandomizedContent) {
  ChunkGrid grid(MakeOneChunkSchema(16, 2));
  for (const double density : {0.05, 0.3, 0.7, 1.0}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      Chunk chunk(2, 2);
      FillChunk(grid, density, seed * 31 + static_cast<uint64_t>(density * 10),
                &chunk);
      const Chunk reference(chunk);
      chunk.Densify(grid, 0);
      EXPECT_EQ(chunk.rep(), ChunkRep::kDense);
      EXPECT_EQ(chunk.num_cells(), reference.num_cells());
      EXPECT_TRUE(chunk.ContentEquals(reference, 0.0));
      chunk.CheckInvariants(&grid, 0);
      chunk.Sparsify();
      EXPECT_EQ(chunk.rep(), ChunkRep::kSparse);
      EXPECT_TRUE(chunk.ContentEquals(reference, 0.0));
      chunk.CheckInvariants(&grid, 0);
    }
  }
}

TEST(ChunkRepTest, MutationsDispatchIdenticallyOnBothRepresentations) {
  ChunkGrid grid(MakeOneChunkSchema(12, 1));
  Chunk sparse(2, 1);
  FillChunk(grid, 0.4, 77, &sparse);
  Chunk dense(sparse);
  dense.Densify(grid, 0);

  // Drive the same randomized upsert/accumulate/erase stream into both and
  // require equality (and intact invariants) after every operation.
  Rng rng(1234);
  const Box box = grid.ChunkBoxOfId(0);
  for (int step = 0; step < 500; ++step) {
    CellCoord coord = {rng.UniformInt(box.lo[0], box.hi[0]),
                       rng.UniformInt(box.lo[1], box.hi[1])};
    const uint64_t offset = grid.InChunkOffset(coord);
    const double value = rng.UniformDouble() * 10.0 - 5.0;
    switch (rng.UniformInt(0, 2)) {
      case 0:
        sparse.UpsertCell(offset, coord, {&value, 1});
        dense.UpsertCell(offset, coord, {&value, 1});
        break;
      case 1:
        sparse.AccumulateCell(offset, coord, {&value, 1});
        dense.AccumulateCell(offset, coord, {&value, 1});
        break;
      default:
        EXPECT_EQ(sparse.EraseCell(offset), dense.EraseCell(offset));
        break;
    }
    ASSERT_EQ(sparse.HasCell(offset), dense.HasCell(offset));
    const double* sv = sparse.GetCell(offset);
    const double* dv = dense.GetCell(offset);
    ASSERT_EQ(sv == nullptr, dv == nullptr);
    if (sv != nullptr) {
      ASSERT_EQ(sv[0], dv[0]);
    }
  }
  EXPECT_EQ(dense.rep(), ChunkRep::kDense);
  EXPECT_TRUE(sparse.ContentEquals(dense, 0.0));
  sparse.CheckInvariants(&grid, 0);
  dense.CheckInvariants(&grid, 0);
}

TEST(ChunkRepTest, AutoPolicyDensifiesAndSparsifiesWithHysteresis) {
  ScopedDensificationMode pin(DensificationMode::kAuto);
  ChunkGrid grid(MakeOneChunkSchema(10, 1));  // volume 100
  Chunk chunk(2, 1);
  const double value = 1.0;
  // Fill to just under the densify threshold: stays sparse.
  const auto upsert_cells = [&](uint64_t from, uint64_t to) {
    for (uint64_t off = from; off < to; ++off) {
      const CellCoord coord = {static_cast<int64_t>(off / 10),
                               static_cast<int64_t>(off % 10)};
      chunk.UpsertCell(off, coord, {&value, 1});
    }
  };
  upsert_cells(0, 44);
  EXPECT_FALSE(chunk.MaybeAdaptRepresentation(grid, 0));
  EXPECT_EQ(chunk.rep(), ChunkRep::kSparse);
  // Cross the threshold (>= 45/100): densifies.
  upsert_cells(44, 45);
  EXPECT_TRUE(chunk.MaybeAdaptRepresentation(grid, 0));
  EXPECT_EQ(chunk.rep(), ChunkRep::kDense);
  // Inside the hysteresis band (21..44 cells): stays dense, no flapping.
  for (uint64_t off = 44; off >= 21; --off) {
    ASSERT_TRUE(chunk.EraseCell(off));
  }
  EXPECT_FALSE(chunk.MaybeAdaptRepresentation(grid, 0));
  EXPECT_EQ(chunk.rep(), ChunkRep::kDense);
  // At or under the sparsify floor (<= 20/100): reverts to sparse.
  ASSERT_TRUE(chunk.EraseCell(20));
  EXPECT_TRUE(chunk.MaybeAdaptRepresentation(grid, 0));
  EXPECT_EQ(chunk.rep(), ChunkRep::kSparse);
  chunk.CheckInvariants(&grid, 0);
  EXPECT_EQ(chunk.num_cells(), 20u);
}

TEST(ChunkRepTest, ForcedModesPinTheRepresentation) {
  ChunkGrid grid(MakeOneChunkSchema(8, 1));
  Chunk chunk(2, 1);
  FillChunk(grid, 0.1, 9, &chunk);  // far below the auto threshold
  ASSERT_FALSE(chunk.empty());
  {
    ScopedDensificationMode pin(DensificationMode::kForceDense);
    EXPECT_TRUE(chunk.MaybeAdaptRepresentation(grid, 0));
    EXPECT_EQ(chunk.rep(), ChunkRep::kDense);
    // Idempotent: already dense.
    EXPECT_FALSE(chunk.MaybeAdaptRepresentation(grid, 0));
  }
  {
    ScopedDensificationMode pin(DensificationMode::kForceSparse);
    EXPECT_TRUE(chunk.MaybeAdaptRepresentation(grid, 0));
    EXPECT_EQ(chunk.rep(), ChunkRep::kSparse);
    EXPECT_FALSE(chunk.MaybeAdaptRepresentation(grid, 0));
  }
  chunk.CheckInvariants(&grid, 0);
}

TEST(ChunkRepTest, OversizedChunkBoxNeverDensifies) {
  // Chunk volume 2^14 * 2^13 = 2^27 > kMaxDenseVolume: even kForceDense
  // must refuse rather than allocate a 1GB lane buffer.
  auto schema = ArraySchema::Create(
      "huge",
      {{"x", 0, (int64_t{1} << 14) - 1, int64_t{1} << 14},
       {"y", 0, (int64_t{1} << 13) - 1, int64_t{1} << 13}},
      {{"a", AttributeType::kDouble}});
  ASSERT_OK(schema.status());
  ChunkGrid grid(schema.value());
  Chunk chunk(2, 1);
  const double value = 3.0;
  chunk.UpsertCell(0, {0, 0}, {&value, 1});
  ScopedDensificationMode pin(DensificationMode::kForceDense);
  EXPECT_FALSE(chunk.MaybeAdaptRepresentation(grid, 0));
  EXPECT_EQ(chunk.rep(), ChunkRep::kSparse);
}

TEST(ChunkRepTest, CellRefsStayValidAcrossGrowthOnBothRepresentations) {
  ChunkGrid grid(MakeOneChunkSchema(10, 1));
  for (const bool densify : {false, true}) {
    Chunk chunk(2, 1);
    if (densify) chunk.Densify(grid, 0);
    const std::vector<double> identity = {0.0};
    const CellCoord first = {1, 2};
    const Chunk::CellRef ref = chunk.GetOrCreateCell(
        grid.InChunkOffset(first), first, identity);
    chunk.StateOfCellRef(ref)[0] = 7.0;
    // Insert enough further cells to force sparse buffer reallocation.
    for (int64_t x = 0; x < 10; ++x) {
      for (int64_t y = 0; y < 10; ++y) {
        const CellCoord coord = {x, y};
        chunk.GetOrCreateCell(grid.InChunkOffset(coord), coord, identity);
      }
    }
    chunk.StateOfCellRef(ref)[0] += 1.0;
    const double* cell = chunk.GetCell(grid.InChunkOffset(first));
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell[0], 8.0) << (densify ? "dense" : "sparse");
  }
}

TEST(ChunkRepTest, PooledChunkComesBackSparse) {
  ChunkGrid grid(MakeOneChunkSchema(8, 1));
  Chunk chunk = ChunkPool::Acquire(2, 1);
  FillChunk(grid, 0.9, 5, &chunk);
  chunk.Densify(grid, 0);
  ASSERT_EQ(chunk.rep(), ChunkRep::kDense);
  ChunkPool::Release(std::move(chunk));
  // Reuse (or a fresh allocation if the shard was full): either way the
  // layout contract says sparse and empty.
  Chunk reused = ChunkPool::Acquire(2, 1);
  EXPECT_EQ(reused.rep(), ChunkRep::kSparse);
  EXPECT_TRUE(reused.empty());
  reused.CheckInvariants();
  ChunkPool::DrainForTesting();
}

TEST(ChunkRepTest, AdoptDenseRejectsCorruptBlocks) {
  const std::vector<int64_t> origin = {0, 0};
  const std::vector<int64_t> extents = {4, 4};  // volume 16, 1 bitmap word
  std::vector<uint64_t> bitmap = {0x3};         // cells at offsets 0 and 1
  std::vector<double> lanes(16, 0.0);
  lanes[0] = 1.5;
  lanes[1] = 2.5;

  {
    Chunk chunk(2, 1);
    ASSERT_OK(chunk.AdoptDense(origin, extents, bitmap, lanes));
    EXPECT_EQ(chunk.rep(), ChunkRep::kDense);
    EXPECT_EQ(chunk.num_cells(), 2u);
  }
  {  // Wrong bitmap length.
    Chunk chunk(2, 1);
    EXPECT_FALSE(
        chunk.AdoptDense(origin, extents, {0x3, 0x0}, lanes).ok());
    EXPECT_EQ(chunk.rep(), ChunkRep::kSparse);  // unchanged on failure
  }
  {  // Wrong lane length.
    Chunk chunk(2, 1);
    std::vector<double> short_lanes(15, 0.0);
    EXPECT_FALSE(chunk.AdoptDense(origin, extents, bitmap, short_lanes).ok());
  }
  {  // Trailing bitmap bits past the volume must be clear.
    Chunk chunk(2, 1);
    EXPECT_FALSE(
        chunk.AdoptDense(origin, extents, {uint64_t{1} << 16}, lanes).ok());
  }
  {  // Vacant slots must keep zeroed lanes.
    Chunk chunk(2, 1);
    std::vector<double> dirty = lanes;
    dirty[7] = 9.0;  // offset 7 is vacant under bitmap 0x3
    EXPECT_FALSE(chunk.AdoptDense(origin, extents, bitmap, dirty).ok());
  }
  {  // Mismatched geometry vector lengths.
    Chunk chunk(2, 1);
    EXPECT_FALSE(chunk.AdoptDense({0}, extents, bitmap, lanes).ok());
  }
}

TEST(ChunkRepTest, SizeBytesIsRepresentationIndependent) {
  ChunkGrid grid(MakeOneChunkSchema(10, 2));
  Chunk chunk(2, 2);
  FillChunk(grid, 0.6, 21, &chunk);
  const uint64_t logical = chunk.SizeBytes();
  const uint64_t sparse_physical = chunk.PhysicalSizeBytes();
  chunk.Densify(grid, 0);
  EXPECT_EQ(chunk.SizeBytes(), logical);
  const uint64_t dense_physical = chunk.PhysicalSizeBytes();
  // Dense buffers are sized by the box volume, not the cell count.
  const auto dv = chunk.dense_view();
  EXPECT_EQ(dense_physical,
            ((dv.volume + 63) / 64) * sizeof(uint64_t) +
                dv.volume * 2 * sizeof(double) + 4 * sizeof(int64_t));
  EXPECT_NE(dense_physical, sparse_physical);
}

// ---------------------------------------------------------------------------
// Dense join path: bit-equivalence against the sparse reference kernel.
// ---------------------------------------------------------------------------

/// Runs the compiled-shape kernel for a single-chunk self-join and returns
/// the view fragments.
std::map<ChunkId, Chunk> RunKernel(const Chunk& chunk, const ChunkGrid& grid,
                                   const AggregateLayout& layout,
                                   const Shape& shape, int multiplicity) {
  const DimMapping mapping = DimMapping::Identity(2);
  std::vector<size_t> group_dims = {0, 1};
  const RightOperand rop{&chunk, 0, &grid};
  const ViewTarget target{&group_dims, &grid};
  auto compiled = CompiledShapeCache::Global().Get(shape, mapping, grid);
  AVM_CHECK(compiled.ok()) << compiled.status().ToString();
  std::map<ChunkId, Chunk> fragments;
  AVM_CHECK(JoinAggregateChunkPair(chunk, rop, *compiled.value(), layout,
                                   target, multiplicity, &fragments)
                .ok());
  return fragments;
}

TEST(DenseKernelTest, BitIdenticalToSparseReferenceAcrossSweep) {
  const ChunkGrid grid(MakeOneChunkSchema(14, 1));
  const struct {
    const char* name;
    std::vector<AggregateSpec> specs;
    bool retractable;
  } layouts[] = {
      {"count_sum",
       {{AggregateFunction::kCount, 0, "cnt"},
        {AggregateFunction::kSum, 0, "sum"}},
       true},
      {"avg", {{AggregateFunction::kAvg, 0, "avg"}}, true},
      {"min_max",
       {{AggregateFunction::kMin, 0, "mn"},
        {AggregateFunction::kMax, 0, "mx"}},
       false},
  };
  for (const auto& lt : layouts) {
    auto layout_result = AggregateLayout::Create(lt.specs, 1);
    ASSERT_OK(layout_result.status());
    const AggregateLayout layout = std::move(layout_result).value();
    for (const int64_t radius : {int64_t{1}, int64_t{2}}) {
      const Shape shape = Shape::LinfBall(2, radius);
      for (const double density : {0.1, 0.5, 0.95}) {
        Chunk sparse(2, 1);
        FillChunk(grid, density, 400 + static_cast<uint64_t>(density * 100),
                  &sparse);
        Chunk dense(sparse);
        dense.Densify(grid, 0);
        for (const int multiplicity : lt.retractable ? std::vector<int>{1, -1}
                                                     : std::vector<int>{1}) {
          const auto ref =
              RunKernel(sparse, grid, layout, shape, multiplicity);
          const auto got = RunKernel(dense, grid, layout, shape, multiplicity);
          ASSERT_EQ(ref.size(), got.size())
              << lt.name << " r=" << radius << " d=" << density;
          for (const auto& [id, frag] : ref) {
            auto it = got.find(id);
            ASSERT_NE(it, got.end());
            // Tolerance 0: the dense interior must preserve the sparse
            // kernel's floating-point fold order bit for bit.
            EXPECT_TRUE(frag.ContentEquals(it->second, 0.0))
                << lt.name << " r=" << radius << " d=" << density
                << " m=" << multiplicity;
          }
        }
      }
    }
  }
}

TEST(DenseKernelTest, ScanStrategyAgreesOnDenseChunks) {
  // A shape far past the probe/scan crossover forces the scan path; dense
  // right chunks must produce the same fragments there too.
  const ChunkGrid grid(MakeOneChunkSchema(14, 1));
  auto layout_result = AggregateLayout::Create(
      {{AggregateFunction::kCount, 0, "cnt"},
       {AggregateFunction::kSum, 0, "sum"}},
      1);
  ASSERT_OK(layout_result.status());
  const AggregateLayout layout = std::move(layout_result).value();
  const Shape shape = Shape::LinfBall(2, 12);
  Chunk sparse(2, 1);
  FillChunk(grid, 0.15, 88, &sparse);
  Chunk dense(sparse);
  dense.Densify(grid, 0);
  ASSERT_EQ(ChooseJoinStrategy(shape.size(), dense.num_cells(),
                               ChunkRep::kDense),
            JoinStrategy::kScanRight);
  const auto ref = RunKernel(sparse, grid, layout, shape, 1);
  const auto got = RunKernel(dense, grid, layout, shape, 1);
  ASSERT_EQ(ref.size(), got.size());
  for (const auto& [id, frag] : ref) {
    auto it = got.find(id);
    ASSERT_NE(it, got.end());
    EXPECT_TRUE(frag.ContentEquals(it->second, 0.0));
  }
}

// ---------------------------------------------------------------------------
// Maintenance oracle under forced densification modes.
// ---------------------------------------------------------------------------

TEST(DensificationMaintenanceTest, ViewMatchesRecomputeUnderForcedModes) {
  // The same batch series maintained with densification forced on, forced
  // off, and automatic must all converge to the recomputed truth and to
  // each other.
  const uint64_t kSeed = 6100;
  std::vector<SparseArray> gathers;
  for (const DensificationMode mode :
       {DensificationMode::kForceSparse, DensificationMode::kForceDense,
        DensificationMode::kAuto}) {
    ScopedDensificationMode pin(mode);
    ASSERT_OK_AND_ASSIGN(
        testing_util::ViewFixture fixture,
        MakeCountViewFixture(3, 120, Shape::L1Ball(2, 1), kSeed,
                             /*with_sum=*/true));
    ViewMaintainer maintainer(fixture.view.get(),
                              MaintenanceMethod::kReassign);
    SparseArray mirror(fixture.local_base.schema());
    Status seed_copy = Status::OK();
    fixture.local_base.ForEachCell([&](std::span<const int64_t> coord,
                                       std::span<const double> values) {
      if (seed_copy.ok()) {
        seed_copy = mirror.Set(CellCoord(coord.begin(), coord.end()), values);
      }
    });
    ASSERT_OK(seed_copy);
    for (int batch = 0; batch < 3; ++batch) {
      Rng rng(kSeed + 7 * static_cast<uint64_t>(batch));
      SparseArray delta = RandomDisjointDelta(mirror, 40, &rng);
      ASSERT_OK(maintainer.ApplyBatch(delta).status());
      Status merge = Status::OK();
      delta.ForEachCell([&](std::span<const int64_t> coord,
                            std::span<const double> values) {
        if (merge.ok()) merge = mirror.Set(CellCoord(coord.begin(), coord.end()), values);
      });
      ASSERT_OK(merge);
    }
    EXPECT_TRUE(testing_util::ViewMatchesRecompute(*fixture.view));
    ASSERT_OK_AND_ASSIGN(SparseArray gathered, fixture.view->array().Gather());
    gathers.push_back(std::move(gathered));
  }
  ASSERT_EQ(gathers.size(), 3u);
  EXPECT_TRUE(gathers[0].ContentEquals(gathers[1], 1e-9));
  EXPECT_TRUE(gathers[0].ContentEquals(gathers[2], 1e-9));
}

TEST(DensificationMaintenanceTest, ReportsConversionCountersAndResidency) {
  ScopedDensificationMode pin(DensificationMode::kForceDense);
  EnableTelemetry();
  ASSERT_OK_AND_ASSIGN(
      testing_util::ViewFixture fixture,
      MakeCountViewFixture(2, 150, Shape::L1Ball(2, 1), 6200));
  ViewMaintainer maintainer(fixture.view.get(),
                            MaintenanceMethod::kDifferential);
  Rng rng(6201);
  SparseArray delta = RandomDisjointDelta(fixture.local_base, 50, &rng);
  ASSERT_OK_AND_ASSIGN(MaintenanceReport report, maintainer.ApplyBatch(delta));
  EXPECT_TRUE(report.telemetry_collected);
  // Forcing dense on freshly mutated base/view chunks must convert at least
  // one chunk and leave dense bytes resident somewhere in the cluster.
  EXPECT_GT(report.chunks_densified, 0u);
  EXPECT_GT(report.resident_dense_bytes, 0u);

  // Flip the policy: the next batch sparsifies the chunks it touches (ones
  // no delta lands on keep their old representation), so dense residency
  // shrinks and sparse residency appears.
  SetDensificationMode(DensificationMode::kForceSparse);
  SparseArray delta2 = RandomDisjointDelta(fixture.local_base, 50, &rng);
  ASSERT_OK_AND_ASSIGN(MaintenanceReport report2,
                       maintainer.ApplyBatch(delta2));
  EXPECT_GT(report2.chunks_sparsified, 0u);
  EXPECT_LT(report2.resident_dense_bytes, report.resident_dense_bytes);
  EXPECT_GT(report2.resident_sparse_bytes, 0u);
  DisableTelemetry();
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(*fixture.view));
}

}  // namespace
}  // namespace avm
