#include "array/sparse_array.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;

TEST(SparseArrayTest, SetAndGet) {
  SparseArray a(Make2DSchema("A"));
  ASSERT_OK(a.Set({3, 4}, std::vector<double>{7.0}));
  auto v = a.Get({3, 4});
  ASSERT_OK(v.status());
  EXPECT_EQ((*v)[0], 7.0);
}

TEST(SparseArrayTest, GetMissingIsNotFound) {
  SparseArray a(Make2DSchema("A"));
  EXPECT_TRUE(a.Get({1, 1}).status().IsNotFound());
}

TEST(SparseArrayTest, SetOutOfRangeFails) {
  SparseArray a(Make2DSchema("A"));
  EXPECT_TRUE(a.Set({0, 1}, std::vector<double>{1.0}).IsOutOfRange());
  EXPECT_TRUE(a.Set({41, 1}, std::vector<double>{1.0}).IsOutOfRange());
  EXPECT_TRUE(a.Get({0, 1}).status().IsOutOfRange());
}

TEST(SparseArrayTest, SetWrongArityFails) {
  SparseArray a(Make2DSchema("A"));
  EXPECT_TRUE(a.Set({1, 1}, std::vector<double>{1.0, 2.0})
                  .IsInvalidArgument());
}

TEST(SparseArrayTest, SetOverwrites) {
  SparseArray a(Make2DSchema("A"));
  ASSERT_OK(a.Set({1, 1}, std::vector<double>{1.0}));
  ASSERT_OK(a.Set({1, 1}, std::vector<double>{2.0}));
  EXPECT_EQ(a.NumCells(), 1u);
  EXPECT_EQ((*a.Get({1, 1}))[0], 2.0);
}

TEST(SparseArrayTest, AccumulateAdds) {
  SparseArray a(Make2DSchema("A"));
  ASSERT_OK(a.Accumulate({1, 1}, std::vector<double>{1.5}));
  ASSERT_OK(a.Accumulate({1, 1}, std::vector<double>{2.5}));
  EXPECT_EQ((*a.Get({1, 1}))[0], 4.0);
}

TEST(SparseArrayTest, EraseRemovesAndDropsEmptyChunk) {
  SparseArray a(Make2DSchema("A"));
  ASSERT_OK(a.Set({1, 1}, std::vector<double>{1.0}));
  EXPECT_EQ(a.NumChunks(), 1u);
  EXPECT_TRUE(a.Erase({1, 1}));
  EXPECT_FALSE(a.Erase({1, 1}));
  EXPECT_EQ(a.NumChunks(), 0u);
  EXPECT_EQ(a.NumCells(), 0u);
}

TEST(SparseArrayTest, HasChecksPresence) {
  SparseArray a(Make2DSchema("A"));
  ASSERT_OK(a.Set({2, 2}, std::vector<double>{1.0}));
  EXPECT_TRUE(a.Has({2, 2}));
  EXPECT_FALSE(a.Has({2, 3}));
  EXPECT_FALSE(a.Has({0, 0}));  // out of range is simply absent
}

TEST(SparseArrayTest, CellsGroupIntoChunks) {
  SparseArray a(Make2DSchema("A", 40, 8, 24, 6));
  // Two cells in the same chunk, one in another.
  ASSERT_OK(a.Set({1, 1}, std::vector<double>{1.0}));
  ASSERT_OK(a.Set({2, 2}, std::vector<double>{1.0}));
  ASSERT_OK(a.Set({20, 20}, std::vector<double>{1.0}));
  EXPECT_EQ(a.NumCells(), 3u);
  EXPECT_EQ(a.NumChunks(), 2u);
}

TEST(SparseArrayTest, ChunkIdsAscending) {
  SparseArray a(Make2DSchema("A"));
  ASSERT_OK(a.Set({40, 24}, std::vector<double>{1.0}));
  ASSERT_OK(a.Set({1, 1}, std::vector<double>{1.0}));
  auto ids = a.ChunkIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_LT(ids[0], ids[1]);
}

TEST(SparseArrayTest, ForEachCellVisitsEverything) {
  SparseArray a(Make2DSchema("A"));
  Rng rng(5);
  testing_util::FillRandom(&a, 200, &rng);
  size_t visits = 0;
  a.ForEachCell([&](std::span<const int64_t>, std::span<const double>) {
    ++visits;
  });
  EXPECT_EQ(visits, 200u);
  EXPECT_EQ(a.NumCells(), 200u);
}

TEST(SparseArrayTest, SizeBytesMatchesCells) {
  SparseArray a(Make2DSchema("A"));  // 2 dims, 1 attr
  ASSERT_OK(a.Set({1, 1}, std::vector<double>{1.0}));
  ASSERT_OK(a.Set({1, 2}, std::vector<double>{1.0}));
  EXPECT_EQ(a.SizeBytes(), 2u * 8u * 3u);
}

TEST(SparseArrayTest, CloneIsDeepAndEqual) {
  SparseArray a(Make2DSchema("A"));
  Rng rng(6);
  testing_util::FillRandom(&a, 50, &rng);
  SparseArray b = a.Clone();
  EXPECT_TRUE(a.ContentEquals(b));
  ASSERT_OK(b.Set({1, 1}, std::vector<double>{123.0}));
  // Mutating the clone must not affect the original.
  auto original = a.Get({1, 1});
  if (original.ok()) {
    EXPECT_NE((*original)[0], 123.0);
  }
}

TEST(SparseArrayTest, ContentEqualsDetectsDifferences) {
  SparseArray a(Make2DSchema("A"));
  SparseArray b(Make2DSchema("A"));
  ASSERT_OK(a.Set({1, 1}, std::vector<double>{1.0}));
  EXPECT_FALSE(a.ContentEquals(b));
  ASSERT_OK(b.Set({1, 1}, std::vector<double>{1.0}));
  EXPECT_TRUE(a.ContentEquals(b));
  ASSERT_OK(b.Set({1, 1}, std::vector<double>{1.0001}));
  EXPECT_FALSE(a.ContentEquals(b));
  EXPECT_TRUE(a.ContentEquals(b, 0.001));
}

TEST(SparseArrayTest, GetOrCreateChunkReusesChunk) {
  SparseArray a(Make2DSchema("A"));
  Chunk& c1 = a.GetOrCreateChunk(3);
  c1.UpsertCell(0, {1, 19}, std::vector<double>{5.0});
  Chunk& c2 = a.GetOrCreateChunk(3);
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.num_cells(), 1u);
}

}  // namespace
}  // namespace avm
