#include "join/compiled_shape.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "agg/aggregates.h"
#include "array/sparse_array.h"
#include "common/check.h"
#include "common/rng.h"
#include "harness/experiment.h"
#include "join/join_kernel.h"
#include "join/pair_enumeration.h"
#include "join/reference.h"
#include "join/similarity_join.h"
#include "tests/test_util.h"

namespace avm {
namespace {

/// Anisotropic 2-D schema: 3x3 chunks of 7x4 cells.
ArraySchema Aniso2D() {
  auto schema = ArraySchema::Create(
      "A2", {{"x", 1, 21, 7}, {"y", 1, 12, 4}},
      {{"v", AttributeType::kDouble}});
  AVM_CHECK(schema.ok());
  return std::move(schema).value();
}

/// Anisotropic 3-D schema: 2x3x2 chunks of 5x3x4 cells.
ArraySchema Aniso3D() {
  auto schema = ArraySchema::Create(
      "A3", {{"x", 1, 10, 5}, {"y", 1, 9, 3}, {"z", 1, 8, 4}},
      {{"v", AttributeType::kDouble}});
  AVM_CHECK(schema.ok());
  return std::move(schema).value();
}

AggregateLayout CountSumLayout() {
  auto layout = AggregateLayout::Create({{AggregateFunction::kCount, 0, "c"},
                                         {AggregateFunction::kSum, 0, "s"}},
                                        1);
  AVM_CHECK(layout.ok());
  return std::move(layout).value();
}

TEST(CompiledShapeTest, LinearDeltasMatchGridOffsets) {
  const ArraySchema schema = Aniso2D();
  const ChunkGrid grid(schema);
  const Shape shape = Shape::LinfBall(2, 1);
  ASSERT_OK_AND_ASSIGN(
      CompiledShape compiled,
      CompiledShape::Create(shape, DimMapping::Identity(2), grid));
  ASSERT_EQ(compiled.num_offsets(), shape.size());

  // An interior base cell of the center chunk: every probe's grid offset
  // must equal base_offset + delta, in the shape's offset order.
  const CellCoord base = {10, 6};
  const Box box = grid.ChunkBoxOfId(grid.IdOfCell(base));
  const uint64_t base_offset = grid.InChunkOffset(base);
  ASSERT_EQ(compiled.OffsetInChunk(base, box), base_offset);
  const auto& offsets = shape.offsets();
  for (size_t k = 0; k < offsets.size(); ++k) {
    const CellCoord probe = {base[0] + offsets[k][0], base[1] + offsets[k][1]};
    ASSERT_EQ(grid.IdOfCell(probe), grid.IdOfCell(base))
        << "test cell is not interior";
    EXPECT_EQ(static_cast<int64_t>(grid.InChunkOffset(probe)),
              static_cast<int64_t>(base_offset) + compiled.linear_deltas()[k]);
  }
}

TEST(CompiledShapeTest, InteriorBoxShrinksByBoundingBox) {
  const ArraySchema schema = Aniso2D();
  const ChunkGrid grid(schema);
  const Shape shape = Shape::L1Ball(2, 2);  // bbox [-2,2] x [-2,2]
  ASSERT_OK_AND_ASSIGN(
      CompiledShape compiled,
      CompiledShape::Create(shape, DimMapping::Identity(2), grid));

  const Box box = grid.ChunkBoxOfId(grid.IdOfCell({10, 6}));  // 7x4 chunk
  const Box interior = compiled.InteriorBox(box);
  EXPECT_EQ(interior.lo[0], box.lo[0] + 2);
  EXPECT_EQ(interior.hi[0], box.hi[0] - 2);
  // The y extent (4) is smaller than the bbox span (5): empty window, every
  // cell of this chunk takes the boundary path.
  EXPECT_GT(interior.lo[1], interior.hi[1]);
}

TEST(CompiledShapeTest, OffsetInChunkMatchesGridEverywhere) {
  const ArraySchema schema = Aniso3D();
  const ChunkGrid grid(schema);
  ASSERT_OK_AND_ASSIGN(
      CompiledShape compiled,
      CompiledShape::Create(Shape::LinfBall(3, 1), DimMapping::Identity(3),
                            grid));
  for (const CellCoord& coord :
       {CellCoord{1, 1, 1}, CellCoord{5, 3, 4}, CellCoord{6, 4, 5},
        CellCoord{10, 9, 8}, CellCoord{3, 7, 6}}) {
    const Box box = grid.ChunkBoxOfId(grid.IdOfCell(coord));
    EXPECT_EQ(compiled.OffsetInChunk(coord, box), grid.InChunkOffset(coord));
  }
}

TEST(CompiledShapeTest, CreateRejectsDimensionMismatch) {
  const ChunkGrid grid(Aniso2D());
  EXPECT_FALSE(
      CompiledShape::Create(Shape::LinfBall(3, 1), DimMapping::Identity(3),
                            grid)
          .ok());
}

TEST(CompiledShapeCacheTest, MemoizesByContent) {
  CompiledShapeCache& cache = CompiledShapeCache::Global();
  // A shape unlikely to collide with other tests' cache entries.
  ASSERT_OK_AND_ASSIGN(
      const Shape shape,
      Shape::FromOffsets(2, {{0, 0}, {3, -2}, {-1, 4}, {2, 2}}));
  const DimMapping mapping = DimMapping::Identity(2);
  const ChunkGrid grid_a(Aniso2D());

  ASSERT_OK_AND_ASSIGN(auto first, cache.Get(shape, mapping, grid_a));
  const size_t size_after_first = cache.size();
  ASSERT_OK_AND_ASSIGN(auto second, cache.Get(shape, mapping, grid_a));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), size_after_first);

  // Same extents, different array ranges: compilation depends only on the
  // chunk extents, so the entry is shared.
  auto shifted = ArraySchema::Create(
      "A2b", {{"x", 5, 39, 7}, {"y", 2, 21, 4}},
      {{"v", AttributeType::kDouble}});
  ASSERT_OK(shifted);
  const ChunkGrid grid_b(shifted.value());
  ASSERT_OK_AND_ASSIGN(auto third, cache.Get(shape, mapping, grid_b));
  EXPECT_EQ(first.get(), third.get());
  EXPECT_EQ(cache.size(), size_after_first);

  // Different chunk extents: a distinct compilation.
  const ChunkGrid grid_c(Aniso3D());
  ASSERT_OK_AND_ASSIGN(
      const Shape shape3,
      Shape::FromOffsets(3, {{0, 0, 0}, {3, -2, 1}, {-1, 4, 0}}));
  ASSERT_OK_AND_ASSIGN(auto fourth,
                       cache.Get(shape3, DimMapping::Identity(3), grid_c));
  EXPECT_NE(static_cast<const void*>(first.get()),
            static_cast<const void*>(fourth.get()));
  EXPECT_GT(cache.size(), size_after_first);
}

TEST(CompiledShapeCacheTest, CountsHitsAndMisses) {
  CompiledShapeCache& cache = CompiledShapeCache::Global();
  // A shape unique to this test so other tests' entries cannot pre-warm it.
  ASSERT_OK_AND_ASSIGN(const Shape shape,
                       Shape::FromOffsets(2, {{0, 0}, {5, -3}, {-4, 1}}));
  const DimMapping mapping = DimMapping::Identity(2);
  const ChunkGrid grid(Aniso2D());
  const uint64_t hits_before = cache.hits();
  const uint64_t misses_before = cache.misses();
  ASSERT_OK(cache.Get(shape, mapping, grid));  // cold: exactly one miss
  EXPECT_EQ(cache.misses(), misses_before + 1);
  EXPECT_EQ(cache.hits(), hits_before);
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(cache.Get(shape, mapping, grid));
  }
  EXPECT_EQ(cache.misses(), misses_before + 1);
  EXPECT_EQ(cache.hits(), hits_before + 5);
}

TEST(CompiledShapeCacheTest, RepeatedPresetPrefetchIsAllHits) {
  // The executor prefetches each batch's shape compilations before its
  // parallel join phase. Repeating an identical preset must therefore be
  // 100% cache hits: zero new misses across the entire second series.
  ExperimentScale scale;
  scale.num_workers = 4;
  scale.num_batches = 2;
  scale.geo.seed_pois = 400;
  scale.geo.batch_frac = 0.02;
  auto run = [&scale] {
    ASSERT_OK_AND_ASSIGN(
        PreparedExperiment experiment,
        PrepareExperiment(DatasetKind::kGeo, BatchRegime::kRandom, scale));
    ASSERT_OK_AND_ASSIGN(
        BatchSeries series,
        RunMaintenanceSeries(&experiment, MaintenanceMethod::kReassign,
                             PlannerOptions()));
    ASSERT_EQ(series.reports.size(), 2u);
  };

  CompiledShapeCache& cache = CompiledShapeCache::Global();
  run();  // cold: may compile the preset's shapes
  const uint64_t misses_after_first = cache.misses();
  const uint64_t hits_after_first = cache.hits();
  run();  // identical repeat
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GT(cache.hits(), hits_after_first);
}

// ---------------------------------------------------------------------------
// Randomized interior/boundary equivalence: the chunked kernel summed over
// all chunk pairs must match the unchunked reference evaluation for shapes
// of every metric, on anisotropic tilings, including cells on chunk faces,
// edges, and corners, under both multiplicities.
// ---------------------------------------------------------------------------

/// Fills `array` with random cells plus deterministic cells on every chunk
/// corner (and some face midpoints), so the boundary path always executes.
void FillWithBoundaryCells(SparseArray* array, size_t random_cells, Rng* rng) {
  testing_util::FillRandom(array, random_cells, rng);
  const ChunkGrid& grid = array->grid();
  const size_t nd = array->schema().num_dims();
  for (int64_t slot = 0; slot < grid.TotalChunkSlots(); ++slot) {
    const Box box = grid.ChunkBoxOfId(static_cast<ChunkId>(slot));
    // All 2^nd corners of the chunk box.
    for (uint32_t mask = 0; mask < (1u << nd); ++mask) {
      CellCoord corner(nd);
      for (size_t d = 0; d < nd; ++d) {
        corner[d] = (mask >> d) & 1 ? box.hi[d] : box.lo[d];
      }
      const double v = rng->UniformDouble() * 100.0;
      AVM_CHECK(array->Set(corner, {&v, 1}).ok());
    }
    // A face-center cell per dimension (edge/face coverage beyond corners).
    for (size_t d = 0; d < nd; ++d) {
      CellCoord face(nd);
      for (size_t e = 0; e < nd; ++e) {
        face[e] = e == d ? box.lo[e] : (box.lo[e] + box.hi[e]) / 2;
      }
      const double v = rng->UniformDouble() * 100.0;
      AVM_CHECK(array->Set(face, {&v, 1}).ok());
    }
  }
}

/// Runs the chunked kernel over every (left chunk, right partner) pair and
/// merges the fragments into a result array with state attributes.
SparseArray RunChunkedJoin(const SparseArray& left, const SparseArray& right,
                           const SimilarityJoinSpec& spec,
                           const ArraySchema& result_schema,
                           int multiplicity) {
  const ChunkGrid view_grid(result_schema);
  const ViewTarget target{&spec.group_dims, &view_grid};
  std::map<ChunkId, Chunk> fragments;
  for (ChunkId p : left.ChunkIds()) {
    for (ChunkId q : EnumerateJoinPartners(
             left.grid(), p, spec.mapping, spec.shape, right.grid(),
             [&](ChunkId c) { return right.GetChunk(c) != nullptr; })) {
      const RightOperand rop{right.GetChunk(q), q, &right.grid()};
      AVM_CHECK(JoinAggregateChunkPair(*left.GetChunk(p), rop, spec.mapping,
                                       spec.shape, spec.layout, target,
                                       multiplicity, &fragments)
                    .ok());
    }
  }
  SparseArray out(result_schema);
  CellCoord coord(result_schema.num_dims());
  for (const auto& [v, frag] : fragments) {
    frag.ForEachCell([&](std::span<const int64_t> c,
                         std::span<const double> state) {
      coord.assign(c.begin(), c.end());
      AVM_CHECK(out.Accumulate(coord, state).ok());
    });
  }
  return out;
}

/// Negates every state value (COUNT/SUM/AVG states are linear, so this is
/// the exact expectation for multiplicity -1).
SparseArray Negated(const SparseArray& array) {
  SparseArray out(array.schema());
  CellCoord coord(array.schema().num_dims());
  std::vector<double> neg(array.schema().num_attrs());
  array.ForEachCell([&](std::span<const int64_t> c,
                        std::span<const double> values) {
    coord.assign(c.begin(), c.end());
    for (size_t i = 0; i < values.size(); ++i) neg[i] = -values[i];
    AVM_CHECK(out.Set(coord, neg).ok());
  });
  return out;
}

struct NamedShape {
  const char* name;
  Shape shape;
};

std::vector<NamedShape> ShapeSuite(size_t nd) {
  std::vector<NamedShape> shapes;
  shapes.push_back({"L1(2)", Shape::L1Ball(nd, 2)});
  shapes.push_back({"L2(1.8)", Shape::L2Ball(nd, 1.8)});
  shapes.push_back({"Linf(1)", Shape::LinfBall(nd, 1)});
  shapes.push_back({"Hamming(1,2)", Shape::HammingBall(nd, 1, 2)});
  std::vector<double> weights(nd);
  for (size_t d = 0; d < nd; ++d) weights[d] = 1.0 + 0.5 * static_cast<double>(d);
  shapes.push_back(
      {"WeightedL2(1.5)",
       Shape::WeightedBall(nd, Shape::Norm::kL2, 1.5, weights)});
  return shapes;
}

void RunEquivalenceSuite(const ArraySchema& schema, size_t random_cells,
                         uint64_t seed) {
  const size_t nd = schema.num_dims();
  Rng rng(seed);
  SparseArray left(schema);
  SparseArray right(schema);
  FillWithBoundaryCells(&left, random_cells, &rng);
  FillWithBoundaryCells(&right, random_cells, &rng);

  SimilarityJoinSpec spec;
  spec.mapping = DimMapping::Identity(nd);
  spec.layout = CountSumLayout();
  spec.group_dims.resize(nd);
  for (size_t d = 0; d < nd; ++d) spec.group_dims[d] = d;

  std::vector<DimensionSpec> vdims = schema.dims();
  auto result_schema = ArraySchema::Create("V", std::move(vdims),
                                           spec.layout.StateAttributes());
  ASSERT_OK(result_schema);

  for (NamedShape& named : ShapeSuite(nd)) {
    spec.shape = named.shape;
    ASSERT_OK_AND_ASSIGN(
        SparseArray expected,
        ReferenceJoinAggregate(left, right, spec, result_schema.value()));
    const SparseArray actual =
        RunChunkedJoin(left, right, spec, result_schema.value(), 1);
    EXPECT_TRUE(actual.ContentEquals(expected, 1e-9))
        << named.name << ": chunked kernel disagrees with reference";

    const SparseArray retracted =
        RunChunkedJoin(left, right, spec, result_schema.value(), -1);
    EXPECT_TRUE(retracted.ContentEquals(Negated(expected), 1e-9))
        << named.name << ": multiplicity -1 is not the exact negation";
  }
}

TEST(JoinEquivalenceTest, AnisotropicTiling2D) {
  RunEquivalenceSuite(Aniso2D(), /*random_cells=*/100, /*seed=*/0xA2);
}

TEST(JoinEquivalenceTest, AnisotropicTiling3D) {
  RunEquivalenceSuite(Aniso3D(), /*random_cells=*/180, /*seed=*/0xA3);
}

TEST(JoinEquivalenceTest, SparseChunksUseScanStrategy) {
  // A 49-offset shape over chunks holding only a handful of cells sits past
  // the probe-vs-scan crossover (|σ| > 2.5 * right_cells), so this case
  // exercises the scan path against the reference.
  const ArraySchema schema = Aniso2D();
  Rng rng(0x5C);
  SparseArray left(schema);
  SparseArray right(schema);
  testing_util::FillRandom(&left, 14, &rng);
  testing_util::FillRandom(&right, 14, &rng);

  SimilarityJoinSpec spec;
  spec.mapping = DimMapping::Identity(2);
  spec.layout = CountSumLayout();
  spec.group_dims = {0, 1};
  spec.shape = Shape::LinfBall(2, 3);
  ASSERT_EQ(ChooseJoinStrategy(spec.shape.size(), 5),
            JoinStrategy::kScanRight);

  auto result_schema = ArraySchema::Create("V", schema.dims(),
                                           spec.layout.StateAttributes());
  ASSERT_OK(result_schema);
  ASSERT_OK_AND_ASSIGN(
      SparseArray expected,
      ReferenceJoinAggregate(left, right, spec, result_schema.value()));
  const SparseArray actual =
      RunChunkedJoin(left, right, spec, result_schema.value(), 1);
  EXPECT_TRUE(actual.ContentEquals(expected, 1e-9));
}

}  // namespace
}  // namespace avm
