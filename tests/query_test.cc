#include "query/query_planner.h"

#include <gtest/gtest.h>

#include "join/reference.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::MakeCountViewFixture;

/// The reference answer for a query shape over the view's base data.
Result<SparseArray> ReferenceAnswer(const testing_util::ViewFixture& fixture,
                                    const Shape& query_shape) {
  SimilarityJoinSpec spec = fixture.view->JoinSpec();
  spec.shape = query_shape;
  AVM_ASSIGN_OR_RETURN(SparseArray base, fixture.view->left_base().Gather());
  return ReferenceJoinAggregate(base, base, spec,
                                fixture.view->array().schema());
}

TEST(QueryPlannerTest, StrategyNames) {
  EXPECT_EQ(QueryStrategyName(QueryStrategy::kDifferentialOnView),
            "differential-on-view");
  EXPECT_EQ(QueryStrategyName(QueryStrategy::kCompleteJoin), "complete-join");
}

TEST(QueryPlannerTest, DifferentialAnswerMatchesReference) {
  // View: L1(1); query: L∞(1) — the paper's 4/9 case where the view wins.
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 150, Shape::L1Ball(2, 1), 500,
                                            /*with_sum=*/true));
  SimilarityQueryPlanner planner(fixture.view.get());
  const Shape query = Shape::LinfBall(2, 1);
  ASSERT_OK_AND_ASSIGN(
      auto outcome,
      planner.Execute(query, QueryStrategy::kDifferentialOnView));
  ASSERT_OK_AND_ASSIGN(SparseArray reference,
                       ReferenceAnswer(fixture, query));
  EXPECT_TRUE(outcome.states.ContentEquals(reference, 1e-9));
}

TEST(QueryPlannerTest, CompleteJoinAnswerMatchesReference) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 150, Shape::L1Ball(2, 1), 501));
  SimilarityQueryPlanner planner(fixture.view.get());
  const Shape query = Shape::LinfBall(2, 1);
  ASSERT_OK_AND_ASSIGN(auto outcome,
                       planner.Execute(query, QueryStrategy::kCompleteJoin));
  ASSERT_OK_AND_ASSIGN(SparseArray reference,
                       ReferenceAnswer(fixture, query));
  EXPECT_TRUE(outcome.states.ContentEquals(reference, 1e-9));
}

TEST(QueryPlannerTest, BothStrategiesAgreeWithEachOther) {
  // Shrinking query (pure retraction): view L∞(2), query L∞(1).
  ASSERT_OK_AND_ASSIGN(
      auto fixture,
      MakeCountViewFixture(3, 120, Shape::LinfBall(2, 2), 502,
                           /*with_sum=*/true));
  SimilarityQueryPlanner planner(fixture.view.get());
  const Shape query = Shape::LinfBall(2, 1);
  ASSERT_OK_AND_ASSIGN(
      auto with_view,
      planner.Execute(query, QueryStrategy::kDifferentialOnView));
  ASSERT_OK_AND_ASSIGN(auto complete,
                       planner.Execute(query, QueryStrategy::kCompleteJoin));
  EXPECT_TRUE(with_view.states.ContentEquals(complete.states, 1e-9));
}

TEST(QueryPlannerTest, IdenticalShapeQueryIsTheViewItself) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 100, Shape::L1Ball(2, 1), 503));
  SimilarityQueryPlanner planner(fixture.view.get());
  ASSERT_OK_AND_ASSIGN(
      auto outcome,
      planner.Execute(Shape::L1Ball(2, 1),
                      QueryStrategy::kDifferentialOnView));
  ASSERT_OK_AND_ASSIGN(SparseArray view_states,
                       fixture.view->array().Gather());
  EXPECT_TRUE(outcome.states.ContentEquals(view_states, 1e-9));
  // And the estimate strongly favors the view (∆ is empty).
  EXPECT_EQ(outcome.estimate.delta_shape_size, 0u);
  EXPECT_EQ(outcome.estimate.chosen, QueryStrategy::kDifferentialOnView);
}

TEST(QueryPlannerTest, EstimateRatioDrivesChoice) {
  // Small ∆/query ratio -> view; large ratio -> complete join (the paper's
  // Figure 6 logic).
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(4, 200, Shape::L1Ball(2, 1), 504));
  SimilarityQueryPlanner planner(fixture.view.get());
  // Query L∞(1) from view L1(1): ratio 4/9 < 1.
  ASSERT_OK_AND_ASSIGN(QueryCostEstimate small_delta,
                       planner.Estimate(Shape::LinfBall(2, 1)));
  EXPECT_LT(small_delta.DeltaRatio(), 1.0);
  EXPECT_EQ(small_delta.chosen, QueryStrategy::kDifferentialOnView);
  // Query L∞(3) from view L1(1): ∆ = 49-5+0... |plus|=44, ratio ~0.9 — use
  // an even bigger mismatch: L∞(4), |query| = 81, |plus| = 76 plus 0 minus.
  ASSERT_OK_AND_ASSIGN(QueryCostEstimate big_delta,
                       planner.Estimate(Shape::LinfBall(2, 4)));
  EXPECT_GT(big_delta.DeltaRatio(), 0.9);
  EXPECT_GE(big_delta.with_view_seconds,
            small_delta.with_view_seconds * 0.9);
}

TEST(QueryPlannerTest, ExecutePicksEstimatedWinner) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 100, Shape::L1Ball(2, 1), 505));
  SimilarityQueryPlanner planner(fixture.view.get());
  ASSERT_OK_AND_ASSIGN(auto outcome, planner.Execute(Shape::LinfBall(2, 1)));
  EXPECT_EQ(outcome.used, outcome.estimate.chosen);
  EXPECT_GT(outcome.sim_seconds, 0.0);
}

TEST(QueryPlannerTest, GrowingAndShrinkingDelta) {
  // View L2(2) vs query L∞(2): both plus and minus components non-empty.
  ASSERT_OK_AND_ASSIGN(
      auto fixture,
      MakeCountViewFixture(3, 120, Shape::L2Ball(2, 2.0), 506,
                           /*with_sum=*/true));
  SimilarityQueryPlanner planner(fixture.view.get());
  const Shape query = Shape::LinfBall(2, 2);
  ASSERT_OK_AND_ASSIGN(
      auto outcome,
      planner.Execute(query, QueryStrategy::kDifferentialOnView));
  ASSERT_OK_AND_ASSIGN(SparseArray reference,
                       ReferenceAnswer(fixture, query));
  EXPECT_TRUE(outcome.states.ContentEquals(reference, 1e-9));
}

TEST(QueryPlannerTest, ViewStaysIntactAfterQueries) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 100, Shape::L1Ball(2, 1), 507));
  ASSERT_OK_AND_ASSIGN(SparseArray before, fixture.view->array().Gather());
  SimilarityQueryPlanner planner(fixture.view.get());
  ASSERT_OK(planner.Execute(Shape::LinfBall(2, 1)).status());
  ASSERT_OK(
      planner.Execute(Shape::L1Ball(2, 2), QueryStrategy::kCompleteJoin)
          .status());
  ASSERT_OK_AND_ASSIGN(SparseArray after, fixture.view->array().Gather());
  EXPECT_TRUE(before.ContentEquals(after));
}

TEST(QueryPlannerTest, RepeatedQueriesDoNotLeakArrays) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 80, Shape::L1Ball(2, 1), 508));
  SimilarityQueryPlanner planner(fixture.view.get());
  const size_t arrays_before = fixture.catalog->NumArrays();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(planner.Execute(Shape::LinfBall(2, 1)).status());
  }
  // Transient result arrays are unregistered (ids grow, live count stable).
  size_t live = 0;
  for (const std::string name : {"base", "view"}) {
    if (fixture.catalog->ArrayIdByName(name).ok()) ++live;
  }
  EXPECT_EQ(live, 2u);
  (void)arrays_before;
}

TEST(QueryPlannerTest, MinViewCannotRetractDelta) {
  Catalog catalog;
  Cluster cluster(2);
  const ArraySchema schema = testing_util::Make2DSchema("base");
  SparseArray local(schema);
  Rng rng(509);
  testing_util::FillRandom(&local, 50, &rng);
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(base.Ingest(local));
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "base";
  def.right_array = "base";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::LinfBall(2, 2);
  def.aggregates = {{AggregateFunction::kMax, 0, "mx"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), MakeRoundRobinPlacement(),
                             &catalog, &cluster));
  SimilarityQueryPlanner planner(&view);
  // Query L∞(1) requires retracting the view's outer ring: impossible for
  // MAX.
  EXPECT_TRUE(planner
                  .Execute(Shape::LinfBall(2, 1),
                           QueryStrategy::kDifferentialOnView)
                  .status()
                  .IsFailedPrecondition());
  // The complete join still works.
  EXPECT_OK(planner.Execute(Shape::LinfBall(2, 1),
                            QueryStrategy::kCompleteJoin)
                .status());
}

}  // namespace
}  // namespace avm
