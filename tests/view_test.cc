#include "view/materialized_view.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "view/view_definition.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;

TEST(ViewDefinitionTest, DerivesSchemaFromGroupDims) {
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "A";
  def.right_array = "A";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::L1Ball(2, 1);
  def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  const ArraySchema base = Make2DSchema("A");
  auto schema = def.DeriveViewSchema(base, base);
  ASSERT_OK(schema.status());
  EXPECT_EQ(schema->num_dims(), 2u);
  EXPECT_EQ(schema->num_attrs(), 1u);
  EXPECT_EQ(schema->name(), "V");
  // group_dims was normalized to all dims.
  EXPECT_EQ(def.group_dims, (std::vector<size_t>{0, 1}));
}

TEST(ViewDefinitionTest, GroupDimSubsetAndChunkOverride) {
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "A";
  def.right_array = "A";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::L1Ball(2, 1);
  def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  def.group_dims = {1};
  def.view_chunk_extents = {12};
  const ArraySchema base = Make2DSchema("A");
  auto schema = def.DeriveViewSchema(base, base);
  ASSERT_OK(schema.status());
  EXPECT_EQ(schema->num_dims(), 1u);
  EXPECT_EQ(schema->dims()[0].name, "y");
  EXPECT_EQ(schema->dims()[0].chunk_extent, 12);
}

TEST(ViewDefinitionTest, RejectsBadInputs) {
  const ArraySchema base = Make2DSchema("A");
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "A";
  def.right_array = "A";
  def.mapping = DimMapping::Identity(3);  // arity mismatch
  def.shape = Shape::L1Ball(2, 1);
  def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  EXPECT_TRUE(def.DeriveViewSchema(base, base).status().IsInvalidArgument());

  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::L1Ball(3, 1);  // shape arity mismatch
  EXPECT_TRUE(def.DeriveViewSchema(base, base).status().IsInvalidArgument());

  def.shape = Shape::L1Ball(2, 1);
  def.group_dims = {7};  // out of range
  EXPECT_TRUE(def.DeriveViewSchema(base, base).status().IsInvalidArgument());

  def.group_dims = {0};
  def.view_chunk_extents = {4, 4};  // wrong arity
  EXPECT_TRUE(def.DeriveViewSchema(base, base).status().IsInvalidArgument());

  def.view_chunk_extents = {0};  // non-positive
  EXPECT_TRUE(def.DeriveViewSchema(base, base).status().IsInvalidArgument());

  def.view_chunk_extents.clear();
  def.view_name = "";
  EXPECT_TRUE(def.DeriveViewSchema(base, base).status().IsInvalidArgument());
}

TEST(ViewDefinitionTest, SelfJoinDetection) {
  ViewDefinition def;
  def.left_array = "A";
  def.right_array = "A";
  EXPECT_TRUE(def.IsSelfJoin());
  def.right_array = "B";
  EXPECT_FALSE(def.IsSelfJoin());
}

TEST(MaterializedViewTest, MaterializationMatchesReference) {
  ASSERT_OK_AND_ASSIGN(
      auto fixture,
      testing_util::MakeCountViewFixture(4, 150, Shape::LinfBall(2, 1), 77));
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(*fixture.view));
}

TEST(MaterializedViewTest, ViewCellsCountNeighborsIncludingSelf) {
  // Three cells in a row: counts 2, 3, 2 under L1(1) with center.
  Catalog catalog;
  Cluster cluster(2);
  const ArraySchema schema = Make2DSchema("base");
  SparseArray local(schema);
  for (int64_t y = 5; y <= 7; ++y) {
    ASSERT_OK(local.Set({5, y}, std::vector<double>{1.0}));
  }
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(base.Ingest(local));
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "base";
  def.right_array = "base";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::L1Ball(2, 1);
  def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), MakeRoundRobinPlacement(),
                             &catalog, &cluster));
  ASSERT_OK_AND_ASSIGN(SparseArray finalized, view.GatherFinalized());
  EXPECT_EQ((*finalized.Get({5, 5}))[0], 2.0);
  EXPECT_EQ((*finalized.Get({5, 6}))[0], 3.0);
  EXPECT_EQ((*finalized.Get({5, 7}))[0], 2.0);
}

TEST(MaterializedViewTest, GatherFinalizedComputesAvg) {
  Catalog catalog;
  Cluster cluster(2);
  const ArraySchema schema = Make2DSchema("base");
  SparseArray local(schema);
  ASSERT_OK(local.Set({5, 5}, std::vector<double>{10.0}));
  ASSERT_OK(local.Set({5, 6}, std::vector<double>{30.0}));
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(base.Ingest(local));
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "base";
  def.right_array = "base";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::L1Ball(2, 1);
  def.aggregates = {{AggregateFunction::kAvg, 0, "avg_a"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), MakeRoundRobinPlacement(),
                             &catalog, &cluster));
  // The state array stores (sum, count); finalized stores the mean.
  EXPECT_EQ(view.array().schema().num_attrs(), 2u);
  ASSERT_OK_AND_ASSIGN(SparseArray finalized, view.GatherFinalized());
  EXPECT_EQ(finalized.schema().num_attrs(), 1u);
  EXPECT_EQ((*finalized.Get({5, 5}))[0], 20.0);  // (10+30)/2
  EXPECT_EQ((*finalized.Get({5, 6}))[0], 20.0);
}

TEST(MaterializedViewTest, FailsForUnknownBaseArray) {
  Catalog catalog;
  Cluster cluster(2);
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "missing";
  def.right_array = "missing";
  EXPECT_TRUE(CreateMaterializedView(std::move(def),
                                     MakeRoundRobinPlacement(), &catalog,
                                     &cluster)
                  .status()
                  .IsNotFound());
}

TEST(MaterializedViewTest, TwoArrayView) {
  Catalog catalog;
  Cluster cluster(3);
  const ArraySchema a_schema = Make2DSchema("A");
  const ArraySchema b_schema = Make2DSchema("B");
  SparseArray a_local(a_schema), b_local(b_schema);
  Rng rng(41);
  testing_util::FillRandom(&a_local, 60, &rng);
  testing_util::FillRandom(&b_local, 60, &rng);
  ASSERT_OK_AND_ASSIGN(
      DistributedArray a,
      DistributedArray::Create(a_schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK_AND_ASSIGN(
      DistributedArray b,
      DistributedArray::Create(b_schema, MakeHashPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(a.Ingest(a_local));
  ASSERT_OK(b.Ingest(b_local));
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "A";
  def.right_array = "B";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::LinfBall(2, 1);
  def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), MakeRoundRobinPlacement(),
                             &catalog, &cluster));
  EXPECT_FALSE(view.definition().IsSelfJoin());
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(view));
}

}  // namespace
}  // namespace avm
