#include "join/mapping.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace avm {
namespace {

TEST(DimMappingTest, IdentityMapsCoordsUnchanged) {
  const DimMapping m = DimMapping::Identity(3);
  EXPECT_TRUE(m.IsIdentity());
  EXPECT_EQ(m.Apply({4, 5, 6}), (CellCoord{4, 5, 6}));
}

TEST(DimMappingTest, OffsetTranslation) {
  auto m = DimMapping::Create(2, {{0, 10}, {1, -3}});
  ASSERT_OK(m.status());
  EXPECT_FALSE(m->IsIdentity());
  EXPECT_EQ(m->Apply({1, 5}), (CellCoord{11, 2}));
}

TEST(DimMappingTest, DimensionPermutation) {
  auto m = DimMapping::Create(2, {{1, 0}, {0, 0}});
  ASSERT_OK(m.status());
  EXPECT_EQ(m->Apply({3, 9}), (CellCoord{9, 3}));
}

TEST(DimMappingTest, DimensionalityReduction) {
  // A 3-D array mapped onto a 2-D one by dropping dim 0.
  auto m = DimMapping::Create(3, {{1, 0}, {2, 0}});
  ASSERT_OK(m.status());
  EXPECT_EQ(m->num_right_dims(), 2u);
  EXPECT_EQ(m->Apply({100, 3, 9}), (CellCoord{3, 9}));
}

TEST(DimMappingTest, RejectsBadSourceDim) {
  EXPECT_TRUE(DimMapping::Create(2, {{5, 0}}).status().IsInvalidArgument());
}

TEST(DimMappingTest, RejectsEmptyTerms) {
  EXPECT_TRUE(DimMapping::Create(2, {}).status().IsInvalidArgument());
}

TEST(DimMappingTest, ApplyIntoReusesBuffer) {
  const DimMapping m = DimMapping::Identity(2);
  CellCoord out;
  const int64_t raw[2] = {7, 8};
  m.ApplyInto({raw, 2}, &out);
  EXPECT_EQ(out, (CellCoord{7, 8}));
}

TEST(DimMappingTest, ApplyBoxMapsCorners) {
  auto m = DimMapping::Create(2, {{0, 5}, {1, 0}});
  ASSERT_OK(m.status());
  const Box image = m->ApplyBox({{1, 2}, {3, 4}});
  EXPECT_EQ(image.lo, (CellCoord{6, 2}));
  EXPECT_EQ(image.hi, (CellCoord{8, 4}));
}

TEST(DimMappingTest, PreimageBoxIdentity) {
  const DimMapping m = DimMapping::Identity(2);
  const Box domain{{1, 1}, {100, 100}};
  const Box pre = m.PreimageBox({{5, 6}, {7, 8}}, domain);
  EXPECT_EQ(pre.lo, (CellCoord{5, 6}));
  EXPECT_EQ(pre.hi, (CellCoord{7, 8}));
}

TEST(DimMappingTest, PreimageBoxInvertsOffset) {
  auto m = DimMapping::Create(1, {{0, 10}});
  ASSERT_OK(m.status());
  const Box domain{{1}, {100}};
  const Box pre = m->PreimageBox({{15}, {20}}, domain);
  EXPECT_EQ(pre.lo[0], 5);
  EXPECT_EQ(pre.hi[0], 10);
}

TEST(DimMappingTest, PreimageBoxClipsToDomain) {
  const DimMapping m = DimMapping::Identity(1);
  const Box domain{{1}, {10}};
  const Box pre = m.PreimageBox({{-5}, {3}}, domain);
  EXPECT_EQ(pre.lo[0], 1);
  EXPECT_EQ(pre.hi[0], 3);
}

TEST(DimMappingTest, PreimageBoxUnconstrainedSourceDims) {
  // Only dim 1 is read; dim 0 stays the full domain.
  auto m = DimMapping::Create(2, {{1, 0}});
  ASSERT_OK(m.status());
  const Box domain{{1, 1}, {50, 60}};
  const Box pre = m->PreimageBox({{10}, {20}}, domain);
  EXPECT_EQ(pre.lo, (CellCoord{1, 10}));
  EXPECT_EQ(pre.hi, (CellCoord{50, 20}));
}

TEST(DimMappingTest, PreimageBoxCanBeEmpty) {
  const DimMapping m = DimMapping::Identity(1);
  const Box domain{{1}, {10}};
  const Box pre = m.PreimageBox({{20}, {30}}, domain);
  EXPECT_GT(pre.lo[0], pre.hi[0]);
}

TEST(DimMappingTest, PreimageRoundTripContainsOriginal) {
  auto m = DimMapping::Create(2, {{0, 3}, {1, -2}});
  ASSERT_OK(m.status());
  const Box domain{{1, 1}, {100, 100}};
  const Box original{{10, 10}, {20, 20}};
  const Box pre = m->PreimageBox(m->ApplyBox(original), domain);
  EXPECT_TRUE(pre.Contains(original.lo));
  EXPECT_TRUE(pre.Contains(original.hi));
}

}  // namespace
}  // namespace avm
