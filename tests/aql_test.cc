#include <gtest/gtest.h>

#include "aql/lexer.h"
#include "aql/parser.h"
#include "aql/session.h"
#include "tests/test_util.h"

namespace avm::aql {
namespace {

TEST(AqlLexerTest, TokenizesIdentifiersNumbersSymbols) {
  auto tokens = Tokenize("CREATE ARRAY A <r:int> [i=1,6,2]");
  ASSERT_OK(tokens.status());
  ASSERT_GE(tokens->size(), 5u);
  EXPECT_TRUE((*tokens)[0].Is("CREATE"));
  EXPECT_TRUE((*tokens)[0].Is("create"));  // case-insensitive
  EXPECT_TRUE((*tokens)[1].Is("ARRAY"));
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(AqlLexerTest, NegativeAndFractionalNumbers) {
  auto tokens = Tokenize("WINDOW(time, -199, 0) L2(1.5)");
  ASSERT_OK(tokens.status());
  bool saw_negative = false, saw_fraction = false;
  for (const auto& t : *tokens) {
    if (t.kind == TokenKind::kNumber && t.number == -199) {
      saw_negative = true;
      EXPECT_TRUE(t.is_integer);
    }
    if (t.kind == TokenKind::kNumber && t.number == 1.5) {
      saw_fraction = true;
      EXPECT_FALSE(t.is_integer);
    }
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_fraction);
}

TEST(AqlLexerTest, SqlCommentsSkipped) {
  auto tokens = Tokenize("CREATE -- a comment\nARRAY");
  ASSERT_OK(tokens.status());
  ASSERT_EQ(tokens->size(), 3u);  // CREATE, ARRAY, <end>
}

TEST(AqlLexerTest, RejectsStrayCharacters) {
  EXPECT_TRUE(Tokenize("CREATE @").status().IsInvalidArgument());
}

TEST(AqlParserTest, ParsesCreateArray) {
  auto parsed = ParseStatement(
      "CREATE ARRAY A <r:int, s:double, t> [i = 1, 6, 2; j = 1, 8, 2];");
  ASSERT_OK(parsed.status());
  const auto& stmt = std::get<CreateArrayStatement>(*parsed);
  EXPECT_EQ(stmt.name, "A");
  ASSERT_EQ(stmt.attrs.size(), 3u);
  EXPECT_EQ(stmt.attrs[0].type, AttributeType::kInt64);
  EXPECT_EQ(stmt.attrs[1].type, AttributeType::kDouble);
  EXPECT_EQ(stmt.attrs[2].type, AttributeType::kDouble);
  ASSERT_EQ(stmt.dims.size(), 2u);
  EXPECT_EQ(stmt.dims[1].name, "j");
  EXPECT_EQ(stmt.dims[1].hi, 8);
  EXPECT_EQ(stmt.dims[1].chunk_extent, 2);
}

TEST(AqlParserTest, ParsesThePaperViewStatement) {
  auto parsed = ParseStatement(
      "CREATE ARRAY VIEW V AS SELECT COUNT(*) AS cnt "
      "FROM A A1 SIMILARITY JOIN A A2 "
      "ON (A1.i = A2.i) AND (A1.j = A2.j) "
      "WITH SHAPE L1(1) GROUP BY A1.i, A1.j");
  ASSERT_OK(parsed.status());
  const auto& stmt = std::get<CreateViewStatement>(*parsed);
  EXPECT_EQ(stmt.name, "V");
  ASSERT_EQ(stmt.aggs.size(), 1u);
  EXPECT_EQ(stmt.aggs[0].fn, AggregateFunction::kCount);
  EXPECT_EQ(stmt.aggs[0].alias, "cnt");
  EXPECT_EQ(stmt.left_array, "A");
  EXPECT_EQ(stmt.left_alias, "A1");
  EXPECT_EQ(stmt.right_alias, "A2");
  ASSERT_EQ(stmt.on_pairs.size(), 2u);
  EXPECT_EQ(stmt.on_pairs[0].first, "i");
  EXPECT_EQ(stmt.on_pairs[1].second, "j");
  ASSERT_NE(stmt.shape, nullptr);
  EXPECT_EQ(stmt.shape->kind, ShapeExpr::Kind::kBall);
  EXPECT_EQ(stmt.shape->norm, Shape::Norm::kL1);
  EXPECT_EQ(stmt.shape->radius, 1.0);
  EXPECT_EQ(stmt.group_by, (std::vector<std::string>{"i", "j"}));
}

TEST(AqlParserTest, ParsesShapeProductsAndWindows) {
  auto parsed = ParseStatement(
      "CREATE ARRAY VIEW PTF5 AS SELECT COUNT(*) "
      "FROM PTF SIMILARITY JOIN PTF "
      "WITH SHAPE L1(1, DIMS(ra, dec)) * WINDOW(time, -199, 0)");
  ASSERT_OK(parsed.status());
  const auto& stmt = std::get<CreateViewStatement>(*parsed);
  ASSERT_EQ(stmt.shape->kind, ShapeExpr::Kind::kProduct);
  EXPECT_EQ(stmt.shape->lhs->kind, ShapeExpr::Kind::kBall);
  EXPECT_EQ(stmt.shape->lhs->dims,
            (std::vector<std::string>{"ra", "dec"}));
  EXPECT_EQ(stmt.shape->rhs->kind, ShapeExpr::Kind::kWindow);
  EXPECT_EQ(stmt.shape->rhs->window_lo, -199);
  EXPECT_EQ(stmt.shape->rhs->window_hi, 0);
}

TEST(AqlParserTest, ParsesMultipleAggregates) {
  auto parsed = ParseStatement(
      "CREATE ARRAY VIEW V AS SELECT COUNT(*), SUM(bright) AS total, "
      "AVG(mag) FROM A SIMILARITY JOIN A WITH SHAPE LINF(2)");
  ASSERT_OK(parsed.status());
  const auto& stmt = std::get<CreateViewStatement>(*parsed);
  ASSERT_EQ(stmt.aggs.size(), 3u);
  EXPECT_EQ(stmt.aggs[1].fn, AggregateFunction::kSum);
  EXPECT_EQ(stmt.aggs[1].attr, "bright");
  EXPECT_EQ(stmt.aggs[1].alias, "total");
  EXPECT_EQ(stmt.aggs[2].fn, AggregateFunction::kAvg);
}

TEST(AqlParserTest, ErrorsCarryOffsets) {
  auto parsed = ParseStatement("CREATE TABLE A");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("offset"), std::string::npos);
  EXPECT_TRUE(ParseStatement("CREATE ARRAY A <r:int>").status()
                  .IsInvalidArgument());  // missing dimensions
  EXPECT_TRUE(ParseStatement(
                  "CREATE ARRAY VIEW V AS SELECT COUNT(*) FROM A "
                  "SIMILARITY JOIN A WITH SHAPE L7(1)")
                  .status()
                  .IsInvalidArgument());
}

class AqlSessionTest : public ::testing::Test {
 protected:
  AqlSessionTest() : cluster_(3), session_(&catalog_, &cluster_) {}

  Catalog catalog_;
  Cluster cluster_;
  AqlSession session_;
};

TEST_F(AqlSessionTest, CreateArrayRegisters) {
  ASSERT_OK_AND_ASSIGN(
      std::string summary,
      session_.Execute("CREATE ARRAY A <r:int, s:int> [i=1,6,2; j=1,8,2]"));
  EXPECT_NE(summary.find("created array A"), std::string::npos);
  ASSERT_NE(session_.GetArray("A"), nullptr);
  EXPECT_OK(catalog_.ArrayIdByName("A").status());
}

TEST_F(AqlSessionTest, EndToEndPaperExample) {
  ASSERT_OK(session_
                .Execute("CREATE ARRAY A <r:int, s:int> "
                         "[i=1,6,2; j=1,8,2]")
                .status());
  // Load Figure 1(a)'s six cells.
  SparseArray initial(session_.GetArray("A")->schema());
  const int64_t cells[6][2] = {{1, 2}, {1, 3}, {2, 8},
                               {4, 4}, {5, 1}, {6, 2}};
  for (const auto& c : cells) {
    ASSERT_OK(initial.Set({c[0], c[1]}, std::vector<double>{1.0, 1.0}));
  }
  ASSERT_OK(session_.InsertCells("A", initial).status());

  ASSERT_OK_AND_ASSIGN(
      std::string summary,
      session_.Execute(
          "CREATE ARRAY VIEW V AS SELECT COUNT(*) AS cnt "
          "FROM A A1 SIMILARITY JOIN A A2 "
          "ON (A1.i = A2.i) AND (A1.j = A2.j) "
          "WITH SHAPE L1(1) GROUP BY A1.i, A1.j"));
  EXPECT_NE(summary.find("materialized view V"), std::string::npos);
  MaterializedView* view = session_.GetView("V");
  ASSERT_NE(view, nullptr);
  ASSERT_OK_AND_ASSIGN(SparseArray finalized, view->GatherFinalized());
  EXPECT_EQ((*finalized.Get({1, 2}))[0], 2.0);  // the Figure 1(a) values
  EXPECT_EQ((*finalized.Get({4, 4}))[0], 1.0);

  // Inserts flow through incremental maintenance.
  SparseArray batch(session_.GetArray("A")->schema());
  ASSERT_OK(batch.Set({1, 5}, std::vector<double>{5.0, 6.0}));
  ASSERT_OK(batch.Set({2, 3}, std::vector<double>{4.0, 9.0}));
  ASSERT_OK_AND_ASSIGN(auto reports, session_.InsertCells("A", batch));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(*view));
}

TEST_F(AqlSessionTest, WindowedShapeResolves) {
  ASSERT_OK(session_
                .Execute("CREATE ARRAY PTF <bright, mag> "
                         "[time=1,200,50; ra=1,100,20; dec=1,100,20]")
                .status());
  ASSERT_OK(session_
                .Execute("CREATE ARRAY VIEW PTF5 AS SELECT COUNT(*) "
                         "FROM PTF SIMILARITY JOIN PTF "
                         "WITH SHAPE L1(1, DIMS(ra, dec)) * "
                         "WINDOW(time, -199, 0)")
                .status());
  MaterializedView* view = session_.GetView("PTF5");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->definition().shape.size(), 5u * 200u);
  EXPECT_FALSE(view->definition().shape.IsSymmetric());
}

TEST_F(AqlSessionTest, RejectsUnknownNames) {
  EXPECT_TRUE(session_
                  .Execute("CREATE ARRAY VIEW V AS SELECT COUNT(*) FROM "
                           "missing SIMILARITY JOIN missing WITH SHAPE L1(1)")
                  .status()
                  .IsNotFound());
  ASSERT_OK(session_
                .Execute("CREATE ARRAY A <r> [i=1,10,5]")
                .status());
  EXPECT_TRUE(session_
                  .Execute("CREATE ARRAY VIEW V AS SELECT SUM(zzz) FROM A "
                           "SIMILARITY JOIN A WITH SHAPE L1(1)")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(session_
                  .Execute("CREATE ARRAY VIEW V AS SELECT COUNT(*) FROM A "
                           "SIMILARITY JOIN A WITH SHAPE "
                           "WINDOW(nodim, 0, 1)")
                  .status()
                  .IsNotFound());
}

TEST_F(AqlSessionTest, RejectsIncompleteOnClause) {
  ASSERT_OK(session_.Execute("CREATE ARRAY A <r> [i=1,10,5; j=1,10,5]")
                .status());
  EXPECT_TRUE(session_
                  .Execute("CREATE ARRAY VIEW V AS SELECT COUNT(*) FROM A "
                           "A1 SIMILARITY JOIN A A2 ON (A1.i = A2.i) "
                           "WITH SHAPE L1(1)")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AqlSessionTest, OneViewPerBaseArray) {
  ASSERT_OK(session_.Execute("CREATE ARRAY A <r> [i=1,10,5]").status());
  ASSERT_OK(session_
                .Execute("CREATE ARRAY VIEW V1 AS SELECT COUNT(*) FROM A "
                         "SIMILARITY JOIN A WITH SHAPE L1(1)")
                .status());
  EXPECT_TRUE(session_
                  .Execute("CREATE ARRAY VIEW V2 AS SELECT COUNT(*) FROM A "
                           "SIMILARITY JOIN A WITH SHAPE LINF(1)")
                  .status()
                  .IsUnimplemented());
}

TEST_F(AqlSessionTest, InsertWithoutViewIngestsPlainly) {
  ASSERT_OK(session_.Execute("CREATE ARRAY A <r> [i=1,10,5]").status());
  SparseArray cells(session_.GetArray("A")->schema());
  ASSERT_OK(cells.Set({3}, std::vector<double>{1.0}));
  ASSERT_OK_AND_ASSIGN(auto reports, session_.InsertCells("A", cells));
  EXPECT_TRUE(reports.empty());
  EXPECT_EQ(session_.GetArray("A")->NumCells(), 1u);
  EXPECT_TRUE(
      session_.InsertCells("missing", cells).status().IsNotFound());
}

}  // namespace
}  // namespace avm::aql
