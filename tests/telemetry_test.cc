#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "harness/experiment.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "tests/json_util.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::JsonValue;
using testing_util::ParseJson;

/// NOTE on ordering: the disabled-mode test must run before anything enables
/// telemetry in this process (shards and trace buffers, once allocated, stay
/// registered forever by design). It is declared first; under ctest every
/// test runs in its own process anyway.
TEST(TelemetryTest, DisabledModeRecordsAndAllocatesNothing) {
  ASSERT_FALSE(TelemetryEnabled());
  CountAdd(CounterId::kJoinProbes, 17);
  GaugeAdd(GaugeId::kPoolQueueDepth, 3);
  GaugeSet(GaugeId::kStoreResidentBytes, 99);
  HistogramRecord(HistogramId::kPoolTaskSeconds, 0.25);
  {
    ScopedSpan span("telemetry.test.disabled", "test");
    span.AddArg("k", 1);
  }
  EXPECT_EQ(MetricsRegistry::Global().NumShardsForTesting(), 0u);
  EXPECT_EQ(TraceCollector::Global().NumBuffersForTesting(), 0u);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter(CounterId::kJoinProbes), 0u);
  EXPECT_EQ(snapshot.gauge(GaugeId::kPoolQueueDepth), 0);
  EXPECT_EQ(snapshot.gauge(GaugeId::kStoreResidentBytes), 0);
  EXPECT_EQ(snapshot.histogram_total(HistogramId::kPoolTaskSeconds), 0u);
  EXPECT_TRUE(TraceCollector::Global().Collect().empty());

  // A span alive across EnableTelemetry stays inert: enabling must not
  // retroactively produce a half-open event.
  {
    ScopedSpan span("telemetry.test.straddle", "test");
    EnableTelemetry();
  }
  EXPECT_TRUE(TraceCollector::Global().Collect().empty());
  DisableTelemetry();
}

TEST(TelemetryTest, CountersMergeExactlyAcrossThreads) {
  EnableTelemetry();
  MetricsRegistry::Global().ResetForTesting();

  constexpr size_t kItems = 10000;
  uint64_t expected = 0;
  for (size_t i = 0; i < kItems; ++i) expected += i % 7 + 1;

  ThreadPool pool(8);
  pool.ParallelFor(kItems, [](size_t i) {
    CountAdd(CounterId::kJoinProbes, i % 7 + 1);
    CountAdd(CounterId::kJoinScannedCells);
  });

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter(CounterId::kJoinProbes), expected);
  EXPECT_EQ(snapshot.counter(CounterId::kJoinScannedCells), kItems);
  // One shard per recording thread, at most (pool threads may or may not all
  // have claimed work; the caller drains too).
  EXPECT_GE(MetricsRegistry::Global().NumShardsForTesting(), 1u);
  EXPECT_LE(MetricsRegistry::Global().NumShardsForTesting(), 8u);
  DisableTelemetry();
}

TEST(TelemetryTest, GaugesHistogramsAndSnapshotDeltas) {
  EnableTelemetry();
  MetricsRegistry::Global().ResetForTesting();

  GaugeAdd(GaugeId::kPoolQueueDepth, 5);
  GaugeAdd(GaugeId::kPoolQueueDepth, -2);
  GaugeSet(GaugeId::kStoreResidentChunks, 42);
  HistogramRecord(HistogramId::kPoolTaskSeconds, 1e-10);  // sub-ns bucket
  HistogramRecord(HistogramId::kPoolTaskSeconds, 1e-3);
  HistogramRecord(HistogramId::kPoolTaskSeconds, 3600.0);  // overflow bucket
  CountAdd(CounterId::kPoolTasksRun, 3);

  const MetricsSnapshot base = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(base.gauge(GaugeId::kPoolQueueDepth), 3);
  EXPECT_EQ(base.gauge(GaugeId::kStoreResidentChunks), 42);
  EXPECT_EQ(base.histogram_total(HistogramId::kPoolTaskSeconds), 3u);

  // Bucket upper bounds are positive and strictly increasing.
  for (size_t b = 1; b < kNumHistogramBuckets; ++b) {
    EXPECT_GT(HistogramBucketUpperSeconds(b),
              HistogramBucketUpperSeconds(b - 1));
  }

  HistogramRecord(HistogramId::kPoolTaskSeconds, 2e-3);
  CountAdd(CounterId::kPoolTasksRun, 2);
  GaugeAdd(GaugeId::kPoolQueueDepth, 4);

  const MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DeltaSince(base);
  // Counters and histograms are windowed; gauges stay instantaneous.
  EXPECT_EQ(delta.counter(CounterId::kPoolTasksRun), 2u);
  EXPECT_EQ(delta.histogram_total(HistogramId::kPoolTaskSeconds), 1u);
  EXPECT_EQ(delta.gauge(GaugeId::kPoolQueueDepth), 7);
  DisableTelemetry();
}

TEST(TelemetryTest, MetricsJsonIsValidAndComplete) {
  EnableTelemetry();
  MetricsRegistry::Global().ResetForTesting();
  CountAdd(CounterId::kPlanStage1Candidates, 7);
  CountAdd(CounterId::kShapeCacheHits, 2);
  GaugeSet(GaugeId::kStoreResidentBytes, 1024);
  HistogramRecord(HistogramId::kBatchApplySeconds, 0.5);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  DisableTelemetry();

  const std::string json = MetricsJson(snapshot);
  const auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  // Every counter id serializes under its dotted name, including zeros.
  EXPECT_EQ(counters->object.size(), kNumCounters);
  const JsonValue* stage1 = counters->Find("plan.stage1.candidates");
  ASSERT_NE(stage1, nullptr);
  EXPECT_EQ(stage1->number, 7.0);
  const JsonValue* hits = counters->Find("shape_cache.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->number, 2.0);

  const JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->object.size(), kNumGauges);
  const JsonValue* resident = gauges->Find("store.resident_bytes");
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(resident->number, 1024.0);

  const JsonValue* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  EXPECT_EQ(histograms->object.size(), kNumHistograms);
  const JsonValue* batch_hist = histograms->Find("maint.batch_apply_seconds");
  ASSERT_NE(batch_hist, nullptr);
  const JsonValue* total = batch_hist->Find("total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->number, 1.0);
  const JsonValue* buckets = batch_hist->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  // Sparse export: one populated bucket, as an [upper_seconds, count] pair
  // bracketing the recorded 0.5 s sample.
  ASSERT_EQ(buckets->array.size(), 1u);
  ASSERT_EQ(buckets->array[0].array.size(), 2u);
  EXPECT_GE(buckets->array[0].array[0].number, 0.5);
  EXPECT_EQ(buckets->array[0].array[1].number, 1.0);
}

TEST(TraceTest, SpanNestingYieldsContainedEventsOnOneTimeline) {
  EnableTelemetry();
  TraceCollector::Global().ResetForTesting();
  {
    ScopedSpan outer("telemetry.test.outer", "test");
    outer.AddArg("level", 0);
    {
      ScopedSpan inner("telemetry.test.inner", "test");
      inner.AddArg("level", 1);
      ScopedSpan innermost("telemetry.test.innermost", "test");
      innermost.AddArg("level", 2);
    }
  }
  DisableTelemetry();

  const std::vector<TraceEvent> events = TraceCollector::Global().Collect();
  ASSERT_EQ(events.size(), 3u);
  auto find = [&](const char* name) -> const TraceEvent* {
    for (const TraceEvent& e : events) {
      if (std::strcmp(e.name, name) == 0) return &e;
    }
    return nullptr;
  };
  const TraceEvent* outer = find("telemetry.test.outer");
  const TraceEvent* inner = find("telemetry.test.inner");
  const TraceEvent* innermost = find("telemetry.test.innermost");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(innermost, nullptr);
  // All on the calling thread's timeline, properly nested in time.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_EQ(inner->tid, innermost->tid);
  EXPECT_GT(outer->tid, 0);
  EXPECT_LE(outer->ts_ns, inner->ts_ns);
  EXPECT_GE(outer->ts_ns + outer->dur_ns, inner->ts_ns + inner->dur_ns);
  EXPECT_LE(inner->ts_ns, innermost->ts_ns);
  EXPECT_GE(inner->ts_ns + inner->dur_ns,
            innermost->ts_ns + innermost->dur_ns);
  ASSERT_EQ(inner->num_args, 1u);
  EXPECT_STREQ(inner->args[0].key, "level");
  EXPECT_EQ(inner->args[0].value, 1);
}

TEST(TraceTest, ChromeTraceJsonIsValidIncludingEscapes) {
  EnableTelemetry();
  TraceCollector::Global().ResetForTesting();
  {
    ScopedSpan span("telemetry.test.json", "test");
    span.AddArg("bytes", 12345);
  }
  // Adversarial strings: the exporter must escape quotes, backslashes, and
  // control characters (literals with static storage, per the span rules).
  static const char kWeirdName[] = "we\"ird\\name\ttab\nline";
  TraceEvent weird;
  weird.name = kWeirdName;
  weird.cat = "test";
  weird.ts_ns = 1500;
  weird.dur_ns = 2500;
  weird.tid = kSimTidBase + 7;
  TraceCollector::Global().Emit(weird);
  DisableTelemetry();

  const std::string json = ChromeTraceJson();
  const auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const JsonValue* unit = parsed->Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  bool saw_span = false;
  bool saw_weird = false;
  for (const JsonValue& event : events->array) {
    ASSERT_TRUE(event.is_object());
    for (const char* key : {"name", "cat", "ph", "pid", "tid", "ts", "dur"}) {
      ASSERT_NE(event.Find(key), nullptr) << "missing " << key;
    }
    EXPECT_EQ(event.Find("ph")->string, "X");
    EXPECT_EQ(event.Find("pid")->number, 1.0);
    if (event.Find("name")->string == "telemetry.test.json") {
      saw_span = true;
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->Find("bytes"), nullptr);
      EXPECT_EQ(args->Find("bytes")->number, 12345.0);
    }
    if (event.Find("name")->string == kWeirdName) {
      saw_weird = true;
      // ts/dur are microseconds in Chrome trace format.
      EXPECT_DOUBLE_EQ(event.Find("ts")->number, 1.5);
      EXPECT_DOUBLE_EQ(event.Find("dur")->number, 2.5);
      EXPECT_EQ(event.Find("tid")->number,
                static_cast<double>(kSimTidBase + 7));
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_weird);
}

TEST(TraceTest, RingOverwriteKeepsNewestAndCountsDrops) {
  EnableTelemetry();
  TraceCollector::Global().ResetForTesting();
  MetricsRegistry::Global().ResetForTesting();

  constexpr size_t kExtra = 123;
  for (size_t i = 0; i < kTraceBufferCapacity + kExtra; ++i) {
    TraceEvent e;
    e.name = "telemetry.test.flood";
    e.cat = "test";
    e.ts_ns = static_cast<int64_t>(i);
    e.dur_ns = 1;
    TraceCollector::Global().Emit(e);
  }
  const std::vector<TraceEvent> events = TraceCollector::Global().Collect();
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  DisableTelemetry();

  ASSERT_EQ(events.size(), kTraceBufferCapacity);
  EXPECT_EQ(snapshot.counter(CounterId::kTraceEventsDropped), kExtra);
  // The survivors are exactly the newest events.
  int64_t min_ts = events[0].ts_ns;
  for (const TraceEvent& e : events) min_ts = std::min(min_ts, e.ts_ns);
  EXPECT_EQ(min_ts, static_cast<int64_t>(kExtra));
}

/// End-to-end acceptance check: run real maintenance with telemetry on and
/// reconcile the simulated-clock trace spans against (a) the executor's
/// per-node activity report, (b) the registry counters, and (c) the
/// cluster's own byte clocks — all exact integer equalities.
TEST(TelemetryEndToEndTest, MaintenanceTraceMatchesSimulatedClocks) {
  ExperimentScale scale;
  scale.num_workers = 4;
  scale.num_threads = 2;  // exercise the parallel executor under telemetry
  scale.num_batches = 3;
  scale.geo.seed_pois = 500;
  scale.geo.batch_frac = 0.02;

  EnableTelemetry();
  TraceCollector::Global().ResetForTesting();
  MetricsRegistry::Global().ResetForTesting();

  ASSERT_OK_AND_ASSIGN(
      PreparedExperiment experiment,
      PrepareExperiment(DatasetKind::kGeo, BatchRegime::kRandom, scale));
  ASSERT_OK_AND_ASSIGN(
      BatchSeries series,
      RunMaintenanceSeries(&experiment, MaintenanceMethod::kReassign,
                           PlannerOptions()));
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const std::vector<TraceEvent> events = TraceCollector::Global().Collect();
  DisableTelemetry();

  ASSERT_EQ(series.reports.size(), 3u);
  const size_t num_nodes = static_cast<size_t>(scale.num_workers) + 1;

  // Executor-window per-node byte totals from the reports.
  std::vector<uint64_t> exec_ntwk(num_nodes, 0), exec_cpu(num_nodes, 0);
  uint64_t batch_ntwk_total = 0;
  for (const MaintenanceReport& report : series.reports) {
    EXPECT_TRUE(report.telemetry_collected);
    EXPECT_GT(report.plan_candidates, 0u);
    EXPECT_GT(report.plan_accepts, 0u);
    ASSERT_EQ(report.exec.per_node.size(), num_nodes);
    ASSERT_EQ(report.per_node.size(), num_nodes);
    for (size_t i = 0; i < num_nodes; ++i) {
      exec_ntwk[i] += report.exec.per_node[i].ntwk_bytes;
      exec_cpu[i] += report.exec.per_node[i].cpu_bytes;
      // The executor window is contained in the whole-batch window.
      EXPECT_LE(report.exec.per_node[i].ntwk_bytes,
                report.per_node[i].ntwk_bytes);
      EXPECT_LE(report.exec.per_node[i].cpu_bytes,
                report.per_node[i].cpu_bytes);
    }
    batch_ntwk_total += report.bytes_transferred;
  }

  // (a) Per-node sim.ntwk / sim.cpu span bytes match the reports exactly.
  std::vector<uint64_t> span_ntwk(num_nodes, 0), span_cpu(num_nodes, 0);
  size_t batch_spans = 0;
  for (const TraceEvent& e : events) {
    if (std::strcmp(e.name, "maint.batch") == 0) ++batch_spans;
    const bool is_ntwk = std::strcmp(e.name, "sim.ntwk") == 0;
    const bool is_cpu = std::strcmp(e.name, "sim.cpu") == 0;
    if (!is_ntwk && !is_cpu) continue;
    EXPECT_STREQ(e.cat, "sim");
    ASSERT_GE(e.tid, kSimTidBase);
    const size_t node = static_cast<size_t>(e.tid - kSimTidBase) / 2;
    ASSERT_LT(node, num_nodes);
    ASSERT_EQ(e.num_args, 2u);
    EXPECT_STREQ(e.args[0].key, "node");
    ASSERT_STREQ(e.args[1].key, "bytes");
    (is_ntwk ? span_ntwk : span_cpu)[node] +=
        static_cast<uint64_t>(e.args[1].value);
  }
  EXPECT_EQ(batch_spans, series.reports.size());
  uint64_t sim_ntwk_total = 0, sim_cpu_total = 0;
  for (size_t i = 0; i < num_nodes; ++i) {
    EXPECT_EQ(span_ntwk[i], exec_ntwk[i]) << "node " << i;
    EXPECT_EQ(span_cpu[i], exec_cpu[i]) << "node " << i;
    sim_ntwk_total += span_ntwk[i];
    sim_cpu_total += span_cpu[i];
  }
  EXPECT_GT(sim_ntwk_total + sim_cpu_total, 0u);
  // The coordinator never joins.
  EXPECT_EQ(span_cpu[num_nodes - 1], 0u);

  // (b) Registry counters carry the same totals.
  EXPECT_EQ(snapshot.counter(CounterId::kExecBytesTransferred),
            sim_ntwk_total);
  EXPECT_EQ(snapshot.counter(CounterId::kExecBytesJoined), sim_cpu_total);
  EXPECT_EQ(snapshot.counter(CounterId::kBatchesMaintained),
            series.reports.size());
  EXPECT_GT(snapshot.counter(CounterId::kPoolTasksRun), 0u);
  EXPECT_EQ(snapshot.histogram_total(HistogramId::kBatchApplySeconds),
            series.reports.size());

  // (c) The cluster's own byte clocks (reset at prepare time) account for
  // every batch-window byte, and the batch windows cover the sim spans.
  const Cluster& cluster = *experiment.cluster;
  uint64_t clock_ntwk_total = cluster.clock(kCoordinatorNode).ntwk_bytes;
  for (NodeId n = 0; n < scale.num_workers; ++n) {
    clock_ntwk_total += cluster.clock(n).ntwk_bytes;
  }
  EXPECT_EQ(clock_ntwk_total, batch_ntwk_total);
  EXPECT_GE(batch_ntwk_total, sim_ntwk_total);

  // And the whole collected trace exports as valid Chrome JSON.
  const auto parsed = ParseJson(ChromeTraceJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_GE(parsed->Find("traceEvents")->array.size(), events.size());
}

}  // namespace
}  // namespace avm
