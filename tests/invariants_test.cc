#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "array/chunk.h"
#include "array/chunk_grid.h"
#include "array/sparse_array.h"
#include "common/check.h"
#include "maintenance/baseline_planner.h"
#include "maintenance/executor.h"
#include "maintenance/makespan_tracker.h"
#include "maintenance/plan_validator.h"
#include "maintenance/triple_gen.h"
#include "shape/shape.h"
#include "tests/test_util.h"

namespace avm {

/// Befriended by Chunk: lets the contract tests corrupt internal state
/// deliberately to prove CheckInvariants catches each class of damage.
struct ChunkTestPeer {
  static std::vector<uint64_t>& offsets(Chunk& c) { return c.offsets_; }
  static std::vector<int64_t>& coords(Chunk& c) { return c.coords_; }
  static std::vector<double>& values(Chunk& c) { return c.values_; }
  static std::vector<uint64_t>& bitmap(Chunk& c) { return c.bitmap_; }
  static std::vector<double>& lanes(Chunk& c) { return c.lanes_; }
  static std::vector<int64_t>& dense_origin(Chunk& c) {
    return c.dense_origin_;
  }
  static size_t& dense_cells(Chunk& c) { return c.dense_cells_; }
};

namespace {

using testing_util::Make2DSchema;
using testing_util::MakeCountViewFixture;

/// A populated chunk on a known grid, with its ChunkId.
struct ChunkOnGrid {
  ChunkGrid grid;
  Chunk chunk{2, 1};
  ChunkId id = 0;
};

ChunkOnGrid MakePopulatedChunk() {
  ChunkOnGrid out;
  out.grid = ChunkGrid(Make2DSchema("inv"));
  const CellCoord cells[] = {{2, 3}, {5, 1}, {7, 6}, {1, 2}};
  out.id = out.grid.IdOfCell(cells[0]);
  for (const CellCoord& coord : cells) {
    const auto slot = out.grid.SlotOfCell(coord);
    AVM_CHECK_EQ(slot.id, out.id);
    out.chunk.UpsertCell(slot.offset, coord, std::vector<double>{1.0});
  }
  return out;
}

TEST(ChunkInvariantsTest, HealthyChunkPasses) {
  ScopedThrowingCheckHandler guard;
  ChunkOnGrid t = MakePopulatedChunk();
  t.chunk.CheckInvariants();
  t.chunk.CheckInvariants(&t.grid, t.id);
}

TEST(ChunkInvariantsTest, CorruptedOffsetIsCaught) {
  ScopedThrowingCheckHandler guard;
  ChunkOnGrid t = MakePopulatedChunk();
  // Point row 0 at an offset the index does not map to it.
  ChunkTestPeer::offsets(t.chunk)[0] += 1;
  EXPECT_THROW(t.chunk.CheckInvariants(), CheckFailedError);
}

TEST(ChunkInvariantsTest, TruncatedCoordBufferIsCaught) {
  ScopedThrowingCheckHandler guard;
  ChunkOnGrid t = MakePopulatedChunk();
  ChunkTestPeer::coords(t.chunk).pop_back();
  EXPECT_THROW(t.chunk.CheckInvariants(), CheckFailedError);
}

TEST(ChunkInvariantsTest, OversizedValueBufferIsCaught) {
  ScopedThrowingCheckHandler guard;
  ChunkOnGrid t = MakePopulatedChunk();
  ChunkTestPeer::values(t.chunk).push_back(99.0);
  EXPECT_THROW(t.chunk.CheckInvariants(), CheckFailedError);
}

TEST(ChunkInvariantsTest, CellOutsideChunkBoxIsCaught) {
  ScopedThrowingCheckHandler guard;
  ChunkOnGrid t = MakePopulatedChunk();
  // Structurally intact, geometrically wrong: the coordinate now lies in a
  // different chunk, so only the grid-aware check can see the damage.
  ChunkTestPeer::coords(t.chunk)[0] += 100;
  t.chunk.CheckInvariants();
  EXPECT_THROW(t.chunk.CheckInvariants(&t.grid, t.id), CheckFailedError);
}

/// The populated chunk converted to the dense representation.
ChunkOnGrid MakePopulatedDenseChunk() {
  ChunkOnGrid t = MakePopulatedChunk();
  t.chunk.Densify(t.grid, t.id);
  AVM_CHECK(t.chunk.rep() == ChunkRep::kDense);
  return t;
}

TEST(ChunkInvariantsTest, HealthyDenseChunkPasses) {
  ScopedThrowingCheckHandler guard;
  ChunkOnGrid t = MakePopulatedDenseChunk();
  t.chunk.CheckInvariants();
  t.chunk.CheckInvariants(&t.grid, t.id);
}

TEST(ChunkInvariantsTest, DensePopulationDriftIsCaught) {
  ScopedThrowingCheckHandler guard;
  ChunkOnGrid t = MakePopulatedDenseChunk();
  // Stored cell count no longer matches the bitmap population.
  ChunkTestPeer::dense_cells(t.chunk) += 1;
  EXPECT_THROW(t.chunk.CheckInvariants(), CheckFailedError);
}

TEST(ChunkInvariantsTest, NonzeroVacantLaneIsCaught) {
  ScopedThrowingCheckHandler guard;
  ChunkOnGrid t = MakePopulatedDenseChunk();
  // Find a vacant slot and dirty its value lane: the branch-free kernel
  // would silently fold this phantom value, so the audit must catch it.
  const auto dv = t.chunk.dense_view();
  uint64_t vacant = dv.volume;
  for (uint64_t off = 0; off < dv.volume; ++off) {
    if (!((dv.bitmap[off >> 6] >> (off & 63)) & 1u)) {
      vacant = off;
      break;
    }
  }
  ASSERT_LT(vacant, dv.volume);
  ChunkTestPeer::lanes(t.chunk)[vacant] = 123.0;
  EXPECT_THROW(t.chunk.CheckInvariants(), CheckFailedError);
}

TEST(ChunkInvariantsTest, TrailingBitmapBitsAreCaught) {
  ScopedThrowingCheckHandler guard;
  ChunkOnGrid t = MakePopulatedDenseChunk();
  const auto dv = t.chunk.dense_view();
  ASSERT_NE(dv.volume % 64, 0u) << "test needs a partial trailing word";
  ChunkTestPeer::bitmap(t.chunk).back() |= uint64_t{1} << 63;
  // Keep the population consistent so only the trailing-bit clause fires.
  ChunkTestPeer::dense_cells(t.chunk) += 1;
  EXPECT_THROW(t.chunk.CheckInvariants(), CheckFailedError);
}

TEST(ChunkInvariantsTest, DenseBoxDriftIsCaughtByTheGridAwareCheck) {
  ScopedThrowingCheckHandler guard;
  ChunkOnGrid t = MakePopulatedDenseChunk();
  ChunkTestPeer::dense_origin(t.chunk)[0] += 8;
  // Structurally self-consistent, geometrically wrong for this grid slot.
  t.chunk.CheckInvariants();
  EXPECT_THROW(t.chunk.CheckInvariants(&t.grid, t.id), CheckFailedError);
}

TEST(ChunkInvariantsTest, SparseArrayAuditCoversItsChunks) {
  ScopedThrowingCheckHandler guard;
  SparseArray array(Make2DSchema("inv"));
  Rng rng(99);
  testing_util::FillRandom(&array, 50, &rng);
  array.CheckInvariants();
}

TEST(MakespanTrackerInvariantsTest, NegativeChargeIsCaughtInDebug) {
  ScopedThrowingCheckHandler guard;
  MakespanTracker tracker(3);
  tracker.AddNetwork(0, 1.0);  // positive charges are always fine
  tracker.AddCpu(1, 2.0);
  if (kDebugChecksEnabled) {
    EXPECT_THROW(tracker.AddNetwork(0, -0.5), CheckFailedError);
    EXPECT_THROW(tracker.AddCpu(2, -1.0), CheckFailedError);
  }
  ConcurrentClockBank bank(3);
  bank.AddNetwork(0, 1.0);
  if (kDebugChecksEnabled) {
    EXPECT_THROW(bank.AddCpu(0, -1.0), CheckFailedError);
  }
}

/// A view fixture plus the triples and a valid baseline plan for one batch.
struct PlanFixture {
  testing_util::ViewFixture fixture;
  std::unique_ptr<DistributedArray> delta;
  TripleSet triples;
  MaintenancePlan plan;
  int num_workers = 3;

  const CostModel* cost() const { return &fixture.cluster->cost_model(); }
};

Result<PlanFixture> MakePlanFixture(uint64_t seed) {
  PlanFixture out;
  AVM_ASSIGN_OR_RETURN(
      out.fixture,
      MakeCountViewFixture(out.num_workers, 80, Shape::L1Ball(2, 1), seed));
  Rng rng(seed + 1);
  SparseArray cells =
      testing_util::RandomDisjointDelta(out.fixture.local_base, 30, &rng);
  ArraySchema schema("delta", cells.schema().dims(), cells.schema().attrs());
  AVM_ASSIGN_OR_RETURN(
      DistributedArray delta,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(),
                               out.fixture.catalog.get(),
                               out.fixture.cluster.get()));
  Status status = Status::OK();
  cells.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    if (!status.ok()) return;
    status = delta.PutChunk(id, chunk, kCoordinatorNode);
  });
  AVM_RETURN_IF_ERROR(status);
  out.delta = std::make_unique<DistributedArray>(std::move(delta));
  AVM_ASSIGN_OR_RETURN(
      out.triples,
      GenerateTriples(*out.fixture.view, out.delta.get(), nullptr));
  AVM_ASSIGN_OR_RETURN(
      out.plan,
      PlanBaseline(*out.fixture.view, out.triples, out.num_workers));
  return out;
}

TEST(PlanValidatorTest, HealthyTriplesAndPlanPass) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(700));
  ASSERT_FALSE(f.triples.pairs.empty());
  ScopedThrowingCheckHandler guard;
  ValidateTripleSet(f.triples, f.num_workers);
  ValidateMaintenancePlan(f.plan, f.triples, f.num_workers, f.cost());
}

TEST(PlanValidatorTest, PairWithoutDirectionIsCaught) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(701));
  ASSERT_FALSE(f.triples.pairs.empty());
  f.triples.pairs[0].dir_ab = false;
  f.triples.pairs[0].dir_ba = false;
  ScopedThrowingCheckHandler guard;
  EXPECT_THROW(ValidateTripleSet(f.triples, f.num_workers), CheckFailedError);
}

TEST(PlanValidatorTest, OperandWithoutLocationIsCaught) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(702));
  ASSERT_FALSE(f.triples.pairs.empty());
  f.triples.location.erase(f.triples.pairs[0].a);
  ScopedThrowingCheckHandler guard;
  EXPECT_THROW(ValidateTripleSet(f.triples, f.num_workers), CheckFailedError);
}

TEST(PlanValidatorTest, UnjoinedPairIsCaught) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(703));
  ASSERT_FALSE(f.plan.joins.empty());
  f.plan.joins.pop_back();
  ScopedThrowingCheckHandler guard;
  EXPECT_THROW(
      ValidateMaintenancePlan(f.plan, f.triples, f.num_workers, f.cost()),
      CheckFailedError);
}

TEST(PlanValidatorTest, DoublyJoinedPairIsCaught) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(704));
  ASSERT_FALSE(f.plan.joins.empty());
  f.plan.joins.push_back(f.plan.joins.front());
  ScopedThrowingCheckHandler guard;
  EXPECT_THROW(
      ValidateMaintenancePlan(f.plan, f.triples, f.num_workers, f.cost()),
      CheckFailedError);
}

TEST(PlanValidatorTest, MissingColocationTransferIsCaught) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(705));
  ASSERT_FALSE(f.plan.transfers.empty());
  f.plan.transfers.clear();
  ScopedThrowingCheckHandler guard;
  EXPECT_THROW(
      ValidateMaintenancePlan(f.plan, f.triples, f.num_workers, f.cost()),
      CheckFailedError);
}

TEST(PlanValidatorTest, TransferFromNodeWithoutCopyIsCaught) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(706));
  ASSERT_FALSE(f.plan.transfers.empty());
  // Delta chunks start at the coordinator; claiming a worker as the source
  // ships a copy that is not there.
  auto& t = f.plan.transfers.front();
  t.from = (t.to + 1) % f.num_workers;
  ScopedThrowingCheckHandler guard;
  EXPECT_THROW(
      ValidateMaintenancePlan(f.plan, f.triples, f.num_workers, f.cost()),
      CheckFailedError);
}

TEST(PlanValidatorTest, UnassignedViewChunkIsCaught) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(707));
  ASSERT_FALSE(f.plan.view_home.empty());
  f.plan.view_home.erase(f.plan.view_home.begin());
  ScopedThrowingCheckHandler guard;
  EXPECT_THROW(
      ValidateMaintenancePlan(f.plan, f.triples, f.num_workers, f.cost()),
      CheckFailedError);
}

TEST(PlanValidatorTest, StrayViewAssignmentIsCaught) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(708));
  f.plan.view_home[static_cast<ChunkId>(1u << 20)] = 0;
  ScopedThrowingCheckHandler guard;
  EXPECT_THROW(
      ValidateMaintenancePlan(f.plan, f.triples, f.num_workers, f.cost()),
      CheckFailedError);
}

TEST(PlanValidatorTest, DuplicateArrayMoveIsCaught) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(709));
  const MChunkRef some_chunk = f.triples.pairs[0].a;
  f.plan.array_moves.push_back({some_chunk, 0});
  f.plan.array_moves.push_back({some_chunk, 1});
  ScopedThrowingCheckHandler guard;
  EXPECT_THROW(
      ValidateMaintenancePlan(f.plan, f.triples, f.num_workers, f.cost()),
      CheckFailedError);
}

TEST(PlanValidatorTest, CatalogStoreConsistencyHoldsAndCatchesDrift) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(710));
  Catalog* catalog = f.fixture.catalog.get();
  Cluster* cluster = f.fixture.cluster.get();
  const ArrayId base_id = f.fixture.view->left_base().id();
  const std::vector<ArrayId> arrays = {base_id, f.fixture.view->array().id()};
  // The audit's no-stray-replica clause only holds after the executor's
  // cleanup step; run the batch to reach a steady state.
  ASSERT_OK(ExecuteMaintenancePlan(f.plan, f.triples, f.fixture.view.get(),
                                   f.delta.get(), nullptr)
                .status());
  ScopedThrowingCheckHandler guard;
  ValidateCatalogStoreConsistency(*catalog, *cluster, arrays);

  // Drift the registered size of one base chunk away from the stored bytes.
  const std::vector<ChunkId> ids = catalog->ChunkIdsOf(base_id);
  ASSERT_FALSE(ids.empty());
  const uint64_t bytes = catalog->ChunkBytes(base_id, ids[0]);
  catalog->SetChunkBytes(base_id, ids[0], bytes + 8);
  EXPECT_THROW(ValidateCatalogStoreConsistency(*catalog, *cluster, arrays),
               CheckFailedError);
  catalog->SetChunkBytes(base_id, ids[0], bytes);
  ValidateCatalogStoreConsistency(*catalog, *cluster, arrays);
}

TEST(PlanValidatorTest, UnregisteredReplicaIsCaught) {
  ASSERT_OK_AND_ASSIGN(PlanFixture f, MakePlanFixture(711));
  Catalog* catalog = f.fixture.catalog.get();
  Cluster* cluster = f.fixture.cluster.get();
  const ArrayId base_id = f.fixture.view->left_base().id();
  const std::vector<ArrayId> arrays = {base_id, f.fixture.view->array().id()};
  ASSERT_OK(ExecuteMaintenancePlan(f.plan, f.triples, f.fixture.view.get(),
                                   f.delta.get(), nullptr)
                .status());
  {
    ScopedThrowingCheckHandler guard;
    ValidateCatalogStoreConsistency(*catalog, *cluster, arrays);
  }
  const std::vector<ChunkId> ids = catalog->ChunkIdsOf(base_id);
  ASSERT_FALSE(ids.empty());
  ASSERT_OK_AND_ASSIGN(NodeId primary, catalog->NodeOf(base_id, ids[0]));
  const NodeId other = (primary + 1) % f.num_workers;
  const Chunk* chunk = cluster->store(primary).Get(base_id, ids[0]);
  ASSERT_NE(chunk, nullptr);
  cluster->store(other).Put(base_id, ids[0], Chunk(*chunk));
  ScopedThrowingCheckHandler guard;
  EXPECT_THROW(ValidateCatalogStoreConsistency(*catalog, *cluster, arrays),
               CheckFailedError);
}

}  // namespace
}  // namespace avm
