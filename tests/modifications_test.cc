#include "maintenance/modifications.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "maintenance/maintainer.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::MakeCountViewFixture;
using testing_util::RandomDisjointDelta;
using testing_util::ViewMatchesRecompute;

TEST(SplitTest, SeparatesInsertsFromOverwrites) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 0, Shape::L1Ball(2, 1), 400));
  SparseArray seed(fixture.local_base.schema());
  ASSERT_OK(seed.Set({5, 5}, std::vector<double>{1.0}));
  ASSERT_OK(fixture.view->left_base().Ingest(seed));

  SparseArray raw(fixture.local_base.schema());
  ASSERT_OK(raw.Set({5, 5}, std::vector<double>{9.0}));   // overwrite
  ASSERT_OK(raw.Set({5, 6}, std::vector<double>{2.0}));   // insert
  SparseArray ins(raw.schema()), mold(raw.schema()), mnew(raw.schema());
  ASSERT_OK_AND_ASSIGN(
      ModificationStats stats,
      SplitInsertsAndModifications(fixture.view->left_base(), raw, &ins,
                                   &mold, &mnew));
  EXPECT_EQ(stats.mod_cells, 1u);
  EXPECT_EQ(ins.NumCells(), 1u);
  EXPECT_TRUE(ins.Has({5, 6}));
  EXPECT_EQ((*mold.Get({5, 5}))[0], 1.0);  // the old value snapshot
  EXPECT_EQ((*mnew.Get({5, 5}))[0], 9.0);
}

TEST(ModificationsTest, CountViewUnaffectedByOverwrites) {
  ASSERT_OK_AND_ASSIGN(auto fixture,
                       MakeCountViewFixture(3, 100, Shape::L1Ball(2, 1), 401));
  ASSERT_OK_AND_ASSIGN(SparseArray view_before,
                       fixture.view->array().Gather());
  // Overwrite 20 existing cells with new values.
  ViewMaintainer maintainer(fixture.view.get(),
                            MaintenanceMethod::kReassign);
  SparseArray batch(fixture.local_base.schema());
  int taken = 0;
  fixture.local_base.ForEachCell(
      [&](std::span<const int64_t> coord, std::span<const double>) {
        if (taken >= 20) return;
        ++taken;
        CellCoord c(coord.begin(), coord.end());
        AVM_CHECK(batch.Set(c, std::vector<double>{555.0}).ok());
      });
  ASSERT_OK_AND_ASSIGN(MaintenanceReport report, maintainer.ApplyBatch(batch));
  EXPECT_EQ(report.modified_cells, 20u);
  ASSERT_OK_AND_ASSIGN(SparseArray view_after,
                       fixture.view->array().Gather());
  EXPECT_TRUE(view_before.ContentEquals(view_after));
  // The base cells did change.
  ASSERT_OK_AND_ASSIGN(SparseArray base_now,
                       fixture.view->left_base().Gather());
  int changed = 0;
  batch.ForEachCell([&](std::span<const int64_t> coord,
                        std::span<const double>) {
    CellCoord c(coord.begin(), coord.end());
    auto v = base_now.Get(c);
    if (v.ok() && (*v)[0] == 555.0) ++changed;
  });
  EXPECT_EQ(changed, 20);
}

TEST(ModificationsTest, SumViewCorrectedExactly) {
  ASSERT_OK_AND_ASSIGN(
      auto fixture,
      MakeCountViewFixture(3, 120, Shape::L1Ball(2, 1), 402,
                           /*with_sum=*/true));
  ViewMaintainer maintainer(fixture.view.get(),
                            MaintenanceMethod::kReassign);
  // A batch mixing inserts and overwrites.
  Rng rng(403);
  SparseArray batch = RandomDisjointDelta(fixture.local_base, 30, &rng);
  int overwrites = 0;
  fixture.local_base.ForEachCell(
      [&](std::span<const int64_t> coord, std::span<const double> values) {
        if (overwrites >= 15) return;
        ++overwrites;
        CellCoord c(coord.begin(), coord.end());
        AVM_CHECK(batch.Set(c, std::vector<double>{values[0] + 1000.0}).ok());
      });
  ASSERT_OK_AND_ASSIGN(MaintenanceReport report, maintainer.ApplyBatch(batch));
  EXPECT_EQ(report.modified_cells, 15u);
  EXPECT_TRUE(ViewMatchesRecompute(*fixture.view));
}

TEST(ModificationsTest, RepeatedOverwritesOfSameCells) {
  ASSERT_OK_AND_ASSIGN(
      auto fixture,
      MakeCountViewFixture(3, 60, Shape::LinfBall(2, 1), 404,
                           /*with_sum=*/true));
  ViewMaintainer maintainer(fixture.view.get(),
                            MaintenanceMethod::kDifferential);
  CellCoord victim;
  fixture.local_base.ForEachCell(
      [&](std::span<const int64_t> coord, std::span<const double>) {
        if (victim.empty()) victim.assign(coord.begin(), coord.end());
      });
  ASSERT_FALSE(victim.empty());
  for (double value : {7.0, 13.0, 2.0}) {
    SparseArray batch(fixture.local_base.schema());
    ASSERT_OK(batch.Set(victim, std::vector<double>{value}));
    ASSERT_OK(maintainer.ApplyBatch(batch).status());
    ASSERT_TRUE(ViewMatchesRecompute(*fixture.view)) << "value " << value;
  }
}

TEST(ModificationsTest, MixedBatchAcrossMethods) {
  for (MaintenanceMethod method :
       {MaintenanceMethod::kBaseline, MaintenanceMethod::kDifferential,
        MaintenanceMethod::kReassign}) {
    ASSERT_OK_AND_ASSIGN(
        auto fixture,
        MakeCountViewFixture(3, 100, Shape::L1Ball(2, 1), 405,
                             /*with_sum=*/true));
    ViewMaintainer maintainer(fixture.view.get(), method);
    Rng rng(406);
    SparseArray batch = RandomDisjointDelta(fixture.local_base, 20, &rng);
    int overwrites = 0;
    fixture.local_base.ForEachCell(
        [&](std::span<const int64_t> coord, std::span<const double>) {
          if (overwrites >= 10) return;
          ++overwrites;
          CellCoord c(coord.begin(), coord.end());
          AVM_CHECK(batch.Set(c, std::vector<double>{3.14}).ok());
        });
    ASSERT_OK(maintainer.ApplyBatch(batch).status());
    ASSERT_TRUE(ViewMatchesRecompute(*fixture.view))
        << MaintenanceMethodName(method);
  }
}

TEST(ModificationsTest, MinMaxViewRejectsOverwrites) {
  // Build a MIN view manually; overwrites cannot be retracted.
  Catalog catalog;
  Cluster cluster(2);
  const ArraySchema schema = testing_util::Make2DSchema("base");
  SparseArray local(schema);
  ASSERT_OK(local.Set({5, 5}, std::vector<double>{1.0}));
  ASSERT_OK(local.Set({5, 6}, std::vector<double>{2.0}));
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(base.Ingest(local));
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "base";
  def.right_array = "base";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::L1Ball(2, 1);
  def.aggregates = {{AggregateFunction::kMin, 0, "mn"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), MakeRoundRobinPlacement(),
                             &catalog, &cluster));
  ViewMaintainer maintainer(&view, MaintenanceMethod::kBaseline);
  SparseArray batch(schema);
  ASSERT_OK(batch.Set({5, 5}, std::vector<double>{0.5}));  // overwrite
  EXPECT_TRUE(maintainer.ApplyBatch(batch).status().IsFailedPrecondition());
}

TEST(ModificationsTest, MinMaxViewAcceptsPureInserts) {
  Catalog catalog;
  Cluster cluster(2);
  const ArraySchema schema = testing_util::Make2DSchema("base");
  SparseArray local(schema);
  Rng rng(407);
  testing_util::FillRandom(&local, 60, &rng);
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(base.Ingest(local));
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "base";
  def.right_array = "base";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::L1Ball(2, 1);
  def.aggregates = {{AggregateFunction::kMin, 0, "mn"},
                    {AggregateFunction::kMax, 0, "mx"}};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), MakeRoundRobinPlacement(),
                             &catalog, &cluster));
  ViewMaintainer maintainer(&view, MaintenanceMethod::kReassign);
  SparseArray delta = RandomDisjointDelta(local, 30, &rng);
  ASSERT_OK(maintainer.ApplyBatch(delta).status());
  EXPECT_TRUE(ViewMatchesRecompute(view));
}

}  // namespace
}  // namespace avm
