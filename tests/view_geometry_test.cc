// Maintenance when the view's geometry differs from the base array's — the
// paper: "the base array(s) and the materialized view are not required to
// have identical chunking and partitioning", and the view may have lower
// dimensionality (group-by over a dimension subset).

#include <gtest/gtest.h>

#include "maintenance/maintainer.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::Make2DSchema;
using testing_util::RandomDisjointDelta;
using testing_util::ViewMatchesRecompute;

struct GeometryCase {
  std::string name;
  std::vector<size_t> group_dims;          // empty = all
  std::vector<int64_t> view_chunk_extents; // empty = inherit
  MaintenanceMethod method;
};

class ViewGeometryTest : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(ViewGeometryTest, MaintenanceStaysExact) {
  const GeometryCase& param = GetParam();
  Catalog catalog;
  Cluster cluster(4);
  const ArraySchema schema = Make2DSchema("base", 40, 8, 24, 6);
  SparseArray local(schema);
  Rng rng(1000);
  testing_util::FillRandom(&local, 120, &rng);
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRangePlacement(0), &catalog,
                               &cluster));
  ASSERT_OK(base.Ingest(local));

  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "base";
  def.right_array = "base";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::L1Ball(2, 1);
  def.aggregates = {{AggregateFunction::kCount, 0, "cnt"},
                    {AggregateFunction::kSum, 0, "s"}};
  def.group_dims = param.group_dims;
  def.view_chunk_extents = param.view_chunk_extents;
  ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), MakeHashPlacement(), &catalog,
                             &cluster));
  ASSERT_TRUE(ViewMatchesRecompute(view)) << "materialization";

  ViewMaintainer maintainer(&view, param.method);
  for (int b = 0; b < 3; ++b) {
    ASSERT_OK_AND_ASSIGN(SparseArray base_now, view.left_base().Gather());
    SparseArray delta = RandomDisjointDelta(base_now, 40, &rng);
    ASSERT_OK(maintainer.ApplyBatch(delta).status());
    ASSERT_TRUE(ViewMatchesRecompute(view))
        << param.name << " diverged at batch " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ViewGeometryTest,
    ::testing::Values(
        // Finer view chunks than the base (8x6 base -> 4x3 view chunks).
        GeometryCase{"finer_chunks", {}, {4, 3},
                     MaintenanceMethod::kReassign},
        // Coarser view chunks (one view chunk spans several base chunks).
        GeometryCase{"coarser_chunks", {}, {16, 12},
                     MaintenanceMethod::kReassign},
        // Misaligned extents (neither divides the other).
        GeometryCase{"misaligned_chunks", {}, {5, 7},
                     MaintenanceMethod::kDifferential},
        GeometryCase{"misaligned_baseline", {}, {5, 7},
                     MaintenanceMethod::kBaseline},
        // A 1-D view: group by x only (dimensionality reduction).
        GeometryCase{"project_to_x", {0}, {}, MaintenanceMethod::kReassign},
        // Group by y only, with its own chunking.
        GeometryCase{"project_to_y_rechunked", {1}, {5},
                     MaintenanceMethod::kDifferential},
        // Reversed dimension order in the group-by.
        GeometryCase{"swapped_dims", {1, 0}, {},
                     MaintenanceMethod::kReassign}),
    [](const ::testing::TestParamInfo<GeometryCase>& info) {
      return info.param.name;
    });

TEST(ViewGeometryTest, ProjectedViewCountsAggregateAcrossCollapsedDim) {
  // Two base cells sharing x must fold into one 1-D view cell.
  Catalog catalog;
  Cluster cluster(2);
  const ArraySchema schema = Make2DSchema("base", 40, 8, 24, 6);
  SparseArray local(schema);
  ASSERT_OK(local.Set({10, 5}, std::vector<double>{2.0}));
  ASSERT_OK(local.Set({10, 20}, std::vector<double>{3.0}));
  ASSERT_OK_AND_ASSIGN(
      DistributedArray base,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                               &cluster));
  ASSERT_OK(base.Ingest(local));
  ViewDefinition def;
  def.view_name = "V";
  def.left_array = "base";
  def.right_array = "base";
  def.mapping = DimMapping::Identity(2);
  def.shape = Shape::L1Ball(2, 0);  // self only
  def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  def.group_dims = {0};
  ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), MakeRoundRobinPlacement(),
                             &catalog, &cluster));
  ASSERT_OK_AND_ASSIGN(SparseArray states, view.array().Gather());
  EXPECT_EQ(states.NumCells(), 1u);
  EXPECT_EQ((*states.Get({10}))[0], 2.0);  // both cells' self-pairs
}

}  // namespace
}  // namespace avm
