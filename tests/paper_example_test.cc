// Reproductions of the paper's worked examples: Figure 1 (the running
// array/view example), Figure 7 (Algorithm 1's candidate evaluation), and
// Table 2 (Algorithm 2's candidate evaluation).

#include <gtest/gtest.h>

#include "common/check.h"
#include "maintenance/maintainer.h"
#include "maintenance/makespan_tracker.h"
#include "tests/test_util.h"
#include "view/materialized_view.h"

namespace avm {
namespace {

/// Builds the paper's A<r,s>[i=1,6,2; j=1,8,2] with the six initial cells of
/// Figure 1(a), distributed round-robin over 3 workers, plus the COUNT view.
struct Figure1 {
  Catalog catalog;
  Cluster cluster{3};
  std::unique_ptr<MaterializedView> view;

  static constexpr struct {
    int64_t i, j;
    double r, s;
  } kInitial[6] = {{1, 2, 2, 5}, {1, 3, 6, 3}, {2, 8, 2, 9},
                   {4, 4, 2, 1}, {5, 1, 4, 8}, {6, 2, 4, 3}};
  static constexpr struct {
    int64_t i, j;
    double r, s;
  } kInserts[7] = {{1, 5, 5, 6}, {2, 1, 1, 4}, {2, 3, 4, 9}, {4, 2, 3, 3},
                   {4, 4, 8, 5}, {5, 4, 2, 6}, {5, 6, 9, 2}};

  Status Build() {
    AVM_ASSIGN_OR_RETURN(
        ArraySchema schema,
        ArraySchema::Create("A", {{"i", 1, 6, 2}, {"j", 1, 8, 2}},
                            {{"r"}, {"s"}}));
    SparseArray initial(schema);
    for (const auto& c : kInitial) {
      AVM_RETURN_IF_ERROR(
          initial.Set({c.i, c.j}, std::vector<double>{c.r, c.s}));
    }
    AVM_ASSIGN_OR_RETURN(
        DistributedArray base,
        DistributedArray::Create(schema, MakeRoundRobinPlacement(), &catalog,
                                 &cluster));
    AVM_RETURN_IF_ERROR(base.Ingest(initial));
    ViewDefinition def;
    def.view_name = "V";
    def.left_array = "A";
    def.right_array = "A";
    def.mapping = DimMapping::Identity(2);
    def.shape = Shape::L1Ball(2, 1);
    def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
    AVM_ASSIGN_OR_RETURN(
        MaterializedView v,
        CreateMaterializedView(std::move(def), MakeRoundRobinPlacement(),
                               &catalog, &cluster));
    view = std::make_unique<MaterializedView>(std::move(v));
    return Status::OK();
  }

  SparseArray InsertBatch() const {
    ArraySchema schema = view->left_base().schema();
    SparseArray batch(schema);
    for (const auto& c : kInserts) {
      AVM_CHECK(batch.Set({c.i, c.j}, std::vector<double>{c.r, c.s}).ok());
    }
    return batch;
  }
};

double CountAt(const SparseArray& finalized, int64_t i, int64_t j) {
  auto v = finalized.Get({i, j});
  return v.ok() ? (*v)[0] : -1.0;
}

TEST(PaperFigure1Test, InitialViewMatchesFigure1a) {
  Figure1 fig;
  ASSERT_OK(fig.Build());
  ASSERT_OK_AND_ASSIGN(SparseArray v, fig.view->GatherFinalized());
  // Figure 1(a): V[1,2] = V[1,3] = 2 (the only adjacent pair); all other
  // non-empty cells count only themselves.
  EXPECT_EQ(CountAt(v, 1, 2), 2.0);
  EXPECT_EQ(CountAt(v, 1, 3), 2.0);
  EXPECT_EQ(CountAt(v, 2, 8), 1.0);
  EXPECT_EQ(CountAt(v, 4, 4), 1.0);
  EXPECT_EQ(CountAt(v, 5, 1), 1.0);
  EXPECT_EQ(CountAt(v, 6, 2), 1.0);
  EXPECT_EQ(v.NumCells(), 6u);
}

class PaperFigure1MaintenanceTest
    : public ::testing::TestWithParam<MaintenanceMethod> {};

TEST_P(PaperFigure1MaintenanceTest, MaintainedViewMatchesFigure1b) {
  Figure1 fig;
  ASSERT_OK(fig.Build());
  ViewMaintainer maintainer(fig.view.get(), GetParam());
  ASSERT_OK_AND_ASSIGN(MaintenanceReport report,
                       maintainer.ApplyBatch(fig.InsertBatch()));
  // The [4,4] insert overwrites an existing detection.
  EXPECT_EQ(report.modified_cells, 1u);
  ASSERT_OK_AND_ASSIGN(SparseArray v, fig.view->GatherFinalized());
  // Hand-computed neighbor counts over the final 12 cells.
  EXPECT_EQ(CountAt(v, 1, 2), 2.0);
  EXPECT_EQ(CountAt(v, 1, 3), 3.0);
  EXPECT_EQ(CountAt(v, 1, 5), 1.0);
  EXPECT_EQ(CountAt(v, 2, 1), 1.0);
  EXPECT_EQ(CountAt(v, 2, 3), 2.0);
  EXPECT_EQ(CountAt(v, 2, 8), 1.0);
  EXPECT_EQ(CountAt(v, 4, 2), 1.0);
  EXPECT_EQ(CountAt(v, 4, 4), 2.0);
  EXPECT_EQ(CountAt(v, 5, 1), 1.0);
  EXPECT_EQ(CountAt(v, 5, 4), 2.0);
  EXPECT_EQ(CountAt(v, 5, 6), 1.0);
  EXPECT_EQ(CountAt(v, 6, 2), 1.0);
  EXPECT_EQ(v.NumCells(), 12u);
  EXPECT_TRUE(testing_util::ViewMatchesRecompute(*fig.view));
}

INSTANTIATE_TEST_SUITE_P(AllMethods, PaperFigure1MaintenanceTest,
                         ::testing::Values(MaintenanceMethod::kBaseline,
                                           MaintenanceMethod::kDifferential,
                                           MaintenanceMethod::kReassign));

TEST(PaperFigure7Test, Algorithm1CandidateEvaluation) {
  // Figure 7's state while processing the triple (∆A7, A2, *): unit chunks,
  // Tntwk = 4, Tcpu = 1. Server X holds ∆A7 (S = X), server Y holds A2.
  //   X: ntwk 0, cpu 4;  Y: ntwk 4, cpu 2;  Z: ntwk 4, cpu 0.
  MakespanTracker tracker(3);
  tracker.Commit({{0, 0.0, 4.0}, {1, 4.0, 2.0}, {2, 4.0, 0.0}});
  const double kTntwk = 4.0;  // per unit chunk
  const double kTcpu = 1.0;
  const double kBpq = 2.0;  // two unit chunks joined

  // Join at X: ship A2 from Y (4), compute 2 at X -> opt_now = 8.
  EXPECT_DOUBLE_EQ(
      tracker.EvalWithDeltas({{1, kTntwk, 0.0}, {0, 0.0, kBpq * kTcpu}}),
      8.0);
  // Join at Y: ship ∆A7 from X (4), compute 2 at Y -> opt_now = 4.
  EXPECT_DOUBLE_EQ(
      tracker.EvalWithDeltas({{0, kTntwk, 0.0}, {1, 0.0, kBpq * kTcpu}}),
      4.0);
  // Join at Z: ship both, compute at Z -> opt_now = 8.
  EXPECT_DOUBLE_EQ(
      tracker.EvalWithDeltas(
          {{0, kTntwk, 0.0}, {1, kTntwk, 0.0}, {2, 0.0, kBpq * kTcpu}}),
      8.0);
  // The paper selects Y.
}

TEST(PaperTable2Test, Algorithm2CandidateEvaluation) {
  // Table 2's state after stage 1: ntwk = {32, 36, 30}, cpu = {36, 30, 35};
  // joins J1, J2 at X, J3 at Y; per-join result transfer 4, merge CPU 2.
  MakespanTracker tracker(3);
  tracker.Commit({{0, 32.0, 36.0}, {1, 36.0, 30.0}, {2, 30.0, 35.0}});
  const double kShip = 4.0;
  const double kMerge = 2.0;

  // V1 -> X: J3 ships from Y, three merges at X -> 42.
  EXPECT_DOUBLE_EQ(tracker.EvalWithDeltas({{1, kShip, 0.0},
                                           {0, 0.0, 3 * kMerge}}),
                   42.0);
  // V1 -> Y: J1 and J2 ship from X, three merges at Y -> 40.
  EXPECT_DOUBLE_EQ(tracker.EvalWithDeltas({{0, 2 * kShip, 0.0},
                                           {1, 0.0, 3 * kMerge}}),
                   40.0);
  // V1 -> Z: all three ship, three merges at Z -> 41.
  EXPECT_DOUBLE_EQ(tracker.EvalWithDeltas({{0, 2 * kShip, 0.0},
                                           {1, kShip, 0.0},
                                           {2, 0.0, 3 * kMerge}}),
                   41.0);
  // The paper moves V1 to Y.
}

TEST(PaperExampleTest, ChunkNumberingMatchesFigure1) {
  // Figure 1 numbers the six occupied chunks 1..6 in row-major order; our
  // ids are the dense row-major linearization of the full 3x4 grid.
  ASSERT_OK_AND_ASSIGN(
      ArraySchema schema,
      ArraySchema::Create("A", {{"i", 1, 6, 2}, {"j", 1, 8, 2}},
                          {{"r"}, {"s"}}));
  const ChunkGrid grid(schema);
  // Chunk "1" holds cells (1..2, 1..2), ..., chunk "8" (paper numbering,
  // new) holds cells (5..6, 5..6).
  EXPECT_EQ(grid.IdOfCell({1, 2}), grid.IdOfCell({2, 1}));
  EXPECT_NE(grid.IdOfCell({1, 2}), grid.IdOfCell({1, 3}));
  EXPECT_EQ(grid.IdOfCell({5, 6}), grid.IdOfPos({2, 2}));
}

}  // namespace
}  // namespace avm
