#include "maintenance/makespan_tracker.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "tests/test_util.h"

namespace avm {
namespace {

TEST(MakespanTrackerTest, StartsAtZero) {
  MakespanTracker tracker(3);
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 0.0);
}

TEST(MakespanTrackerTest, CommitUpdatesMax) {
  MakespanTracker tracker(2);
  tracker.AddNetwork(0, 5.0);
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 5.0);
  tracker.AddCpu(1, 7.0);
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 7.0);
  EXPECT_DOUBLE_EQ(tracker.ntwk(0), 5.0);
  EXPECT_DOUBLE_EQ(tracker.cpu(1), 7.0);
}

TEST(MakespanTrackerTest, PerNodeMaxOfNtwkAndCpu) {
  MakespanTracker tracker(1);
  tracker.AddNetwork(0, 3.0);
  tracker.AddCpu(0, 2.0);
  // Overlapped: the node's score is max(3, 2), not 5.
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 3.0);
}

TEST(MakespanTrackerTest, CoordinatorTrackedButNotScored) {
  MakespanTracker tracker(2);
  tracker.AddNetwork(kCoordinatorNode, 9.0);
  // The coordinator's uplink is recorded but stays out of the objective
  // (the paper's max ranges over the worker servers).
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.ntwk(kCoordinatorNode), 9.0);
  EXPECT_DOUBLE_EQ(tracker.EvalWithDeltas({{kCoordinatorNode, 5.0, 0.0}}),
                   0.0);
}

TEST(MakespanTrackerTest, EvalDoesNotMutate) {
  MakespanTracker tracker(2);
  tracker.AddNetwork(0, 4.0);
  const double eval = tracker.EvalWithDeltas({{1, 0.0, 6.0}});
  EXPECT_DOUBLE_EQ(eval, 6.0);
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 4.0);
  EXPECT_DOUBLE_EQ(tracker.cpu(1), 0.0);
}

TEST(MakespanTrackerTest, EvalAggregatesDuplicateNodes) {
  MakespanTracker tracker(2);
  const double eval =
      tracker.EvalWithDeltas({{0, 2.0, 0.0}, {0, 3.0, 0.0}});
  EXPECT_DOUBLE_EQ(eval, 5.0);
}

TEST(MakespanTrackerTest, EvalSeesUnaffectedMax) {
  MakespanTracker tracker(3);
  tracker.AddCpu(2, 10.0);
  // A small delta elsewhere cannot reduce the global max.
  EXPECT_DOUBLE_EQ(tracker.EvalWithDeltas({{0, 1.0, 0.0}}), 10.0);
}

TEST(MakespanTrackerTest, EvalMatchesCommitResult) {
  Rng rng(55);
  MakespanTracker tracker(4);
  for (int step = 0; step < 200; ++step) {
    std::vector<MakespanTracker::Delta> deltas;
    const int n = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < n; ++i) {
      NodeId node = static_cast<NodeId>(rng.Uniform(5));
      if (node == 4) node = kCoordinatorNode;
      deltas.push_back({node, rng.UniformDouble(),
                        node == kCoordinatorNode ? 0.0 : rng.UniformDouble()});
    }
    const double predicted = tracker.EvalWithDeltas(deltas);
    tracker.Commit(deltas);
    EXPECT_NEAR(tracker.CurrentMax(), predicted, 1e-12);
  }
}

TEST(MakespanTrackerTest, MatchesBruteForceMax) {
  Rng rng(56);
  MakespanTracker tracker(5);
  std::vector<double> ntwk(6, 0.0), cpu(6, 0.0);
  for (int step = 0; step < 300; ++step) {
    NodeId node = static_cast<NodeId>(rng.Uniform(6));
    const size_t index = node == 5 ? 5u : static_cast<size_t>(node);
    if (node == 5) node = kCoordinatorNode;
    const double dn = rng.UniformDouble();
    const double dc = node == kCoordinatorNode ? 0.0 : rng.UniformDouble();
    tracker.Commit({{node, dn, dc}});
    ntwk[index] += dn;
    cpu[index] += dc;
    double expected = 0.0;
    for (size_t i = 0; i < 5; ++i) {  // workers only
      expected = std::max(expected, std::max(ntwk[i], cpu[i]));
    }
    ASSERT_NEAR(tracker.CurrentMax(), expected, 1e-12);
  }
}

TEST(ConcurrentClockBankTest, AccumulatesPerNode) {
  ConcurrentClockBank bank(3);
  bank.AddNetwork(0, 1.5);
  bank.AddNetwork(0, 0.5);
  bank.AddCpu(2, 4.0);
  bank.AddNetwork(kCoordinatorNode, 2.0);
  EXPECT_DOUBLE_EQ(bank.ntwk(0), 2.0);
  EXPECT_DOUBLE_EQ(bank.cpu(0), 0.0);
  EXPECT_DOUBLE_EQ(bank.cpu(2), 4.0);
  EXPECT_DOUBLE_EQ(bank.ntwk(kCoordinatorNode), 2.0);
}

TEST(ConcurrentClockBankTest, CommitAddsOntoClusterClocks) {
  Cluster cluster(2);
  cluster.ChargeNetwork(0, 1000);  // pre-existing charge must be preserved
  const double before = cluster.clock(0).ntwk_seconds;
  ConcurrentClockBank bank(2);
  bank.AddNetwork(0, 3.0);
  bank.AddCpu(1, 5.0);
  bank.AddCpu(kCoordinatorNode, 7.0);
  bank.CommitTo(&cluster);
  EXPECT_DOUBLE_EQ(cluster.clock(0).ntwk_seconds, before + 3.0);
  EXPECT_DOUBLE_EQ(cluster.clock(1).cpu_seconds, 5.0);
  EXPECT_DOUBLE_EQ(cluster.clock(kCoordinatorNode).cpu_seconds, 7.0);
}

TEST(ConcurrentClockBankTest, ParallelChargesMatchSerialBitExactly) {
  // Randomized equivalence: the same per-node charge scripts applied
  // serially, from 8 concurrent threads (one per node — the executor's unit
  // of parallelism, which fixes per-slot addition order), and to a
  // MakespanTracker must produce bit-identical clocks and exact byte totals.
  constexpr int kNodes = 8;
  struct Charge {
    bool cpu;
    double seconds;
    uint64_t bytes;
  };
  Rng rng(77);
  std::vector<std::vector<Charge>> scripts(kNodes + 1);
  for (auto& script : scripts) {
    const int n = 50 + static_cast<int>(rng.Uniform(50));
    for (int i = 0; i < n; ++i) {
      script.push_back({rng.Bernoulli(0.5), rng.UniformDouble(),
                        rng.Uniform(1u << 20)});
    }
  }
  auto node_of = [](size_t s) {
    return s == kNodes ? kCoordinatorNode : static_cast<NodeId>(s);
  };
  auto apply = [&](ConcurrentClockBank* bank, size_t s) {
    const NodeId node = node_of(s);
    for (const Charge& c : scripts[s]) {
      if (c.cpu) {
        bank->AddCpu(node, c.seconds, c.bytes);
      } else {
        bank->AddNetwork(node, c.seconds, c.bytes);
      }
    }
  };

  ConcurrentClockBank serial(kNodes);
  MakespanTracker tracker(kNodes);
  for (size_t s = 0; s <= kNodes; ++s) {
    apply(&serial, s);
    for (const Charge& c : scripts[s]) {
      if (c.cpu) {
        tracker.AddCpu(node_of(s), c.seconds);
      } else {
        tracker.AddNetwork(node_of(s), c.seconds);
      }
    }
  }

  ConcurrentClockBank parallel(kNodes);
  ThreadPool pool(8);
  pool.ParallelFor(kNodes + 1, [&](size_t s) { apply(&parallel, s); });

  for (size_t s = 0; s <= kNodes; ++s) {
    const NodeId node = node_of(s);
    // == (not NEAR): per-node addition order is identical, so the float
    // sums must match bit for bit; the byte sums are exact integers.
    EXPECT_EQ(serial.ntwk(node), parallel.ntwk(node)) << "slot " << s;
    EXPECT_EQ(serial.cpu(node), parallel.cpu(node)) << "slot " << s;
    EXPECT_EQ(serial.ntwk_bytes(node), parallel.ntwk_bytes(node));
    EXPECT_EQ(serial.cpu_bytes(node), parallel.cpu_bytes(node));
    EXPECT_EQ(tracker.ntwk(node), parallel.ntwk(node)) << "slot " << s;
    EXPECT_EQ(tracker.cpu(node), parallel.cpu(node)) << "slot " << s;
  }

  // Committing either bank yields identical cluster clocks and byte totals.
  Cluster from_serial(kNodes);
  Cluster from_parallel(kNodes);
  serial.CommitTo(&from_serial);
  parallel.CommitTo(&from_parallel);
  for (size_t s = 0; s <= kNodes; ++s) {
    const NodeId node = node_of(s);
    EXPECT_EQ(from_serial.clock(node).ntwk_seconds,
              from_parallel.clock(node).ntwk_seconds);
    EXPECT_EQ(from_serial.clock(node).cpu_seconds,
              from_parallel.clock(node).cpu_seconds);
    EXPECT_EQ(from_serial.clock(node).ntwk_bytes,
              from_parallel.clock(node).ntwk_bytes);
    EXPECT_EQ(from_serial.clock(node).cpu_bytes,
              from_parallel.clock(node).cpu_bytes);
  }
}

TEST(ConcurrentClockBankTest, ConcurrentAddsFromThePoolAreLossless) {
  ConcurrentClockBank bank(4);
  ThreadPool pool(4);
  // Hammer every slot from many tasks; each integer add is exact in double,
  // so the totals must come out exact no matter the interleaving.
  pool.ParallelFor(400, [&](size_t i) {
    const NodeId node = static_cast<NodeId>(i % 4);
    bank.AddCpu(node, 1.0);
    bank.AddNetwork(node, 2.0);
  });
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(bank.cpu(n), 100.0);
    EXPECT_DOUBLE_EQ(bank.ntwk(n), 200.0);
  }
}

}  // namespace
}  // namespace avm
