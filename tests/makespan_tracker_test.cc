#include "maintenance/makespan_tracker.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "tests/test_util.h"

namespace avm {
namespace {

TEST(MakespanTrackerTest, StartsAtZero) {
  MakespanTracker tracker(3);
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 0.0);
}

TEST(MakespanTrackerTest, CommitUpdatesMax) {
  MakespanTracker tracker(2);
  tracker.AddNetwork(0, 5.0);
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 5.0);
  tracker.AddCpu(1, 7.0);
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 7.0);
  EXPECT_DOUBLE_EQ(tracker.ntwk(0), 5.0);
  EXPECT_DOUBLE_EQ(tracker.cpu(1), 7.0);
}

TEST(MakespanTrackerTest, PerNodeMaxOfNtwkAndCpu) {
  MakespanTracker tracker(1);
  tracker.AddNetwork(0, 3.0);
  tracker.AddCpu(0, 2.0);
  // Overlapped: the node's score is max(3, 2), not 5.
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 3.0);
}

TEST(MakespanTrackerTest, CoordinatorTrackedButNotScored) {
  MakespanTracker tracker(2);
  tracker.AddNetwork(kCoordinatorNode, 9.0);
  // The coordinator's uplink is recorded but stays out of the objective
  // (the paper's max ranges over the worker servers).
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.ntwk(kCoordinatorNode), 9.0);
  EXPECT_DOUBLE_EQ(tracker.EvalWithDeltas({{kCoordinatorNode, 5.0, 0.0}}),
                   0.0);
}

TEST(MakespanTrackerTest, EvalDoesNotMutate) {
  MakespanTracker tracker(2);
  tracker.AddNetwork(0, 4.0);
  const double eval = tracker.EvalWithDeltas({{1, 0.0, 6.0}});
  EXPECT_DOUBLE_EQ(eval, 6.0);
  EXPECT_DOUBLE_EQ(tracker.CurrentMax(), 4.0);
  EXPECT_DOUBLE_EQ(tracker.cpu(1), 0.0);
}

TEST(MakespanTrackerTest, EvalAggregatesDuplicateNodes) {
  MakespanTracker tracker(2);
  const double eval =
      tracker.EvalWithDeltas({{0, 2.0, 0.0}, {0, 3.0, 0.0}});
  EXPECT_DOUBLE_EQ(eval, 5.0);
}

TEST(MakespanTrackerTest, EvalSeesUnaffectedMax) {
  MakespanTracker tracker(3);
  tracker.AddCpu(2, 10.0);
  // A small delta elsewhere cannot reduce the global max.
  EXPECT_DOUBLE_EQ(tracker.EvalWithDeltas({{0, 1.0, 0.0}}), 10.0);
}

TEST(MakespanTrackerTest, EvalMatchesCommitResult) {
  Rng rng(55);
  MakespanTracker tracker(4);
  for (int step = 0; step < 200; ++step) {
    std::vector<MakespanTracker::Delta> deltas;
    const int n = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < n; ++i) {
      NodeId node = static_cast<NodeId>(rng.Uniform(5));
      if (node == 4) node = kCoordinatorNode;
      deltas.push_back({node, rng.UniformDouble(),
                        node == kCoordinatorNode ? 0.0 : rng.UniformDouble()});
    }
    const double predicted = tracker.EvalWithDeltas(deltas);
    tracker.Commit(deltas);
    EXPECT_NEAR(tracker.CurrentMax(), predicted, 1e-12);
  }
}

TEST(MakespanTrackerTest, MatchesBruteForceMax) {
  Rng rng(56);
  MakespanTracker tracker(5);
  std::vector<double> ntwk(6, 0.0), cpu(6, 0.0);
  for (int step = 0; step < 300; ++step) {
    NodeId node = static_cast<NodeId>(rng.Uniform(6));
    const size_t index = node == 5 ? 5u : static_cast<size_t>(node);
    if (node == 5) node = kCoordinatorNode;
    const double dn = rng.UniformDouble();
    const double dc = node == kCoordinatorNode ? 0.0 : rng.UniformDouble();
    tracker.Commit({{node, dn, dc}});
    ntwk[index] += dn;
    cpu[index] += dc;
    double expected = 0.0;
    for (size_t i = 0; i < 5; ++i) {  // workers only
      expected = std::max(expected, std::max(ntwk[i], cpu[i]));
    }
    ASSERT_NEAR(tracker.CurrentMax(), expected, 1e-12);
  }
}

TEST(ConcurrentClockBankTest, AccumulatesPerNode) {
  ConcurrentClockBank bank(3);
  bank.AddNetwork(0, 1.5);
  bank.AddNetwork(0, 0.5);
  bank.AddCpu(2, 4.0);
  bank.AddNetwork(kCoordinatorNode, 2.0);
  EXPECT_DOUBLE_EQ(bank.ntwk(0), 2.0);
  EXPECT_DOUBLE_EQ(bank.cpu(0), 0.0);
  EXPECT_DOUBLE_EQ(bank.cpu(2), 4.0);
  EXPECT_DOUBLE_EQ(bank.ntwk(kCoordinatorNode), 2.0);
}

TEST(ConcurrentClockBankTest, CommitAddsOntoClusterClocks) {
  Cluster cluster(2);
  cluster.ChargeNetwork(0, 1000);  // pre-existing charge must be preserved
  const double before = cluster.clock(0).ntwk_seconds;
  ConcurrentClockBank bank(2);
  bank.AddNetwork(0, 3.0);
  bank.AddCpu(1, 5.0);
  bank.AddCpu(kCoordinatorNode, 7.0);
  bank.CommitTo(&cluster);
  EXPECT_DOUBLE_EQ(cluster.clock(0).ntwk_seconds, before + 3.0);
  EXPECT_DOUBLE_EQ(cluster.clock(1).cpu_seconds, 5.0);
  EXPECT_DOUBLE_EQ(cluster.clock(kCoordinatorNode).cpu_seconds, 7.0);
}

TEST(ConcurrentClockBankTest, ConcurrentAddsFromThePoolAreLossless) {
  ConcurrentClockBank bank(4);
  ThreadPool pool(4);
  // Hammer every slot from many tasks; each integer add is exact in double,
  // so the totals must come out exact no matter the interleaving.
  pool.ParallelFor(400, [&](size_t i) {
    const NodeId node = static_cast<NodeId>(i % 4);
    bank.AddCpu(node, 1.0);
    bank.AddNetwork(node, 2.0);
  });
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(bank.cpu(n), 100.0);
    EXPECT_DOUBLE_EQ(bank.ntwk(n), 200.0);
  }
}

}  // namespace
}  // namespace avm
