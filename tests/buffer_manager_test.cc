#include "buffer/buffer_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "array/chunk.h"
#include "array/coords.h"
#include "buffer/spill_file.h"
#include "cluster/placement.h"
#include "maintenance/maintainer.h"
#include "shape/shape.h"
#include "storage/chunk_store.h"
#include "tests/test_util.h"

namespace avm {
namespace {

/// A 2-d, 1-attr chunk with `cells` rows at deterministic coordinates and
/// values derived from `seed`, so round-trips can be checked bit for bit.
Chunk MakeChunk(size_t cells, uint64_t seed = 0) {
  Chunk chunk(/*num_dims=*/2, /*num_attrs=*/1);
  chunk.Reserve(cells);
  CellCoord coord(2);
  for (size_t i = 0; i < cells; ++i) {
    coord[0] = static_cast<int64_t>(i / 8);
    coord[1] = static_cast<int64_t>(i % 8);
    const double v = static_cast<double>(i * 3 + seed) * 0.25;
    chunk.UpsertCell(i, coord, {&v, 1});
  }
  return chunk;
}

// --- SpillFile: the free-extent allocator --------------------------------

TEST(SpillFileTest, WriteReadRoundTrip) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<SpillFile> file,
                       SpillFile::Create("spill_test_rt.bin"));
  ASSERT_OK_AND_ASSIGN(SpillTicket a, file->Write(std::string(100, 'a')));
  ASSERT_OK_AND_ASSIGN(SpillTicket b, file->Write(std::string(50, 'b')));
  EXPECT_EQ(a.length, 100u);
  EXPECT_EQ(b.offset, 100u);
  EXPECT_EQ(file->LiveBytes(), 150u);
  ASSERT_OK_AND_ASSIGN(std::string back_a, file->Read(a));
  ASSERT_OK_AND_ASSIGN(std::string back_b, file->Read(b));
  EXPECT_EQ(back_a, std::string(100, 'a'));
  EXPECT_EQ(back_b, std::string(50, 'b'));
}

TEST(SpillFileTest, FreedExtentIsReused) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<SpillFile> file,
                       SpillFile::Create("spill_test_reuse.bin"));
  ASSERT_OK_AND_ASSIGN(SpillTicket a, file->Write(std::string(64, 'a')));
  ASSERT_OK_AND_ASSIGN(SpillTicket b, file->Write(std::string(64, 'b')));
  (void)b;
  file->Free(a);
  // First fit lands the same-size write in the hole, not at the end.
  ASSERT_OK_AND_ASSIGN(SpillTicket c, file->Write(std::string(48, 'c')));
  EXPECT_EQ(c.offset, a.offset);
  // The 16-byte leftover of the split hole serves a small follow-up.
  ASSERT_OK_AND_ASSIGN(SpillTicket d, file->Write(std::string(16, 'd')));
  EXPECT_EQ(d.offset, a.offset + 48);
  EXPECT_EQ(file->FileBytes(), 128u);
}

TEST(SpillFileTest, AdjacentFreesCoalesce) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<SpillFile> file,
                       SpillFile::Create("spill_test_coalesce.bin"));
  ASSERT_OK_AND_ASSIGN(SpillTicket a, file->Write(std::string(32, 'a')));
  ASSERT_OK_AND_ASSIGN(SpillTicket b, file->Write(std::string(32, 'b')));
  ASSERT_OK_AND_ASSIGN(SpillTicket c, file->Write(std::string(32, 'c')));
  ASSERT_OK_AND_ASSIGN(SpillTicket tail, file->Write(std::string(8, 't')));
  (void)tail;
  // Free a and c, then b: the three must merge into one 96-byte extent
  // that a single large write can claim.
  file->Free(a);
  file->Free(c);
  file->Free(b);
  ASSERT_OK_AND_ASSIGN(SpillTicket big, file->Write(std::string(96, 'x')));
  EXPECT_EQ(big.offset, 0u);
  EXPECT_EQ(file->FileBytes(), 104u);
}

TEST(SpillFileTest, TrailingFreeShrinksTheFile) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<SpillFile> file,
                       SpillFile::Create("spill_test_shrink.bin"));
  ASSERT_OK_AND_ASSIGN(SpillTicket a, file->Write(std::string(40, 'a')));
  ASSERT_OK_AND_ASSIGN(SpillTicket b, file->Write(std::string(40, 'b')));
  EXPECT_EQ(file->FileBytes(), 80u);
  file->Free(b);
  EXPECT_EQ(file->FileBytes(), 40u);
  file->Free(a);
  EXPECT_EQ(file->FileBytes(), 0u);
  EXPECT_EQ(file->LiveBytes(), 0u);
}

// --- BufferManager over a ChunkStore -------------------------------------

struct BufferFixture {
  // Store first: the manager's destructor detaches it, which must run
  // before the store's own destructor.
  ChunkStore store;
  std::unique_ptr<BufferManager> manager;

  explicit BufferFixture(uint64_t budget_bytes) {
    BufferOptions options;
    options.budget_bytes = budget_bytes;
    options.spill_dir = "buffer_test_spill";
    manager = std::make_unique<BufferManager>(options);
    manager->Register(&store);
  }
};

uint64_t OneChunkPhysicalBytes(size_t cells) {
  return MakeChunk(cells).PhysicalSizeBytes();
}

TEST(BufferManagerTest, EnforcesBudgetAndReloadsBitExact) {
  constexpr size_t kCells = 512;
  constexpr size_t kChunks = 6;
  const uint64_t one = OneChunkPhysicalBytes(kCells);
  BufferFixture fx(/*budget_bytes=*/5 * one / 2);  // fits 2 of 6

  for (size_t i = 0; i < kChunks; ++i) {
    fx.store.Put(0, static_cast<ChunkId>(i), MakeChunk(kCells, i));
  }
  const BufferManager::Stats stats = fx.manager->GetStats();
  EXPECT_LE(stats.resident_bytes, fx.manager->budget_bytes());
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.disk_bytes, 0u);

  size_t spilled = 0;
  for (size_t i = 0; i < kChunks; ++i) {
    if (fx.store.IsSpilled(0, static_cast<ChunkId>(i))) ++spilled;
    EXPECT_TRUE(fx.store.Contains(0, static_cast<ChunkId>(i)));
  }
  EXPECT_GE(spilled, kChunks - 3) << "most of the catalog must be on disk";

  // Faulting back in restores the exact content, for every chunk.
  for (size_t i = 0; i < kChunks; ++i) {
    const ChunkHandle h = fx.store.GetHandle(0, static_cast<ChunkId>(i));
    ASSERT_NE(h, nullptr) << "chunk " << i;
    EXPECT_TRUE(h->ContentEquals(MakeChunk(kCells, i), 0.0)) << "chunk " << i;
  }
}

TEST(BufferManagerTest, OutstandingHandleBlocksEviction) {
  constexpr size_t kCells = 512;
  const uint64_t one = OneChunkPhysicalBytes(kCells);
  BufferFixture fx(/*budget_bytes=*/5 * one / 2);

  fx.store.Put(0, 0, MakeChunk(kCells, 0));
  const ChunkHandle pin = fx.store.GetHandle(0, 0);  // as an epoch would
  ASSERT_NE(pin, nullptr);
  for (size_t i = 1; i < 8; ++i) {
    fx.store.Put(0, static_cast<ChunkId>(i), MakeChunk(kCells, i));
  }
  EXPECT_FALSE(fx.store.IsSpilled(0, 0))
      << "a pinned chunk must never be spilled";
  // Direct attempts bounce off the pin too.
  EXPECT_EQ(fx.store.TrySpill(0, 0), 0u);
}

TEST(BufferManagerTest, AllPinnedWorkingSetDegradesToResident) {
  constexpr size_t kCells = 256;
  const uint64_t one = OneChunkPhysicalBytes(kCells);
  BufferFixture fx(/*budget_bytes=*/one);  // fits a single chunk

  std::vector<ChunkHandle> pins;
  for (size_t i = 0; i < 4; ++i) {
    fx.store.Put(0, static_cast<ChunkId>(i), MakeChunk(kCells, i));
    pins.push_back(fx.store.GetHandle(0, static_cast<ChunkId>(i)));
  }
  // Over budget but nothing evictable: the sweep gives up instead of
  // live-locking, and everything stays resident.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(fx.store.IsSpilled(0, static_cast<ChunkId>(i)));
  }
  EXPECT_GT(fx.manager->GetStats().resident_bytes,
            fx.manager->budget_bytes());
}

TEST(BufferManagerTest, ResidencyByFormatSplitsResidentFromSpilled) {
  constexpr size_t kCells = 512;
  const uint64_t one = OneChunkPhysicalBytes(kCells);
  BufferFixture fx(/*budget_bytes=*/5 * one / 2);

  const uint64_t logical_total = [&] {
    uint64_t sum = 0;
    for (size_t i = 0; i < 6; ++i) {
      sum += fx.store.Put(0, static_cast<ChunkId>(i), MakeChunk(kCells, i));
    }
    return sum;
  }();

  const ChunkStore::FormatResidency r = fx.store.ResidencyByFormat();
  EXPECT_GT(r.spilled_chunks, 0u);
  EXPECT_GT(r.spilled_bytes, 0u);
  EXPECT_EQ(r.sparse_chunks + r.dense_chunks + r.spilled_chunks, 6u);
  // The sparse/dense split covers resident entries only, so it must fit the
  // budget; logical residency (SizeBytes) still covers the whole catalog.
  EXPECT_LE(r.sparse_bytes + r.dense_bytes, fx.manager->budget_bytes());
  EXPECT_EQ(fx.store.SizeBytes(), logical_total);
}

TEST(BufferManagerTest, ErasingSpilledEntriesFreesTheirExtents) {
  constexpr size_t kCells = 512;
  const uint64_t one = OneChunkPhysicalBytes(kCells);
  BufferFixture fx(/*budget_bytes=*/5 * one / 2);

  for (size_t i = 0; i < 6; ++i) {
    fx.store.Put(0, static_cast<ChunkId>(i), MakeChunk(kCells, i));
  }
  ASSERT_GT(fx.manager->GetStats().disk_bytes, 0u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(fx.store.Erase(0, static_cast<ChunkId>(i)));
  }
  EXPECT_EQ(fx.manager->GetStats().disk_bytes, 0u);
  EXPECT_EQ(fx.manager->GetStats().resident_bytes, 0u);
  EXPECT_EQ(fx.store.NumChunks(), 0u);
}

TEST(BufferManagerTest, PutOverSpilledEntryDropsTheStaleExtent) {
  constexpr size_t kCells = 512;
  const uint64_t one = OneChunkPhysicalBytes(kCells);
  BufferFixture fx(/*budget_bytes=*/5 * one / 2);

  for (size_t i = 0; i < 6; ++i) {
    fx.store.Put(0, static_cast<ChunkId>(i), MakeChunk(kCells, i));
  }
  ChunkId victim = 0;
  for (size_t i = 0; i < 6; ++i) {
    if (fx.store.IsSpilled(0, static_cast<ChunkId>(i))) {
      victim = static_cast<ChunkId>(i);
      break;
    }
  }
  ASSERT_TRUE(fx.store.IsSpilled(0, victim));
  const uint64_t disk_before = fx.manager->GetStats().disk_bytes;
  fx.store.Put(0, victim, MakeChunk(kCells / 2, 99));
  EXPECT_FALSE(fx.store.IsSpilled(0, victim));
  EXPECT_LT(fx.manager->GetStats().disk_bytes, disk_before)
      << "replacing a spilled entry must free its extent";
  const ChunkHandle h = fx.store.GetHandle(0, victim);
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->ContentEquals(MakeChunk(kCells / 2, 99), 0.0));
}

TEST(BufferManagerTest, DetachFaultsEverythingBackIn) {
  constexpr size_t kCells = 512;
  const uint64_t one = OneChunkPhysicalBytes(kCells);
  ChunkStore store;
  {
    BufferOptions options;
    options.budget_bytes = 5 * one / 2;
    options.spill_dir = "buffer_test_spill_detach";
    BufferManager manager(options);
    manager.Register(&store);
    for (size_t i = 0; i < 6; ++i) {
      store.Put(0, static_cast<ChunkId>(i), MakeChunk(kCells, i));
    }
    ASSERT_GT(manager.GetStats().disk_bytes, 0u);
  }
  // Manager gone: the store is an ordinary in-memory store again, with
  // every chunk resident and intact.
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_FALSE(store.IsSpilled(0, static_cast<ChunkId>(i)));
    const Chunk* chunk = store.Get(0, static_cast<ChunkId>(i));
    ASSERT_NE(chunk, nullptr);
    EXPECT_TRUE(chunk->ContentEquals(MakeChunk(kCells, i), 0.0));
  }
  store.CheckInvariants();
}

TEST(BufferManagerTest, ForEachFaultsSpilledEntriesIn) {
  constexpr size_t kCells = 512;
  const uint64_t one = OneChunkPhysicalBytes(kCells);
  BufferFixture fx(/*budget_bytes=*/5 * one / 2);

  for (size_t i = 0; i < 6; ++i) {
    fx.store.Put(0, static_cast<ChunkId>(i), MakeChunk(kCells, i));
  }
  size_t seen = 0;
  fx.store.ForEach([&](ArrayId array, ChunkId chunk, const Chunk& data) {
    EXPECT_EQ(array, 0u);
    EXPECT_TRUE(data.ContentEquals(MakeChunk(kCells, chunk), 0.0));
    ++seen;
  });
  EXPECT_EQ(seen, 6u);
}

TEST(BufferManagerTest, RegisterSeedsExistingChunksAndEnforces) {
  constexpr size_t kCells = 512;
  const uint64_t one = OneChunkPhysicalBytes(kCells);
  ChunkStore store;
  for (size_t i = 0; i < 6; ++i) {
    store.Put(0, static_cast<ChunkId>(i), MakeChunk(kCells, i));
  }
  BufferOptions options;
  options.budget_bytes = 5 * one / 2;
  options.spill_dir = "buffer_test_spill_seed";
  BufferManager manager(options);
  manager.Register(&store);  // store alone already exceeds the budget
  EXPECT_LE(manager.GetStats().resident_bytes, manager.budget_bytes());
  EXPECT_GT(manager.GetStats().evictions, 0u);
}

// --- The differential oracle with spill enabled --------------------------

// Maintenance over a cluster whose every store sits under a budget a
// quarter of the initial footprint: chunks spill and fault throughout the
// batch loop, and the maintained view must still match from-scratch
// recomputation exactly.
TEST(BufferManagerTest, MaintainerStaysCorrectUnderSpillPressure) {
  constexpr int kWorkers = 2;
  ASSERT_OK_AND_ASSIGN(
      testing_util::ViewFixture fixture,
      testing_util::MakeCountViewFixture(kWorkers, /*base_cells=*/200,
                                         Shape::LinfBall(2, 1), /*seed=*/7,
                                         /*with_sum=*/true));

  uint64_t footprint = 0;
  auto add_store = [&](NodeId n) {
    const ChunkStore::FormatResidency r =
        fixture.cluster->store(n).ResidencyByFormat();
    footprint += r.sparse_bytes + r.dense_bytes;
  };
  for (NodeId n = 0; n < kWorkers; ++n) add_store(n);
  add_store(kCoordinatorNode);
  ASSERT_GT(footprint, 0u);

  BufferOptions options;
  options.budget_bytes = footprint / 4;
  options.spill_dir = "buffer_test_spill_maint";
  BufferManager manager(options);
  for (NodeId n = 0; n < kWorkers; ++n) {
    manager.Register(&fixture.cluster->store(n));
  }
  manager.Register(&fixture.cluster->store(kCoordinatorNode));
  ASSERT_GT(manager.GetStats().evictions, 0u)
      << "the budget must actually force spills";

  ViewMaintainer maintainer(fixture.view.get(), MaintenanceMethod::kReassign);
  Rng rng(21);
  for (int batch = 0; batch < 3; ++batch) {
    const SparseArray delta = testing_util::RandomDisjointDelta(
        fixture.local_base, /*cells=*/40, &rng);
    delta.ForEachCell(
        [&](std::span<const int64_t> c, std::span<const double> v) {
          const CellCoord coord(c.begin(), c.end());
          ASSERT_OK(fixture.local_base.Set(coord, v));
        });
    ASSERT_OK(maintainer.ApplyBatch(delta));
    manager.Rebalance();
    ASSERT_TRUE(testing_util::ViewMatchesRecompute(*fixture.view));
  }
}

}  // namespace
}  // namespace avm
