#include "maintenance/history.h"

#include <gtest/gtest.h>

#include "maintenance/array_reassigner.h"
#include "maintenance/differential_planner.h"
#include "maintenance/triple_gen.h"
#include "tests/test_util.h"

namespace avm {
namespace {

TEST(BatchHistoryTest, WindowEvictsOldest) {
  BatchHistory history(3);
  for (int i = 0; i < 5; ++i) {
    HistoryBatch batch;
    batch.total_pair_bytes = static_cast<uint64_t>(i);
    history.Push(std::move(batch));
  }
  EXPECT_EQ(history.size(), 3u);
  // Newest first: 4, 3, 2.
  EXPECT_EQ(history.batches()[0].total_pair_bytes, 4u);
  EXPECT_EQ(history.batches()[2].total_pair_bytes, 2u);
}

TEST(BatchHistoryTest, ClearEmpties) {
  BatchHistory history(2);
  history.Push(HistoryBatch{});
  EXPECT_FALSE(history.empty());
  history.Clear();
  EXPECT_TRUE(history.empty());
}

TEST(MakeHistoryBatchTest, ExpandsTriplesPerOperand) {
  TripleSet triples;
  JoinPair pair;
  pair.a = {ChunkSide::kLeftDelta, 7};
  pair.b = {ChunkSide::kLeftBase, 9};
  pair.dir_ab = true;
  pair.bytes = 100;
  pair.view_targets_ab = {3, 4};
  triples.bytes[pair.a] = 40;
  triples.bytes[pair.b] = 60;
  triples.location[pair.a] = kCoordinatorNode;
  triples.location[pair.b] = 0;
  triples.pairs.push_back(pair);

  const HistoryBatch batch = MakeHistoryBatch(triples);
  // Two view targets x two operands = 4 score entries.
  ASSERT_EQ(batch.entries.size(), 4u);
  EXPECT_EQ(batch.total_pair_bytes, 200u);  // B_pq per (pair, v) triple
  int with_7 = 0, with_9 = 0;
  for (const auto& e : batch.entries) {
    if (e.array_chunk == 7) {
      ++with_7;
      EXPECT_EQ(e.bytes, 40u);
      EXPECT_FALSE(e.right_array);
    }
    if (e.array_chunk == 9) {
      ++with_9;
      EXPECT_EQ(e.bytes, 60u);
    }
  }
  EXPECT_EQ(with_7, 2);
  EXPECT_EQ(with_9, 2);
}

TEST(MakeHistoryBatchTest, SelfPairCountsOperandOnce) {
  TripleSet triples;
  JoinPair pair;
  pair.a = {ChunkSide::kLeftDelta, 7};
  pair.b = {ChunkSide::kLeftDelta, 7};
  pair.dir_ab = true;
  pair.bytes = 80;
  pair.view_targets_ab = {7};
  triples.bytes[pair.a] = 40;
  triples.location[pair.a] = kCoordinatorNode;
  triples.pairs.push_back(pair);
  const HistoryBatch batch = MakeHistoryBatch(triples);
  EXPECT_EQ(batch.entries.size(), 1u);
}

// Integration: array reassignment with history moves hot chunks to their
// view homes once the replicas exist.
TEST(ArrayReassignerTest, MovesOnlyToReplicatedNodes) {
  ASSERT_OK_AND_ASSIGN(
      auto fixture,
      testing_util::MakeCountViewFixture(4, 100, Shape::L1Ball(2, 1), 700));
  Rng rng(701);
  SparseArray cells =
      testing_util::RandomDisjointDelta(fixture.local_base, 40, &rng);
  ArraySchema schema("delta", cells.schema().dims(), cells.schema().attrs());
  ASSERT_OK_AND_ASSIGN(
      DistributedArray delta,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(),
                               fixture.catalog.get(), fixture.cluster.get()));
  Status status = Status::OK();
  cells.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    status = delta.PutChunk(id, chunk, kCoordinatorNode);
  });
  ASSERT_OK(status);
  ASSERT_OK_AND_ASSIGN(TripleSet triples,
                       GenerateTriples(*fixture.view, &delta, nullptr));
  PlannerOptions options;
  ASSERT_OK_AND_ASSIGN(
      DifferentialPlanResult stage1,
      PlanDifferentialView(*fixture.view, triples, 4,
                           fixture.cluster->cost_model(), options));
  BatchHistory history(options.history_window);
  ASSERT_OK(ReassignArrayChunks(*fixture.view, triples, history, 4, options,
                                fixture.cluster->cost_model(),
                                stage1.replicas, &stage1.plan));
  // Every planned move of a base chunk must target a node holding a
  // replica; delta moves must target a real worker.
  for (const auto& move : stage1.plan.array_moves) {
    EXPECT_GE(move.node, 0);
    EXPECT_LT(move.node, 4);
    if (!IsDeltaSide(move.chunk.side)) {
      auto rep = stage1.replicas.find(move.chunk);
      ASSERT_TRUE(rep != stage1.replicas.end());
      EXPECT_TRUE(rep->second.count(move.node) > 0);
    }
  }
}

TEST(ArrayReassignerTest, ZeroCpuBudgetBlocksBaseMoves) {
  ASSERT_OK_AND_ASSIGN(
      auto fixture,
      testing_util::MakeCountViewFixture(4, 100, Shape::L1Ball(2, 1), 702));
  Rng rng(703);
  SparseArray cells =
      testing_util::RandomDisjointDelta(fixture.local_base, 40, &rng);
  ArraySchema schema("delta", cells.schema().dims(), cells.schema().attrs());
  ASSERT_OK_AND_ASSIGN(
      DistributedArray delta,
      DistributedArray::Create(schema, MakeRoundRobinPlacement(),
                               fixture.catalog.get(), fixture.cluster.get()));
  Status status = Status::OK();
  cells.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    status = delta.PutChunk(id, chunk, kCoordinatorNode);
  });
  ASSERT_OK(status);
  ASSERT_OK_AND_ASSIGN(TripleSet triples,
                       GenerateTriples(*fixture.view, &delta, nullptr));
  PlannerOptions options;
  options.cpu_threshold_slack = 0.0;  // no budget at all
  ASSERT_OK_AND_ASSIGN(
      DifferentialPlanResult stage1,
      PlanDifferentialView(*fixture.view, triples, 4,
                           fixture.cluster->cost_model(), options));
  BatchHistory history(options.history_window);
  ASSERT_OK(ReassignArrayChunks(*fixture.view, triples, history, 4, options,
                                fixture.cluster->cost_model(),
                                stage1.replicas, &stage1.plan));
  // Only the delta fallback rule may fire; base chunks stay put.
  for (const auto& move : stage1.plan.array_moves) {
    EXPECT_TRUE(IsDeltaSide(move.chunk.side));
  }
}

}  // namespace
}  // namespace avm
