// Differential-oracle property test for the parallel maintenance executor:
// the same randomized workload — insert, modification, and deletion batches —
// is maintained incrementally on a serial (1-thread) cluster and on a
// 4-thread cluster, and both must agree bit-for-bit with each other and
// cell-for-cell with a from-scratch recomputation of the view. This is the
// harness the incremental-view-maintenance literature demands: an
// incremental plan is only trustworthy when checked against full
// recomputation, and a concurrent executor only when checked against the
// serial schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.h"
#include "maintenance/deletions.h"
#include "maintenance/maintainer.h"
#include "tests/test_util.h"

namespace avm {
namespace {

using testing_util::MakeCountViewFixture;
using testing_util::RandomDisjointDelta;
using testing_util::ViewFixture;
using testing_util::ViewMatchesRecompute;

/// One scripted maintenance step: an update batch (inserts + overwrites of
/// existing cells) and an optional deletion batch applied after it.
struct Step {
  SparseArray updates;
  SparseArray deletions;
  bool has_deletions = false;

  explicit Step(const ArraySchema& schema)
      : updates(schema), deletions(schema) {}
};

/// Collects every coordinate of `array`, shuffled by `rng`.
std::vector<CellCoord> ShuffledCoords(const SparseArray& array, Rng* rng) {
  std::vector<CellCoord> coords;
  coords.reserve(array.NumCells());
  array.ForEachCell(
      [&](std::span<const int64_t> coord, std::span<const double>) {
        coords.emplace_back(coord.begin(), coord.end());
      });
  rng->Shuffle(coords);
  return coords;
}

/// Scripts `num_steps` randomized steps against an evolving mirror of the
/// base content. Every step has inserts and modifications; every second
/// step also deletes existing cells. The script is generated once and
/// replayed verbatim on every lane, so all lanes see identical input.
std::vector<Step> MakeWorkload(const SparseArray& initial_base, int num_steps,
                               uint64_t seed) {
  std::vector<Step> steps;
  SparseArray mirror = initial_base.Clone();
  Rng rng(seed);
  const size_t num_attrs = mirror.schema().num_attrs();
  std::vector<double> values(num_attrs);
  for (int s = 0; s < num_steps; ++s) {
    Step step(mirror.schema());
    // Inserts: fresh coordinates.
    SparseArray inserts = RandomDisjointDelta(mirror, 24, &rng);
    inserts.ForEachCell(
        [&](std::span<const int64_t> coord, std::span<const double> vals) {
          CellCoord c(coord.begin(), coord.end());
          AVM_CHECK(step.updates.Set(c, vals).ok());
          AVM_CHECK(mirror.Set(c, vals).ok());
        });
    // Modifications: overwrite existing cells with new values (exercises the
    // signed value-correction path).
    std::vector<CellCoord> existing = ShuffledCoords(mirror, &rng);
    const size_t num_mods = std::min<size_t>(8, existing.size());
    for (size_t i = 0; i < num_mods; ++i) {
      if (step.updates.Has(existing[i])) continue;  // freshly inserted
      for (auto& v : values) v = rng.UniformDouble() * 100.0;
      AVM_CHECK(step.updates.Set(existing[i], values).ok());
      AVM_CHECK(mirror.Set(existing[i], values).ok());
    }
    // Deletions on alternating steps: drop existing cells (including,
    // sometimes, cells this very step touched — applied after the batch).
    if (s % 2 == 1) {
      step.has_deletions = true;
      std::vector<CellCoord> victims = ShuffledCoords(mirror, &rng);
      const size_t num_dels = std::min<size_t>(12, victims.size());
      for (size_t i = 0; i < num_dels; ++i) {
        auto vals = mirror.Get(victims[i]);
        AVM_CHECK(vals.ok());
        AVM_CHECK(step.deletions
                      .Set(victims[i],
                           std::span<const double>(vals.value(), num_attrs))
                      .ok());
      }
      step.deletions.ForEachCell(
          [&](std::span<const int64_t> coord, std::span<const double>) {
            mirror.Erase(CellCoord(coord.begin(), coord.end()));
          });
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

/// One maintained replica of the workload at a fixed host thread count.
struct Lane {
  ViewFixture fixture;
  std::unique_ptr<ViewMaintainer> maintainer;
};

Result<Lane> MakeLane(MaintenanceMethod method, uint64_t seed,
                      int num_threads) {
  Lane lane;
  AVM_ASSIGN_OR_RETURN(
      lane.fixture,
      MakeCountViewFixture(4, 120, Shape::L1Ball(2, 1), seed,
                           /*with_sum=*/true, "range", num_threads));
  lane.maintainer = std::make_unique<ViewMaintainer>(
      lane.fixture.view.get(), method);
  return lane;
}

class DifferentialOracleTest
    : public ::testing::TestWithParam<MaintenanceMethod> {};

TEST_P(DifferentialOracleTest, SerialParallelAndRecomputeAgree) {
  const MaintenanceMethod method = GetParam();
  const uint64_t seed = 4200 + static_cast<uint64_t>(method);
  ASSERT_OK_AND_ASSIGN(Lane serial, MakeLane(method, seed, /*threads=*/1));
  ASSERT_OK_AND_ASSIGN(Lane parallel, MakeLane(method, seed, /*threads=*/4));
  // Same seed => identical initial data in both lanes.
  ASSERT_TRUE(serial.fixture.local_base.ContentEquals(
      parallel.fixture.local_base));

  const std::vector<Step> steps =
      MakeWorkload(serial.fixture.local_base, /*num_steps=*/5, seed + 1);

  for (size_t s = 0; s < steps.size(); ++s) {
    SCOPED_TRACE("step " + std::to_string(s));
    ASSERT_OK_AND_ASSIGN(MaintenanceReport serial_report,
                         serial.maintainer->ApplyBatch(steps[s].updates));
    ASSERT_OK_AND_ASSIGN(MaintenanceReport parallel_report,
                         parallel.maintainer->ApplyBatch(steps[s].updates));
    // Simulated quantities are thread-invariant, bit for bit.
    EXPECT_EQ(serial_report.maintenance_seconds,
              parallel_report.maintenance_seconds);
    EXPECT_EQ(serial_report.exec.joins_executed,
              parallel_report.exec.joins_executed);
    EXPECT_EQ(serial_report.exec.fragments_merged,
              parallel_report.exec.fragments_merged);
    EXPECT_EQ(serial_report.exec.delta_chunks_merged,
              parallel_report.exec.delta_chunks_merged);
    EXPECT_EQ(serial_report.modified_cells, parallel_report.modified_cells);

    if (steps[s].has_deletions) {
      ASSERT_OK_AND_ASSIGN(
          DeletionStats serial_del,
          ApplyDeletionBatch(serial.fixture.view.get(), steps[s].deletions));
      ASSERT_OK_AND_ASSIGN(DeletionStats parallel_del,
                           ApplyDeletionBatch(parallel.fixture.view.get(),
                                              steps[s].deletions));
      EXPECT_EQ(serial_del.deleted_cells, parallel_del.deleted_cells);
      EXPECT_EQ(serial_del.view_cells_removed, parallel_del.view_cells_removed);
      EXPECT_EQ(serial_del.maintenance_seconds,
                parallel_del.maintenance_seconds);
    }

    // The two lanes must hold byte-identical state: base arrays and views.
    ASSERT_OK_AND_ASSIGN(SparseArray serial_base,
                         serial.fixture.view->left_base().Gather());
    ASSERT_OK_AND_ASSIGN(SparseArray parallel_base,
                         parallel.fixture.view->left_base().Gather());
    EXPECT_TRUE(serial_base.ContentEquals(parallel_base, /*tolerance=*/0.0));
    ASSERT_OK_AND_ASSIGN(SparseArray serial_view,
                         serial.fixture.view->array().Gather());
    ASSERT_OK_AND_ASSIGN(SparseArray parallel_view,
                         parallel.fixture.view->array().Gather());
    EXPECT_TRUE(serial_view.ContentEquals(parallel_view, /*tolerance=*/0.0));

    // And both must equal the from-scratch oracle.
    EXPECT_TRUE(ViewMatchesRecompute(*serial.fixture.view));
    EXPECT_TRUE(ViewMatchesRecompute(*parallel.fixture.view));
  }

  // Final sanity: the simulated clocks themselves agree across lanes.
  for (NodeId n = 0; n < serial.fixture.cluster->num_workers(); ++n) {
    EXPECT_EQ(serial.fixture.cluster->clock(n).ntwk_seconds,
              parallel.fixture.cluster->clock(n).ntwk_seconds);
    EXPECT_EQ(serial.fixture.cluster->clock(n).cpu_seconds,
              parallel.fixture.cluster->clock(n).cpu_seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, DifferentialOracleTest,
    ::testing::Values(MaintenanceMethod::kBaseline,
                      MaintenanceMethod::kDifferential,
                      MaintenanceMethod::kReassign),
    [](const ::testing::TestParamInfo<MaintenanceMethod>& info) {
      return std::string(MaintenanceMethodName(info.param));
    });

}  // namespace
}  // namespace avm
