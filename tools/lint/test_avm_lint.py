#!/usr/bin/env python3
"""Self-test for avm_lint: every rule driven against positive and negative
fixtures.

Runnable two ways:

    python3 tools/lint/test_avm_lint.py   # plain runner, no dependencies
    pytest tools/lint/test_avm_lint.py    # each test_* collected normally

Each fixture is a tiny virtual source tree (path -> contents) linted from a
temporary directory, because several rules key off the path (src/ vs tests/,
src/common/ vs the rest, hot-path files, own-header lookup).
"""

from __future__ import annotations

import os
import sys
import tempfile
import traceback

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import avm_lint  # noqa: E402


def run_lint(tree: dict[str, str]) -> list[tuple[str, int, str]]:
    """Lints a virtual source tree; returns (path, line, rule) triples."""
    with tempfile.TemporaryDirectory() as tmp:
        for rel, contents in tree.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
        cwd = os.getcwd()
        os.chdir(tmp)
        try:
            roots = sorted({rel.split("/", 1)[0] for rel in tree})
            status_functions = avm_lint.harvest_status_functions(roots)
            findings: list[avm_lint.Finding] = []
            for path in avm_lint.iter_files(roots):
                findings.extend(avm_lint.lint_file(path, status_functions))
            return [(f.path, f.line, f.rule) for f in findings]
        finally:
            os.chdir(cwd)


def rules_of(findings: list[tuple[str, int, str]]) -> set[str]:
    return {rule for (_path, _line, rule) in findings}


HEADER = "#pragma once\n"


def test_raw_assert():
    bad = HEADER + "inline void F(int x) { assert(x > 0); }\n"
    good = HEADER + "static_assert(sizeof(int) == 4);\n"
    assert rules_of(run_lint({"src/a.h": bad})) == {"raw-assert"}
    assert run_lint({"src/a.h": good}) == []


def test_naked_new_allows_leaky_singleton():
    bad = HEADER + "inline int* F() { return new int(3); }\n"
    singleton = HEADER + "inline int& G() { static int* g = new int(3); return *g; }\n"
    wrapped = HEADER + ("inline int& H() {\n"
                        "  static int* h =\n"
                        "      new int(4);\n"
                        "  return *h;\n"
                        "}\n")
    assert rules_of(run_lint({"src/a.h": bad})) == {"naked-new"}
    assert run_lint({"src/a.h": singleton}) == []
    assert run_lint({"src/a.h": wrapped}) == []


def test_naked_delete_vs_deleted_function():
    bad = HEADER + "inline void F(int* p) { delete p; }\n"
    good = HEADER + "struct S { S(const S&) = delete; };\n"
    assert rules_of(run_lint({"src/a.h": bad})) == {"naked-delete"}
    assert run_lint({"src/a.h": good}) == []


def test_std_function_hot_path_only():
    body = HEADER + "#include <functional>\ninline std::function<void()> f;\n"
    hot = next(iter(avm_lint.HOT_PATH_FILES))
    assert "std-function-hot-path" in rules_of(run_lint({hot: body}))
    assert "std-function-hot-path" not in rules_of(
        run_lint({"src/other/cold.h": body}))


def test_missing_pragma_once():
    assert rules_of(run_lint({"src/a.h": "inline int x = 1;\n"})) == {
        "missing-pragma-once"}
    assert run_lint({"src/a.cc": "int x = 1;\n"}) == []


def test_discarded_status():
    header = HEADER + "Status DoThing();\n"
    bad_cc = '#include "a.h"\n\nvoid F() {\n  DoThing();\n}\n'
    good_cc = ('#include "a.h"\n\nvoid F() {\n'
               "  Status s = DoThing();\n  (void)s;\n}\n")
    assert rules_of(run_lint({"src/a.h": header, "src/b.cc": bad_cc})) == {
        "discarded-status"}
    assert run_lint({"src/a.h": header, "src/b.cc": good_cc}) == []


def test_include_order():
    own_header_last = ('#include <vector>\n\n#include "a.h"\n\nint x;\n')
    unsorted_block = ("#pragma once\n#include <vector>\n#include <array>\n")
    relative = HEADER + '#include "../up.h"\n'
    assert rules_of(run_lint({
        "src/a.h": HEADER, "src/a.cc": own_header_last})) == {"include-order"}
    assert rules_of(run_lint({"src/b.h": unsorted_block})) == {
        "include-order"}
    assert rules_of(run_lint({"src/c.h": relative})) == {"include-order"}
    clean = '#include "a.h"\n\n#include <array>\n#include <vector>\n\nint x;\n'
    assert run_lint({"src/a.h": HEADER, "src/a.cc": clean}) == []


def test_chrono_outside_telemetry():
    body = HEADER + "#include <chrono>\n"
    assert rules_of(run_lint({"src/join/t.h": body})) == {"chrono"}
    assert run_lint({"src/telemetry/t.h": body}) == []
    assert run_lint({"tests/t.h": body}) == []


def test_chunk_by_value():
    param = HEADER + "void F(Chunk c);\n"
    multiline = HEADER + ("void G(int array,\n"
                          "       Chunk data);\n")
    deref = HEADER + "inline void H(const Chunk* p) { Chunk c = *p; }\n"
    byref = HEADER + "void I(const Chunk& c, ChunkId id);\n"
    assert rules_of(run_lint({"src/a.h": param})) == {"chunk-by-value"}
    assert rules_of(run_lint({"src/a.h": multiline})) == {"chunk-by-value"}
    assert rules_of(run_lint({"src/a.h": deref})) == {"chunk-by-value"}
    assert run_lint({"src/a.h": byref}) == []
    assert run_lint({"tests/a.h": param}) == []


def test_chunk_rep_access_outside_array():
    body = HEADER + "inline auto F(const Chunk& c) { return c.RowOffsets(); }\n"
    assert rules_of(run_lint({"src/join/a.h": body})) == {"chunk-rep-access"}
    assert run_lint({"src/array/a.h": body}) == []
    assert run_lint({"tests/a.h": body}) == []


def test_raw_mutex_everywhere_but_common():
    uses = [
        HEADER + "#include <mutex>\n",
        HEADER + "inline std::mutex g_mu;\n",
        HEADER + "inline void F() { std::lock_guard<std::mutex> l(g); }\n",
        HEADER + "inline std::condition_variable g_cv;\n",
        HEADER + "#include <shared_mutex>\n",
    ]
    for body in uses:
        assert "raw-mutex" in rules_of(run_lint({"src/serve/a.h": body})), body
        assert "raw-mutex" in rules_of(run_lint({"tests/a.h": body})), body
        assert "raw-mutex" in rules_of(run_lint({"bench/a.h": body})), body
        assert "raw-mutex" not in rules_of(
            run_lint({"src/common/mutex2.h": body})), body
    wrapped = HEADER + ('#include "common/mutex.h"\n'
                        "inline Mutex g_mu;\n"
                        "inline void F() { MutexLock lock(g_mu); }\n")
    assert run_lint({"src/serve/a.h": wrapped}) == []


GUARDED_CLASS = HEADER + """
class Good {
 public:
  int Get() const;

 private:
  mutable Mutex mu_{"Good.mu", LockRank::kLeaf};
  std::vector<int> items_ AVM_GUARDED_BY(mu_);
  std::map<int, std::shared_ptr<Thing>> lookup_
      AVM_GUARDED_BY(mu_);
  uint64_t hits_ AVM_GUARDED_BY(mu_) = 0;
  std::atomic<int> counter_{0};
  const int capacity_ = 4;
  static constexpr int kLimit = 8;
  CondVar ready_;
  struct Nested {
    int not_checked_here = 0;
  };
};
"""

UNGUARDED_CLASS = HEADER + """
class Bad {
 private:
  Mutex mu_;
  std::vector<int> items_;
};
"""


def test_unguarded_mutex_member():
    assert run_lint({"src/a.h": GUARDED_CLASS}) == []
    findings = run_lint({"src/a.h": UNGUARDED_CLASS})
    assert rules_of(findings) == {"unguarded-mutex-member"}
    assert len(findings) == 1
    # No mutex in the class -> members need no annotation.
    no_mutex = UNGUARDED_CLASS.replace("  Mutex mu_;\n", "")
    assert run_lint({"src/a.h": no_mutex}) == []
    # tests/ and bench/ are out of scope for this rule.
    assert run_lint({"tests/a.h": UNGUARDED_CLASS}) == []
    # An allow() on the member documents external protection.
    allowed = UNGUARDED_CLASS.replace(
        "std::vector<int> items_;",
        "std::vector<int> items_;"
        "  // avm-lint: allow(unguarded-mutex-member)")
    assert run_lint({"src/a.h": allowed}) == []
    # ... including on the continuation line of a wrapped declaration.
    wrapped = UNGUARDED_CLASS.replace(
        "std::vector<int> items_;",
        "std::vector<int>\n"
        "      items_;  // avm-lint: allow(unguarded-mutex-member)")
    assert run_lint({"src/a.h": wrapped}) == []


def test_unguarded_mutex_member_reports_annotation_removal():
    """Deleting an AVM_GUARDED_BY from a guarded member must be caught —
    this is the CI tripwire for annotation rot."""
    stripped = GUARDED_CLASS.replace(" AVM_GUARDED_BY(mu_)", "", 1)
    findings = run_lint({"src/a.h": stripped})
    assert rules_of(findings) == {"unguarded-mutex-member"}


def test_buffer_subsystem_in_scope():
    """src/buffer/ must get the full src/ rule set: the path-keyed rules
    exempt only src/common/ (raw-mutex) and src/array/ (chunk-rep-access),
    so the out-of-core subsystem is covered — this pins that down against
    someone widening an exemption."""
    raw = HEADER + "#include <mutex>\n"
    assert "raw-mutex" in rules_of(run_lint({"src/buffer/a.h": raw}))
    assert "unguarded-mutex-member" in rules_of(
        run_lint({"src/buffer/a.h": UNGUARDED_CLASS}))
    by_value = HEADER + "void F(Chunk c);\n"
    assert rules_of(run_lint({"src/buffer/a.h": by_value})) == {
        "chunk-by-value"}
    rep = HEADER + "inline auto F(const Chunk& c) { return c.RowOffsets(); }\n"
    assert rules_of(run_lint({"src/buffer/a.h": rep})) == {"chunk-rep-access"}


def test_stale_allow():
    stale = HEADER + "inline int x = 1;  // avm-lint: allow(raw-assert)\n"
    findings = run_lint({"src/a.h": stale})
    assert rules_of(findings) == {"stale-allow"}
    # A live allow is not stale (and suppresses its finding).
    live = HEADER + ("inline void F(int x) "
                     "{ assert(x); }  // avm-lint: allow(raw-assert)\n")
    assert run_lint({"src/a.h": live}) == []
    # A misspelled rule name can never fire -> stale.
    typo = HEADER + ("inline void F(int x) "
                     "{ assert(x); }  // avm-lint: allow(raw-asert)\n")
    assert rules_of(run_lint({"src/a.h": typo})) == {"raw-assert",
                                                     "stale-allow"}


def main() -> int:
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except Exception:  # noqa: BLE001 — report and keep going
            failed += 1
            print(f"FAIL {name}")
            traceback.print_exc()
    print(f"{len(tests) - failed}/{len(tests)} lint self-tests passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
