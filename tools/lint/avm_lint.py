#!/usr/bin/env python3
"""avm_lint: repo-specific static checks the compiler does not enforce.

Run from the repository root:

    python3 tools/lint/avm_lint.py [paths...]

With no arguments lints ``src/ tests/ bench/``. Exits non-zero if any
finding is reported. A finding can be suppressed by appending
``// avm-lint: allow(<rule>)`` to the offending line.

Rules
-----
raw-assert            <assert.h>-style ``assert(...)``. Use AVM_CHECK /
                      AVM_DCHECK from common/check.h: they stream context,
                      route through the pluggable failure handler (testable
                      death paths), and DCHECK compiles out cleanly.
naked-new             ``new`` outside the leaky-singleton idiom
                      (``static T* x = new T...``). Ownership lives in
                      containers and value types in this codebase.
naked-delete          any ``delete`` expression (``= delete`` declarations
                      are fine).
std-function-hot-path ``std::function`` in the join/index hot paths, where
                      its type-erased indirect call defeats inlining. Use a
                      template parameter or a compiled plan instead.
missing-pragma-once   header without ``#pragma once`` as its first
                      directive.
discarded-status      a bare statement calling a function declared (in this
                      repo's headers) to return Status or Result<...>.
                      Both types are [[nodiscard]], so the compiler catches
                      most of these; the linter also covers code compiled
                      only under other configurations.
include-order         first include of ``src/**/*.cc`` is not its own
                      header, or an include block is not internally sorted,
                      or a ``".."`` relative include appears.
chrono                raw ``std::chrono`` (or ``#include <chrono>``) in
                      ``src/`` outside ``src/telemetry/``. Time is measured
                      through one instrumented path — telemetry's Stopwatch,
                      TraceNowNs, and ScopedSpan — so traces and metrics
                      stay comparable; ad-hoc chrono timing bypasses it.
chunk-by-value        a ``Chunk`` passed by value (function parameter) or
                      copied out of a pointer/handle (``Chunk x = *p``) in
                      ``src/``. Chunk movement is copy-free: stores hand out
                      ChunkHandle aliases and break sharing lazily via COW
                      (ChunkStore::GetMutable), so a by-value Chunk is
                      usually an accidental deep copy of the row buffers.
                      Intentional first-owner sinks (e.g. ChunkStore::Put)
                      carry an explicit allow().
chunk-rep-access      sparse-row / OffsetIndex access (OffsetOfRow,
                      CoordOfRow, ValuesOfRow, MutableValuesOfRow,
                      GetOrCreateRow, RowOffsets/RowCoords/RowValues,
                      OffsetIndex) in ``src/`` outside ``src/array/``.
                      Chunks have two physical representations (sparse rows
                      and dense slot buffers); row accessors silently assume
                      the sparse one and DCHECK-fail — or read garbage in
                      Release — on a densified chunk. Use the dispatching
                      API instead: GetCell/GetOrCreateCell/StateOfCellRef,
                      ForEachCellWithOffset/VisitCells, UpsertChunk/
                      AccumulateChunk, dense_view(). tests/ and bench/ stay
                      exempt (they exercise both representations directly).
raw-mutex             ``std::mutex`` / ``lock_guard`` / ``unique_lock`` /
                      ``condition_variable`` (or their headers) anywhere
                      outside ``src/common/``. Locking goes through
                      avm::Mutex / MutexLock / CondVar (common/mutex.h):
                      those carry Clang Thread Safety annotations — so the
                      CI ``-Wthread-safety`` leg can prove lock discipline —
                      and a LockRank the Debug deadlock checker enforces; a
                      raw std::mutex is invisible to both.
unguarded-mutex-member  a mutable data member of a class that owns an
                      avm::Mutex but carries no AVM_GUARDED_BY /
                      AVM_PT_GUARDED_BY annotation. Atomic, const, static,
                      Mutex/CondVar members and nested type definitions are
                      exempt; a member genuinely protected by something
                      else (single-writer protocol, external quiescence)
                      documents that with an explicit allow(). This is also
                      the check that makes deleting an existing
                      AVM_GUARDED_BY fail CI even on compilers without the
                      analysis.
stale-allow           an ``avm-lint: allow(<rule>)`` comment that
                      suppressed nothing in this run: the finding was
                      fixed, the rule renamed, or it never applied here.
                      Stale allows rot — they silently disable the rule for
                      whatever lands on that line next. Not suppressible.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator

DEFAULT_PATHS = ["src", "tests", "bench"]
EXTENSIONS = {".h", ".cc"}

# Files whose inner loops are the measured join/probe kernels: type-erased
# callables are banned here specifically.
HOT_PATH_FILES = {
    "src/join/join_kernel.h",
    "src/join/join_kernel.cc",
    "src/join/compiled_shape.h",
    "src/join/compiled_shape.cc",
    "src/join/similarity_join.h",
    "src/join/similarity_join.cc",
    "src/array/offset_index.h",
}

ALLOW_RE = re.compile(r"//\s*avm-lint:\s*allow\(([\w,\s-]+)\)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Blanks out string/char literals and ``//`` comments (keeps length)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowed_rules(line: str) -> set[str]:
    m = ALLOW_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def iter_files(paths: list[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            if os.path.splitext(path)[1] in EXTENSIONS:
                yield path
            continue
        for root, _dirs, files in os.walk(path):
            for name in sorted(files):
                if os.path.splitext(name)[1] in EXTENSIONS:
                    yield os.path.join(root, name)


def harvest_status_functions(paths: list[str]) -> set[str]:
    """Names of functions declared in headers to return Status/Result."""
    names: set[str] = set()
    decl = re.compile(
        r"^\s*(?:virtual\s+|static\s+|inline\s+)*"
        r"(?:Status|Result<[^;{}=]+>)\s+"
        r"(?:\w+::)*(\w+)\s*\("
    )
    for path in iter_files(paths):
        if not path.endswith(".h"):
            continue
        with open(path, encoding="utf-8") as f:
            for line in f:
                m = decl.match(strip_comments_and_strings(line))
                if m:
                    names.add(m.group(1))
    # Factory-style helpers whose returned status IS the value of interest
    # when discarded make no sense to call bare; keep everything harvested.
    return names


ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")
NEW_RE = re.compile(r"(?<![\w_])new(?![\w_])")
DELETE_RE = re.compile(r"(?<![\w_])delete(?![\w_])")
LEAKY_SINGLETON_RE = re.compile(r"(?<![\w_])static(?![\w_]).*=\s*$|"
                                r"(?<![\w_])static(?![\w_]).*=.*"
                                r"(?<![\w_])new(?![\w_])")
EQ_DELETE_RE = re.compile(r"=\s*delete\s*[;,)]")
STD_FUNCTION_RE = re.compile(r"std\s*::\s*function")
CHRONO_RE = re.compile(r"std\s*::\s*chrono|#\s*include\s*<chrono>")
# A Chunk (not ChunkId/ChunkStore/...) taken by value in a parameter list:
# `Chunk name` directly after '(' or ',', with no &/&&/* declarator. A
# parenthesized local like `Chunk c(2, 1)` does not match (the next token
# after the name is '(' rather than ',' or ')').
CHUNK_BYVAL_PARAM_RE = re.compile(
    r"[(,]\s*(?:const\s+)?Chunk\s+\w+\s*(?:[,)]|=[^=])")
# A Chunk deep-copied out of a pointer or handle: `Chunk x = *p;`.
CHUNK_DEREF_COPY_RE = re.compile(
    r"(?<![\w_:])Chunk\s+\w+\s*=\s*\*")
# Sparse-representation-only chunk internals, banned outside src/array/
# (see the chunk-rep-access rule docstring).
CHUNK_REP_ACCESS_RE = re.compile(
    r"(?<![\w_])(?:OffsetOfRow|CoordOfRow|ValuesOfRow|MutableValuesOfRow|"
    r"GetOrCreateRow|RowOffsets|RowCoords|RowValues|OffsetIndex)(?![\w_])")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
# Raw standard-library locking, invisible to thread-safety analysis and the
# lock-rank checker (see the raw-mutex rule docstring).
RAW_MUTEX_RE = re.compile(
    r"std\s*::\s*(?:recursive_|timed_|recursive_timed_|shared_)?mutex(?![\w_])"
    r"|std\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)(?![\w_])"
    r"|std\s*::\s*condition_variable(?:_any)?(?![\w_])"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")
# A data member of avm::Mutex type: marks the enclosing class as subject to
# the unguarded-mutex-member rule.
MUTEX_MEMBER_RE = re.compile(r"^(?:mutable\s+)?Mutex\s+\w+")
GUARD_ANNOT_RE = re.compile(r"AVM_(?:PT_)?GUARDED_BY\s*\(")
CLASS_INTRO_RE = re.compile(r"(?<![\w_])(?:class|struct|union)\s+\w")
ENUM_INTRO_RE = re.compile(r"(?<![\w_])enum(?![\w_])")
# Member statements never checked for a guard: immutable or self-
# synchronized kinds, nested type definitions, and the locks themselves.
MEMBER_EXEMPT_RE = re.compile(
    r"(?<![\w_])(?:static|constexpr|using|typedef|friend|operator|template|"
    r"class|struct|enum|union|Mutex|CondVar)(?![\w_])"
    r"|atomic\s*<"
    r"|^const(?![\w_])")
# `[mutable] Type name [= init]` after template args / brace inits are
# stripped; anything with parentheses left is a function declaration.
MEMBER_DECL_RE = re.compile(
    r"^(?:mutable\s+)?[A-Za-z_][\w:]*(?:\s*[*&]+\s*|\s+)"
    r"[A-Za-z_]\w*(?:\s*\[[^\]]*\])?\s*(?:=[^;]*)?$")
ACCESS_LABEL_RE = re.compile(r"^\s*(?:public|private|protected)\s*:")

# A bare call statement: optional qualification, a harvested name, an open
# paren, and no '=', 'return', or other consuming context on the line.
STMT_PREFIX_BLOCKERS = re.compile(
    r"(?<![\w_])(return|if|while|for|switch|case|co_return|throw)(?![\w_])"
    r"|=|\breinterpret_cast\b|\(void\)"
)


def strip_all_comments(raw_lines: list[str]) -> list[str]:
    """Comment/string-stripped lines (block comments included), structure
    preserved, for brace-level scanning."""
    stripped: list[str] = []
    in_block = False
    for raw in raw_lines:
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                stripped.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # Block comments first (a // inside /* */ must not win), then the
        # existing //-and-literal stripper.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        stripped.append(strip_comments_and_strings(line))
    return stripped


class _Scope:
    def __init__(self, classlike: bool):
        self.classlike = classlike
        self.has_mutex = False
        # (start_line, end_line, text) per top-level member statement.
        self.stmts: list[tuple[int, int, str]] = []
        self.text = ""
        self.start: int | None = None


def harvest_class_members(
        raw_lines: list[str]) -> list[tuple[bool, list[tuple[int, int, str]]]]:
    """Member-declaration statements of every class/struct scope.

    Returns one (has_avm_mutex_member, statements) entry per class-like
    scope. Statements are the text between `;`/brace boundaries at that
    scope's own level — function bodies and nested types are deeper scopes
    and excluded (nested classes get entries of their own).
    """
    out: list[tuple[bool, list[tuple[int, int, str]]]] = []
    stack = [_Scope(False)]

    def finalize(scope: _Scope, line_no: int) -> None:
        text = scope.text.strip()
        start = scope.start if scope.start is not None else line_no
        scope.text = ""
        scope.start = None
        while True:
            m = ACCESS_LABEL_RE.match(text)
            if not m:
                break
            text = text[m.end():].lstrip()
        if not text:
            return
        if MUTEX_MEMBER_RE.match(text):
            scope.has_mutex = True
        scope.stmts.append((start, line_no, text))

    for line_no, line in enumerate(strip_all_comments(raw_lines), start=1):
        for ch in line:
            cur = stack[-1]
            if ch == "{":
                intro = cur.text
                classlike = bool(CLASS_INTRO_RE.search(intro)
                                 ) and not ENUM_INTRO_RE.search(intro)
                stack.append(_Scope(classlike))
            elif ch == "}":
                done = stack.pop()
                finalize(done, line_no)
                if done.classlike:
                    out.append((done.has_mutex, done.stmts))
                if not stack:  # unbalanced; keep scanning sanely
                    stack = [_Scope(False)]
                    continue
                parent = stack[-1]
                if "(" in parent.text:
                    # The popped scope was a function body; drop the
                    # signature so it does not leak into the next member.
                    parent.text = ""
                    parent.start = None
            elif ch == ";":
                finalize(cur, line_no)
            else:
                if cur.text or not ch.isspace():
                    if not cur.text:
                        cur.start = line_no
                    cur.text += ch
        for s in stack:  # newline acts as whitespace between tokens
            if s.text and not s.text.endswith(" "):
                s.text += " "
    return out


def lint_file(path: str, status_functions: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    rel = path.replace(os.sep, "/")
    is_header = rel.endswith(".h")
    in_block_comment = False
    pending_static = False  # previous code line opened `static ... =`
    prev_code = ""  # previous non-comment code line, stripped

    # (line, rule) pairs an allow() actually suppressed — the complement
    # feeds stale-allow at the end.
    fired: set[tuple[int, str]] = set()

    def report(line_no: int, rule: str, message: str) -> None:
        if rule in allowed_rules(raw_lines[line_no - 1]):
            fired.add((line_no, rule))
            return
        findings.append(Finding(rel, line_no, rule, message))

    def report_span(start: int, end: int, rule: str, message: str) -> None:
        """Like report, but the allow may sit on any line of a multi-line
        statement; the finding anchors to the first."""
        for ln in range(start, min(end, len(raw_lines)) + 1):
            if rule in allowed_rules(raw_lines[ln - 1]):
                fired.add((ln, rule))
                return
        findings.append(Finding(rel, start, rule, message))

    # --- missing-pragma-once -------------------------------------------
    if is_header:
        has_pragma = any(
            line.strip() == "#pragma once" for line in raw_lines[:30]
        )
        if not has_pragma:
            report(1, "missing-pragma-once",
                   "header must start with #pragma once")

    # --- include-order -------------------------------------------------
    includes: list[tuple[int, str, str]] = []  # (line_no, kind, path)
    for i, raw in enumerate(raw_lines, start=1):
        m = INCLUDE_RE.match(raw)
        if m:
            includes.append((i, m.group(1), m.group(2)))
    if includes:
        own_header = None
        if rel.startswith("src/") and rel.endswith(".cc"):
            candidate = rel[len("src/"):-len(".cc")] + ".h"
            if os.path.exists(os.path.join("src", candidate)):
                own_header = candidate
        if own_header is not None:
            first = includes[0]
            if not (first[1] == '"' and first[2] == own_header):
                report(first[0], "include-order",
                       f'first include must be own header "{own_header}"')
        for line_no, kind, inc in includes:
            if inc.startswith(".."):
                report(line_no, "include-order",
                       "relative include; use the src-root path")
        # Within each contiguous block, includes must be same-kind and
        # sorted (the own-header line is its own block by convention).
        start = 1 if own_header is not None else 0
        block: list[tuple[int, str, str]] = []

        def check_block(block: list[tuple[int, str, str]]) -> None:
            if len(block) < 2:
                return
            kinds = {k for (_n, k, _p) in block}
            if len(kinds) > 1:
                report(block[0][0], "include-order",
                       "mixed <...> and \"...\" includes in one block; "
                       "separate with a blank line")
                return
            paths = [p for (_n, _k, p) in block]
            if paths != sorted(paths):
                report(block[0][0], "include-order",
                       "includes in this block are not sorted")

        prev_line = None
        for entry in includes[start:]:
            if prev_line is not None and entry[0] != prev_line + 1:
                check_block(block)
                block = []
            block.append(entry)
            prev_line = entry[0]
        check_block(block)

    # --- line-based rules ----------------------------------------------
    for i, raw in enumerate(raw_lines, start=1):
        stripped = raw.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if stripped.startswith("/*") and "*/" not in stripped:
            in_block_comment = True
            continue
        if stripped.startswith("//") or stripped.startswith("*"):
            continue
        code = strip_comments_and_strings(raw)

        if ASSERT_RE.search(code) and "static_assert" not in code:
            report(i, "raw-assert",
                   "use AVM_CHECK/AVM_DCHECK instead of assert()")

        if NEW_RE.search(code):
            if not (LEAKY_SINGLETON_RE.search(code) or pending_static):
                report(i, "naked-new",
                       "naked new; use containers/value types (the leaky "
                       "singleton `static T* x = new T` is the one "
                       "allowed form)")
        if DELETE_RE.search(code) and not EQ_DELETE_RE.search(code):
            # `... =\n    delete;` wrapped by the formatter is still a
            # deleted-function declaration, not a delete expression.
            if not (re.match(r"^\s*delete\s*;", code)
                    and prev_code.endswith("=")):
                report(i, "naked-delete", "manual delete; own memory with "
                                          "containers or value types")
        pending_static = bool(re.search(
            r"(?<![\w_])static(?![\w_])[^;{}]*=\s*$", code))

        if rel in HOT_PATH_FILES and STD_FUNCTION_RE.search(code):
            report(i, "std-function-hot-path",
                   "std::function in a join/index hot path; use a template "
                   "parameter or compiled plan")

        if RAW_MUTEX_RE.search(code) and not rel.startswith("src/common/"):
            report(i, "raw-mutex",
                   "raw std:: locking primitive; use avm::Mutex / MutexLock "
                   "/ CondVar (common/mutex.h) so thread-safety analysis "
                   "and the lock-rank checker see the lock")

        if (rel.startswith("src/") and not rel.startswith("src/telemetry/")
                and CHRONO_RE.search(code)):
            report(i, "chrono",
                   "raw std::chrono outside src/telemetry/; time through "
                   "telemetry's Stopwatch / TraceNowNs / ScopedSpan")

        # A parameter list wrapped by the formatter can put `Chunk name` at
        # the start of a continuation line; re-attach the previous line's
        # trailing '(' or ',' so the by-value pattern still sees it.
        byval_code = code
        if prev_code.endswith(("(", ",")):
            byval_code = prev_code[-1] + code.lstrip()
        if rel.startswith("src/") and (CHUNK_BYVAL_PARAM_RE.search(byval_code)
                                       or CHUNK_DEREF_COPY_RE.search(code)):
            report(i, "chunk-by-value",
                   "Chunk passed or copied by value; chunk movement is "
                   "copy-free — pass const Chunk& / ChunkHandle, or mutate "
                   "through ChunkStore::GetMutable (COW)")

        if (rel.startswith("src/") and not rel.startswith("src/array/")
                and CHUNK_REP_ACCESS_RE.search(code)):
            report(i, "chunk-rep-access",
                   "sparse-row/OffsetIndex access outside src/array/; this "
                   "assumes the sparse representation — use the dispatching "
                   "Chunk API (GetCell/GetOrCreateCell, "
                   "ForEachCellWithOffset/VisitCells, UpsertChunk, "
                   "dense_view)")

        # discarded-status: a statement that is exactly a call to a
        # Status/Result-returning function. Only lines that *begin* a
        # statement count — continuations of a wrapped expression (previous
        # code line ends mid-statement) are the caller's business.
        starts_statement = prev_code == "" or prev_code.endswith(
            (";", "{", "}", ":"))
        m = re.match(r"^\s*(?:[A-Za-z_]\w*(?:::|\.|->))*([A-Za-z_]\w*)\s*\(",
                     code)
        if (starts_statement and m and m.group(1) in status_functions
                and not STMT_PREFIX_BLOCKERS.search(
                    code[: m.start(1)])
                and re.search(r"\)\s*;\s*$", code)):
            report(i, "discarded-status",
                   f"result of {m.group(1)}() is discarded; check or "
                   "propagate the Status")

        if code.strip():
            prev_code = code.strip()

    # --- unguarded-mutex-member ----------------------------------------
    if rel.startswith("src/"):
        for has_mutex, stmts in harvest_class_members(raw_lines):
            if not has_mutex:
                continue
            for start, end, text in stmts:
                if GUARD_ANNOT_RE.search(text):
                    continue
                if MEMBER_EXEMPT_RE.search(text):
                    continue
                t = re.sub(r"\{[^{}]*\}", "", text)
                prev = None
                while prev != t:  # peel nested template args inside out
                    prev = t
                    t = re.sub(r"<[^<>]*>", "", t)
                if "(" in t or ")" in t:
                    continue  # function declaration
                t = re.sub(r"\s+", " ", t).strip()
                if not MEMBER_DECL_RE.match(t):
                    continue
                report_span(
                    start, end, "unguarded-mutex-member",
                    f"member `{t}` of a mutex-owning class has no "
                    "AVM_GUARDED_BY; annotate it (or document the actual "
                    "protection with an allow)")

    # --- stale-allow -----------------------------------------------------
    for i, raw in enumerate(raw_lines, start=1):
        for rule in allowed_rules(raw):
            if (i, rule) not in fired:
                findings.append(Finding(
                    rel, i, "stale-allow",
                    f"allow({rule}) suppressed nothing in this run; "
                    "remove it"))

    return findings


def main(argv: list[str]) -> int:
    paths = argv[1:] or DEFAULT_PATHS
    paths = [p for p in paths if os.path.exists(p)]
    status_functions = harvest_status_functions(DEFAULT_PATHS)
    all_findings: list[Finding] = []
    count = 0
    for path in iter_files(paths):
        count += 1
        all_findings.extend(lint_file(path, status_functions))
    for finding in all_findings:
        print(finding)
    print(f"avm_lint: {count} files, {len(all_findings)} finding(s)",
          file=sys.stderr)
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
