// The Section-5 cost model as an advisor: given a materialized view shape,
// sweep a family of query shapes and show, for each, the ∆ shape, the
// |∆|/|query| ratio, both estimated costs, the model's choice, and the
// *measured* simulated times of both strategies — so you can see where the
// model's crossover sits against reality (Figure 6's experiment, as a tool).
//
//   ./query_advisor

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.h"
#include "query/query_planner.h"
#include "shape/delta_shape.h"

namespace {

#define OR_DIE(expr)                                             \
  ({                                                             \
    auto _r = (expr);                                            \
    if (!_r.ok()) {                                              \
      std::fprintf(stderr, "error: %s\n",                        \
                   _r.status().ToString().c_str());              \
      std::exit(1);                                              \
    }                                                            \
    std::move(_r).value();                                       \
  })

}  // namespace

int main() {
  // A GEO-style base with an L∞(2) density view.
  avm::ExperimentScale scale;
  scale.num_workers = 8;
  scale.num_batches = 0;
  scale.geo.seed_pois = 2500;

  avm::Catalog catalog;
  avm::Cluster cluster(scale.num_workers, scale.cost_model);
  avm::GeoDataset dataset = OR_DIE(avm::GenerateGeo(scale.geo, 0));
  avm::DistributedArray base = OR_DIE(avm::DistributedArray::Create(
      dataset.schema, avm::MakeRangePlacement(0), &catalog, &cluster));
  OR_DIE((avm::Result<bool>)[&]() -> avm::Result<bool> {
    AVM_RETURN_IF_ERROR(base.Ingest(dataset.base));
    return true;
  }());

  avm::ViewDefinition def;
  def.view_name = "density";
  def.left_array = "GEO";
  def.right_array = "GEO";
  def.mapping = avm::DimMapping::Identity(2);
  def.shape = avm::Shape::LinfBall(2, 2);
  def.aggregates = {{avm::AggregateFunction::kCount, 0, "cnt"}};
  avm::MaterializedView view = OR_DIE(avm::CreateMaterializedView(
      std::move(def), avm::MakeRangePlacement(0), &catalog, &cluster));
  cluster.ResetClocks();

  std::printf("view shape: L inf(2), |sigma| = %zu\n\n",
              view.definition().shape.size());
  std::printf("%-14s %6s %6s %8s %10s %10s  %-12s %10s %10s\n", "query",
              "|q|", "|d|", "|d|/|q|", "est.view", "est.join", "model picks",
              "meas.view", "meas.join");

  avm::SimilarityQueryPlanner planner(&view);
  struct Case {
    const char* label;
    avm::Shape shape;
  };
  const Case cases[] = {
      {"L1(1)", avm::Shape::L1Ball(2, 1)},
      {"L inf(1)", avm::Shape::LinfBall(2, 1)},
      {"L2(2)", avm::Shape::L2Ball(2, 2.0)},
      {"L inf(2)", avm::Shape::LinfBall(2, 2)},  // identical to the view
      {"L1(3)", avm::Shape::L1Ball(2, 3)},
      {"L inf(3)", avm::Shape::LinfBall(2, 3)},
      {"L inf(4)", avm::Shape::LinfBall(2, 4)},
  };
  for (const auto& c : cases) {
    avm::DeltaShape delta =
        OR_DIE(avm::ComputeDeltaShape(view.definition().shape, c.shape));
    auto with_view = OR_DIE(
        planner.Execute(c.shape, avm::QueryStrategy::kDifferentialOnView));
    auto complete =
        OR_DIE(planner.Execute(c.shape, avm::QueryStrategy::kCompleteJoin));
    if (!with_view.states.ContentEquals(complete.states, 1e-9)) {
      std::fprintf(stderr, "BUG: strategies disagree for %s\n", c.label);
      return 1;
    }
    std::printf("%-14s %6zu %6zu %8.2f %9.5fs %9.5fs  %-12s %9.5fs %9.5fs\n",
                c.label, c.shape.size(), delta.size(),
                with_view.estimate.DeltaRatio(),
                with_view.estimate.with_view_seconds,
                with_view.estimate.complete_join_seconds,
                with_view.estimate.chosen ==
                        avm::QueryStrategy::kDifferentialOnView
                    ? "view"
                    : "join",
                with_view.sim_seconds, complete.sim_seconds);
  }
  std::printf(
      "\nBoth strategies return identical answers; the model's pick should "
      "track the measured winner around the |d|/|q| = 1 crossover.\n");
  return 0;
}
