// A PTF-style nightly ingestion pipeline: materialize the "association
// table" (count of space-time neighbors per detection) over a synthetic
// astronomical catalog, then keep it fresh across ten nights of batch
// updates, comparing the three maintenance strategies on identical data.
//
//   ./astronomy_pipeline [nights]
//
// This is the paper's production use case end to end: skewed detections,
// drifting pointings, chunk-granular planning on an 8-worker cluster, and
// the final consistency check against recomputation from scratch.

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.h"

namespace {

#define OR_DIE(expr)                                             \
  ({                                                             \
    auto _r = (expr);                                            \
    if (!_r.ok()) {                                              \
      std::fprintf(stderr, "error: %s\n",                        \
                   _r.status().ToString().c_str());              \
      std::exit(1);                                              \
    }                                                            \
    std::move(_r).value();                                       \
  })

}  // namespace

int main(int argc, char** argv) {
  int nights = 10;
  if (argc > 1) nights = std::atoi(argv[1]);

  avm::ExperimentScale scale;
  scale.num_workers = 8;
  scale.num_batches = nights;
  scale.ptf.time_range = 112 * (8 + nights + 2);
  scale.ptf.ra_range = 4000;
  scale.ptf.dec_range = 2000;
  scale.ptf.base_cells = 6000;
  scale.ptf.base_pointed_frac = 0.98;
  scale.ptf.pointing_ra_chunks = 4;
  scale.ptf.pointing_dec_chunks = 3;
  scale.ptf.batch_cells_min = 1200;
  scale.ptf.batch_cells_max = 2000;

  std::printf("PTF association-table pipeline: %d nights, %d workers\n",
              nights, scale.num_workers);

  std::vector<avm::BatchSeries> all_series;
  for (avm::MaintenanceMethod method :
       {avm::MaintenanceMethod::kBaseline,
        avm::MaintenanceMethod::kDifferential,
        avm::MaintenanceMethod::kReassign}) {
    // Same seed -> every method ingests identical nights.
    avm::PreparedExperiment experiment = OR_DIE(avm::PrepareExperiment(
        avm::DatasetKind::kPtf5, avm::BatchRegime::kReal, scale));
    std::printf(
        "\n[%s] catalog: %llu detections in %zu chunks; view: %llu cells\n",
        std::string(avm::MaintenanceMethodName(method)).c_str(),
        static_cast<unsigned long long>(
            experiment.view->left_base().NumCells()),
        experiment.view->left_base().NumChunks(),
        static_cast<unsigned long long>(experiment.view->array().NumCells()));
    avm::BatchSeries series = OR_DIE(avm::RunMaintenanceSeries(
        &experiment, method, avm::PlannerOptions()));
    for (size_t night = 0; night < series.reports.size(); ++night) {
      const auto& report = series.reports[night];
      std::printf(
          "  night %2zu: %6llu detections, %4zu pairs, maintenance %.4fs "
          "(plan %.4fs)\n",
          night + 1, static_cast<unsigned long long>(report.delta_cells),
          report.num_pairs, report.maintenance_seconds,
          report.optimization_seconds());
    }
    std::printf("  total maintenance: %.4fs simulated\n",
                series.TotalMaintenanceSeconds());

    // The pipeline's invariant: the association table is exactly what a
    // from-scratch "cooking" run would produce.
    avm::SparseArray recomputed =
        OR_DIE(experiment.view->RecomputeReferenceStates());
    avm::SparseArray maintained = OR_DIE(experiment.view->array().Gather());
    if (!maintained.ContentEquals(recomputed)) {
      std::fprintf(stderr, "BUG: view diverged from recomputation\n");
      return 1;
    }
    std::printf("  consistency: view == recompute-from-scratch\n");
    all_series.push_back(std::move(series));
  }

  avm::PrintSeriesTable("\nper-night maintenance time (simulated seconds)",
                        all_series);
  const double base = all_series[0].TotalMaintenanceSeconds();
  const double reassign = all_series[2].TotalMaintenanceSeconds();
  std::printf("\nreassign speedup over baseline: %.2fx\n",
              base / reassign);
  return 0;
}
