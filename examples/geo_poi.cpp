// Points-of-interest density over a LinkedGeoData-style map: materialize a
// view counting the POIs within an L∞(1) neighborhood of every location,
// stream random insert batches through incremental maintenance, and then
// answer ad-hoc neighborhood queries of a different radius — letting the
// Section-5 cost model decide between the view and a fresh join.
//
//   ./geo_poi [batches]

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.h"
#include "query/query_planner.h"

namespace {

#define OR_DIE(expr)                                             \
  ({                                                             \
    auto _r = (expr);                                            \
    if (!_r.ok()) {                                              \
      std::fprintf(stderr, "error: %s\n",                        \
                   _r.status().ToString().c_str());              \
      std::exit(1);                                              \
    }                                                            \
    std::move(_r).value();                                       \
  })

}  // namespace

int main(int argc, char** argv) {
  int batches = 6;
  if (argc > 1) batches = std::atoi(argv[1]);

  avm::ExperimentScale scale;
  scale.num_workers = 8;
  scale.num_batches = batches;
  scale.geo.seed_pois = 3000;
  scale.geo.batch_frac = 0.01;

  avm::PreparedExperiment experiment = OR_DIE(avm::PrepareExperiment(
      avm::DatasetKind::kGeo, avm::BatchRegime::kRandom, scale));
  std::printf("GEO: %llu POIs over %zu chunks; density view: %llu cells\n",
              static_cast<unsigned long long>(
                  experiment.view->left_base().NumCells()),
              experiment.view->left_base().NumChunks(),
              static_cast<unsigned long long>(
                  experiment.view->array().NumCells()));

  // Keep the view fresh under random insert batches.
  avm::ViewMaintainer maintainer(experiment.view.get(),
                                 avm::MaintenanceMethod::kReassign);
  for (size_t b = 0; b < experiment.batches.size(); ++b) {
    avm::MaintenanceReport report =
        OR_DIE(maintainer.ApplyBatch(experiment.batches[b]));
    std::printf("batch %zu: +%llu POIs, %zu pairs, maintenance %.5fs\n",
                b + 1,
                static_cast<unsigned long long>(report.delta_cells),
                report.num_pairs, report.maintenance_seconds);
  }

  // Ad-hoc queries with different radii: the planner chooses between the
  // ∆-shape differential evaluation on the view and a complete join.
  avm::SimilarityQueryPlanner planner(experiment.view.get());
  struct QueryCase {
    const char* label;
    avm::Shape shape;
  };
  const QueryCase queries[] = {
      {"L1(1) neighbors", avm::Shape::L1Ball(2, 1)},
      {"L inf(2) neighbors", avm::Shape::LinfBall(2, 2)},
      {"L2(1.5) neighbors", avm::Shape::L2Ball(2, 1.5)},
  };
  for (const auto& q : queries) {
    auto outcome = OR_DIE(planner.Execute(q.shape));
    std::printf(
        "query %-20s -> %s (est view %.5fs vs join %.5fs, |d|/|q| %.2f); "
        "%llu result cells in %.5fs\n",
        q.label, std::string(avm::QueryStrategyName(outcome.used)).c_str(),
        outcome.estimate.with_view_seconds,
        outcome.estimate.complete_join_seconds, outcome.estimate.DeltaRatio(),
        static_cast<unsigned long long>(outcome.states.NumCells()),
        outcome.sim_seconds);
  }

  // Final consistency check.
  avm::SparseArray recomputed =
      OR_DIE(experiment.view->RecomputeReferenceStates());
  avm::SparseArray maintained = OR_DIE(experiment.view->array().Gather());
  std::printf("consistency: %s\n",
              maintained.ContentEquals(recomputed) ? "view == recompute"
                                                   : "BUG: diverged");
  return maintained.ContentEquals(recomputed) ? 0 : 1;
}
