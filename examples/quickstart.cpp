// Quickstart: the paper's running example (Figure 1) end to end.
//
// Builds the 2-D array A<r,s>[i=1,6,2; j=1,8,2] on a 3-worker cluster,
// materializes the array view
//
//   CREATE ARRAY VIEW V AS
//     SELECT COUNT(*) FROM A A1 SIMILARITY JOIN A A2
//       ON (A1.i = A2.i) AND (A1.j = A2.j) WITH SHAPE L1(1)
//     GROUP BY A1.i, A1.j
//
// then inserts the seven new detections of Figure 1(b) and maintains the
// view incrementally with the three-stage heuristic.

#include <cstdio>
#include <vector>

#include "cluster/distributed_array.h"
#include "maintenance/maintainer.h"
#include "view/materialized_view.h"

namespace {

void PrintArray(const char* name, const avm::SparseArray& array) {
  std::printf("%s = %s\n", name, array.schema().ToString().c_str());
  array.ForEachCell([&](std::span<const int64_t> coord,
                        std::span<const double> values) {
    std::printf("  [%lld, %lld] ->", static_cast<long long>(coord[0]),
                static_cast<long long>(coord[1]));
    for (double v : values) std::printf(" %g", v);
    std::printf("\n");
  });
}

#define OR_DIE(expr)                                             \
  ({                                                             \
    auto _r = (expr);                                            \
    if (!_r.ok()) {                                              \
      std::fprintf(stderr, "error: %s\n",                        \
                   _r.status().ToString().c_str());              \
      std::exit(1);                                              \
    }                                                            \
    std::move(_r).value();                                       \
  })

}  // namespace

int main() {
  avm::Catalog catalog;
  avm::Cluster cluster(/*num_workers=*/3);

  // The base array of Figure 1(a): 6 non-empty cells.
  avm::ArraySchema schema =
      OR_DIE(avm::ArraySchema::Create("A",
                                      {{"i", 1, 6, 2}, {"j", 1, 8, 2}},
                                      {{"r"}, {"s"}}));
  avm::SparseArray initial(schema);
  struct Cell {
    int64_t i, j;
    double r, s;
  };
  const std::vector<Cell> cells = {{1, 2, 2, 5}, {1, 3, 6, 3}, {2, 8, 2, 9},
                                   {4, 4, 2, 1}, {5, 1, 4, 8}, {6, 2, 4, 3}};
  for (const auto& c : cells) {
    auto status = initial.Set({c.i, c.j}, std::vector<double>{c.r, c.s});
    if (!status.ok()) return 1;
  }

  avm::DistributedArray base = OR_DIE(avm::DistributedArray::Create(
      schema, avm::MakeRoundRobinPlacement(), &catalog, &cluster));
  if (!base.Ingest(initial).ok()) return 1;

  // CREATE ARRAY VIEW V: COUNT over the L1(1) similarity self-join.
  avm::ViewDefinition def;
  def.view_name = "V";
  def.left_array = "A";
  def.right_array = "A";
  def.mapping = avm::DimMapping::Identity(2);
  def.shape = avm::Shape::L1Ball(2, 1);
  def.aggregates = {{avm::AggregateFunction::kCount, 0, "cnt"}};
  avm::MaterializedView view = OR_DIE(avm::CreateMaterializedView(
      std::move(def), avm::MakeRoundRobinPlacement(), &catalog, &cluster));

  std::printf("== view after initial materialization ==\n");
  PrintArray("V", OR_DIE(view.GatherFinalized()));

  // The seven insertions of Figure 1(b).
  avm::SparseArray delta(schema);
  const std::vector<Cell> inserts = {{1, 5, 5, 6}, {2, 1, 1, 4}, {2, 3, 4, 9},
                                     {4, 2, 3, 3}, {4, 4, 8, 5}, {5, 4, 2, 6},
                                     {5, 6, 9, 2}};
  for (const auto& c : inserts) {
    auto status = delta.Set({c.i, c.j}, std::vector<double>{c.r, c.s});
    if (!status.ok()) return 1;
  }

  avm::ViewMaintainer maintainer(&view, avm::MaintenanceMethod::kReassign);
  avm::MaintenanceReport report = OR_DIE(maintainer.ApplyBatch(delta));

  std::printf(
      "\nmaintained batch: %zu pairs, %zu triples, simulated %.6fs, "
      "optimization %.6fs\n",
      report.num_pairs, report.num_triples, report.maintenance_seconds,
      report.optimization_seconds());

  std::printf("\n== view after incremental maintenance ==\n");
  PrintArray("V", OR_DIE(view.GatherFinalized()));

  // Sanity: incremental result equals recomputation from scratch.
  avm::SparseArray recomputed = OR_DIE(view.RecomputeReferenceStates());
  avm::SparseArray gathered = OR_DIE(view.array().Gather());
  std::printf("\nincremental == recompute-from-scratch: %s\n",
              gathered.ContentEquals(recomputed) ? "yes" : "NO (BUG)");
  return gathered.ContentEquals(recomputed) ? 0 : 1;
}
