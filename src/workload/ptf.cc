#include "workload/ptf.h"

#include <algorithm>
#include <cmath>

namespace avm {

namespace {
constexpr int kMaxSampleAttempts = 10000;
}  // namespace

PtfGenerator::PtfGenerator(PtfOptions options, ArraySchema schema)
    : options_(options),
      schema_(std::move(schema)),
      base_(schema_),
      rng_(options.seed) {}

Result<PtfGenerator> PtfGenerator::Create(const PtfOptions& options) {
  AVM_ASSIGN_OR_RETURN(
      ArraySchema schema,
      ArraySchema::Create(
          "PTF",
          {{"time", 1, options.time_range, options.time_chunk},
           {"ra", 1, options.ra_range, options.ra_chunk},
           {"dec", 1, options.dec_range, options.dec_chunk}},
          {{"bright", AttributeType::kDouble},
           {"mag", AttributeType::kDouble}}));
  const int64_t base_span = options.base_nights * options.night_len;
  if (base_span >= options.time_range) {
    return Status::InvalidArgument(
        "base nights exceed the catalog's time range");
  }
  PtfGenerator gen(options, std::move(schema));

  // Initial catalog: each base night records a pointing — a small sky
  // window the telescope actually covered that night — plus a thin uniform
  // background of archival detections. This reproduces the real catalog's
  // sparse occupied-chunk space (most (ra, dec) columns hold data for only
  // a few nights).
  const double dec_mean =
      options.dec_mean_frac * static_cast<double>(options.dec_range);
  const double dec_sigma =
      options.dec_sigma_frac * static_cast<double>(options.dec_range);
  const int64_t ra_half = options.pointing_ra_chunks * options.ra_chunk / 2;
  const int64_t dec_half =
      options.pointing_dec_chunks * options.dec_chunk / 2;
  const uint64_t pointed_cells = static_cast<uint64_t>(
      options.base_pointed_frac * static_cast<double>(options.base_cells));
  const uint64_t per_night =
      pointed_cells / static_cast<uint64_t>(options.base_nights);
  for (int64_t night = 0; night < options.base_nights; ++night) {
    const int64_t t_lo = night * options.night_len + 1;
    const int64_t t_hi = t_lo + options.night_len - 1;
    const int64_t ra_c = gen.rng_.UniformInt(ra_half + 1,
                                             options.ra_range - ra_half - 1);
    const int64_t dec_c = static_cast<int64_t>(
        std::clamp(gen.rng_.Normal(dec_mean, dec_sigma),
                   static_cast<double>(dec_half + 1),
                   static_cast<double>(options.dec_range - dec_half - 1)));
    AVM_ASSIGN_OR_RETURN(
        SparseArray night_cells,
        gen.DrawBatch(t_lo, t_hi, ra_c - ra_half, ra_c + ra_half,
                      dec_c - dec_half, dec_c + dec_half, per_night));
    Status status = Status::OK();
    night_cells.ForEachCell([&](std::span<const int64_t> coord,
                                std::span<const double> values) {
      if (!status.ok()) return;
      status = gen.base_.Set(CellCoord(coord.begin(), coord.end()), values);
    });
    AVM_RETURN_IF_ERROR(status);
  }
  // Uniform archival background.
  uint64_t placed = gen.base_.NumCells();
  int attempts = 0;
  while (placed < options.base_cells) {
    if (++attempts > kMaxSampleAttempts) {
      return Status::InvalidArgument(
          "catalog too dense: cannot place the requested base cells");
    }
    CellCoord coord(3);
    coord[0] = gen.rng_.UniformInt(1, base_span);
    coord[1] = gen.rng_.UniformInt(1, options.ra_range);
    coord[2] = static_cast<int64_t>(
        std::clamp(gen.rng_.Normal(dec_mean, dec_sigma), 1.0,
                   static_cast<double>(options.dec_range)));
    if (!gen.used_.insert(coord).second) continue;
    const double values[2] = {gen.rng_.UniformDouble() * 100.0,
                              10.0 + gen.rng_.UniformDouble() * 15.0};
    AVM_RETURN_IF_ERROR(gen.base_.Set(coord, values));
    ++placed;
    attempts = 0;
  }
  gen.next_night_ = options.base_nights;
  return gen;
}

Result<CellCoord> PtfGenerator::SampleFreshCoord(int64_t t_lo, int64_t t_hi,
                                                 int64_t ra_lo, int64_t ra_hi,
                                                 int64_t dec_lo,
                                                 int64_t dec_hi) {
  for (int attempt = 0; attempt < kMaxSampleAttempts; ++attempt) {
    CellCoord coord(3);
    coord[0] = rng_.UniformInt(t_lo, t_hi);
    coord[1] = rng_.UniformInt(ra_lo, ra_hi);
    coord[2] = rng_.UniformInt(dec_lo, dec_hi);
    if (used_.insert(coord).second) return coord;
  }
  return Status::Internal(
      "pointing window saturated: cannot draw a fresh detection");
}

Result<SparseArray> PtfGenerator::DrawBatch(int64_t t_lo, int64_t t_hi,
                                            int64_t ra_lo, int64_t ra_hi,
                                            int64_t dec_lo, int64_t dec_hi,
                                            uint64_t cells) {
  t_lo = std::clamp<int64_t>(t_lo, 1, options_.time_range);
  t_hi = std::clamp<int64_t>(t_hi, 1, options_.time_range);
  ra_lo = std::clamp<int64_t>(ra_lo, 1, options_.ra_range);
  ra_hi = std::clamp<int64_t>(ra_hi, 1, options_.ra_range);
  dec_lo = std::clamp<int64_t>(dec_lo, 1, options_.dec_range);
  dec_hi = std::clamp<int64_t>(dec_hi, 1, options_.dec_range);
  SparseArray batch(schema_);
  for (uint64_t i = 0; i < cells; ++i) {
    AVM_ASSIGN_OR_RETURN(
        CellCoord coord,
        SampleFreshCoord(t_lo, t_hi, ra_lo, ra_hi, dec_lo, dec_hi));
    const double values[2] = {rng_.UniformDouble() * 100.0,
                              10.0 + rng_.UniformDouble() * 15.0};
    AVM_RETURN_IF_ERROR(batch.Set(coord, values));
  }
  return batch;
}

Result<std::vector<SparseArray>> PtfGenerator::MakeRealBatches(
    int num_batches) {
  std::vector<SparseArray> batches;
  batches.reserve(static_cast<size_t>(num_batches));
  // Pointing center starts mid-sky and drifts each night.
  double ra_center = 0.35 * static_cast<double>(options_.ra_range);
  double dec_center =
      options_.dec_mean_frac * static_cast<double>(options_.dec_range);
  const int64_t ra_half =
      options_.pointing_ra_chunks * options_.ra_chunk / 2;
  const int64_t dec_half =
      options_.pointing_dec_chunks * options_.dec_chunk / 2;
  for (int b = 0; b < num_batches; ++b) {
    const int64_t t_lo = next_night_ * options_.night_len + 1;
    const int64_t t_hi = t_lo + options_.night_len - 1;
    if (t_hi > options_.time_range) {
      return Status::OutOfRange("ran out of nights in the time range");
    }
    ++next_night_;
    const uint64_t cells = options_.batch_cells_min +
                           rng_.Uniform(options_.batch_cells_max -
                                        options_.batch_cells_min + 1);
    const int64_t ra_c = static_cast<int64_t>(ra_center);
    const int64_t dec_c = static_cast<int64_t>(dec_center);
    AVM_ASSIGN_OR_RETURN(
        SparseArray batch,
        DrawBatch(t_lo, t_hi, ra_c - ra_half, ra_c + ra_half,
                  dec_c - dec_half, dec_c + dec_half, cells));
    batches.push_back(std::move(batch));
    // Drift the pointing for the next night.
    ra_center += options_.drift_chunks * static_cast<double>(options_.ra_chunk);
    dec_center += 0.3 * options_.drift_chunks *
                  static_cast<double>(options_.dec_chunk) *
                  (rng_.Bernoulli(0.5) ? 1.0 : -1.0);
    ra_center = std::clamp(
        ra_center, static_cast<double>(ra_half + 1),
        static_cast<double>(options_.ra_range - ra_half - 1));
    dec_center = std::clamp(
        dec_center, static_cast<double>(dec_half + 1),
        static_cast<double>(options_.dec_range - dec_half - 1));
  }
  return batches;
}

Result<std::vector<SparseArray>> PtfGenerator::MakeCorrelatedBatches(
    int num_batches) {
  // One fixed pointing and one fixed time slice; fresh detections each time.
  const int64_t t_lo = next_night_ * options_.night_len + 1;
  const int64_t t_hi = t_lo + options_.night_len - 1;
  if (t_hi > options_.time_range) {
    return Status::OutOfRange("ran out of nights in the time range");
  }
  ++next_night_;
  const int64_t ra_half = options_.pointing_ra_chunks * options_.ra_chunk / 2;
  const int64_t dec_half =
      options_.pointing_dec_chunks * options_.dec_chunk / 2;
  const int64_t ra_c = options_.ra_range / 2;
  const int64_t dec_c = static_cast<int64_t>(
      options_.dec_mean_frac * static_cast<double>(options_.dec_range));
  const uint64_t cells =
      (options_.batch_cells_min + options_.batch_cells_max) / 2;
  std::vector<SparseArray> batches;
  batches.reserve(static_cast<size_t>(num_batches));
  for (int b = 0; b < num_batches; ++b) {
    AVM_ASSIGN_OR_RETURN(
        SparseArray batch,
        DrawBatch(t_lo, t_hi, ra_c - ra_half, ra_c + ra_half,
                  dec_c - dec_half, dec_c + dec_half, cells));
    batches.push_back(std::move(batch));
  }
  return batches;
}

Result<std::vector<SparseArray>> PtfGenerator::MakePeriodicBatches(
    int num_batches) {
  // Three pointings; the paper's order 1,2,3,3,2,1,1,2,3,3 cycled.
  static const int kPattern[] = {0, 1, 2, 2, 1, 0, 0, 1, 2, 2};
  struct Pointing {
    int64_t t_lo, t_hi, ra_c, dec_c;
  };
  const int64_t ra_half = options_.pointing_ra_chunks * options_.ra_chunk / 2;
  const int64_t dec_half =
      options_.pointing_dec_chunks * options_.dec_chunk / 2;
  std::vector<Pointing> pointings;
  for (int i = 0; i < 3; ++i) {
    const int64_t t_lo = next_night_ * options_.night_len + 1;
    const int64_t t_hi = t_lo + options_.night_len - 1;
    if (t_hi > options_.time_range) {
      return Status::OutOfRange("ran out of nights in the time range");
    }
    ++next_night_;
    const int64_t ra_c =
        (i + 1) * options_.ra_range / 4;
    const int64_t dec_c = static_cast<int64_t>(
        options_.dec_mean_frac * static_cast<double>(options_.dec_range)) +
        (i - 1) * dec_half;
    pointings.push_back({t_lo, t_hi, ra_c, dec_c});
  }
  const uint64_t cells =
      (options_.batch_cells_min + options_.batch_cells_max) / 2;
  std::vector<SparseArray> batches;
  batches.reserve(static_cast<size_t>(num_batches));
  for (int b = 0; b < num_batches; ++b) {
    const Pointing& p = pointings[static_cast<size_t>(
        kPattern[static_cast<size_t>(b) % 10])];
    AVM_ASSIGN_OR_RETURN(
        SparseArray batch,
        DrawBatch(p.t_lo, p.t_hi, p.ra_c - ra_half, p.ra_c + ra_half,
                  p.dec_c - dec_half, p.dec_c + dec_half, cells));
    batches.push_back(std::move(batch));
  }
  return batches;
}

Result<std::vector<SparseArray>> PtfGenerator::MakeSpreadBatches(
    int num_batches, int64_t spread_chunks, uint64_t cells_per_batch) {
  const int64_t ra_half = spread_chunks * options_.ra_chunk / 2;
  const int64_t dec_half = spread_chunks * options_.dec_chunk / 2;
  const int64_t ra_c = options_.ra_range / 2;
  const int64_t dec_c = options_.dec_range / 2;
  std::vector<SparseArray> batches;
  batches.reserve(static_cast<size_t>(num_batches));
  for (int b = 0; b < num_batches; ++b) {
    const int64_t t_lo = next_night_ * options_.night_len + 1;
    const int64_t t_hi = t_lo + options_.night_len - 1;
    if (t_hi > options_.time_range) {
      return Status::OutOfRange("ran out of nights in the time range");
    }
    ++next_night_;
    AVM_ASSIGN_OR_RETURN(
        SparseArray batch,
        DrawBatch(t_lo, t_hi, ra_c - ra_half, ra_c + ra_half,
                  dec_c - dec_half, dec_c + dec_half, cells_per_batch));
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace avm
