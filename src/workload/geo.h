#pragma once

#include <unordered_set>
#include <vector>

#include "array/sparse_array.h"
#include "common/result.h"
#include "common/rng.h"

namespace avm {

/// Synthetic LinkedGeoData-like dataset: 2-D points of interest
/// GEO[long, lat]. The paper seeds from OpenStreetMap "Place" POIs and adds
/// 9 Gaussian-jittered clones per seed (σ = 10 miles); we synthesize the
/// seeds too, from a mixture of city-like Gaussian clusters over a uniform
/// background, then apply the same cloning recipe.
struct GeoOptions {
  int64_t long_range = 2000;
  int64_t long_chunk = 100;
  int64_t lat_range = 1000;
  int64_t lat_chunk = 50;

  /// Seed POIs before cloning.
  uint64_t seed_pois = 6000;
  /// Clones per seed (the paper uses 9) and the jitter σ in cells.
  int clones_per_seed = 9;
  double clone_sigma = 12.0;
  /// Fraction of seeds drawn uniformly rather than from a city cluster.
  double uniform_frac = 0.2;
  int num_clusters = 25;
  double cluster_sigma_frac = 0.03;

  /// Fraction of the dataset withheld per update batch (the paper inserts
  /// 1% random samples).
  double batch_frac = 0.01;

  uint64_t seed = 11;
};

/// The generated dataset: the base array plus randomly sampled insert
/// batches (disjoint from the base and from each other — every batch is a
/// genuine insert set). Carries the generator state (used coordinates and
/// RNG) so derived batch regimes can keep drawing fresh points.
struct GeoDataset {
  ArraySchema schema;
  SparseArray base;
  std::vector<SparseArray> random_batches;
  std::unordered_set<CellCoord, CoordHash> used;
  Rng rng;

  GeoDataset(ArraySchema s, SparseArray b)
      : schema(std::move(s)), base(std::move(b)), rng(0) {}
};

/// Generates the full dataset and splits it into a base plus `num_batches`
/// random batches of `batch_frac` of the points each.
Result<GeoDataset> GenerateGeo(const GeoOptions& options, int num_batches);

/// "Correlated" GEO batches: `num_batches` batches with the chunk footprint
/// and per-chunk volume of random_batches[0], filled with fresh points.
Result<std::vector<SparseArray>> MakeCorrelatedGeoBatches(GeoDataset* dataset,
                                                          int num_batches);

/// "Periodic" GEO batches: the footprints of random_batches[0..2] alternated
/// in the paper's order 1,2,3,3,2,1,1,2,3,3 (cycled), fresh points each.
Result<std::vector<SparseArray>> MakePeriodicGeoBatches(GeoDataset* dataset,
                                                        int num_batches);

}  // namespace avm

