#pragma once

#include <unordered_set>
#include <vector>

#include "array/sparse_array.h"
#include "common/result.h"
#include "common/rng.h"

namespace avm {

/// Geometry and statistics of the synthetic PTF-like catalog. The real PTF
/// catalog is a sparse 3-D array PTF[time, ra, dec] of ~1B detections
/// (343 GB) heavily skewed around the telescope's latitude; nightly batches
/// are confined to a small, slowly drifting pointing window. The generator
/// reproduces those structural properties at laptop scale (see DESIGN.md,
/// substitutions).
struct PtfOptions {
  // Array ranges and regular chunk extents, [time, ra, dec]; the chunk
  // shape mirrors the paper's (112, 100, 50).
  int64_t time_range = 1536;
  int64_t time_chunk = 112;
  int64_t ra_range = 2000;
  int64_t ra_chunk = 100;
  int64_t dec_range = 1000;
  int64_t dec_chunk = 50;

  /// Cells in the initial catalog (times [1, base_time_slices * night_len]).
  uint64_t base_cells = 60000;
  /// Time steps covered by one night's batch.
  int64_t night_len = 112;
  /// Nights already in the base catalog before the measured batches start.
  int64_t base_nights = 8;
  /// Fraction of base cells drawn from per-night pointings (the telescope
  /// only records where it looked); the rest is a uniform background of
  /// archival detections. Pointed nights rarely overlap a later pointing,
  /// which keeps the occupied-chunk space sparse — the property that makes
  /// the paper's real batches generate only a few triples per chunk.
  double base_pointed_frac = 0.85;

  /// Detections cluster around the telescope's declination band.
  double dec_mean_frac = 0.5;
  double dec_sigma_frac = 0.15;

  /// Pointing window of one night, in chunks of (ra, dec).
  int64_t pointing_ra_chunks = 6;
  int64_t pointing_dec_chunks = 4;
  /// Night-to-night drift of the pointing center, in chunks.
  double drift_chunks = 1.5;

  /// Cells per nightly batch vary between these bounds (clouds, moon, ...).
  uint64_t batch_cells_min = 3000;
  uint64_t batch_cells_max = 9000;

  uint64_t seed = 7;
};

/// Deterministic generator of the PTF-like catalog and its update batches.
/// All emitted cells are distinct (a detection is never re-inserted), so
/// incremental maintenance over any emitted batch sequence is exactly
/// equivalent to recomputation — the invariant the tests verify.
class PtfGenerator {
 public:
  static Result<PtfGenerator> Create(const PtfOptions& options);

  const ArraySchema& schema() const { return schema_; }
  const PtfOptions& options() const { return options_; }

  /// The initial catalog (generated once in Create()).
  const SparseArray& base() const { return base_; }

  /// "Real" batches: consecutive nights, advancing time slices, pointing
  /// center drifting across the sky.
  Result<std::vector<SparseArray>> MakeRealBatches(int num_batches);

  /// "Correlated" batches: the same pointing window and the same time slice
  /// repeated `num_batches` times with fresh (never colliding) detections —
  /// an identical chunk footprint every night, the regime where continuous
  /// reassignment shines.
  Result<std::vector<SparseArray>> MakeCorrelatedBatches(int num_batches);

  /// "Periodic" batches: three distinct pointings alternated in the paper's
  /// order 1,2,3,3,2,1,1,2,3,3 (truncated/cycled to `num_batches`).
  Result<std::vector<SparseArray>> MakePeriodicBatches(int num_batches);

  /// Figure 10c batches: `num_batches` batches of ~`cells_per_batch` cells
  /// sampled uniformly inside a fixed `spread_chunks` x `spread_chunks`
  /// window of (ra, dec) chunks; larger spread = less concentrated updates.
  Result<std::vector<SparseArray>> MakeSpreadBatches(int num_batches,
                                                     int64_t spread_chunks,
                                                     uint64_t cells_per_batch);

 private:
  PtfGenerator(PtfOptions options, ArraySchema schema);

  /// Draws one batch of `cells` fresh detections in the given time slice
  /// and (ra, dec) window (cell units, clamped to the array ranges).
  Result<SparseArray> DrawBatch(int64_t t_lo, int64_t t_hi, int64_t ra_lo,
                                int64_t ra_hi, int64_t dec_lo, int64_t dec_hi,
                                uint64_t cells);

  /// A fresh coordinate inside the box, never emitted before.
  Result<CellCoord> SampleFreshCoord(int64_t t_lo, int64_t t_hi,
                                     int64_t ra_lo, int64_t ra_hi,
                                     int64_t dec_lo, int64_t dec_hi);

  PtfOptions options_;
  ArraySchema schema_;
  SparseArray base_;
  Rng rng_;
  std::unordered_set<CellCoord, CoordHash> used_;
  int64_t next_night_ = 0;  // nights consumed by real batches
};

}  // namespace avm

