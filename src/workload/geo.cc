#include "workload/geo.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace avm {

Result<GeoDataset> GenerateGeo(const GeoOptions& options, int num_batches) {
  AVM_ASSIGN_OR_RETURN(
      ArraySchema schema,
      ArraySchema::Create(
          "GEO",
          {{"long", 1, options.long_range, options.long_chunk},
           {"lat", 1, options.lat_range, options.lat_chunk}},
          {{"popularity", AttributeType::kDouble}}));
  Rng rng(options.seed);

  // City-like cluster centers.
  struct Cluster {
    double x, y, sigma;
  };
  std::vector<Cluster> clusters;
  clusters.reserve(static_cast<size_t>(options.num_clusters));
  for (int i = 0; i < options.num_clusters; ++i) {
    clusters.push_back(
        {1.0 + rng.UniformDouble() *
                   static_cast<double>(options.long_range - 1),
         1.0 + rng.UniformDouble() * static_cast<double>(options.lat_range - 1),
         options.cluster_sigma_frac *
             static_cast<double>(options.long_range) *
             (0.5 + rng.UniformDouble())});
  }

  auto clamp_coord = [&](double x, double y) {
    CellCoord c(2);
    c[0] = std::clamp<int64_t>(static_cast<int64_t>(std::llround(x)), 1,
                               options.long_range);
    c[1] = std::clamp<int64_t>(static_cast<int64_t>(std::llround(y)), 1,
                               options.lat_range);
    return c;
  };

  // Seeds plus Gaussian clones, deduplicated.
  std::unordered_set<CellCoord, CoordHash> used;
  std::vector<CellCoord> points;
  for (uint64_t i = 0; i < options.seed_pois; ++i) {
    double x;
    double y;
    if (rng.Bernoulli(options.uniform_frac)) {
      x = 1.0 + rng.UniformDouble() *
                    static_cast<double>(options.long_range - 1);
      y = 1.0 +
          rng.UniformDouble() * static_cast<double>(options.lat_range - 1);
    } else {
      const Cluster& c =
          clusters[static_cast<size_t>(rng.Uniform(clusters.size()))];
      x = rng.Normal(c.x, c.sigma);
      y = rng.Normal(c.y, c.sigma);
    }
    CellCoord seed_coord = clamp_coord(x, y);
    if (used.insert(seed_coord).second) points.push_back(seed_coord);
    for (int k = 0; k < options.clones_per_seed; ++k) {
      CellCoord clone = clamp_coord(rng.Normal(x, options.clone_sigma),
                                    rng.Normal(y, options.clone_sigma));
      if (used.insert(clone).second) points.push_back(clone);
    }
  }

  // Random split: batches are uniform samples withheld from the base.
  rng.Shuffle(points);
  const size_t batch_size = static_cast<size_t>(
      options.batch_frac * static_cast<double>(points.size()));
  const size_t withheld =
      std::min(points.size() / 2,
               batch_size * static_cast<size_t>(std::max(num_batches, 0)));

  GeoDataset dataset(schema, SparseArray(schema));
  size_t cursor = 0;
  for (int b = 0; b < num_batches; ++b) {
    SparseArray batch(schema);
    for (size_t i = 0; i < batch_size && cursor < withheld; ++i, ++cursor) {
      const double values[1] = {rng.UniformDouble()};
      AVM_RETURN_IF_ERROR(batch.Set(points[cursor], values));
    }
    dataset.random_batches.push_back(std::move(batch));
  }
  for (; cursor < points.size(); ++cursor) {
    const double values[1] = {rng.UniformDouble()};
    AVM_RETURN_IF_ERROR(dataset.base.Set(points[cursor], values));
  }
  dataset.used = std::move(used);
  dataset.rng = rng.Fork();
  return dataset;
}

namespace {

/// Draws a fresh batch with the chunk footprint and per-chunk volume of
/// `prototype`.
Result<SparseArray> DrawBatchLikeFootprint(const SparseArray& prototype,
                                           GeoDataset* dataset) {
  SparseArray batch(dataset->schema);
  Status status = Status::OK();
  prototype.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    if (!status.ok()) return;
    const Box box = prototype.grid().ChunkBoxOfId(id);
    for (size_t i = 0; i < chunk.num_cells(); ++i) {
      CellCoord coord(2);
      bool placed = false;
      for (int attempt = 0; attempt < 1000; ++attempt) {
        coord[0] = dataset->rng.UniformInt(box.lo[0], box.hi[0]);
        coord[1] = dataset->rng.UniformInt(box.lo[1], box.hi[1]);
        if (dataset->used.insert(coord).second) {
          placed = true;
          break;
        }
      }
      if (!placed) continue;  // chunk nearly full; keep the footprint anyway
      const double values[1] = {dataset->rng.UniformDouble()};
      status = batch.Set(coord, values);
      if (!status.ok()) return;
    }
  });
  if (!status.ok()) return status;
  return batch;
}

}  // namespace

Result<std::vector<SparseArray>> MakeCorrelatedGeoBatches(GeoDataset* dataset,
                                                          int num_batches) {
  if (dataset == nullptr || dataset->random_batches.empty()) {
    return Status::InvalidArgument(
        "correlated batches need a generated dataset with random batches");
  }
  std::vector<SparseArray> batches;
  batches.reserve(static_cast<size_t>(num_batches));
  for (int b = 0; b < num_batches; ++b) {
    AVM_ASSIGN_OR_RETURN(
        SparseArray batch,
        DrawBatchLikeFootprint(dataset->random_batches[0], dataset));
    batches.push_back(std::move(batch));
  }
  return batches;
}

Result<std::vector<SparseArray>> MakePeriodicGeoBatches(GeoDataset* dataset,
                                                        int num_batches) {
  if (dataset == nullptr || dataset->random_batches.size() < 3) {
    return Status::InvalidArgument(
        "periodic batches need at least three random batches as prototypes");
  }
  static const int kPattern[] = {0, 1, 2, 2, 1, 0, 0, 1, 2, 2};
  std::vector<SparseArray> batches;
  batches.reserve(static_cast<size_t>(num_batches));
  for (int b = 0; b < num_batches; ++b) {
    const int proto = kPattern[static_cast<size_t>(b) % 10];
    AVM_ASSIGN_OR_RETURN(
        SparseArray batch,
        DrawBatchLikeFootprint(
            dataset->random_batches[static_cast<size_t>(proto)], dataset));
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace avm
