#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "telemetry/telemetry.h"

/// Tracing layer: RAII spans collected into per-thread ring buffers and
/// exported as Chrome trace-event JSON (load in chrome://tracing or
/// https://ui.perfetto.dev).
///
/// Span lifetime rules:
///  - A span measures from construction to destruction; nest spans by
///    scoping, destruction order gives well-formed containment.
///  - `name`/`cat` and arg keys must be string literals (or otherwise
///    outlive the collector): events store the pointers, not copies.
///  - A span constructed while telemetry is disabled is inert forever,
///    even if telemetry is enabled before it dies — half-open spans would
///    otherwise produce nonsense durations against the trace epoch.
///  - Buffers are bounded rings (kTraceBufferCapacity events per thread);
///    when full, the oldest events are overwritten and
///    CounterId::kTraceEventsDropped counts the loss.
///
/// Threading: each OS thread appends to its own buffer under that buffer's
/// own mutex (uncontended in steady state — only export takes them all).
/// Spans mark coarse phases, not per-cell work, so a mutex is fine here;
/// the lock-free budget is spent on the metrics shards instead.

namespace avm {

/// Sized so a full figure-bench run (hundreds of batches, ~25 main-thread
/// spans each, plus two sim lanes per node per batch) fits with several-fold
/// headroom; at ~100 B/event a saturated thread buffer costs ~6.5 MB, and
/// buffers grow on demand so threads that emit little stay small.
inline constexpr size_t kTraceBufferCapacity = 65536;
inline constexpr size_t kMaxTraceArgs = 4;

/// Synthetic "thread" ids for simulated-cluster timelines: worker node k
/// exports as tid kSimTidBase + 2k (network lane) and kSimTidBase + 2k + 1
/// (cpu lane); the coordinator uses k = num_workers. Real threads get small
/// ids in registration order, so the lanes never collide.
inline constexpr int32_t kSimTidBase = 10000;

struct TraceArg {
  const char* key = nullptr;
  int64_t value = 0;
};

/// One Chrome "complete" (ph:"X") event. POD so the ring buffer is a flat
/// array with no per-event allocation.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  int64_t ts_ns = 0;   // start, on the TraceNowNs clock
  int64_t dur_ns = 0;
  int32_t tid = -1;    // -1 = stamp with the emitting thread's id
  uint32_t num_args = 0;
  TraceArg args[kMaxTraceArgs];
};

class TraceCollector {
 public:
  static TraceCollector& Global();

  /// Appends to the calling thread's ring buffer. Events with tid == -1 are
  /// stamped with the calling thread's registered id; synthetic timelines
  /// (simulated clocks) pass an explicit tid instead.
  void Emit(const TraceEvent& event);

  /// All buffered events from every thread, sorted by (tid, ts).
  std::vector<TraceEvent> Collect() const;

  /// Drops all buffered events (buffers stay registered). Test-only.
  void ResetForTesting();

  /// Number of per-thread buffers ever registered; the disabled-mode
  /// zero-allocation test asserts this stays 0.
  size_t NumBuffersForTesting() const;

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

 private:
  TraceCollector() = default;

  /// Each buffer carries its own lock, ranked after the collector's: export
  /// holds the collector mutex while visiting every buffer, and registration
  /// holds it while stamping the new buffer's tid under the buffer lock.
  struct ThreadBuffer {
    mutable Mutex mu{"TraceCollector.buffer", LockRank::kTraceBuffer};
    int32_t tid AVM_GUARDED_BY(mu) = 0;
    /// Total ever appended; ring size = min(appended, capacity).
    uint64_t appended AVM_GUARDED_BY(mu) = 0;
    std::vector<TraceEvent> ring AVM_GUARDED_BY(mu);
  };

  ThreadBuffer* LocalBuffer();

  /// Protects buffer registration/enumeration and tid assignment.
  mutable Mutex mu_{"TraceCollector.mu", LockRank::kTraceCollector};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ AVM_GUARDED_BY(mu_);
  int32_t next_tid_ AVM_GUARDED_BY(mu_) = 1;
};

/// RAII span. Records [construction, destruction) as one complete event on
/// the current thread's timeline. No-op when telemetry is disabled at
/// construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "maint");
  ~ScopedSpan();

  /// Attaches a key/value to the event (silently dropped past
  /// kMaxTraceArgs). Safe to call on an inert span.
  void AddArg(const char* key, int64_t value);

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceEvent event_;
  bool active_;
};

/// Serializes everything collected so far as Chrome trace JSON:
/// {"traceEvents":[{"name",...,"ph":"X","ts":µs,"dur":µs,...},...],
///  "displayTimeUnit":"ms"}. Returns false on I/O error.
bool WriteChromeTrace(const std::string& path);

/// In-memory variant of WriteChromeTrace, for tests and embedding.
std::string ChromeTraceJson();

}  // namespace avm
