#include "telemetry/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "telemetry/metrics.h"

namespace avm {

namespace {

/// Escapes a NUL-terminated string into a JSON string body. Span names are
/// literals in practice, but the writer must not emit invalid JSON even if
/// someone passes a funny one.
void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(static_cast<char>(c));
    }
  }
}

}  // namespace

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

TraceCollector::ThreadBuffer* TraceCollector::LocalBuffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    // The ring grows on demand (vector doubling) up to the capacity cap, so
    // threads that emit a handful of events never pay for a full buffer.
    auto owned = std::make_unique<ThreadBuffer>();
    buffer = owned.get();
    MutexLock lock(mu_);
    {
      // Nobody else can reach the buffer yet, but tid is guarded by the
      // buffer lock; collector mutex (rank 70) before buffer (rank 80).
      MutexLock buffer_lock(buffer->mu);
      buffer->tid = next_tid_++;
    }
    buffers_.push_back(std::move(owned));
  }
  return buffer;
}

void TraceCollector::Emit(const TraceEvent& event) {
  ThreadBuffer* buffer = LocalBuffer();
  MutexLock lock(buffer->mu);
  TraceEvent stamped = event;
  if (stamped.tid < 0) stamped.tid = buffer->tid;
  if (buffer->ring.size() < kTraceBufferCapacity) {
    buffer->ring.push_back(stamped);
  } else {
    buffer->ring[buffer->appended % kTraceBufferCapacity] = stamped;
    CountAdd(CounterId::kTraceEventsDropped);
  }
  ++buffer->appended;
}

std::vector<TraceEvent> TraceCollector::Collect() const {
  std::vector<TraceEvent> events;
  MutexLock lock(mu_);
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mu);
    events.insert(events.end(), buffer->ring.begin(), buffer->ring.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;  // parents before children
            });
  return events;
}

void TraceCollector::ResetForTesting() {
  MutexLock lock(mu_);
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mu);
    buffer->ring.clear();
    buffer->appended = 0;
  }
}

size_t TraceCollector::NumBuffersForTesting() const {
  MutexLock lock(mu_);
  return buffers_.size();
}

ScopedSpan::ScopedSpan(const char* name, const char* cat)
    : active_(TelemetryEnabled()) {
  if (!active_) return;
  event_.name = name;
  event_.cat = cat;
  event_.ts_ns = TraceNowNs();
}

void ScopedSpan::AddArg(const char* key, int64_t value) {
  if (!active_ || event_.num_args >= kMaxTraceArgs) return;
  event_.args[event_.num_args++] = TraceArg{key, value};
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  event_.dur_ns = TraceNowNs() - event_.ts_ns;
  TraceCollector::Global().Emit(event_);
}

std::string ChromeTraceJson() {
  const std::vector<TraceEvent> events = TraceCollector::Global().Collect();
  std::string out;
  out.reserve(events.size() * 160 + 64);
  out.append("{\"traceEvents\":[");
  char buf[160];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"name\":\"");
    AppendEscaped(&out, e.name != nullptr ? e.name : "?");
    out.append("\",\"cat\":\"");
    AppendEscaped(&out, e.cat != nullptr ? e.cat : "?");
    // Chrome expects microseconds; keep ns precision in the fraction.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":%" PRId32
                  ",\"ts\":%.3f,\"dur\":%.3f",
                  e.tid, static_cast<double>(e.ts_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3);
    out.append(buf);
    if (e.num_args > 0) {
      out.append(",\"args\":{");
      for (uint32_t a = 0; a < e.num_args; ++a) {
        if (a != 0) out.push_back(',');
        out.push_back('"');
        AppendEscaped(&out, e.args[a].key != nullptr ? e.args[a].key : "?");
        std::snprintf(buf, sizeof(buf), "\":%" PRId64, e.args[a].value);
        out.append(buf);
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out.append("],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace avm
