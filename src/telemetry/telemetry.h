#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

/// Telemetry core: the process-wide enable gate, the fixed metric-id space,
/// and the trace clock. This library is a dependency-free leaf (std only) so
/// every layer — including avm_common — can link it without cycles.
///
/// Gating contract: every instrumentation point in the codebase is guarded by
/// TelemetryEnabled(), a single relaxed atomic-bool load. With telemetry
/// disabled (the default) an instrumented call site costs exactly that one
/// predictable branch: no clock read, no shard lookup, no allocation. The
/// Release bench gate in CI holds the disabled build to the checked-in
/// kernel baseline.

namespace avm {

namespace telemetry_internal {
inline std::atomic<bool> g_enabled{false};
}  // namespace telemetry_internal

/// True while telemetry collection is on. The one-branch fast path.
inline bool TelemetryEnabled() {
  return telemetry_internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on (idempotent). The first enable pins the trace epoch;
/// spans and metrics recorded before enabling are lost by design.
void EnableTelemetry();

/// Turns collection off. Buffered metrics/trace events stay readable.
void DisableTelemetry();

/// Nanoseconds on the steady trace clock since the trace epoch (the first
/// EnableTelemetry call). Monotonic; also usable for plain durations.
int64_t TraceNowNs();

// ---------------------------------------------------------------------------
// Metric id space. Fixed at compile time so a per-thread shard is a plain
// array indexed by id — the lock-free fast path needs no registration
// handshake and no hashing.
// ---------------------------------------------------------------------------

/// Monotonic counters.
enum class CounterId : uint16_t {
  kPlanStage1Candidates,   // Algorithm 1 candidate nodes evaluated
  kPlanStage1Accepts,      // Algorithm 1 join assignments committed
  kPlanStage2Candidates,   // Algorithm 2 candidate homes evaluated
  kPlanStage2Accepts,      // Algorithm 2 view homes committed
  kPlanStage3Candidates,   // Algorithm 3 scored (chunk, view) pairs visited
  kPlanStage3Accepts,      // Algorithm 3 array moves emitted
  kExecBytesTransferred,   // network bytes charged during plan execution
  kExecBytesJoined,        // join input bytes charged during plan execution
  kExecJoinsExecuted,      // kernel directions run by the executor
  kExecFragmentsMerged,    // differential-view fragments applied
  kExecDeltaChunksMerged,  // delta chunks folded into base arrays
  kJoinProbePairs,         // chunk pairs taking the probe strategy
  kJoinScanPairs,          // chunk pairs taking the scan strategy
  kJoinInteriorCells,      // left cells on the compiled interior fast path
  kJoinBoundaryCells,      // left cells on the per-dimension boundary path
  kJoinProbes,             // offset probes issued (both probe sub-paths)
  kJoinScannedCells,       // right cells visited by the scan strategy
  kShapeCacheHits,         // CompiledShapeCache::Get served from cache
  kShapeCacheMisses,       // CompiledShapeCache::Get compiled a new entry
  kStoreChunksAliased,     // handle puts served by a refcount bump
  kStoreChunksDeepCopied,  // handle puts that duplicated the chunk bytes
  kStoreCowBreaks,         // mutations of a shared chunk that forced a copy
  kChunkPoolHits,          // ChunkPool acquires served from the free list
  kChunkPoolMisses,        // ChunkPool acquires that allocated a fresh chunk
  kChunksDensified,        // sparse -> dense representation conversions
  kChunksSparsified,       // dense -> sparse representation conversions
  kPoolTasksRun,           // thread-pool tasks executed
  kBatchesMaintained,      // ViewMaintainer::ApplyBatch completions
  kTraceEventsDropped,     // span events overwritten in a full ring buffer
  kServeEpochsPublished,   // view epochs swapped in by EpochManager::Publish
  kServeEpochsRetired,     // view epochs whose last reader dropped
  kServeSnapshotsOpened,   // ReadSnapshots handed out
  kServeQueries,           // snapshot queries evaluated
  kBufferEvictions,        // chunks spilled to disk by the buffer manager
  kBufferReloads,          // spilled chunks faulted back into a store
  kBufferBytesSpilled,     // cumulative serialized bytes written to spill files
  kBufferBytesReloaded,    // cumulative serialized bytes read back from spill
  kNumCounterIds,
};

/// Instantaneous values (set/add; signed).
enum class GaugeId : uint16_t {
  kPoolQueueDepth,       // tasks queued but not yet picked up
  kStoreResidentChunks,  // chunks resident across all ChunkStores
  kStoreResidentBytes,   // bytes resident across all ChunkStores
  kChunkPoolBytes,       // row-buffer capacity parked in ChunkPool free lists
  kStoreEpochsLive,      // view epochs currently pinning chunk handles
  kServeSnapshotsOpen,   // ReadSnapshots currently held by readers
  kStoreSparseBytes,     // physical bytes in sparse-representation chunks
  kStoreDenseBytes,      // physical bytes in dense-representation chunks
  kStoreSpilledChunks,   // chunks whose bytes currently live in a spill file
  kStoreSpilledBytes,    // serialized on-disk bytes of spilled entries
  kBufferResidentBytes,  // physical bytes the buffer manager counts resident
  kBufferDiskBytes,      // live spill-extent bytes across all spill files
  kNumGaugeIds,
};

/// Fixed-bucket (power-of-two nanoseconds) latency histograms.
enum class HistogramId : uint16_t {
  kPoolTaskSeconds,   // thread-pool task execution time
  kBatchApplySeconds, // wall time of one ViewMaintainer::ApplyBatch
  kServeQuerySeconds, // wall time of one snapshot query evaluation
  kNumHistogramIds,
};

inline constexpr size_t kNumCounters =
    static_cast<size_t>(CounterId::kNumCounterIds);
inline constexpr size_t kNumGauges =
    static_cast<size_t>(GaugeId::kNumGaugeIds);
inline constexpr size_t kNumHistograms =
    static_cast<size_t>(HistogramId::kNumHistogramIds);

/// Dotted export names ("exec.bytes_joined"); stable across a process.
const char* CounterName(CounterId id);
const char* GaugeName(GaugeId id);
const char* HistogramName(HistogramId id);

}  // namespace avm
