#include "telemetry/telemetry.h"

#include <chrono>

namespace avm {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The trace epoch: pinned by the first EnableTelemetry so exported
// timestamps start near zero instead of at machine uptime.
std::atomic<int64_t> g_epoch_ns{0};

}  // namespace

void EnableTelemetry() {
  int64_t expected = 0;
  g_epoch_ns.compare_exchange_strong(expected, SteadyNowNs(),
                                     std::memory_order_relaxed);
  telemetry_internal::g_enabled.store(true, std::memory_order_relaxed);
}

void DisableTelemetry() {
  telemetry_internal::g_enabled.store(false, std::memory_order_relaxed);
}

int64_t TraceNowNs() {
  return SteadyNowNs() - g_epoch_ns.load(std::memory_order_relaxed);
}

const char* CounterName(CounterId id) {
  switch (id) {
    case CounterId::kPlanStage1Candidates: return "plan.stage1.candidates";
    case CounterId::kPlanStage1Accepts: return "plan.stage1.accepts";
    case CounterId::kPlanStage2Candidates: return "plan.stage2.candidates";
    case CounterId::kPlanStage2Accepts: return "plan.stage2.accepts";
    case CounterId::kPlanStage3Candidates: return "plan.stage3.candidates";
    case CounterId::kPlanStage3Accepts: return "plan.stage3.accepts";
    case CounterId::kExecBytesTransferred: return "exec.bytes_transferred";
    case CounterId::kExecBytesJoined: return "exec.bytes_joined";
    case CounterId::kExecJoinsExecuted: return "exec.joins_executed";
    case CounterId::kExecFragmentsMerged: return "exec.fragments_merged";
    case CounterId::kExecDeltaChunksMerged: return "exec.delta_chunks_merged";
    case CounterId::kJoinProbePairs: return "join.probe_pairs";
    case CounterId::kJoinScanPairs: return "join.scan_pairs";
    case CounterId::kJoinInteriorCells: return "join.interior_cells";
    case CounterId::kJoinBoundaryCells: return "join.boundary_cells";
    case CounterId::kJoinProbes: return "join.probes";
    case CounterId::kJoinScannedCells: return "join.scanned_cells";
    case CounterId::kShapeCacheHits: return "shape_cache.hits";
    case CounterId::kShapeCacheMisses: return "shape_cache.misses";
    case CounterId::kStoreChunksAliased: return "store.chunks_aliased";
    case CounterId::kStoreChunksDeepCopied: return "store.chunks_deep_copied";
    case CounterId::kStoreCowBreaks: return "store.cow_breaks";
    case CounterId::kChunkPoolHits: return "chunk_pool.hits";
    case CounterId::kChunkPoolMisses: return "chunk_pool.misses";
    case CounterId::kChunksDensified: return "chunk.densified";
    case CounterId::kChunksSparsified: return "chunk.sparsified";
    case CounterId::kPoolTasksRun: return "pool.tasks_run";
    case CounterId::kBatchesMaintained: return "maint.batches";
    case CounterId::kTraceEventsDropped: return "trace.events_dropped";
    case CounterId::kServeEpochsPublished: return "serve.epochs_published";
    case CounterId::kServeEpochsRetired: return "serve.epochs_retired";
    case CounterId::kServeSnapshotsOpened: return "serve.snapshots_opened";
    case CounterId::kServeQueries: return "serve.queries";
    case CounterId::kBufferEvictions: return "buffer.evictions";
    case CounterId::kBufferReloads: return "buffer.reloads";
    case CounterId::kBufferBytesSpilled: return "buffer.spilled_bytes";
    case CounterId::kBufferBytesReloaded: return "buffer.reloaded_bytes";
    case CounterId::kNumCounterIds: break;
  }
  return "unknown";
}

const char* GaugeName(GaugeId id) {
  switch (id) {
    case GaugeId::kPoolQueueDepth: return "pool.queue_depth";
    case GaugeId::kStoreResidentChunks: return "store.resident_chunks";
    case GaugeId::kStoreResidentBytes: return "store.resident_bytes";
    case GaugeId::kChunkPoolBytes: return "chunk_pool.bytes";
    case GaugeId::kStoreEpochsLive: return "store.epochs_live";
    case GaugeId::kServeSnapshotsOpen: return "serve.snapshots_open";
    case GaugeId::kStoreSparseBytes: return "store.resident_sparse_bytes";
    case GaugeId::kStoreDenseBytes: return "store.resident_dense_bytes";
    case GaugeId::kStoreSpilledChunks: return "store.spilled_chunks";
    case GaugeId::kStoreSpilledBytes: return "store.spilled_bytes";
    case GaugeId::kBufferResidentBytes: return "buffer.resident_bytes";
    case GaugeId::kBufferDiskBytes: return "buffer.disk_bytes";
    case GaugeId::kNumGaugeIds: break;
  }
  return "unknown";
}

const char* HistogramName(HistogramId id) {
  switch (id) {
    case HistogramId::kPoolTaskSeconds: return "pool.task_seconds";
    case HistogramId::kBatchApplySeconds: return "maint.batch_apply_seconds";
    case HistogramId::kServeQuerySeconds: return "serve.query_seconds";
    case HistogramId::kNumHistogramIds: break;
  }
  return "unknown";
}

}  // namespace avm
