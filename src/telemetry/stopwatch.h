#pragma once

#include <chrono>

namespace avm {

/// Simple wall-clock stopwatch for measuring real (not simulated) time, e.g.
/// the planner optimization times reported in Figure 5.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace avm

