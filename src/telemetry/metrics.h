#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "telemetry/telemetry.h"

/// Metrics registry: monotonic counters and latency histograms on a
/// lock-free per-thread-shard fast path, plus a small set of global gauges.
///
/// Sharding model: each recording thread owns one `MetricShard` — plain
/// arrays of relaxed atomics indexed by metric id. The owning thread is the
/// only writer, so increments are single-writer relaxed stores (no CAS, no
/// contention, no false sharing across threads). `Snapshot()` takes the
/// registry mutex and sums relaxed loads across shards; it may miss
/// increments that race with it, which is fine for monitoring (a later
/// snapshot observes them). Shards are never freed: a thread that exits
/// leaves its totals behind, and `ResetForTesting()` zeroes shards in place
/// rather than dropping them so cached thread-local pointers stay valid.
///
/// Gauges are different: multiple threads legitimately move the same gauge
/// (e.g. producer/consumer on the pool queue depth), so they are plain
/// global atomics with fetch_add, not shards.

namespace avm {

/// Histogram buckets are powers of two of nanoseconds: bucket i counts
/// samples in [2^(i-1), 2^i) ns, bucket 0 counts sub-nanosecond samples and
/// the last bucket absorbs everything >= 2^(kNumHistogramBuckets-2) ns
/// (~36 minutes). 40 buckets, fixed, so shards stay flat arrays.
inline constexpr size_t kNumHistogramBuckets = 40;

/// Inclusive upper bound of histogram bucket `bucket`, in seconds.
double HistogramBucketUpperSeconds(size_t bucket);

/// A merged point-in-time view of the registry. Counters and histogram
/// buckets are cumulative since process start (or the last reset); use
/// DeltaSince to scope them to a window, e.g. one maintenance batch.
struct MetricsSnapshot {
  std::array<uint64_t, kNumCounters> counters{};
  std::array<int64_t, kNumGauges> gauges{};
  std::array<std::array<uint64_t, kNumHistogramBuckets>, kNumHistograms>
      histograms{};

  uint64_t counter(CounterId id) const {
    return counters[static_cast<size_t>(id)];
  }
  int64_t gauge(GaugeId id) const { return gauges[static_cast<size_t>(id)]; }
  uint64_t histogram_total(HistogramId id) const;

  /// Counters/histograms become this-minus-base; gauges keep the current
  /// (instantaneous) value.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Fast-path recorders. Callers normally go through the gated free
  /// functions below; calling these directly records even when disabled.
  void Add(CounterId id, uint64_t v);
  void GaugeAdd(GaugeId id, int64_t v);
  void GaugeSet(GaugeId id, int64_t v);
  void Record(HistogramId id, double seconds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes all shards and gauges in place (shards stay registered so
  /// thread-local pointers remain valid). Test-only.
  void ResetForTesting();

  /// Number of thread shards ever registered. The disabled-mode
  /// zero-allocation test asserts this stays 0.
  size_t NumShardsForTesting() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  struct MetricShard {
    std::array<std::atomic<uint64_t>, kNumCounters> counters{};
    std::array<std::array<std::atomic<uint64_t>, kNumHistogramBuckets>,
               kNumHistograms>
        histograms{};
  };

  MetricShard* LocalShard();

  /// Protects shard registration and enumeration only; the shard *contents*
  /// are relaxed atomics written lock-free by their owning threads.
  mutable Mutex mu_{"MetricsRegistry.mu", LockRank::kMetricsRegistry};
  std::vector<std::unique_ptr<MetricShard>> shards_ AVM_GUARDED_BY(mu_);
  std::array<std::atomic<int64_t>, kNumGauges> gauges_{};
};

// Gated fast-path helpers: one relaxed-bool branch when telemetry is off.

inline void CountAdd(CounterId id, uint64_t v = 1) {
  if (!TelemetryEnabled()) return;
  MetricsRegistry::Global().Add(id, v);
}

inline void GaugeAdd(GaugeId id, int64_t v) {
  if (!TelemetryEnabled()) return;
  MetricsRegistry::Global().GaugeAdd(id, v);
}

inline void GaugeSet(GaugeId id, int64_t v) {
  if (!TelemetryEnabled()) return;
  MetricsRegistry::Global().GaugeSet(id, v);
}

inline void HistogramRecord(HistogramId id, double seconds) {
  if (!TelemetryEnabled()) return;
  MetricsRegistry::Global().Record(id, seconds);
}

/// Serializes a snapshot as JSON: {"counters":{...},"gauges":{...},
/// "histograms":{name:{"total":n,"buckets":[[upper_s,count],...]}}}.
/// Zero entries are kept so the schema is stable. Returns false on I/O error.
bool WriteMetricsJson(const MetricsSnapshot& snapshot, const std::string& path);

/// In-memory variant of WriteMetricsJson, for tests and embedding.
std::string MetricsJson(const MetricsSnapshot& snapshot);

}  // namespace avm
