#include "telemetry/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

namespace avm {

namespace {

/// Maps a duration to its power-of-two-nanosecond bucket.
size_t BucketFor(double seconds) {
  if (seconds <= 0.0) return 0;
  const double ns = seconds * 1e9;
  // Saturate instead of overflowing the cast for absurd durations.
  if (ns >= 9e18) return kNumHistogramBuckets - 1;
  const uint64_t n = static_cast<uint64_t>(ns);
  const size_t bucket = static_cast<size_t>(std::bit_width(n));
  return bucket < kNumHistogramBuckets ? bucket : kNumHistogramBuckets - 1;
}

void AppendJsonKey(std::string* out, const char* name) {
  out->push_back('"');
  out->append(name);  // metric names are literals, never need escaping
  out->append("\":");
}

}  // namespace

double HistogramBucketUpperSeconds(size_t bucket) {
  if (bucket == 0) return 1e-9;
  return static_cast<double>(uint64_t{1} << bucket) * 1e-9;
}

uint64_t MetricsSnapshot::histogram_total(HistogramId id) const {
  uint64_t total = 0;
  for (uint64_t count : histograms[static_cast<size_t>(id)]) total += count;
  return total;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& base) const {
  MetricsSnapshot delta;
  for (size_t i = 0; i < kNumCounters; ++i) {
    delta.counters[i] = counters[i] - base.counters[i];
  }
  delta.gauges = gauges;
  for (size_t h = 0; h < kNumHistograms; ++h) {
    for (size_t b = 0; b < kNumHistogramBuckets; ++b) {
      delta.histograms[h][b] = histograms[h][b] - base.histograms[h][b];
    }
  }
  return delta;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricShard* MetricsRegistry::LocalShard() {
  // Owned by the registry, cached per thread. Shards are zeroed, never
  // freed, so the cached pointer cannot dangle.
  thread_local MetricShard* shard = nullptr;
  if (shard == nullptr) {
    auto owned = std::make_unique<MetricShard>();
    shard = owned.get();
    MutexLock lock(mu_);
    shards_.push_back(std::move(owned));
  }
  return shard;
}

void MetricsRegistry::Add(CounterId id, uint64_t v) {
  std::atomic<uint64_t>& slot = LocalShard()->counters[static_cast<size_t>(id)];
  // Single-writer slot: a relaxed load+store pair is enough (and cheaper
  // than fetch_add on some targets); Snapshot only needs eventual totals.
  slot.store(slot.load(std::memory_order_relaxed) + v,
             std::memory_order_relaxed);
}

void MetricsRegistry::GaugeAdd(GaugeId id, int64_t v) {
  gauges_[static_cast<size_t>(id)].fetch_add(v, std::memory_order_relaxed);
}

void MetricsRegistry::GaugeSet(GaugeId id, int64_t v) {
  gauges_[static_cast<size_t>(id)].store(v, std::memory_order_relaxed);
}

void MetricsRegistry::Record(HistogramId id, double seconds) {
  std::atomic<uint64_t>& slot =
      LocalShard()->histograms[static_cast<size_t>(id)][BucketFor(seconds)];
  slot.store(slot.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mu_);
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < kNumCounters; ++i) {
      snapshot.counters[i] +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (size_t h = 0; h < kNumHistograms; ++h) {
      for (size_t b = 0; b < kNumHistogramBuckets; ++b) {
        snapshot.histograms[h][b] +=
            shard->histograms[h][b].load(std::memory_order_relaxed);
      }
    }
  }
  for (size_t g = 0; g < kNumGauges; ++g) {
    snapshot.gauges[g] = gauges_[g].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void MetricsRegistry::ResetForTesting() {
  MutexLock lock(mu_);
  for (auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& hist : shard->histograms) {
      for (auto& b : hist) b.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
}

size_t MetricsRegistry::NumShardsForTesting() const {
  MutexLock lock(mu_);
  return shards_.size();
}

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  char buf[64];
  out.append("{\n  \"counters\": {");
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (i != 0) out.push_back(',');
    out.append("\n    ");
    AppendJsonKey(&out, CounterName(static_cast<CounterId>(i)));
    std::snprintf(buf, sizeof(buf), "%" PRIu64, snapshot.counters[i]);
    out.append(buf);
  }
  out.append("\n  },\n  \"gauges\": {");
  for (size_t g = 0; g < kNumGauges; ++g) {
    if (g != 0) out.push_back(',');
    out.append("\n    ");
    AppendJsonKey(&out, GaugeName(static_cast<GaugeId>(g)));
    std::snprintf(buf, sizeof(buf), "%" PRId64, snapshot.gauges[g]);
    out.append(buf);
  }
  out.append("\n  },\n  \"histograms\": {");
  for (size_t h = 0; h < kNumHistograms; ++h) {
    const HistogramId id = static_cast<HistogramId>(h);
    if (h != 0) out.push_back(',');
    out.append("\n    ");
    AppendJsonKey(&out, HistogramName(id));
    std::snprintf(buf, sizeof(buf), "{\"total\": %" PRIu64 ", \"buckets\": [",
                  snapshot.histogram_total(id));
    out.append(buf);
    bool first = true;
    for (size_t b = 0; b < kNumHistogramBuckets; ++b) {
      const uint64_t count = snapshot.histograms[h][b];
      if (count == 0) continue;  // buckets are sparse in practice
      if (!first) out.append(", ");
      first = false;
      std::snprintf(buf, sizeof(buf), "[%.9g, %" PRIu64 "]",
                    HistogramBucketUpperSeconds(b), count);
      out.append(buf);
    }
    out.append("]}");
  }
  out.append("\n  }\n}\n");
  return out;
}

bool WriteMetricsJson(const MetricsSnapshot& snapshot,
                      const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = MetricsJson(snapshot);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace avm
