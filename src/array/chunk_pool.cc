#include "array/chunk_pool.h"

#include <utility>
#include <vector>

#include "common/mutex.h"
#include "telemetry/metrics.h"

namespace avm {

namespace {

/// Bounds keep parked memory modest: a shard serves one thread's working set
/// of fragment chunks per batch; the overflow absorbs the control thread's
/// post-merge releases until worker threads drain it on the next batch.
constexpr size_t kLocalCapacity = 16;
constexpr size_t kOverflowCapacity = 256;

struct LocalShard {
  std::vector<Chunk> chunks;

  ~LocalShard() {
    // A thread exiting with parked chunks frees them here; keep the gauge
    // honest.
    int64_t bytes = 0;
    for (const Chunk& c : chunks) {
      bytes += static_cast<int64_t>(c.CapacityBytes());
    }
    if (bytes != 0) GaugeAdd(GaugeId::kChunkPoolBytes, -bytes);
  }
};

LocalShard& Local() {
  thread_local LocalShard shard;
  return shard;
}

struct Overflow {
  Mutex mu{"ChunkPool.overflow", LockRank::kChunkPool};
  std::vector<Chunk> chunks AVM_GUARDED_BY(mu);
};

Overflow& GlobalOverflow() {
  static Overflow* overflow = new Overflow();
  return *overflow;
}

}  // namespace

Chunk ChunkPool::Acquire(size_t num_dims, size_t num_attrs) {
  LocalShard& shard = Local();
  if (shard.chunks.empty()) {
    Overflow& overflow = GlobalOverflow();
    MutexLock lock(overflow.mu);
    if (!overflow.chunks.empty()) {
      shard.chunks.push_back(std::move(overflow.chunks.back()));
      overflow.chunks.pop_back();
    }
  }
  if (shard.chunks.empty()) {
    CountAdd(CounterId::kChunkPoolMisses);
    return Chunk(num_dims, num_attrs);
  }
  Chunk chunk = std::move(shard.chunks.back());
  shard.chunks.pop_back();
  CountAdd(CounterId::kChunkPoolHits);
  GaugeAdd(GaugeId::kChunkPoolBytes,
           -static_cast<int64_t>(chunk.CapacityBytes()));
  chunk.ClearAndRelayout(num_dims, num_attrs);
  return chunk;
}

void ChunkPool::Release(Chunk&& chunk) {
  chunk.ClearAndRelayout(chunk.num_dims(), chunk.num_attrs());
  const int64_t bytes = static_cast<int64_t>(chunk.CapacityBytes());
  LocalShard& shard = Local();
  if (shard.chunks.size() < kLocalCapacity) {
    shard.chunks.push_back(std::move(chunk));
    GaugeAdd(GaugeId::kChunkPoolBytes, bytes);
    return;
  }
  Overflow& overflow = GlobalOverflow();
  MutexLock lock(overflow.mu);
  if (overflow.chunks.size() < kOverflowCapacity) {
    overflow.chunks.push_back(std::move(chunk));
    GaugeAdd(GaugeId::kChunkPoolBytes, bytes);
  }
  // else: both tiers full; the chunk dies here and its memory returns to
  // the allocator.
}

size_t ChunkPool::LocalFreeForTesting() { return Local().chunks.size(); }

void ChunkPool::DrainForTesting() {
  LocalShard& shard = Local();
  int64_t bytes = 0;
  for (const Chunk& c : shard.chunks) {
    bytes += static_cast<int64_t>(c.CapacityBytes());
  }
  shard.chunks.clear();
  Overflow& overflow = GlobalOverflow();
  MutexLock lock(overflow.mu);
  for (const Chunk& c : overflow.chunks) {
    bytes += static_cast<int64_t>(c.CapacityBytes());
  }
  overflow.chunks.clear();
  if (bytes != 0) GaugeAdd(GaugeId::kChunkPoolBytes, -bytes);
}

}  // namespace avm
