#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "array/chunk.h"
#include "array/chunk_grid.h"
#include "array/coords.h"
#include "array/schema.h"
#include "common/result.h"

namespace avm {

/// A single-node sparse multi-dimensional array: a schema, its regular chunk
/// grid, and the set of non-empty chunks. This is the local building block;
/// the distributed form (chunks spread across cluster nodes) lives in
/// storage/distributed_array.h.
///
/// Chunks are keyed by ChunkId in an ordered map so that iteration order is
/// deterministic (row-major over the chunk grid).
class SparseArray {
 public:
  explicit SparseArray(ArraySchema schema)
      : schema_(std::move(schema)), grid_(schema_) {}

  SparseArray(const SparseArray&) = delete;
  SparseArray& operator=(const SparseArray&) = delete;
  SparseArray(SparseArray&&) = default;
  SparseArray& operator=(SparseArray&&) = default;

  const ArraySchema& schema() const { return schema_; }
  const ChunkGrid& grid() const { return grid_; }

  /// Inserts or overwrites the cell at `coord`. Fails with OutOfRange if the
  /// coordinate is outside the dimension ranges or has wrong arity.
  Status Set(const CellCoord& coord, std::span<const double> values);

  /// Adds values element-wise into the cell (creating it zero-initialized
  /// first if absent).
  Status Accumulate(const CellCoord& coord, std::span<const double> values);

  /// Removes the cell; true if it existed.
  bool Erase(const CellCoord& coord);

  /// Attribute values at `coord`, or NotFound. The pointer is invalidated by
  /// mutation.
  Result<const double*> Get(const CellCoord& coord) const;

  bool Has(const CellCoord& coord) const;

  /// Total non-empty cells across all chunks.
  uint64_t NumCells() const;

  /// Number of non-empty chunks.
  size_t NumChunks() const { return chunks_.size(); }

  /// Total footprint in bytes (sum of chunk sizes).
  uint64_t SizeBytes() const;

  /// The chunk at `id`, or nullptr if empty/absent.
  const Chunk* GetChunk(ChunkId id) const;
  Chunk* GetMutableChunk(ChunkId id);

  /// Returns the chunk at `id`, creating it empty if absent.
  Chunk& GetOrCreateChunk(ChunkId id);

  /// Ids of all non-empty chunks, ascending.
  std::vector<ChunkId> ChunkIds() const;

  /// Invokes fn(id, chunk) for every non-empty chunk, ascending by id.
  void ForEachChunk(
      const std::function<void(ChunkId, const Chunk&)>& fn) const;

  /// Invokes fn(coord, values) for every cell, chunk-by-chunk. The template
  /// lets lambdas inline into the per-cell loop; the std::function overload
  /// keeps type-erased callers (and out-of-line code) working unchanged.
  template <typename Fn>
  void ForEachCell(Fn&& fn) const {
    for (const auto& [id, chunk] : chunks_) chunk.ForEachCell(fn);
  }
  void ForEachCell(
      const std::function<void(std::span<const int64_t>,
                               std::span<const double>)>& fn) const {
    ForEachCell<decltype(fn)>(fn);
  }

  /// Deep copy (schemas are value types; chunk data is duplicated).
  SparseArray Clone() const;

  /// Exact content equality with optional per-value tolerance.
  bool ContentEquals(const SparseArray& other, double tolerance = 0.0) const;

  /// Debug structural validator: the grid's geometry invariants hold, every
  /// chunk id is a valid grid slot, every chunk matches the schema's layout,
  /// and each chunk passes its own index/geometry contract (cells inside
  /// the chunk box, offsets consistent with the grid linearization).
  /// Violations fire AVM_CHECK; O(total cells).
  void CheckInvariants() const;

 private:
  ArraySchema schema_;
  ChunkGrid grid_;
  std::map<ChunkId, Chunk> chunks_;
};

}  // namespace avm

