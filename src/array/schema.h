#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace avm {

/// Declared type of an array attribute. Attribute values are stored as
/// doubles internally (sufficient for the statistics the paper computes);
/// the declared type controls formatting and validation only.
enum class AttributeType { kInt64, kDouble };

/// One named attribute of an array cell, e.g. <bright:double>.
struct Attribute {
  std::string name;
  AttributeType type = AttributeType::kDouble;
};

/// One dimension of an array in the paper's AQL notation
/// `[name = lo, hi, chunk_extent]`: a finite ordered integer range
/// partitioned into regular chunks of `chunk_extent` indices each.
struct DimensionSpec {
  std::string name;
  int64_t lo = 1;
  int64_t hi = 1;
  int64_t chunk_extent = 1;

  /// Number of valid indices (hi - lo + 1).
  int64_t Extent() const { return hi - lo + 1; }
  /// Number of chunks along this dimension.
  int64_t NumChunks() const {
    return (Extent() + chunk_extent - 1) / chunk_extent;
  }
};

/// Schema of a multi-dimensional array: an ordered list of dimensions and a
/// list of attributes, as in
/// `A<r:int,s:int>[i=1,6,2; j=1,8,2]` (Figure 1 of the paper).
class ArraySchema {
 public:
  ArraySchema() = default;
  ArraySchema(std::string name, std::vector<DimensionSpec> dims,
              std::vector<Attribute> attrs)
      : name_(std::move(name)),
        dims_(std::move(dims)),
        attrs_(std::move(attrs)) {}

  /// Validates and constructs a schema: at least one dimension, positive
  /// chunk extents, lo <= hi, unique non-empty names.
  static Result<ArraySchema> Create(std::string name,
                                    std::vector<DimensionSpec> dims,
                                    std::vector<Attribute> attrs);

  const std::string& name() const { return name_; }
  const std::vector<DimensionSpec>& dims() const { return dims_; }
  const std::vector<Attribute>& attrs() const { return attrs_; }
  size_t num_dims() const { return dims_.size(); }
  size_t num_attrs() const { return attrs_.size(); }

  /// Index of the attribute named `name`, or NotFound.
  Result<size_t> AttributeIndex(const std::string& name) const;
  /// Index of the dimension named `name`, or NotFound.
  Result<size_t> DimensionIndex(const std::string& name) const;

  /// Bytes occupied by one materialized cell: coordinates + attribute values,
  /// 8 bytes each. This feeds the cost model's chunk sizes B_q.
  size_t CellBytes() const { return 8 * (num_dims() + num_attrs()); }

  /// True if the coordinate lies inside every dimension range.
  bool ContainsCoord(const std::vector<int64_t>& coord) const;

  /// AQL-style rendering, e.g. "A<r:double>[i=1,6,2;j=1,8,2]".
  std::string ToString() const;

  /// Schemas are equal when dimensions and attributes match structurally
  /// (names, ranges, chunking); the array name is ignored.
  bool StructurallyEquals(const ArraySchema& other) const;

 private:
  std::string name_;
  std::vector<DimensionSpec> dims_;
  std::vector<Attribute> attrs_;
};

}  // namespace avm

