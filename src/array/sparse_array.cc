#include "array/sparse_array.h"

#include "common/check.h"
#include "common/string_util.h"

namespace avm {

Status SparseArray::Set(const CellCoord& coord,
                        std::span<const double> values) {
  if (!schema_.ContainsCoord(coord)) {
    return Status::OutOfRange("coordinate " + VecToString(coord) +
                              " outside array " + schema_.name());
  }
  if (values.size() != schema_.num_attrs()) {
    return Status::InvalidArgument("expected " +
                                   std::to_string(schema_.num_attrs()) +
                                   " attribute values");
  }
  const ChunkId id = grid_.IdOfCell(coord);
  Chunk& chunk = GetOrCreateChunk(id);
  chunk.UpsertCell(grid_.InChunkOffset(coord), coord, values);
  chunk.MaybeAdaptRepresentation(grid_, id);
  return Status::OK();
}

Status SparseArray::Accumulate(const CellCoord& coord,
                               std::span<const double> values) {
  if (!schema_.ContainsCoord(coord)) {
    return Status::OutOfRange("coordinate " + VecToString(coord) +
                              " outside array " + schema_.name());
  }
  if (values.size() != schema_.num_attrs()) {
    return Status::InvalidArgument("expected " +
                                   std::to_string(schema_.num_attrs()) +
                                   " attribute values");
  }
  const ChunkId id = grid_.IdOfCell(coord);
  Chunk& chunk = GetOrCreateChunk(id);
  chunk.AccumulateCell(grid_.InChunkOffset(coord), coord, values);
  chunk.MaybeAdaptRepresentation(grid_, id);
  return Status::OK();
}

bool SparseArray::Erase(const CellCoord& coord) {
  if (!schema_.ContainsCoord(coord)) return false;
  const ChunkId id = grid_.IdOfCell(coord);
  auto it = chunks_.find(id);
  if (it == chunks_.end()) return false;
  const bool erased = it->second.EraseCell(grid_.InChunkOffset(coord));
  if (erased) {
    if (it->second.empty()) {
      chunks_.erase(it);
    } else {
      it->second.MaybeAdaptRepresentation(grid_, id);
    }
  }
  return erased;
}

Result<const double*> SparseArray::Get(const CellCoord& coord) const {
  if (!schema_.ContainsCoord(coord)) {
    return Status::OutOfRange("coordinate " + VecToString(coord) +
                              " outside array " + schema_.name());
  }
  const Chunk* chunk = GetChunk(grid_.IdOfCell(coord));
  if (chunk == nullptr) {
    return Status::NotFound("empty cell at " + VecToString(coord));
  }
  const double* values = chunk->GetCell(grid_.InChunkOffset(coord));
  if (values == nullptr) {
    return Status::NotFound("empty cell at " + VecToString(coord));
  }
  return values;
}

bool SparseArray::Has(const CellCoord& coord) const {
  if (!schema_.ContainsCoord(coord)) return false;
  const Chunk* chunk = GetChunk(grid_.IdOfCell(coord));
  return chunk != nullptr && chunk->HasCell(grid_.InChunkOffset(coord));
}

uint64_t SparseArray::NumCells() const {
  uint64_t n = 0;
  for (const auto& [id, chunk] : chunks_) n += chunk.num_cells();
  return n;
}

uint64_t SparseArray::SizeBytes() const {
  uint64_t n = 0;
  for (const auto& [id, chunk] : chunks_) n += chunk.SizeBytes();
  return n;
}

const Chunk* SparseArray::GetChunk(ChunkId id) const {
  auto it = chunks_.find(id);
  return it == chunks_.end() ? nullptr : &it->second;
}

Chunk* SparseArray::GetMutableChunk(ChunkId id) {
  auto it = chunks_.find(id);
  return it == chunks_.end() ? nullptr : &it->second;
}

Chunk& SparseArray::GetOrCreateChunk(ChunkId id) {
  auto it = chunks_.find(id);
  if (it == chunks_.end()) {
    it = chunks_
             .emplace(id, Chunk(schema_.num_dims(), schema_.num_attrs()))
             .first;
  }
  return it->second;
}

std::vector<ChunkId> SparseArray::ChunkIds() const {
  std::vector<ChunkId> ids;
  ids.reserve(chunks_.size());
  for (const auto& [id, chunk] : chunks_) ids.push_back(id);
  return ids;
}

void SparseArray::ForEachChunk(
    const std::function<void(ChunkId, const Chunk&)>& fn) const {
  for (const auto& [id, chunk] : chunks_) fn(id, chunk);
}

SparseArray SparseArray::Clone() const {
  SparseArray copy(schema_);
  copy.chunks_ = chunks_;
  return copy;
}

void SparseArray::CheckInvariants() const {
  grid_.CheckInvariants();
  for (const auto& [id, chunk] : chunks_) {
    AVM_CHECK_LT(id, static_cast<ChunkId>(grid_.TotalChunkSlots()))
        << "chunk id outside the grid of array " << schema_.name();
    AVM_CHECK_EQ(chunk.num_dims(), schema_.num_dims())
        << "chunk dimensionality disagrees with the schema";
    AVM_CHECK_EQ(chunk.num_attrs(), schema_.num_attrs())
        << "chunk attribute count disagrees with the schema";
    chunk.CheckInvariants(&grid_, id);
  }
}

bool SparseArray::ContentEquals(const SparseArray& other,
                                double tolerance) const {
  if (chunks_.size() != other.chunks_.size()) return false;
  for (const auto& [id, chunk] : chunks_) {
    const Chunk* theirs = other.GetChunk(id);
    if (theirs == nullptr || !chunk.ContentEquals(*theirs, tolerance)) {
      return false;
    }
  }
  return true;
}

}  // namespace avm
