#pragma once

#include <cstddef>

#include "array/chunk.h"

namespace avm {

/// Free list of emptied Chunks with retained buffer capacity, so steady-state
/// maintenance batches build their scratch fragments into memory previous
/// batches already allocated instead of hitting the allocator per chunk.
///
/// Structure: a per-thread shard (lock-free, the fast path for the parallel
/// join phase, which acquires fragments on pool worker threads) backed by a
/// small mutex-protected global overflow list. The overflow is what closes
/// the producer/consumer loop: fragments are acquired on worker threads but
/// released after the serial merge on the control thread, so without a
/// shared tier the workers' shards would never refill.
///
/// Pooled chunks are always empty (Release clears them); Acquire re-layouts
/// for the requested dimensionality/attribute count, so a pooled chunk is
/// indistinguishable from a fresh one except for its retained capacity.
/// Telemetry: chunk_pool.hits / chunk_pool.misses counters and the
/// chunk_pool.bytes gauge (capacity parked across all shards).
class ChunkPool {
 public:
  /// A cleared chunk with the given layout; reuses pooled capacity when any
  /// is available (local shard first, then the global overflow).
  static Chunk Acquire(size_t num_dims, size_t num_attrs);

  /// Returns a chunk to the pool: cleared in place, capacity retained. When
  /// both the local shard and the overflow are full the chunk is simply
  /// destroyed — the pool bounds parked memory, it does not grow unbounded.
  static void Release(Chunk&& chunk);

  /// Chunks parked in this thread's shard (not counting the overflow).
  static size_t LocalFreeForTesting();

  /// Frees every pooled chunk reachable from this thread: the local shard
  /// and the global overflow. Other threads' shards are untouched.
  static void DrainForTesting();

  ChunkPool() = delete;
};

}  // namespace avm
