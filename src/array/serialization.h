#pragma once

#include <iosfwd>
#include <string>

#include "array/sparse_array.h"
#include "common/result.h"

namespace avm {

/// Binary persistence for sparse arrays: schema (dimensions with ranges and
/// chunk extents, attributes with types) followed by the chunk data. The
/// format is versioned and self-describing, so a saved catalog or view can
/// be reloaded without external metadata. Integers are written
/// little-endian, fixed-width; doubles as their IEEE-754 bits.
///
/// Three on-disk versions exist:
///  - AVMARR01 (legacy): per-cell interleaved coord/values stream. Still
///    readable; no longer written.
///  - AVMARR02 (legacy): per chunk, the three sparse row buffers
///    (offsets/coords/values) each as one length-prefixed bulk block, so
///    save and load are a handful of large stream operations per chunk
///    instead of one formatted read/write per value. Still readable.
///  - AVMARR03 (current): v2's chunk stream plus a per-chunk representation
///    tag. A sparse chunk writes the three row blocks as in v2; a dense
///    chunk writes its slot volume, validity bitmap, and value lanes as
///    bulk blocks (the chunk box is derived from the grid at load time,
///    never trusted from the file). Loading restores each chunk in its
///    stored representation — a dense chunk comes back dense without a
///    re-densification pass.
///
/// This is single-array, single-file persistence for checkpointing and data
/// exchange — distributed on-disk chunk storage is out of scope (the
/// simulated cluster keeps chunks in memory).

/// Writes `array` to the stream in the current (AVMARR03) format. The
/// stream must be binary.
Status SaveArray(const SparseArray& array, std::ostream& out);

/// Writes `array` in the legacy AVMARR01 per-cell format. Kept so the
/// backward-compat read path stays testable; new code uses SaveArray.
Status SaveArrayV1(const SparseArray& array, std::ostream& out);

/// Writes `array` in the legacy AVMARR02 sparse-rows format (dense chunks
/// are materialized as row buffers in ascending offset order). Kept so the
/// backward-compat read path stays testable; new code uses SaveArray.
Status SaveArrayV2(const SparseArray& array, std::ostream& out);

/// Reads an array previously written by SaveArray (any version). Fails
/// with InvalidArgument on a bad magic/version or structurally corrupt
/// contents and with Internal on truncation.
Result<SparseArray> LoadArray(std::istream& in);

/// File-path convenience wrappers.
Status SaveArrayToFile(const SparseArray& array, const std::string& path);
Result<SparseArray> LoadArrayFromFile(const std::string& path);

/// Single-chunk spill persistence (AVMCHK01): a self-describing section —
/// magic, dimensionality, attribute count, representation tag — followed by
/// the same bulk blocks AVMARR03 writes per chunk. Unlike the array format,
/// a dense section stores its own box origin and extents, because a spilled
/// chunk is reloaded without a grid in hand. Structural invariants are
/// re-validated on load (AdoptRows/AdoptDense reject inconsistent buffers);
/// geometry against a grid remains the caller's check, exactly as it was
/// when the chunk first entered its store. This is the buffer manager's
/// spill format (src/buffer).
Status SaveChunk(const Chunk& chunk, std::ostream& out);
Result<Chunk> LoadChunk(std::istream& in);

}  // namespace avm

