#pragma once

#include <iosfwd>
#include <string>

#include "array/sparse_array.h"
#include "common/result.h"

namespace avm {

/// Binary persistence for sparse arrays: schema (dimensions with ranges and
/// chunk extents, attributes with types) followed by the non-empty chunks'
/// cells. The format is versioned and self-describing, so a saved catalog
/// or view can be reloaded without external metadata. Integers are written
/// little-endian, fixed-width; doubles as their IEEE-754 bits.
///
/// This is single-array, single-file persistence for checkpointing and data
/// exchange — distributed on-disk chunk storage is out of scope (the
/// simulated cluster keeps chunks in memory).

/// Writes `array` to the stream. The stream must be binary.
Status SaveArray(const SparseArray& array, std::ostream& out);

/// Reads an array previously written by SaveArray. Fails with
/// InvalidArgument on a bad magic/version and with Internal on truncation.
Result<SparseArray> LoadArray(std::istream& in);

/// File-path convenience wrappers.
Status SaveArrayToFile(const SparseArray& array, const std::string& path);
Result<SparseArray> LoadArrayFromFile(const std::string& path);

}  // namespace avm

