#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "array/coords.h"
#include "array/schema.h"

namespace avm {

/// Regular-chunking geometry for an array schema: maps cells to chunks,
/// linearizes chunk positions into dense ChunkIds (row-major over the chunk
/// grid), and enumerates the chunks overlapping a coordinate box. All methods
/// are pure metadata computations — no cell data is touched — which is what
/// lets the maintenance planners run on the catalog alone (Section 4 of the
/// paper).
class ChunkGrid {
 public:
  ChunkGrid() = default;
  explicit ChunkGrid(const ArraySchema& schema);

  size_t num_dims() const { return lo_.size(); }

  /// Total number of chunk slots on the grid (empty chunks included).
  int64_t TotalChunkSlots() const { return total_slots_; }

  /// Chunk position containing the cell `coord`. Requires the coordinate to
  /// lie in the schema's ranges.
  ChunkPos PosOfCell(const CellCoord& coord) const;

  /// ChunkId of the chunk containing `coord`.
  ChunkId IdOfCell(const CellCoord& coord) const {
    return IdOfPos(PosOfCell(coord));
  }

  /// Row-major linearization of a chunk position.
  ChunkId IdOfPos(const ChunkPos& pos) const;

  /// Inverse of IdOfPos.
  ChunkPos PosOfId(ChunkId id) const;

  /// Inclusive cell-coordinate box covered by the chunk at `pos`, clipped to
  /// the array's dimension ranges.
  Box ChunkBox(const ChunkPos& pos) const;
  Box ChunkBoxOfId(ChunkId id) const { return ChunkBox(PosOfId(id)); }

  /// In-chunk row-major offset of `coord` within its chunk; the key used by
  /// Chunk's cell index.
  uint64_t InChunkOffset(const CellCoord& coord) const;

  /// The (ChunkId, in-chunk offset) pair addressing one cell.
  struct CellSlot {
    ChunkId id = 0;
    uint64_t offset = 0;
  };

  /// Computes IdOfCell and InChunkOffset together in one pass — a single
  /// division per dimension instead of a divide in PosOfCell plus a modulo
  /// in InChunkOffset. The addressing step of the join kernel's fragment
  /// accumulation.
  CellSlot SlotOfCell(const CellCoord& coord) const;

  /// Invokes `fn` for every chunk position whose box intersects `box`
  /// (clipped to the array's ranges). The workhorse of shape-based chunk-pair
  /// enumeration.
  void ForEachChunkOverlapping(const Box& box,
                               const std::function<void(ChunkId)>& fn) const;

  /// Number of chunks along dimension `d`.
  int64_t ChunksInDim(size_t d) const { return chunks_in_dim_[d]; }

  /// True when the two grids chunk the same coordinate space identically
  /// (same ranges and extents) — the precondition for exact chunk-footprint
  /// enumeration.
  bool GeometryEquals(const ChunkGrid& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ && extent_ == other.extent_;
  }

  /// Per-dimension chunk extents.
  const std::vector<int64_t>& extents() const { return extent_; }

  /// Debug structural validator: the per-dimension vectors agree in length,
  /// every range is non-empty with a positive chunk extent, the chunk counts
  /// are the ceil-divided range sizes, and `TotalChunkSlots()` is their
  /// product. Violations fire AVM_CHECK; O(dims).
  void CheckInvariants() const;

 private:
  std::vector<int64_t> lo_;            // per-dim range start
  std::vector<int64_t> hi_;            // per-dim range end
  std::vector<int64_t> extent_;        // per-dim chunk extent
  std::vector<int64_t> chunks_in_dim_; // per-dim chunk count
  int64_t total_slots_ = 0;
};

}  // namespace avm

