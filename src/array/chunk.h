#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "array/coords.h"
#include "array/offset_index.h"
#include "common/check.h"
#include "common/status.h"

namespace avm {

class ChunkGrid;
struct ChunkTestPeer;

/// The two physical layouts a Chunk can hold its cells in. Logical content
/// (the set of (offset, coord, values) cells) is representation-independent;
/// every public cell operation dispatches on the active layout.
enum class ChunkRep : uint8_t {
  /// Coordinate list: structure-of-rows buffers plus an open-addressing
  /// offset index. Compact at low density, O(1) point ops.
  kSparse,
  /// Cell-indexed flat buffer: one value-lane slot per cell of the chunk
  /// box plus a validity bitmap. The in-chunk offset *is* the slot index,
  /// so a probe is a bit test and an array load — no hashing — and the
  /// join kernel's interior fast path becomes a pure stride pattern.
  kDense,
};

/// Process-wide densification policy. kAuto applies the hysteresis
/// thresholds below; the forced modes pin every chunk that passes through
/// MaybeAdaptRepresentation to one layout, for representation A/B
/// measurement (bench) and differential testing. Not for production tuning.
enum class DensificationMode : uint8_t { kAuto, kForceSparse, kForceDense };

namespace chunk_internal {
inline std::atomic<DensificationMode> g_densification_mode{
    DensificationMode::kAuto};
}  // namespace chunk_internal

inline DensificationMode GetDensificationMode() {
  return chunk_internal::g_densification_mode.load(std::memory_order_relaxed);
}
inline void SetDensificationMode(DensificationMode mode) {
  chunk_internal::g_densification_mode.store(mode, std::memory_order_relaxed);
}

/// Hysteresis band of the auto policy, in cells per chunk-box slot.
///
/// The physical-bytes crossover sits far lower (a dense slot costs
/// 8·num_attrs + 1/8 bytes against ~8·(1 + num_dims + num_attrs) plus index
/// overhead per sparse cell, i.e. ~0.18 occupancy for 2-D single-attribute
/// chunks), and the measured dense-probe advantage (see
/// kDenseProbeCostPerOffset in join/join_kernel.h and the bench's dense
/// calibration configs) already pays off by ~0.3. Densify is set above both
/// so conversion only happens when the dense win is decisive; the sparsify
/// floor sits well below it so a chunk oscillating around one threshold
/// never thrashes between layouts (deletion batches must drop density by
/// >2x before the conversion is undone).
inline constexpr double kDensifyDensity = 0.45;
inline constexpr double kSparsifyDensity = 0.20;

/// Upper bound on dense slots per chunk (64 Mi lanes at one attribute ==
/// 512 MiB). Under the auto policy the bound is unreachable (densify
/// requires cells >= 0.45·volume), but kForceDense would otherwise let a
/// single cell in a huge chunk allocate its whole box.
inline constexpr uint64_t kMaxDenseVolume = uint64_t{1} << 26;

/// Borrowed read-only view of a dense chunk's buffers, for kernels that
/// stride over the lanes directly (join interior fast path). Invalidated by
/// any mutation or representation change.
struct DenseChunkView {
  const uint64_t* bitmap = nullptr;  // ceil(volume/64) words, slot-indexed
  const double* lanes = nullptr;     // volume x num_attrs, invalid slots 0.0
  const int64_t* origin = nullptr;   // chunk box lo, num_dims entries
  const int64_t* extents = nullptr;  // chunk extents, num_dims entries
  uint64_t volume = 0;               // product of extents
};

/// Storage for one chunk: the non-empty cells of one axis-aligned tile of
/// the array, held in one of two physical representations (see ChunkRep).
/// The sparse layout stores cells structure-of-rows — a flat coordinate
/// buffer plus a flat attribute-value buffer — with a flat open-addressing
/// index from the in-chunk offset to the row. The dense layout stores one
/// slot per cell of the chunk box, indexed directly by the in-chunk offset,
/// with a validity bitmap; vacant slots keep their value lanes zeroed (an
/// invariant the vectorized join kernel relies on).
///
/// A Chunk is the unit of storage, transfer, and join computation, matching
/// the paper's chunk-granularity processing model. `SizeBytes()` is the
/// quantity `B_q` that the cost model charges for transfers and joins; it is
/// a pure function of the logical content, so plans and simulated clocks are
/// representation-independent (PhysicalSizeBytes reports the actual
/// footprint).
class Chunk {
 public:
  /// Creates an empty (sparse) chunk for cells of the given dimensionality
  /// and attribute count.
  Chunk(size_t num_dims, size_t num_attrs)
      : num_dims_(num_dims), num_attrs_(num_attrs) {}

  size_t num_dims() const { return num_dims_; }
  size_t num_attrs() const { return num_attrs_; }
  ChunkRep rep() const { return rep_; }
  size_t num_cells() const {
    return rep_ == ChunkRep::kSparse ? index_.size() : dense_cells_;
  }
  bool empty() const { return num_cells() == 0; }

  /// Pre-sizes the sparse row buffers and the offset index for `cells`
  /// cells, so bulk loads (deserialization, fragment merges, delta upserts)
  /// allocate and rehash once instead of per cell. No-op on a dense chunk
  /// (its buffers are already fully sized).
  void Reserve(size_t cells);

  /// Empties the chunk, reverts it to the sparse representation, and
  /// re-layouts it for the given dimensionality and attribute count, keeping
  /// every buffer's capacity. This is what makes a pooled chunk free to
  /// reuse: the next fill appends into memory the previous batch already
  /// paid to allocate.
  void ClearAndRelayout(size_t num_dims, size_t num_attrs);

  /// Bytes of buffer capacity currently held (row buffers, the offset index
  /// table, and any dense bitmap/lane capacity) — the quantity a pool of
  /// emptied chunks keeps parked.
  uint64_t CapacityBytes() const {
    return offsets_.capacity() * sizeof(uint64_t) +
           coords_.capacity() * sizeof(int64_t) +
           values_.capacity() * sizeof(double) + index_.CapacityBytes() +
           bitmap_.capacity() * sizeof(uint64_t) +
           lanes_.capacity() * sizeof(double) +
           (dense_origin_.capacity() + dense_extents_.capacity()) *
               sizeof(int64_t);
  }

  /// Replaces the chunk's contents with pre-assembled sparse row buffers in
  /// one move: `offsets` holds one in-chunk offset per row, `coords`
  /// num_dims components per row, `values` num_attrs slots per row. The
  /// offset index is rebuilt with a single reserve, and the chunk ends up
  /// sparse regardless of its previous representation. Fails on
  /// inconsistent buffer lengths or duplicate offsets (the bulk-
  /// deserialization entry point must reject corrupt input instead of
  /// corrupting the index).
  Status AdoptRows(std::vector<uint64_t> offsets, std::vector<int64_t> coords,
                   std::vector<double> values);

  /// Replaces the chunk's contents with a pre-assembled dense block:
  /// `origin`/`extents` describe the chunk box (num_dims entries each),
  /// `bitmap` holds ceil(volume/64) validity words and `lanes`
  /// volume·num_attrs values. Fails — without modifying the chunk — on
  /// inconsistent lengths, nonzero trailing bitmap bits, or a nonzero value
  /// lane of a vacant slot (the zeroed-vacant-lanes invariant must hold on
  /// entry; the AVMARR03 loader rejects corrupt input here). Geometry
  /// against a grid is the caller's check.
  Status AdoptDense(std::vector<int64_t> origin, std::vector<int64_t> extents,
                    std::vector<uint64_t> bitmap, std::vector<double> lanes);

  /// Raw sparse row-buffer views, for bulk serialization. Sparse
  /// representation only; invalidated by mutation.
  std::span<const uint64_t> RowOffsets() const {
    AVM_DCHECK(rep_ == ChunkRep::kSparse);
    return offsets_;
  }
  std::span<const int64_t> RowCoords() const {
    AVM_DCHECK(rep_ == ChunkRep::kSparse);
    return coords_;
  }
  std::span<const double> RowValues() const {
    AVM_DCHECK(rep_ == ChunkRep::kSparse);
    return values_;
  }

  /// Borrowed view of the dense buffers. Dense representation only.
  DenseChunkView dense_view() const {
    AVM_CHECK(rep_ == ChunkRep::kDense)
        << "dense_view() on a sparse chunk";
    return DenseChunkView{bitmap_.data(), lanes_.data(), dense_origin_.data(),
                          dense_extents_.data(), dense_volume_};
  }

  /// Inserts a cell or overwrites its attribute values if the offset is
  /// already present. `offset` is the in-chunk row-major offset computed by
  /// ChunkGrid::InChunkOffset; `coord` the full cell coordinate.
  void UpsertCell(uint64_t offset, std::span<const int64_t> coord,
                  std::span<const double> values);
  void UpsertCell(uint64_t offset, std::initializer_list<int64_t> coord,
                  std::span<const double> values) {
    UpsertCell(offset, std::span<const int64_t>{coord.begin(), coord.size()},
               values);
  }

  /// Adds `values` element-wise into the cell's attributes, inserting the
  /// cell (initialized to zero) if absent. The merge primitive for
  /// incrementally maintainable aggregates (COUNT/SUM).
  void AccumulateCell(uint64_t offset, std::span<const int64_t> coord,
                      std::span<const double> values);
  void AccumulateCell(uint64_t offset, std::initializer_list<int64_t> coord,
                      std::span<const double> values) {
    AccumulateCell(offset,
                   std::span<const int64_t>{coord.begin(), coord.size()},
                   values);
  }

  /// Removes the cell at `offset` if present; returns whether it existed.
  /// On a dense chunk the slot's value lanes are re-zeroed (the vacant-lane
  /// invariant).
  bool EraseCell(uint64_t offset);

  /// True if a cell exists at the in-chunk offset.
  bool HasCell(uint64_t offset) const {
    if (rep_ == ChunkRep::kSparse) {
      return index_.Find(offset) != OffsetIndex::kNotFound;
    }
    return offset < dense_volume_ && DenseBit(offset);
  }

  /// Attribute values of the cell at `offset`, or nullptr if absent. The
  /// pointer is invalidated by any mutation or representation change.
  const double* GetCell(uint64_t offset) const {
    if (rep_ == ChunkRep::kSparse) {
      const uint32_t row = index_.Find(offset);
      if (row == OffsetIndex::kNotFound) return nullptr;
      return values_.data() + row * num_attrs_;
    }
    if (offset >= dense_volume_ || !DenseBit(offset)) return nullptr;
    return lanes_.data() + offset * num_attrs_;
  }
  double* GetMutableCell(uint64_t offset) {
    return const_cast<double*>(std::as_const(*this).GetCell(offset));
  }

  /// Stable handle to one cell's attribute values, valid across subsequent
  /// insertions (sparse rows only move on erase; dense slots never move).
  /// Resolved back to a fresh pointer by StateOfCellRef, so callers
  /// accumulating runs of updates into one cell (FragmentBuilder) stay
  /// correct across value-buffer growth.
  using CellRef = size_t;

  /// CellRef of the cell at `offset`, inserting it with `init` values if
  /// absent.
  CellRef GetOrCreateCell(uint64_t offset, std::span<const int64_t> coord,
                          std::span<const double> init);

  /// The attribute values behind a CellRef obtained from GetOrCreateCell.
  /// The pointer itself is invalidated by mutation; the ref is not.
  double* StateOfCellRef(CellRef ref) {
    return (rep_ == ChunkRep::kSparse ? values_.data() : lanes_.data()) +
           ref * num_attrs_;
  }

  /// Row of the cell at `offset`, inserting it with `init` values if absent.
  /// Sparse representation only (new code outside src/array uses
  /// GetOrCreateCell, which dispatches).
  size_t GetOrCreateRow(uint64_t offset, std::span<const int64_t> coord,
                        std::span<const double> init);

  /// Sparse row accessors (rows are stable until an erase). Sparse
  /// representation only; kernel code outside src/array iterates through
  /// the representation-dispatching visitors below instead.
  std::span<const int64_t> CoordOfRow(size_t row) const {
    AVM_DCHECK(rep_ == ChunkRep::kSparse);
    return {coords_.data() + row * num_dims_, num_dims_};
  }
  std::span<const double> ValuesOfRow(size_t row) const {
    AVM_DCHECK(rep_ == ChunkRep::kSparse);
    return {values_.data() + row * num_attrs_, num_attrs_};
  }
  double* MutableValuesOfRow(size_t row) {
    AVM_DCHECK(rep_ == ChunkRep::kSparse);
    return values_.data() + row * num_attrs_;
  }
  uint64_t OffsetOfRow(size_t row) const {
    AVM_DCHECK(rep_ == ChunkRep::kSparse);
    return offsets_[row];
  }

  /// Invokes fn(offset, coord, values) for every cell. Iteration order is
  /// insertion order on a sparse chunk and ascending offset order on a
  /// dense one (both stable across runs for deterministic inputs; they
  /// coincide for row-major-built chunks).
  template <typename Fn>
  void ForEachCellWithOffset(Fn&& fn) const {
    if (rep_ == ChunkRep::kSparse) {
      for (size_t row = 0; row < offsets_.size(); ++row) {
        fn(offsets_[row],
           std::span<const int64_t>{coords_.data() + row * num_dims_,
                                    num_dims_},
           std::span<const double>{values_.data() + row * num_attrs_,
                                   num_attrs_});
      }
      return;
    }
    CellCoord coord = dense_origin_;
    for (uint64_t off = 0; off < dense_volume_; ++off) {
      if (DenseBit(off)) {
        fn(off, std::span<const int64_t>{coord},
           std::span<const double>{lanes_.data() + off * num_attrs_,
                                   num_attrs_});
      }
      for (size_t d = num_dims_; d-- > 0;) {
        if (++coord[d] < dense_origin_[d] + dense_extents_[d]) break;
        coord[d] = dense_origin_[d];
      }
    }
  }

  /// Status-propagating visitor: fn(offset, coord, values) -> Status; stops
  /// at the first error. Same iteration order as ForEachCellWithOffset.
  template <typename Fn>
  Status VisitCells(Fn&& fn) const {
    if (rep_ == ChunkRep::kSparse) {
      for (size_t row = 0; row < offsets_.size(); ++row) {
        AVM_RETURN_IF_ERROR(
            fn(offsets_[row],
               std::span<const int64_t>{coords_.data() + row * num_dims_,
                                        num_dims_},
               std::span<const double>{values_.data() + row * num_attrs_,
                                       num_attrs_}));
      }
      return Status::OK();
    }
    CellCoord coord = dense_origin_;
    for (uint64_t off = 0; off < dense_volume_; ++off) {
      if (DenseBit(off)) {
        AVM_RETURN_IF_ERROR(
            fn(off, std::span<const int64_t>{coord},
               std::span<const double>{lanes_.data() + off * num_attrs_,
                                       num_attrs_}));
      }
      for (size_t d = num_dims_; d-- > 0;) {
        if (++coord[d] < dense_origin_[d] + dense_extents_[d]) break;
        coord[d] = dense_origin_[d];
      }
    }
    return Status::OK();
  }

  /// Invokes fn(coord, values) for every cell (iteration order as above).
  /// The templated form binds the visitor statically; pass a std::function
  /// only when type erasure is genuinely needed.
  template <typename Fn>
  void ForEachCell(Fn&& fn) const {
    ForEachCellWithOffset(
        [&fn](uint64_t, std::span<const int64_t> coord,
              std::span<const double> values) { fn(coord, values); });
  }
  void ForEachCell(
      const std::function<void(std::span<const int64_t>,
                               std::span<const double>)>& fn) const {
    ForEachCell<decltype(fn)>(fn);
  }

  /// Estimated logical in-memory/wire footprint: 8 bytes per coordinate
  /// component and per attribute value of every *occupied* cell. This is the
  /// B_q fed to the cost model — deliberately representation-independent, so
  /// plans and simulated clocks do not change when a chunk converts.
  uint64_t SizeBytes() const {
    return 8 * num_cells() * (num_dims_ + num_attrs_);
  }

  /// Actual bytes of the active representation's buffers (host RSS truth,
  /// reported per format by the store.resident_{sparse,dense}_bytes gauges).
  uint64_t PhysicalSizeBytes() const {
    if (rep_ == ChunkRep::kSparse) {
      return offsets_.size() * sizeof(uint64_t) +
             coords_.size() * sizeof(int64_t) +
             values_.size() * sizeof(double) + index_.CapacityBytes();
    }
    return bitmap_.size() * sizeof(uint64_t) + lanes_.size() * sizeof(double) +
           (dense_origin_.size() + dense_extents_.size()) * sizeof(int64_t);
  }

  /// Converts to the dense representation over the chunk box of `id` in
  /// `grid`. Precondition: currently sparse, every cell offset inside the
  /// box volume, and the volume within kMaxDenseVolume (callers go through
  /// MaybeAdaptRepresentation, which checks the policy and the bound).
  void Densify(const ChunkGrid& grid, ChunkId id);

  /// Converts to the sparse representation. Cells are materialized in
  /// ascending offset order. Precondition: currently dense.
  void Sparsify();

  /// Applies the process-wide densification policy to this chunk (which
  /// must belong to slot `id` of `grid`): under kAuto, densifies at
  /// occupancy >= kDensifyDensity and sparsifies at <= kSparsifyDensity
  /// (occupancy measured against the unclipped slot volume, the product of
  /// the grid's chunk extents); the forced modes pin the representation.
  /// Returns true if a conversion happened (also counted in telemetry as
  /// chunk.densified / chunk.sparsified). O(1) when no conversion fires, so
  /// it is safe to call after every mutation batch.
  bool MaybeAdaptRepresentation(const ChunkGrid& grid, ChunkId id);

  /// Merges every cell of `other` into this chunk with AccumulateCell
  /// semantics. Dimensionality and attribute counts must match; the two
  /// chunks may use different representations.
  Status AccumulateChunk(const Chunk& other);

  /// Merges every cell of `other` into this chunk with UpsertCell
  /// (overwrite) semantics. Dimensionality and attribute counts must match;
  /// the two chunks may use different representations.
  Status UpsertChunk(const Chunk& other);

  /// Exact content equality: same cell set with equal values (order and
  /// representation insensitive). Coordinates compared by offset.
  bool ContentEquals(const Chunk& other, double tolerance = 0.0) const;

  /// Debug structural validator. For a sparse chunk, checks the row storage
  /// and the offset index agree: buffer sizes are consistent with the cell
  /// count, the index maps every row's offset back to that row, and the
  /// index's own table invariants hold. For a dense chunk, checks the box
  /// metadata, bitmap, and lanes agree: buffer sizes match the box volume,
  /// the stored cell count equals the bitmap population, trailing bitmap
  /// bits are clear, and every vacant slot's value lanes are zero (the
  /// invariant the branch-free join kernel relies on). When `grid` is
  /// given, additionally checks the geometry contract for the chunk at
  /// `id`: every cell coordinate lies in the chunk's box and re-linearizes
  /// (SlotOfCell) to exactly (id, its stored offset) — and, dense, that the
  /// stored box equals the grid's.
  ///
  /// Violations fire AVM_CHECK (routed through the installed failure
  /// handler). O(cells) sparse, O(volume) dense; intended for Debug/test
  /// builds via the kDebugChecksEnabled gate, not for Release hot paths.
  void CheckInvariants(const ChunkGrid* grid = nullptr, ChunkId id = 0) const;

 private:
  friend struct ChunkTestPeer;  // contract tests corrupt state deliberately

  bool DenseBit(uint64_t off) const {
    return (bitmap_[off >> 6] >> (off & 63)) & 1u;
  }

  size_t num_dims_;
  size_t num_attrs_;
  ChunkRep rep_ = ChunkRep::kSparse;

  // Sparse representation (active when rep_ == kSparse).
  std::vector<uint64_t> offsets_;  // per-row in-chunk offset
  std::vector<int64_t> coords_;    // row-major, num_cells x num_dims
  std::vector<double> values_;     // row-major, num_cells x num_attrs
  OffsetIndex index_;              // offset -> row

  // Dense representation (active when rep_ == kDense). Vacant slots keep
  // their lanes zeroed so the vectorized kernel can fold them blindly.
  std::vector<int64_t> dense_origin_;   // chunk box lo
  std::vector<int64_t> dense_extents_;  // per-dim chunk extents
  uint64_t dense_volume_ = 0;           // product of extents
  size_t dense_cells_ = 0;              // bitmap population
  std::vector<uint64_t> bitmap_;        // slot validity, ceil(volume/64)
  std::vector<double> lanes_;           // volume x num_attrs values
};

}  // namespace avm
