#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "array/coords.h"
#include "array/offset_index.h"
#include "common/status.h"

namespace avm {

class ChunkGrid;
struct ChunkTestPeer;

/// Sparse storage for one chunk: the non-empty cells of one axis-aligned tile
/// of the array. Cells are stored structure-of-rows — a flat coordinate
/// buffer plus a flat attribute-value buffer — with a flat open-addressing
/// index from the in-chunk offset to the row, giving O(1) point lookup and
/// append without per-probe pointer chasing.
///
/// A Chunk is the unit of storage, transfer, and join computation, matching
/// the paper's chunk-granularity processing model. `SizeBytes()` is the
/// quantity `B_q` that the cost model charges for transfers and joins.
class Chunk {
 public:
  /// Creates an empty chunk for cells of the given dimensionality and
  /// attribute count.
  Chunk(size_t num_dims, size_t num_attrs)
      : num_dims_(num_dims), num_attrs_(num_attrs) {}

  size_t num_dims() const { return num_dims_; }
  size_t num_attrs() const { return num_attrs_; }
  size_t num_cells() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  /// Pre-sizes the row buffers and the offset index for `cells` cells, so
  /// bulk loads (deserialization, fragment merges, delta upserts) allocate
  /// and rehash once instead of per cell.
  void Reserve(size_t cells);

  /// Empties the chunk and re-layouts it for the given dimensionality and
  /// attribute count, keeping every buffer's capacity. This is what makes a
  /// pooled chunk free to reuse: the next fill appends into memory the
  /// previous batch already paid to allocate.
  void ClearAndRelayout(size_t num_dims, size_t num_attrs);

  /// Bytes of buffer capacity currently held (row buffers plus the offset
  /// index table) — the quantity a pool of emptied chunks keeps parked.
  uint64_t CapacityBytes() const {
    return offsets_.capacity() * sizeof(uint64_t) +
           coords_.capacity() * sizeof(int64_t) +
           values_.capacity() * sizeof(double) + index_.CapacityBytes();
  }

  /// Replaces the chunk's contents with pre-assembled row buffers in one
  /// move: `offsets` holds one in-chunk offset per row, `coords` num_dims
  /// components per row, `values` num_attrs slots per row. The offset index
  /// is rebuilt with a single reserve. Fails on inconsistent buffer lengths
  /// or duplicate offsets (the bulk-deserialization entry point must reject
  /// corrupt input instead of corrupting the index).
  Status AdoptRows(std::vector<uint64_t> offsets, std::vector<int64_t> coords,
                   std::vector<double> values);

  /// Raw row-buffer views, for bulk serialization. Invalidated by mutation.
  std::span<const uint64_t> RowOffsets() const { return offsets_; }
  std::span<const int64_t> RowCoords() const { return coords_; }
  std::span<const double> RowValues() const { return values_; }

  /// Inserts a cell or overwrites its attribute values if the offset is
  /// already present. `offset` is the in-chunk row-major offset computed by
  /// ChunkGrid::InChunkOffset; `coord` the full cell coordinate.
  void UpsertCell(uint64_t offset, const CellCoord& coord,
                  std::span<const double> values);

  /// Adds `values` element-wise into the cell's attributes, inserting the
  /// cell (initialized to zero) if absent. The merge primitive for
  /// incrementally maintainable aggregates (COUNT/SUM).
  void AccumulateCell(uint64_t offset, const CellCoord& coord,
                      std::span<const double> values);

  /// Removes the cell at `offset` if present; returns whether it existed.
  bool EraseCell(uint64_t offset);

  /// True if a cell exists at the in-chunk offset.
  bool HasCell(uint64_t offset) const {
    return index_.Find(offset) != OffsetIndex::kNotFound;
  }

  /// Attribute values of the cell at `offset`, or nullptr if absent. The
  /// span is invalidated by any mutation.
  const double* GetCell(uint64_t offset) const {
    const uint32_t row = index_.Find(offset);
    if (row == OffsetIndex::kNotFound) return nullptr;
    return values_.data() + row * num_attrs_;
  }
  double* GetMutableCell(uint64_t offset) {
    const uint32_t row = index_.Find(offset);
    if (row == OffsetIndex::kNotFound) return nullptr;
    return values_.data() + row * num_attrs_;
  }

  /// Row of the cell at `offset`, inserting it with `init` values if absent.
  /// Rows are stable until an erase, so callers accumulating runs of updates
  /// into one cell (FragmentBuilder) can cache the row across value-buffer
  /// growth.
  size_t GetOrCreateRow(uint64_t offset, std::span<const int64_t> coord,
                        std::span<const double> init);

  /// Row accessors (rows are stable until an erase).
  std::span<const int64_t> CoordOfRow(size_t row) const {
    return {coords_.data() + row * num_dims_, num_dims_};
  }
  std::span<const double> ValuesOfRow(size_t row) const {
    return {values_.data() + row * num_attrs_, num_attrs_};
  }
  double* MutableValuesOfRow(size_t row) {
    return values_.data() + row * num_attrs_;
  }
  uint64_t OffsetOfRow(size_t row) const { return offsets_[row]; }

  /// Invokes fn(coord, values) for every cell. Iteration order is insertion
  /// order (stable across runs for deterministic inputs). The templated form
  /// binds the visitor statically; pass a std::function only when type
  /// erasure is genuinely needed.
  template <typename Fn>
  void ForEachCell(Fn&& fn) const {
    for (size_t row = 0; row < num_cells(); ++row) {
      fn(CoordOfRow(row), ValuesOfRow(row));
    }
  }
  void ForEachCell(
      const std::function<void(std::span<const int64_t>,
                               std::span<const double>)>& fn) const {
    ForEachCell<decltype(fn)>(fn);
  }

  /// Estimated in-memory/wire footprint: 8 bytes per coordinate component and
  /// per attribute value. This is the B_q fed to the cost model.
  uint64_t SizeBytes() const {
    return 8 * num_cells() * (num_dims_ + num_attrs_);
  }

  /// Merges every cell of `other` into this chunk with AccumulateCell
  /// semantics. Dimensionality and attribute counts must match.
  Status AccumulateChunk(const Chunk& other);

  /// Exact content equality: same cell set with equal values (order
  /// insensitive). Coordinates compared by offset.
  bool ContentEquals(const Chunk& other, double tolerance = 0.0) const;

  /// Debug structural validator. Checks the row storage and the offset
  /// index agree: buffer sizes are consistent with the cell count, the
  /// index maps every row's offset back to that row, and the index's own
  /// table invariants hold. When `grid` is given, additionally checks the
  /// geometry contract for the chunk at `id`: every cell coordinate lies in
  /// the chunk's box and re-linearizes (SlotOfCell) to exactly (id, its
  /// stored offset) — the consistency the PR-2 fast paths depend on.
  ///
  /// Violations fire AVM_CHECK (routed through the installed failure
  /// handler). O(cells); intended for Debug/test builds via the
  /// kDebugChecksEnabled gate, not for Release hot paths.
  void CheckInvariants(const ChunkGrid* grid = nullptr, ChunkId id = 0) const;

 private:
  friend struct ChunkTestPeer;  // contract tests corrupt state deliberately

  size_t num_dims_;
  size_t num_attrs_;
  std::vector<uint64_t> offsets_;  // per-row in-chunk offset
  std::vector<int64_t> coords_;    // row-major, num_cells x num_dims
  std::vector<double> values_;     // row-major, num_cells x num_attrs
  OffsetIndex index_;              // offset -> row
};

}  // namespace avm

