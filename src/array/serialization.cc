#include "array/serialization.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace avm {

namespace {

// The v2 chunk sections are raw memcpy'd little-endian buffers; this
// persistence layer targets little-endian hosts only (everything this repo
// builds on). A big-endian port would add byte-swapping shims here.
static_assert(std::endian::native == std::endian::little,
              "bulk array serialization assumes a little-endian host");

constexpr char kMagicV1[8] = {'A', 'V', 'M', 'A', 'R', 'R', '0', '1'};
constexpr char kMagicV2[8] = {'A', 'V', 'M', 'A', 'R', 'R', '0', '2'};
constexpr char kMagicV3[8] = {'A', 'V', 'M', 'A', 'R', 'R', '0', '3'};

// v3 per-chunk representation tags.
constexpr uint64_t kRepTagSparse = 0;
constexpr uint64_t kRepTagDense = 1;

void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 8);
}

void WriteI64(std::ostream& out, int64_t v) {
  WriteU64(out, static_cast<uint64_t>(v));
}

void WriteDouble(std::ostream& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  WriteU64(out, bits);
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Result<uint64_t> ReadU64(std::istream& in) {
  char buf[8];
  in.read(buf, 8);
  if (in.gcount() != 8) return Status::Internal("truncated array file");
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(buf[i]);
  }
  return v;
}

Result<int64_t> ReadI64(std::istream& in) {
  AVM_ASSIGN_OR_RETURN(uint64_t v, ReadU64(in));
  return static_cast<int64_t>(v);
}

Result<double> ReadDouble(std::istream& in) {
  AVM_ASSIGN_OR_RETURN(uint64_t bits, ReadU64(in));
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<std::string> ReadString(std::istream& in) {
  AVM_ASSIGN_OR_RETURN(uint64_t size, ReadU64(in));
  if (size > (1ull << 20)) {
    return Status::InvalidArgument("implausible string length in array file");
  }
  std::string s(size, '\0');
  in.read(s.data(), static_cast<std::streamsize>(size));
  if (static_cast<uint64_t>(in.gcount()) != size) {
    return Status::Internal("truncated array file");
  }
  return s;
}

/// One length-prefixed bulk section: element count, then the raw buffer in
/// one write. This is what makes v2 save/load O(bytes) stream operations
/// instead of O(cells) formatted ones.
template <typename T>
void WriteBlock(std::ostream& out, std::span<const T> data) {
  WriteU64(out, data.size());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
}

template <typename T>
Result<std::vector<T>> ReadBlock(std::istream& in, uint64_t max_elems,
                                 const char* what) {
  AVM_ASSIGN_OR_RETURN(uint64_t n, ReadU64(in));
  if (n > max_elems) {
    return Status::InvalidArgument(std::string("implausible ") + what +
                                   " block length in array file");
  }
  std::vector<T> data(n);
  const std::streamsize bytes =
      static_cast<std::streamsize>(n * sizeof(T));
  in.read(reinterpret_cast<char*>(data.data()), bytes);
  if (in.gcount() != bytes) return Status::Internal("truncated array file");
  return data;
}

void WriteSchema(std::ostream& out, const ArraySchema& schema) {
  WriteString(out, schema.name());
  WriteU64(out, schema.num_dims());
  for (const auto& dim : schema.dims()) {
    WriteString(out, dim.name);
    WriteI64(out, dim.lo);
    WriteI64(out, dim.hi);
    WriteI64(out, dim.chunk_extent);
  }
  WriteU64(out, schema.num_attrs());
  for (const auto& attr : schema.attrs()) {
    WriteString(out, attr.name);
    WriteU64(out, attr.type == AttributeType::kInt64 ? 1 : 0);
  }
}

Result<ArraySchema> ReadSchema(std::istream& in) {
  AVM_ASSIGN_OR_RETURN(std::string name, ReadString(in));
  AVM_ASSIGN_OR_RETURN(uint64_t num_dims, ReadU64(in));
  if (num_dims == 0 || num_dims > 64) {
    return Status::InvalidArgument("implausible dimensionality");
  }
  std::vector<DimensionSpec> dims;
  for (uint64_t d = 0; d < num_dims; ++d) {
    DimensionSpec dim;
    AVM_ASSIGN_OR_RETURN(dim.name, ReadString(in));
    AVM_ASSIGN_OR_RETURN(dim.lo, ReadI64(in));
    AVM_ASSIGN_OR_RETURN(dim.hi, ReadI64(in));
    AVM_ASSIGN_OR_RETURN(dim.chunk_extent, ReadI64(in));
    dims.push_back(std::move(dim));
  }
  AVM_ASSIGN_OR_RETURN(uint64_t num_attrs, ReadU64(in));
  if (num_attrs > 4096) {
    return Status::InvalidArgument("implausible attribute count");
  }
  std::vector<Attribute> attrs;
  for (uint64_t a = 0; a < num_attrs; ++a) {
    Attribute attr;
    AVM_ASSIGN_OR_RETURN(attr.name, ReadString(in));
    AVM_ASSIGN_OR_RETURN(uint64_t type, ReadU64(in));
    attr.type = type == 1 ? AttributeType::kInt64 : AttributeType::kDouble;
    attrs.push_back(std::move(attr));
  }
  return ArraySchema::Create(std::move(name), std::move(dims),
                             std::move(attrs));
}

/// v1 cell section: per-cell interleaved coord/values stream, loaded through
/// the range-checked SparseArray::Set path.
Result<SparseArray> LoadCellsV1(std::istream& in, SparseArray array) {
  const size_t num_dims = array.schema().num_dims();
  const size_t num_attrs = array.schema().num_attrs();
  AVM_ASSIGN_OR_RETURN(uint64_t num_cells, ReadU64(in));
  // Buffer the cells first so each chunk's storage can be sized in one shot
  // before insertion, instead of growing its index incrementally. The buffers
  // grow only as far as the file actually delivers, so a corrupt cell count
  // still fails on truncation rather than on allocation.
  std::vector<int64_t> coords;
  std::vector<double> all_values;
  for (uint64_t i = 0; i < num_cells; ++i) {
    for (uint64_t d = 0; d < num_dims; ++d) {
      AVM_ASSIGN_OR_RETURN(int64_t c, ReadI64(in));
      coords.push_back(c);
    }
    for (uint64_t a = 0; a < num_attrs; ++a) {
      AVM_ASSIGN_OR_RETURN(double v, ReadDouble(in));
      all_values.push_back(v);
    }
  }
  const ChunkGrid& grid = array.grid();
  CellCoord coord(num_dims);
  std::map<ChunkId, size_t> cells_per_chunk;
  for (uint64_t i = 0; i < num_cells; ++i) {
    coord.assign(coords.begin() + static_cast<size_t>(i * num_dims),
                 coords.begin() + static_cast<size_t>((i + 1) * num_dims));
    // Out-of-range coordinates skip the count so Set reports them below.
    if (!array.schema().ContainsCoord(coord)) continue;
    ++cells_per_chunk[grid.IdOfCell(coord)];
  }
  for (const auto& [id, n] : cells_per_chunk) {
    array.GetOrCreateChunk(id).Reserve(n);
  }
  for (uint64_t i = 0; i < num_cells; ++i) {
    coord.assign(coords.begin() + static_cast<size_t>(i * num_dims),
                 coords.begin() + static_cast<size_t>((i + 1) * num_dims));
    AVM_RETURN_IF_ERROR(array.Set(
        coord, {all_values.data() + i * num_attrs, num_attrs}));
  }
  return array;
}

/// One sparse chunk section body (shared by v2 and v3): the three row
/// buffers as bulk blocks. Geometry is re-validated row by row before
/// adoption — a corrupt file fails with a Status, never a CHECK, and never
/// leaves a chunk whose cells lie outside its box.
Status LoadSparseChunkBody(std::istream& in, SparseArray* array,
                           ChunkId chunk_id) {
  const size_t num_dims = array->schema().num_dims();
  const size_t num_attrs = array->schema().num_attrs();
  const ChunkGrid& grid = array->grid();
  constexpr uint64_t kMaxCellsPerChunk = 1ull << 32;
  AVM_ASSIGN_OR_RETURN(
      std::vector<uint64_t> offsets,
      ReadBlock<uint64_t>(in, kMaxCellsPerChunk, "offset"));
  AVM_ASSIGN_OR_RETURN(
      std::vector<int64_t> coords,
      ReadBlock<int64_t>(in, offsets.size() * num_dims, "coordinate"));
  AVM_ASSIGN_OR_RETURN(
      std::vector<double> values,
      ReadBlock<double>(in, offsets.size() * num_attrs, "value"));
  if (coords.size() != offsets.size() * num_dims ||
      values.size() != offsets.size() * num_attrs) {
    return Status::InvalidArgument(
        "chunk section lengths disagree in array file");
  }
  CellCoord coord(num_dims);
  for (size_t row = 0; row < offsets.size(); ++row) {
    coord.assign(coords.begin() + static_cast<ptrdiff_t>(row * num_dims),
                 coords.begin() + static_cast<ptrdiff_t>((row + 1) * num_dims));
    if (!array->schema().ContainsCoord(coord)) {
      return Status::InvalidArgument(
          "cell coordinate outside the schema's ranges");
    }
    const ChunkGrid::CellSlot slot = grid.SlotOfCell(coord);
    if (slot.id != chunk_id || slot.offset != offsets[row]) {
      return Status::InvalidArgument(
          "cell does not linearize to its recorded chunk slot");
    }
  }
  return array->GetOrCreateChunk(chunk_id).AdoptRows(
      std::move(offsets), std::move(coords), std::move(values));
}

/// One dense chunk section body (v3 only): the slot volume, then the
/// validity bitmap and the value lanes as bulk blocks. The chunk box is
/// *derived from the grid*, not stored, so the only geometry a corrupt file
/// can forge is the volume (rejected against the grid's extents) and set
/// bits in the clipped region of an edge chunk (rejected per set bit
/// below). AdoptDense re-validates the buffer lengths, trailing bitmap
/// bits, and the zeroed-vacant-lanes invariant.
Status LoadDenseChunkBody(std::istream& in, SparseArray* array,
                          ChunkId chunk_id) {
  const size_t num_attrs = array->schema().num_attrs();
  const ChunkGrid& grid = array->grid();
  const std::vector<int64_t>& extents = grid.extents();
  uint64_t expected_volume = 1;
  for (const int64_t e : extents) {
    expected_volume *= static_cast<uint64_t>(e);
  }
  AVM_ASSIGN_OR_RETURN(uint64_t volume, ReadU64(in));
  if (volume != expected_volume || volume > kMaxDenseVolume) {
    return Status::InvalidArgument(
        "dense chunk volume disagrees with the grid's chunk extents");
  }
  const uint64_t bitmap_words = (volume + 63) / 64;
  AVM_ASSIGN_OR_RETURN(std::vector<uint64_t> bitmap,
                       ReadBlock<uint64_t>(in, bitmap_words, "bitmap"));
  AVM_ASSIGN_OR_RETURN(
      std::vector<double> lanes,
      ReadBlock<double>(in, volume * num_attrs, "lane"));
  if (bitmap.size() != bitmap_words || lanes.size() != volume * num_attrs) {
    return Status::InvalidArgument(
        "dense chunk section lengths disagree in array file");
  }
  // Edge chunks are clipped at the schema's upper bounds: a set bit in the
  // clipped region would decode to a coordinate outside the array.
  const Box box = grid.ChunkBoxOfId(chunk_id);
  CellCoord coord = box.lo;
  const size_t num_dims = coord.size();
  for (uint64_t off = 0; off < volume; ++off) {
    if ((bitmap[off >> 6] >> (off & 63)) & 1u) {
      for (size_t d = 0; d < num_dims; ++d) {
        if (coord[d] > box.hi[d]) {
          return Status::InvalidArgument(
              "dense chunk has a set bit outside its clipped box");
        }
      }
    }
    for (size_t d = num_dims; d-- > 0;) {
      if (++coord[d] < box.lo[d] + extents[d]) break;
      coord[d] = box.lo[d];
    }
  }
  return array->GetOrCreateChunk(chunk_id).AdoptDense(
      box.lo, extents, std::move(bitmap), std::move(lanes));
}

/// Shared v2/v3 chunk-stream loader. v3 prefixes every chunk section with a
/// representation tag and loads each chunk *in its stored representation* —
/// a chunk saved dense comes back dense without a re-densification pass (and
/// without consulting the process densification policy).
Result<SparseArray> LoadChunks(std::istream& in, SparseArray array,
                               int version) {
  const ChunkGrid& grid = array.grid();
  AVM_ASSIGN_OR_RETURN(uint64_t num_chunks, ReadU64(in));
  if (num_chunks > static_cast<uint64_t>(grid.TotalChunkSlots())) {
    return Status::InvalidArgument("implausible chunk count in array file");
  }
  for (uint64_t c = 0; c < num_chunks; ++c) {
    AVM_ASSIGN_OR_RETURN(uint64_t id, ReadU64(in));
    if (id >= static_cast<uint64_t>(grid.TotalChunkSlots())) {
      return Status::InvalidArgument("chunk id outside the grid");
    }
    const ChunkId chunk_id = static_cast<ChunkId>(id);
    if (array.GetChunk(chunk_id) != nullptr) {
      return Status::InvalidArgument("duplicate chunk in array file");
    }
    uint64_t rep = kRepTagSparse;
    if (version >= 3) {
      AVM_ASSIGN_OR_RETURN(rep, ReadU64(in));
      if (rep != kRepTagSparse && rep != kRepTagDense) {
        return Status::InvalidArgument(
            "unknown chunk representation tag in array file");
      }
    }
    if (rep == kRepTagSparse) {
      AVM_RETURN_IF_ERROR(LoadSparseChunkBody(in, &array, chunk_id));
    } else {
      AVM_RETURN_IF_ERROR(LoadDenseChunkBody(in, &array, chunk_id));
    }
  }
  return array;
}

}  // namespace

Status SaveArray(const SparseArray& array, std::ostream& out) {
  out.write(kMagicV3, sizeof(kMagicV3));
  WriteSchema(out, array.schema());
  WriteU64(out, array.NumChunks());
  array.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    WriteU64(out, id);
    if (chunk.rep() == ChunkRep::kSparse) {
      WriteU64(out, kRepTagSparse);
      WriteBlock<uint64_t>(out, chunk.RowOffsets());
      WriteBlock<int64_t>(out, chunk.RowCoords());
      WriteBlock<double>(out, chunk.RowValues());
    } else {
      // Dense block: volume + bitmap + lanes, still bulk writes. The box
      // geometry is reconstructed from the grid at load time.
      const DenseChunkView dv = chunk.dense_view();
      WriteU64(out, kRepTagDense);
      WriteU64(out, dv.volume);
      WriteBlock<uint64_t>(out, {dv.bitmap, (dv.volume + 63) / 64});
      WriteBlock<double>(out, {dv.lanes, dv.volume * chunk.num_attrs()});
    }
  });
  if (!out.good()) return Status::Internal("write failed");
  return Status::OK();
}

Status SaveArrayV2(const SparseArray& array, std::ostream& out) {
  out.write(kMagicV2, sizeof(kMagicV2));
  WriteSchema(out, array.schema());
  WriteU64(out, array.NumChunks());
  array.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    WriteU64(out, id);
    if (chunk.rep() == ChunkRep::kSparse) {
      WriteBlock<uint64_t>(out, chunk.RowOffsets());
      WriteBlock<int64_t>(out, chunk.RowCoords());
      WriteBlock<double>(out, chunk.RowValues());
      return;
    }
    // v2 has no dense section; materialize row buffers (ascending offset
    // order, which round-trips to the same logical content).
    std::vector<uint64_t> offsets;
    std::vector<int64_t> coords;
    std::vector<double> values;
    offsets.reserve(chunk.num_cells());
    coords.reserve(chunk.num_cells() * chunk.num_dims());
    values.reserve(chunk.num_cells() * chunk.num_attrs());
    chunk.ForEachCellWithOffset([&](uint64_t offset,
                                    std::span<const int64_t> coord,
                                    std::span<const double> vals) {
      offsets.push_back(offset);
      coords.insert(coords.end(), coord.begin(), coord.end());
      values.insert(values.end(), vals.begin(), vals.end());
    });
    WriteBlock<uint64_t>(out, offsets);
    WriteBlock<int64_t>(out, coords);
    WriteBlock<double>(out, values);
  });
  if (!out.good()) return Status::Internal("write failed");
  return Status::OK();
}

Status SaveArrayV1(const SparseArray& array, std::ostream& out) {
  out.write(kMagicV1, sizeof(kMagicV1));
  WriteSchema(out, array.schema());
  WriteU64(out, array.NumCells());
  array.ForEachCell(
      [&](std::span<const int64_t> coord, std::span<const double> values) {
        for (int64_t c : coord) WriteI64(out, c);
        for (double v : values) WriteDouble(out, v);
      });
  if (!out.good()) return Status::Internal("write failed");
  return Status::OK();
}

Result<SparseArray> LoadArray(std::istream& in) {
  char magic[sizeof(kMagicV3)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic)) {
    return Status::InvalidArgument("not an avm array file (bad magic)");
  }
  int version = 0;
  if (std::memcmp(magic, kMagicV1, sizeof(magic)) == 0) version = 1;
  if (std::memcmp(magic, kMagicV2, sizeof(magic)) == 0) version = 2;
  if (std::memcmp(magic, kMagicV3, sizeof(magic)) == 0) version = 3;
  if (version == 0) {
    return Status::InvalidArgument("not an avm array file (bad magic)");
  }
  AVM_ASSIGN_OR_RETURN(ArraySchema schema, ReadSchema(in));
  SparseArray array(std::move(schema));
  return version == 1 ? LoadCellsV1(in, std::move(array))
                      : LoadChunks(in, std::move(array), version);
}

Status SaveArrayToFile(const SparseArray& array, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  return SaveArray(array, out);
}

Result<SparseArray> LoadArrayFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return LoadArray(in);
}

namespace {
constexpr char kMagicChunk[8] = {'A', 'V', 'M', 'C', 'H', 'K', '0', '1'};
}  // namespace

Status SaveChunk(const Chunk& chunk, std::ostream& out) {
  out.write(kMagicChunk, sizeof(kMagicChunk));
  WriteU64(out, chunk.num_dims());
  WriteU64(out, chunk.num_attrs());
  if (chunk.rep() == ChunkRep::kSparse) {
    WriteU64(out, kRepTagSparse);
    WriteBlock<uint64_t>(out, chunk.RowOffsets());
    WriteBlock<int64_t>(out, chunk.RowCoords());
    WriteBlock<double>(out, chunk.RowValues());
  } else {
    const DenseChunkView dv = chunk.dense_view();
    WriteU64(out, kRepTagDense);
    WriteBlock<int64_t>(out, {dv.origin, chunk.num_dims()});
    WriteBlock<int64_t>(out, {dv.extents, chunk.num_dims()});
    WriteU64(out, dv.volume);
    WriteBlock<uint64_t>(out, {dv.bitmap, (dv.volume + 63) / 64});
    WriteBlock<double>(out, {dv.lanes, dv.volume * chunk.num_attrs()});
  }
  if (!out.good()) return Status::Internal("chunk write failed");
  return Status::OK();
}

Result<Chunk> LoadChunk(std::istream& in) {
  char magic[sizeof(kMagicChunk)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagicChunk, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not an avm chunk section (bad magic)");
  }
  AVM_ASSIGN_OR_RETURN(uint64_t num_dims, ReadU64(in));
  AVM_ASSIGN_OR_RETURN(uint64_t num_attrs, ReadU64(in));
  if (num_dims == 0 || num_dims > 64) {
    return Status::InvalidArgument("implausible chunk dimensionality");
  }
  if (num_attrs == 0 || num_attrs > 4096) {
    return Status::InvalidArgument("implausible chunk attribute count");
  }
  AVM_ASSIGN_OR_RETURN(uint64_t rep, ReadU64(in));
  Chunk chunk(static_cast<size_t>(num_dims), static_cast<size_t>(num_attrs));
  if (rep == kRepTagSparse) {
    constexpr uint64_t kMaxCellsPerChunk = 1ull << 32;
    AVM_ASSIGN_OR_RETURN(
        std::vector<uint64_t> offsets,
        ReadBlock<uint64_t>(in, kMaxCellsPerChunk, "offset"));
    AVM_ASSIGN_OR_RETURN(
        std::vector<int64_t> coords,
        ReadBlock<int64_t>(in, offsets.size() * num_dims, "coordinate"));
    AVM_ASSIGN_OR_RETURN(
        std::vector<double> values,
        ReadBlock<double>(in, offsets.size() * num_attrs, "value"));
    AVM_RETURN_IF_ERROR(chunk.AdoptRows(std::move(offsets), std::move(coords),
                                        std::move(values)));
    return chunk;
  }
  if (rep != kRepTagDense) {
    return Status::InvalidArgument(
        "unknown representation tag in chunk section");
  }
  AVM_ASSIGN_OR_RETURN(std::vector<int64_t> origin,
                       ReadBlock<int64_t>(in, num_dims, "origin"));
  AVM_ASSIGN_OR_RETURN(std::vector<int64_t> extents,
                       ReadBlock<int64_t>(in, num_dims, "extent"));
  if (origin.size() != num_dims || extents.size() != num_dims) {
    return Status::InvalidArgument("chunk box block lengths disagree");
  }
  uint64_t expected_volume = 1;
  for (const int64_t e : extents) {
    if (e <= 0) return Status::InvalidArgument("non-positive chunk extent");
    expected_volume *= static_cast<uint64_t>(e);
    if (expected_volume > kMaxDenseVolume) {
      return Status::InvalidArgument("implausible dense chunk volume");
    }
  }
  AVM_ASSIGN_OR_RETURN(uint64_t volume, ReadU64(in));
  if (volume != expected_volume) {
    return Status::InvalidArgument(
        "dense chunk volume disagrees with its stored extents");
  }
  const uint64_t bitmap_words = (volume + 63) / 64;
  AVM_ASSIGN_OR_RETURN(std::vector<uint64_t> bitmap,
                       ReadBlock<uint64_t>(in, bitmap_words, "bitmap"));
  AVM_ASSIGN_OR_RETURN(std::vector<double> lanes,
                       ReadBlock<double>(in, volume * num_attrs, "lane"));
  AVM_RETURN_IF_ERROR(chunk.AdoptDense(std::move(origin), std::move(extents),
                                       std::move(bitmap), std::move(lanes)));
  return chunk;
}

}  // namespace avm
