#include "array/schema.h"

#include <sstream>
#include <unordered_set>

namespace avm {

Result<ArraySchema> ArraySchema::Create(std::string name,
                                        std::vector<DimensionSpec> dims,
                                        std::vector<Attribute> attrs) {
  if (dims.empty()) {
    return Status::InvalidArgument("array '" + name +
                                   "' must have at least one dimension");
  }
  std::unordered_set<std::string> seen;
  for (const auto& d : dims) {
    if (d.name.empty()) {
      return Status::InvalidArgument("dimension with empty name");
    }
    if (!seen.insert(d.name).second) {
      return Status::InvalidArgument("duplicate dimension name '" + d.name +
                                     "'");
    }
    if (d.lo > d.hi) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' has lo > hi");
    }
    if (d.chunk_extent <= 0) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' has non-positive chunk extent");
    }
  }
  for (const auto& a : attrs) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute with empty name");
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name '" + a.name +
                                     "'");
    }
  }
  return ArraySchema(std::move(name), std::move(dims), std::move(attrs));
}

Result<size_t> ArraySchema::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return Status::NotFound("attribute '" + name + "' not in schema of '" +
                          name_ + "'");
}

Result<size_t> ArraySchema::DimensionIndex(const std::string& name) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].name == name) return i;
  }
  return Status::NotFound("dimension '" + name + "' not in schema of '" +
                          name_ + "'");
}

bool ArraySchema::ContainsCoord(const std::vector<int64_t>& coord) const {
  if (coord.size() != dims_.size()) return false;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (coord[i] < dims_[i].lo || coord[i] > dims_[i].hi) return false;
  }
  return true;
}

std::string ArraySchema::ToString() const {
  std::ostringstream out;
  out << name_ << "<";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out << ",";
    out << attrs_[i].name << ":"
        << (attrs_[i].type == AttributeType::kInt64 ? "int64" : "double");
  }
  out << ">[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out << ";";
    out << dims_[i].name << "=" << dims_[i].lo << "," << dims_[i].hi << ","
        << dims_[i].chunk_extent;
  }
  out << "]";
  return out.str();
}

bool ArraySchema::StructurallyEquals(const ArraySchema& other) const {
  if (dims_.size() != other.dims_.size()) return false;
  if (attrs_.size() != other.attrs_.size()) return false;
  for (size_t i = 0; i < dims_.size(); ++i) {
    const auto& a = dims_[i];
    const auto& b = other.dims_[i];
    if (a.name != b.name || a.lo != b.lo || a.hi != b.hi ||
        a.chunk_extent != b.chunk_extent) {
      return false;
    }
  }
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name != other.attrs_[i].name ||
        attrs_[i].type != other.attrs_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace avm
