#include "array/chunk_grid.h"

#include <algorithm>

#include "common/check.h"

namespace avm {

ChunkGrid::ChunkGrid(const ArraySchema& schema) {
  const auto& dims = schema.dims();
  lo_.reserve(dims.size());
  hi_.reserve(dims.size());
  extent_.reserve(dims.size());
  chunks_in_dim_.reserve(dims.size());
  total_slots_ = 1;
  for (const auto& d : dims) {
    lo_.push_back(d.lo);
    hi_.push_back(d.hi);
    extent_.push_back(d.chunk_extent);
    chunks_in_dim_.push_back(d.NumChunks());
    total_slots_ *= d.NumChunks();
  }
}

ChunkPos ChunkGrid::PosOfCell(const CellCoord& coord) const {
  AVM_CHECK_EQ(coord.size(), lo_.size());
  ChunkPos pos(coord.size());
  for (size_t i = 0; i < coord.size(); ++i) {
    AVM_CHECK(coord[i] >= lo_[i] && coord[i] <= hi_[i])
        << "coordinate " << coord[i] << " outside dim range [" << lo_[i]
        << ", " << hi_[i] << "]";
    pos[i] = (coord[i] - lo_[i]) / extent_[i];
  }
  return pos;
}

ChunkId ChunkGrid::IdOfPos(const ChunkPos& pos) const {
  AVM_CHECK_EQ(pos.size(), lo_.size());
  ChunkId id = 0;
  for (size_t i = 0; i < pos.size(); ++i) {
    AVM_CHECK(pos[i] >= 0 && pos[i] < chunks_in_dim_[i]);
    id = id * static_cast<uint64_t>(chunks_in_dim_[i]) +
         static_cast<uint64_t>(pos[i]);
  }
  return id;
}

ChunkPos ChunkGrid::PosOfId(ChunkId id) const {
  ChunkPos pos(lo_.size());
  for (size_t i = lo_.size(); i-- > 0;) {
    const uint64_t n = static_cast<uint64_t>(chunks_in_dim_[i]);
    pos[i] = static_cast<int64_t>(id % n);
    id /= n;
  }
  AVM_CHECK_EQ(id, 0u) << "chunk id out of range";
  return pos;
}

Box ChunkGrid::ChunkBox(const ChunkPos& pos) const {
  Box box;
  box.lo.resize(pos.size());
  box.hi.resize(pos.size());
  for (size_t i = 0; i < pos.size(); ++i) {
    box.lo[i] = lo_[i] + pos[i] * extent_[i];
    box.hi[i] = std::min(hi_[i], box.lo[i] + extent_[i] - 1);
  }
  return box;
}

ChunkGrid::CellSlot ChunkGrid::SlotOfCell(const CellCoord& coord) const {
  AVM_CHECK_EQ(coord.size(), lo_.size());
  CellSlot slot;
  for (size_t i = 0; i < coord.size(); ++i) {
    AVM_CHECK(coord[i] >= lo_[i] && coord[i] <= hi_[i])
        << "coordinate " << coord[i] << " outside dim range [" << lo_[i]
        << ", " << hi_[i] << "]";
    const int64_t rel = coord[i] - lo_[i];
    const int64_t pos = rel / extent_[i];
    slot.id = slot.id * static_cast<uint64_t>(chunks_in_dim_[i]) +
              static_cast<uint64_t>(pos);
    slot.offset = slot.offset * static_cast<uint64_t>(extent_[i]) +
                  static_cast<uint64_t>(rel - pos * extent_[i]);
  }
  return slot;
}

uint64_t ChunkGrid::InChunkOffset(const CellCoord& coord) const {
  uint64_t off = 0;
  for (size_t i = 0; i < coord.size(); ++i) {
    const int64_t within = (coord[i] - lo_[i]) % extent_[i];
    off = off * static_cast<uint64_t>(extent_[i]) +
          static_cast<uint64_t>(within);
  }
  return off;
}

void ChunkGrid::CheckInvariants() const {
  const size_t dims = lo_.size();
  AVM_CHECK_EQ(hi_.size(), dims);
  AVM_CHECK_EQ(extent_.size(), dims);
  AVM_CHECK_EQ(chunks_in_dim_.size(), dims);
  int64_t slots = 1;
  for (size_t i = 0; i < dims; ++i) {
    AVM_CHECK_LE(lo_[i], hi_[i]) << "empty range in dimension " << i;
    AVM_CHECK_GT(extent_[i], 0) << "non-positive extent in dimension " << i;
    const int64_t range = hi_[i] - lo_[i] + 1;
    AVM_CHECK_EQ(chunks_in_dim_[i], (range + extent_[i] - 1) / extent_[i])
        << "chunk count of dimension " << i
        << " disagrees with its range and extent";
    slots *= chunks_in_dim_[i];
  }
  if (dims == 0) {
    // Default-constructed (0) or built from a dimensionless schema (1).
    AVM_CHECK_LE(total_slots_, 1);
    return;
  }
  AVM_CHECK_EQ(total_slots_, slots)
      << "total chunk-slot count is not the per-dimension product";
}

void ChunkGrid::ForEachChunkOverlapping(
    const Box& box, const std::function<void(ChunkId)>& fn) const {
  AVM_CHECK_EQ(box.lo.size(), lo_.size());
  // Clip the box to the array ranges; empty intersection -> no chunks.
  std::vector<int64_t> first(lo_.size());
  std::vector<int64_t> last(lo_.size());
  for (size_t i = 0; i < lo_.size(); ++i) {
    const int64_t clo = std::max(box.lo[i], lo_[i]);
    const int64_t chi = std::min(box.hi[i], hi_[i]);
    if (clo > chi) return;
    first[i] = (clo - lo_[i]) / extent_[i];
    last[i] = (chi - lo_[i]) / extent_[i];
  }
  // Odometer enumeration of the chunk-position hyper-rectangle.
  ChunkPos pos = first;
  for (;;) {
    fn(IdOfPos(pos));
    size_t d = pos.size();
    while (d-- > 0) {
      if (pos[d] < last[d]) {
        ++pos[d];
        break;
      }
      pos[d] = first[d];
      if (d == 0) return;
    }
  }
}

}  // namespace avm
