#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace avm {

/// A cell coordinate: one integer index per dimension, in schema order.
using CellCoord = std::vector<int64_t>;

/// A chunk position on the regular chunk grid: one chunk index per dimension.
using ChunkPos = std::vector<int64_t>;

/// Dense linearization of a ChunkPos; the unit of catalog metadata, plan
/// triples, and chunk-store keys.
using ChunkId = uint64_t;

/// Hash functor for coordinate vectors, suitable for unordered containers.
struct CoordHash {
  size_t operator()(const std::vector<int64_t>& v) const {
    return static_cast<size_t>(HashInts(v));
  }
};

/// Axis-aligned inclusive box [lo, hi] in cell-coordinate space. Used for
/// chunk extents and shape bounding boxes.
struct Box {
  CellCoord lo;
  CellCoord hi;

  size_t num_dims() const { return lo.size(); }

  /// True if `c` lies inside the box (same dimensionality assumed).
  bool Contains(const CellCoord& c) const {
    for (size_t i = 0; i < lo.size(); ++i) {
      if (c[i] < lo[i] || c[i] > hi[i]) return false;
    }
    return true;
  }

  /// True if the two boxes overlap in every dimension.
  bool Intersects(const Box& other) const {
    for (size_t i = 0; i < lo.size(); ++i) {
      if (hi[i] < other.lo[i] || other.hi[i] < lo[i]) return false;
    }
    return true;
  }

  /// Number of cells covered (product of per-dim extents); saturating is not
  /// needed at the scales we target.
  int64_t NumCells() const {
    int64_t n = 1;
    for (size_t i = 0; i < lo.size(); ++i) n *= (hi[i] - lo[i] + 1);
    return n;
  }

  bool operator==(const Box& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

}  // namespace avm

