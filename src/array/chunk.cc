#include "array/chunk.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace avm {

void Chunk::UpsertCell(uint64_t offset, const CellCoord& coord,
                       std::span<const double> values) {
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(values.size(), num_attrs_);
  auto it = index_.find(offset);
  if (it != index_.end()) {
    std::memcpy(values_.data() + it->second * num_attrs_, values.data(),
                num_attrs_ * sizeof(double));
    return;
  }
  const uint32_t row = static_cast<uint32_t>(num_cells());
  offsets_.push_back(offset);
  coords_.insert(coords_.end(), coord.begin(), coord.end());
  values_.insert(values_.end(), values.begin(), values.end());
  index_.emplace(offset, row);
}

void Chunk::AccumulateCell(uint64_t offset, const CellCoord& coord,
                           std::span<const double> values) {
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(values.size(), num_attrs_);
  auto it = index_.find(offset);
  if (it != index_.end()) {
    double* dst = values_.data() + it->second * num_attrs_;
    for (size_t i = 0; i < num_attrs_; ++i) dst[i] += values[i];
    return;
  }
  UpsertCell(offset, coord, values);
}

bool Chunk::EraseCell(uint64_t offset) {
  auto it = index_.find(offset);
  if (it == index_.end()) return false;
  const uint32_t row = it->second;
  const uint32_t last = static_cast<uint32_t>(num_cells()) - 1;
  if (row != last) {
    // Swap-with-last to keep the row storage dense.
    offsets_[row] = offsets_[last];
    std::memcpy(coords_.data() + row * num_dims_,
                coords_.data() + last * num_dims_, num_dims_ * sizeof(int64_t));
    std::memcpy(values_.data() + row * num_attrs_,
                values_.data() + last * num_attrs_,
                num_attrs_ * sizeof(double));
    index_[offsets_[row]] = row;
  }
  offsets_.pop_back();
  coords_.resize(coords_.size() - num_dims_);
  values_.resize(values_.size() - num_attrs_);
  index_.erase(it);
  return true;
}

const double* Chunk::GetCell(uint64_t offset) const {
  auto it = index_.find(offset);
  if (it == index_.end()) return nullptr;
  return values_.data() + it->second * num_attrs_;
}

double* Chunk::GetMutableCell(uint64_t offset) {
  auto it = index_.find(offset);
  if (it == index_.end()) return nullptr;
  return values_.data() + it->second * num_attrs_;
}

void Chunk::ForEachCell(
    const std::function<void(std::span<const int64_t>,
                             std::span<const double>)>& fn) const {
  for (size_t row = 0; row < num_cells(); ++row) {
    fn(CoordOfRow(row), ValuesOfRow(row));
  }
}

Status Chunk::AccumulateChunk(const Chunk& other) {
  if (other.num_dims_ != num_dims_ || other.num_attrs_ != num_attrs_) {
    return Status::InvalidArgument(
        "AccumulateChunk: incompatible chunk layouts");
  }
  CellCoord coord(num_dims_);
  for (size_t row = 0; row < other.num_cells(); ++row) {
    auto c = other.CoordOfRow(row);
    coord.assign(c.begin(), c.end());
    AccumulateCell(other.OffsetOfRow(row), coord, other.ValuesOfRow(row));
  }
  return Status::OK();
}

bool Chunk::ContentEquals(const Chunk& other, double tolerance) const {
  if (num_cells() != other.num_cells()) return false;
  if (num_dims_ != other.num_dims_ || num_attrs_ != other.num_attrs_) {
    return false;
  }
  for (const auto& [offset, row] : index_) {
    const double* theirs = other.GetCell(offset);
    if (theirs == nullptr) return false;
    const double* ours = values_.data() + row * num_attrs_;
    for (size_t i = 0; i < num_attrs_; ++i) {
      if (std::abs(ours[i] - theirs[i]) > tolerance) return false;
    }
  }
  return true;
}

}  // namespace avm
