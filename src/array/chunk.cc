#include "array/chunk.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "array/chunk_grid.h"
#include "common/check.h"
#include "telemetry/metrics.h"

namespace avm {

namespace {

/// Unclipped slot volume of one chunk of `grid`: the product of the chunk
/// extents. Edge chunks clipped by the array ranges address a subset of
/// these offsets; the dense layout sizes for the full extent box because the
/// in-chunk offset — the dense slot index — is linearized against it.
uint64_t SlotVolume(const ChunkGrid& grid) {
  uint64_t volume = 1;
  for (int64_t e : grid.extents()) volume *= static_cast<uint64_t>(e);
  return volume;
}

}  // namespace

void Chunk::Reserve(size_t cells) {
  if (rep_ == ChunkRep::kDense) return;
  offsets_.reserve(cells);
  coords_.reserve(cells * num_dims_);
  values_.reserve(cells * num_attrs_);
  index_.Reserve(cells);
}

void Chunk::ClearAndRelayout(size_t num_dims, size_t num_attrs) {
  num_dims_ = num_dims;
  num_attrs_ = num_attrs;
  rep_ = ChunkRep::kSparse;
  offsets_.clear();
  coords_.clear();
  values_.clear();
  index_.Clear();
  dense_origin_.clear();
  dense_extents_.clear();
  dense_volume_ = 0;
  dense_cells_ = 0;
  bitmap_.clear();
  lanes_.clear();
}

Status Chunk::AdoptRows(std::vector<uint64_t> offsets,
                        std::vector<int64_t> coords,
                        std::vector<double> values) {
  const size_t cells = offsets.size();
  if (coords.size() != cells * num_dims_ || values.size() != cells * num_attrs_) {
    return Status::InvalidArgument(
        "AdoptRows: buffer lengths disagree with the row count");
  }
  OffsetIndex index;
  index.Reserve(cells);
  for (size_t row = 0; row < cells; ++row) {
    if (offsets[row] >= UINT64_MAX - 1) {
      // The index reserves the top two keys as slot markers; real in-chunk
      // offsets never get near them, so this is corrupt input.
      return Status::InvalidArgument("AdoptRows: implausible in-chunk offset");
    }
    if (index.Find(offsets[row]) != OffsetIndex::kNotFound) {
      return Status::InvalidArgument("AdoptRows: duplicate in-chunk offset " +
                                     std::to_string(offsets[row]));
    }
    index.Insert(offsets[row], static_cast<uint32_t>(row));
  }
  ClearAndRelayout(num_dims_, num_attrs_);
  offsets_ = std::move(offsets);
  coords_ = std::move(coords);
  values_ = std::move(values);
  index_ = std::move(index);
  return Status::OK();
}

Status Chunk::AdoptDense(std::vector<int64_t> origin,
                         std::vector<int64_t> extents,
                         std::vector<uint64_t> bitmap,
                         std::vector<double> lanes) {
  if (origin.size() != num_dims_ || extents.size() != num_dims_) {
    return Status::InvalidArgument(
        "AdoptDense: box arity disagrees with the chunk layout");
  }
  uint64_t volume = 1;
  for (int64_t e : extents) {
    if (e <= 0) return Status::InvalidArgument("AdoptDense: non-positive extent");
    volume *= static_cast<uint64_t>(e);
  }
  if (volume == 0 || volume > kMaxDenseVolume) {
    return Status::InvalidArgument("AdoptDense: implausible box volume");
  }
  if (bitmap.size() != (volume + 63) / 64 ||
      lanes.size() != volume * num_attrs_) {
    return Status::InvalidArgument(
        "AdoptDense: buffer lengths disagree with the box volume");
  }
  if ((volume & 63) != 0 &&
      (bitmap.back() >> (volume & 63)) != 0) {
    return Status::InvalidArgument(
        "AdoptDense: nonzero bitmap bits beyond the box volume");
  }
  size_t cells = 0;
  for (uint64_t word : bitmap) cells += std::popcount(word);
  // Vacant-lane invariant: the branch-free kernel folds vacant slots
  // blindly, so a nonzero lane behind a clear bit is corrupt input.
  for (uint64_t off = 0; off < volume; ++off) {
    if ((bitmap[off >> 6] >> (off & 63)) & 1u) continue;
    for (size_t a = 0; a < num_attrs_; ++a) {
      if (lanes[off * num_attrs_ + a] != 0.0) {
        return Status::InvalidArgument(
            "AdoptDense: nonzero value lane behind a vacant slot");
      }
    }
  }
  ClearAndRelayout(num_dims_, num_attrs_);
  rep_ = ChunkRep::kDense;
  dense_origin_ = std::move(origin);
  dense_extents_ = std::move(extents);
  dense_volume_ = volume;
  dense_cells_ = cells;
  bitmap_ = std::move(bitmap);
  lanes_ = std::move(lanes);
  return Status::OK();
}

void Chunk::UpsertCell(uint64_t offset, std::span<const int64_t> coord,
                       std::span<const double> values) {
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(values.size(), num_attrs_);
  if (rep_ == ChunkRep::kDense) {
    AVM_CHECK_LT(offset, dense_volume_)
        << "dense upsert outside the chunk box";
    if (!DenseBit(offset)) {
      bitmap_[offset >> 6] |= uint64_t{1} << (offset & 63);
      ++dense_cells_;
    }
    std::memcpy(lanes_.data() + offset * num_attrs_, values.data(),
                num_attrs_ * sizeof(double));
    return;
  }
  const uint32_t existing = index_.Find(offset);
  if (existing != OffsetIndex::kNotFound) {
    std::memcpy(values_.data() + existing * num_attrs_, values.data(),
                num_attrs_ * sizeof(double));
    return;
  }
  const uint32_t row = static_cast<uint32_t>(num_cells());
  offsets_.push_back(offset);
  coords_.insert(coords_.end(), coord.begin(), coord.end());
  values_.insert(values_.end(), values.begin(), values.end());
  index_.Insert(offset, row);
}

void Chunk::AccumulateCell(uint64_t offset, std::span<const int64_t> coord,
                           std::span<const double> values) {
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(values.size(), num_attrs_);
  if (rep_ == ChunkRep::kDense) {
    AVM_CHECK_LT(offset, dense_volume_)
        << "dense accumulate outside the chunk box";
    double* dst = lanes_.data() + offset * num_attrs_;
    if (DenseBit(offset)) {
      for (size_t i = 0; i < num_attrs_; ++i) dst[i] += values[i];
    } else {
      bitmap_[offset >> 6] |= uint64_t{1} << (offset & 63);
      ++dense_cells_;
      std::memcpy(dst, values.data(), num_attrs_ * sizeof(double));
    }
    return;
  }
  const uint32_t row = index_.Find(offset);
  if (row != OffsetIndex::kNotFound) {
    double* dst = values_.data() + row * num_attrs_;
    for (size_t i = 0; i < num_attrs_; ++i) dst[i] += values[i];
    return;
  }
  UpsertCell(offset, coord, values);
}

size_t Chunk::GetOrCreateRow(uint64_t offset, std::span<const int64_t> coord,
                             std::span<const double> init) {
  AVM_CHECK(rep_ == ChunkRep::kSparse)
      << "GetOrCreateRow on a dense chunk (use GetOrCreateCell)";
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(init.size(), num_attrs_);
  const uint32_t existing = index_.Find(offset);
  if (existing != OffsetIndex::kNotFound) return existing;
  const uint32_t row = static_cast<uint32_t>(num_cells());
  offsets_.push_back(offset);
  coords_.insert(coords_.end(), coord.begin(), coord.end());
  values_.insert(values_.end(), init.begin(), init.end());
  index_.Insert(offset, row);
  return row;
}

Chunk::CellRef Chunk::GetOrCreateCell(uint64_t offset,
                                      std::span<const int64_t> coord,
                                      std::span<const double> init) {
  if (rep_ == ChunkRep::kSparse) return GetOrCreateRow(offset, coord, init);
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(init.size(), num_attrs_);
  AVM_CHECK_LT(offset, dense_volume_) << "dense create outside the chunk box";
  if (!DenseBit(offset)) {
    bitmap_[offset >> 6] |= uint64_t{1} << (offset & 63);
    ++dense_cells_;
    std::memcpy(lanes_.data() + offset * num_attrs_, init.data(),
                num_attrs_ * sizeof(double));
  }
  return static_cast<CellRef>(offset);
}

bool Chunk::EraseCell(uint64_t offset) {
  if (rep_ == ChunkRep::kDense) {
    if (offset >= dense_volume_ || !DenseBit(offset)) return false;
    bitmap_[offset >> 6] &= ~(uint64_t{1} << (offset & 63));
    --dense_cells_;
    // Re-zero the vacated lanes: the branch-free kernel folds them blindly.
    std::memset(lanes_.data() + offset * num_attrs_, 0,
                num_attrs_ * sizeof(double));
    return true;
  }
  const uint32_t row = index_.Find(offset);
  if (row == OffsetIndex::kNotFound) return false;
  const uint32_t last = static_cast<uint32_t>(num_cells()) - 1;
  if (row != last) {
    // Swap-with-last to keep the row storage dense.
    offsets_[row] = offsets_[last];
    std::memcpy(coords_.data() + row * num_dims_,
                coords_.data() + last * num_dims_, num_dims_ * sizeof(int64_t));
    std::memcpy(values_.data() + row * num_attrs_,
                values_.data() + last * num_attrs_,
                num_attrs_ * sizeof(double));
    index_.SetRow(offsets_[row], row);
  }
  offsets_.pop_back();
  coords_.resize(coords_.size() - num_dims_);
  values_.resize(values_.size() - num_attrs_);
  index_.Erase(offset);
  return true;
}

void Chunk::Densify(const ChunkGrid& grid, ChunkId id) {
  AVM_CHECK(rep_ == ChunkRep::kSparse) << "Densify on a dense chunk";
  AVM_CHECK_EQ(grid.num_dims(), num_dims_)
      << "grid dimensionality disagrees with the chunk layout";
  const uint64_t volume = SlotVolume(grid);
  AVM_CHECK(volume > 0 && volume <= kMaxDenseVolume)
      << "chunk box volume " << volume << " outside the densifiable range";
  const Box box = grid.ChunkBoxOfId(id);

  dense_origin_ = box.lo;
  dense_extents_ = grid.extents();
  dense_volume_ = volume;
  dense_cells_ = offsets_.size();
  bitmap_.assign((volume + 63) / 64, 0);
  lanes_.assign(volume * num_attrs_, 0.0);
  for (size_t row = 0; row < offsets_.size(); ++row) {
    const uint64_t off = offsets_[row];
    AVM_CHECK_LT(off, volume) << "cell offset outside the chunk box volume";
    bitmap_[off >> 6] |= uint64_t{1} << (off & 63);
    std::memcpy(lanes_.data() + off * num_attrs_,
                values_.data() + row * num_attrs_,
                num_attrs_ * sizeof(double));
  }
  rep_ = ChunkRep::kDense;
  offsets_.clear();
  coords_.clear();
  values_.clear();
  index_.Clear();
}

void Chunk::Sparsify() {
  AVM_CHECK(rep_ == ChunkRep::kDense) << "Sparsify on a sparse chunk";
  offsets_.clear();
  coords_.clear();
  values_.clear();
  index_.Clear();
  offsets_.reserve(dense_cells_);
  coords_.reserve(dense_cells_ * num_dims_);
  values_.reserve(dense_cells_ * num_attrs_);
  index_.Reserve(dense_cells_);

  CellCoord coord = dense_origin_;
  uint32_t row = 0;
  for (uint64_t off = 0; off < dense_volume_; ++off) {
    if (DenseBit(off)) {
      offsets_.push_back(off);
      coords_.insert(coords_.end(), coord.begin(), coord.end());
      values_.insert(values_.end(), lanes_.begin() + off * num_attrs_,
                     lanes_.begin() + (off + 1) * num_attrs_);
      index_.Insert(off, row++);
    }
    for (size_t d = num_dims_; d-- > 0;) {
      if (++coord[d] < dense_origin_[d] + dense_extents_[d]) break;
      coord[d] = dense_origin_[d];
    }
  }
  rep_ = ChunkRep::kSparse;
  dense_origin_.clear();
  dense_extents_.clear();
  dense_volume_ = 0;
  dense_cells_ = 0;
  bitmap_.clear();
  lanes_.clear();
}

bool Chunk::MaybeAdaptRepresentation(const ChunkGrid& grid, ChunkId id) {
  const DensificationMode mode = GetDensificationMode();
  if (mode == DensificationMode::kForceSparse) {
    if (rep_ != ChunkRep::kDense) return false;
    Sparsify();
    CountAdd(CounterId::kChunksSparsified);
    return true;
  }
  const uint64_t volume = SlotVolume(grid);
  if (volume == 0 || volume > kMaxDenseVolume) return false;
  if (mode == DensificationMode::kForceDense) {
    if (rep_ != ChunkRep::kSparse || empty()) return false;
    Densify(grid, id);
    CountAdd(CounterId::kChunksDensified);
    return true;
  }
  // kAuto: hysteresis band against the unclipped slot volume. Clipped edge
  // chunks under-report occupancy and so densify a little late; harmless.
  const double occupancy =
      static_cast<double>(num_cells()) / static_cast<double>(volume);
  if (rep_ == ChunkRep::kSparse && occupancy >= kDensifyDensity) {
    Densify(grid, id);
    CountAdd(CounterId::kChunksDensified);
    return true;
  }
  if (rep_ == ChunkRep::kDense && occupancy <= kSparsifyDensity) {
    Sparsify();
    CountAdd(CounterId::kChunksSparsified);
    return true;
  }
  return false;
}

Status Chunk::AccumulateChunk(const Chunk& other) {
  if (other.num_dims_ != num_dims_ || other.num_attrs_ != num_attrs_) {
    return Status::InvalidArgument(
        "AccumulateChunk: incompatible chunk layouts");
  }
  Reserve(num_cells() + other.num_cells());
  other.ForEachCellWithOffset(
      [this](uint64_t offset, std::span<const int64_t> coord,
             std::span<const double> values) {
        AccumulateCell(offset, coord, values);
      });
  return Status::OK();
}

Status Chunk::UpsertChunk(const Chunk& other) {
  if (other.num_dims_ != num_dims_ || other.num_attrs_ != num_attrs_) {
    return Status::InvalidArgument("UpsertChunk: incompatible chunk layouts");
  }
  Reserve(num_cells() + other.num_cells());
  other.ForEachCellWithOffset(
      [this](uint64_t offset, std::span<const int64_t> coord,
             std::span<const double> values) {
        UpsertCell(offset, coord, values);
      });
  return Status::OK();
}

void Chunk::CheckInvariants(const ChunkGrid* grid, ChunkId id) const {
  if (rep_ == ChunkRep::kDense) {
    // Box metadata: arity, positive extents, volume product.
    AVM_CHECK_EQ(dense_origin_.size(), num_dims_)
        << "dense box origin arity disagrees with the chunk layout";
    AVM_CHECK_EQ(dense_extents_.size(), num_dims_)
        << "dense box extent arity disagrees with the chunk layout";
    uint64_t volume = 1;
    for (int64_t e : dense_extents_) {
      AVM_CHECK_GT(e, 0) << "non-positive dense box extent";
      volume *= static_cast<uint64_t>(e);
    }
    AVM_CHECK_EQ(dense_volume_, volume)
        << "stored dense volume disagrees with the box extents";
    AVM_CHECK_EQ(bitmap_.size(), (volume + 63) / 64)
        << "bitmap word count disagrees with the box volume";
    AVM_CHECK_EQ(lanes_.size(), volume * num_attrs_)
        << "lane buffer size disagrees with the box volume";
    if ((volume & 63) != 0) {
      AVM_CHECK_EQ(bitmap_.back() >> (volume & 63), 0u)
          << "nonzero bitmap bits beyond the box volume";
    }
    // Bitmap <-> lane agreement: the population matches the cell count and
    // every vacant slot's lanes are zero (the branch-free kernel invariant).
    size_t population = 0;
    for (uint64_t word : bitmap_) population += std::popcount(word);
    AVM_CHECK_EQ(population, dense_cells_)
        << "bitmap population disagrees with the stored cell count";
    for (uint64_t off = 0; off < volume; ++off) {
      if (DenseBit(off)) continue;
      for (size_t a = 0; a < num_attrs_; ++a) {
        AVM_CHECK_EQ(lanes_[off * num_attrs_ + a], 0.0)
            << "nonzero value lane behind the vacant slot at offset " << off;
      }
    }
    if (grid == nullptr) return;
    AVM_CHECK_EQ(grid->num_dims(), num_dims_)
        << "grid dimensionality disagrees with the chunk layout";
    const Box box = grid->ChunkBoxOfId(id);
    AVM_CHECK(dense_origin_ == box.lo)
        << "dense box origin disagrees with the grid for chunk " << id;
    AVM_CHECK(dense_extents_ == grid->extents())
        << "dense box extents disagree with the grid's chunk extents";
    CellCoord coord(num_dims_);
    ForEachCellWithOffset([&](uint64_t offset, std::span<const int64_t> c,
                              std::span<const double>) {
      coord.assign(c.begin(), c.end());
      AVM_CHECK(box.Contains(coord))
          << "dense cell at offset " << offset << " lies outside chunk " << id
          << "'s box";
      const ChunkGrid::CellSlot slot = grid->SlotOfCell(coord);
      AVM_CHECK_EQ(slot.id, id)
          << "dense cell at offset " << offset
          << " linearizes into a different chunk";
      AVM_CHECK_EQ(slot.offset, offset)
          << "dense slot offset disagrees with the grid's linearization";
    });
    return;
  }

  // Row storage: the three flat buffers describe the same cell count.
  const size_t cells = offsets_.size();
  AVM_CHECK_EQ(coords_.size(), cells * num_dims_)
      << "coordinate buffer size disagrees with the row count";
  AVM_CHECK_EQ(values_.size(), cells * num_attrs_)
      << "value buffer size disagrees with the row count";

  // Offset index: internally consistent, covers exactly the stored rows,
  // and maps each row's offset back to that row.
  index_.CheckInvariants();
  AVM_CHECK_EQ(index_.size(), cells)
      << "offset index entry count disagrees with the row count";
  for (size_t row = 0; row < cells; ++row) {
    AVM_CHECK_EQ(static_cast<size_t>(index_.Find(offsets_[row])), row)
        << "offset " << offsets_[row]
        << " does not index its own row (duplicate or stale index entry)";
  }

  if (grid == nullptr) return;

  // Geometry: every cell lies inside this chunk's box and re-linearizes to
  // (id, stored offset). This is the Chunk <-> ChunkGrid addressing
  // contract the offset-linearized join fast paths rely on.
  AVM_CHECK_EQ(grid->num_dims(), num_dims_)
      << "grid dimensionality disagrees with the chunk layout";
  const Box box = grid->ChunkBoxOfId(id);
  CellCoord coord(num_dims_);
  for (size_t row = 0; row < cells; ++row) {
    const auto c = CoordOfRow(row);
    coord.assign(c.begin(), c.end());
    AVM_CHECK(box.Contains(coord))
        << "cell of row " << row << " lies outside chunk " << id << "'s box";
    const ChunkGrid::CellSlot slot = grid->SlotOfCell(coord);
    AVM_CHECK_EQ(slot.id, id)
        << "cell of row " << row << " linearizes into a different chunk";
    AVM_CHECK_EQ(slot.offset, offsets_[row])
        << "stored in-chunk offset of row " << row
        << " disagrees with the grid's linearization";
  }
}

bool Chunk::ContentEquals(const Chunk& other, double tolerance) const {
  if (num_cells() != other.num_cells()) return false;
  if (num_dims_ != other.num_dims_ || num_attrs_ != other.num_attrs_) {
    return false;
  }
  bool equal = true;
  ForEachCellWithOffset([&](uint64_t offset, std::span<const int64_t>,
                            std::span<const double> values) {
    if (!equal) return;
    const double* theirs = other.GetCell(offset);
    if (theirs == nullptr) {
      equal = false;
      return;
    }
    for (size_t i = 0; i < num_attrs_; ++i) {
      if (std::abs(values[i] - theirs[i]) > tolerance) {
        equal = false;
        return;
      }
    }
  });
  return equal;
}

}  // namespace avm
