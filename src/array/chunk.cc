#include "array/chunk.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace avm {

void Chunk::Reserve(size_t cells) {
  offsets_.reserve(cells);
  coords_.reserve(cells * num_dims_);
  values_.reserve(cells * num_attrs_);
  index_.Reserve(cells);
}

void Chunk::UpsertCell(uint64_t offset, const CellCoord& coord,
                       std::span<const double> values) {
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(values.size(), num_attrs_);
  const uint32_t existing = index_.Find(offset);
  if (existing != OffsetIndex::kNotFound) {
    std::memcpy(values_.data() + existing * num_attrs_, values.data(),
                num_attrs_ * sizeof(double));
    return;
  }
  const uint32_t row = static_cast<uint32_t>(num_cells());
  offsets_.push_back(offset);
  coords_.insert(coords_.end(), coord.begin(), coord.end());
  values_.insert(values_.end(), values.begin(), values.end());
  index_.Insert(offset, row);
}

void Chunk::AccumulateCell(uint64_t offset, const CellCoord& coord,
                           std::span<const double> values) {
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(values.size(), num_attrs_);
  const uint32_t row = index_.Find(offset);
  if (row != OffsetIndex::kNotFound) {
    double* dst = values_.data() + row * num_attrs_;
    for (size_t i = 0; i < num_attrs_; ++i) dst[i] += values[i];
    return;
  }
  UpsertCell(offset, coord, values);
}

size_t Chunk::GetOrCreateRow(uint64_t offset, std::span<const int64_t> coord,
                             std::span<const double> init) {
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(init.size(), num_attrs_);
  const uint32_t existing = index_.Find(offset);
  if (existing != OffsetIndex::kNotFound) return existing;
  const uint32_t row = static_cast<uint32_t>(num_cells());
  offsets_.push_back(offset);
  coords_.insert(coords_.end(), coord.begin(), coord.end());
  values_.insert(values_.end(), init.begin(), init.end());
  index_.Insert(offset, row);
  return row;
}

bool Chunk::EraseCell(uint64_t offset) {
  const uint32_t row = index_.Find(offset);
  if (row == OffsetIndex::kNotFound) return false;
  const uint32_t last = static_cast<uint32_t>(num_cells()) - 1;
  if (row != last) {
    // Swap-with-last to keep the row storage dense.
    offsets_[row] = offsets_[last];
    std::memcpy(coords_.data() + row * num_dims_,
                coords_.data() + last * num_dims_, num_dims_ * sizeof(int64_t));
    std::memcpy(values_.data() + row * num_attrs_,
                values_.data() + last * num_attrs_,
                num_attrs_ * sizeof(double));
    index_.SetRow(offsets_[row], row);
  }
  offsets_.pop_back();
  coords_.resize(coords_.size() - num_dims_);
  values_.resize(values_.size() - num_attrs_);
  index_.Erase(offset);
  return true;
}

Status Chunk::AccumulateChunk(const Chunk& other) {
  if (other.num_dims_ != num_dims_ || other.num_attrs_ != num_attrs_) {
    return Status::InvalidArgument(
        "AccumulateChunk: incompatible chunk layouts");
  }
  Reserve(num_cells() + other.num_cells());
  CellCoord coord(num_dims_);
  for (size_t row = 0; row < other.num_cells(); ++row) {
    auto c = other.CoordOfRow(row);
    coord.assign(c.begin(), c.end());
    AccumulateCell(other.OffsetOfRow(row), coord, other.ValuesOfRow(row));
  }
  return Status::OK();
}

bool Chunk::ContentEquals(const Chunk& other, double tolerance) const {
  if (num_cells() != other.num_cells()) return false;
  if (num_dims_ != other.num_dims_ || num_attrs_ != other.num_attrs_) {
    return false;
  }
  for (size_t row = 0; row < num_cells(); ++row) {
    const double* theirs = other.GetCell(offsets_[row]);
    if (theirs == nullptr) return false;
    const double* ours = values_.data() + row * num_attrs_;
    for (size_t i = 0; i < num_attrs_; ++i) {
      if (std::abs(ours[i] - theirs[i]) > tolerance) return false;
    }
  }
  return true;
}

}  // namespace avm
