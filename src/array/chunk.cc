#include "array/chunk.h"

#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "array/chunk_grid.h"
#include "common/check.h"

namespace avm {

void Chunk::Reserve(size_t cells) {
  offsets_.reserve(cells);
  coords_.reserve(cells * num_dims_);
  values_.reserve(cells * num_attrs_);
  index_.Reserve(cells);
}

void Chunk::ClearAndRelayout(size_t num_dims, size_t num_attrs) {
  num_dims_ = num_dims;
  num_attrs_ = num_attrs;
  offsets_.clear();
  coords_.clear();
  values_.clear();
  index_.Clear();
}

Status Chunk::AdoptRows(std::vector<uint64_t> offsets,
                        std::vector<int64_t> coords,
                        std::vector<double> values) {
  const size_t cells = offsets.size();
  if (coords.size() != cells * num_dims_ || values.size() != cells * num_attrs_) {
    return Status::InvalidArgument(
        "AdoptRows: buffer lengths disagree with the row count");
  }
  OffsetIndex index;
  index.Reserve(cells);
  for (size_t row = 0; row < cells; ++row) {
    if (offsets[row] >= UINT64_MAX - 1) {
      // The index reserves the top two keys as slot markers; real in-chunk
      // offsets never get near them, so this is corrupt input.
      return Status::InvalidArgument("AdoptRows: implausible in-chunk offset");
    }
    if (index.Find(offsets[row]) != OffsetIndex::kNotFound) {
      return Status::InvalidArgument("AdoptRows: duplicate in-chunk offset " +
                                     std::to_string(offsets[row]));
    }
    index.Insert(offsets[row], static_cast<uint32_t>(row));
  }
  offsets_ = std::move(offsets);
  coords_ = std::move(coords);
  values_ = std::move(values);
  index_ = std::move(index);
  return Status::OK();
}

void Chunk::UpsertCell(uint64_t offset, const CellCoord& coord,
                       std::span<const double> values) {
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(values.size(), num_attrs_);
  const uint32_t existing = index_.Find(offset);
  if (existing != OffsetIndex::kNotFound) {
    std::memcpy(values_.data() + existing * num_attrs_, values.data(),
                num_attrs_ * sizeof(double));
    return;
  }
  const uint32_t row = static_cast<uint32_t>(num_cells());
  offsets_.push_back(offset);
  coords_.insert(coords_.end(), coord.begin(), coord.end());
  values_.insert(values_.end(), values.begin(), values.end());
  index_.Insert(offset, row);
}

void Chunk::AccumulateCell(uint64_t offset, const CellCoord& coord,
                           std::span<const double> values) {
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(values.size(), num_attrs_);
  const uint32_t row = index_.Find(offset);
  if (row != OffsetIndex::kNotFound) {
    double* dst = values_.data() + row * num_attrs_;
    for (size_t i = 0; i < num_attrs_; ++i) dst[i] += values[i];
    return;
  }
  UpsertCell(offset, coord, values);
}

size_t Chunk::GetOrCreateRow(uint64_t offset, std::span<const int64_t> coord,
                             std::span<const double> init) {
  AVM_CHECK_EQ(coord.size(), num_dims_);
  AVM_CHECK_EQ(init.size(), num_attrs_);
  const uint32_t existing = index_.Find(offset);
  if (existing != OffsetIndex::kNotFound) return existing;
  const uint32_t row = static_cast<uint32_t>(num_cells());
  offsets_.push_back(offset);
  coords_.insert(coords_.end(), coord.begin(), coord.end());
  values_.insert(values_.end(), init.begin(), init.end());
  index_.Insert(offset, row);
  return row;
}

bool Chunk::EraseCell(uint64_t offset) {
  const uint32_t row = index_.Find(offset);
  if (row == OffsetIndex::kNotFound) return false;
  const uint32_t last = static_cast<uint32_t>(num_cells()) - 1;
  if (row != last) {
    // Swap-with-last to keep the row storage dense.
    offsets_[row] = offsets_[last];
    std::memcpy(coords_.data() + row * num_dims_,
                coords_.data() + last * num_dims_, num_dims_ * sizeof(int64_t));
    std::memcpy(values_.data() + row * num_attrs_,
                values_.data() + last * num_attrs_,
                num_attrs_ * sizeof(double));
    index_.SetRow(offsets_[row], row);
  }
  offsets_.pop_back();
  coords_.resize(coords_.size() - num_dims_);
  values_.resize(values_.size() - num_attrs_);
  index_.Erase(offset);
  return true;
}

Status Chunk::AccumulateChunk(const Chunk& other) {
  if (other.num_dims_ != num_dims_ || other.num_attrs_ != num_attrs_) {
    return Status::InvalidArgument(
        "AccumulateChunk: incompatible chunk layouts");
  }
  Reserve(num_cells() + other.num_cells());
  CellCoord coord(num_dims_);
  for (size_t row = 0; row < other.num_cells(); ++row) {
    auto c = other.CoordOfRow(row);
    coord.assign(c.begin(), c.end());
    AccumulateCell(other.OffsetOfRow(row), coord, other.ValuesOfRow(row));
  }
  return Status::OK();
}

void Chunk::CheckInvariants(const ChunkGrid* grid, ChunkId id) const {
  // Row storage: the three flat buffers describe the same cell count.
  const size_t cells = offsets_.size();
  AVM_CHECK_EQ(coords_.size(), cells * num_dims_)
      << "coordinate buffer size disagrees with the row count";
  AVM_CHECK_EQ(values_.size(), cells * num_attrs_)
      << "value buffer size disagrees with the row count";

  // Offset index: internally consistent, covers exactly the stored rows,
  // and maps each row's offset back to that row.
  index_.CheckInvariants();
  AVM_CHECK_EQ(index_.size(), cells)
      << "offset index entry count disagrees with the row count";
  for (size_t row = 0; row < cells; ++row) {
    AVM_CHECK_EQ(static_cast<size_t>(index_.Find(offsets_[row])), row)
        << "offset " << offsets_[row]
        << " does not index its own row (duplicate or stale index entry)";
  }

  if (grid == nullptr) return;

  // Geometry: every cell lies inside this chunk's box and re-linearizes to
  // (id, stored offset). This is the Chunk <-> ChunkGrid addressing
  // contract the offset-linearized join fast paths rely on.
  AVM_CHECK_EQ(grid->num_dims(), num_dims_)
      << "grid dimensionality disagrees with the chunk layout";
  const Box box = grid->ChunkBoxOfId(id);
  CellCoord coord(num_dims_);
  for (size_t row = 0; row < cells; ++row) {
    const auto c = CoordOfRow(row);
    coord.assign(c.begin(), c.end());
    AVM_CHECK(box.Contains(coord))
        << "cell of row " << row << " lies outside chunk " << id << "'s box";
    const ChunkGrid::CellSlot slot = grid->SlotOfCell(coord);
    AVM_CHECK_EQ(slot.id, id)
        << "cell of row " << row << " linearizes into a different chunk";
    AVM_CHECK_EQ(slot.offset, offsets_[row])
        << "stored in-chunk offset of row " << row
        << " disagrees with the grid's linearization";
  }
}

bool Chunk::ContentEquals(const Chunk& other, double tolerance) const {
  if (num_cells() != other.num_cells()) return false;
  if (num_dims_ != other.num_dims_ || num_attrs_ != other.num_attrs_) {
    return false;
  }
  for (size_t row = 0; row < num_cells(); ++row) {
    const double* theirs = other.GetCell(offsets_[row]);
    if (theirs == nullptr) return false;
    const double* ours = values_.data() + row * num_attrs_;
    for (size_t i = 0; i < num_attrs_; ++i) {
      if (std::abs(ours[i] - theirs[i]) > tolerance) return false;
    }
  }
  return true;
}

}  // namespace avm
