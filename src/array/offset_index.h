#ifndef AVM_ARRAY_OFFSET_INDEX_H_
#define AVM_ARRAY_OFFSET_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace avm {

/// Flat open-addressing hash index from in-chunk offsets to row numbers, the
/// point-lookup structure behind Chunk. Replaces std::unordered_map in the
/// join hot path: one cache line per probe instead of a bucket pointer chase,
/// and capacity is reservable so bulk loads rehash once.
///
/// Keys are in-chunk row-major offsets, always < the product of the chunk
/// extents, so the two largest uint64 values are free to serve as the
/// empty/tombstone slot markers. Linear probing over a power-of-two table;
/// tombstones left by Erase are reclaimed on the next growth rehash.
class OffsetIndex {
 public:
  static constexpr uint32_t kNotFound = UINT32_MAX;

  OffsetIndex() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Ensures `n` keys fit without rehashing.
  void Reserve(size_t n) {
    size_t needed = kMinCapacity;
    while (needed * kMaxLoadNum < n * kMaxLoadDen) needed <<= 1;
    if (needed > slots_.size()) Rehash(needed);
  }

  /// Row of `offset`, or kNotFound.
  uint32_t Find(uint64_t offset) const {
    if (slots_.empty()) return kNotFound;
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(offset) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.key == offset) return s.row;
      if (s.key == kEmpty) return kNotFound;
    }
  }

  /// Inserts offset -> row; the key must not be present.
  void Insert(uint64_t offset, uint32_t row) {
    AVM_CHECK(offset < kTombstone) << "in-chunk offset overflows the index";
    if (slots_.empty() ||
        (size_ + tombstones_ + 1) * kMaxLoadDen >
            slots_.size() * kMaxLoadNum) {
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(offset) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == kEmpty || s.key == kTombstone) {
        if (s.key == kTombstone) --tombstones_;
        s.key = offset;
        s.row = row;
        ++size_;
        return;
      }
      AVM_CHECK(s.key != offset) << "duplicate offset inserted";
    }
  }

  /// Repoints an existing key at a new row (used by swap-with-last erase).
  void SetRow(uint64_t offset, uint32_t row) {
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(offset) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == offset) {
        s.row = row;
        return;
      }
      AVM_CHECK(s.key != kEmpty) << "SetRow on a missing offset";
    }
  }

  /// Removes `offset`; returns whether it was present.
  bool Erase(uint64_t offset) {
    if (slots_.empty()) return false;
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(offset) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == offset) {
        s.key = kTombstone;
        --size_;
        ++tombstones_;
        return true;
      }
      if (s.key == kEmpty) return false;
    }
  }

 private:
  static constexpr uint64_t kEmpty = UINT64_MAX;
  static constexpr uint64_t kTombstone = UINT64_MAX - 1;
  static constexpr size_t kMinCapacity = 16;
  // Maximum load factor 7/8: linear probing stays short while growth still
  // amortizes, and Reserve(n) rounds to the next power of two anyway.
  static constexpr size_t kMaxLoadNum = 7;
  static constexpr size_t kMaxLoadDen = 8;

  struct Slot {
    uint64_t key = kEmpty;
    uint32_t row = 0;
  };

  static size_t Hash(uint64_t x) {
    // splitmix64 finalizer: offsets are near-sequential, so low bits must be
    // well mixed before masking.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    tombstones_ = 0;
    const size_t mask = new_capacity - 1;
    for (const Slot& s : old) {
      if (s.key >= kTombstone) continue;
      size_t i = Hash(s.key) & mask;
      while (slots_[i].key != kEmpty) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace avm

#endif  // AVM_ARRAY_OFFSET_INDEX_H_
