#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace avm {

/// Flat open-addressing hash index from in-chunk offsets to row numbers, the
/// point-lookup structure behind Chunk. Replaces std::unordered_map in the
/// join hot path: one cache line per probe instead of a bucket pointer chase,
/// and capacity is reservable so bulk loads rehash once.
///
/// Keys are in-chunk row-major offsets, always < the product of the chunk
/// extents, so the two largest uint64 values are free to serve as the
/// empty/tombstone slot markers. Linear probing over a power-of-two table;
/// tombstones left by Erase are reclaimed on the next growth rehash.
class OffsetIndex {
 public:
  static constexpr uint32_t kNotFound = UINT32_MAX;

  OffsetIndex() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Ensures `n` keys fit without rehashing.
  void Reserve(size_t n) {
    size_t needed = kMinCapacity;
    while (needed * kMaxLoadNum < n * kMaxLoadDen) needed <<= 1;
    if (needed > slots_.size()) Rehash(needed);
  }

  /// Row of `offset`, or kNotFound.
  uint32_t Find(uint64_t offset) const {
    if (slots_.empty()) return kNotFound;
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(offset) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.key == offset) return s.row;
      if (s.key == kEmpty) return kNotFound;
    }
  }

  /// Inserts offset -> row; the key must not be present.
  void Insert(uint64_t offset, uint32_t row) {
    AVM_CHECK(offset < kTombstone) << "in-chunk offset overflows the index";
    if (slots_.empty() ||
        (size_ + tombstones_ + 1) * kMaxLoadDen >
            slots_.size() * kMaxLoadNum) {
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(offset) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == kEmpty || s.key == kTombstone) {
        if (s.key == kTombstone) --tombstones_;
        s.key = offset;
        s.row = row;
        ++size_;
        return;
      }
      AVM_CHECK(s.key != offset) << "duplicate offset inserted";
    }
  }

  /// Repoints an existing key at a new row (used by swap-with-last erase).
  void SetRow(uint64_t offset, uint32_t row) {
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(offset) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == offset) {
        s.row = row;
        return;
      }
      AVM_CHECK(s.key != kEmpty) << "SetRow on a missing offset";
    }
  }

  /// Debug structural validator: the table is a power-of-two open-addressing
  /// array whose live/tombstone counters match the slots, and every live key
  /// is reachable through its probe chain (no key orphaned by a bad rehash
  /// or an out-of-order tombstone write). O(capacity); call from
  /// Chunk::CheckInvariants in Debug/test builds, never from kernels.
  void CheckInvariants() const {
    AVM_CHECK(slots_.empty() || (slots_.size() & (slots_.size() - 1)) == 0)
        << "capacity " << slots_.size() << " is not a power of two";
    size_t live = 0;
    size_t dead = 0;
    for (const Slot& s : slots_) {
      if (s.key == kEmpty) continue;
      if (s.key == kTombstone) {
        ++dead;
        continue;
      }
      ++live;
      AVM_CHECK_EQ(Find(s.key), s.row)
          << "offset " << s.key << " unreachable through its probe chain";
    }
    AVM_CHECK_EQ(live, size_) << "live-slot count drifted from size_";
    AVM_CHECK_EQ(dead, tombstones_)
        << "tombstone count drifted from tombstones_";
    AVM_CHECK(slots_.empty() ||
              (size_ + tombstones_) * kMaxLoadDen <=
                  slots_.size() * kMaxLoadNum)
        << "load factor above the rehash threshold";
  }

  /// Empties the index while keeping the slot table allocated, so a pooled
  /// chunk's next bulk load reuses the capacity instead of rehashing from
  /// scratch.
  void Clear() {
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
    tombstones_ = 0;
  }

  /// Bytes held by the slot table (capacity, not live entries).
  uint64_t CapacityBytes() const { return slots_.capacity() * sizeof(Slot); }

  /// Removes `offset`; returns whether it was present.
  bool Erase(uint64_t offset) {
    if (slots_.empty()) return false;
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(offset) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == offset) {
        s.key = kTombstone;
        --size_;
        ++tombstones_;
        return true;
      }
      if (s.key == kEmpty) return false;
    }
  }

 private:
  static constexpr uint64_t kEmpty = UINT64_MAX;
  static constexpr uint64_t kTombstone = UINT64_MAX - 1;
  static constexpr size_t kMinCapacity = 16;
  // Maximum load factor 7/8: linear probing stays short while growth still
  // amortizes, and Reserve(n) rounds to the next power of two anyway.
  static constexpr size_t kMaxLoadNum = 7;
  static constexpr size_t kMaxLoadDen = 8;

  struct Slot {
    uint64_t key = kEmpty;
    uint32_t row = 0;
  };

  static size_t Hash(uint64_t x) {
    // splitmix64 finalizer: offsets are near-sequential, so low bits must be
    // well mixed before masking.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    tombstones_ = 0;
    const size_t mask = new_capacity - 1;
    for (const Slot& s : old) {
      if (s.key >= kTombstone) continue;
      size_t i = Hash(s.key) & mask;
      while (slots_[i].key != kEmpty) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace avm

