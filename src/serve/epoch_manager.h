#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "serve/view_epoch.h"
#include "view/materialized_view.h"

namespace avm {

/// The publication point of snapshot-isolated serving: holds the *current*
/// ViewEpoch for one view set and swaps a freshly pinned epoch in atomically
/// at every maintenance batch commit.
///
/// Threading model (the whole point of the class):
///   - Publish/PinView run on the maintenance control thread — they read the
///     catalog and the cluster stores, which are not thread-safe.
///   - OpenSnapshot may be called from any number of reader threads at any
///     time; it only touches the manager's mutex-protected current-epoch
///     slot and the epoch's refcount. Readers then evaluate queries against
///     the snapshot's pinned handles without ever touching catalog, cluster,
///     or stores — so queries proceed concurrently with the executor
///     rewriting the next epoch underneath.
///   - An epoch retires when its last reference (the manager's current slot
///     or any reader's snapshot) drops; retirement may therefore happen on a
///     reader thread. Retirement accounting lives in a shared stats block
///     that outlives both the manager and the epochs.
class EpochManager {
 public:
  EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Gathers a pinned, immutable view of `view` as of now: value copies of
  /// schema/layout plus owning handles to every registered chunk, resolved
  /// through the catalog's chunk->node map. Maintenance control thread only.
  static ViewPin PinView(const MaterializedView& view);

  /// Atomically swaps in a new current epoch holding `views` and returns its
  /// id (monotone, starting at 1). The superseded epoch stays alive while
  /// readers still pin it and retires when the last one drops. Maintenance
  /// control thread only.
  uint64_t Publish(std::vector<ViewPin> views);

  /// A lease on the current epoch; invalid if nothing was published yet.
  /// Safe from any thread, any time.
  ReadSnapshot OpenSnapshot() const;

  /// Id of the current epoch (0 before the first publish). Any thread.
  uint64_t current_epoch_id() const;

  /// Epochs published by this manager that have not retired yet. Any thread.
  uint64_t epochs_live() const;

  /// Retirement accounting: how long superseded epochs lingered before their
  /// last reader dropped them (the epoch-retirement lag the serve driver
  /// reports). The current epoch is not superseded and never counts.
  struct RetirementStats {
    uint64_t published = 0;
    uint64_t retired = 0;
    /// Retired epochs that had been superseded (lag is defined for these).
    uint64_t lagged = 0;
    double total_lag_seconds = 0.0;
    double max_lag_seconds = 0.0;
  };
  RetirementStats retirement() const;

 private:
  /// Shared with every published epoch's retire hook; outlives the manager.
  /// Ranked after the manager's own mutex: Publish nests stats updates (and
  /// the superseded epoch's retire hook) inside its critical section.
  struct Stats {
    Mutex mu{"EpochManager.stats", LockRank::kEpochStats};
    uint64_t published AVM_GUARDED_BY(mu) = 0;
    uint64_t retired AVM_GUARDED_BY(mu) = 0;
    uint64_t lagged AVM_GUARDED_BY(mu) = 0;
    double total_lag_seconds AVM_GUARDED_BY(mu) = 0.0;
    double max_lag_seconds AVM_GUARDED_BY(mu) = 0.0;
    /// Publish-of-successor timestamp per superseded epoch id.
    std::unordered_map<uint64_t, int64_t> superseded_at_ns
        AVM_GUARDED_BY(mu);
  };

  mutable Mutex mu_{"EpochManager.mu", LockRank::kEpochManager};
  std::shared_ptr<const ViewEpoch> current_ AVM_GUARDED_BY(mu_);
  uint64_t last_id_ AVM_GUARDED_BY(mu_) = 0;
  /// The pointer is set once in the constructor and never reseated; the
  /// pointee is guarded by its own Stats::mu.
  const std::shared_ptr<Stats> stats_;
};

}  // namespace avm
