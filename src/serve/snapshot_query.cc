#include "serve/snapshot_query.h"

#include <utility>

#include "array/chunk_grid.h"
#include "telemetry/metrics.h"
#include "telemetry/stopwatch.h"
#include "telemetry/trace.h"

namespace avm {

Result<SnapshotQueryResult> EvaluateSnapshotQuery(const ReadSnapshot& snapshot,
                                                  const SnapshotQuery& query) {
  if (!snapshot.valid()) {
    return Status::FailedPrecondition(
        "snapshot query before any epoch was published");
  }
  const ViewPin* pin = snapshot.epoch().Find(query.view);
  if (pin == nullptr) {
    return Status::NotFound("epoch " + std::to_string(snapshot.epoch_id()) +
                            " does not serve view '" + query.view + "'");
  }
  const size_t num_dims = pin->schema.num_dims();
  const bool bounded = !query.lo.empty() || !query.hi.empty();
  if (bounded &&
      (query.lo.size() != num_dims || query.hi.size() != num_dims)) {
    return Status::InvalidArgument(
        "query region arity does not match view dimensionality");
  }
  Box region;
  if (bounded) {
    for (size_t d = 0; d < num_dims; ++d) {
      if (query.lo[d] > query.hi[d]) {
        return Status::InvalidArgument("query region is empty in dimension " +
                                       std::to_string(d));
      }
    }
    region.lo.assign(query.lo.begin(), query.lo.end());
    region.hi.assign(query.hi.begin(), query.hi.end());
  }

  Stopwatch clock;
  ScopedSpan span("serve.query", "serve");
  span.AddArg("epoch", static_cast<int64_t>(snapshot.epoch_id()));

  // Finalized output schema: the view's dims, one attribute per aggregate.
  std::vector<Attribute> out_attrs;
  out_attrs.reserve(pin->layout.num_specs());
  for (const AggregateSpec& spec : pin->layout.specs()) {
    out_attrs.push_back({spec.output_name, AttributeType::kDouble});
  }
  AVM_ASSIGN_OR_RETURN(
      ArraySchema out_schema,
      ArraySchema::Create(pin->name + "_q", pin->schema.dims(),
                          std::move(out_attrs)));

  // The pinned grid geometry lets bounded queries skip whole chunks.
  const ChunkGrid grid(pin->schema);
  SnapshotQueryResult result{snapshot.epoch_id(), 0, SparseArray(out_schema)};
  std::vector<double> finalized(pin->layout.num_specs());
  CellCoord coord;
  Status status = Status::OK();
  for (const auto& [chunk_id, handle] : pin->chunks) {
    if (bounded && !grid.ChunkBoxOfId(chunk_id).Intersects(region)) continue;
    handle->ForEachCell([&](std::span<const int64_t> c,
                            std::span<const double> state) {
      if (!status.ok()) return;
      ++result.cells_scanned;
      if (bounded) {
        for (size_t d = 0; d < num_dims; ++d) {
          if (c[d] < region.lo[d] || c[d] > region.hi[d]) return;
        }
      }
      pin->layout.Finalize(state, finalized);
      coord.assign(c.begin(), c.end());
      status = result.finalized.Set(coord, finalized);
    });
    if (!status.ok()) return status;
  }

  span.AddArg("cells", static_cast<int64_t>(result.cells_scanned));
  CountAdd(CounterId::kServeQueries);
  HistogramRecord(HistogramId::kServeQuerySeconds, clock.ElapsedSeconds());
  return result;
}

}  // namespace avm
