#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "array/sparse_array.h"
#include "common/result.h"
#include "serve/view_epoch.h"

namespace avm {

/// A read against one view of a pinned epoch: the finalized aggregates of
/// every view cell inside an optional axis-aligned region. This is the
/// serving form of the paper's similarity-join aggregate — the join ran
/// eagerly at materialization/maintenance time, so a query is a scan of the
/// maintained states, finalized on the way out (AVG = sum/count, etc.).
struct SnapshotQuery {
  std::string view;
  /// Inclusive per-dimension bounds; both empty = the whole view. When
  /// given, both must have exactly the view's dimensionality.
  std::vector<int64_t> lo;
  std::vector<int64_t> hi;
};

struct SnapshotQueryResult {
  /// The epoch the result was computed against — every cell comes from this
  /// one published version (snapshot isolation).
  uint64_t epoch_id = 0;
  /// View cells visited (pre-filter), for plumbing/latency diagnostics.
  uint64_t cells_scanned = 0;
  /// Finalized outputs: same dims as the view, one attribute per aggregate.
  SparseArray finalized;
};

/// Evaluates `query` against the snapshot's pinned handles. Touches no
/// catalog, cluster, or store state, so any number of evaluations proceed
/// concurrently with each other and with maintenance of later epochs.
/// Fails with FailedPrecondition on an invalid snapshot, NotFound when the
/// epoch does not carry the view, InvalidArgument on a malformed region.
Result<SnapshotQueryResult> EvaluateSnapshotQuery(const ReadSnapshot& snapshot,
                                                  const SnapshotQuery& query);

}  // namespace avm
