#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "agg/aggregates.h"
#include "array/schema.h"
#include "storage/chunk_store.h"

namespace avm {

/// Everything a reader needs to evaluate queries over one view without
/// touching the catalog, the cluster, or the view object itself: the view's
/// identity, a value copy of its (state) schema and aggregate layout, and an
/// owning handle to every chunk the view had when the epoch was published.
/// The handles keep the chunk bytes alive — and, via the store's epoch-pin
/// rule, physically immutable — for as long as the pin exists.
struct ViewPin {
  std::string name;
  ArrayId array_id = 0;
  /// The view array's schema (cells hold aggregate *states*).
  ArraySchema schema;
  /// Finalizes states into user-visible outputs.
  AggregateLayout layout = AggregateLayout::Create({AggregateSpec{}}, 0).value();
  /// Owning handles of every non-empty view chunk at publish time.
  std::map<ChunkId, ChunkHandle> chunks;
  /// Total cells across the pinned chunks (diagnostics).
  uint64_t cells = 0;
};

/// One published, immutable version of a view set. Constructed by
/// EpochManager::Publish on the maintenance control thread and from then on
/// only read: readers resolve views by name and walk the pinned handles.
///
/// Lifecycle: an epoch is *current* from its publish until the next publish
/// supersedes it, then stays alive while any ReadSnapshot still references
/// it, and *retires* (destructor) when the last reference drops — releasing
/// its chunk pins, so chunks whose only owner was this epoch are freed.
/// Construction/destruction register a process-wide epoch pin
/// (storage/chunk_store.h), which switches every ChunkStore to conservative
/// copy-on-write for the epoch's whole lifetime.
class ViewEpoch {
 public:
  ViewEpoch(uint64_t id, std::vector<ViewPin> views);
  ~ViewEpoch();

  ViewEpoch(const ViewEpoch&) = delete;
  ViewEpoch& operator=(const ViewEpoch&) = delete;

  /// Monotone publication id (1-based; 0 means "nothing published yet").
  uint64_t id() const { return id_; }

  const std::vector<ViewPin>& views() const { return views_; }

  /// The pin for `view_name`, or nullptr if this epoch does not carry it.
  const ViewPin* Find(std::string_view view_name) const;

  /// Logical bytes held alive by this epoch's handles (each pinned chunk
  /// counted once, whether or not a store still holds it).
  uint64_t PinnedBytes() const;

  /// Hook invoked from the destructor, before the pins drop. Installed by
  /// EpochManager to observe retirement (lag accounting); the callback must
  /// not touch the manager's epoch state (it may run on a reader thread, and
  /// the manager may already be gone — capture shared state by value).
  void set_retire_hook(std::function<void(const ViewEpoch&)> hook) {
    retire_hook_ = std::move(hook);
  }

 private:
  uint64_t id_;
  std::vector<ViewPin> views_;
  std::function<void(const ViewEpoch&)> retire_hook_;
};

/// A reader's lease on one epoch: keeps the epoch (and through it every
/// pinned chunk) alive until the snapshot is destroyed. Move-only so the
/// serve.snapshots_open gauge stays an exact count of outstanding leases.
/// Opening is a shared_ptr copy under the manager's mutex; evaluation against
/// a snapshot never blocks on — and is never blocked by — maintenance.
class ReadSnapshot {
 public:
  /// An empty (invalid) snapshot; EpochManager::OpenSnapshot before the
  /// first publish returns one.
  ReadSnapshot() = default;

  explicit ReadSnapshot(std::shared_ptr<const ViewEpoch> epoch);
  ~ReadSnapshot();

  ReadSnapshot(ReadSnapshot&& other) noexcept;
  ReadSnapshot& operator=(ReadSnapshot&& other) noexcept;
  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  bool valid() const { return epoch_ != nullptr; }

  /// The pinned epoch; requires valid().
  const ViewEpoch& epoch() const;

  /// Id of the pinned epoch, 0 for an invalid snapshot.
  uint64_t epoch_id() const { return epoch_ == nullptr ? 0 : epoch_->id(); }

 private:
  void Release();

  std::shared_ptr<const ViewEpoch> epoch_;
};

}  // namespace avm
