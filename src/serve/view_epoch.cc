#include "serve/view_epoch.h"

#include "common/check.h"
#include "telemetry/metrics.h"

namespace avm {

ViewEpoch::ViewEpoch(uint64_t id, std::vector<ViewPin> views)
    : id_(id), views_(std::move(views)) {
  for (const ViewPin& pin : views_) {
    for (const auto& [chunk_id, handle] : pin.chunks) {
      AVM_CHECK(handle != nullptr)
          << "epoch " << id_ << " pins a null handle for view '" << pin.name
          << "' chunk " << chunk_id;
    }
  }
  AddEpochPin();
}

ViewEpoch::~ViewEpoch() {
  if (retire_hook_) retire_hook_(*this);
  CountAdd(CounterId::kServeEpochsRetired);
  ReleaseEpochPin();
}

const ViewPin* ViewEpoch::Find(std::string_view view_name) const {
  for (const ViewPin& pin : views_) {
    if (pin.name == view_name) return &pin;
  }
  return nullptr;
}

uint64_t ViewEpoch::PinnedBytes() const {
  uint64_t total = 0;
  for (const ViewPin& pin : views_) {
    for (const auto& [chunk_id, handle] : pin.chunks) {
      total += handle->SizeBytes();
    }
  }
  return total;
}

ReadSnapshot::ReadSnapshot(std::shared_ptr<const ViewEpoch> epoch)
    : epoch_(std::move(epoch)) {
  if (epoch_ != nullptr) {
    CountAdd(CounterId::kServeSnapshotsOpened);
    GaugeAdd(GaugeId::kServeSnapshotsOpen, 1);
  }
}

ReadSnapshot::~ReadSnapshot() { Release(); }

ReadSnapshot::ReadSnapshot(ReadSnapshot&& other) noexcept
    : epoch_(std::move(other.epoch_)) {
  other.epoch_ = nullptr;
}

ReadSnapshot& ReadSnapshot::operator=(ReadSnapshot&& other) noexcept {
  if (this != &other) {
    Release();
    epoch_ = std::move(other.epoch_);
    other.epoch_ = nullptr;
  }
  return *this;
}

void ReadSnapshot::Release() {
  if (epoch_ != nullptr) {
    GaugeAdd(GaugeId::kServeSnapshotsOpen, -1);
    epoch_ = nullptr;
  }
}

const ViewEpoch& ReadSnapshot::epoch() const {
  AVM_CHECK(epoch_ != nullptr) << "epoch() on an invalid ReadSnapshot";
  return *epoch_;
}

}  // namespace avm
