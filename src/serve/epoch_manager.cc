#include "serve/epoch_manager.h"

#include <utility>

#include "common/check.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace avm {

EpochManager::EpochManager() : stats_(std::make_shared<Stats>()) {}

ViewPin EpochManager::PinView(const MaterializedView& view) {
  ViewPin pin;
  pin.name = view.definition().view_name;
  const DistributedArray& array = view.array();
  pin.array_id = array.id();
  pin.schema = array.schema();
  pin.layout = view.layout();
  const Catalog* catalog = array.catalog();
  const Cluster* cluster = array.cluster();
  for (ChunkId chunk : catalog->ChunkIdsOf(array.id())) {
    Result<NodeId> node = catalog->NodeOf(array.id(), chunk);
    AVM_CHECK(node.ok()) << "registered chunk " << chunk
                         << " of view '" << pin.name << "' has no node";
    ChunkHandle handle =
        cluster->store(node.value()).GetHandle(array.id(), chunk);
    AVM_CHECK(handle != nullptr)
        << "catalog maps chunk " << chunk << " of view '" << pin.name
        << "' to node " << node.value() << " but the store lacks it";
    pin.cells += handle->num_cells();
    pin.chunks.emplace(chunk, std::move(handle));
  }
  return pin;
}

uint64_t EpochManager::Publish(std::vector<ViewPin> views) {
  ScopedSpan span("serve.publish", "serve");
  MutexLock lock(mu_);
  const uint64_t id = ++last_id_;
  auto epoch = std::make_shared<ViewEpoch>(id, std::move(views));
  // The retire hook captures only the shared stats block: it may fire on a
  // reader thread after this manager is gone.
  epoch->set_retire_hook([stats = stats_](const ViewEpoch& retired) {
    const int64_t now_ns = TraceNowNs();
    MutexLock stats_lock(stats->mu);
    ++stats->retired;
    auto it = stats->superseded_at_ns.find(retired.id());
    if (it != stats->superseded_at_ns.end()) {
      const double lag_s =
          static_cast<double>(now_ns - it->second) * 1e-9;
      ++stats->lagged;
      stats->total_lag_seconds += lag_s;
      if (lag_s > stats->max_lag_seconds) stats->max_lag_seconds = lag_s;
      stats->superseded_at_ns.erase(it);
    }
  });
  {
    MutexLock stats_lock(stats_->mu);
    ++stats_->published;
    if (current_ != nullptr) {
      stats_->superseded_at_ns.emplace(current_->id(), TraceNowNs());
    }
  }
  current_ = std::move(epoch);  // the superseded epoch may retire here
  span.AddArg("epoch", static_cast<int64_t>(id));
  CountAdd(CounterId::kServeEpochsPublished);
  return id;
}

ReadSnapshot EpochManager::OpenSnapshot() const {
  MutexLock lock(mu_);
  if (current_ == nullptr) return ReadSnapshot();
  return ReadSnapshot(current_);
}

uint64_t EpochManager::current_epoch_id() const {
  MutexLock lock(mu_);
  return current_ == nullptr ? 0 : current_->id();
}

uint64_t EpochManager::epochs_live() const {
  MutexLock lock(stats_->mu);
  AVM_CHECK(stats_->published >= stats_->retired)
      << "retired more epochs than were published";
  return stats_->published - stats_->retired;
}

EpochManager::RetirementStats EpochManager::retirement() const {
  MutexLock lock(stats_->mu);
  RetirementStats out;
  out.published = stats_->published;
  out.retired = stats_->retired;
  out.lagged = stats_->lagged;
  out.total_lag_seconds = stats_->total_lag_seconds;
  out.max_lag_seconds = stats_->max_lag_seconds;
  return out;
}

}  // namespace avm
