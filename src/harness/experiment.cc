#include "harness/experiment.h"

#include <cinttypes>
#include <cstdio>

#include "common/string_util.h"
#include "telemetry/trace.h"

namespace avm {

namespace {

std::unique_ptr<ChunkPlacement> MakePlacement(const std::string& name,
                                              size_t range_dim) {
  if (name == "hash") return MakeHashPlacement();
  if (name == "range") return MakeRangePlacement(range_dim);
  return MakeRoundRobinPlacement();
}

/// The PTF-5 shape: L1(1) on (ra, dec) across the previous time window. At
/// the paper's cell resolution (1 minute) the 200-day look-back exceeds the
/// catalog's whole time range, so the window covers all earlier time.
Shape Ptf5Shape(const PtfOptions& ptf) {
  Shape spatial = Shape::L1Ball(3, 1, {1, 2});
  Shape window = Shape::Window(3, 0, -(ptf.time_range - 1), 0);
  return Shape::MinkowskiSum(spatial, window).value();
}

/// The PTF-25 shape: L∞(2) on (ra, dec), any time distance.
Shape Ptf25Shape(const PtfOptions& ptf) {
  Shape spatial = Shape::LinfBall(3, 2, {1, 2});
  Shape window =
      Shape::Window(3, 0, -(ptf.time_range - 1), ptf.time_range - 1);
  return Shape::MinkowskiSum(spatial, window).value();
}

}  // namespace

std::string_view DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kPtf5:
      return "PTF-5";
    case DatasetKind::kPtf25:
      return "PTF-25";
    case DatasetKind::kGeo:
      return "GEO";
  }
  return "?";
}

std::string_view BatchRegimeName(BatchRegime regime) {
  switch (regime) {
    case BatchRegime::kReal:
      return "real";
    case BatchRegime::kRandom:
      return "random";
    case BatchRegime::kCorrelated:
      return "correlated";
    case BatchRegime::kPeriodic:
      return "periodic";
  }
  return "?";
}

Result<PreparedExperiment> PrepareExperiment(DatasetKind kind,
                                             BatchRegime regime,
                                             const ExperimentScale& scale) {
  ScopedSpan prepare_span("harness.prepare", "harness");
  PreparedExperiment experiment;
  experiment.catalog = std::make_unique<Catalog>();
  experiment.cluster = std::make_unique<Cluster>(
      scale.num_workers, scale.cost_model, scale.num_threads);
  Catalog* catalog = experiment.catalog.get();
  Cluster* cluster = experiment.cluster.get();

  ViewDefinition def;
  if (kind == DatasetKind::kGeo) {
    GeoOptions geo = scale.geo;
    geo.seed ^= scale.seed;
    AVM_ASSIGN_OR_RETURN(GeoDataset dataset,
                         GenerateGeo(geo, scale.num_batches));
    AVM_ASSIGN_OR_RETURN(
        DistributedArray base,
        DistributedArray::Create(dataset.schema,
                                 MakePlacement(scale.placement, 0), catalog,
                                 cluster));
    AVM_RETURN_IF_ERROR(base.Ingest(dataset.base));
    switch (regime) {
      case BatchRegime::kReal:
      case BatchRegime::kRandom:
        experiment.batches = std::move(dataset.random_batches);
        break;
      case BatchRegime::kCorrelated: {
        AVM_ASSIGN_OR_RETURN(
            experiment.batches,
            MakeCorrelatedGeoBatches(&dataset, scale.num_batches));
        break;
      }
      case BatchRegime::kPeriodic: {
        AVM_ASSIGN_OR_RETURN(
            experiment.batches,
            MakePeriodicGeoBatches(&dataset, scale.num_batches));
        break;
      }
    }
    def.view_name = "GEO_view";
    def.left_array = "GEO";
    def.right_array = "GEO";
    def.mapping = DimMapping::Identity(2);
    def.shape = Shape::LinfBall(2, 1);
    def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  } else {
    PtfOptions ptf = scale.ptf;
    ptf.seed ^= scale.seed;
    AVM_ASSIGN_OR_RETURN(PtfGenerator gen, PtfGenerator::Create(ptf));
    AVM_ASSIGN_OR_RETURN(
        DistributedArray base,
        // PTF range placement partitions the sky (ra), not time: that is
        // what concentrates a night's pointing on few nodes.
        DistributedArray::Create(gen.schema(),
                                 MakePlacement(scale.placement, 1), catalog,
                                 cluster));
    AVM_RETURN_IF_ERROR(base.Ingest(gen.base()));
    switch (regime) {
      case BatchRegime::kReal:
      case BatchRegime::kRandom: {
        AVM_ASSIGN_OR_RETURN(experiment.batches,
                             gen.MakeRealBatches(scale.num_batches));
        break;
      }
      case BatchRegime::kCorrelated: {
        AVM_ASSIGN_OR_RETURN(experiment.batches,
                             gen.MakeCorrelatedBatches(scale.num_batches));
        break;
      }
      case BatchRegime::kPeriodic: {
        AVM_ASSIGN_OR_RETURN(experiment.batches,
                             gen.MakePeriodicBatches(scale.num_batches));
        break;
      }
    }
    def.view_name =
        kind == DatasetKind::kPtf5 ? "PTF5_view" : "PTF25_view";
    def.left_array = "PTF";
    def.right_array = "PTF";
    def.mapping = DimMapping::Identity(3);
    def.shape = kind == DatasetKind::kPtf5 ? Ptf5Shape(ptf) : Ptf25Shape(ptf);
    def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
  }

  const size_t view_range_dim = kind == DatasetKind::kGeo ? 0 : 1;
  AVM_ASSIGN_OR_RETURN(
      MaterializedView view,
      CreateMaterializedView(std::move(def),
                             MakePlacement(scale.placement, view_range_dim),
                             catalog, cluster));
  experiment.view = std::make_unique<MaterializedView>(std::move(view));
  cluster->ResetClocks();
  return experiment;
}

double BatchSeries::TotalMaintenanceSeconds() const {
  double total = 0.0;
  for (const auto& r : reports) total += r.maintenance_seconds;
  return total;
}

double BatchSeries::TotalOptimizationSeconds() const {
  double total = 0.0;
  for (const auto& r : reports) total += r.optimization_seconds();
  return total;
}

double BatchSeries::MeanOptimizationSeconds() const {
  return reports.empty()
             ? 0.0
             : TotalOptimizationSeconds() /
                   static_cast<double>(reports.size());
}

double BatchSeries::TotalExecutionWallSeconds() const {
  double total = 0.0;
  for (const auto& r : reports) total += r.execution_wall_seconds;
  return total;
}

Result<BatchSeries> RunMaintenanceSeries(PreparedExperiment* experiment,
                                         MaintenanceMethod method,
                                         const PlannerOptions& options) {
  if (experiment == nullptr || experiment->view == nullptr) {
    return Status::InvalidArgument("experiment not prepared");
  }
  BatchSeries series;
  series.method = method;
  ViewMaintainer maintainer(experiment->view.get(), method, options);
  int64_t batch_index = 0;
  for (const SparseArray& batch : experiment->batches) {
    ScopedSpan batch_span("harness.batch", "harness");
    batch_span.AddArg("batch", batch_index++);
    batch_span.AddArg("method", static_cast<int64_t>(method));
    AVM_ASSIGN_OR_RETURN(MaintenanceReport report,
                         maintainer.ApplyBatch(batch));
    series.reports.push_back(report);
  }
  return series;
}

Result<std::vector<BatchSeries>> RunAllMethods(DatasetKind kind,
                                               BatchRegime regime,
                                               const ExperimentScale& scale,
                                               const PlannerOptions& options) {
  std::vector<BatchSeries> all;
  for (MaintenanceMethod method :
       {MaintenanceMethod::kBaseline, MaintenanceMethod::kDifferential,
        MaintenanceMethod::kReassign}) {
    AVM_ASSIGN_OR_RETURN(PreparedExperiment experiment,
                         PrepareExperiment(kind, regime, scale));
    AVM_ASSIGN_OR_RETURN(BatchSeries series,
                         RunMaintenanceSeries(&experiment, method, options));
    all.push_back(std::move(series));
  }
  return all;
}

void PrintSeriesTable(const std::string& title,
                      const std::vector<BatchSeries>& series) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-8s", "batch");
  for (const auto& s : series) {
    std::printf("%16s", std::string(MaintenanceMethodName(s.method)).c_str());
  }
  std::printf("\n");
  size_t rows = 0;
  for (const auto& s : series) rows = std::max(rows, s.reports.size());
  for (size_t i = 0; i < rows; ++i) {
    std::printf("%-8zu", i + 1);
    for (const auto& s : series) {
      if (i < s.reports.size()) {
        std::printf("%13.4fs ", s.reports[i].maintenance_seconds);
      } else {
        std::printf("%15s ", "-");
      }
    }
    std::printf("\n");
  }
  std::printf("%-8s", "total");
  for (const auto& s : series) {
    std::printf("%13.4fs ", s.TotalMaintenanceSeconds());
  }
  std::printf("\n");
  std::printf("%-8s", "wall");
  for (const auto& s : series) {
    std::printf("%13.4fs ", s.TotalExecutionWallSeconds());
  }
  std::printf("\n");
}

}  // namespace avm
