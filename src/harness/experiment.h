#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/result.h"
#include "maintenance/maintainer.h"
#include "view/materialized_view.h"
#include "workload/geo.h"
#include "workload/ptf.h"

namespace avm {

/// The three dataset/view combinations of the paper's evaluation
/// (Section 6.1, "Views").
enum class DatasetKind {
  /// PTF catalog; similarity = L1(1) on (ra, dec) over the previous time
  /// window (the production "association table").
  kPtf5,
  /// PTF catalog; similarity = L∞(2) on (ra, dec), independent of time
  /// (the scalability stressor).
  kPtf25,
  /// LinkedGeoData-like POIs; similarity = L∞(1) on (long, lat).
  kGeo,
};

/// The batch regimes of Section 6.1 ("Batch updates"). PTF datasets use
/// kReal where the paper does; GEO uses kRandom.
enum class BatchRegime { kReal, kRandom, kCorrelated, kPeriodic };

std::string_view DatasetKindName(DatasetKind kind);
std::string_view BatchRegimeName(BatchRegime regime);

/// Scale and environment knobs shared by tests, examples, and benches. The
/// defaults reproduce the paper's setup shape (8 workers + coordinator) at
/// laptop scale.
struct ExperimentScale {
  int num_workers = 8;
  /// Host threads executing maintenance plans (the --threads knob of the
  /// bench drivers). Changes real wall-clock only; simulated makespans are
  /// bit-identical at any thread count.
  int num_threads = 1;
  CostModel cost_model;
  PtfOptions ptf;
  GeoOptions geo;
  int num_batches = 10;
  /// Static placement strategy for base and view arrays: "range"
  /// (spatial partitioning — the production-style chunking whose
  /// concentration of nightly pointings on few nodes motivates the paper's
  /// optimization; default for the experiments), "round-robin" (SciDB's
  /// default), or "hash".
  std::string placement = "range";
  uint64_t seed = 42;
};

/// A fully prepared experiment: cluster, catalog, base array, materialized
/// view, and the batch sequence (not yet applied). Prepare one per
/// maintenance method with the same scale/seed — generation is
/// deterministic, so every method sees identical data.
struct PreparedExperiment {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<MaterializedView> view;
  std::vector<SparseArray> batches;
};

/// Builds the dataset, loads the base array, materializes the view, resets
/// the simulated clocks, and returns the batches to apply.
Result<PreparedExperiment> PrepareExperiment(DatasetKind kind,
                                             BatchRegime regime,
                                             const ExperimentScale& scale);

/// Results of maintaining one batch sequence with one method.
struct BatchSeries {
  MaintenanceMethod method;
  std::vector<MaintenanceReport> reports;

  double TotalMaintenanceSeconds() const;
  double TotalOptimizationSeconds() const;
  double MeanOptimizationSeconds() const;
  /// Real wall-clock spent executing plans across the series (the quantity
  /// --threads improves; the simulated totals above are thread-invariant).
  double TotalExecutionWallSeconds() const;
};

/// Applies every batch with the given method, collecting per-batch reports.
Result<BatchSeries> RunMaintenanceSeries(PreparedExperiment* experiment,
                                         MaintenanceMethod method,
                                         const PlannerOptions& options);

/// Convenience: prepares a fresh experiment per method (same data) and runs
/// all three methods.
Result<std::vector<BatchSeries>> RunAllMethods(DatasetKind kind,
                                               BatchRegime regime,
                                               const ExperimentScale& scale,
                                               const PlannerOptions& options);

/// Prints a paper-style series table: one row per batch, one column per
/// method.
void PrintSeriesTable(const std::string& title,
                      const std::vector<BatchSeries>& series);

}  // namespace avm

