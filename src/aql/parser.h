#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "agg/aggregates.h"
#include "array/schema.h"
#include "common/result.h"
#include "shape/shape.h"

namespace avm::aql {

/// Unresolved shape expression: dimension names are resolved against the
/// base array's schema when the statement executes.
///
///   shape   := term ( '*' term )*            -- '*' is the Minkowski product
///   term    := ball | window
///   ball    := ('L1'|'L2'|'LINF') '(' number [',' 'DIMS' '(' name,+ ')'] ')'
///   window  := 'WINDOW' '(' name ',' int ',' int ')'
struct ShapeExpr {
  enum class Kind { kBall, kWindow, kProduct };
  Kind kind = Kind::kBall;

  // kBall
  Shape::Norm norm = Shape::Norm::kL1;
  double radius = 0.0;
  std::vector<std::string> dims;  // empty = all dimensions

  // kWindow
  std::string window_dim;
  int64_t window_lo = 0;
  int64_t window_hi = 0;

  // kProduct
  std::unique_ptr<ShapeExpr> lhs;
  std::unique_ptr<ShapeExpr> rhs;
};

/// One aggregate of the SELECT list: COUNT(*), SUM(attr), AVG(attr),
/// MIN(attr), MAX(attr), each with an optional `AS alias`.
struct AggExpr {
  AggregateFunction fn = AggregateFunction::kCount;
  std::string attr;   // empty for COUNT(*)
  std::string alias;  // empty = derived name
};

/// CREATE ARRAY name <attr:type, ...> [dim = lo, hi, chunk; ...];
struct CreateArrayStatement {
  std::string name;
  std::vector<Attribute> attrs;
  std::vector<DimensionSpec> dims;
};

/// CREATE ARRAY VIEW name AS
///   SELECT agg (',' agg)*
///   FROM array alias SIMILARITY JOIN array alias
///     ON (a.d = b.d) (AND (a.d = b.d))*
///   WITH SHAPE shape
///   [GROUP BY dim (',' dim)*];
struct CreateViewStatement {
  std::string name;
  std::vector<AggExpr> aggs;
  std::string left_array;
  std::string left_alias;
  std::string right_array;
  std::string right_alias;
  /// (left dim name, right dim name) pairs from the ON clause, in order.
  std::vector<std::pair<std::string, std::string>> on_pairs;
  std::unique_ptr<ShapeExpr> shape;
  /// Bare or alias-qualified left dims; empty = all left dims.
  std::vector<std::string> group_by;
};

using Statement = std::variant<CreateArrayStatement, CreateViewStatement>;

/// Parses one statement (optionally ';'-terminated). Errors carry the
/// offending token and its offset.
Result<Statement> ParseStatement(std::string_view input);

}  // namespace avm::aql

