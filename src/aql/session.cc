#include "aql/session.h"

#include <sstream>
#include <utility>
#include <vector>

namespace avm::aql {

AqlSession::AqlSession(
    Catalog* catalog, Cluster* cluster,
    std::function<std::unique_ptr<ChunkPlacement>()> placement_factory,
    MaintenanceMethod method)
    : catalog_(catalog),
      cluster_(cluster),
      placement_factory_(placement_factory != nullptr
                             ? std::move(placement_factory)
                             : [] { return MakeRoundRobinPlacement(); }),
      method_(method) {}

Result<std::string> AqlSession::Execute(std::string_view statement) {
  AVM_ASSIGN_OR_RETURN(Statement parsed, ParseStatement(statement));
  if (std::holds_alternative<CreateArrayStatement>(parsed)) {
    return ExecuteCreateArray(std::get<CreateArrayStatement>(parsed));
  }
  return ExecuteCreateView(std::get<CreateViewStatement>(parsed));
}

Result<std::string> AqlSession::ExecuteCreateArray(
    const CreateArrayStatement& stmt) {
  AVM_ASSIGN_OR_RETURN(ArraySchema schema,
                       ArraySchema::Create(stmt.name, stmt.dims, stmt.attrs));
  AVM_ASSIGN_OR_RETURN(
      DistributedArray array,
      DistributedArray::Create(std::move(schema), placement_factory_(),
                               catalog_, cluster_));
  arrays_.emplace(stmt.name,
                  std::make_unique<DistributedArray>(std::move(array)));
  std::ostringstream out;
  out << "created array " << stmt.name << " with " << stmt.dims.size()
      << " dimensions and " << stmt.attrs.size() << " attributes";
  return out.str();
}

Result<Shape> AqlSession::ResolveShape(const ShapeExpr& expr,
                                       const ArraySchema& schema) const {
  switch (expr.kind) {
    case ShapeExpr::Kind::kProduct: {
      AVM_ASSIGN_OR_RETURN(Shape lhs, ResolveShape(*expr.lhs, schema));
      AVM_ASSIGN_OR_RETURN(Shape rhs, ResolveShape(*expr.rhs, schema));
      return Shape::MinkowskiSum(lhs, rhs);
    }
    case ShapeExpr::Kind::kWindow: {
      AVM_ASSIGN_OR_RETURN(size_t dim,
                           schema.DimensionIndex(expr.window_dim));
      if (expr.window_lo > expr.window_hi) {
        return Status::InvalidArgument("window start exceeds window end");
      }
      return Shape::Window(schema.num_dims(), dim, expr.window_lo,
                           expr.window_hi);
    }
    case ShapeExpr::Kind::kBall: {
      std::vector<size_t> dims;
      for (const std::string& name : expr.dims) {
        AVM_ASSIGN_OR_RETURN(size_t dim, schema.DimensionIndex(name));
        dims.push_back(dim);
      }
      const size_t selected =
          dims.empty() ? schema.num_dims() : dims.size();
      const std::vector<double> weights(selected, 1.0);
      return Shape::WeightedBall(schema.num_dims(), expr.norm, expr.radius,
                                 weights, dims);
    }
  }
  return Status::Internal("bad shape expression");
}

Result<std::string> AqlSession::ExecuteCreateView(
    const CreateViewStatement& stmt) {
  // One view per base array: maintaining several views over one array
  // requires sharing a single delta across their maintenance pipelines
  // (each maintainer folds the delta into the base when it finishes, so a
  // second maintainer would see the batch as already-applied overwrites).
  for (const auto& [name, entry] : views_) {
    const ViewDefinition& def = entry.view->definition();
    if (def.left_array == stmt.left_array ||
        def.right_array == stmt.left_array ||
        def.left_array == stmt.right_array ||
        def.right_array == stmt.right_array) {
      return Status::Unimplemented(
          "array '" + stmt.left_array + "' already backs view '" + name +
          "'; one maintained view per base array");
    }
  }
  AVM_ASSIGN_OR_RETURN(ArrayId left_id,
                       catalog_->ArrayIdByName(stmt.left_array));
  AVM_ASSIGN_OR_RETURN(ArrayId right_id,
                       catalog_->ArrayIdByName(stmt.right_array));
  const ArraySchema& left_schema = catalog_->SchemaOf(left_id);
  const ArraySchema& right_schema = catalog_->SchemaOf(right_id);

  // The ON clause must describe the identity mapping: each pair names the
  // same dimension on both sides, and together they cover a prefix
  // assignment right_dim <- left_dim.
  ViewDefinition def;
  def.view_name = stmt.name;
  def.left_array = stmt.left_array;
  def.right_array = stmt.right_array;
  if (stmt.on_pairs.empty()) {
    if (!left_schema.StructurallyEquals(right_schema) &&
        left_schema.num_dims() != right_schema.num_dims()) {
      return Status::InvalidArgument(
          "ON clause required when operand dimensionalities differ");
    }
    def.mapping = DimMapping::Identity(left_schema.num_dims());
  } else {
    std::vector<DimMapping::Term> terms(right_schema.num_dims());
    std::vector<bool> seen(right_schema.num_dims(), false);
    for (const auto& [left_name, right_name] : stmt.on_pairs) {
      AVM_ASSIGN_OR_RETURN(size_t left_dim,
                           left_schema.DimensionIndex(left_name));
      AVM_ASSIGN_OR_RETURN(size_t right_dim,
                           right_schema.DimensionIndex(right_name));
      if (seen[right_dim]) {
        return Status::InvalidArgument("dimension '" + right_name +
                                       "' constrained twice in ON clause");
      }
      seen[right_dim] = true;
      terms[right_dim] = DimMapping::Term{left_dim, 0};
    }
    for (size_t d = 0; d < seen.size(); ++d) {
      if (!seen[d]) {
        return Status::InvalidArgument(
            "ON clause must constrain every dimension of the right "
            "operand; missing '" +
            right_schema.dims()[d].name + "'");
      }
    }
    AVM_ASSIGN_OR_RETURN(
        def.mapping, DimMapping::Create(left_schema.num_dims(), terms));
  }

  AVM_ASSIGN_OR_RETURN(Shape shape, ResolveShape(*stmt.shape, right_schema));
  def.shape = std::move(shape);

  for (const AggExpr& agg : stmt.aggs) {
    AggregateSpec spec;
    spec.fn = agg.fn;
    spec.output_name = agg.alias;
    if (agg.fn != AggregateFunction::kCount) {
      AVM_ASSIGN_OR_RETURN(spec.attr_index,
                           right_schema.AttributeIndex(agg.attr));
    }
    def.aggregates.push_back(std::move(spec));
  }

  for (const std::string& dim : stmt.group_by) {
    AVM_ASSIGN_OR_RETURN(size_t index, left_schema.DimensionIndex(dim));
    def.group_dims.push_back(index);
  }

  AVM_ASSIGN_OR_RETURN(
      MaterializedView view,
      CreateMaterializedView(std::move(def), placement_factory_(), catalog_,
                             cluster_));
  ViewEntry entry;
  entry.view = std::make_unique<MaterializedView>(std::move(view));
  entry.maintainer = std::make_unique<ViewMaintainer>(entry.view.get(),
                                                      method_);
  const uint64_t cells = entry.view->array().NumCells();
  views_.emplace(stmt.name, std::move(entry));
  PublishAllViews();

  std::ostringstream out;
  out << "materialized view " << stmt.name << " over " << stmt.left_array
      << (stmt.left_array == stmt.right_array
              ? " (self-join)"
              : " and " + stmt.right_array)
      << " with " << cells << " cells";
  return out.str();
}

Result<std::vector<MaintenanceReport>> AqlSession::InsertCells(
    const std::string& array_name, const SparseArray& cells) {
  auto it = arrays_.find(array_name);
  if (it == arrays_.end()) {
    return Status::NotFound("array '" + array_name +
                            "' was not created by this session");
  }
  std::vector<MaintenanceReport> reports;
  bool maintained = false;
  for (auto& [name, entry] : views_) {
    const ViewDefinition& def = entry.view->definition();
    if (def.left_array != array_name && def.right_array != array_name) {
      continue;
    }
    maintained = true;
    if (def.IsSelfJoin() || def.left_array == array_name) {
      AVM_ASSIGN_OR_RETURN(MaintenanceReport report,
                           entry.maintainer->ApplyBatch(cells));
      reports.push_back(report);
    } else {
      // Right-side-only delta of a two-array view.
      SparseArray empty_left(entry.view->left_base().schema());
      AVM_ASSIGN_OR_RETURN(MaintenanceReport report,
                           entry.maintainer->ApplyBatch(empty_left, &cells));
      reports.push_back(report);
    }
  }
  if (!maintained) {
    // No view over this array: plain ingest.
    AVM_RETURN_IF_ERROR(it->second->Ingest(cells));
    return reports;
  }
  // One publish for the whole statement, after every affected view's
  // maintenance: the new epoch re-pins untouched views too, so a snapshot
  // always sees a mutually consistent view set.
  const uint64_t epoch = PublishAllViews();
  for (MaintenanceReport& report : reports) report.published_epoch = epoch;
  return reports;
}

uint64_t AqlSession::PublishAllViews() {
  std::vector<ViewPin> pins;
  pins.reserve(views_.size());
  for (const auto& [name, entry] : views_) {
    pins.push_back(EpochManager::PinView(*entry.view));
  }
  return epochs_.Publish(std::move(pins));
}

DistributedArray* AqlSession::GetArray(const std::string& name) {
  auto it = arrays_.find(name);
  return it == arrays_.end() ? nullptr : it->second.get();
}

MaterializedView* AqlSession::GetView(const std::string& name) {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.view.get();
}

}  // namespace avm::aql
