#include "aql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace avm::aql {

bool Token::Is(std::string_view keyword) const {
  if (kind != TokenKind::kIdentifier) return false;
  if (text.size() != keyword.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto peek = [&](size_t at) -> char {
    return at < n ? input[at] : '\0';
  };
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && peek(i + 1) == '-') {  // SQL comment to end of line
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      token.kind = TokenKind::kIdentifier;
      token.text = std::string(input.substr(i, j - i));
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && std::isdigit(static_cast<unsigned char>(
                                peek(i + 1)))) ||
               (c == '.' && std::isdigit(static_cast<unsigned char>(
                                peek(i + 1))))) {
      size_t j = i;
      if (input[j] == '-') ++j;
      bool integer = true;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') integer = false;
        ++j;
      }
      token.kind = TokenKind::kNumber;
      token.text = std::string(input.substr(i, j - i));
      token.number = std::strtod(token.text.c_str(), nullptr);
      token.is_integer = integer;
      i = j;
    } else if (std::string_view("<>[](),;=.*:").find(c) !=
               std::string_view::npos) {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      ++i;
    } else {
      return Status::InvalidArgument(
          "unexpected character '" + std::string(1, c) + "' at offset " +
          std::to_string(i));
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace avm::aql
