#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace avm::aql {

/// Token kinds of the AQL subset (Section 2.1 / 3 of the paper). Keywords
/// are case-insensitive; identifiers keep their case.
enum class TokenKind {
  kIdentifier,  // A, ra, cnt, L1 (keywords are classified by the parser)
  kNumber,      // 42, -7, 3.5
  kSymbol,      // one of < > [ ] ( ) , ; = . * : stored in `text`
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // identifier name / symbol / number literal
  double number = 0.0;   // value for kNumber
  bool is_integer = false;
  size_t position = 0;   // byte offset, for error messages

  /// Case-insensitive keyword/identifier comparison (either case works).
  bool Is(std::string_view upper_keyword) const;
};

/// Splits an AQL statement into tokens. Fails with InvalidArgument on
/// characters outside the grammar, reporting the offset.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace avm::aql

