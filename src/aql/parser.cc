#include "aql/parser.h"

#include <utility>

#include "aql/lexer.h"

namespace avm::aql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> Parse() {
    AVM_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    AVM_RETURN_IF_ERROR(ExpectKeyword("ARRAY"));
    if (Current().Is("VIEW")) {
      Advance();
      AVM_ASSIGN_OR_RETURN(CreateViewStatement view, ParseCreateView());
      AVM_RETURN_IF_ERROR(Finish());
      return Statement(std::move(view));
    }
    AVM_ASSIGN_OR_RETURN(CreateArrayStatement array, ParseCreateArray());
    AVM_RETURN_IF_ERROR(Finish());
    return Statement(std::move(array));
  }

 private:
  const Token& Current() const { return tokens_[index_]; }
  void Advance() {
    if (index_ + 1 < tokens_.size()) ++index_;
  }

  Status Error(const std::string& expected) const {
    return Status::InvalidArgument(
        "expected " + expected + " but found '" +
        (Current().kind == TokenKind::kEnd ? "<end>" : Current().text) +
        "' at offset " + std::to_string(Current().position));
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!Current().Is(keyword)) return Error(std::string(keyword));
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (Current().kind != TokenKind::kSymbol || Current().text != symbol) {
      return Error("'" + std::string(symbol) + "'");
    }
    Advance();
    return Status::OK();
  }

  bool ConsumeSymbol(std::string_view symbol) {
    if (Current().kind == TokenKind::kSymbol && Current().text == symbol) {
      Advance();
      return true;
    }
    return false;
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Current().kind != TokenKind::kIdentifier) return Error(what);
    std::string name = Current().text;
    Advance();
    return name;
  }

  Result<int64_t> ExpectInteger(const std::string& what) {
    if (Current().kind != TokenKind::kNumber || !Current().is_integer) {
      return Error(what + " (integer)");
    }
    const int64_t value = static_cast<int64_t>(Current().number);
    Advance();
    return value;
  }

  Result<double> ExpectNumber(const std::string& what) {
    if (Current().kind != TokenKind::kNumber) return Error(what);
    const double value = Current().number;
    Advance();
    return value;
  }

  Status Finish() {
    ConsumeSymbol(";");
    if (Current().kind != TokenKind::kEnd) return Error("end of statement");
    return Status::OK();
  }

  // CREATE ARRAY name <attr:type, ...> [dim = lo, hi, chunk; ...]
  Result<CreateArrayStatement> ParseCreateArray() {
    CreateArrayStatement statement;
    AVM_ASSIGN_OR_RETURN(statement.name, ExpectIdentifier("array name"));
    AVM_RETURN_IF_ERROR(ExpectSymbol("<"));
    for (;;) {
      Attribute attr;
      AVM_ASSIGN_OR_RETURN(attr.name, ExpectIdentifier("attribute name"));
      if (ConsumeSymbol(":")) {
        if (Current().Is("INT") || Current().Is("INT64")) {
          attr.type = AttributeType::kInt64;
        } else if (Current().Is("DOUBLE") || Current().Is("FLOAT")) {
          attr.type = AttributeType::kDouble;
        } else {
          return Error("attribute type (int/int64/double/float)");
        }
        Advance();
      } else {
        attr.type = AttributeType::kDouble;  // untyped attrs default
      }
      statement.attrs.push_back(std::move(attr));
      if (!ConsumeSymbol(",")) break;
    }
    AVM_RETURN_IF_ERROR(ExpectSymbol(">"));
    AVM_RETURN_IF_ERROR(ExpectSymbol("["));
    for (;;) {
      DimensionSpec dim;
      AVM_ASSIGN_OR_RETURN(dim.name, ExpectIdentifier("dimension name"));
      AVM_RETURN_IF_ERROR(ExpectSymbol("="));
      AVM_ASSIGN_OR_RETURN(dim.lo, ExpectInteger("dimension start"));
      AVM_RETURN_IF_ERROR(ExpectSymbol(","));
      AVM_ASSIGN_OR_RETURN(dim.hi, ExpectInteger("dimension end"));
      AVM_RETURN_IF_ERROR(ExpectSymbol(","));
      AVM_ASSIGN_OR_RETURN(dim.chunk_extent,
                           ExpectInteger("chunk extent"));
      statement.dims.push_back(std::move(dim));
      if (!ConsumeSymbol(";")) break;
    }
    AVM_RETURN_IF_ERROR(ExpectSymbol("]"));
    return statement;
  }

  // name AS SELECT ... FROM ... SIMILARITY JOIN ... ON ... WITH SHAPE ...
  // [GROUP BY ...]
  Result<CreateViewStatement> ParseCreateView() {
    CreateViewStatement statement;
    AVM_ASSIGN_OR_RETURN(statement.name, ExpectIdentifier("view name"));
    AVM_RETURN_IF_ERROR(ExpectKeyword("AS"));
    AVM_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    for (;;) {
      AVM_ASSIGN_OR_RETURN(AggExpr agg, ParseAggregate());
      statement.aggs.push_back(std::move(agg));
      if (!ConsumeSymbol(",")) break;
    }
    AVM_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    AVM_ASSIGN_OR_RETURN(statement.left_array,
                         ExpectIdentifier("left array name"));
    if (Current().kind == TokenKind::kIdentifier &&
        !Current().Is("SIMILARITY")) {
      AVM_ASSIGN_OR_RETURN(statement.left_alias,
                           ExpectIdentifier("left alias"));
    }
    AVM_RETURN_IF_ERROR(ExpectKeyword("SIMILARITY"));
    AVM_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
    AVM_ASSIGN_OR_RETURN(statement.right_array,
                         ExpectIdentifier("right array name"));
    if (Current().kind == TokenKind::kIdentifier && !Current().Is("ON") &&
        !Current().Is("WITH")) {
      AVM_ASSIGN_OR_RETURN(statement.right_alias,
                           ExpectIdentifier("right alias"));
    }
    if (Current().Is("ON")) {
      Advance();
      for (;;) {
        AVM_RETURN_IF_ERROR(ExpectSymbol("("));
        AVM_ASSIGN_OR_RETURN(std::string left, ParseQualifiedDim());
        AVM_RETURN_IF_ERROR(ExpectSymbol("="));
        AVM_ASSIGN_OR_RETURN(std::string right, ParseQualifiedDim());
        AVM_RETURN_IF_ERROR(ExpectSymbol(")"));
        statement.on_pairs.push_back({std::move(left), std::move(right)});
        if (!Current().Is("AND")) break;
        Advance();
      }
    }
    AVM_RETURN_IF_ERROR(ExpectKeyword("WITH"));
    AVM_RETURN_IF_ERROR(ExpectKeyword("SHAPE"));
    AVM_ASSIGN_OR_RETURN(statement.shape, ParseShape());
    if (Current().Is("GROUP")) {
      Advance();
      AVM_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        AVM_ASSIGN_OR_RETURN(std::string dim, ParseQualifiedDim());
        statement.group_by.push_back(std::move(dim));
        if (!ConsumeSymbol(",")) break;
      }
    }
    return statement;
  }

  // COUNT(*), SUM(attr), AVG(attr), MIN(attr), MAX(attr) [AS alias]
  Result<AggExpr> ParseAggregate() {
    AggExpr agg;
    if (Current().Is("COUNT")) {
      agg.fn = AggregateFunction::kCount;
    } else if (Current().Is("SUM")) {
      agg.fn = AggregateFunction::kSum;
    } else if (Current().Is("AVG")) {
      agg.fn = AggregateFunction::kAvg;
    } else if (Current().Is("MIN")) {
      agg.fn = AggregateFunction::kMin;
    } else if (Current().Is("MAX")) {
      agg.fn = AggregateFunction::kMax;
    } else {
      return Error("aggregate function (COUNT/SUM/AVG/MIN/MAX)");
    }
    Advance();
    AVM_RETURN_IF_ERROR(ExpectSymbol("("));
    if (agg.fn == AggregateFunction::kCount) {
      if (!ConsumeSymbol("*")) {
        // COUNT(attr) is allowed too; the attribute is ignored.
        if (Current().kind == TokenKind::kIdentifier) {
          agg.attr = Current().text;
          Advance();
        } else {
          return Error("'*' or attribute name");
        }
      }
    } else {
      AVM_ASSIGN_OR_RETURN(agg.attr, ExpectIdentifier("attribute name"));
      // Optionally qualified: alias.attr — keep the attribute part.
      if (ConsumeSymbol(".")) {
        AVM_ASSIGN_OR_RETURN(agg.attr, ExpectIdentifier("attribute name"));
      }
    }
    AVM_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (Current().Is("AS")) {
      Advance();
      AVM_ASSIGN_OR_RETURN(agg.alias, ExpectIdentifier("alias"));
    }
    return agg;
  }

  // 'A1.i' or bare 'i' — returns the dim name with any qualifier dropped
  // after recording it for validation-by-name.
  Result<std::string> ParseQualifiedDim() {
    AVM_ASSIGN_OR_RETURN(std::string first,
                         ExpectIdentifier("dimension name"));
    if (ConsumeSymbol(".")) {
      AVM_ASSIGN_OR_RETURN(std::string dim,
                           ExpectIdentifier("dimension name"));
      return dim;
    }
    return first;
  }

  Result<std::unique_ptr<ShapeExpr>> ParseShape() {
    AVM_ASSIGN_OR_RETURN(std::unique_ptr<ShapeExpr> left, ParseShapeTerm());
    while (ConsumeSymbol("*")) {
      AVM_ASSIGN_OR_RETURN(std::unique_ptr<ShapeExpr> right,
                           ParseShapeTerm());
      auto product = std::make_unique<ShapeExpr>();
      product->kind = ShapeExpr::Kind::kProduct;
      product->lhs = std::move(left);
      product->rhs = std::move(right);
      left = std::move(product);
    }
    return left;
  }

  Result<std::unique_ptr<ShapeExpr>> ParseShapeTerm() {
    auto term = std::make_unique<ShapeExpr>();
    if (Current().Is("WINDOW")) {
      Advance();
      term->kind = ShapeExpr::Kind::kWindow;
      AVM_RETURN_IF_ERROR(ExpectSymbol("("));
      AVM_ASSIGN_OR_RETURN(term->window_dim,
                           ExpectIdentifier("window dimension"));
      AVM_RETURN_IF_ERROR(ExpectSymbol(","));
      AVM_ASSIGN_OR_RETURN(term->window_lo, ExpectInteger("window start"));
      AVM_RETURN_IF_ERROR(ExpectSymbol(","));
      AVM_ASSIGN_OR_RETURN(term->window_hi, ExpectInteger("window end"));
      AVM_RETURN_IF_ERROR(ExpectSymbol(")"));
      return term;
    }
    term->kind = ShapeExpr::Kind::kBall;
    if (Current().Is("L1")) {
      term->norm = Shape::Norm::kL1;
    } else if (Current().Is("L2")) {
      term->norm = Shape::Norm::kL2;
    } else if (Current().Is("LINF")) {
      term->norm = Shape::Norm::kLinf;
    } else {
      return Error("shape (L1/L2/LINF/WINDOW)");
    }
    Advance();
    AVM_RETURN_IF_ERROR(ExpectSymbol("("));
    AVM_ASSIGN_OR_RETURN(term->radius, ExpectNumber("shape radius"));
    if (term->radius < 0) return Error("non-negative radius");
    if (ConsumeSymbol(",")) {
      AVM_RETURN_IF_ERROR(ExpectKeyword("DIMS"));
      AVM_RETURN_IF_ERROR(ExpectSymbol("("));
      for (;;) {
        AVM_ASSIGN_OR_RETURN(std::string dim,
                             ExpectIdentifier("dimension name"));
        term->dims.push_back(std::move(dim));
        if (!ConsumeSymbol(",")) break;
      }
      AVM_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    AVM_RETURN_IF_ERROR(ExpectSymbol(")"));
    return term;
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view input) {
  AVM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace avm::aql
