#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "aql/parser.h"
#include "cluster/distributed_array.h"
#include "common/result.h"
#include "maintenance/maintainer.h"
#include "serve/epoch_manager.h"
#include "serve/snapshot_query.h"
#include "view/materialized_view.h"

namespace avm::aql {

/// A statement-level front end over the library: parse and execute the AQL
/// subset the paper writes its views in, against a bound catalog + cluster.
///
///   avm::aql::AqlSession session(&catalog, &cluster);
///   session.Execute("CREATE ARRAY A <r:int, s:int> [i=1,6,2; j=1,8,2]");
///   session.Execute(
///       "CREATE ARRAY VIEW V AS SELECT COUNT(*) AS cnt "
///       "FROM A A1 SIMILARITY JOIN A A2 ON (A1.i = A2.i) AND (A1.j = A2.j) "
///       "WITH SHAPE L1(1) GROUP BY A1.i, A1.j");
///   session.InsertCells("A", tonight);            // incremental maintenance
///
/// The session owns the arrays and views it creates and keeps one
/// ViewMaintainer per view, so inserted cells flow through incremental
/// maintenance of every view over the target array.
class AqlSession {
 public:
  /// `placement_factory` decides the static chunking strategy of every
  /// array/view the session creates (default: round-robin).
  AqlSession(Catalog* catalog, Cluster* cluster,
             std::function<std::unique_ptr<ChunkPlacement>()>
                 placement_factory = nullptr,
             MaintenanceMethod method = MaintenanceMethod::kReassign);

  /// Parses and executes one statement; returns a one-line human-readable
  /// summary of what happened.
  Result<std::string> Execute(std::string_view statement);

  /// Inserts a batch of cells into `array_name` and incrementally maintains
  /// every view defined over it, then publishes ONE epoch carrying every
  /// session view — maintained and untouched alike — so the whole view set
  /// becomes visible to readers atomically (a snapshot can never pair view
  /// A at epoch n+1 with view B at epoch n). Returns the per-view reports.
  Result<std::vector<MaintenanceReport>> InsertCells(
      const std::string& array_name, const SparseArray& cells);

  /// Serving path. OpenSnapshot pins the current epoch (every view the
  /// session had published at that point) and is safe to call from any
  /// reader thread concurrently with Execute/InsertCells running on the
  /// session's control thread; Query evaluates a similarity-join/aggregate
  /// read purely against the snapshot's pinned handles — never against the
  /// epoch maintenance is rewriting in the stores.
  ReadSnapshot OpenSnapshot() const { return epochs_.OpenSnapshot(); }
  Result<SnapshotQueryResult> Query(const ReadSnapshot& snapshot,
                                    const SnapshotQuery& query) const {
    return EvaluateSnapshotQuery(snapshot, query);
  }
  /// Convenience: one-shot query against a freshly opened snapshot.
  Result<SnapshotQueryResult> Query(const SnapshotQuery& query) const {
    return EvaluateSnapshotQuery(OpenSnapshot(), query);
  }
  const EpochManager& epoch_manager() const { return epochs_; }

  /// Lookup of session-created objects (nullptr when absent).
  DistributedArray* GetArray(const std::string& name);
  MaterializedView* GetView(const std::string& name);

  size_t num_arrays() const { return arrays_.size(); }
  size_t num_views() const { return views_.size(); }

 private:
  struct ViewEntry {
    std::unique_ptr<MaterializedView> view;
    std::unique_ptr<ViewMaintainer> maintainer;
  };

  Result<std::string> ExecuteCreateArray(const CreateArrayStatement& stmt);
  Result<std::string> ExecuteCreateView(const CreateViewStatement& stmt);

  /// Resolves a parsed shape expression against a base schema.
  Result<Shape> ResolveShape(const ShapeExpr& expr,
                             const ArraySchema& schema) const;

  /// Pins every session view and swaps them in as one epoch. Control thread
  /// only (reads catalog + stores); called at every view-set change point
  /// (view creation, batch commit).
  uint64_t PublishAllViews();

  Catalog* catalog_;
  Cluster* cluster_;
  std::function<std::unique_ptr<ChunkPlacement>()> placement_factory_;
  MaintenanceMethod method_;
  std::map<std::string, std::unique_ptr<DistributedArray>> arrays_;
  std::map<std::string, ViewEntry> views_;
  EpochManager epochs_;
};

}  // namespace avm::aql

