#pragma once

#include <functional>

#include "cluster/distributed_array.h"
#include "common/result.h"
#include "join/similarity_join.h"

namespace avm {

/// Resolves the home node of a result chunk (where its fragments merge).
using ResultHomeFn = std::function<NodeId(ChunkId)>;

/// Cost/placement summary of one optimized join run.
struct OptimizedJoinStats {
  uint64_t chunk_pairs = 0;
  uint64_t kernel_runs = 0;
  /// The planner's predicted makespan for the run (co-location + CPU +
  /// merge term, B_pq proxy) — the quantity Eq. (3) compares.
  double planned_seconds = 0.0;
};

/// Distributed similarity-join aggregate with *optimized* join placement:
/// instead of pinning each pair at the right operand's node (the substrate
/// default in join/similarity_join.h), pairs are placed by the Algorithm-1
/// greedy — every worker is evaluated per pair, charging operand transfers
/// to their holders and the join CPU to the candidate, minimizing the
/// global max(ntwk, cpu).
///
/// This is the Section-5 reduction: a ∆-shape differential query *is* a
/// differential-view computation over the base array(s), so it reuses the
/// stage-1 machinery. `multiplicity` +1 adds contributions, -1 retracts
/// them (the minus half of a ∆ shape). When `estimate_only` is set, nothing
/// executes — only the planned cost is computed (the Eq. (3) estimator).
Result<OptimizedJoinStats> ExecuteOptimizedJoinAggregate(
    const DistributedArray& left, const DistributedArray& right,
    const SimilarityJoinSpec& spec, int multiplicity,
    const ResultHomeFn& result_home, DistributedArray* result,
    uint64_t seed, bool estimate_only);

}  // namespace avm

