#pragma once

#include <optional>
#include <string>

#include "array/sparse_array.h"
#include "common/result.h"
#include "shape/delta_shape.h"
#include "view/materialized_view.h"

namespace avm {

/// The two ways to answer a similarity-join query when a view with a
/// different shape is materialized (Section 5).
enum class QueryStrategy {
  /// Start from the view and apply signed ∆-shape corrections.
  kDifferentialOnView,
  /// Recompute the similarity join from scratch over the base arrays.
  kCompleteJoin,
};

std::string_view QueryStrategyName(QueryStrategy strategy);

/// Output of the Eq. (3) analytical cost model.
struct QueryCostEstimate {
  double with_view_seconds = 0.0;
  double complete_join_seconds = 0.0;
  size_t delta_shape_size = 0;  // |plus| + |minus|
  size_t query_shape_size = 0;
  QueryStrategy chosen = QueryStrategy::kCompleteJoin;

  /// The paper's intuition knob: ratios above 1 favor the complete join.
  double DeltaRatio() const {
    return query_shape_size == 0
               ? 0.0
               : static_cast<double>(delta_shape_size) /
                     static_cast<double>(query_shape_size);
  }
};

/// Answers similarity-join aggregate queries over a view's base array(s),
/// choosing between the ∆-shape differential evaluation on the view and a
/// complete similarity join by comparing the two optimization formulations
/// of Eq. (3). The query must share the view's mapping, aggregates, and
/// group-by; only the shape differs.
class SimilarityQueryPlanner {
 public:
  explicit SimilarityQueryPlanner(MaterializedView* view, uint64_t seed = 42)
      : view_(view), seed_(seed) {}

  /// Runs the analytical cost model for both strategies without executing.
  Result<QueryCostEstimate> Estimate(const Shape& query_shape) const;

  struct QueryOutcome {
    /// Aggregate states of the result (identity cells stripped); finalize
    /// with the view's layout for user-visible values.
    SparseArray states;
    QueryStrategy used;
    QueryCostEstimate estimate;
    /// Simulated makespan of the executed strategy.
    double sim_seconds = 0.0;
  };

  /// Estimates, picks the cheaper strategy (or `force`), and executes it.
  Result<QueryOutcome> Execute(const Shape& query_shape,
                               std::optional<QueryStrategy> force = {});

 private:
  MaterializedView* view_;
  uint64_t seed_;
  uint64_t result_counter_ = 0;
};

}  // namespace avm

