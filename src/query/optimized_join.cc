#include "query/optimized_join.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "join/compiled_shape.h"
#include "join/fragment_merge.h"
#include "join/join_kernel.h"
#include "join/pair_enumeration.h"
#include "maintenance/makespan_tracker.h"

namespace avm {

namespace {

struct QueryPair {
  ChunkId p = 0;  // left operand chunk
  ChunkId q = 0;  // right operand chunk
  uint64_t bytes = 0;
};

}  // namespace

Result<OptimizedJoinStats> ExecuteOptimizedJoinAggregate(
    const DistributedArray& left, const DistributedArray& right,
    const SimilarityJoinSpec& spec, int multiplicity,
    const ResultHomeFn& result_home, DistributedArray* result,
    uint64_t seed, bool estimate_only) {
  if (!estimate_only && result == nullptr) {
    return Status::InvalidArgument("null result array");
  }
  Cluster* cluster = left.cluster();
  Catalog* catalog = left.catalog();
  const CostModel& cost = cluster->cost_model();
  const int num_workers = cluster->num_workers();

  if (spec.shape.empty()) return OptimizedJoinStats{};

  // Enumerate the chunk pairs from metadata. Identity joins over aligned
  // grids use the exact chunk footprint of the shape, so a ∆ shape's pair
  // count scales with |∆| rather than with its bounding box.
  const bool exact = spec.mapping.IsIdentity() &&
                     left.grid().GeometryEquals(right.grid());
  std::optional<ChunkFootprint> footprint;
  if (exact) {
    AVM_ASSIGN_OR_RETURN(
        ChunkFootprint fp,
        ChunkFootprint::Compute(spec.shape, left.grid().extents()));
    footprint = std::move(fp);
  }
  auto right_exists = [&](ChunkId c) {
    return catalog->HasChunk(right.id(), c);
  };
  std::vector<QueryPair> pairs;
  for (ChunkId p : catalog->ChunkIdsOf(left.id())) {
    const std::vector<ChunkId> partners =
        exact ? EnumerateJoinPartnersExact(left.grid(), p, *footprint,
                                           right_exists)
              : EnumerateJoinPartners(left.grid(), p, spec.mapping,
                                      spec.shape, right.grid(), right_exists);
    for (ChunkId q : partners) {
      pairs.push_back({p, q,
                       catalog->ChunkBytes(left.id(), p) +
                           catalog->ChunkBytes(right.id(), q)});
    }
  }

  OptimizedJoinStats stats;
  stats.chunk_pairs = pairs.size();

  // Algorithm-1 greedy placement over the pairs.
  MakespanTracker tracker(num_workers);
  std::map<std::pair<ArrayId, ChunkId>, std::set<NodeId>> replicas;
  auto origin_of = [&](ArrayId array, ChunkId c) -> Result<NodeId> {
    return catalog->NodeOf(array, c);
  };
  std::vector<size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(order);

  std::vector<NodeId> placement(pairs.size(), 0);
  std::vector<MakespanTracker::Delta> deltas;
  for (size_t index : order) {
    const QueryPair& pair = pairs[index];
    AVM_ASSIGN_OR_RETURN(NodeId sp, origin_of(left.id(), pair.p));
    AVM_ASSIGN_OR_RETURN(NodeId sq, origin_of(right.id(), pair.q));
    auto& rep_p = replicas[{left.id(), pair.p}];
    auto& rep_q = replicas[{right.id(), pair.q}];
    if (rep_p.empty()) rep_p.insert(sp);
    if (rep_q.empty()) rep_q.insert(sq);
    const uint64_t bp = catalog->ChunkBytes(left.id(), pair.p);
    const uint64_t bq = catalog->ChunkBytes(right.id(), pair.q);
    const bool same = left.id() == right.id() && pair.p == pair.q;

    // Same candidate ranking as Algorithm 1: global makespan, then least
    // added communication, then least busy node.
    double best_cost = std::numeric_limits<double>::infinity();
    double best_added = std::numeric_limits<double>::infinity();
    double best_busy = std::numeric_limits<double>::infinity();
    NodeId best = 0;
    for (NodeId j = 0; j < num_workers; ++j) {
      deltas.clear();
      // Only worker-charged transfers count toward the tie-break.
      double added = 0.0;
      if (rep_p.count(j) == 0) {
        const double seconds = cost.TransferSeconds(bp);
        deltas.push_back({sp, seconds, 0.0});
        if (sp != kCoordinatorNode) added += seconds;
      }
      if (!same && rep_q.count(j) == 0) {
        const double seconds = cost.TransferSeconds(bq);
        deltas.push_back({sq, seconds, 0.0});
        if (sq != kCoordinatorNode) added += seconds;
      }
      deltas.push_back({j, 0.0, cost.JoinSeconds(pair.bytes)});
      const double candidate = tracker.EvalWithDeltas(deltas);
      const double busy = std::max(
          tracker.ntwk(j), tracker.cpu(j) + cost.JoinSeconds(pair.bytes));
      if (candidate < best_cost - 1e-15 ||
          (candidate <= best_cost + 1e-15 &&
           (added < best_added - 1e-15 ||
            (added <= best_added + 1e-15 && busy < best_busy - 1e-15)))) {
        best_cost = candidate;
        best_added = added;
        best_busy = busy;
        best = j;
      }
    }
    deltas.clear();
    if (rep_p.count(best) == 0) {
      deltas.push_back({sp, cost.TransferSeconds(bp), 0.0});
      rep_p.insert(best);
      if (!estimate_only) {
        AVM_RETURN_IF_ERROR(
            cluster->TransferChunk(left.id(), pair.p, sp, best));
      }
    }
    if (!same && rep_q.count(best) == 0) {
      deltas.push_back({sq, cost.TransferSeconds(bq), 0.0});
      rep_q.insert(best);
      if (!estimate_only) {
        AVM_RETURN_IF_ERROR(
            cluster->TransferChunk(right.id(), pair.q, sq, best));
      }
    }
    deltas.push_back({best, 0.0, cost.JoinSeconds(pair.bytes)});
    tracker.Commit(deltas);
    placement[index] = best;
  }

  // Merge term of the planned cost: shipping each pair's result (B_pq
  // proxy) from its join node to the affected result chunks' homes.
  for (size_t i = 0; i < pairs.size(); ++i) {
    const ChunkGrid& result_grid =
        result != nullptr ? result->grid() : left.grid();
    for (ChunkId v : EnumerateViewTargets(left.grid(), pairs[i].p,
                                          spec.group_dims, result_grid)) {
      if (result_home(v) != placement[i]) {
        tracker.AddNetwork(placement[i],
                           cost.TransferSeconds(pairs[i].bytes));
        break;  // one shipment per pair in the model
      }
    }
  }
  stats.planned_seconds = tracker.CurrentMax();
  if (estimate_only) return stats;

  // Execute the kernels at their assigned nodes, sharing one shape
  // compilation across all pairs.
  std::map<NodeId, std::map<ChunkId, Chunk>> fragments_by_node;
  const ViewTarget target{&spec.group_dims, &result->grid()};
  AVM_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledShape> compiled,
                       CompiledShapeCache::Global().Get(
                           spec.shape, spec.mapping, right.grid()));
  for (size_t i = 0; i < pairs.size(); ++i) {
    const QueryPair& pair = pairs[i];
    const NodeId k = placement[i];
    // Handles, not raw pointers: the pin keeps both operands resident for
    // the kernel even if a buffer manager is evicting concurrently.
    const ChunkHandle lhs = cluster->store(k).GetHandle(left.id(), pair.p);
    const ChunkHandle rhs = cluster->store(k).GetHandle(right.id(), pair.q);
    if (lhs == nullptr || rhs == nullptr) {
      return Status::Internal("operands not co-located after transfers");
    }
    cluster->ChargeJoin(k, pair.bytes);
    const RightOperand rop{rhs.get(), pair.q, &right.grid()};
    AVM_RETURN_IF_ERROR(JoinAggregateChunkPair(*lhs, rop, *compiled,
                                               spec.layout, target,
                                               multiplicity,
                                               &fragments_by_node[k]));
    ++stats.kernel_runs;
  }

  // Ship fragments to the result homes and merge.
  for (auto& [producer, fragments] : fragments_by_node) {
    for (auto& [v, fragment] : fragments) {
      const NodeId home = result_home(v);
      if (producer != home) {
        cluster->ChargeNetwork(producer, fragment.SizeBytes());
      }
      AVM_RETURN_IF_ERROR(
          MergeStateFragment(result, v, fragment, spec.layout, home));
    }
  }

  // Drop the scratch replicas created for co-location.
  for (NodeId n = 0; n < num_workers; ++n) {
    ChunkStore& store = cluster->store(n);
    std::vector<std::pair<ArrayId, ChunkId>> drop;
    store.ForEach([&](ArrayId array, ChunkId chunk, const Chunk&) {
      if (array != left.id() && array != right.id()) return;
      auto primary = catalog->NodeOf(array, chunk);
      if (!primary.ok() || primary.value() != n) drop.push_back({array, chunk});
    });
    for (const auto& [array, chunk] : drop) store.Erase(array, chunk);
  }
  return stats;
}

}  // namespace avm
