#include "query/query_planner.h"

#include <utility>

#include "agg/state_utils.h"
#include "query/optimized_join.h"

namespace avm {

namespace {

/// Builds the join spec of the view with a substituted shape.
SimilarityJoinSpec SpecWithShape(const MaterializedView& view, Shape shape) {
  SimilarityJoinSpec spec = view.JoinSpec();
  spec.shape = std::move(shape);
  return spec;
}

}  // namespace

std::string_view QueryStrategyName(QueryStrategy strategy) {
  switch (strategy) {
    case QueryStrategy::kDifferentialOnView:
      return "differential-on-view";
    case QueryStrategy::kCompleteJoin:
      return "complete-join";
  }
  return "?";
}

Result<QueryCostEstimate> SimilarityQueryPlanner::Estimate(
    const Shape& query_shape) const {
  AVM_ASSIGN_OR_RETURN(
      DeltaShape delta,
      ComputeDeltaShape(view_->definition().shape, query_shape));
  QueryCostEstimate estimate;
  estimate.delta_shape_size = delta.size();
  estimate.query_shape_size = query_shape.size();

  const DistributedArray& left = view_->left_base();
  const DistributedArray& right = view_->right_base();
  Catalog* catalog = left.catalog();
  const ArrayId view_id = view_->array().id();
  const int num_workers = left.cluster()->num_workers();
  // In the differential plan, result chunks live where the view chunks do.
  ResultHomeFn view_home = [&](ChunkId v) {
    auto node = catalog->NodeOf(view_id, v);
    return node.ok() ? node.value()
                     : catalog->PlaceByStrategy(view_id, v, num_workers);
  };
  ResultHomeFn fresh_home = [&](ChunkId v) {
    return catalog->PlaceByStrategy(view_id, v, num_workers);
  };

  // With the view: the two signed correction joins, run sequentially.
  estimate.with_view_seconds = 0.0;
  for (const Shape* shape : {&delta.plus, &delta.minus}) {
    if (shape->empty()) continue;
    AVM_ASSIGN_OR_RETURN(
        OptimizedJoinStats stats,
        ExecuteOptimizedJoinAggregate(left, right,
                                      SpecWithShape(*view_, *shape), 1,
                                      view_home, nullptr, seed_,
                                      /*estimate_only=*/true));
    estimate.with_view_seconds += stats.planned_seconds;
  }

  // From scratch: the complete similarity join under the query shape.
  AVM_ASSIGN_OR_RETURN(
      OptimizedJoinStats complete,
      ExecuteOptimizedJoinAggregate(left, right,
                                    SpecWithShape(*view_, query_shape), 1,
                                    fresh_home, nullptr, seed_,
                                    /*estimate_only=*/true));
  estimate.complete_join_seconds = complete.planned_seconds;

  estimate.chosen =
      estimate.with_view_seconds <= estimate.complete_join_seconds
          ? QueryStrategy::kDifferentialOnView
          : QueryStrategy::kCompleteJoin;
  return estimate;
}

Result<SimilarityQueryPlanner::QueryOutcome> SimilarityQueryPlanner::Execute(
    const Shape& query_shape, std::optional<QueryStrategy> force) {
  AVM_ASSIGN_OR_RETURN(QueryCostEstimate estimate, Estimate(query_shape));
  const QueryStrategy strategy = force.value_or(estimate.chosen);

  AVM_ASSIGN_OR_RETURN(
      DeltaShape delta,
      ComputeDeltaShape(view_->definition().shape, query_shape));
  if (strategy == QueryStrategy::kDifferentialOnView &&
      !delta.minus.empty() && !view_->layout().SupportsRetraction()) {
    return Status::FailedPrecondition(
        "the view's aggregates (MIN/MAX) cannot retract the (view \\ query) "
        "half of the delta shape; use the complete join");
  }

  DistributedArray& left = view_->left_base();
  DistributedArray& right = view_->right_base();
  Cluster* cluster = left.cluster();
  Catalog* catalog = left.catalog();
  const int num_workers = cluster->num_workers();

  // A transient result array with the view's schema.
  ArraySchema result_schema(
      view_->definition().view_name + "__qres" +
          std::to_string(result_counter_++),
      view_->array().schema().dims(), view_->array().schema().attrs());
  AVM_ASSIGN_OR_RETURN(
      DistributedArray result,
      DistributedArray::Create(std::move(result_schema),
                               MakeRoundRobinPlacement(), catalog, cluster));

  const ClusterClockSnapshot before = ClusterClockSnapshot::Take(*cluster);
  if (strategy == QueryStrategy::kDifferentialOnView) {
    // Seed the result with the view's content, co-located with the view (a
    // local copy, no communication).
    const ArrayId view_id = view_->array().id();
    for (ChunkId v : catalog->ChunkIdsOf(view_id)) {
      AVM_ASSIGN_OR_RETURN(NodeId node, catalog->NodeOf(view_id, v));
      AVM_ASSIGN_OR_RETURN(const ChunkHandle chunk,
                           view_->array().GetPrimaryChunk(v));
      AVM_RETURN_IF_ERROR(result.PutChunk(v, *chunk, node));
    }
    ResultHomeFn home = [&](ChunkId v) {
      auto node = catalog->NodeOf(result.id(), v);
      return node.ok() ? node.value()
                       : catalog->PlaceByStrategy(result.id(), v,
                                                  num_workers);
    };
    if (!delta.plus.empty()) {
      AVM_RETURN_IF_ERROR(
          ExecuteOptimizedJoinAggregate(left, right,
                                        SpecWithShape(*view_, delta.plus), 1,
                                        home, &result, seed_,
                                        /*estimate_only=*/false)
              .status());
    }
    if (!delta.minus.empty()) {
      AVM_RETURN_IF_ERROR(
          ExecuteOptimizedJoinAggregate(left, right,
                                        SpecWithShape(*view_, delta.minus),
                                        -1, home, &result, seed_,
                                        /*estimate_only=*/false)
              .status());
    }
  } else {
    ResultHomeFn home = [&](ChunkId v) {
      auto node = catalog->NodeOf(result.id(), v);
      return node.ok() ? node.value()
                       : catalog->PlaceByStrategy(result.id(), v,
                                                  num_workers);
    };
    AVM_RETURN_IF_ERROR(
        ExecuteOptimizedJoinAggregate(left, right,
                                      SpecWithShape(*view_, query_shape), 1,
                                      home, &result, seed_,
                                      /*estimate_only=*/false)
            .status());
  }
  const double sim_seconds = before.MakespanSince(*cluster);

  AVM_ASSIGN_OR_RETURN(SparseArray states, result.Gather());
  AVM_RETURN_IF_ERROR(
      StripIdentityCells(&states, view_->layout()).status());

  // Drop the transient result array.
  for (NodeId n = 0; n < num_workers; ++n) {
    cluster->store(n).EraseArray(result.id());
  }
  cluster->store(kCoordinatorNode).EraseArray(result.id());
  catalog->UnregisterArray(result.id());

  return QueryOutcome{std::move(states), strategy, estimate, sim_seconds};
}

}  // namespace avm
