#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/result.h"
#include "storage/chunk_store.h"

namespace avm {

/// One store's spill backing: a flat file of serialized-chunk (AVMCHK01)
/// extents managed by a first-fit free-extent allocator. Write hands out a
/// SpillTicket naming the extent; Free returns it, coalescing with adjacent
/// free extents and shrinking the file's logical end when the freed run is
/// trailing, so a fully reloaded store converges back to an empty file.
///
/// Thread safety: all operations serialize on an internal mutex at
/// LockRank::kSpillFile (35) — above both the buffer manager (25) and the
/// chunk store (30), so spill I/O may be issued from under either lock.
/// The file is created on construction and deleted on destruction; spilled
/// bytes never outlive the process.
class SpillFile {
 public:
  /// Creates (truncating) the backing file. Fails if the path cannot be
  /// opened read-write.
  static Result<std::unique_ptr<SpillFile>> Create(const std::string& path);

  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Writes one serialized chunk into a free (or appended) extent.
  Result<SpillTicket> Write(const std::string& bytes);

  /// Reads a previously written extent back in full.
  Result<std::string> Read(const SpillTicket& ticket);

  /// Returns the extent to the free list (no-op for an empty ticket).
  void Free(const SpillTicket& ticket);

  /// Bytes currently held by live (written, not yet freed) extents.
  uint64_t LiveBytes() const;

  /// Logical end of the file — the allocator's high-water mark. Live plus
  /// free-list bytes; fragmentation is the gap to LiveBytes.
  uint64_t FileBytes() const;

  const std::string& path() const { return path_; }

  /// Use Create(): this constructor is public only for make_unique and
  /// expects an already-opened, validated stream.
  SpillFile(std::string path, std::fstream stream);

 private:
  mutable Mutex mu_{"SpillFile.mu", LockRank::kSpillFile};
  const std::string path_;
  std::fstream stream_ AVM_GUARDED_BY(mu_);
  /// offset -> length of each free extent, non-adjacent by construction
  /// (Free coalesces neighbors on insert).
  std::map<uint64_t, uint64_t> free_extents_ AVM_GUARDED_BY(mu_);
  uint64_t end_ AVM_GUARDED_BY(mu_) = 0;
  uint64_t live_bytes_ AVM_GUARDED_BY(mu_) = 0;
};

}  // namespace avm
