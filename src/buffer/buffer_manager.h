#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "buffer/spill_file.h"
#include "common/mutex.h"
#include "storage/chunk_store.h"

namespace avm {

struct BufferOptions {
  /// Resident-set target across all registered stores, in physical chunk
  /// bytes. The clock hand evicts cold unpinned chunks until tracked
  /// residency is at or under this.
  uint64_t budget_bytes = 256ull << 20;

  /// Directory for the per-store spill files; created if absent, removed on
  /// destruction if it ends up empty.
  std::string spill_dir = "avm_spill";
};

/// The out-of-core layer: owns a bounded resident-set budget over every
/// registered ChunkStore and transparently spills cold chunks to disk.
/// Registering a store binds it a BufferBackend (per-store spill file plus
/// residency callbacks); from then on the store reports chunks entering and
/// leaving residency, and the manager answers over-budget reports by
/// sweeping a clock/second-chance hand over its slot ring:
///
///   - a slot whose access stamp moved since the last visit is promoted hot;
///   - a hot slot is demoted cold (its second chance);
///   - a cold slot is evicted via ChunkStore::TrySpill — which refuses when
///     the chunk is pinned (any outstanding handle, replica alias, or live
///     view-epoch pin holds its shared_ptr, keeping use_count above 1).
///
/// The sweep gives up after two full revolutions without progress, so an
/// all-pinned working set larger than the budget degrades to fully resident
/// instead of live-locking.
///
/// Accounting is event-driven and therefore drifts when chunks grow in
/// place through GetMutable (no notification fires); Rebalance() resamples
/// every slot's actual footprint and re-enforces the budget — callers with
/// batch structure (the maintainer loop, benches) invoke it once per batch.
///
/// Lock order: BufferManager::mu_ ranks at 25, below ChunkStore (30) and
/// SpillFile (35), so the eviction path bm -> store -> file acquires
/// strictly upward, and a store delivering a residency note does so after
/// releasing its own lock. Stores must be registered from the control
/// thread; destruction detaches every store (faulting all spilled chunks
/// back in) and deletes the spill files.
class BufferManager {
 public:
  explicit BufferManager(BufferOptions options);
  ~BufferManager();
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Binds `store` (not owned; must outlive this manager) to a fresh spill
  /// file and seeds the clock ring with its current chunks. May immediately
  /// evict if the store alone exceeds the budget.
  void Register(ChunkStore* store);

  /// Resamples every tracked chunk's physical footprint and re-enforces the
  /// budget. The drift-correction entry point (see class comment).
  void Rebalance();

  struct Stats {
    uint64_t resident_bytes = 0;  // tracked physical bytes across stores
    uint64_t disk_bytes = 0;      // live spill-extent bytes across files
    uint64_t evictions = 0;       // successful spills driven by this manager
    size_t tracked_chunks = 0;    // resident chunks in the clock ring
  };
  Stats GetStats() const;

  uint64_t budget_bytes() const { return options_.budget_bytes; }

 private:
  class StoreBinding;

  struct SlotKey {
    const ChunkStore* store = nullptr;
    ArrayId array = 0;
    ChunkId chunk = 0;
    bool operator==(const SlotKey& o) const {
      return store == o.store && array == o.array && chunk == o.chunk;
    }
  };
  struct SlotKeyHash {
    size_t operator()(const SlotKey& k) const {
      size_t h = std::hash<const void*>()(k.store);
      h = h * 1000003u ^ std::hash<uint64_t>()(k.array);
      h = h * 1000003u ^ std::hash<uint64_t>()(k.chunk);
      return h;
    }
  };

  /// One resident chunk under clock management. `stamp` is shared with the
  /// store entry (bumped on every access there); the hand compares it to
  /// `last_seen` to detect activity since its previous visit.
  struct Slot {
    ChunkStore* store = nullptr;
    ArrayId array = 0;
    ChunkId chunk = 0;
    uint64_t bytes = 0;
    std::shared_ptr<std::atomic<uint64_t>> stamp;
    uint64_t last_seen = 0;
    bool hot = true;
  };

  // BufferBackend plumbing, invoked by bound stores via their binding.
  void NoteResident(ChunkStore* store, ArrayId array, ChunkId chunk,
                    uint64_t bytes,
                    std::shared_ptr<std::atomic<uint64_t>> stamp)
      AVM_EXCLUDES(mu_);
  void NoteDropped(ChunkStore* store, ArrayId array, ChunkId chunk)
      AVM_EXCLUDES(mu_);

  void UpsertSlotLocked(ChunkStore* store, ArrayId array, ChunkId chunk,
                        uint64_t bytes,
                        std::shared_ptr<std::atomic<uint64_t>> stamp)
      AVM_REQUIRES(mu_);
  void RemoveSlotLocked(size_t idx) AVM_REQUIRES(mu_);

  /// The clock sweep; `skip` (if set) names the one entry the current
  /// operation just made resident, which must not be evicted out from under
  /// the raw pointer its accessor is about to return.
  void EnsureBudgetLocked(const SlotKey* skip) AVM_REQUIRES(mu_);

  const BufferOptions options_;

  mutable Mutex mu_{"BufferManager.mu", LockRank::kBufferManager};
  std::vector<std::unique_ptr<StoreBinding>> bindings_ AVM_GUARDED_BY(mu_);
  std::vector<Slot> slots_ AVM_GUARDED_BY(mu_);
  std::unordered_map<SlotKey, size_t, SlotKeyHash> index_ AVM_GUARDED_BY(mu_);
  size_t hand_ AVM_GUARDED_BY(mu_) = 0;
  uint64_t resident_bytes_ AVM_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ AVM_GUARDED_BY(mu_) = 0;
  int next_file_id_ AVM_GUARDED_BY(mu_) = 0;
};

}  // namespace avm
