#include "buffer/buffer_manager.h"

#include <filesystem>
#include <utility>

#include "common/check.h"
#include "telemetry/metrics.h"

namespace avm {

/// Per-store BufferBackend: routes spill I/O to the store's own file and
/// residency notifications to the owning manager. Immutable after
/// construction, so the store may call through it with no coordination
/// beyond the file's and manager's own locks.
class BufferManager::StoreBinding final : public BufferBackend {
 public:
  StoreBinding(BufferManager* manager, ChunkStore* store,
               std::unique_ptr<SpillFile> file)
      : manager_(manager), store_(store), file_(std::move(file)) {}

  Result<SpillTicket> WriteSpill(const std::string& bytes) override {
    return file_->Write(bytes);
  }
  Result<std::string> ReadSpill(const SpillTicket& ticket) override {
    return file_->Read(ticket);
  }
  void FreeSpill(const SpillTicket& ticket) override { file_->Free(ticket); }
  void NoteResident(ArrayId array, ChunkId chunk, uint64_t bytes,
                    std::shared_ptr<std::atomic<uint64_t>> stamp) override {
    manager_->NoteResident(store_, array, chunk, bytes, std::move(stamp));
  }
  void NoteDropped(ArrayId array, ChunkId chunk) override {
    manager_->NoteDropped(store_, array, chunk);
  }

  ChunkStore* store() const { return store_; }
  const SpillFile& file() const { return *file_; }

 private:
  BufferManager* const manager_;
  ChunkStore* const store_;
  const std::unique_ptr<SpillFile> file_;
};

BufferManager::BufferManager(BufferOptions options)
    : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.spill_dir, ec);
  AVM_CHECK(!ec) << "cannot create spill directory '" << options_.spill_dir
                 << "': " << ec.message();
}

BufferManager::~BufferManager() {
  {
    MutexLock lock(mu_);
    // Detach every store first: this faults all spilled chunks back in
    // (through the bindings, whose files are still alive), then the
    // bindings — and with them the spill files — are destroyed.
    for (const auto& binding : bindings_) {
      binding->store()->DetachBufferBackend();
    }
    bindings_.clear();
    slots_.clear();
    index_.clear();
    resident_bytes_ = 0;
  }
  GaugeSet(GaugeId::kBufferResidentBytes, 0);
  std::error_code ec;
  std::filesystem::remove(options_.spill_dir, ec);  // only if empty; best-effort
}

void BufferManager::Register(ChunkStore* store) {
  AVM_CHECK(store != nullptr) << "Register(nullptr)";
  MutexLock lock(mu_);
  for (const auto& binding : bindings_) {
    AVM_CHECK(binding->store() != store) << "store registered twice";
  }
  const std::string path = options_.spill_dir + "/spill_" +
                           std::to_string(next_file_id_++) + ".bin";
  Result<std::unique_ptr<SpillFile>> file = SpillFile::Create(path);
  AVM_CHECK(file.ok()) << file.status().ToString();
  auto binding =
      std::make_unique<StoreBinding>(this, store, std::move(*file));
  // Rank order allows attaching under our lock (25 -> 30), and attach makes
  // no callbacks; notes the store delivers from other threads once the
  // backend is visible simply queue behind us and upsert idempotently.
  std::vector<ChunkStore::ResidentChunkInfo> infos =
      store->AttachBufferBackend(binding.get());
  bindings_.push_back(std::move(binding));
  for (auto& info : infos) {
    UpsertSlotLocked(store, info.array, info.chunk, info.bytes,
                     std::move(info.stamp));
  }
  EnsureBudgetLocked(nullptr);
  GaugeSet(GaugeId::kBufferResidentBytes,
           static_cast<int64_t>(resident_bytes_));
}

void BufferManager::NoteResident(ChunkStore* store, ArrayId array,
                                 ChunkId chunk, uint64_t bytes,
                                 std::shared_ptr<std::atomic<uint64_t>> stamp) {
  AVM_CHECK(stamp != nullptr) << "residency note without an access stamp";
  MutexLock lock(mu_);
  UpsertSlotLocked(store, array, chunk, bytes, std::move(stamp));
  const SlotKey skip{store, array, chunk};
  EnsureBudgetLocked(&skip);
  GaugeSet(GaugeId::kBufferResidentBytes,
           static_cast<int64_t>(resident_bytes_));
}

void BufferManager::NoteDropped(ChunkStore* store, ArrayId array,
                                ChunkId chunk) {
  MutexLock lock(mu_);
  auto it = index_.find(SlotKey{store, array, chunk});
  if (it == index_.end()) return;
  const Slot& slot = slots_[it->second];
  resident_bytes_ -= std::min(resident_bytes_, slot.bytes);
  RemoveSlotLocked(it->second);
  GaugeSet(GaugeId::kBufferResidentBytes,
           static_cast<int64_t>(resident_bytes_));
}

void BufferManager::UpsertSlotLocked(
    ChunkStore* store, ArrayId array, ChunkId chunk, uint64_t bytes,
    std::shared_ptr<std::atomic<uint64_t>> stamp) {
  const SlotKey key{store, array, chunk};
  auto it = index_.find(key);
  if (it != index_.end()) {
    Slot& slot = slots_[it->second];
    resident_bytes_ -= std::min(resident_bytes_, slot.bytes);
    resident_bytes_ += bytes;
    slot.bytes = bytes;
    slot.stamp = std::move(stamp);
    slot.last_seen = slot.stamp->load(std::memory_order_relaxed);
    slot.hot = true;
    return;
  }
  Slot slot;
  slot.store = store;
  slot.array = array;
  slot.chunk = chunk;
  slot.bytes = bytes;
  slot.stamp = std::move(stamp);
  slot.last_seen = slot.stamp->load(std::memory_order_relaxed);
  slot.hot = true;
  index_.emplace(key, slots_.size());
  slots_.push_back(std::move(slot));
  resident_bytes_ += bytes;
}

void BufferManager::RemoveSlotLocked(size_t idx) {
  const Slot& victim = slots_[idx];
  index_.erase(SlotKey{victim.store, victim.array, victim.chunk});
  if (idx + 1 != slots_.size()) {
    slots_[idx] = std::move(slots_.back());
    const Slot& moved = slots_[idx];
    index_[SlotKey{moved.store, moved.array, moved.chunk}] = idx;
  }
  slots_.pop_back();
  if (hand_ >= slots_.size()) hand_ = 0;
}

void BufferManager::EnsureBudgetLocked(const SlotKey* skip) {
  size_t since_progress = 0;
  while (resident_bytes_ > options_.budget_bytes && !slots_.empty() &&
         since_progress < 2 * slots_.size()) {
    if (hand_ >= slots_.size()) hand_ = 0;
    Slot& slot = slots_[hand_];
    const SlotKey key{slot.store, slot.array, slot.chunk};
    if (skip != nullptr && key == *skip) {
      // Never evict the entry whose accessor is mid-return: the raw pointer
      // it hands out must stay valid past this note.
      ++hand_;
      ++since_progress;
      continue;
    }
    const uint64_t seen = slot.stamp->load(std::memory_order_relaxed);
    if (seen != slot.last_seen) {
      // Touched since the hand last came around: promote.
      slot.last_seen = seen;
      slot.hot = true;
      ++hand_;
      ++since_progress;
      continue;
    }
    if (slot.hot) {
      // Second chance: demote and keep sweeping.
      slot.hot = false;
      ++hand_;
      ++since_progress;
      continue;
    }
    const uint64_t freed = slot.store->TrySpill(slot.array, slot.chunk);
    if (freed > 0 || !slot.store->Contains(slot.array, slot.chunk)) {
      // Evicted — or the entry vanished without a drop note reaching us
      // yet; either way the slot is dead.
      resident_bytes_ -= std::min(resident_bytes_, slot.bytes);
      if (freed > 0) ++evictions_;
      RemoveSlotLocked(hand_);
      since_progress = 0;
      continue;
    }
    // Pinned (handle, replica alias, or epoch): stays resident; move on.
    ++hand_;
    ++since_progress;
  }
}

void BufferManager::Rebalance() {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (size_t i = 0; i < slots_.size();) {
    Slot& slot = slots_[i];
    // Peek leaves `bytes` untouched for pinned chunks (they may be under
    // mutation by the pin holder); the slot then keeps its last-known size.
    uint64_t bytes = slot.bytes;
    if (!slot.store->PeekResidentBytes(slot.array, slot.chunk, &bytes)) {
      // Erased or spilled without a note landing yet: drop the slot (it
      // re-registers on next access).
      RemoveSlotLocked(i);
      continue;
    }
    slot.bytes = bytes;
    total += bytes;
    ++i;
  }
  resident_bytes_ = total;
  EnsureBudgetLocked(nullptr);
  GaugeSet(GaugeId::kBufferResidentBytes,
           static_cast<int64_t>(resident_bytes_));
}

BufferManager::Stats BufferManager::GetStats() const {
  MutexLock lock(mu_);
  Stats stats;
  stats.resident_bytes = resident_bytes_;
  stats.evictions = evictions_;
  stats.tracked_chunks = slots_.size();
  for (const auto& binding : bindings_) {
    stats.disk_bytes += binding->file().LiveBytes();
  }
  return stats;
}

}  // namespace avm
