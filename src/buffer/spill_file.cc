#include "buffer/spill_file.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "telemetry/metrics.h"

namespace avm {

Result<std::unique_ptr<SpillFile>> SpillFile::Create(const std::string& path) {
  std::fstream stream(path, std::ios::in | std::ios::out | std::ios::binary |
                                std::ios::trunc);
  if (!stream.is_open()) {
    return Status::Internal("cannot create spill file '" + path + "'");
  }
  return std::make_unique<SpillFile>(path, std::move(stream));
}

SpillFile::SpillFile(std::string path, std::fstream stream)
    : path_(std::move(path)), stream_(std::move(stream)) {}

SpillFile::~SpillFile() {
  // Single-threaded teardown by contract (the buffer manager detaches every
  // store first), so no lock: close and remove the backing file.
  stream_.close();
  std::remove(path_.c_str());
  GaugeAdd(GaugeId::kBufferDiskBytes, -static_cast<int64_t>(live_bytes_));
}

Result<SpillTicket> SpillFile::Write(const std::string& bytes) {
  AVM_CHECK(!bytes.empty()) << "spilling an empty chunk serialization";
  MutexLock lock(mu_);
  SpillTicket ticket;
  ticket.length = bytes.size();
  // First fit over the free list; fall back to appending at the end.
  auto chosen = free_extents_.end();
  for (auto it = free_extents_.begin(); it != free_extents_.end(); ++it) {
    if (it->second >= ticket.length) {
      chosen = it;
      break;
    }
  }
  if (chosen != free_extents_.end()) {
    ticket.offset = chosen->first;
    const uint64_t leftover = chosen->second - ticket.length;
    free_extents_.erase(chosen);
    if (leftover > 0) {
      free_extents_.emplace(ticket.offset + ticket.length, leftover);
    }
  } else {
    ticket.offset = end_;
    end_ += ticket.length;
  }
  stream_.clear();
  stream_.seekp(static_cast<std::streamoff>(ticket.offset));
  stream_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  stream_.flush();
  if (!stream_.good()) {
    return Status::Internal("spill write failed at offset " +
                            std::to_string(ticket.offset) + " in '" + path_ +
                            "'");
  }
  live_bytes_ += ticket.length;
  GaugeAdd(GaugeId::kBufferDiskBytes, static_cast<int64_t>(ticket.length));
  return ticket;
}

Result<std::string> SpillFile::Read(const SpillTicket& ticket) {
  MutexLock lock(mu_);
  std::string bytes(ticket.length, '\0');
  stream_.clear();
  stream_.seekg(static_cast<std::streamoff>(ticket.offset));
  stream_.read(bytes.data(), static_cast<std::streamsize>(ticket.length));
  if (static_cast<uint64_t>(stream_.gcount()) != ticket.length) {
    return Status::Internal("spill read truncated at offset " +
                            std::to_string(ticket.offset) + " in '" + path_ +
                            "'");
  }
  return bytes;
}

void SpillFile::Free(const SpillTicket& ticket) {
  if (ticket.length == 0) return;
  MutexLock lock(mu_);
  AVM_CHECK(live_bytes_ >= ticket.length) << "spill free-list underflow";
  live_bytes_ -= ticket.length;
  GaugeAdd(GaugeId::kBufferDiskBytes, -static_cast<int64_t>(ticket.length));
  uint64_t offset = ticket.offset;
  uint64_t length = ticket.length;
  auto next = free_extents_.lower_bound(offset);
  if (next != free_extents_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      offset = prev->first;
      length += prev->second;
      free_extents_.erase(prev);
    }
  }
  if (next != free_extents_.end() && offset + length == next->first) {
    length += next->second;
    free_extents_.erase(next);
  }
  if (offset + length == end_) {
    // Trailing run: give the space back to the file end instead of parking
    // it on the free list, so a drained store converges to an empty file.
    end_ = offset;
  } else {
    free_extents_.emplace(offset, length);
  }
}

uint64_t SpillFile::LiveBytes() const {
  MutexLock lock(mu_);
  return live_bytes_;
}

uint64_t SpillFile::FileBytes() const {
  MutexLock lock(mu_);
  return end_;
}

}  // namespace avm
