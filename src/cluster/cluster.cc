#include "cluster/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace avm {

Cluster::Cluster(int num_workers, CostModel cost_model, int num_threads)
    : cost_model_(cost_model),
      pool_(std::make_unique<ThreadPool>(num_threads)) {
  AVM_CHECK_GE(num_workers, 1);
  for (int i = 0; i < num_workers; ++i) workers_.emplace_back();
}

ChunkStore& Cluster::store(NodeId node) {
  if (node == kCoordinatorNode) return coordinator_.store;
  AVM_CHECK(node >= 0 && node < num_workers()) << "bad node id " << node;
  return workers_[static_cast<size_t>(node)].store;
}

const ChunkStore& Cluster::store(NodeId node) const {
  return const_cast<Cluster*>(this)->store(node);
}

NodeClock& Cluster::clock(NodeId node) {
  if (node == kCoordinatorNode) return coordinator_.clock;
  AVM_CHECK(node >= 0 && node < num_workers()) << "bad node id " << node;
  return workers_[static_cast<size_t>(node)].clock;
}

const NodeClock& Cluster::clock(NodeId node) const {
  return const_cast<Cluster*>(this)->clock(node);
}

Status Cluster::TransferChunk(ArrayId array, ChunkId chunk, NodeId from,
                              NodeId to) {
  if (from == to) return Status::OK();
  ChunkHandle src = store(from).GetHandle(array, chunk);
  if (src == nullptr) {
    return Status::NotFound("transfer source node " + std::to_string(from) +
                            " does not hold chunk " + std::to_string(chunk) +
                            " of array " + std::to_string(array));
  }
  // Copy-free: the destination store aliases the source's Chunk; the bytes
  // are duplicated only if one side later mutates (ChunkStore COW). The
  // *simulated* network charge below is unchanged — the cost model still
  // sees the full chunk cross the wire.
  const uint64_t bytes = store(to).PutHandle(array, chunk, std::move(src));
  NodeClock& sender = clock(from);
  sender.ntwk_seconds += cost_model_.TransferSeconds(bytes);
  sender.ntwk_bytes += bytes;
  return Status::OK();
}

void Cluster::ChargeJoin(NodeId node, uint64_t bytes) {
  AVM_CHECK_NE(node, kCoordinatorNode)
      << "the coordinator does not participate in join computation";
  NodeClock& c = clock(node);
  c.cpu_seconds += cost_model_.JoinSeconds(bytes);
  c.cpu_bytes += bytes;
}

void Cluster::ChargeNetwork(NodeId node, uint64_t bytes) {
  NodeClock& c = clock(node);
  c.ntwk_seconds += cost_model_.TransferSeconds(bytes);
  c.ntwk_bytes += bytes;
}

double Cluster::MakespanSeconds() const {
  // The paper's maintenance time is measured across the worker servers; the
  // coordinator streams delta chunks outside the critical path (its clock
  // remains inspectable via clock(kCoordinatorNode)).
  double makespan = 0.0;
  for (const auto& w : workers_) {
    makespan = std::max(makespan, w.clock.BusySeconds());
  }
  return makespan;
}

double Cluster::LoadImbalance() const {
  double total = 0.0;
  double peak = 0.0;
  for (const auto& w : workers_) {
    const double busy = w.clock.BusySeconds();
    total += busy;
    peak = std::max(peak, busy);
  }
  if (total <= 0.0) return 1.0;
  const double mean = total / static_cast<double>(workers_.size());
  return peak / mean;
}

void Cluster::ResetClocks() {
  coordinator_.clock.Reset();
  for (auto& w : workers_) w.clock.Reset();
}

ClusterClockSnapshot ClusterClockSnapshot::Take(const Cluster& cluster) {
  ClusterClockSnapshot snap;
  snap.workers.reserve(static_cast<size_t>(cluster.num_workers()));
  for (NodeId n = 0; n < cluster.num_workers(); ++n) {
    snap.workers.push_back(cluster.clock(n));
  }
  snap.coordinator = cluster.clock(kCoordinatorNode);
  return snap;
}

double ClusterClockSnapshot::MakespanSince(const Cluster& cluster) const {
  auto busy_delta = [](const NodeClock& now, const NodeClock& then) {
    return std::max(now.ntwk_seconds - then.ntwk_seconds,
                    now.cpu_seconds - then.cpu_seconds);
  };
  double makespan = 0.0;
  for (NodeId n = 0; n < cluster.num_workers(); ++n) {
    makespan = std::max(
        makespan,
        busy_delta(cluster.clock(n), workers[static_cast<size_t>(n)]));
  }
  return makespan;
}

std::vector<NodeActivity> ClusterClockSnapshot::ActivitySince(
    const Cluster& cluster) const {
  auto delta = [](const NodeClock& now, const NodeClock& then) {
    NodeActivity a;
    a.ntwk_seconds = now.ntwk_seconds - then.ntwk_seconds;
    a.cpu_seconds = now.cpu_seconds - then.cpu_seconds;
    a.ntwk_bytes = now.ntwk_bytes - then.ntwk_bytes;
    a.cpu_bytes = now.cpu_bytes - then.cpu_bytes;
    return a;
  };
  std::vector<NodeActivity> activity;
  activity.reserve(workers.size() + 1);
  for (NodeId n = 0; n < cluster.num_workers(); ++n) {
    activity.push_back(
        delta(cluster.clock(n), workers[static_cast<size_t>(n)]));
  }
  activity.push_back(delta(cluster.clock(kCoordinatorNode), coordinator));
  return activity;
}

}  // namespace avm
