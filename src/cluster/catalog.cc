#include "cluster/catalog.h"

#include <algorithm>

#include "common/check.h"

namespace avm {

Result<ArrayId> Catalog::RegisterArray(
    ArraySchema schema, std::unique_ptr<ChunkPlacement> placement) {
  if (placement == nullptr) {
    return Status::InvalidArgument("null placement strategy");
  }
  if (by_name_.count(schema.name()) > 0) {
    return Status::AlreadyExists("array '" + schema.name() +
                                 "' already registered");
  }
  auto entry = std::make_unique<ArrayEntry>();
  entry->id = static_cast<ArrayId>(entries_.size());
  entry->grid = ChunkGrid(schema);
  entry->schema = std::move(schema);
  entry->placement = std::move(placement);
  const ArrayId id = entry->id;
  by_name_.emplace(entry->schema.name(), id);
  entries_.push_back(std::move(entry));
  return id;
}

bool Catalog::UnregisterArray(ArrayId id) {
  if (id >= entries_.size() || entries_[id] == nullptr) return false;
  by_name_.erase(entries_[id]->schema.name());
  entries_[id] = nullptr;
  return true;
}

Result<ArrayId> Catalog::ArrayIdByName(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("array '" + name + "' not registered");
  }
  return it->second;
}

const Catalog::ArrayEntry& Catalog::GetEntry(ArrayId id) const {
  AVM_CHECK_LT(id, entries_.size());
  AVM_CHECK(entries_[id] != nullptr) << "array id " << id << " unregistered";
  return *entries_[id];
}

Catalog::ArrayEntry& Catalog::GetMutableEntry(ArrayId id) {
  AVM_CHECK_LT(id, entries_.size());
  AVM_CHECK(entries_[id] != nullptr) << "array id " << id << " unregistered";
  return *entries_[id];
}

Result<NodeId> Catalog::NodeOf(ArrayId array, ChunkId chunk) const {
  const ArrayEntry& entry = GetEntry(array);
  auto it = entry.chunk_node.find(chunk);
  if (it == entry.chunk_node.end()) {
    return Status::NotFound("chunk " + std::to_string(chunk) +
                            " of array '" + entry.schema.name() +
                            "' has no assignment");
  }
  return it->second;
}

bool Catalog::HasChunk(ArrayId array, ChunkId chunk) const {
  const ArrayEntry& entry = GetEntry(array);
  return entry.chunk_node.find(chunk) != entry.chunk_node.end();
}

uint64_t Catalog::ChunkBytes(ArrayId array, ChunkId chunk) const {
  const ArrayEntry& entry = GetEntry(array);
  auto it = entry.chunk_bytes.find(chunk);
  return it == entry.chunk_bytes.end() ? 0 : it->second;
}

void Catalog::AssignChunk(ArrayId array, ChunkId chunk, NodeId node) {
  GetMutableEntry(array).chunk_node[chunk] = node;
}

void Catalog::SetChunkBytes(ArrayId array, ChunkId chunk, uint64_t bytes) {
  GetMutableEntry(array).chunk_bytes[chunk] = bytes;
}

bool Catalog::RemoveChunk(ArrayId array, ChunkId chunk) {
  ArrayEntry& entry = GetMutableEntry(array);
  entry.chunk_bytes.erase(chunk);
  return entry.chunk_node.erase(chunk) > 0;
}

NodeId Catalog::PlaceByStrategy(ArrayId array, ChunkId chunk,
                                int num_nodes) const {
  const ArrayEntry& entry = GetEntry(array);
  return entry.placement->PlaceChunk(chunk, entry.grid, num_nodes);
}

std::vector<ChunkId> Catalog::ChunkIdsOf(ArrayId array) const {
  const ArrayEntry& entry = GetEntry(array);
  std::vector<ChunkId> ids;
  ids.reserve(entry.chunk_node.size());
  for (const auto& [id, node] : entry.chunk_node) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t Catalog::NumChunksOnNode(ArrayId array, NodeId node) const {
  const ArrayEntry& entry = GetEntry(array);
  size_t n = 0;
  for (const auto& [id, assigned] : entry.chunk_node) {
    if (assigned == node) ++n;
  }
  return n;
}

}  // namespace avm
