#include "cluster/placement.h"

#include "common/check.h"
#include "common/hash.h"

namespace avm {

NodeId RoundRobinPlacement::PlaceChunk(ChunkId id, const ChunkGrid& grid,
                                       int num_nodes) const {
  (void)grid;
  AVM_CHECK_GT(num_nodes, 0);
  return static_cast<NodeId>(id % static_cast<uint64_t>(num_nodes));
}

NodeId HashPlacement::PlaceChunk(ChunkId id, const ChunkGrid& grid,
                                 int num_nodes) const {
  (void)grid;
  AVM_CHECK_GT(num_nodes, 0);
  return static_cast<NodeId>(HashMix(id) % static_cast<uint64_t>(num_nodes));
}

NodeId RangePlacement::PlaceChunk(ChunkId id, const ChunkGrid& grid,
                                  int num_nodes) const {
  AVM_CHECK_GT(num_nodes, 0);
  AVM_CHECK_LT(dim_, grid.num_dims());
  const int64_t chunks_in_dim = grid.ChunksInDim(dim_);
  const int64_t pos = grid.PosOfId(id)[dim_];
  // Evenly sized contiguous slabs along the chosen dimension.
  const int64_t slab =
      pos * static_cast<int64_t>(num_nodes) / chunks_in_dim;
  return static_cast<NodeId>(slab);
}

std::unique_ptr<ChunkPlacement> MakeRoundRobinPlacement() {
  return std::make_unique<RoundRobinPlacement>();
}
std::unique_ptr<ChunkPlacement> MakeHashPlacement() {
  return std::make_unique<HashPlacement>();
}
std::unique_ptr<ChunkPlacement> MakeRangePlacement(size_t dim) {
  return std::make_unique<RangePlacement>(dim);
}

}  // namespace avm
