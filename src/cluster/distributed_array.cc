#include "cluster/distributed_array.h"

#include <utility>

#include "common/logging.h"

namespace avm {

Result<DistributedArray> DistributedArray::Create(
    ArraySchema schema, std::unique_ptr<ChunkPlacement> placement,
    Catalog* catalog, Cluster* cluster) {
  if (catalog == nullptr || cluster == nullptr) {
    return Status::InvalidArgument("null catalog or cluster");
  }
  AVM_ASSIGN_OR_RETURN(
      ArrayId id, catalog->RegisterArray(std::move(schema),
                                         std::move(placement)));
  return DistributedArray(id, catalog, cluster);
}

Result<DistributedArray> DistributedArray::Open(const std::string& name,
                                                Catalog* catalog,
                                                Cluster* cluster) {
  if (catalog == nullptr || cluster == nullptr) {
    return Status::InvalidArgument("null catalog or cluster");
  }
  AVM_ASSIGN_OR_RETURN(ArrayId id, catalog->ArrayIdByName(name));
  return DistributedArray(id, catalog, cluster);
}

Status DistributedArray::Ingest(const SparseArray& local) {
  if (!local.schema().StructurallyEquals(schema())) {
    return Status::InvalidArgument(
        "ingest schema mismatch: expected " + schema().ToString() + ", got " +
        local.schema().ToString());
  }
  Status status = Status::OK();
  local.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    if (!status.ok()) return;
    NodeId node;
    auto existing = catalog_->NodeOf(id_, id);
    if (existing.ok()) {
      node = existing.value();
    } else {
      node = catalog_->PlaceByStrategy(id_, id, cluster_->num_workers());
    }
    status = PutChunk(id, chunk, node);
  });
  return status;
}

Status DistributedArray::PutChunk(
    ChunkId chunk, Chunk data, NodeId node) {  // avm-lint: allow(chunk-by-value)
  if (node != kCoordinatorNode &&
      (node < 0 || node >= cluster_->num_workers())) {
    return Status::InvalidArgument("bad node id " + std::to_string(node));
  }
  ChunkStore& store = cluster_->store(node);
  Chunk* existing = store.GetMutable(id_, chunk);
  uint64_t bytes;
  if (existing != nullptr) {
    // Pin-while-mutating: the handle keeps the chunk evict-proof across
    // the merge (GetHandle never COW-breaks, so it aliases the post-break
    // chunk GetMutable just returned).
    const ChunkHandle pin = store.GetHandle(id_, chunk);
    // Upsert-merge cell-wise into the resident copy.
    AVM_RETURN_IF_ERROR(existing->UpsertChunk(data));
    existing->MaybeAdaptRepresentation(grid(), chunk);
    bytes = existing->SizeBytes();
  } else {
    data.MaybeAdaptRepresentation(grid(), chunk);
    bytes = store.Put(id_, chunk, std::move(data));
  }
  catalog_->AssignChunk(id_, chunk, node);
  catalog_->SetChunkBytes(id_, chunk, bytes);
  return Status::OK();
}

Status DistributedArray::AccumulateIntoChunk(ChunkId chunk, const Chunk& delta,
                                             NodeId fallback_node) {
  NodeId node;
  auto existing = catalog_->NodeOf(id_, chunk);
  if (existing.ok()) {
    node = existing.value();
  } else {
    node = fallback_node;
    catalog_->AssignChunk(id_, chunk, node);
  }
  ChunkStore& store = cluster_->store(node);
  Chunk& target =
      store.GetOrCreate(id_, chunk, delta.num_dims(), delta.num_attrs());
  const ChunkHandle pin = store.GetHandle(id_, chunk);  // pin-while-mutating
  AVM_RETURN_IF_ERROR(target.AccumulateChunk(delta));
  target.MaybeAdaptRepresentation(grid(), chunk);
  catalog_->SetChunkBytes(id_, chunk, target.SizeBytes());
  return Status::OK();
}

Result<SparseArray> DistributedArray::Gather() const {
  SparseArray out(schema());
  CellCoord coord;
  for (ChunkId id : catalog_->ChunkIdsOf(id_)) {
    AVM_ASSIGN_OR_RETURN(const ChunkHandle chunk, GetPrimaryChunk(id));
    AVM_RETURN_IF_ERROR(chunk->VisitCells(
        [&](uint64_t, std::span<const int64_t> c,
            std::span<const double> values) {
          coord.assign(c.begin(), c.end());
          return out.Set(coord, values);
        }));
  }
  return out;
}

Result<ChunkHandle> DistributedArray::GetPrimaryChunk(ChunkId chunk) const {
  AVM_ASSIGN_OR_RETURN(NodeId node, catalog_->NodeOf(id_, chunk));
  ChunkHandle data = cluster_->store(node).GetHandle(id_, chunk);
  if (data == nullptr) {
    return Status::Internal(
        "catalog says chunk " + std::to_string(chunk) + " of array " +
        std::to_string(id_) + " is on node " + std::to_string(node) +
        " but the store does not hold it");
  }
  return data;
}

uint64_t DistributedArray::NumCells() const {
  uint64_t n = 0;
  for (ChunkId id : catalog_->ChunkIdsOf(id_)) {
    auto chunk = GetPrimaryChunk(id);
    if (chunk.ok()) n += chunk.value()->num_cells();
  }
  return n;
}

uint64_t DistributedArray::TotalBytes() const {
  uint64_t n = 0;
  for (ChunkId id : catalog_->ChunkIdsOf(id_)) {
    n += catalog_->ChunkBytes(id_, id);
  }
  return n;
}

size_t DistributedArray::NumChunks() const {
  return catalog_->ChunkIdsOf(id_).size();
}

}  // namespace avm
