#pragma once

#include <memory>

#include "array/sparse_array.h"
#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "common/result.h"

namespace avm {

/// A chunked array whose chunks are spread across the cluster's workers: the
/// pairing of catalog metadata (schema, grid, chunk->node map, chunk sizes)
/// with the physical chunks in the node stores. Both base arrays and
/// materialized views are DistributedArrays.
///
/// The handle does not own the data; it borrows the catalog and cluster,
/// which must outlive it.
class DistributedArray {
 public:
  /// Registers `schema` in the catalog with the given placement strategy for
  /// new chunks and returns a handle. Fails if the name is taken.
  static Result<DistributedArray> Create(
      ArraySchema schema, std::unique_ptr<ChunkPlacement> placement,
      Catalog* catalog, Cluster* cluster);

  /// Rebinds a handle to an already registered array.
  static Result<DistributedArray> Open(const std::string& name,
                                       Catalog* catalog, Cluster* cluster);

  ArrayId id() const { return id_; }
  const ArraySchema& schema() const { return catalog_->SchemaOf(id_); }
  const ChunkGrid& grid() const { return catalog_->GridOf(id_); }
  Catalog* catalog() const { return catalog_; }
  Cluster* cluster() const { return cluster_; }

  /// Loads a single-node array into the cluster: every chunk is placed by
  /// the array's static placement strategy, stored on its node, and recorded
  /// in the catalog. Chunks already present are upsert-merged cell-wise on
  /// their current node. Schemas must match structurally. Initial loading is
  /// not charged to the simulated clocks (it precedes the measured
  /// maintenance, as in the paper).
  Status Ingest(const SparseArray& local);

  /// Places one chunk on an explicit node: stores the data, records the
  /// assignment and size. Merges cell-wise if the node already holds a copy.
  Status PutChunk(ChunkId chunk, Chunk data, NodeId node);  // avm-lint: allow(chunk-by-value)

  /// Accumulates `delta` into the chunk's primary copy (creating the chunk
  /// on `fallback_node` if it does not exist yet) and refreshes the
  /// catalog's size metadata. The merge primitive used when applying ∆V.
  Status AccumulateIntoChunk(ChunkId chunk, const Chunk& delta,
                             NodeId fallback_node);

  /// Collects every primary chunk into a single-node SparseArray (used by
  /// tests and examples to compare against reference computations).
  Result<SparseArray> Gather() const;

  /// The primary copy of a chunk, or NotFound. Returns a handle, not a raw
  /// pointer: a materialized handle is a pin, so the chunk stays resident
  /// (and alive) for as long as the caller holds it even while a buffer
  /// manager is evicting concurrently.
  Result<ChunkHandle> GetPrimaryChunk(ChunkId chunk) const;

  /// Total non-empty cells across primary chunks.
  uint64_t NumCells() const;

  /// Total bytes across primary chunks, from catalog metadata.
  uint64_t TotalBytes() const;

  /// Number of non-empty chunks.
  size_t NumChunks() const;

 private:
  DistributedArray(ArrayId id, Catalog* catalog, Cluster* cluster)
      : id_(id), catalog_(catalog), cluster_(cluster) {}

  ArrayId id_;
  Catalog* catalog_;
  Cluster* cluster_;
};

}  // namespace avm

