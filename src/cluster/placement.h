#pragma once

#include <memory>
#include <string>

#include "array/chunk_grid.h"
#include "array/coords.h"

namespace avm {

/// Worker node index, 0-based. The coordinator is not a worker; it is
/// addressed by kCoordinatorNode.
using NodeId = int;

/// Sentinel node id for the coordinator, where freshly ingested delta chunks
/// live before the maintenance plan spreads them (Section 4: "∆ chunks are
/// initially stored at the coordinator").
inline constexpr NodeId kCoordinatorNode = -1;

/// Static chunking/placement strategy: decides the node of a chunk from its
/// grid position alone. These are the strategies whose pathologies Section
/// 4.1 describes — hash spreads adjacent chunks apart (communication-heavy),
/// space partitioning clusters them together (load-imbalanced) — and that
/// the reassignment stages escape.
class ChunkPlacement {
 public:
  virtual ~ChunkPlacement() = default;

  /// Node for the chunk at `id` on `grid`, among `num_nodes` workers.
  virtual NodeId PlaceChunk(ChunkId id, const ChunkGrid& grid,
                            int num_nodes) const = 0;

  /// Strategy name for logs and catalog dumps.
  virtual std::string Name() const = 0;
};

/// Round-robin in row-major chunk order (SciDB's default in the paper's
/// Figure 1): chunk id modulo node count.
class RoundRobinPlacement final : public ChunkPlacement {
 public:
  NodeId PlaceChunk(ChunkId id, const ChunkGrid& grid,
                    int num_nodes) const override;
  std::string Name() const override { return "round-robin"; }
};

/// Hash placement: a mixed hash of the chunk id modulo node count. Adjacent
/// chunks land on different nodes with high probability.
class HashPlacement final : public ChunkPlacement {
 public:
  NodeId PlaceChunk(ChunkId id, const ChunkGrid& grid,
                    int num_nodes) const override;
  std::string Name() const override { return "hash"; }
};

/// Space partitioning: contiguous slabs of the chunk grid along one
/// dimension (a 1-D range partition, the simplest of the space-partitioning
/// family — space-filling curves, quadtrees, k-d trees — the paper cites).
class RangePlacement final : public ChunkPlacement {
 public:
  /// Partitions along dimension `dim` of the chunk grid.
  explicit RangePlacement(size_t dim = 0) : dim_(dim) {}

  NodeId PlaceChunk(ChunkId id, const ChunkGrid& grid,
                    int num_nodes) const override;
  std::string Name() const override {
    return "range(dim=" + std::to_string(dim_) + ")";
  }

 private:
  size_t dim_;
};

/// Factory helpers.
std::unique_ptr<ChunkPlacement> MakeRoundRobinPlacement();
std::unique_ptr<ChunkPlacement> MakeHashPlacement();
std::unique_ptr<ChunkPlacement> MakeRangePlacement(size_t dim = 0);

}  // namespace avm

