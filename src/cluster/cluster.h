#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "cluster/cost_model.h"
#include "cluster/placement.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "storage/chunk_store.h"

namespace avm {

/// The simulated shared-nothing cluster: N worker nodes plus a coordinator,
/// each with its own chunk store, plus per-node simulated clocks driven by
/// the linear cost model.
///
/// Data movement is real (chunks are copied between in-memory stores, so
/// every downstream computation operates on the data a plan actually put in
/// place) while time is simulated: a transfer charges the *sender's* network
/// clock, a join charges the executing node's CPU clock. The cluster-wide
/// makespan — max over nodes of max(ntwk, cpu), communication and
/// computation overlapped — is exactly the objective of the paper's MIP
/// (Eq. 1), so "maintenance time" in our experiments is the quantity the
/// planners optimize, independent of host hardware.
///
/// The coordinator holds freshly ingested delta chunks. Its uplink traffic
/// is charged to its own clock for inspection, but — following the paper's
/// objective, which ranges over the worker servers — it does not enter the
/// makespan: delta streaming overlaps the maintenance pipeline. It never
/// executes joins.
class Cluster {
 public:
  /// Creates a cluster with `num_workers` worker nodes (>= 1) and a
  /// coordinator. `num_threads` sizes the host thread pool the maintenance
  /// executor uses to run per-node work concurrently (1 = serial execution;
  /// simulated clocks and therefore makespans are identical either way).
  explicit Cluster(int num_workers, CostModel cost_model = CostModel(),
                   int num_threads = 1);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const CostModel& cost_model() const { return cost_model_; }

  /// The host-side execution pool for parallel maintenance. Never null.
  ThreadPool* pool() const { return pool_.get(); }
  int num_threads() const { return pool_->num_threads(); }

  /// Store of a worker (0..N-1) or of the coordinator (kCoordinatorNode).
  ChunkStore& store(NodeId node);
  const ChunkStore& store(NodeId node) const;

  /// Clock of a worker or the coordinator.
  NodeClock& clock(NodeId node);
  const NodeClock& clock(NodeId node) const;

  /// Copies a chunk from `from`'s store into `to`'s store (a replica; the
  /// source copy remains) and charges the sender's network clock. No-op
  /// charge-free if `from == to`. Fails if the source store lacks the chunk.
  Status TransferChunk(ArrayId array, ChunkId chunk, NodeId from, NodeId to);

  /// Charges `bytes` of join input to `node`'s CPU clock. The node must be a
  /// worker (the coordinator never joins).
  void ChargeJoin(NodeId node, uint64_t bytes);

  /// Charges `bytes` of outgoing traffic to `node`'s network clock without
  /// moving data (used when the payload was produced in place, e.g. shipping
  /// a differential-view fragment).
  void ChargeNetwork(NodeId node, uint64_t bytes);

  /// Simulated completion time of everything charged since the last reset:
  /// max over workers and coordinator of per-node busy time.
  double MakespanSeconds() const;

  /// Largest per-node busy time divided by the mean (1.0 = perfectly
  /// balanced); a load-skew diagnostic for the experiments. Workers only.
  double LoadImbalance() const;

  void ResetClocks();

 private:
  struct Node {
    ChunkStore store;
    NodeClock clock;
  };

  CostModel cost_model_;
  /// A deque because Node embeds a ChunkStore, whose internal mutex makes it
  /// non-movable; deque constructs nodes in place and never relocates them.
  std::deque<Node> workers_;
  Node coordinator_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Per-node clock deltas over one operation window, in simulated seconds
/// plus the exact byte totals behind them. Produced by
/// ClusterClockSnapshot::ActivitySince; consumed by telemetry (per-node
/// trace spans) and MaintenanceReport.
struct NodeActivity {
  double ntwk_seconds = 0.0;
  double cpu_seconds = 0.0;
  uint64_t ntwk_bytes = 0;
  uint64_t cpu_bytes = 0;
};

/// Snapshot of every node's clock, for measuring the simulated makespan of
/// one operation window: max over nodes of max(Δntwk, Δcpu) since the
/// snapshot (communication and computation overlap per node).
struct ClusterClockSnapshot {
  std::vector<NodeClock> workers;
  NodeClock coordinator;

  static ClusterClockSnapshot Take(const Cluster& cluster);
  double MakespanSince(const Cluster& cluster) const;

  /// Per-node deltas since this snapshot: workers 0..N-1, coordinator last
  /// (index num_workers).
  std::vector<NodeActivity> ActivitySince(const Cluster& cluster) const;
};

}  // namespace avm

