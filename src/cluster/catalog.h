#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "array/chunk_grid.h"
#include "array/coords.h"
#include "array/schema.h"
#include "cluster/placement.h"
#include "common/result.h"
#include "storage/chunk_store.h"

namespace avm {

/// The centralized system catalog managed by the coordinator: array schemas,
/// their chunk grids, each array's chunk-to-node assignment, and per-chunk
/// sizes. Everything the maintenance planners consume is metadata read from
/// here — planning never touches cell data, matching the paper's
/// "preprocessing step over the metadata".
class Catalog {
 public:
  /// Metadata of one registered array.
  struct ArrayEntry {
    ArrayId id = 0;
    ArraySchema schema;
    ChunkGrid grid;
    std::unique_ptr<ChunkPlacement> placement;
    /// Primary location of every non-empty chunk.
    std::unordered_map<ChunkId, NodeId> chunk_node;
    /// Size in bytes of every non-empty chunk (the cost model's B_q).
    std::unordered_map<ChunkId, uint64_t> chunk_bytes;
  };

  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers an array with its static placement strategy for new chunks.
  /// Fails if the name is taken.
  Result<ArrayId> RegisterArray(ArraySchema schema,
                                std::unique_ptr<ChunkPlacement> placement);

  /// Drops an array's metadata; true if it existed.
  bool UnregisterArray(ArrayId id);

  size_t NumArrays() const { return entries_.size(); }

  Result<ArrayId> ArrayIdByName(const std::string& name) const;

  /// Entry accessors; the id must be registered (checked).
  const ArrayEntry& GetEntry(ArrayId id) const;
  ArrayEntry& GetMutableEntry(ArrayId id);

  const ArraySchema& SchemaOf(ArrayId id) const { return GetEntry(id).schema; }
  const ChunkGrid& GridOf(ArrayId id) const { return GetEntry(id).grid; }

  /// Primary node of a chunk, or NotFound if the chunk is empty/unknown.
  Result<NodeId> NodeOf(ArrayId array, ChunkId chunk) const;

  /// True if the chunk is registered (non-empty).
  bool HasChunk(ArrayId array, ChunkId chunk) const;

  /// Registered size of the chunk in bytes; 0 if unknown.
  uint64_t ChunkBytes(ArrayId array, ChunkId chunk) const;

  /// Sets/updates the primary node of a chunk.
  void AssignChunk(ArrayId array, ChunkId chunk, NodeId node);

  /// Sets/updates the registered size of a chunk.
  void SetChunkBytes(ArrayId array, ChunkId chunk, uint64_t bytes);

  /// Drops a chunk's assignment and size metadata (the chunk became empty,
  /// e.g. after a deletion batch); true if it was registered.
  bool RemoveChunk(ArrayId array, ChunkId chunk);

  /// Applies the array's static placement strategy to a chunk (does not
  /// record the assignment; callers decide when to commit it).
  NodeId PlaceByStrategy(ArrayId array, ChunkId chunk, int num_nodes) const;

  /// All registered chunk ids of an array, ascending (deterministic).
  std::vector<ChunkId> ChunkIdsOf(ArrayId array) const;

  /// Number of chunks of `array` whose primary lives on `node`.
  size_t NumChunksOnNode(ArrayId array, NodeId node) const;

 private:
  std::vector<std::unique_ptr<ArrayEntry>> entries_;
  std::unordered_map<std::string, ArrayId> by_name_;
};

}  // namespace avm

