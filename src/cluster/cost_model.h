#pragma once

#include <algorithm>
#include <cstdint>

namespace avm {

/// The paper's linear cost model (Table 1): transferring a chunk of B bytes
/// between two nodes takes B * t_ntwk seconds, joining two chunks of B_pq
/// total bytes takes B_pq * t_cpu seconds. The values are "determined based
/// on an empirical calibration process"; our defaults match the paper's
/// testbed links (125 MB/s) and the 4:1 Tntwk:Tcpu per-byte ratio of the
/// worked example in Figure 7 — moving a chunk costs more than streaming it
/// through the join kernel once, but a chunk is joined against many
/// partners, so communication placement and computation balance both shape
/// the makespan.
struct CostModel {
  /// Seconds per byte moved over a link (default: 1 / 125 MB/s).
  double t_ntwk_per_byte = 1.0 / (125.0 * 1024 * 1024);
  /// Seconds per byte of join input processed (default: a 500 MB/s
  /// in-memory join kernel — the example's Tntwk = 4, Tcpu = 1).
  double t_cpu_per_byte = 1.0 / (500.0 * 1024 * 1024);
  /// Seconds per byte faulted in from a node's local spill storage — the
  /// out-of-core extension to the paper's model: a plan that touches a
  /// non-resident chunk first pays its reload at the holding node. Disk
  /// reload serializes with that node's other I/O, so the charge lands on
  /// the ntwk lane. Zero (the default) reproduces the fully-resident model
  /// bit-for-bit; set it to the measured spill-device rate when running
  /// under a BufferManager.
  double t_disk_per_byte = 0.0;

  double TransferSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) * t_ntwk_per_byte;
  }
  double JoinSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) * t_cpu_per_byte;
  }
  double DiskSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) * t_disk_per_byte;
  }
};

/// Per-node simulated time accumulators: the ntwk[k] and cpu[k] arrays of
/// Algorithms 1-3. Communication and computation overlap in the paper's
/// implementation, so a node's busy time is the max of the two, and the
/// cluster-wide makespan is the max over nodes.
struct NodeClock {
  double ntwk_seconds = 0.0;
  double cpu_seconds = 0.0;
  /// Byte totals behind the simulated seconds. The cost model is linear, so
  /// seconds == bytes * rate — but the integer totals are exact, which lets
  /// telemetry cross-check trace spans against clock charges without
  /// floating-point tolerance.
  uint64_t ntwk_bytes = 0;
  uint64_t cpu_bytes = 0;

  /// This node's busy time under overlapped communication/computation.
  double BusySeconds() const { return std::max(ntwk_seconds, cpu_seconds); }

  void Reset() {
    ntwk_seconds = 0.0;
    cpu_seconds = 0.0;
    ntwk_bytes = 0;
    cpu_bytes = 0;
  }
};

}  // namespace avm

