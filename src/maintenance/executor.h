#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/distributed_array.h"
#include "common/result.h"
#include "maintenance/types.h"
#include "view/materialized_view.h"

namespace avm {

/// Counters from one plan execution.
struct ExecutionStats {
  uint64_t joins_executed = 0;      // kernel directions run
  uint64_t fragments_merged = 0;    // differential-view fragments applied
  uint64_t view_chunks_touched = 0; // view chunks merged into or relocated
  uint64_t delta_chunks_merged = 0; // delta chunks folded into the base
  uint64_t base_chunks_moved = 0;   // stage-3 reassignments applied
  /// Simulated clock deltas over this execution, workers 0..N-1 then the
  /// coordinator. The byte totals are exact, so telemetry consumers (and
  /// tests) can reconcile trace spans against MakespanTracker charges.
  std::vector<NodeActivity> per_node;
};

/// Executes a maintenance plan for real against the cluster: performs the
/// planned transfers (chunks are copied between node stores and senders'
/// network clocks charged), runs every join direction at its assigned node
/// (CPU charged there), ships and merges the differential-view fragments
/// into each view chunk's (possibly new) home, folds the delta chunks into
/// the base array, applies the stage-3 storage redistribution, and finally
/// drops all non-primary replicas.
///
/// The executor validates the plan as it goes: a join whose operands the
/// plan failed to co-locate, a reference to a delta that was not supplied,
/// or a node id outside the cluster is an Internal error, not a silent
/// fallback or a crash — plans produced by the planners must be
/// self-sufficient.
///
/// Execution is parallel on the cluster's host thread pool
/// (Cluster::pool()): each simulated node's chunk joins run as one
/// concurrent task, and delta-chunk upserts fan out per chunk. Simulated
/// clock charges accumulate in a thread-safe bank committed after each
/// parallel phase, and fragments merge into view chunks in canonical
/// ascending-ChunkId order, so the resulting view, catalog, and clocks are
/// bit-identical to serial execution (--threads 1) regardless of host
/// scheduling.
///
/// After execution the view's content is exactly the view definition
/// evaluated over base+delta (verified against full recomputation in the
/// test suite), and the catalog reflects every reassignment.
Result<ExecutionStats> ExecuteMaintenancePlan(const MaintenancePlan& plan,
                                              const TripleSet& triples,
                                              MaterializedView* view,
                                              DistributedArray* left_delta,
                                              DistributedArray* right_delta);

}  // namespace avm

