#pragma once

#include "cluster/cost_model.h"
#include "common/status.h"
#include "maintenance/makespan_tracker.h"
#include "maintenance/types.h"

namespace avm {

/// Algorithm 2 — View Chunk Reassignment. Given the stage-1 join placement
/// (the z variables in `plan->joins`) and its accumulated cost state, pick
/// the merge/home node y_v of every affected view chunk: iterate the view
/// chunks in random order and evaluate every worker j', charging
///   - shipping each contributing pair's differential result (proxied by
///     B_pq, as in the MIP's merge term) from its join node when that node
///     is not j', and
///   - the merge CPU B_pq at j',
/// plus, when `options.charge_view_move` is set, relocating the existing
/// view chunk from S_v (an x-transfer the MIP charges but the printed
/// heuristic omits). The minimizing node is committed into `tracker` and
/// written to `plan->view_home[v]` — reassignment is a side effect of
/// choosing where to merge (NP-hard via multiprocessor scheduling,
/// Appendix A.2).
Status ReassignViewChunks(const TripleSet& triples, int num_workers,
                          const CostModel& cost, const PlannerOptions& options,
                          MakespanTracker* tracker, MaintenancePlan* plan);

}  // namespace avm

