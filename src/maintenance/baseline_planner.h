#pragma once

#include "common/result.h"
#include "maintenance/types.h"
#include "view/materialized_view.h"

namespace avm {

/// The baseline view-maintenance planner of Section 4.1: the parallel
/// relational procedure of Luo et al. [37] adapted to arrays and extended to
/// batch updates.
///
///  - Every delta chunk is first assigned by its array's static placement
///    strategy and shipped there from the coordinator.
///  - Each chunk pair joins at the node that *stores* the non-delta operand
///    (for delta-delta pairs, the second operand's freshly assigned node);
///    the other operand is shipped there (once per replica target).
///  - Differential results ship to the view chunk's current node (new view
///    chunks are assigned by the view's placement strategy); no chunk is
///    ever reassigned.
///
/// Its pathologies — excessive communication under hash-spread chunking and
/// load imbalance under space-partitioned chunking — are what the heuristic
/// stages remove.
Result<MaintenancePlan> PlanBaseline(const MaterializedView& view,
                                     const TripleSet& triples,
                                     int num_workers);

}  // namespace avm

