#pragma once

#include <vector>

#include "cluster/cost_model.h"
#include "common/result.h"
#include "maintenance/types.h"

namespace avm {

/// The stage-1 objective restricted to what Algorithm 1 optimizes:
/// co-location transfers (each distinct (chunk, target-node) replica billed
/// once to the chunk's origin) plus join CPU, makespan over workers and the
/// coordinator. `assignment[i]` is the join node of `triples.pairs[i]`.
Result<double> EvaluateStage1Assignment(const TripleSet& triples,
                                        const std::vector<NodeId>& assignment,
                                        int num_workers,
                                        const CostModel& cost);

/// Result of the exhaustive stage-1 search.
struct ExactStage1Solution {
  std::vector<NodeId> assignment;
  double objective = 0.0;
};

/// Exhaustively minimizes the stage-1 objective over all N^|pairs| join
/// placements. The problem is NP-hard (Appendix A.1 reduces constrained
/// bipartite vertex cover to it) — this solver exists to anchor the
/// heuristic's quality in tests and is CHECK-limited to tiny instances
/// (pairs <= 10, N^pairs <= ~1e7).
Result<ExactStage1Solution> SolveStage1Exact(const TripleSet& triples,
                                             int num_workers,
                                             const CostModel& cost);

}  // namespace avm

