#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "array/coords.h"
#include "cluster/placement.h"
#include "common/hash.h"

namespace avm {

/// During maintenance a delta chunk and the base chunk with the same id
/// coexist (e.g. ∆A4 and A4 in the paper's Figure 1), so maintenance-time
/// chunk references carry the side they live on. `kLeftDelta`/`kRightDelta`
/// distinguish the two deltas of a two-array view; a self-join view only
/// uses `kLeftDelta`.
enum class ChunkSide : uint8_t {
  kLeftBase = 0,
  kRightBase = 1,
  kLeftDelta = 2,
  kRightDelta = 3,
};

inline bool IsDeltaSide(ChunkSide side) {
  return side == ChunkSide::kLeftDelta || side == ChunkSide::kRightDelta;
}

/// A maintenance-time chunk reference: which operand population it belongs
/// to plus its chunk id on that array's grid.
struct MChunkRef {
  ChunkSide side = ChunkSide::kLeftBase;
  ChunkId id = 0;

  bool operator==(const MChunkRef& o) const {
    return side == o.side && id == o.id;
  }
  bool operator<(const MChunkRef& o) const {
    return side != o.side ? side < o.side : id < o.id;
  }
};

struct MChunkRefHash {
  size_t operator()(const MChunkRef& r) const {
    return static_cast<size_t>(
        HashMix(r.id * 4 + static_cast<uint64_t>(r.side)));
  }
};

/// One unique chunk join pair derived from the update triples. The operands
/// {a, b} are unordered for planning purposes — co-locating them once serves
/// both join directions, which is how the paper's z variables treat a pair —
/// but execution is directional because shapes may be asymmetric (PTF-5's
/// time look-back window): `dir_ab` runs the kernel with `a` as the
/// group-by (left) operand, `dir_ba` with `b`. `view_targets_ab/ba` are the
/// view chunks each direction's results merge into — the v components of
/// the paper's (p, q, v) triples.
///
/// For a two-array view, `a` is always the left-array chunk and only
/// `dir_ab` is set.
struct JoinPair {
  MChunkRef a;
  MChunkRef b;
  bool dir_ab = false;
  bool dir_ba = false;
  uint64_t bytes = 0;  // B_ab = B_a + B_b, snapshotted at planning time
  std::vector<ChunkId> view_targets_ab;
  std::vector<ChunkId> view_targets_ba;
  /// Cached union of the two target lists (filled by triple generation).
  std::vector<ChunkId> all_view_targets;

  /// Distinct view chunks affected by either direction. Returns the cached
  /// union when triple generation filled it; recomputes otherwise.
  const std::vector<ChunkId>& AllViewTargets() const;
};

/// The update triples U_0 of one batch in pair-grouped form, plus the chunk
/// population metadata the planners need (sizes and current locations).
struct TripleSet {
  std::vector<JoinPair> pairs;
  /// Current location S of every chunk referenced by a pair (base chunks at
  /// their catalog node, delta chunks at the coordinator).
  std::unordered_map<MChunkRef, NodeId, MChunkRefHash> location;
  /// Size B of every referenced chunk, in bytes.
  std::unordered_map<MChunkRef, uint64_t, MChunkRefHash> bytes;
  /// Current location of every affected *view* chunk; absent for view
  /// chunks that do not exist yet.
  std::unordered_map<ChunkId, NodeId> view_location;
  /// Size of every existing affected view chunk.
  std::unordered_map<ChunkId, uint64_t> view_bytes;
  /// Referenced chunks whose bytes are currently spilled to disk at their
  /// holding node (out-of-core operation under a BufferManager; empty when
  /// everything is resident). The planners charge CostModel::DiskSeconds
  /// for the first touch of each.
  std::unordered_set<MChunkRef, MChunkRefHash> spilled;
  /// Affected existing view chunks currently spilled at their home node.
  std::unordered_set<ChunkId> view_spilled;

  size_t num_triples() const {
    size_t n = 0;
    for (const auto& pair : pairs) n += pair.AllViewTargets().size();
    return n;
  }
};

/// Tunables of the three-stage heuristic.
struct PlannerOptions {
  /// Seed for the randomized iteration orders of Algorithms 1 and 2.
  uint64_t seed = 42;
  /// Window of past update batches kept for array chunk reassignment.
  int history_window = 5;
  /// Exponential decay of historical batch weights: W_l = decay^l.
  double history_decay = 0.5;
  /// Multiplier on the per-node CPU threshold of Algorithm 3.
  double cpu_threshold_slack = 1.0;
  /// Charge the relocation of an existing view chunk (S_v -> j) in
  /// Algorithm 2's candidate cost. The printed heuristic omits it but the
  /// MIP's x-variables include it; on by default for fidelity to Eq. (1).
  bool charge_view_move = true;
};

/// A complete maintenance plan: the solved x (transfers), z (join
/// placement), and y (view and array chunk reassignment) variables in
/// executable form.
struct MaintenancePlan {
  struct Transfer {
    MChunkRef chunk;
    NodeId from = kCoordinatorNode;
    NodeId to = 0;
  };
  struct Join {
    size_t pair_index = 0;  // into TripleSet::pairs
    NodeId node = 0;
  };
  struct Move {
    MChunkRef chunk;
    NodeId node = 0;
  };

  /// Operand co-location moves, in execution order (x variables).
  std::vector<Transfer> transfers;
  /// One entry per unique pair (z variables).
  std::vector<Join> joins;
  /// Merge destination / new home of every affected view chunk (y for view
  /// chunks).
  std::unordered_map<ChunkId, NodeId> view_home;
  /// New homes decided by array chunk reassignment, delta chunks included
  /// (y for array chunks). Chunks not listed stay at / go to their default.
  std::vector<Move> array_moves;
};

}  // namespace avm

