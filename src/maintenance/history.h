#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "array/coords.h"
#include "maintenance/types.h"

namespace avm {

/// One (a, v) scoring fact distilled from an update triple (p, q, v): array
/// chunk `a` (p or q, delta sides collapsed to their array chunk id, since
/// deltas merge into the base after maintenance) co-occurred with view chunk
/// `v`. `bytes` snapshots B_a at the batch's time.
struct ScoreEntry {
  ChunkId array_chunk = 0;
  bool right_array = false;  // which base array the chunk belongs to
  ChunkId view_chunk = 0;
  uint64_t bytes = 0;
};

/// The scoring facts of one update batch U_l, plus the batch's total join
/// input Σ B_pq (used to size Algorithm 3's per-node CPU threshold).
struct HistoryBatch {
  std::vector<ScoreEntry> entries;
  uint64_t total_pair_bytes = 0;
};

/// Distills a TripleSet into its HistoryBatch form: every (pair, v) triple
/// contributes one entry per operand.
HistoryBatch MakeHistoryBatch(const TripleSet& triples);

/// Fixed-size window of past update batches, newest first. Weights follow
/// exponential decay: the batch `l` steps in the past gets W_l = decay^l
/// (the current batch, handled by the caller, is l = 0 with weight 1).
class BatchHistory {
 public:
  explicit BatchHistory(int window) : window_(window) {}

  int window() const { return window_; }
  size_t size() const { return batches_.size(); }
  bool empty() const { return batches_.empty(); }

  /// Records a completed batch; the oldest is evicted beyond the window.
  void Push(HistoryBatch batch);

  /// Batches newest (l = 1) to oldest (l = size()).
  const std::deque<HistoryBatch>& batches() const { return batches_; }

  void Clear() { batches_.clear(); }

 private:
  int window_;
  std::deque<HistoryBatch> batches_;
};

}  // namespace avm

