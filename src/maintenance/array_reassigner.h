#pragma once

#include <set>
#include <unordered_map>

#include "cluster/cost_model.h"
#include "common/status.h"
#include "maintenance/history.h"
#include "maintenance/types.h"
#include "view/materialized_view.h"

namespace avm {

/// Algorithm 3 — Array Chunk Reassignment. Reuses the replication that view
/// maintenance already paid for to repartition the base arrays, so future
/// batches find the chunks co-located with the view chunks they feed.
///
/// Every (array chunk a, view chunk v) co-occurrence across the current
/// batch (weight 1) and the historical window (weight decay^l) accrues
/// score W_l * B_a. Pairs are visited in descending score; chunk a moves to
/// the node of v's new home y_v, provided
///   - maintenance actually replicated a there (x_{a,S_a,j} = 1, taken from
///     stage 1's replica sets — only then is the move free), and
///   - the node's CPU budget cpu_thr (the batch-weighted average join load
///     per node, scaled by options.cpu_threshold_slack) still covers B_a.
/// Unassigned chunks stay put; a new (delta-only) chunk that cannot be
/// placed under the budget goes to the home of its highest-score view chunk
/// (the paper's fallback). NP-hard via quadratic knapsack (Appendix A.3).
///
/// Disk awareness (out-of-core extension): a chunk whose bytes are spilled
/// at its current location has its scores scaled by
/// 1 + T_disk/T_cpu — under a nonzero CostModel::t_disk_per_byte, spilled
/// chunks sort earlier, claim the per-node budget first, and so end up
/// moved onto nodes where maintenance just materialized a fresh resident
/// replica, retiring their future reload charge. With the default
/// t_disk_per_byte of 0 the multiplier is 1 and the ordering is unchanged.
///
/// Moves are appended to `plan->array_moves`; they carry no simulated cost
/// (only storage is redistributed).
Status ReassignArrayChunks(
    const MaterializedView& view, const TripleSet& triples,
    const BatchHistory& history, int num_workers,
    const PlannerOptions& options, const CostModel& cost,
    const std::unordered_map<MChunkRef, std::set<NodeId>, MChunkRefHash>&
        replicas,
    MaintenancePlan* plan);

}  // namespace avm

