#include "maintenance/maintainer.h"

#include <optional>
#include <vector>

#include "common/check.h"
#include "maintenance/array_reassigner.h"
#include "maintenance/baseline_planner.h"
#include "maintenance/differential_planner.h"
#include "maintenance/modifications.h"
#include "maintenance/plan_validator.h"
#include "maintenance/triple_gen.h"
#include "maintenance/view_reassigner.h"
#include "storage/chunk_store.h"
#include "telemetry/metrics.h"
#include "telemetry/stopwatch.h"
#include "telemetry/trace.h"

namespace avm {

namespace {

/// Registers a transient delta array (chunks at the coordinator) holding the
/// batch's cells.
Result<DistributedArray> IngestDelta(const SparseArray& cells,
                                     const DistributedArray& base,
                                     const std::string& name, Catalog* catalog,
                                     Cluster* cluster) {
  ArraySchema schema(name, base.schema().dims(), base.schema().attrs());
  AVM_ASSIGN_OR_RETURN(
      DistributedArray delta,
      DistributedArray::Create(std::move(schema), MakeRoundRobinPlacement(),
                               catalog, cluster));
  Status status = Status::OK();
  cells.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    if (!status.ok()) return;
    status = delta.PutChunk(id, chunk, kCoordinatorNode);
  });
  AVM_RETURN_IF_ERROR(status);
  return delta;
}

}  // namespace

std::string_view MaintenanceMethodName(MaintenanceMethod method) {
  switch (method) {
    case MaintenanceMethod::kBaseline:
      return "baseline";
    case MaintenanceMethod::kDifferential:
      return "differential";
    case MaintenanceMethod::kReassign:
      return "reassign";
  }
  return "?";
}

ViewMaintainer::ViewMaintainer(MaterializedView* view,
                               MaintenanceMethod method,
                               PlannerOptions options)
    : view_(view),
      method_(method),
      options_(options),
      history_(options.history_window) {}

Result<MaintenanceReport> ViewMaintainer::ApplyBatch(
    const SparseArray& left_delta_cells,
    const SparseArray* right_delta_cells) {
  Catalog* catalog = view_->array().catalog();
  Cluster* cluster = view_->array().cluster();
  const int num_workers = cluster->num_workers();
  const std::string tag = "__delta" + std::to_string(batch_counter_++);

  // The whole-batch telemetry window: simulated clocks are delta'd against
  // this snapshot, registry counters against `metrics_before`.
  const ClusterClockSnapshot batch_entry = ClusterClockSnapshot::Take(*cluster);
  const bool telemetry = TelemetryEnabled();
  MetricsSnapshot metrics_before;
  if (telemetry) metrics_before = MetricsRegistry::Global().Snapshot();
  Stopwatch batch_clock;
  ScopedSpan batch_span("maint.batch", "maint");
  batch_span.AddArg("batch", static_cast<int64_t>(batch_counter_ - 1));

  MaintenanceReport report;
  report.delta_cells = left_delta_cells.NumCells() +
                       (right_delta_cells != nullptr
                            ? right_delta_cells->NumCells()
                            : 0);

  // Split the raw batches into pure inserts and overwrites of existing
  // cells; the latter take the value-correction path after the insert-side
  // maintenance (see maintenance/modifications.h).
  std::optional<ScopedSpan> split_span(std::in_place, "maint.split", "maint");
  SparseArray left_ins(view_->left_base().schema());
  SparseArray lmod_old(view_->left_base().schema());
  SparseArray lmod_new(view_->left_base().schema());
  AVM_RETURN_IF_ERROR(SplitInsertsAndModifications(view_->left_base(),
                                                   left_delta_cells, &left_ins,
                                                   &lmod_old, &lmod_new)
                          .status());
  SparseArray right_ins(view_->right_base().schema());
  SparseArray rmod_old(view_->right_base().schema());
  SparseArray rmod_new(view_->right_base().schema());
  if (right_delta_cells != nullptr) {
    AVM_RETURN_IF_ERROR(
        SplitInsertsAndModifications(view_->right_base(), *right_delta_cells,
                                     &right_ins, &rmod_old, &rmod_new)
            .status());
  }
  report.modified_cells = lmod_new.NumCells() + rmod_new.NumCells();
  split_span.reset();

  // Ingest the insert sides at the coordinator as transient delta arrays.
  std::optional<ScopedSpan> ingest_span(std::in_place, "maint.ingest",
                                        "maint");
  AVM_ASSIGN_OR_RETURN(
      DistributedArray left_delta,
      IngestDelta(left_ins, view_->left_base(),
                  view_->definition().left_array + tag, catalog, cluster));
  std::optional<DistributedArray> right_delta;
  if (right_delta_cells != nullptr) {
    AVM_ASSIGN_OR_RETURN(
        DistributedArray rd,
        IngestDelta(right_ins, view_->right_base(),
                    view_->definition().right_array + tag, catalog, cluster));
    right_delta = std::move(rd);
  }
  report.num_delta_chunks =
      left_delta.NumChunks() +
      (right_delta.has_value() ? right_delta->NumChunks() : 0);
  ingest_span.reset();

  // Metadata preprocessing: the update triples U_0.
  Stopwatch triple_clock;
  TripleSet triples;
  {
    ScopedSpan triple_span("plan.triples", "plan");
    AVM_ASSIGN_OR_RETURN(
        TripleSet triples_tmp,
        GenerateTriples(*view_, &left_delta,
                        right_delta.has_value() ? &*right_delta : nullptr,
                        &footprint_cache_));
    triples = std::move(triples_tmp);
    triple_span.AddArg("pairs", static_cast<int64_t>(triples.pairs.size()));
  }
  report.triple_gen_seconds = triple_clock.ElapsedSeconds();
  report.num_pairs = triples.pairs.size();
  report.num_triples = triples.num_triples();
  if constexpr (kDebugChecksEnabled) {
    ValidateTripleSet(triples, num_workers);
  }

  // Plan. In Debug/test builds every planner stage is followed by the
  // structural validator — Algorithms 1-3 each preserve the plan contract,
  // so a violation pinpoints the stage that broke it.
  Stopwatch plan_clock;
  MaintenancePlan plan;
  std::unordered_map<MChunkRef, std::set<NodeId>, MChunkRefHash> replicas;
  const CostModel* cost = &cluster->cost_model();
  switch (method_) {
    case MaintenanceMethod::kBaseline: {
      ScopedSpan stage_span("plan.baseline", "plan");
      AVM_ASSIGN_OR_RETURN(plan,
                           PlanBaseline(*view_, triples, num_workers));
      break;
    }
    case MaintenanceMethod::kDifferential: {
      ScopedSpan stage_span("plan.stage1", "plan");
      AVM_ASSIGN_OR_RETURN(
          DifferentialPlanResult stage1,
          PlanDifferentialView(*view_, triples, num_workers,
                               cluster->cost_model(), options_));
      plan = std::move(stage1.plan);
      break;
    }
    case MaintenanceMethod::kReassign: {
      std::optional<DifferentialPlanResult> stage1;
      {
        ScopedSpan stage_span("plan.stage1", "plan");
        AVM_ASSIGN_OR_RETURN(
            DifferentialPlanResult result,
            PlanDifferentialView(*view_, triples, num_workers,
                                 cluster->cost_model(), options_));
        stage1 = std::move(result);
      }
      plan = std::move(stage1->plan);
      replicas = std::move(stage1->replicas);
      if constexpr (kDebugChecksEnabled) {
        ValidateMaintenancePlan(plan, triples, num_workers, cost);
      }
      {
        ScopedSpan stage_span("plan.stage2", "plan");
        AVM_RETURN_IF_ERROR(ReassignViewChunks(triples, num_workers,
                                               cluster->cost_model(), options_,
                                               &stage1->tracker, &plan));
      }
      if constexpr (kDebugChecksEnabled) {
        ValidateMaintenancePlan(plan, triples, num_workers, cost);
      }
      {
        ScopedSpan stage_span("plan.stage3", "plan");
        AVM_RETURN_IF_ERROR(ReassignArrayChunks(*view_, triples, history_,
                                                num_workers, options_, *cost,
                                                replicas, &plan));
      }
      break;
    }
  }
  if constexpr (kDebugChecksEnabled) {
    ValidateMaintenancePlan(plan, triples, num_workers, cost);
  }
  report.planning_seconds = plan_clock.ElapsedSeconds();

  // Execute against the cluster and measure the batch's simulated makespan
  // plus the real wall-clock the (possibly multi-threaded) execution took.
  const ClusterClockSnapshot before = ClusterClockSnapshot::Take(*cluster);
  Stopwatch exec_clock;
  auto exec = ExecuteMaintenancePlan(
      plan, triples, view_, &left_delta,
      right_delta.has_value() ? &*right_delta : nullptr);
  if (!exec.ok()) return exec.status();
  report.execution_wall_seconds = exec_clock.ElapsedSeconds();
  report.exec = exec.value();

  // Value corrections for overwritten cells (after the insert merge, so
  // fresh cells are corrected too). Still inside the measured window.
  std::optional<ScopedSpan> mods_span(std::in_place, "maint.modifications",
                                      "maint");
  mods_span->AddArg("cells", static_cast<int64_t>(report.modified_cells));
  if (view_->definition().IsSelfJoin()) {
    if (lmod_new.NumCells() > 0) {
      AVM_RETURN_IF_ERROR(
          ApplyRightSideModifications(view_, lmod_old, lmod_new).status());
    }
  } else {
    if (lmod_new.NumCells() > 0) {
      AVM_RETURN_IF_ERROR(ApplyLeftSideModifications(view_, lmod_new));
    }
    if (rmod_new.NumCells() > 0) {
      AVM_RETURN_IF_ERROR(
          ApplyRightSideModifications(view_, rmod_old, rmod_new).status());
    }
  }
  mods_span.reset();
  report.maintenance_seconds = before.MakespanSince(*cluster);

  // Record the batch for future array reassignment and drop the transient
  // delta arrays.
  history_.Push(MakeHistoryBatch(triples));
  catalog->UnregisterArray(left_delta.id());
  if (right_delta.has_value()) catalog->UnregisterArray(right_delta->id());

  // Batch commit: publish the post-batch view version as a new epoch, so
  // concurrent snapshot readers atomically flip to it. Readers pinning the
  // pre-batch epoch keep their handles (the mutations above COW'd around
  // them) until their snapshots drop.
  if (epoch_manager_ != nullptr) {
    std::vector<ViewPin> pins;
    pins.push_back(EpochManager::PinView(*view_));
    report.published_epoch = epoch_manager_->Publish(std::move(pins));
  }

  // Per-batch activity breakdown: simulated per-node clock deltas over the
  // whole batch window (always; exact bytes), plus registry counter deltas
  // when telemetry is on.
  report.per_node = batch_entry.ActivitySince(*cluster);
  for (const NodeActivity& a : report.per_node) {
    report.bytes_transferred += a.ntwk_bytes;
    report.bytes_joined += a.cpu_bytes;
  }
  if (telemetry) {
    const MetricsSnapshot delta =
        MetricsRegistry::Global().Snapshot().DeltaSince(metrics_before);
    report.telemetry_collected = true;
    report.plan_candidates = delta.counter(CounterId::kPlanStage1Candidates) +
                             delta.counter(CounterId::kPlanStage2Candidates) +
                             delta.counter(CounterId::kPlanStage3Candidates);
    report.plan_accepts = delta.counter(CounterId::kPlanStage1Accepts) +
                          delta.counter(CounterId::kPlanStage2Accepts) +
                          delta.counter(CounterId::kPlanStage3Accepts);
    report.shape_cache_hits = delta.counter(CounterId::kShapeCacheHits);
    report.shape_cache_misses = delta.counter(CounterId::kShapeCacheMisses);
    report.chunks_densified = delta.counter(CounterId::kChunksDensified);
    report.chunks_sparsified = delta.counter(CounterId::kChunksSparsified);
    // Post-batch physical residency by representation, across every node's
    // store (workers + coordinator). Scanned here — once per batch — rather
    // than delta-tracked at every mutation site.
    ChunkStore::FormatResidency residency;
    for (NodeId n = 0; n < cluster->num_workers(); ++n) {
      const ChunkStore::FormatResidency r =
          cluster->store(n).ResidencyByFormat();
      residency.sparse_bytes += r.sparse_bytes;
      residency.dense_bytes += r.dense_bytes;
      residency.spilled_bytes += r.spilled_bytes;
    }
    {
      const ChunkStore::FormatResidency r =
          cluster->store(kCoordinatorNode).ResidencyByFormat();
      residency.sparse_bytes += r.sparse_bytes;
      residency.dense_bytes += r.dense_bytes;
      residency.spilled_bytes += r.spilled_bytes;
    }
    report.resident_sparse_bytes = residency.sparse_bytes;
    report.resident_dense_bytes = residency.dense_bytes;
    report.spilled_bytes = residency.spilled_bytes;
    GaugeSet(GaugeId::kStoreSparseBytes,
             static_cast<int64_t>(residency.sparse_bytes));
    GaugeSet(GaugeId::kStoreDenseBytes,
             static_cast<int64_t>(residency.dense_bytes));
    CountAdd(CounterId::kBatchesMaintained);
    HistogramRecord(HistogramId::kBatchApplySeconds,
                    batch_clock.ElapsedSeconds());
  }

  return report;
}

}  // namespace avm
