#include "maintenance/maintainer.h"

#include <optional>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "maintenance/array_reassigner.h"
#include "maintenance/baseline_planner.h"
#include "maintenance/differential_planner.h"
#include "maintenance/modifications.h"
#include "maintenance/plan_validator.h"
#include "maintenance/triple_gen.h"
#include "maintenance/view_reassigner.h"

namespace avm {

namespace {

/// Registers a transient delta array (chunks at the coordinator) holding the
/// batch's cells.
Result<DistributedArray> IngestDelta(const SparseArray& cells,
                                     const DistributedArray& base,
                                     const std::string& name, Catalog* catalog,
                                     Cluster* cluster) {
  ArraySchema schema(name, base.schema().dims(), base.schema().attrs());
  AVM_ASSIGN_OR_RETURN(
      DistributedArray delta,
      DistributedArray::Create(std::move(schema), MakeRoundRobinPlacement(),
                               catalog, cluster));
  Status status = Status::OK();
  cells.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    if (!status.ok()) return;
    status = delta.PutChunk(id, chunk, kCoordinatorNode);
  });
  AVM_RETURN_IF_ERROR(status);
  return delta;
}

}  // namespace

std::string_view MaintenanceMethodName(MaintenanceMethod method) {
  switch (method) {
    case MaintenanceMethod::kBaseline:
      return "baseline";
    case MaintenanceMethod::kDifferential:
      return "differential";
    case MaintenanceMethod::kReassign:
      return "reassign";
  }
  return "?";
}

ViewMaintainer::ViewMaintainer(MaterializedView* view,
                               MaintenanceMethod method,
                               PlannerOptions options)
    : view_(view),
      method_(method),
      options_(options),
      history_(options.history_window) {}

Result<MaintenanceReport> ViewMaintainer::ApplyBatch(
    const SparseArray& left_delta_cells,
    const SparseArray* right_delta_cells) {
  Catalog* catalog = view_->array().catalog();
  Cluster* cluster = view_->array().cluster();
  const int num_workers = cluster->num_workers();
  const std::string tag = "__delta" + std::to_string(batch_counter_++);

  MaintenanceReport report;
  report.delta_cells = left_delta_cells.NumCells() +
                       (right_delta_cells != nullptr
                            ? right_delta_cells->NumCells()
                            : 0);

  // Split the raw batches into pure inserts and overwrites of existing
  // cells; the latter take the value-correction path after the insert-side
  // maintenance (see maintenance/modifications.h).
  SparseArray left_ins(view_->left_base().schema());
  SparseArray lmod_old(view_->left_base().schema());
  SparseArray lmod_new(view_->left_base().schema());
  AVM_RETURN_IF_ERROR(SplitInsertsAndModifications(view_->left_base(),
                                                   left_delta_cells, &left_ins,
                                                   &lmod_old, &lmod_new)
                          .status());
  SparseArray right_ins(view_->right_base().schema());
  SparseArray rmod_old(view_->right_base().schema());
  SparseArray rmod_new(view_->right_base().schema());
  if (right_delta_cells != nullptr) {
    AVM_RETURN_IF_ERROR(
        SplitInsertsAndModifications(view_->right_base(), *right_delta_cells,
                                     &right_ins, &rmod_old, &rmod_new)
            .status());
  }
  report.modified_cells = lmod_new.NumCells() + rmod_new.NumCells();

  // Ingest the insert sides at the coordinator as transient delta arrays.
  AVM_ASSIGN_OR_RETURN(
      DistributedArray left_delta,
      IngestDelta(left_ins, view_->left_base(),
                  view_->definition().left_array + tag, catalog, cluster));
  std::optional<DistributedArray> right_delta;
  if (right_delta_cells != nullptr) {
    AVM_ASSIGN_OR_RETURN(
        DistributedArray rd,
        IngestDelta(right_ins, view_->right_base(),
                    view_->definition().right_array + tag, catalog, cluster));
    right_delta = std::move(rd);
  }
  report.num_delta_chunks =
      left_delta.NumChunks() +
      (right_delta.has_value() ? right_delta->NumChunks() : 0);

  // Metadata preprocessing: the update triples U_0.
  Stopwatch triple_clock;
  AVM_ASSIGN_OR_RETURN(
      TripleSet triples,
      GenerateTriples(*view_, &left_delta,
                      right_delta.has_value() ? &*right_delta : nullptr,
                      &footprint_cache_));
  report.triple_gen_seconds = triple_clock.ElapsedSeconds();
  report.num_pairs = triples.pairs.size();
  report.num_triples = triples.num_triples();
  if constexpr (kDebugChecksEnabled) {
    ValidateTripleSet(triples, num_workers);
  }

  // Plan. In Debug/test builds every planner stage is followed by the
  // structural validator — Algorithms 1-3 each preserve the plan contract,
  // so a violation pinpoints the stage that broke it.
  Stopwatch plan_clock;
  MaintenancePlan plan;
  std::unordered_map<MChunkRef, std::set<NodeId>, MChunkRefHash> replicas;
  const CostModel* cost = &cluster->cost_model();
  switch (method_) {
    case MaintenanceMethod::kBaseline: {
      AVM_ASSIGN_OR_RETURN(plan,
                           PlanBaseline(*view_, triples, num_workers));
      break;
    }
    case MaintenanceMethod::kDifferential: {
      AVM_ASSIGN_OR_RETURN(
          DifferentialPlanResult stage1,
          PlanDifferentialView(*view_, triples, num_workers,
                               cluster->cost_model(), options_));
      plan = std::move(stage1.plan);
      break;
    }
    case MaintenanceMethod::kReassign: {
      AVM_ASSIGN_OR_RETURN(
          DifferentialPlanResult stage1,
          PlanDifferentialView(*view_, triples, num_workers,
                               cluster->cost_model(), options_));
      plan = std::move(stage1.plan);
      replicas = std::move(stage1.replicas);
      if constexpr (kDebugChecksEnabled) {
        ValidateMaintenancePlan(plan, triples, num_workers, cost);
      }
      AVM_RETURN_IF_ERROR(ReassignViewChunks(triples, num_workers,
                                             cluster->cost_model(), options_,
                                             &stage1.tracker, &plan));
      if constexpr (kDebugChecksEnabled) {
        ValidateMaintenancePlan(plan, triples, num_workers, cost);
      }
      AVM_RETURN_IF_ERROR(ReassignArrayChunks(*view_, triples, history_,
                                              num_workers, options_, replicas,
                                              &plan));
      break;
    }
  }
  if constexpr (kDebugChecksEnabled) {
    ValidateMaintenancePlan(plan, triples, num_workers, cost);
  }
  report.planning_seconds = plan_clock.ElapsedSeconds();

  // Execute against the cluster and measure the batch's simulated makespan
  // plus the real wall-clock the (possibly multi-threaded) execution took.
  const ClusterClockSnapshot before = ClusterClockSnapshot::Take(*cluster);
  Stopwatch exec_clock;
  auto exec = ExecuteMaintenancePlan(
      plan, triples, view_, &left_delta,
      right_delta.has_value() ? &*right_delta : nullptr);
  if (!exec.ok()) return exec.status();
  report.execution_wall_seconds = exec_clock.ElapsedSeconds();
  report.exec = exec.value();

  // Value corrections for overwritten cells (after the insert merge, so
  // fresh cells are corrected too). Still inside the measured window.
  if (view_->definition().IsSelfJoin()) {
    if (lmod_new.NumCells() > 0) {
      AVM_RETURN_IF_ERROR(
          ApplyRightSideModifications(view_, lmod_old, lmod_new).status());
    }
  } else {
    if (lmod_new.NumCells() > 0) {
      AVM_RETURN_IF_ERROR(ApplyLeftSideModifications(view_, lmod_new));
    }
    if (rmod_new.NumCells() > 0) {
      AVM_RETURN_IF_ERROR(
          ApplyRightSideModifications(view_, rmod_old, rmod_new).status());
    }
  }
  report.maintenance_seconds = before.MakespanSince(*cluster);

  // Record the batch for future array reassignment and drop the transient
  // delta arrays.
  history_.Push(MakeHistoryBatch(triples));
  catalog->UnregisterArray(left_delta.id());
  if (right_delta.has_value()) catalog->UnregisterArray(right_delta->id());

  return report;
}

}  // namespace avm
