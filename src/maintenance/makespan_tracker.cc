#include "maintenance/makespan_tracker.h"

#include <algorithm>
#include <unordered_map>

#include "cluster/cluster.h"
#include "common/check.h"

namespace avm {

namespace {

/// Atomic a += v via CAS (std::atomic<double>::fetch_add is C++20 but not
/// universally lock-free on older standard libraries).
void AtomicAdd(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

MakespanTracker::MakespanTracker(int num_workers)
    : num_workers_(num_workers),
      ntwk_(static_cast<size_t>(num_workers) + 1, 0.0),
      cpu_(static_cast<size_t>(num_workers) + 1, 0.0) {
  AVM_CHECK_GE(num_workers, 1);
  // Only worker slots participate in the objective multiset.
  for (int i = 0; i < num_workers; ++i) scores_.insert(0.0);
}

size_t MakespanTracker::Index(NodeId node) const {
  if (node == kCoordinatorNode) return static_cast<size_t>(num_workers_);
  AVM_CHECK(node >= 0 && node < num_workers_) << "bad node id " << node;
  return static_cast<size_t>(node);
}

double MakespanTracker::ScoreOf(size_t index) const {
  return std::max(ntwk_[index], cpu_[index]);
}

double MakespanTracker::EvalWithDeltas(
    const std::vector<Delta>& deltas) const {
  // Aggregate per node (a candidate may touch the same node twice, e.g. both
  // operands originate there).
  std::unordered_map<size_t, std::pair<double, double>> agg;
  agg.reserve(deltas.size());
  for (const auto& d : deltas) {
    auto& acc = agg[Index(d.node)];
    acc.first += d.dntwk;
    acc.second += d.dcpu;
  }
  // Max over unaffected workers: remove affected scores from the multiset,
  // read the max, reinsert. The multiset is logically const here. The
  // coordinator slot is tracked but never scored.
  const size_t coordinator = static_cast<size_t>(num_workers_);
  auto& scores = const_cast<std::multiset<double>&>(scores_);
  for (const auto& [index, delta] : agg) {
    if (index == coordinator) continue;
    auto it = scores.find(ScoreOf(index));
    AVM_CHECK(it != scores.end());
    scores.erase(it);
  }
  double result = scores.empty() ? 0.0 : *scores.rbegin();
  for (const auto& [index, delta] : agg) {
    if (index == coordinator) continue;
    const double score = std::max(ntwk_[index] + delta.first,
                                  cpu_[index] + delta.second);
    result = std::max(result, score);
    scores.insert(ScoreOf(index));  // restore
  }
  return result;
}

void MakespanTracker::Commit(const std::vector<Delta>& deltas) {
  const size_t coordinator = static_cast<size_t>(num_workers_);
  for (const auto& d : deltas) {
    // Maintenance only ever accrues time; a negative charge means a cost
    // formula went wrong upstream.
    AVM_DCHECK_GE(d.dntwk, 0.0) << "negative network charge on " << d.node;
    AVM_DCHECK_GE(d.dcpu, 0.0) << "negative cpu charge on " << d.node;
    const size_t index = Index(d.node);
    if (index == coordinator) {
      ntwk_[index] += d.dntwk;
      cpu_[index] += d.dcpu;
      continue;
    }
    auto it = scores_.find(ScoreOf(index));
    AVM_CHECK(it != scores_.end());
    scores_.erase(it);
    ntwk_[index] += d.dntwk;
    cpu_[index] += d.dcpu;
    scores_.insert(ScoreOf(index));
  }
}

void MakespanTracker::AddNetwork(NodeId node, double seconds) {
  Commit({Delta{node, seconds, 0.0}});
}

void MakespanTracker::AddCpu(NodeId node, double seconds) {
  Commit({Delta{node, 0.0, seconds}});
}

double MakespanTracker::CurrentMax() const {
  return scores_.empty() ? 0.0 : *scores_.rbegin();
}

ConcurrentClockBank::ConcurrentClockBank(int num_workers)
    : num_workers_(num_workers),
      slots_(static_cast<size_t>(num_workers) + 1) {
  AVM_CHECK_GE(num_workers, 1);
}

size_t ConcurrentClockBank::Index(NodeId node) const {
  if (node == kCoordinatorNode) return static_cast<size_t>(num_workers_);
  AVM_CHECK(node >= 0 && node < num_workers_) << "bad node id " << node;
  return static_cast<size_t>(node);
}

void ConcurrentClockBank::AddNetwork(NodeId node, double seconds,
                                     uint64_t bytes) {
  AVM_DCHECK_GE(seconds, 0.0) << "negative network charge on " << node;
  Slot& slot = slots_[Index(node)];
  AtomicAdd(&slot.ntwk, seconds);
  slot.ntwk_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void ConcurrentClockBank::AddCpu(NodeId node, double seconds,
                                 uint64_t bytes) {
  AVM_DCHECK_GE(seconds, 0.0) << "negative cpu charge on " << node;
  Slot& slot = slots_[Index(node)];
  AtomicAdd(&slot.cpu, seconds);
  slot.cpu_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

double ConcurrentClockBank::ntwk(NodeId node) const {
  return slots_[Index(node)].ntwk.load(std::memory_order_relaxed);
}

double ConcurrentClockBank::cpu(NodeId node) const {
  return slots_[Index(node)].cpu.load(std::memory_order_relaxed);
}

uint64_t ConcurrentClockBank::ntwk_bytes(NodeId node) const {
  return slots_[Index(node)].ntwk_bytes.load(std::memory_order_relaxed);
}

uint64_t ConcurrentClockBank::cpu_bytes(NodeId node) const {
  return slots_[Index(node)].cpu_bytes.load(std::memory_order_relaxed);
}

void ConcurrentClockBank::CommitTo(Cluster* cluster) const {
  auto apply = [](const Slot& slot, NodeClock& clock) {
    clock.ntwk_seconds += slot.ntwk.load(std::memory_order_relaxed);
    clock.cpu_seconds += slot.cpu.load(std::memory_order_relaxed);
    clock.ntwk_bytes += slot.ntwk_bytes.load(std::memory_order_relaxed);
    clock.cpu_bytes += slot.cpu_bytes.load(std::memory_order_relaxed);
  };
  for (NodeId n = 0; n < num_workers_; ++n) {
    apply(slots_[static_cast<size_t>(n)], cluster->clock(n));
  }
  apply(slots_[static_cast<size_t>(num_workers_)],
        cluster->clock(kCoordinatorNode));
}

}  // namespace avm
