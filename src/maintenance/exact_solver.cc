#include "maintenance/exact_solver.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace avm {

Result<double> EvaluateStage1Assignment(const TripleSet& triples,
                                        const std::vector<NodeId>& assignment,
                                        int num_workers,
                                        const CostModel& cost) {
  if (assignment.size() != triples.pairs.size()) {
    return Status::InvalidArgument(
        "assignment must cover every pair exactly once (C3)");
  }
  const size_t slots = static_cast<size_t>(num_workers) + 1;
  std::vector<double> ntwk(slots, 0.0);
  std::vector<double> cpu(slots, 0.0);
  auto slot = [&](NodeId node) -> size_t {
    return node == kCoordinatorNode ? slots - 1 : static_cast<size_t>(node);
  };

  std::set<std::pair<MChunkRef, NodeId>> replicated;
  for (size_t i = 0; i < triples.pairs.size(); ++i) {
    const JoinPair& pair = triples.pairs[i];
    const NodeId j = assignment[i];
    if (j < 0 || j >= num_workers) {
      return Status::InvalidArgument("assignment uses a non-worker node");
    }
    for (const MChunkRef& c : {pair.a, pair.b}) {
      const NodeId origin = triples.location.at(c);
      if (origin != j && replicated.insert({c, j}).second) {
        ntwk[slot(origin)] += cost.TransferSeconds(triples.bytes.at(c));
      }
      if (pair.a == pair.b) break;  // self pair: one operand
    }
    cpu[slot(j)] += cost.JoinSeconds(pair.bytes);
  }
  // Workers only; the coordinator slot is informational.
  double makespan = 0.0;
  for (size_t k = 0; k + 1 < slots; ++k) {
    makespan = std::max(makespan, std::max(ntwk[k], cpu[k]));
  }
  return makespan;
}

Result<ExactStage1Solution> SolveStage1Exact(const TripleSet& triples,
                                             int num_workers,
                                             const CostModel& cost) {
  const size_t pairs = triples.pairs.size();
  if (pairs > 10) {
    return Status::InvalidArgument(
        "exact solver is limited to <= 10 pairs (exponential search)");
  }
  const double space = std::pow(static_cast<double>(num_workers),
                                static_cast<double>(pairs));
  if (space > 1e7) {
    return Status::InvalidArgument("search space too large for exact solve");
  }

  ExactStage1Solution best;
  best.objective = std::numeric_limits<double>::infinity();
  std::vector<NodeId> assignment(pairs, 0);
  for (;;) {
    AVM_ASSIGN_OR_RETURN(
        double value,
        EvaluateStage1Assignment(triples, assignment, num_workers, cost));
    if (value < best.objective) {
      best.objective = value;
      best.assignment = assignment;
    }
    // Odometer over assignments.
    size_t d = pairs;
    bool done = true;
    while (d-- > 0) {
      if (assignment[d] + 1 < num_workers) {
        ++assignment[d];
        done = false;
        break;
      }
      assignment[d] = 0;
    }
    if (done) break;
  }
  if (pairs == 0) best.objective = 0.0;
  return best;
}

}  // namespace avm
