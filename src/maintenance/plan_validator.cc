#include "maintenance/plan_validator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "maintenance/objective.h"

namespace avm {

namespace {

bool IsWorker(NodeId node, int num_workers) {
  return node >= 0 && node < num_workers;
}

bool IsWorkerOrCoordinator(NodeId node, int num_workers) {
  return node == kCoordinatorNode || IsWorker(node, num_workers);
}

/// Human-readable chunk-ref tag for check messages.
std::string RefTag(const MChunkRef& ref) {
  static constexpr const char* kSideNames[] = {"left-base", "right-base",
                                               "left-delta", "right-delta"};
  return std::string(kSideNames[static_cast<int>(ref.side)]) + "/" +
         std::to_string(ref.id);
}

}  // namespace

void ValidateTripleSet(const TripleSet& triples, int num_workers) {
  for (size_t i = 0; i < triples.pairs.size(); ++i) {
    const JoinPair& pair = triples.pairs[i];
    AVM_CHECK(pair.dir_ab || pair.dir_ba)
        << "pair " << i << " has no join direction";
    for (const MChunkRef& ref : {pair.a, pair.b}) {
      auto loc = triples.location.find(ref);
      AVM_CHECK(loc != triples.location.end())
          << "pair " << i << " operand " << RefTag(ref) << " has no location";
      AVM_CHECK(IsWorkerOrCoordinator(loc->second, num_workers))
          << "operand " << RefTag(ref) << " located at unknown node "
          << loc->second;
      if (IsDeltaSide(ref.side)) {
        AVM_CHECK_EQ(loc->second, kCoordinatorNode)
            << "delta chunk " << RefTag(ref)
            << " must start at the coordinator";
      }
      AVM_CHECK(triples.bytes.count(ref) != 0)
          << "pair " << i << " operand " << RefTag(ref)
          << " has no registered size";
    }
    // The cached target union must cover exactly the directional lists.
    const std::vector<ChunkId>& all = pair.AllViewTargets();
    AVM_CHECK(std::is_sorted(all.begin(), all.end()))
        << "pair " << i << " target union is unsorted";
    const std::set<ChunkId> expected(all.begin(), all.end());
    std::set<ChunkId> direct(pair.view_targets_ab.begin(),
                             pair.view_targets_ab.end());
    direct.insert(pair.view_targets_ba.begin(), pair.view_targets_ba.end());
    AVM_CHECK(expected == direct)
        << "pair " << i
        << " cached view-target union disagrees with its directions";
    AVM_CHECK_EQ(expected.size(), all.size())
        << "pair " << i << " target union has duplicates";
  }
  for (const auto& [v, node] : triples.view_location) {
    AVM_CHECK(IsWorker(node, num_workers))
        << "view chunk " << v << " located at unknown node " << node;
    AVM_CHECK(triples.view_bytes.count(v) != 0)
        << "existing view chunk " << v << " has no registered size";
  }
}

void ValidateMaintenancePlan(const MaintenancePlan& plan,
                             const TripleSet& triples, int num_workers,
                             const CostModel* cost) {
  // z variables: every pair joined exactly once, on a worker.
  std::vector<uint32_t> joined(triples.pairs.size(), 0);
  for (const auto& join : plan.joins) {
    AVM_CHECK_LT(join.pair_index, triples.pairs.size())
        << "join references a pair outside the triple set";
    AVM_CHECK(IsWorker(join.node, num_workers))
        << "join of pair " << join.pair_index << " assigned to unknown node "
        << join.node;
    ++joined[join.pair_index];
  }
  for (size_t i = 0; i < joined.size(); ++i) {
    AVM_CHECK_EQ(joined[i], 1u)
        << "pair " << i << " must be joined exactly once";
  }

  // x variables: replay the transfers from the initial locations S. Every
  // shipped chunk must be known, every source must already hold a copy.
  std::unordered_map<MChunkRef, std::set<NodeId>, MChunkRefHash> replicas;
  replicas.reserve(triples.location.size());
  for (const auto& [ref, node] : triples.location) replicas[ref].insert(node);
  for (const auto& t : plan.transfers) {
    auto it = replicas.find(t.chunk);
    AVM_CHECK(it != replicas.end())
        << "transfer of unknown chunk " << RefTag(t.chunk);
    AVM_CHECK(IsWorkerOrCoordinator(t.from, num_workers))
        << "transfer of " << RefTag(t.chunk) << " from unknown node "
        << t.from;
    AVM_CHECK(IsWorker(t.to, num_workers))
        << "transfer of " << RefTag(t.chunk) << " to unknown node " << t.to;
    AVM_CHECK(it->second.count(t.from) != 0)
        << "transfer ships " << RefTag(t.chunk) << " from node " << t.from
        << ", which holds no copy at that point in the plan";
    AVM_CHECK_NE(t.from, t.to)
        << "self-transfer of " << RefTag(t.chunk) << " at node " << t.to;
    it->second.insert(t.to);
  }

  // Co-location: after the planned transfers, both operands of every join
  // are present at its node — the executor never improvises.
  for (const auto& join : plan.joins) {
    const JoinPair& pair = triples.pairs[join.pair_index];
    for (const MChunkRef& ref : {pair.a, pair.b}) {
      auto it = replicas.find(ref);
      AVM_CHECK(it != replicas.end() && it->second.count(join.node) != 0)
          << "plan does not co-locate operand " << RefTag(ref)
          << " of pair " << join.pair_index << " at join node " << join.node;
    }
  }

  // y_v variables: view ownership is a partition of the affected view
  // chunks — every affected chunk has exactly one home (map keys are
  // unique), and no home is assigned to an unaffected chunk.
  std::set<ChunkId> affected;
  for (const JoinPair& pair : triples.pairs) {
    const auto& targets = pair.AllViewTargets();
    affected.insert(targets.begin(), targets.end());
  }
  for (ChunkId v : affected) {
    auto it = plan.view_home.find(v);
    AVM_CHECK(it != plan.view_home.end())
        << "affected view chunk " << v << " has no planned home";
    AVM_CHECK(IsWorker(it->second, num_workers))
        << "view chunk " << v << " assigned to unknown node " << it->second;
  }
  AVM_CHECK_EQ(plan.view_home.size(), affected.size())
      << "plan assigns homes to view chunks outside the affected set";

  // y variables for array chunks: known chunks, worker targets, at most one
  // reassignment per chunk (each delta chunk ends up with exactly one home).
  std::unordered_set<MChunkRef, MChunkRefHash> moved;
  for (const auto& move : plan.array_moves) {
    AVM_CHECK(triples.location.count(move.chunk) != 0)
        << "array move of unknown chunk " << RefTag(move.chunk);
    AVM_CHECK(IsWorker(move.node, num_workers))
        << "array move of " << RefTag(move.chunk) << " to unknown node "
        << move.node;
    AVM_CHECK(moved.insert(move.chunk).second)
        << "chunk " << RefTag(move.chunk) << " reassigned more than once";
  }

  // Makespan accounting: the analytical objective of the plan must be
  // finite and non-negative on every node, in both resources.
  if (cost != nullptr) {
    auto breakdown =
        EvaluateCurrentBatchObjective(plan, triples, num_workers, *cost);
    AVM_CHECK(breakdown.ok())
        << "objective evaluation failed: " << breakdown.status().ToString();
    for (const std::vector<double>* series :
         {&breakdown->ntwk, &breakdown->cpu}) {
      for (double seconds : *series) {
        AVM_CHECK(std::isfinite(seconds) && seconds >= 0.0)
            << "negative or non-finite makespan charge " << seconds;
      }
    }
    AVM_CHECK_GE(breakdown->Makespan(), 0.0);
  }
}

void ValidateCatalogStoreConsistency(const Catalog& catalog,
                                     const Cluster& cluster,
                                     const std::vector<ArrayId>& arrays) {
  const int num_workers = cluster.num_workers();
  for (ArrayId array : arrays) {
    const ChunkGrid& grid = catalog.GridOf(array);
    for (ChunkId id : catalog.ChunkIdsOf(array)) {
      auto node = catalog.NodeOf(array, id);
      AVM_CHECK(node.ok()) << "registered chunk " << id << " of array "
                           << array << " has no primary node";
      AVM_CHECK(IsWorker(node.value(), num_workers))
          << "chunk " << id << " of array " << array
          << " registered at unknown node " << node.value();
      const ChunkHandle chunk =
          cluster.store(node.value()).GetHandle(array, id);
      AVM_CHECK(chunk != nullptr)
          << "catalog places chunk " << id << " of array " << array
          << " on node " << node.value() << " but the store lacks it";
      AVM_CHECK_EQ(catalog.ChunkBytes(array, id), chunk->SizeBytes())
          << "registered size of chunk " << id << " of array " << array
          << " drifted from the stored bytes";
      chunk->CheckInvariants(&grid, id);
    }
  }
  // No store may hold a copy of these arrays the catalog does not place
  // there: maintenance must have dropped its scratch replicas.
  auto audit_store = [&](NodeId node) {
    cluster.store(node).ForEach(
        [&](ArrayId array, ChunkId id, const Chunk&) {
          if (std::find(arrays.begin(), arrays.end(), array) == arrays.end()) {
            return;
          }
          auto primary = catalog.NodeOf(array, id);
          AVM_CHECK(primary.ok() && primary.value() == node)
              << "node " << node << " holds an unregistered replica of chunk "
              << id << " of array " << array;
        });
  };
  audit_store(kCoordinatorNode);
  for (NodeId n = 0; n < num_workers; ++n) audit_store(n);
}

}  // namespace avm
