#include "maintenance/objective.h"

#include <algorithm>

namespace avm {

double ObjectiveBreakdown::Makespan() const {
  // Workers only: the trailing coordinator slot is informational.
  double makespan = 0.0;
  for (size_t i = 0; i + 1 < ntwk.size(); ++i) {
    makespan = std::max(makespan, std::max(ntwk[i], cpu[i]));
  }
  return makespan;
}

Result<ObjectiveBreakdown> EvaluateCurrentBatchObjective(
    const MaintenancePlan& plan, const TripleSet& triples, int num_workers,
    const CostModel& cost, bool include_merge_term) {
  if (num_workers < 1) {
    return Status::InvalidArgument("need at least one worker");
  }
  ObjectiveBreakdown breakdown;
  const size_t slots = static_cast<size_t>(num_workers) + 1;
  breakdown.ntwk.assign(slots, 0.0);
  breakdown.cpu.assign(slots, 0.0);
  breakdown.disk.assign(slots, 0.0);
  auto slot = [&](NodeId node) -> size_t {
    return node == kCoordinatorNode ? slots - 1 : static_cast<size_t>(node);
  };
  // T_disk: each spilled chunk the plan touches pays its reload once, at
  // the node holding the spilled bytes, folded into that node's ntwk lane
  // (and mirrored in `disk`). Matches the greedy planner's first-touch
  // charging rule, which is order-independent by the same construction.
  auto charge_disk = [&](NodeId holder, uint64_t bytes) {
    const double seconds = cost.DiskSeconds(bytes);
    breakdown.ntwk[slot(holder)] += seconds;
    breakdown.disk[slot(holder)] += seconds;
  };
  for (const MChunkRef& ref : triples.spilled) {
    charge_disk(triples.location.at(ref), triples.bytes.at(ref));
  }

  for (const auto& t : plan.transfers) {
    auto it = triples.bytes.find(t.chunk);
    if (it == triples.bytes.end()) {
      return Status::InvalidArgument(
          "plan transfers a chunk absent from the triple set");
    }
    breakdown.ntwk[slot(t.from)] += cost.TransferSeconds(it->second);
  }

  std::vector<NodeId> join_node(triples.pairs.size(), 0);
  for (const auto& join : plan.joins) {
    if (join.pair_index >= triples.pairs.size()) {
      return Status::InvalidArgument("join references an unknown pair");
    }
    join_node[join.pair_index] = join.node;
    breakdown.cpu[slot(join.node)] +=
        cost.JoinSeconds(triples.pairs[join.pair_index].bytes);
  }

  if (include_merge_term) {
    for (size_t i = 0; i < triples.pairs.size(); ++i) {
      for (ChunkId v : triples.pairs[i].AllViewTargets()) {
        auto home = plan.view_home.find(v);
        if (home == plan.view_home.end()) continue;
        if (home->second != join_node[i]) {
          breakdown.ntwk[slot(join_node[i])] +=
              cost.TransferSeconds(triples.pairs[i].bytes);
        }
      }
    }
    // Relocations of existing view chunks.
    for (const auto& [v, home] : plan.view_home) {
      auto current = triples.view_location.find(v);
      if (current != triples.view_location.end() &&
          current->second != home) {
        breakdown.ntwk[slot(current->second)] +=
            cost.TransferSeconds(triples.view_bytes.at(v));
      }
    }
  }
  // Spilled existing view chunks: merging differential results in (or
  // moving the chunk) faults it in at its current home.
  for (const ChunkId v : triples.view_spilled) {
    auto current = triples.view_location.find(v);
    if (current == triples.view_location.end()) continue;
    charge_disk(current->second, triples.view_bytes.at(v));
  }
  return breakdown;
}

}  // namespace avm
