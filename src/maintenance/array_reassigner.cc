#include "maintenance/array_reassigner.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "telemetry/metrics.h"

namespace avm {

namespace {

/// Key of an array chunk across batches: (which base array, chunk id).
using ChunkKey = std::pair<bool, ChunkId>;  // (right_array, id)
/// Score key: (array chunk, view chunk).
using ScoreKey = std::pair<ChunkKey, ChunkId>;

}  // namespace

Status ReassignArrayChunks(
    const MaterializedView& view, const TripleSet& triples,
    const BatchHistory& history, int num_workers,
    const PlannerOptions& options, const CostModel& cost,
    const std::unordered_map<MChunkRef, std::set<NodeId>, MChunkRefHash>&
        replicas,
    MaintenancePlan* plan) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");

  // Accumulate scores over the current batch (weight 1) and the window.
  std::map<ScoreKey, double> score;
  double weighted_pair_bytes = 0.0;
  const HistoryBatch current = MakeHistoryBatch(triples);
  double weight = 1.0;
  auto fold = [&](const HistoryBatch& batch, double w) {
    for (const auto& e : batch.entries) {
      score[{{e.right_array, e.array_chunk}, e.view_chunk}] +=
          w * static_cast<double>(e.bytes);
    }
    weighted_pair_bytes += w * static_cast<double>(batch.total_pair_bytes);
  };
  fold(current, weight);
  for (const auto& batch : history.batches()) {
    weight *= options.history_decay;
    fold(batch, weight);
  }

  // Per-node CPU budget: the weighted average join load per node.
  std::vector<double> cpu_thr(
      static_cast<size_t>(num_workers),
      options.cpu_threshold_slack * weighted_pair_bytes /
          static_cast<double>(num_workers));

  const Catalog* catalog = view.left_base().catalog();
  const ArrayId left_id = view.left_base().id();
  const ArrayId right_id = view.right_base().id();
  const ArrayId view_id = view.array().id();

  // Disk awareness: boost every score of a chunk that is spilled at its
  // current location by 1 + T_disk/T_cpu, so it sorts earlier and claims
  // budget first — moving it to a node with a fresh resident replica
  // retires its reload charge. Identity when t_disk_per_byte is 0.
  const double spill_boost =
      cost.t_cpu_per_byte > 0.0
          ? 1.0 + cost.t_disk_per_byte / cost.t_cpu_per_byte
          : 1.0;
  if (spill_boost != 1.0 && !triples.spilled.empty()) {
    for (auto& [key, s] : score) {
      const ChunkKey& a = key.first;
      const bool has_base =
          catalog->HasChunk(a.first ? right_id : left_id, a.second);
      const MChunkRef ref{
          has_base ? (a.first ? ChunkSide::kRightBase : ChunkSide::kLeftBase)
                   : (a.first ? ChunkSide::kRightDelta
                              : ChunkSide::kLeftDelta),
          a.second};
      if (triples.spilled.count(ref) > 0) s *= spill_boost;
    }
  }

  // Descending score, deterministic tie-break on the key.
  std::vector<std::pair<ScoreKey, double>> ordered(score.begin(), score.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& x, const auto& y) {
                     return x.second > y.second;
                   });

  // Resolves y_v: the home chosen by stage 2, else the current location.
  auto home_of_view_chunk = [&](ChunkId v) -> Result<NodeId> {
    auto it = plan->view_home.find(v);
    if (it != plan->view_home.end()) return it->second;
    return catalog->NodeOf(view_id, v);
  };

  // The maintenance-time refs a chunk key may have this batch.
  auto base_ref_of = [](const ChunkKey& key) {
    return MChunkRef{key.first ? ChunkSide::kRightBase : ChunkSide::kLeftBase,
                     key.second};
  };
  auto delta_ref_of = [](const ChunkKey& key) {
    return MChunkRef{
        key.first ? ChunkSide::kRightDelta : ChunkSide::kLeftDelta,
        key.second};
  };

  std::set<ChunkKey> done;
  // Best-scoring view chunk per still-unassigned delta chunk, for the
  // fallback rule.
  std::map<ChunkKey, ChunkId> best_view_of;

  for (const auto& [key, s] : ordered) {
    const ChunkKey& a = key.first;
    const ChunkId v = key.second;
    if (done.count(a) > 0) continue;
    if (best_view_of.count(a) == 0) best_view_of[a] = v;

    auto home = home_of_view_chunk(v);
    if (!home.ok()) continue;  // view chunk no longer exists
    const NodeId j = home.value();

    // The move is free only where maintenance replicated the chunk. For a
    // chunk with a base part this batch, the base copy must be at j; a
    // delta-only (new) chunk needs its delta replica at j.
    const ArrayId base_array = a.first ? right_id : left_id;
    const bool has_base = catalog->HasChunk(base_array, a.second);
    const MChunkRef ref = has_base ? base_ref_of(a) : delta_ref_of(a);
    auto rep = replicas.find(ref);
    if (rep == replicas.end() || rep->second.count(j) == 0) continue;

    uint64_t bytes = 0;
    auto it = triples.bytes.find(ref);
    if (it != triples.bytes.end()) {
      bytes = it->second;
    } else if (has_base) {
      bytes = catalog->ChunkBytes(base_array, a.second);
    }
    if (cpu_thr[static_cast<size_t>(j)] < static_cast<double>(bytes)) {
      continue;
    }
    cpu_thr[static_cast<size_t>(j)] -= static_cast<double>(bytes);
    plan->array_moves.push_back({ref, j});
    done.insert(a);
  }

  // Fallback for delta chunks that remained unassigned: the home of their
  // highest-score view chunk.
  for (const auto& [ref, node] : triples.location) {
    (void)node;
    if (!IsDeltaSide(ref.side)) continue;
    const bool right = ref.side == ChunkSide::kRightDelta;
    const ChunkKey a{right, ref.id};
    if (done.count(a) > 0) continue;
    const ArrayId base_array = right ? right_id : left_id;
    if (catalog->HasChunk(base_array, ref.id)) {
      continue;  // merges into the existing base chunk; no new home needed
    }
    auto it = best_view_of.find(a);
    if (it == best_view_of.end()) continue;  // no scored view chunk at all
    auto home = home_of_view_chunk(it->second);
    if (!home.ok()) continue;
    plan->array_moves.push_back({ref, home.value()});
    done.insert(a);
  }
  // Algorithm 3 walks the scored (array chunk, view chunk) list once;
  // accepts are the storage moves actually emitted (both passes).
  CountAdd(CounterId::kPlanStage3Candidates, ordered.size());
  CountAdd(CounterId::kPlanStage3Accepts, done.size());
  return Status::OK();
}

}  // namespace avm
