#pragma once

#include <optional>

#include "cluster/distributed_array.h"
#include "common/result.h"
#include "maintenance/types.h"
#include "shape/chunk_footprint.h"
#include "view/materialized_view.h"

namespace avm {

/// Generates the update triples U_0 for one batch — the coordinator's
/// metadata-only preprocessing step. For every delta chunk it enumerates,
/// from the catalog alone:
///
///  - the base/delta chunks its cells may join under the view's shape σ
///    (new view cells: directions with the delta as the group-by operand),
///  - the base chunks whose *existing* view cells gain contributions from
///    the delta (directions enumerated under the reflected shape σ⁻¹ —
///    required for asymmetric shapes such as PTF-5's time look-back),
///  - and the affected view chunks (the v of each (p, q, v) triple).
///
/// `left_delta`/`right_delta` are delta arrays whose chunks sit at the
/// coordinator; `right_delta` must be null for a self-join view. Either may
/// be null ("no updates on that side"). Results are deterministic: pairs are
/// sorted by (a, b).
///
/// `cache`, if given, holds the view shape's chunk footprints across
/// batches — computing them is O(|σ| 2^d) and the view's shape never
/// changes, so ViewMaintainer reuses one cache for its lifetime.
struct TripleGenCache {
  std::optional<ChunkFootprint> footprint;
  std::optional<ChunkFootprint> reflected;
  bool initialized = false;
};

Result<TripleSet> GenerateTriples(const MaterializedView& view,
                                  const DistributedArray* left_delta,
                                  const DistributedArray* right_delta,
                                  TripleGenCache* cache = nullptr);

}  // namespace avm

