#pragma once

#include <cstdint>

#include "array/sparse_array.h"
#include "common/result.h"
#include "view/materialized_view.h"

namespace avm {

/// Support for batches that *overwrite* existing cells (re-observations —
/// the paper's own Figure 1(b) overwrites cell [4,4]). An overwritten cell
/// changes no cell-existence facts, so COUNT aggregates are untouched; for
/// attribute-dependent aggregates (SUM/AVG) every view cell whose shape
/// covers the modified cell must retract the old value and fold in the new
/// one:
///     ∆V(x) += f(y_new) - f(y_old)   for every modified y ∈ σ[x].
/// Since aggregates only consume the *right* operand's attributes, the
/// correction is purely a right-operand pass — modified cells never change
/// their own group's membership.
struct ModificationStats {
  uint64_t mod_cells = 0;
  uint64_t correction_joins = 0;
  uint64_t fragments_merged = 0;
};

/// Splits a raw delta into pure inserts (coordinates absent from `base`)
/// and modifications (coordinates already present). `mod_old` receives the
/// *current* base values of the modified coordinates, `mod_new` the batch's
/// values.
Result<ModificationStats> SplitInsertsAndModifications(
    const DistributedArray& base, const SparseArray& raw_delta,
    SparseArray* inserts, SparseArray* mod_old, SparseArray* mod_new);

/// Applies the signed value-correction pass for modifications of the view's
/// right operand (for a self-join view, of the single base array), then
/// upserts the new values into the base chunks. Must run *after* the
/// insert-side maintenance (so newly inserted cells are also corrected).
///
/// Correction kernels run at each affected left chunk's node; the modified
/// chunks ship there from the coordinator (charged), fragments ship to the
/// view chunks' homes (charged). COUNT-only views skip the kernels entirely
/// — the correction is identically zero — and only upsert the values.
/// Fails with FailedPrecondition if a non-COUNT-only view cannot retract
/// (MIN/MAX).
Result<ModificationStats> ApplyRightSideModifications(
    MaterializedView* view, const SparseArray& mod_old,
    const SparseArray& mod_new);

/// Modifications of a two-array view's *left* operand never reach the view
/// (left attributes are group keys' payload, not aggregated), so they only
/// upsert the new values into the left base chunks.
Status ApplyLeftSideModifications(MaterializedView* view,
                                  const SparseArray& mod_new);

}  // namespace avm

