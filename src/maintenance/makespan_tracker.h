#pragma once

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "cluster/placement.h"

namespace avm {

class Cluster;

/// Incremental bookkeeping of the planners' objective
///     max_k max(ntwk[k], cpu[k])
/// over the *worker* nodes — the paper's Eq. (1) ranges k over the cluster
/// servers; the coordinator streams delta chunks outside the measured
/// makespan, so its charges are tracked (AddNetwork/ntwk accept
/// kCoordinatorNode) but never enter the objective. Candidate moves are
/// evaluated as small per-node deltas; a multiset of per-node scores makes
/// each evaluation O(|affected| log N) — the binary-heap trick behind the
/// paper's O(|U0| N log N) complexity claim for Algorithm 1.
///
/// Threading: deliberately lock-free *by exclusion* — this class lives on
/// the planners' single-threaded control path and holds no mutex, so it sits
/// outside the lock hierarchy (DESIGN.md "Lock hierarchy"). Concurrent
/// accumulation during parallel execution goes through ConcurrentClockBank
/// below instead.
class MakespanTracker {
 public:
  explicit MakespanTracker(int num_workers);

  int num_workers() const { return num_workers_; }

  double ntwk(NodeId node) const { return ntwk_[Index(node)]; }
  double cpu(NodeId node) const { return cpu_[Index(node)]; }

  /// A candidate change: add `dntwk`/`dcpu` seconds to one node.
  struct Delta {
    NodeId node = 0;
    double dntwk = 0.0;
    double dcpu = 0.0;
  };

  /// The objective value if `deltas` were applied (duplicated nodes in the
  /// list are aggregated). Does not modify state.
  double EvalWithDeltas(const std::vector<Delta>& deltas) const;

  /// Applies `deltas` permanently.
  void Commit(const std::vector<Delta>& deltas);

  /// Convenience single-node adders.
  void AddNetwork(NodeId node, double seconds);
  void AddCpu(NodeId node, double seconds);

  /// Current objective value.
  double CurrentMax() const;

 private:
  size_t Index(NodeId node) const;
  double ScoreOf(size_t index) const;

  int num_workers_;
  std::vector<double> ntwk_;  // workers + coordinator (last slot)
  std::vector<double> cpu_;
  std::multiset<double> scores_;  // per-node max(ntwk, cpu)
};

/// Thread-safe per-node clock accumulators for the parallel maintenance
/// executor: while per-node work runs concurrently on host threads, each
/// task adds its simulated network/CPU seconds here (lock-free atomic adds)
/// instead of touching the Cluster's clocks directly. After the barrier the
/// single-threaded control path commits the bank to the cluster in ascending
/// node order, so the simulated clocks — and therefore every reported
/// makespan — are bit-identical to serial execution regardless of how the
/// host scheduled the tasks.
///
/// Note on determinism: atomic accumulation alone would not be enough if two
/// threads added to the same slot (floating-point addition is not
/// associative). The executor charges each node's slot from exactly one task
/// (per-node work is the unit of parallelism), so per-slot addition order is
/// fixed; the atomics make the cross-thread publication race-free for TSan
/// and for any future work-stealing scheduler.
///
/// Because the bank is all atomics it takes no lock and has no LockRank:
/// tasks may charge it while holding any mutex without affecting the lock
/// hierarchy (DESIGN.md "Lock hierarchy").
class ConcurrentClockBank {
 public:
  /// Slots for `num_workers` workers plus the coordinator.
  explicit ConcurrentClockBank(int num_workers);

  int num_workers() const { return num_workers_; }

  /// Adds simulated seconds to a node's clock, plus the byte total behind
  /// the charge (kept exactly, for telemetry cross-checks). Safe to call
  /// concurrently (distinct or equal nodes).
  void AddNetwork(NodeId node, double seconds, uint64_t bytes = 0);
  void AddCpu(NodeId node, double seconds, uint64_t bytes = 0);

  /// Accumulated values (not synchronized with concurrent writers; read
  /// after the parallel phase joined).
  double ntwk(NodeId node) const;
  double cpu(NodeId node) const;
  uint64_t ntwk_bytes(NodeId node) const;
  uint64_t cpu_bytes(NodeId node) const;

  /// Adds every slot's accumulated seconds onto the cluster's simulated
  /// clocks, coordinator last, workers in ascending id order. Call once per
  /// parallel phase, after it completed.
  void CommitTo(Cluster* cluster) const;

 private:
  struct Slot {
    std::atomic<double> ntwk{0.0};
    std::atomic<double> cpu{0.0};
    std::atomic<uint64_t> ntwk_bytes{0};
    std::atomic<uint64_t> cpu_bytes{0};
  };

  size_t Index(NodeId node) const;

  int num_workers_;
  std::vector<Slot> slots_;  // workers + coordinator (last slot)
};

}  // namespace avm

