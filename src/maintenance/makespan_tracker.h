#ifndef AVM_MAINTENANCE_MAKESPAN_TRACKER_H_
#define AVM_MAINTENANCE_MAKESPAN_TRACKER_H_

#include <set>
#include <vector>

#include "cluster/placement.h"

namespace avm {

/// Incremental bookkeeping of the planners' objective
///     max_k max(ntwk[k], cpu[k])
/// over the *worker* nodes — the paper's Eq. (1) ranges k over the cluster
/// servers; the coordinator streams delta chunks outside the measured
/// makespan, so its charges are tracked (AddNetwork/ntwk accept
/// kCoordinatorNode) but never enter the objective. Candidate moves are
/// evaluated as small per-node deltas; a multiset of per-node scores makes
/// each evaluation O(|affected| log N) — the binary-heap trick behind the
/// paper's O(|U0| N log N) complexity claim for Algorithm 1.
class MakespanTracker {
 public:
  explicit MakespanTracker(int num_workers);

  int num_workers() const { return num_workers_; }

  double ntwk(NodeId node) const { return ntwk_[Index(node)]; }
  double cpu(NodeId node) const { return cpu_[Index(node)]; }

  /// A candidate change: add `dntwk`/`dcpu` seconds to one node.
  struct Delta {
    NodeId node = 0;
    double dntwk = 0.0;
    double dcpu = 0.0;
  };

  /// The objective value if `deltas` were applied (duplicated nodes in the
  /// list are aggregated). Does not modify state.
  double EvalWithDeltas(const std::vector<Delta>& deltas) const;

  /// Applies `deltas` permanently.
  void Commit(const std::vector<Delta>& deltas);

  /// Convenience single-node adders.
  void AddNetwork(NodeId node, double seconds);
  void AddCpu(NodeId node, double seconds);

  /// Current objective value.
  double CurrentMax() const;

 private:
  size_t Index(NodeId node) const;
  double ScoreOf(size_t index) const;

  int num_workers_;
  std::vector<double> ntwk_;  // workers + coordinator (last slot)
  std::vector<double> cpu_;
  std::multiset<double> scores_;  // per-node max(ntwk, cpu)
};

}  // namespace avm

#endif  // AVM_MAINTENANCE_MAKESPAN_TRACKER_H_
