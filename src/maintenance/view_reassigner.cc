#include "maintenance/view_reassigner.h"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "common/rng.h"
#include "telemetry/metrics.h"

namespace avm {

Status ReassignViewChunks(const TripleSet& triples, int num_workers,
                          const CostModel& cost, const PlannerOptions& options,
                          MakespanTracker* tracker, MaintenancePlan* plan) {
  if (tracker == nullptr || plan == nullptr) {
    return Status::InvalidArgument("null tracker or plan");
  }
  if (plan->joins.size() != triples.pairs.size()) {
    return Status::FailedPrecondition(
        "stage 1 must assign every pair before view reassignment");
  }

  // Join node of each pair, from the stage-1 z variables.
  std::vector<NodeId> join_node(triples.pairs.size(), 0);
  for (const auto& join : plan->joins) {
    join_node[join.pair_index] = join.node;
  }

  // Group the triples by view chunk: v -> contributing pair indices
  // (ordered map for deterministic iteration before shuffling).
  std::map<ChunkId, std::vector<size_t>> groups;
  for (size_t i = 0; i < triples.pairs.size(); ++i) {
    for (ChunkId v : triples.pairs[i].AllViewTargets()) {
      groups[v].push_back(i);
    }
  }

  std::vector<ChunkId> order;
  order.reserve(groups.size());
  for (const auto& [v, pairs] : groups) order.push_back(v);
  Rng rng(options.seed ^ 0x5eed2ull);
  rng.Shuffle(order);

  std::vector<MakespanTracker::Delta> deltas;
  for (ChunkId v : order) {
    const auto& pair_indices = groups.at(v);
    auto existing = triples.view_location.find(v);
    // Ties on the global makespan break toward less added communication,
    // then toward the chunk's current home (stability over churn).
    double best_cost = std::numeric_limits<double>::infinity();
    double best_added = std::numeric_limits<double>::infinity();
    NodeId best = 0;
    for (NodeId j2 = 0; j2 < num_workers; ++j2) {
      deltas.clear();
      double added = 0.0;
      for (size_t i : pair_indices) {
        const uint64_t bpq = triples.pairs[i].bytes;
        const NodeId j = join_node[i];
        if (j != j2) {
          const double seconds = cost.TransferSeconds(bpq);
          deltas.push_back({j, seconds, 0.0});
          added += seconds;
        }
        deltas.push_back({j2, 0.0, cost.JoinSeconds(bpq)});
      }
      if (options.charge_view_move && existing != triples.view_location.end() &&
          existing->second != j2) {
        const double seconds =
            cost.TransferSeconds(triples.view_bytes.at(v));
        deltas.push_back({existing->second, seconds, 0.0});
        added += seconds;
      }
      const double candidate = tracker->EvalWithDeltas(deltas);
      const bool is_home = existing != triples.view_location.end() &&
                           existing->second == j2;
      const bool best_is_home = existing != triples.view_location.end() &&
                                existing->second == best;
      if (candidate < best_cost - 1e-15 ||
          (candidate <= best_cost + 1e-15 &&
           (added < best_added - 1e-15 ||
            (added <= best_added + 1e-15 && is_home && !best_is_home)))) {
        best_cost = candidate;
        best_added = added;
        best = j2;
      }
    }
    // Commit the winner.
    deltas.clear();
    for (size_t i : pair_indices) {
      const uint64_t bpq = triples.pairs[i].bytes;
      const NodeId j = join_node[i];
      if (j != best) deltas.push_back({j, cost.TransferSeconds(bpq), 0.0});
      deltas.push_back({best, 0.0, cost.JoinSeconds(bpq)});
    }
    if (options.charge_view_move && existing != triples.view_location.end() &&
        existing->second != best) {
      deltas.push_back({existing->second,
                        cost.TransferSeconds(triples.view_bytes.at(v)), 0.0});
    }
    tracker->Commit(deltas);
    plan->view_home[v] = best;
  }
  // Algorithm 2 evaluates every worker as a home for every affected view
  // chunk and commits one home per chunk.
  CountAdd(CounterId::kPlanStage2Candidates,
           static_cast<uint64_t>(order.size()) *
               static_cast<uint64_t>(num_workers));
  CountAdd(CounterId::kPlanStage2Accepts, order.size());
  return Status::OK();
}

}  // namespace avm
