#pragma once

#include <cstdint>
#include <string>

#include "array/sparse_array.h"
#include "common/result.h"
#include "maintenance/executor.h"
#include "maintenance/history.h"
#include "maintenance/triple_gen.h"
#include "maintenance/types.h"
#include "serve/epoch_manager.h"
#include "view/materialized_view.h"

namespace avm {

/// The three maintenance strategies compared throughout the paper's
/// evaluation (Section 6.1, "Methodology").
enum class MaintenanceMethod {
  /// Section 4.1: static placement, join at the stored chunk, no
  /// reassignment.
  kBaseline,
  /// Stage 1 only (Algorithm 1): optimized join plan, no reassignment.
  kDifferential,
  /// The full three-stage heuristic (Algorithms 1 + 2 + 3) with the
  /// historical batch window.
  kReassign,
};

std::string_view MaintenanceMethodName(MaintenanceMethod method);

/// Everything measured about one maintained batch — the quantities behind
/// Figures 3, 5, 9 and 10.
struct MaintenanceReport {
  /// Wall-clock seconds of metadata preprocessing (triple generation); part
  /// of every method's optimization time in Figure 5.
  double triple_gen_seconds = 0.0;
  /// Wall-clock seconds of planning on top of triple generation (Algorithm
  /// 1 for differential; + Algorithms 2 and 3 for reassign; 0-ish for
  /// baseline).
  double planning_seconds = 0.0;
  /// Total optimization time (triple generation + planning).
  double optimization_seconds() const {
    return triple_gen_seconds + planning_seconds;
  }
  /// Simulated maintenance makespan of the batch: max over nodes of
  /// max(Δntwk, Δcpu) charged while executing the plan. Independent of the
  /// cluster's host thread count — parallel execution changes wall-clock
  /// only, never the simulated clocks.
  double maintenance_seconds = 0.0;
  /// Real wall-clock seconds spent executing the plan against the cluster
  /// (joins, transfers, merges). This is the quantity host parallelism
  /// (`Cluster` `num_threads` / the benches' --threads knob) improves.
  double execution_wall_seconds = 0.0;
  size_t num_pairs = 0;
  size_t num_triples = 0;
  size_t num_delta_chunks = 0;
  uint64_t delta_cells = 0;
  /// Cells of the batch that overwrote existing coordinates (handled by the
  /// signed value-correction pass, see maintenance/modifications.h).
  uint64_t modified_cells = 0;
  ExecutionStats exec;

  /// Simulated clock deltas over the whole batch window (ingest + execution
  /// + modification corrections), workers 0..N-1 then the coordinator.
  /// Always populated; the byte totals are exact.
  std::vector<NodeActivity> per_node;
  /// Network/CPU byte totals behind `per_node`, summed over all nodes.
  uint64_t bytes_transferred = 0;
  uint64_t bytes_joined = 0;
  /// Registry counter deltas scoped to this batch. Only populated while
  /// telemetry is enabled (`telemetry_collected`); the simulated-clock
  /// fields above do not depend on telemetry.
  bool telemetry_collected = false;
  uint64_t plan_candidates = 0;    // Algorithms 1-3 candidate evaluations
  uint64_t plan_accepts = 0;       // Algorithms 1-3 committed decisions
  uint64_t shape_cache_hits = 0;
  uint64_t shape_cache_misses = 0;
  /// Chunk representation conversions during this batch (counter deltas;
  /// telemetry-gated like the fields above).
  uint64_t chunks_densified = 0;
  uint64_t chunks_sparsified = 0;
  /// Physical buffer bytes resident across all cluster stores at batch end,
  /// split by chunk representation (also mirrored to the
  /// store.resident_{sparse,dense}_bytes gauges). Telemetry-gated.
  uint64_t resident_sparse_bytes = 0;
  uint64_t resident_dense_bytes = 0;
  /// Spill-file bytes held by chunks evicted out-of-core at batch end,
  /// across all cluster stores (mirrored to store.spilled_bytes). Zero
  /// unless a BufferManager is attached. Telemetry-gated.
  uint64_t spilled_bytes = 0;
  /// Epoch id published at this batch's commit; 0 when no EpochManager is
  /// attached (batch-only mode, no concurrent serving).
  uint64_t published_epoch = 0;
};

/// Keeps one materialized view consistent under cyclic batch updates using a
/// fixed maintenance method. Owns the historical batch window that
/// Algorithm 3 consumes. Typical use:
///
///   ViewMaintainer maintainer(&view, MaintenanceMethod::kReassign, opts);
///   for (const SparseArray& batch : nightly_batches) {
///     AVM_ASSIGN_OR_RETURN(auto report, maintainer.ApplyBatch(batch));
///   }
class ViewMaintainer {
 public:
  ViewMaintainer(MaterializedView* view, MaintenanceMethod method,
                 PlannerOptions options = PlannerOptions());

  MaintenanceMethod method() const { return method_; }
  const PlannerOptions& options() const { return options_; }
  const BatchHistory& history() const { return history_; }

  /// Integrates one batch of inserts into the base array(s) and brings the
  /// view up to date. `left_delta_cells` updates the view's left (or only)
  /// base array; `right_delta_cells`, if given, the right array of a
  /// two-array view.
  Result<MaintenanceReport> ApplyBatch(
      const SparseArray& left_delta_cells,
      const SparseArray* right_delta_cells = nullptr);

  /// Turns batch commits into epoch publishes: after every successful
  /// ApplyBatch the maintainer pins the view's chunks and swaps a fresh
  /// epoch into `manager`, so snapshot readers flip from the pre-batch view
  /// version to the post-batch one atomically. Pass nullptr to detach.
  /// The manager must outlive the maintainer (or the detach). Callers that
  /// publish several views as one set (AqlSession) publish through the
  /// manager themselves instead of attaching per-view maintainers.
  void AttachEpochManager(EpochManager* manager) { epoch_manager_ = manager; }
  EpochManager* epoch_manager() const { return epoch_manager_; }

 private:
  MaterializedView* view_;
  MaintenanceMethod method_;
  PlannerOptions options_;
  BatchHistory history_;
  TripleGenCache footprint_cache_;
  uint64_t batch_counter_ = 0;
  EpochManager* epoch_manager_ = nullptr;
};

}  // namespace avm

