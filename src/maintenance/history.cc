#include "maintenance/history.h"

namespace avm {

namespace {
bool IsRightArray(ChunkSide side) {
  return side == ChunkSide::kRightBase || side == ChunkSide::kRightDelta;
}
}  // namespace

HistoryBatch MakeHistoryBatch(const TripleSet& triples) {
  HistoryBatch batch;
  for (const auto& pair : triples.pairs) {
    const auto targets = pair.AllViewTargets();
    for (ChunkId v : targets) {
      batch.entries.push_back({pair.a.id, IsRightArray(pair.a.side), v,
                               triples.bytes.at(pair.a)});
      if (!(pair.b == pair.a)) {
        batch.entries.push_back({pair.b.id, IsRightArray(pair.b.side), v,
                                 triples.bytes.at(pair.b)});
      }
      batch.total_pair_bytes += pair.bytes;
    }
  }
  return batch;
}

void BatchHistory::Push(HistoryBatch batch) {
  batches_.push_front(std::move(batch));
  while (batches_.size() > static_cast<size_t>(window_)) {
    batches_.pop_back();
  }
}

}  // namespace avm
