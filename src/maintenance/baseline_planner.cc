#include "maintenance/baseline_planner.h"

#include <set>
#include <unordered_map>
#include <utility>

namespace avm {

namespace {

ArrayId BaseArrayIdOf(const MaterializedView& view, ChunkSide side) {
  switch (side) {
    case ChunkSide::kLeftBase:
    case ChunkSide::kLeftDelta:
      return view.left_base().id();
    case ChunkSide::kRightBase:
    case ChunkSide::kRightDelta:
      return view.right_base().id();
  }
  return view.left_base().id();  // unreachable
}

}  // namespace

Result<MaintenancePlan> PlanBaseline(const MaterializedView& view,
                                     const TripleSet& triples,
                                     int num_workers) {
  MaintenancePlan plan;
  const Catalog* catalog = view.left_base().catalog();

  // Stage A: assign every delta chunk by the static placement strategy of
  // its target array and ship it from the coordinator.
  std::unordered_map<MChunkRef, NodeId, MChunkRefHash> home;
  for (const auto& [ref, node] : triples.location) {
    if (!IsDeltaSide(ref.side)) {
      home[ref] = node;
      continue;
    }
    const NodeId dest = catalog->PlaceByStrategy(
        BaseArrayIdOf(view, ref.side), ref.id, num_workers);
    home[ref] = dest;
    plan.transfers.push_back({ref, node, dest});
    plan.array_moves.push_back({ref, dest});
  }

  // Stage B: each pair joins where its stored (non-delta) operand lives.
  std::set<std::pair<MChunkRef, NodeId>> shipped;
  plan.joins.reserve(triples.pairs.size());
  for (size_t i = 0; i < triples.pairs.size(); ++i) {
    const JoinPair& pair = triples.pairs[i];
    NodeId join_node;
    if (!IsDeltaSide(pair.a.side)) {
      join_node = home.at(pair.a);
    } else if (!IsDeltaSide(pair.b.side)) {
      join_node = home.at(pair.b);
    } else {
      join_node = home.at(pair.b);  // delta-delta: second operand's new node
    }
    for (const MChunkRef& ref : {pair.a, pair.b}) {
      const NodeId at = home.at(ref);
      if (at != join_node && shipped.insert({ref, join_node}).second) {
        plan.transfers.push_back({ref, at, join_node});
      }
    }
    plan.joins.push_back({i, join_node});
  }

  // Stage C: results merge at the view chunk's current node; new view
  // chunks are assigned by the view's placement strategy.
  for (const auto& pair : triples.pairs) {
    for (ChunkId v : pair.AllViewTargets()) {
      if (plan.view_home.count(v) > 0) continue;
      auto it = triples.view_location.find(v);
      if (it != triples.view_location.end()) {
        plan.view_home[v] = it->second;
      } else {
        plan.view_home[v] =
            catalog->PlaceByStrategy(view.array().id(), v, num_workers);
      }
    }
  }
  return plan;
}

}  // namespace avm
