#include "maintenance/types.h"

#include <algorithm>

namespace avm {

const std::vector<ChunkId>& JoinPair::AllViewTargets() const {
  if (!all_view_targets.empty() ||
      (view_targets_ab.empty() && view_targets_ba.empty())) {
    return all_view_targets;
  }
  // Fill the cache lazily (cheap: the lists are tiny and sorted).
  auto* self = const_cast<JoinPair*>(this);
  self->all_view_targets = view_targets_ab;
  self->all_view_targets.insert(self->all_view_targets.end(),
                                view_targets_ba.begin(),
                                view_targets_ba.end());
  std::sort(self->all_view_targets.begin(), self->all_view_targets.end());
  self->all_view_targets.erase(std::unique(self->all_view_targets.begin(),
                                           self->all_view_targets.end()),
                               self->all_view_targets.end());
  return all_view_targets;
}

}  // namespace avm
