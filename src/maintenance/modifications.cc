#include "maintenance/modifications.h"

#include <map>
#include <set>
#include <vector>

#include "join/compiled_shape.h"
#include "join/fragment_merge.h"
#include "join/join_kernel.h"

namespace avm {

namespace {

/// True when every aggregate is COUNT, i.e. value changes cannot affect the
/// view.
bool CountOnly(const AggregateLayout& layout) {
  for (const auto& spec : layout.specs()) {
    if (spec.fn != AggregateFunction::kCount) return false;
  }
  return true;
}

/// Writes the new values of every modified cell into its base chunk's
/// primary copy.
Status UpsertModifiedValues(DistributedArray* base,
                            const SparseArray& mod_new) {
  Catalog* catalog = base->catalog();
  Cluster* cluster = base->cluster();
  Status status = Status::OK();
  mod_new.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    if (!status.ok()) return;
    auto node = catalog->NodeOf(base->id(), id);
    if (!node.ok()) {
      status = Status::Internal("modified cell's base chunk disappeared");
      return;
    }
    ChunkStore& store = cluster->store(node.value());
    Chunk* target = store.GetMutable(base->id(), id);
    if (target == nullptr) {
      status = Status::Internal("base chunk missing from its primary store");
      return;
    }
    const ChunkHandle pin =
        store.GetHandle(base->id(), id);  // pin-while-mutating
    status = target->UpsertChunk(chunk);
    if (!status.ok()) return;
    target->MaybeAdaptRepresentation(base->grid(), id);
    catalog->SetChunkBytes(base->id(), id, target->SizeBytes());
  });
  return status;
}

}  // namespace

Result<ModificationStats> SplitInsertsAndModifications(
    const DistributedArray& base, const SparseArray& raw_delta,
    SparseArray* inserts, SparseArray* mod_old, SparseArray* mod_new) {
  if (inserts == nullptr || mod_old == nullptr || mod_new == nullptr) {
    return Status::InvalidArgument("null output array");
  }
  ModificationStats stats;
  const Catalog* catalog = base.catalog();
  const Cluster* cluster = base.cluster();
  const ChunkGrid& grid = base.grid();
  Status status = Status::OK();
  CellCoord coord;
  raw_delta.ForEachCell([&](std::span<const int64_t> c,
                            std::span<const double> values) {
    if (!status.ok()) return;
    coord.assign(c.begin(), c.end());
    const ChunkId id = grid.IdOfCell(coord);
    const double* existing = nullptr;
    // The handle outlives every use of `existing` below: the raw cell
    // pointer stays valid only while the chunk is pinned.
    ChunkHandle chunk;
    auto node = catalog->NodeOf(base.id(), id);
    if (node.ok()) {
      chunk = cluster->store(node.value()).GetHandle(base.id(), id);
      if (chunk != nullptr) {
        existing = chunk->GetCell(grid.InChunkOffset(coord));
      }
    }
    if (existing == nullptr) {
      status = inserts->Set(coord, values);
      return;
    }
    ++stats.mod_cells;
    status = mod_old->Set(coord, {existing, values.size()});
    if (status.ok()) status = mod_new->Set(coord, values);
  });
  if (!status.ok()) return status;
  return stats;
}

Result<ModificationStats> ApplyRightSideModifications(
    MaterializedView* view, const SparseArray& mod_old,
    const SparseArray& mod_new) {
  ModificationStats stats;
  stats.mod_cells = mod_new.NumCells();
  if (stats.mod_cells == 0) return stats;

  DistributedArray& right = view->right_base();
  DistributedArray& left = view->left_base();
  Cluster* cluster = right.cluster();
  Catalog* catalog = right.catalog();
  const AggregateLayout& layout = view->layout();
  const ViewDefinition& def = view->definition();

  if (!CountOnly(layout)) {
    if (!layout.SupportsRetraction()) {
      return Status::FailedPrecondition(
          "overwrites of existing cells require retractable aggregates "
          "(COUNT/SUM/AVG); this view uses MIN/MAX");
    }
    // Correction pass: every left chunk that can see a modified cell runs
    // the kernel against the old values (-1) and the new values (+1).
    const Shape reflected = def.shape.Reflected();
    const Box shape_box = reflected.BoundingBox();
    Box left_domain;
    const auto& ldims = left.schema().dims();
    left_domain.lo.resize(ldims.size());
    left_domain.hi.resize(ldims.size());
    for (size_t d = 0; d < ldims.size(); ++d) {
      left_domain.lo[d] = ldims[d].lo;
      left_domain.hi[d] = ldims[d].hi;
    }
    const ViewTarget target{&def.group_dims, &view->array().grid()};
    std::map<NodeId, std::map<ChunkId, Chunk>> fragments_by_node;
    std::set<std::pair<ChunkId, NodeId>> shipped;
    // One shape compilation serves the -1 and +1 kernel runs of every
    // (left chunk, modified chunk) pair below.
    AVM_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledShape> compiled,
                         CompiledShapeCache::Global().Get(
                             def.shape, def.mapping, right.grid()));

    Status status = Status::OK();
    mod_old.ForEachChunk([&](ChunkId m, const Chunk& old_chunk) {
      if (!status.ok()) return;
      const Chunk* new_chunk = mod_new.GetChunk(m);
      Box probe = right.grid().ChunkBoxOfId(m);
      for (size_t d = 0; d < probe.lo.size(); ++d) {
        probe.lo[d] += shape_box.lo[d];
        probe.hi[d] += shape_box.hi[d];
      }
      const Box preimage = def.mapping.PreimageBox(probe, left_domain);
      for (size_t d = 0; d < preimage.lo.size(); ++d) {
        if (preimage.lo[d] > preimage.hi[d]) return;
      }
      left.grid().ForEachChunkOverlapping(preimage, [&](ChunkId l) {
        if (!status.ok()) return;
        auto node = catalog->NodeOf(left.id(), l);
        if (!node.ok()) return;  // empty left chunk
        const ChunkHandle left_chunk =
            cluster->store(node.value()).GetHandle(left.id(), l);
        if (left_chunk == nullptr) {
          status = Status::Internal("left chunk missing from its store");
          return;
        }
        // The new values ship from the coordinator once per (chunk, node);
        // the old values are read from the resident base chunk.
        if (shipped.insert({m, node.value()}).second) {
          cluster->ChargeNetwork(kCoordinatorNode, new_chunk->SizeBytes());
        }
        cluster->ChargeJoin(node.value(), left_chunk->SizeBytes() +
                                              old_chunk.SizeBytes() +
                                              new_chunk->SizeBytes());
        const RightOperand old_op{&old_chunk, m, &right.grid()};
        const RightOperand new_op{new_chunk, m, &right.grid()};
        auto& fragments = fragments_by_node[node.value()];
        status = JoinAggregateChunkPair(*left_chunk, old_op, *compiled,
                                        layout, target,
                                        /*multiplicity=*/-1, &fragments);
        if (!status.ok()) return;
        status = JoinAggregateChunkPair(*left_chunk, new_op, *compiled,
                                        layout, target,
                                        /*multiplicity=*/1, &fragments);
        ++stats.correction_joins;
      });
    });
    AVM_RETURN_IF_ERROR(status);

    for (auto& [producer, fragments] : fragments_by_node) {
      for (auto& [v, fragment] : fragments) {
        auto home_result = catalog->NodeOf(view->array().id(), v);
        const NodeId home =
            home_result.ok()
                ? home_result.value()
                : catalog->PlaceByStrategy(view->array().id(), v,
                                           cluster->num_workers());
        if (producer != home) {
          cluster->ChargeNetwork(producer, fragment.SizeBytes());
        }
        AVM_RETURN_IF_ERROR(
            MergeStateFragment(&view->array(), v, fragment, layout, home));
        ++stats.fragments_merged;
      }
    }
  }

  AVM_RETURN_IF_ERROR(UpsertModifiedValues(&right, mod_new));
  return stats;
}

Status ApplyLeftSideModifications(MaterializedView* view,
                                  const SparseArray& mod_new) {
  if (view->definition().IsSelfJoin()) {
    return Status::InvalidArgument(
        "self-join modifications must go through "
        "ApplyRightSideModifications");
  }
  return UpsertModifiedValues(&view->left_base(), mod_new);
}

}  // namespace avm
