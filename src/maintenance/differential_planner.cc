#include "maintenance/differential_planner.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "telemetry/metrics.h"

namespace avm {

Result<DifferentialPlanResult> PlanDifferentialView(
    const MaterializedView& view, const TripleSet& triples, int num_workers,
    const CostModel& cost, const PlannerOptions& options) {
  if (num_workers < 1) {
    return Status::InvalidArgument("need at least one worker");
  }
  DifferentialPlanResult result{MaintenancePlan{},
                                MakespanTracker(num_workers),
                                {}};
  MaintenancePlan& plan = result.plan;
  MakespanTracker& tracker = result.tracker;
  auto& replicas = result.replicas;

  // T[c] starts as {S_c}.
  for (const auto& [ref, node] : triples.location) {
    replicas[ref].insert(node);
  }

  // Random iteration order over the pairs.
  std::vector<size_t> order(triples.pairs.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.seed);
  rng.Shuffle(order);

  plan.joins.reserve(triples.pairs.size());
  std::vector<MakespanTracker::Delta> deltas;
  // Spilled operands already faulted in (charged) earlier in this plan.
  // Charging rule for the T_disk term: every spilled operand pays
  // DiskSeconds exactly once, always on its original holder's ntwk lane —
  // the reload happens where the bytes sit, whatever node the join lands
  // on. Order-independent, so the greedy's running total matches the
  // objective replay.
  std::unordered_set<MChunkRef, MChunkRefHash> faulted;
  for (size_t index : order) {
    const JoinPair& pair = triples.pairs[index];
    const bool same_operand = pair.a == pair.b;
    const MChunkRef operands[2] = {pair.a, pair.b};
    const size_t num_operands = same_operand ? 1 : 2;
    // Candidates are ranked by the global makespan first (the paper's
    // opt_now); ties — common once some node saturates the max — break
    // toward less added communication, then the least busy candidate, so
    // the greedy keeps spreading work instead of collapsing onto one node.
    double best_cost = std::numeric_limits<double>::infinity();
    double best_added = std::numeric_limits<double>::infinity();
    double best_busy = std::numeric_limits<double>::infinity();
    NodeId best = 0;
    for (NodeId j = 0; j < num_workers; ++j) {
      deltas.clear();
      // Tie-break communication counts only worker-charged transfers: the
      // coordinator streams deltas outside the makespan, so shipping a
      // delta is "free" while re-shipping a worker's base chunk is not.
      double added = 0.0;
      if (replicas.at(pair.a).count(j) == 0) {
        const NodeId from = triples.location.at(pair.a);
        const double seconds =
            cost.TransferSeconds(triples.bytes.at(pair.a));
        deltas.push_back({from, seconds, 0.0});
        if (from != kCoordinatorNode) added += seconds;
      }
      if (!same_operand && replicas.at(pair.b).count(j) == 0) {
        const NodeId from = triples.location.at(pair.b);
        const double seconds =
            cost.TransferSeconds(triples.bytes.at(pair.b));
        deltas.push_back({from, seconds, 0.0});
        if (from != kCoordinatorNode) added += seconds;
      }
      for (size_t o = 0; o < num_operands; ++o) {
        if (faulted.count(operands[o]) == 0 &&
            triples.spilled.count(operands[o]) > 0) {
          deltas.push_back({triples.location.at(operands[o]),
                            cost.DiskSeconds(triples.bytes.at(operands[o])),
                            0.0});
        }
      }
      deltas.push_back({j, 0.0, cost.JoinSeconds(pair.bytes)});
      const double candidate = tracker.EvalWithDeltas(deltas);
      const double busy =
          std::max(tracker.ntwk(j),
                   tracker.cpu(j) + cost.JoinSeconds(pair.bytes));
      if (candidate < best_cost - 1e-15 ||
          (candidate <= best_cost + 1e-15 &&
           (added < best_added - 1e-15 ||
            (added <= best_added + 1e-15 && busy < best_busy - 1e-15)))) {
        best_cost = candidate;
        best_added = added;
        best_busy = busy;
        best = j;
      }
    }
    // Commit the chosen node: record transfers, replicas, and the join.
    deltas.clear();
    if (replicas.at(pair.a).count(best) == 0) {
      const NodeId from = triples.location.at(pair.a);
      deltas.push_back(
          {from, cost.TransferSeconds(triples.bytes.at(pair.a)), 0.0});
      plan.transfers.push_back({pair.a, from, best});
      replicas.at(pair.a).insert(best);
    }
    if (!same_operand && replicas.at(pair.b).count(best) == 0) {
      const NodeId from = triples.location.at(pair.b);
      deltas.push_back(
          {from, cost.TransferSeconds(triples.bytes.at(pair.b)), 0.0});
      plan.transfers.push_back({pair.b, from, best});
      replicas.at(pair.b).insert(best);
    }
    for (size_t o = 0; o < num_operands; ++o) {
      if (faulted.count(operands[o]) == 0 &&
          triples.spilled.count(operands[o]) > 0) {
        deltas.push_back({triples.location.at(operands[o]),
                          cost.DiskSeconds(triples.bytes.at(operands[o])),
                          0.0});
        faulted.insert(operands[o]);
      }
    }
    deltas.push_back({best, 0.0, cost.JoinSeconds(pair.bytes)});
    tracker.Commit(deltas);
    plan.joins.push_back({index, best});
  }
  // Algorithm 1 evaluates every worker for every pair and commits one
  // assignment per pair.
  CountAdd(CounterId::kPlanStage1Candidates,
           static_cast<uint64_t>(order.size()) *
               static_cast<uint64_t>(num_workers));
  CountAdd(CounterId::kPlanStage1Accepts, order.size());

  // Default (no-reassignment) view homes; stage 2 overwrites these.
  const Catalog* catalog = view.left_base().catalog();
  for (const auto& pair : triples.pairs) {
    for (ChunkId v : pair.AllViewTargets()) {
      if (plan.view_home.count(v) > 0) continue;
      auto it = triples.view_location.find(v);
      if (it != triples.view_location.end()) {
        plan.view_home[v] = it->second;
      } else {
        plan.view_home[v] =
            catalog->PlaceByStrategy(view.array().id(), v, num_workers);
      }
    }
  }
  return result;
}

}  // namespace avm
