#pragma once

#include <vector>

#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "maintenance/types.h"

namespace avm {

/// Debug structural validators for maintenance plans and post-execution
/// cluster state. All functions report violations through AVM_CHECK — the
/// installed failure handler aborts in binaries and throws in tests — and
/// are designed to run after each planner stage and each executor batch in
/// Debug/test builds (`if constexpr (kDebugChecksEnabled)`); they are never
/// on a Release hot path.

/// Checks the structural contract every planner stage must maintain
/// (Algorithms 1-3 preserve it invariantly, so the same validator runs
/// after stage 1, stage 2, and stage 3):
///
///  - every join references a pair inside the triple set, every pair is
///    joined exactly once (the z variables form a partition of U_0's unique
///    pairs), and every join runs on a worker node;
///  - transfers move known chunks between known nodes, and replaying them
///    from the triple set's initial locations S never ships a chunk from a
///    node that does not hold a copy;
///  - after the replay, both operands of every join are co-located at the
///    join's node (plans are self-sufficient: the executor never has to
///    improvise a transfer);
///  - view ownership stays a partition: `view_home` assigns exactly the
///    affected view chunks (no affected chunk unassigned, no stray
///    assignments), each to a single worker;
///  - array moves name known chunks, target workers, and reassign any chunk
///    at most once (delta chunks get exactly one post-maintenance home).
///
/// When `cost` is non-null additionally evaluates the analytical objective
/// of the plan and checks the makespan accounting: every per-node
/// network/CPU charge is finite and non-negative.
void ValidateMaintenancePlan(const MaintenancePlan& plan,
                             const TripleSet& triples, int num_workers,
                             const CostModel* cost = nullptr);

/// Checks the triple set itself is well-formed before planning: pair
/// operands carry locations and sizes, delta chunks start at the
/// coordinator, directional view-target lists are consistent with the
/// cached union, and every affected view chunk with a location also has a
/// registered size.
void ValidateTripleSet(const TripleSet& triples, int num_workers);

/// Post-execution audit that the catalog's replica bookkeeping matches the
/// physical node stores for the given arrays: every registered chunk's
/// primary node actually holds the chunk, the registered size matches the
/// stored bytes, the chunk passes its geometry contract on the array's
/// grid, and no worker store holds a copy the catalog does not know about
/// (maintenance must drop its scratch replicas).
void ValidateCatalogStoreConsistency(const Catalog& catalog,
                                     const Cluster& cluster,
                                     const std::vector<ArrayId>& arrays);

}  // namespace avm
