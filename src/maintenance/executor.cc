#include "maintenance/executor.h"

#include <map>
#include <set>
#include <vector>

#include "join/fragment_merge.h"
#include "join/join_kernel.h"

namespace avm {

namespace {

/// Resolves maintenance-time chunk refs to concrete arrays.
class RefResolver {
 public:
  RefResolver(MaterializedView* view, DistributedArray* ldelta,
              DistributedArray* rdelta)
      : view_(view), ldelta_(ldelta), rdelta_(rdelta) {}

  Result<DistributedArray*> ArrayOf(ChunkSide side) const {
    switch (side) {
      case ChunkSide::kLeftBase:
        return &view_->left_base();
      case ChunkSide::kRightBase:
        return &view_->right_base();
      case ChunkSide::kLeftDelta:
        if (ldelta_ == nullptr) {
          return Status::Internal("plan references a missing left delta");
        }
        return ldelta_;
      case ChunkSide::kRightDelta:
        if (rdelta_ == nullptr) {
          return Status::Internal("plan references a missing right delta");
        }
        return rdelta_;
    }
    return Status::Internal("bad chunk side");
  }

  /// The base array a delta side merges into.
  DistributedArray& BaseOf(ChunkSide side) const {
    return (side == ChunkSide::kRightDelta || side == ChunkSide::kRightBase)
               ? view_->right_base()
               : view_->left_base();
  }

 private:
  MaterializedView* view_;
  DistributedArray* ldelta_;
  DistributedArray* rdelta_;
};

/// Folds the cells of `delta_chunk` into the base chunk resident at `node`
/// (upsert semantics: new detections are inserts/overwrites of raw data).
void UpsertCells(const Chunk& delta_chunk, Chunk* base_chunk) {
  CellCoord coord(delta_chunk.num_dims());
  for (size_t row = 0; row < delta_chunk.num_cells(); ++row) {
    auto c = delta_chunk.CoordOfRow(row);
    coord.assign(c.begin(), c.end());
    base_chunk->UpsertCell(delta_chunk.OffsetOfRow(row), coord,
                           delta_chunk.ValuesOfRow(row));
  }
}

}  // namespace

Result<ExecutionStats> ExecuteMaintenancePlan(const MaintenancePlan& plan,
                                              const TripleSet& triples,
                                              MaterializedView* view,
                                              DistributedArray* left_delta,
                                              DistributedArray* right_delta) {
  if (view == nullptr) return Status::InvalidArgument("null view");
  ExecutionStats stats;
  Cluster* cluster = view->array().cluster();
  Catalog* catalog = view->array().catalog();
  const RefResolver resolver(view, left_delta, right_delta);
  const AggregateLayout& layout = view->layout();
  const ViewDefinition& def = view->definition();
  const ViewTarget target{&def.group_dims, &view->array().grid()};

  // Step 1: co-location transfers (x variables). Senders' clocks charged.
  for (const auto& t : plan.transfers) {
    AVM_ASSIGN_OR_RETURN(DistributedArray * array,
                         resolver.ArrayOf(t.chunk.side));
    AVM_RETURN_IF_ERROR(
        cluster->TransferChunk(array->id(), t.chunk.id, t.from, t.to));
  }

  // Step 2: joins (z variables). Each direction's output fragments are
  // tagged with the node that produced them.
  std::map<NodeId, std::map<ChunkId, Chunk>> fragments_by_node;
  for (const auto& join : plan.joins) {
    if (join.pair_index >= triples.pairs.size()) {
      return Status::Internal("join references a pair outside the triple set");
    }
    const JoinPair& pair = triples.pairs[join.pair_index];
    const NodeId k = join.node;
    AVM_ASSIGN_OR_RETURN(DistributedArray * a_array,
                         resolver.ArrayOf(pair.a.side));
    AVM_ASSIGN_OR_RETURN(DistributedArray * b_array,
                         resolver.ArrayOf(pair.b.side));
    const Chunk* a_chunk = cluster->store(k).Get(a_array->id(), pair.a.id);
    const Chunk* b_chunk = cluster->store(k).Get(b_array->id(), pair.b.id);
    if (a_chunk == nullptr || b_chunk == nullptr) {
      return Status::Internal(
          "plan did not co-locate both operands of a join at node " +
          std::to_string(k));
    }
    cluster->ChargeJoin(k, pair.bytes);
    auto& fragments = fragments_by_node[k];
    if (pair.dir_ab) {
      const RightOperand rop{b_chunk, pair.b.id, &b_array->grid()};
      AVM_RETURN_IF_ERROR(JoinAggregateChunkPair(*a_chunk, rop, def.mapping,
                                                 def.shape, layout, target,
                                                 /*multiplicity=*/1,
                                                 &fragments));
      ++stats.joins_executed;
    }
    if (pair.dir_ba) {
      const RightOperand rop{a_chunk, pair.a.id, &a_array->grid()};
      AVM_RETURN_IF_ERROR(JoinAggregateChunkPair(*b_chunk, rop, def.mapping,
                                                 def.shape, layout, target,
                                                 /*multiplicity=*/1,
                                                 &fragments));
      ++stats.joins_executed;
    }
  }

  // Step 3a: relocate view chunks whose planned home differs from their
  // current node (the y_v reassignment).
  const ArrayId view_id = view->array().id();
  for (const auto& [v, home] : plan.view_home) {
    auto current = catalog->NodeOf(view_id, v);
    if (!current.ok() || current.value() == home) continue;
    AVM_RETURN_IF_ERROR(
        cluster->TransferChunk(view_id, v, current.value(), home));
    catalog->AssignChunk(view_id, v, home);
    ++stats.view_chunks_touched;
  }

  // Step 3b: ship fragments to their view chunk's home and merge.
  for (auto& [producer, fragments] : fragments_by_node) {
    for (auto& [v, fragment] : fragments) {
      NodeId home;
      auto planned = plan.view_home.find(v);
      if (planned != plan.view_home.end()) {
        home = planned->second;
      } else {
        auto current = catalog->NodeOf(view_id, v);
        home = current.ok() ? current.value()
                            : catalog->PlaceByStrategy(
                                  view_id, v, cluster->num_workers());
      }
      if (producer != home) {
        cluster->ChargeNetwork(producer, fragment.SizeBytes());
      }
      AVM_RETURN_IF_ERROR(
          MergeStateFragment(&view->array(), v, fragment, layout, home));
      ++stats.fragments_merged;
    }
  }

  // Step 4: stage-3 storage redistribution of base chunks (free: the data
  // was already replicated during maintenance; only primaries change).
  for (const auto& move : plan.array_moves) {
    if (IsDeltaSide(move.chunk.side)) continue;  // handled with the merge
    AVM_ASSIGN_OR_RETURN(DistributedArray * array,
                         resolver.ArrayOf(move.chunk.side));
    auto current = catalog->NodeOf(array->id(), move.chunk.id);
    if (!current.ok() || current.value() == move.node) continue;
    if (cluster->store(move.node).Get(array->id(), move.chunk.id) == nullptr) {
      // The planner promised a replica here; pay for the move otherwise.
      AVM_RETURN_IF_ERROR(cluster->TransferChunk(
          array->id(), move.chunk.id, current.value(), move.node));
    }
    catalog->AssignChunk(array->id(), move.chunk.id, move.node);
    ++stats.base_chunks_moved;
  }

  // Step 5: fold the delta chunks into their base arrays.
  std::map<MChunkRef, NodeId> planned_delta_home;
  for (const auto& move : plan.array_moves) {
    if (IsDeltaSide(move.chunk.side)) planned_delta_home[move.chunk] = move.node;
  }
  for (DistributedArray* delta : {left_delta, right_delta}) {
    if (delta == nullptr) continue;
    const ChunkSide side = (delta == right_delta) ? ChunkSide::kRightDelta
                                                  : ChunkSide::kLeftDelta;
    DistributedArray& base = resolver.BaseOf(side);
    for (ChunkId d : catalog->ChunkIdsOf(delta->id())) {
      NodeId home;
      const bool base_exists = catalog->HasChunk(base.id(), d);
      if (base_exists) {
        AVM_ASSIGN_OR_RETURN(home, catalog->NodeOf(base.id(), d));
      } else {
        auto it = planned_delta_home.find(MChunkRef{side, d});
        home = it != planned_delta_home.end()
                   ? it->second
                   : catalog->PlaceByStrategy(base.id(), d,
                                              cluster->num_workers());
      }
      // Make sure the delta data is at the merge site; ship from the
      // nearest existing replica (join co-location often already paid for
      // one) rather than always re-sending from the coordinator.
      if (cluster->store(home).Get(delta->id(), d) == nullptr) {
        NodeId source = kCoordinatorNode;
        for (NodeId n = 0; n < cluster->num_workers(); ++n) {
          if (cluster->store(n).Get(delta->id(), d) != nullptr) {
            source = n;
            break;
          }
        }
        AVM_RETURN_IF_ERROR(
            cluster->TransferChunk(delta->id(), d, source, home));
      }
      const Chunk* delta_chunk = cluster->store(home).Get(delta->id(), d);
      if (base_exists) {
        Chunk* base_chunk = cluster->store(home).GetMutable(base.id(), d);
        if (base_chunk == nullptr) {
          return Status::Internal(
              "base chunk missing from its primary node during delta merge");
        }
        UpsertCells(*delta_chunk, base_chunk);
        catalog->SetChunkBytes(base.id(), d, base_chunk->SizeBytes());
      } else {
        Chunk copy = *delta_chunk;
        const uint64_t bytes = copy.SizeBytes();
        cluster->store(home).Put(base.id(), d, std::move(copy));
        catalog->AssignChunk(base.id(), d, home);
        catalog->SetChunkBytes(base.id(), d, bytes);
      }
      ++stats.delta_chunks_merged;
    }
  }

  // Step 6: drop every non-primary replica of the persistent arrays and all
  // delta copies (scratch space reclaimed after maintenance).
  std::vector<ArrayId> persistent = {view->left_base().id(), view_id};
  if (view->right_base().id() != view->left_base().id()) {
    persistent.push_back(view->right_base().id());
  }
  std::vector<ArrayId> transient;
  if (left_delta != nullptr) transient.push_back(left_delta->id());
  if (right_delta != nullptr) transient.push_back(right_delta->id());
  auto cleanup_store = [&](NodeId node) {
    ChunkStore& store = cluster->store(node);
    std::vector<std::pair<ArrayId, ChunkId>> drop;
    store.ForEach([&](ArrayId array, ChunkId chunk, const Chunk&) {
      for (ArrayId t : transient) {
        if (array == t) {
          drop.push_back({array, chunk});
          return;
        }
      }
      for (ArrayId p : persistent) {
        if (array == p) {
          auto primary = catalog->NodeOf(array, chunk);
          if (!primary.ok() || primary.value() != node) {
            drop.push_back({array, chunk});
          }
          return;
        }
      }
    });
    for (const auto& [array, chunk] : drop) store.Erase(array, chunk);
  };
  cleanup_store(kCoordinatorNode);
  for (NodeId n = 0; n < cluster->num_workers(); ++n) cleanup_store(n);

  return stats;
}

}  // namespace avm
