#include "maintenance/executor.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "array/chunk_pool.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "join/compiled_shape.h"
#include "join/fragment_merge.h"
#include "join/join_kernel.h"
#include "maintenance/makespan_tracker.h"
#include "maintenance/plan_validator.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace avm {

namespace {

/// Resolves maintenance-time chunk refs to concrete arrays.
class RefResolver {
 public:
  RefResolver(MaterializedView* view, DistributedArray* ldelta,
              DistributedArray* rdelta)
      : view_(view), ldelta_(ldelta), rdelta_(rdelta) {}

  Result<DistributedArray*> ArrayOf(ChunkSide side) const {
    switch (side) {
      case ChunkSide::kLeftBase:
        return &view_->left_base();
      case ChunkSide::kRightBase:
        return &view_->right_base();
      case ChunkSide::kLeftDelta:
        if (ldelta_ == nullptr) {
          return Status::Internal("plan references a missing left delta");
        }
        return ldelta_;
      case ChunkSide::kRightDelta:
        if (rdelta_ == nullptr) {
          return Status::Internal("plan references a missing right delta");
        }
        return rdelta_;
    }
    return Status::Internal("bad chunk side");
  }

  /// The base array a delta side merges into.
  DistributedArray& BaseOf(ChunkSide side) const {
    return (side == ChunkSide::kRightDelta || side == ChunkSide::kRightBase)
               ? view_->right_base()
               : view_->left_base();
  }

 private:
  MaterializedView* view_;
  DistributedArray* ldelta_;
  DistributedArray* rdelta_;
};

/// A node id a plan may legally name as a data location: a worker or the
/// coordinator. Plans produced by the planners never place work outside the
/// cluster; a stray id is a planner bug surfaced as Internal, not a crash.
Status ValidatePlanNode(NodeId node, int num_workers, const char* what) {
  if (node == kCoordinatorNode || (node >= 0 && node < num_workers)) {
    return Status::OK();
  }
  return Status::Internal(std::string(what) + " references unknown node id " +
                          std::to_string(node));
}

/// Joins must run on a worker (the coordinator has no join capability).
Status ValidateJoinNode(NodeId node, int num_workers) {
  if (node >= 0 && node < num_workers) return Status::OK();
  return Status::Internal("join assigned to unknown node id " +
                          std::to_string(node));
}

/// Folds the cells of `delta_chunk` into the base chunk resident at `node`
/// (upsert semantics: new detections are inserts/overwrites of raw data).
void UpsertCells(const Chunk& delta_chunk, Chunk* base_chunk) {
  base_chunk->Reserve(base_chunk->num_cells() + delta_chunk.num_cells());
  delta_chunk.ForEachCellWithOffset(
      [&](uint64_t offset, std::span<const int64_t> coord,
          std::span<const double> values) {
        base_chunk->UpsertCell(offset, coord, values);
      });
}

/// All join work one worker node executes, plus its outputs. One NodeJoinWork
/// is the unit of parallelism: a single host task runs the node's joins in
/// plan order, so per-node fragment accumulation order — and therefore every
/// floating-point sum — matches the serial path exactly.
struct NodeJoinWork {
  NodeId node = 0;
  std::vector<size_t> join_indices;  // into plan.joins, ascending
  std::map<ChunkId, Chunk> fragments;
  uint64_t joins_executed = 0;
  uint64_t bytes_joined = 0;
  Status status = Status::OK();
};

/// Exports the simulated per-node clock deltas of this execution as spans on
/// synthetic "sim" timelines (one network lane and one cpu lane per node),
/// positioned at the node's pre-execution clock value so consecutive batches
/// tile the simulated time axis. Also folds the batch totals into the
/// registry counters that the acceptance checks reconcile against the
/// MakespanTracker.
void EmitSimulatedClockTelemetry(const ClusterClockSnapshot& entry,
                                 const ExecutionStats& stats,
                                 int num_workers) {
  TraceCollector& collector = TraceCollector::Global();
  uint64_t total_ntwk_bytes = 0;
  uint64_t total_cpu_bytes = 0;
  for (size_t i = 0; i < stats.per_node.size(); ++i) {
    const NodeActivity& a = stats.per_node[i];
    total_ntwk_bytes += a.ntwk_bytes;
    total_cpu_bytes += a.cpu_bytes;
    const bool coordinator = i == static_cast<size_t>(num_workers);
    const NodeClock& then = coordinator ? entry.coordinator : entry.workers[i];
    const int64_t node =
        coordinator ? kCoordinatorNode : static_cast<int64_t>(i);
    if (a.ntwk_seconds > 0.0 || a.ntwk_bytes > 0) {
      TraceEvent e;
      e.name = "sim.ntwk";
      e.cat = "sim";
      e.ts_ns = static_cast<int64_t>(then.ntwk_seconds * 1e9);
      e.dur_ns = static_cast<int64_t>(a.ntwk_seconds * 1e9);
      e.tid = kSimTidBase + 2 * static_cast<int32_t>(i);
      e.num_args = 2;
      e.args[0] = TraceArg{"node", node};
      e.args[1] = TraceArg{"bytes", static_cast<int64_t>(a.ntwk_bytes)};
      collector.Emit(e);
    }
    if (a.cpu_seconds > 0.0 || a.cpu_bytes > 0) {
      TraceEvent e;
      e.name = "sim.cpu";
      e.cat = "sim";
      e.ts_ns = static_cast<int64_t>(then.cpu_seconds * 1e9);
      e.dur_ns = static_cast<int64_t>(a.cpu_seconds * 1e9);
      e.tid = kSimTidBase + 2 * static_cast<int32_t>(i) + 1;
      e.num_args = 2;
      e.args[0] = TraceArg{"node", node};
      e.args[1] = TraceArg{"bytes", static_cast<int64_t>(a.cpu_bytes)};
      collector.Emit(e);
    }
  }
  CountAdd(CounterId::kExecBytesTransferred, total_ntwk_bytes);
  CountAdd(CounterId::kExecBytesJoined, total_cpu_bytes);
  CountAdd(CounterId::kExecJoinsExecuted, stats.joins_executed);
  CountAdd(CounterId::kExecFragmentsMerged, stats.fragments_merged);
  CountAdd(CounterId::kExecDeltaChunksMerged, stats.delta_chunks_merged);
}

}  // namespace

Result<ExecutionStats> ExecuteMaintenancePlan(const MaintenancePlan& plan,
                                              const TripleSet& triples,
                                              MaterializedView* view,
                                              DistributedArray* left_delta,
                                              DistributedArray* right_delta) {
  if (view == nullptr) return Status::InvalidArgument("null view");
  ExecutionStats stats;
  Cluster* cluster = view->array().cluster();
  // Pre-execution clocks: per-node activity (and the sim-timeline spans) are
  // deltas against this. Cheap (one NodeClock copy per node), so always on.
  const ClusterClockSnapshot entry_clocks = ClusterClockSnapshot::Take(*cluster);
  ScopedSpan exec_span("exec.batch", "exec");
  Catalog* catalog = view->array().catalog();
  const int num_workers = cluster->num_workers();
  const RefResolver resolver(view, left_delta, right_delta);
  const AggregateLayout& layout = view->layout();
  const ViewDefinition& def = view->definition();
  const ViewTarget target{&def.group_dims, &view->array().grid()};

  // In Debug/test builds, re-check the plan contract at the execution
  // boundary: the executor trusts co-location and the exactly-once join
  // assignment below, so a malformed plan must be caught before it mutates
  // any node store.
  if constexpr (kDebugChecksEnabled) {
    ValidateMaintenancePlan(plan, triples, num_workers,
                            &cluster->cost_model());
  }

  // Step 1: co-location transfers (x variables). Senders' clocks charged.
  // Serial: transfers mutate node stores, and later steps depend on every
  // replica being in place.
  {
    ScopedSpan transfer_span("exec.transfers", "exec");
    transfer_span.AddArg("transfers",
                         static_cast<int64_t>(plan.transfers.size()));
    for (const auto& t : plan.transfers) {
      AVM_RETURN_IF_ERROR(
          ValidatePlanNode(t.from, num_workers, "transfer source"));
      AVM_RETURN_IF_ERROR(
          ValidatePlanNode(t.to, num_workers, "transfer destination"));
      AVM_ASSIGN_OR_RETURN(DistributedArray * array,
                           resolver.ArrayOf(t.chunk.side));
      AVM_RETURN_IF_ERROR(
          cluster->TransferChunk(array->id(), t.chunk.id, t.from, t.to));
    }
  }

  // Step 2: joins (z variables), grouped by executing node and run
  // concurrently across nodes on the host thread pool — the real-thread
  // counterpart of the per-node parallelism the MIP objective assumes.
  // During the parallel phase tasks only read node stores (all replicas were
  // placed in step 1) and write task-local state; simulated CPU seconds
  // accumulate in a ConcurrentClockBank committed after the barrier, so
  // clocks and makespan are bit-identical to serial execution.
  std::map<NodeId, NodeJoinWork> work_by_node;
  for (size_t i = 0; i < plan.joins.size(); ++i) {
    const auto& join = plan.joins[i];
    if (join.pair_index >= triples.pairs.size()) {
      return Status::Internal("join references a pair outside the triple set");
    }
    AVM_RETURN_IF_ERROR(ValidateJoinNode(join.node, num_workers));
    // Resolve operand arrays up front: a missing delta is a plan bug we
    // report deterministically before any parallel work starts.
    const JoinPair& pair = triples.pairs[join.pair_index];
    AVM_RETURN_IF_ERROR(resolver.ArrayOf(pair.a.side).status());
    AVM_RETURN_IF_ERROR(resolver.ArrayOf(pair.b.side).status());
    NodeJoinWork& work = work_by_node[join.node];
    work.node = join.node;
    work.join_indices.push_back(i);
  }
  std::vector<NodeJoinWork*> tasks;
  tasks.reserve(work_by_node.size());
  for (auto& [node, work] : work_by_node) tasks.push_back(&work);

  // Compile the view shape once per distinct operand array before the
  // fan-out: plans with hundreds of chunk-joins share one linearization, and
  // the hot loop never touches the cache lock. Base and delta arrays chunk
  // the same space, so these usually all resolve to a single cached entry.
  std::map<const DistributedArray*, std::shared_ptr<const CompiledShape>>
      compiled_by_array;
  for (const auto& [node, work] : work_by_node) {
    for (size_t i : work.join_indices) {
      const JoinPair& pair = triples.pairs[plan.joins[i].pair_index];
      for (const ChunkSide side : {pair.a.side, pair.b.side}) {
        const DistributedArray* array = resolver.ArrayOf(side).value();
        auto& slot = compiled_by_array[array];
        if (slot == nullptr) {
          AVM_ASSIGN_OR_RETURN(slot,
                               CompiledShapeCache::Global().Get(
                                   def.shape, def.mapping, array->grid()));
        }
      }
    }
  }

  ConcurrentClockBank clock_bank(num_workers);
  const CostModel& cost_model = cluster->cost_model();
  // optional<> so the phase span can close right after the clock commit
  // without re-scoping the fan-out below.
  std::optional<ScopedSpan> join_phase_span(std::in_place, "exec.joins",
                                            "exec");
  join_phase_span->AddArg("nodes", static_cast<int64_t>(tasks.size()));
  cluster->pool()->ParallelFor(tasks.size(), [&](size_t t) {
    NodeJoinWork& work = *tasks[t];
    const NodeId k = work.node;
    // One wall-clock span per simulated node's join task, on whichever host
    // thread ran it; compare against the node's "sim.cpu" lane to see how
    // simulated charges line up with host execution.
    ScopedSpan node_span("exec.node_joins", "exec");
    node_span.AddArg("node", k);
    const ChunkStore& store = cluster->store(k);
    for (size_t i : work.join_indices) {
      const MaintenancePlan::Join& join = plan.joins[i];
      const JoinPair& pair = triples.pairs[join.pair_index];
      // Operand arrays were validated before the fan-out; value() is safe.
      DistributedArray* a_array = resolver.ArrayOf(pair.a.side).value();
      DistributedArray* b_array = resolver.ArrayOf(pair.b.side).value();
      // Handles, not raw pointers: with a buffer manager attached, any
      // store access on a concurrent task could evict an unpinned chunk;
      // the handle pins both operands for the kernel's duration (and
      // faults them in if the planner left them spilled).
      const ChunkHandle a_chunk = store.GetHandle(a_array->id(), pair.a.id);
      const ChunkHandle b_chunk = store.GetHandle(b_array->id(), pair.b.id);
      if (a_chunk == nullptr || b_chunk == nullptr) {
        work.status = Status::Internal(
            "plan did not co-locate both operands of a join at node " +
            std::to_string(k));
        return;
      }
      clock_bank.AddCpu(k, cost_model.JoinSeconds(pair.bytes), pair.bytes);
      work.bytes_joined += pair.bytes;
      if (pair.dir_ab) {
        const RightOperand rop{b_chunk.get(), pair.b.id, &b_array->grid()};
        work.status = JoinAggregateChunkPair(
            *a_chunk, rop, *compiled_by_array.at(b_array), layout, target,
            /*multiplicity=*/1, &work.fragments);
        if (!work.status.ok()) return;
        ++work.joins_executed;
      }
      if (pair.dir_ba) {
        const RightOperand rop{a_chunk.get(), pair.a.id, &a_array->grid()};
        work.status = JoinAggregateChunkPair(
            *b_chunk, rop, *compiled_by_array.at(a_array), layout, target,
            /*multiplicity=*/1, &work.fragments);
        if (!work.status.ok()) return;
        ++work.joins_executed;
      }
    }
    node_span.AddArg("joins", static_cast<int64_t>(work.joins_executed));
    node_span.AddArg("bytes_joined",
                     static_cast<int64_t>(work.bytes_joined));
  });
  clock_bank.CommitTo(cluster);
  join_phase_span.reset();
  // Surface the first failure in ascending node order (deterministic
  // regardless of which task hit it first on the wall clock).
  for (const NodeJoinWork* work : tasks) {
    AVM_RETURN_IF_ERROR(work->status);
    stats.joins_executed += work->joins_executed;
  }

  // Step 3a: relocate view chunks whose planned home differs from their
  // current node (the y_v reassignment).
  std::optional<ScopedSpan> merge_span(std::in_place, "exec.view_merge",
                                       "exec");
  const ArrayId view_id = view->array().id();
  for (const auto& [v, home] : plan.view_home) {
    AVM_RETURN_IF_ERROR(ValidatePlanNode(home, num_workers, "view home"));
    auto current = catalog->NodeOf(view_id, v);
    if (!current.ok() || current.value() == home) continue;
    AVM_RETURN_IF_ERROR(
        cluster->TransferChunk(view_id, v, current.value(), home));
    catalog->AssignChunk(view_id, v, home);
    ++stats.view_chunks_touched;
  }

  // Step 3b: ship fragments to their view chunk's home and merge. Fragments
  // are folded per view chunk in canonical ascending ChunkId order, each
  // chunk's contributions in ascending producer-node order — a fixed merge
  // schedule independent of how the join tasks were interleaved, and equal,
  // per clock, to the serial producer-major order (each producer's charges
  // stay in ascending-v sequence).
  std::map<ChunkId, std::vector<std::pair<NodeId, const Chunk*>>>
      fragments_by_view_chunk;
  for (const NodeJoinWork* work : tasks) {
    for (const auto& [v, fragment] : work->fragments) {
      fragments_by_view_chunk[v].push_back({work->node, &fragment});
    }
  }
  for (const auto& [v, producers] : fragments_by_view_chunk) {
    NodeId home;
    auto planned = plan.view_home.find(v);
    if (planned != plan.view_home.end()) {
      home = planned->second;
    } else {
      auto current = catalog->NodeOf(view_id, v);
      home = current.ok() ? current.value()
                          : catalog->PlaceByStrategy(view_id, v,
                                                     cluster->num_workers());
    }
    for (const auto& [producer, fragment] : producers) {
      if (producer != home) {
        cluster->ChargeNetwork(producer, fragment->SizeBytes());
      }
      AVM_RETURN_IF_ERROR(
          MergeStateFragment(&view->array(), v, *fragment, layout, home));
      ++stats.fragments_merged;
    }
  }
  merge_span->AddArg("fragments",
                     static_cast<int64_t>(stats.fragments_merged));
  merge_span.reset();
  // The fragment scratch chunks are dead after the merge; park their buffer
  // capacity in the pool so the next batch's join phase (which acquires on
  // the worker threads, see FragmentBuilder) skips the allocator.
  for (NodeJoinWork* work : tasks) {
    for (auto& [v, fragment] : work->fragments) {
      ChunkPool::Release(std::move(fragment));
    }
    work->fragments.clear();
  }

  // Step 4: stage-3 storage redistribution of base chunks (free: the data
  // was already replicated during maintenance; only primaries change).
  for (const auto& move : plan.array_moves) {
    if (IsDeltaSide(move.chunk.side)) continue;  // handled with the merge
    AVM_RETURN_IF_ERROR(
        ValidatePlanNode(move.node, num_workers, "array move"));
    AVM_ASSIGN_OR_RETURN(DistributedArray * array,
                         resolver.ArrayOf(move.chunk.side));
    auto current = catalog->NodeOf(array->id(), move.chunk.id);
    if (!current.ok() || current.value() == move.node) continue;
    if (!cluster->store(move.node).Contains(array->id(), move.chunk.id)) {
      // The planner promised a replica here; pay for the move otherwise.
      AVM_RETURN_IF_ERROR(cluster->TransferChunk(
          array->id(), move.chunk.id, current.value(), move.node));
    }
    catalog->AssignChunk(array->id(), move.chunk.id, move.node);
    ++stats.base_chunks_moved;
  }

  // Step 5: fold the delta chunks into their base arrays. Transfers,
  // placement decisions, and catalog writes stay on the control thread; the
  // cell-level upserts — each touching a distinct base chunk — fan out on
  // the pool once every operand is in place.
  std::optional<ScopedSpan> fold_span(std::in_place, "exec.delta_fold",
                                      "exec");
  std::map<MChunkRef, NodeId> planned_delta_home;
  for (const auto& move : plan.array_moves) {
    if (!IsDeltaSide(move.chunk.side)) continue;
    AVM_RETURN_IF_ERROR(
        ValidatePlanNode(move.node, num_workers, "delta move"));
    planned_delta_home[move.chunk] = move.node;
  }
  struct UpsertJob {
    // Handles pin both operands: with a buffer manager attached, any store
    // access between here and the ParallelFor below could otherwise evict
    // an unpinned chunk out from under the raw pointers.
    ChunkHandle delta;
    ChunkHandle base_pin;
    Chunk* base_chunk = nullptr;
    const ChunkGrid* grid = nullptr;
    ArrayId base_id = 0;
    ChunkId chunk_id = 0;
  };
  std::vector<UpsertJob> upserts;
  for (DistributedArray* delta : {left_delta, right_delta}) {
    if (delta == nullptr) continue;
    const ChunkSide side = (delta == right_delta) ? ChunkSide::kRightDelta
                                                  : ChunkSide::kLeftDelta;
    DistributedArray& base = resolver.BaseOf(side);
    for (ChunkId d : catalog->ChunkIdsOf(delta->id())) {
      NodeId home;
      const bool base_exists = catalog->HasChunk(base.id(), d);
      if (base_exists) {
        AVM_ASSIGN_OR_RETURN(home, catalog->NodeOf(base.id(), d));
      } else {
        auto it = planned_delta_home.find(MChunkRef{side, d});
        home = it != planned_delta_home.end()
                   ? it->second
                   : catalog->PlaceByStrategy(base.id(), d,
                                              cluster->num_workers());
      }
      // Make sure the delta data is at the merge site; ship from the
      // nearest existing replica (join co-location often already paid for
      // one) rather than always re-sending from the coordinator.
      if (!cluster->store(home).Contains(delta->id(), d)) {
        NodeId source = kCoordinatorNode;
        for (NodeId n = 0; n < cluster->num_workers(); ++n) {
          if (cluster->store(n).Contains(delta->id(), d)) {
            source = n;
            break;
          }
        }
        AVM_RETURN_IF_ERROR(
            cluster->TransferChunk(delta->id(), d, source, home));
      }
      ChunkHandle delta_handle = cluster->store(home).GetHandle(delta->id(), d);
      if (base_exists) {
        Chunk* base_chunk = cluster->store(home).GetMutable(base.id(), d);
        if (base_chunk == nullptr) {
          return Status::Internal(
              "base chunk missing from its primary node during delta merge");
        }
        // Pin the base AFTER GetMutable: GetHandle never COW-breaks, so it
        // aliases the post-break chunk GetMutable just returned, and the
        // extra refcount blocks eviction until the job is done.
        ChunkHandle base_pin = cluster->store(home).GetHandle(base.id(), d);
        upserts.push_back({std::move(delta_handle), std::move(base_pin),
                           base_chunk, &base.grid(), base.id(), d});
      } else {
        // The delta chunk *becomes* the base chunk: alias it instead of
        // copying. Step 6 erases the transient delta entry; the base entry's
        // handle keeps the bytes alive, so after cleanup the store owns the
        // chunk uniquely and future-batch folds mutate it copy-free.
        const uint64_t bytes =
            cluster->store(home).PutHandle(base.id(), d, std::move(delta_handle));
        catalog->AssignChunk(base.id(), d, home);
        catalog->SetChunkBytes(base.id(), d, bytes);
      }
      ++stats.delta_chunks_merged;
    }
  }
  cluster->pool()->ParallelFor(upserts.size(), [&](size_t i) {
    UpsertCells(*upserts[i].delta, upserts[i].base_chunk);
    // Adapt in the parallel task: a first conversion scatters O(volume)
    // cells, which amortizes like the upsert itself. Jobs touch disjoint
    // base chunks, so this races with nothing.
    upserts[i].base_chunk->MaybeAdaptRepresentation(*upserts[i].grid,
                                                    upserts[i].chunk_id);
  });
  for (const UpsertJob& job : upserts) {
    catalog->SetChunkBytes(job.base_id, job.chunk_id,
                           job.base_chunk->SizeBytes());
  }
  fold_span->AddArg("delta_chunks",
                    static_cast<int64_t>(stats.delta_chunks_merged));
  fold_span.reset();

  ScopedSpan cleanup_span("exec.cleanup", "exec");
  // Step 6: drop every non-primary replica of the persistent arrays and all
  // delta copies (scratch space reclaimed after maintenance).
  std::vector<ArrayId> persistent = {view->left_base().id(), view_id};
  if (view->right_base().id() != view->left_base().id()) {
    persistent.push_back(view->right_base().id());
  }
  std::vector<ArrayId> transient;
  if (left_delta != nullptr) transient.push_back(left_delta->id());
  if (right_delta != nullptr) transient.push_back(right_delta->id());
  auto cleanup_store = [&](NodeId node) {
    ChunkStore& store = cluster->store(node);
    std::vector<std::pair<ArrayId, ChunkId>> drop;
    // Key-only walk: ForEach would fault every spilled chunk back in just
    // to decide whether to erase it.
    store.ForEachKey([&](ArrayId array, ChunkId chunk) {
      for (ArrayId t : transient) {
        if (array == t) {
          drop.push_back({array, chunk});
          return;
        }
      }
      for (ArrayId p : persistent) {
        if (array == p) {
          auto primary = catalog->NodeOf(array, chunk);
          if (!primary.ok() || primary.value() != node) {
            drop.push_back({array, chunk});
          }
          return;
        }
      }
    });
    for (const auto& [array, chunk] : drop) store.Erase(array, chunk);
  };
  cleanup_store(kCoordinatorNode);
  for (NodeId n = 0; n < cluster->num_workers(); ++n) cleanup_store(n);

  // Post-batch audit: the catalog's bookkeeping for the persistent arrays
  // must match the physical stores, and no scratch replica may survive the
  // cleanup above.
  if constexpr (kDebugChecksEnabled) {
    ValidateCatalogStoreConsistency(*catalog, *cluster, persistent);
  }

  stats.per_node = entry_clocks.ActivitySince(*cluster);
  if (TelemetryEnabled()) {
    EmitSimulatedClockTelemetry(entry_clocks, stats, num_workers);
  }
  return stats;
}

}  // namespace avm
