#pragma once

#include <cstdint>

#include "array/sparse_array.h"
#include "common/result.h"
#include "view/materialized_view.h"

namespace avm {

/// Batch deletions — the other half of "batch updates". The paper's
/// astronomy pipelines are insert-only, but its aggregate class
/// (COUNT/SUM/AVG, Section 3) is explicitly chosen to be incrementally
/// maintainable, which includes retraction; this module completes that
/// story for self-join views.
///
/// Deleting a set D of existing cells changes the view in two ways:
///   1. every surviving cell x with a deleted partner y ∈ σ[x] retracts
///      f(y) from its aggregate state (a right-operand pass with
///      multiplicity -1, mirroring insert maintenance), and
///   2. the view cells keyed by deleted coordinates disappear.
/// Cells whose state returns to the aggregate identity after retraction are
/// also removed, so the maintained view stays content-equal to a
/// from-scratch recomputation over the surviving data.
///
/// Requires every aggregate to support retraction (COUNT/SUM/AVG); MIN/MAX
/// views fail with FailedPrecondition. Cells in `deleted_cells` that do not
/// exist in the base are ignored (idempotent deletes).
struct DeletionStats {
  uint64_t deleted_cells = 0;
  uint64_t retraction_joins = 0;
  uint64_t view_cells_removed = 0;
  /// Simulated makespan of the deletion batch.
  double maintenance_seconds = 0.0;
};

Result<DeletionStats> ApplyDeletionBatch(MaterializedView* view,
                                         const SparseArray& deleted_cells);

}  // namespace avm

