#include "maintenance/triple_gen.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "join/pair_enumeration.h"

namespace avm {

namespace {

/// Accumulates directional pair requirements into unordered JoinPairs and
/// the side metadata the planners need.
class PairCollector {
 public:
  PairCollector(const MaterializedView& view, const DistributedArray* ldelta,
                const DistributedArray* rdelta)
      : view_(view), ldelta_(ldelta), rdelta_(rdelta) {}

  /// Records the kernel direction left -> right and its affected view
  /// chunks (triples (left, right, v) for v in the left operand's view
  /// targets).
  void AddDirection(MChunkRef left, MChunkRef right) {
    MChunkRef a = left;
    MChunkRef b = right;
    bool ab = true;
    if (b < a) {
      std::swap(a, b);
      ab = false;
    }
    JoinPair& pair = pairs_[{a, b}];
    pair.a = a;
    pair.b = b;
    auto& targets = ab ? pair.view_targets_ab : pair.view_targets_ba;
    auto& flag = ab ? pair.dir_ab : pair.dir_ba;
    if (flag) return;  // direction already recorded
    flag = true;
    targets = EnumerateViewTargets(GridOf(left), left.id,
                                   view_.definition().group_dims,
                                   view_.array().grid());
  }

  /// Finalizes the TripleSet: snapshots chunk sizes and locations.
  Result<TripleSet> Finish() {
    TripleSet set;
    set.pairs.reserve(pairs_.size());
    for (auto& [key, pair] : pairs_) {
      AVM_RETURN_IF_ERROR(RecordChunk(pair.a, &set));
      AVM_RETURN_IF_ERROR(RecordChunk(pair.b, &set));
      pair.bytes = set.bytes.at(pair.a) + set.bytes.at(pair.b);
      for (ChunkId v : pair.AllViewTargets()) RecordViewChunk(v, &set);
      set.pairs.push_back(std::move(pair));
    }
    return set;
  }

 private:
  const DistributedArray& ArrayOf(MChunkRef ref) const {
    switch (ref.side) {
      case ChunkSide::kLeftBase:
        return view_.left_base();
      case ChunkSide::kRightBase:
        return view_.right_base();
      case ChunkSide::kLeftDelta:
        return *ldelta_;
      case ChunkSide::kRightDelta:
        return *rdelta_;
    }
    return view_.left_base();  // unreachable
  }

  const ChunkGrid& GridOf(MChunkRef ref) const { return ArrayOf(ref).grid(); }

  Status RecordChunk(MChunkRef ref, TripleSet* set) {
    if (set->bytes.count(ref) > 0) return Status::OK();
    const DistributedArray& array = ArrayOf(ref);
    AVM_ASSIGN_OR_RETURN(NodeId node,
                         array.catalog()->NodeOf(array.id(), ref.id));
    set->location[ref] = node;
    set->bytes[ref] = array.catalog()->ChunkBytes(array.id(), ref.id);
    // Residency snapshot for the disk-aware cost terms: a chunk spilled at
    // its holding node pays DiskSeconds on first touch. Planning-time only;
    // the probe never faults the chunk in.
    if (array.cluster()->store(node).IsSpilled(array.id(), ref.id)) {
      set->spilled.insert(ref);
    }
    return Status::OK();
  }

  void RecordViewChunk(ChunkId v, TripleSet* set) {
    if (set->view_location.count(v) > 0 || recorded_missing_.count(v) > 0) {
      return;
    }
    const DistributedArray& va = view_.array();
    auto node = va.catalog()->NodeOf(va.id(), v);
    if (node.ok()) {
      set->view_location[v] = node.value();
      set->view_bytes[v] = va.catalog()->ChunkBytes(va.id(), v);
      if (va.cluster()->store(node.value()).IsSpilled(va.id(), v)) {
        set->view_spilled.insert(v);
      }
    } else {
      recorded_missing_.insert(v);
    }
  }

  const MaterializedView& view_;
  const DistributedArray* ldelta_;
  const DistributedArray* rdelta_;
  std::map<std::pair<MChunkRef, MChunkRef>, JoinPair> pairs_;
  std::set<ChunkId> recorded_missing_;
};

/// Enumerates the *left-array* chunks whose cells can see (under σ around
/// their mapped image) any cell of the right-space chunk box `right_box`:
/// the chunks overlapping the preimage of right_box expanded by σ⁻¹'s
/// bounding box. Correct for any structural mapping.
void ForEachLeftChunkSeeing(const ChunkGrid& left_grid, const Box& left_domain,
                            const DimMapping& mapping,
                            const Shape& reflected_shape, const Box& right_box,
                            const std::function<bool(ChunkId)>& exists,
                            const std::function<void(ChunkId)>& fn) {
  if (reflected_shape.empty()) return;
  const Box shape_box = reflected_shape.BoundingBox();
  Box probe = right_box;
  for (size_t d = 0; d < probe.lo.size(); ++d) {
    probe.lo[d] += shape_box.lo[d];
    probe.hi[d] += shape_box.hi[d];
  }
  const Box preimage = mapping.PreimageBox(probe, left_domain);
  for (size_t d = 0; d < preimage.lo.size(); ++d) {
    if (preimage.lo[d] > preimage.hi[d]) return;  // empty preimage
  }
  left_grid.ForEachChunkOverlapping(preimage, [&](ChunkId p) {
    if (exists(p)) fn(p);
  });
}

Box DomainBoxOf(const ArraySchema& schema) {
  Box box;
  box.lo.resize(schema.num_dims());
  box.hi.resize(schema.num_dims());
  for (size_t d = 0; d < schema.num_dims(); ++d) {
    box.lo[d] = schema.dims()[d].lo;
    box.hi[d] = schema.dims()[d].hi;
  }
  return box;
}

}  // namespace

Result<TripleSet> GenerateTriples(const MaterializedView& view,
                                  const DistributedArray* left_delta,
                                  const DistributedArray* right_delta,
                                  TripleGenCache* cache) {
  const ViewDefinition& def = view.definition();
  if (def.IsSelfJoin() && right_delta != nullptr) {
    return Status::InvalidArgument(
        "a self-join view takes a single (left) delta");
  }
  if (left_delta == nullptr && right_delta == nullptr) {
    return Status::InvalidArgument("no delta provided");
  }
  if (left_delta != nullptr &&
      !left_delta->schema().StructurallyEquals(view.left_base().schema())) {
    return Status::InvalidArgument("left delta schema mismatch");
  }
  if (right_delta != nullptr &&
      !right_delta->schema().StructurallyEquals(view.right_base().schema())) {
    return Status::InvalidArgument("right delta schema mismatch");
  }

  PairCollector collector(view, left_delta, right_delta);
  const Shape reflected = def.shape.Reflected();
  const ChunkGrid& lgrid = view.left_base().grid();
  const ChunkGrid& rgrid = view.right_base().grid();
  const Catalog* catalog = view.left_base().catalog();
  const Box left_domain = DomainBoxOf(view.left_base().schema());

  auto base_right_exists = [&](ChunkId q) {
    return catalog->HasChunk(view.right_base().id(), q);
  };
  auto base_left_exists = [&](ChunkId q) {
    return catalog->HasChunk(view.left_base().id(), q);
  };

  if (def.IsSelfJoin()) {
    const DistributedArray& delta = *left_delta;
    auto delta_exists = [&](ChunkId q) {
      return catalog->HasChunk(delta.id(), q);
    };
    // Identity self-joins over the (necessarily aligned) base grid use the
    // exact chunk footprint: non-convex shapes prune the pairs their
    // bounding box over-approximates. The footprints only depend on the
    // view's shape, so a caller-provided cache persists them across batches.
    TripleGenCache local_cache;
    TripleGenCache* fps = cache != nullptr ? cache : &local_cache;
    if (!fps->initialized && def.mapping.IsIdentity()) {
      AVM_ASSIGN_OR_RETURN(
          ChunkFootprint fp,
          ChunkFootprint::Compute(def.shape, lgrid.extents()));
      fps->footprint = std::move(fp);
      AVM_ASSIGN_OR_RETURN(
          ChunkFootprint rfp,
          ChunkFootprint::Compute(reflected, lgrid.extents()));
      fps->reflected = std::move(rfp);
      fps->initialized = true;
    }
    const std::optional<ChunkFootprint>& footprint = fps->footprint;
    const std::optional<ChunkFootprint>& reflected_footprint = fps->reflected;
    auto partners = [&](ChunkId p, const Shape& shape,
                        const ChunkFootprint* fp,
                        const std::function<bool(ChunkId)>& exists) {
      return fp != nullptr
                 ? EnumerateJoinPartnersExact(lgrid, p, *fp, exists)
                 : EnumerateJoinPartners(lgrid, p, def.mapping, shape, rgrid,
                                         exists);
    };
    for (ChunkId p : catalog->ChunkIdsOf(delta.id())) {
      const MChunkRef pref{ChunkSide::kLeftDelta, p};
      // (1) New cells gain partners from existing cells: kernel(∆p, base q).
      // Base chunks are labeled kLeftBase in a self-join (there is only one
      // base population) so the two directions of a pair dedup onto one
      // co-location/join unit.
      for (ChunkId q : partners(p, def.shape,
                                footprint ? &*footprint : nullptr,
                                base_right_exists)) {
        collector.AddDirection(pref, MChunkRef{ChunkSide::kLeftBase, q});
      }
      // (2) Existing cells gain partners from new cells: kernel(base q, ∆p),
      // where q ranges over the left chunks that can see ∆p under σ —
      // equivalently, the reflected shape's partners of ∆p.
      if (reflected_footprint) {
        for (ChunkId q : partners(p, reflected, &*reflected_footprint,
                                  base_left_exists)) {
          collector.AddDirection(MChunkRef{ChunkSide::kLeftBase, q}, pref);
        }
      } else {
        ForEachLeftChunkSeeing(lgrid, left_domain, def.mapping, reflected,
                               rgrid.ChunkBoxOfId(p), base_left_exists,
                               [&](ChunkId q) {
                                 collector.AddDirection(
                                     MChunkRef{ChunkSide::kLeftBase, q},
                                     pref);
                               });
      }
      // (3) New cells gain partners from new cells: kernel(∆p, ∆q). Every
      // ordered delta pair is covered by iterating p over all delta chunks.
      for (ChunkId q : partners(p, def.shape,
                                footprint ? &*footprint : nullptr,
                                delta_exists)) {
        collector.AddDirection(pref, MChunkRef{ChunkSide::kLeftDelta, q});
      }
    }
  } else {
    // Two-array view: contributions always group by the left array.
    if (left_delta != nullptr) {
      auto rdelta_exists = [&](ChunkId q) {
        return right_delta != nullptr &&
               catalog->HasChunk(right_delta->id(), q);
      };
      for (ChunkId p : catalog->ChunkIdsOf(left_delta->id())) {
        const MChunkRef pref{ChunkSide::kLeftDelta, p};
        // ∆α ./ β
        for (ChunkId q : EnumerateJoinPartners(lgrid, p, def.mapping,
                                               def.shape, rgrid,
                                               base_right_exists)) {
          collector.AddDirection(pref, MChunkRef{ChunkSide::kRightBase, q});
        }
        // ∆α ./ ∆β
        for (ChunkId q : EnumerateJoinPartners(lgrid, p, def.mapping,
                                               def.shape, rgrid,
                                               rdelta_exists)) {
          collector.AddDirection(pref, MChunkRef{ChunkSide::kRightDelta, q});
        }
      }
    }
    if (right_delta != nullptr) {
      // α ./ ∆β: the existing left-array chunks that see the right delta.
      for (ChunkId q : catalog->ChunkIdsOf(right_delta->id())) {
        ForEachLeftChunkSeeing(
            lgrid, left_domain, def.mapping, reflected, rgrid.ChunkBoxOfId(q),
            base_left_exists, [&](ChunkId p) {
              collector.AddDirection(MChunkRef{ChunkSide::kLeftBase, p},
                                     MChunkRef{ChunkSide::kRightDelta, q});
            });
      }
    }
  }
  return collector.Finish();
}

}  // namespace avm
