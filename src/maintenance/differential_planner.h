#pragma once

#include <set>
#include <unordered_map>

#include "cluster/cost_model.h"
#include "common/result.h"
#include "maintenance/makespan_tracker.h"
#include "maintenance/types.h"
#include "view/materialized_view.h"

namespace avm {

/// Output of stage 1. Besides the plan (z join placements, x transfers, and
/// default view homes), it exposes the cost-tracker state and the replica
/// sets T, which stages 2 and 3 consume.
struct DifferentialPlanResult {
  MaintenancePlan plan;
  MakespanTracker tracker;
  /// T[c]: every node that holds a copy of chunk c after the planned
  /// transfers (its origin S_c included).
  std::unordered_map<MChunkRef, std::set<NodeId>, MChunkRefHash> replicas;
};

/// Algorithm 1 — Differential View Computation. A randomized greedy
/// heuristic for the NP-hard stage-1 problem (Appendix A.1): iterate the
/// unique chunk join pairs of U_0 in random order and evaluate every worker
/// as the pair's join site, charging
///   - a transfer of each operand not yet replicated there (billed to the
///     operand's origin S_c, per the MIP/Figure-7 semantics — the printed
///     pseudo-code's line 6 checks only q, but the worked example charges
///     both operands, which is what we implement), and
///   - the join CPU B_pq at the candidate,
/// then commit the node minimizing the global max(ntwk, cpu) makespan.
/// Delta chunks start at the coordinator, whose uplink participates in the
/// makespan.
///
/// The plan's view homes are filled with the no-reassignment defaults
/// (current node, or the view's placement strategy for new chunks); stage 2
/// overwrites them.
Result<DifferentialPlanResult> PlanDifferentialView(
    const MaterializedView& view, const TripleSet& triples, int num_workers,
    const CostModel& cost, const PlannerOptions& options);

}  // namespace avm

