#pragma once

#include <vector>

#include "cluster/cost_model.h"
#include "common/result.h"
#include "maintenance/types.h"

namespace avm {

/// Per-node cost breakdown of a plan under the paper's analytical model.
struct ObjectiveBreakdown {
  /// Seconds of outgoing communication per worker; the last entry is the
  /// coordinator's uplink.
  std::vector<double> ntwk;
  /// Seconds of join computation per worker (coordinator slot always 0).
  std::vector<double> cpu;
  /// Seconds of spill-reload I/O per node — the T_disk term, charged to the
  /// holder of every spilled chunk the plan touches. Informational mirror:
  /// the same seconds are already folded into `ntwk` (reload serializes
  /// with the holder's outgoing I/O), so Makespan() needs no extra lane.
  std::vector<double> disk;

  /// max_k max(ntwk[k], cpu[k]) over the workers — the value of Eq. (1)'s
  /// current-batch term (the coordinator slot is informational only).
  double Makespan() const;
};

/// Evaluates the current-batch term of the MIP objective (Eq. 1, first
/// line) for a complete plan, without executing anything:
///   - every planned transfer charges its sender B_i * T_ntwk,
///   - every join charges its node B_pq * T_cpu,
///   - the merge term charges the join node B_pq * T_ntwk for each triple
///     (p, q, v) whose view home y_v differs from the join node (the MIP's
///     z_pqk * y_vj coupling, with B_pq as the differential-result proxy),
///   - relocating an existing view chunk to a new home charges its current
///     node (an x-transfer),
///   - every spilled chunk appearing as a pair operand charges its holder
///     B_c * T_disk exactly once (the out-of-core reload), as does every
///     spilled existing view chunk the plan merges results into or moves.
/// This is the model the planners optimize and the query integrator's Eq.
/// (3) compares; the executor independently charges *actual* bytes, and the
/// tests check the two agree on method ordering.
Result<ObjectiveBreakdown> EvaluateCurrentBatchObjective(
    const MaintenancePlan& plan, const TripleSet& triples, int num_workers,
    const CostModel& cost, bool include_merge_term = true);

}  // namespace avm

