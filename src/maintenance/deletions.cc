#include "maintenance/deletions.h"

#include <map>
#include <set>
#include <vector>

#include "join/compiled_shape.h"
#include "join/fragment_merge.h"
#include "join/join_kernel.h"
#include "join/pair_enumeration.h"

namespace avm {

namespace {

/// Merges retraction fragments into the view (charging shipping) and
/// returns the affected (view chunk, offset) pairs for identity cleanup.
Status MergeRetractions(
    MaterializedView* view,
    std::map<NodeId, std::map<ChunkId, Chunk>>* fragments_by_node,
    std::set<std::pair<ChunkId, uint64_t>>* touched) {
  Cluster* cluster = view->array().cluster();
  Catalog* catalog = view->array().catalog();
  const ArrayId view_id = view->array().id();
  for (auto& [producer, fragments] : *fragments_by_node) {
    for (auto& [v, fragment] : fragments) {
      fragment.ForEachCellWithOffset(
          [&](uint64_t offset, std::span<const int64_t>,
              std::span<const double>) { touched->insert({v, offset}); });
      auto home_result = catalog->NodeOf(view_id, v);
      const NodeId home =
          home_result.ok() ? home_result.value()
                           : catalog->PlaceByStrategy(
                                 view_id, v, cluster->num_workers());
      if (producer != home) {
        cluster->ChargeNetwork(producer, fragment.SizeBytes());
      }
      AVM_RETURN_IF_ERROR(MergeStateFragment(&view->array(), v, fragment,
                                             view->layout(), home));
    }
  }
  return Status::OK();
}

}  // namespace

Result<DeletionStats> ApplyDeletionBatch(MaterializedView* view,
                                         const SparseArray& deleted_cells) {
  if (view == nullptr) return Status::InvalidArgument("null view");
  const ViewDefinition& def = view->definition();
  if (!def.IsSelfJoin() || !def.mapping.IsIdentity()) {
    return Status::Unimplemented(
        "deletion batches are supported for identity self-join views");
  }
  if (!view->layout().SupportsRetraction()) {
    return Status::FailedPrecondition(
        "deletions require retractable aggregates (COUNT/SUM/AVG); this "
        "view uses MIN/MAX");
  }
  DistributedArray& base = view->left_base();
  Cluster* cluster = base.cluster();
  Catalog* catalog = base.catalog();
  const ChunkGrid& grid = base.grid();
  const AggregateLayout& layout = view->layout();
  const ViewTarget target{&def.group_dims, &view->array().grid()};
  const ClusterClockSnapshot before = ClusterClockSnapshot::Take(*cluster);
  DeletionStats stats;

  // Snapshot the victims with their *current* base values; silently skip
  // coordinates that do not exist.
  SparseArray victims(base.schema());
  {
    Status status = Status::OK();
    CellCoord coord;
    deleted_cells.ForEachCell([&](std::span<const int64_t> c,
                                  std::span<const double>) {
      if (!status.ok()) return;
      coord.assign(c.begin(), c.end());
      auto node = catalog->NodeOf(base.id(), grid.IdOfCell(coord));
      if (!node.ok()) return;
      const ChunkHandle chunk = cluster->store(node.value())
                                    .GetHandle(base.id(), grid.IdOfCell(coord));
      const double* values =
          chunk == nullptr ? nullptr
                           : chunk->GetCell(grid.InChunkOffset(coord));
      if (values == nullptr) return;
      status = victims.Set(coord, {values, base.schema().num_attrs()});
    });
    AVM_RETURN_IF_ERROR(status);
  }
  stats.deleted_cells = victims.NumCells();
  if (stats.deleted_cells == 0) {
    return stats;  // nothing to do
  }

  AVM_ASSIGN_OR_RETURN(
      ChunkFootprint footprint,
      ChunkFootprint::Compute(def.shape, grid.extents()));
  AVM_ASSIGN_OR_RETURN(
      ChunkFootprint reflected,
      ChunkFootprint::Compute(def.shape.Reflected(), grid.extents()));
  auto base_exists = [&](ChunkId q) {
    return catalog->HasChunk(base.id(), q);
  };
  // Both retraction passes run the kernel against the base grid; compile the
  // shape once for all of their chunk pairs.
  AVM_ASSIGN_OR_RETURN(
      std::shared_ptr<const CompiledShape> compiled,
      CompiledShapeCache::Global().Get(def.shape, def.mapping, grid));

  std::map<NodeId, std::map<ChunkId, Chunk>> fragments_by_node;

  // Pass B (before erasure): retract the victims' own left-side
  // contributions — kernel(victims, base incl. victims, -1), evaluated at
  // each base partner's node (the victim snapshot ships from the
  // coordinator).
  {
    Status status = Status::OK();
    victims.ForEachChunk([&](ChunkId m, const Chunk& victim_chunk) {
      if (!status.ok()) return;
      for (ChunkId q :
           EnumerateJoinPartnersExact(grid, m, footprint, base_exists)) {
        auto node = catalog->NodeOf(base.id(), q);
        if (!node.ok()) continue;
        const ChunkHandle right =
            cluster->store(node.value()).GetHandle(base.id(), q);
        if (right == nullptr) {
          status = Status::Internal("base chunk missing from its store");
          return;
        }
        cluster->ChargeNetwork(kCoordinatorNode, victim_chunk.SizeBytes());
        cluster->ChargeJoin(node.value(),
                            victim_chunk.SizeBytes() + right->SizeBytes());
        const RightOperand rop{right.get(), q, &grid};
        status = JoinAggregateChunkPair(victim_chunk, rop, *compiled, layout,
                                        target, /*multiplicity=*/-1,
                                        &fragments_by_node[node.value()]);
        if (!status.ok()) return;
        ++stats.retraction_joins;
      }
    });
    AVM_RETURN_IF_ERROR(status);
  }

  // Erase the victims from their base chunks (dropping emptied chunks).
  {
    Status status = Status::OK();
    victims.ForEachChunk([&](ChunkId m, const Chunk& victim_chunk) {
      if (!status.ok()) return;
      auto node = catalog->NodeOf(base.id(), m);
      if (!node.ok()) {
        status = Status::Internal("victim chunk vanished from the catalog");
        return;
      }
      ChunkStore& store = cluster->store(node.value());
      Chunk* chunk = store.GetMutable(base.id(), m);
      if (chunk == nullptr) {
        status = Status::Internal("victim chunk missing from its store");
        return;
      }
      // Pin-while-mutating: the handle keeps the chunk evict-proof for the
      // duration of the erase (GetHandle never COW-breaks, so it aliases
      // the post-break chunk GetMutable just returned).
      const ChunkHandle pin = store.GetHandle(base.id(), m);
      victim_chunk.ForEachCellWithOffset(
          [&](uint64_t offset, std::span<const int64_t>,
              std::span<const double>) { chunk->EraseCell(offset); });
      if (chunk->empty()) {
        cluster->store(node.value()).Erase(base.id(), m);
        catalog->RemoveChunk(base.id(), m);
      } else {
        // Deletions may drop a dense chunk below the sparsify floor.
        chunk->MaybeAdaptRepresentation(grid, m);
        catalog->SetChunkBytes(base.id(), m, chunk->SizeBytes());
      }
    });
    AVM_RETURN_IF_ERROR(status);
  }

  // Pass A (after erasure): surviving cells retract their deleted partners
  // — kernel(survivor chunks seeing a victim chunk, victims, -1), at the
  // survivor's node.
  {
    Status status = Status::OK();
    victims.ForEachChunk([&](ChunkId m, const Chunk& victim_chunk) {
      if (!status.ok()) return;
      for (ChunkId q :
           EnumerateJoinPartnersExact(grid, m, reflected, base_exists)) {
        auto node = catalog->NodeOf(base.id(), q);
        if (!node.ok()) continue;
        const ChunkHandle left =
            cluster->store(node.value()).GetHandle(base.id(), q);
        if (left == nullptr) {
          status = Status::Internal("base chunk missing from its store");
          return;
        }
        cluster->ChargeNetwork(kCoordinatorNode, victim_chunk.SizeBytes());
        cluster->ChargeJoin(node.value(),
                            victim_chunk.SizeBytes() + left->SizeBytes());
        const RightOperand rop{&victim_chunk, m, &grid};
        status = JoinAggregateChunkPair(*left, rop, *compiled, layout, target,
                                        /*multiplicity=*/-1,
                                        &fragments_by_node[node.value()]);
        if (!status.ok()) return;
        ++stats.retraction_joins;
      }
    });
    AVM_RETURN_IF_ERROR(status);
  }

  // Merge all retractions and clean up view cells whose state returned to
  // the identity (deleted keys and survivors that lost every partner).
  std::set<std::pair<ChunkId, uint64_t>> touched;
  AVM_RETURN_IF_ERROR(MergeRetractions(view, &fragments_by_node, &touched));
  const ArrayId view_id = view->array().id();
  for (const auto& [v, offset] : touched) {
    auto node = catalog->NodeOf(view_id, v);
    if (!node.ok()) continue;
    ChunkStore& store = cluster->store(node.value());
    Chunk* chunk = store.GetMutable(view_id, v);
    if (chunk == nullptr) continue;
    const ChunkHandle pin = store.GetHandle(view_id, v);  // pin-while-mutating
    const double* state = chunk->GetCell(offset);
    if (state != nullptr &&
        layout.IsIdentity({state, layout.num_state_slots()})) {
      chunk->EraseCell(offset);
      ++stats.view_cells_removed;
    }
    if (chunk->empty()) {
      cluster->store(node.value()).Erase(view_id, v);
      catalog->RemoveChunk(view_id, v);
    } else {
      chunk->MaybeAdaptRepresentation(view->array().grid(), v);
      catalog->SetChunkBytes(view_id, v, chunk->SizeBytes());
    }
  }

  stats.maintenance_seconds = before.MakespanSince(*cluster);
  return stats;
}

}  // namespace avm
