#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "array/chunk.h"
#include "array/coords.h"
#include "common/mutex.h"
#include "common/result.h"

namespace avm {

/// Identifier of an array registered in the catalog. Dense, assigned at
/// registration.
using ArrayId = uint32_t;

/// Shared, immutable-by-default reference to a stored chunk. Replicas created
/// during view maintenance alias the same Chunk through handles like this
/// one; the bytes are duplicated only when some store actually mutates its
/// copy (see ChunkStore::GetMutable).
using ChunkHandle = std::shared_ptr<const Chunk>;

namespace chunk_store_internal {
inline std::atomic<bool> g_aliasing_enabled{true};
inline std::atomic<int64_t> g_epoch_pins{0};
/// Process-wide access clock for eviction recency: every store access that
/// touches an entry stamps it with the next tick. A plain counter (not a
/// time source) — the buffer manager's clock hand only compares stamps.
inline std::atomic<uint64_t> g_access_tick{1};
}  // namespace chunk_store_internal

/// Number of live view epochs (src/serve) currently pinning chunk handles,
/// process-wide. While this is nonzero, reader threads may clone handles out
/// of a pinned epoch at any time, so a `use_count() == 1` observation on a
/// store entry is not proof of sole ownership: the count is allowed to be
/// stale the instant it is read. GetMutable/GetOrCreate therefore skip the
/// sole-owner fast path and always deep-copy an existing entry while epochs
/// are live (see the class contract below).
inline int64_t EpochPinsActive() {
  return chunk_store_internal::g_epoch_pins.load(std::memory_order_acquire);
}

/// Called by ViewEpoch's constructor/destructor (one pin per live epoch).
/// Must be invoked on, or synchronized with, the thread that drives store
/// mutation so that a mutation observing zero pins genuinely precedes the
/// epoch's publication. Also mirrored to the store.epochs_live gauge.
void AddEpochPin();
void ReleaseEpochPin();

/// Process-wide switch for PutHandle's aliasing fast path. On (the default),
/// storing a handle is a refcount bump; off, it deep-copies the chunk —
/// the pre-COW behavior, kept switchable so microbench_transfer can measure
/// both modes in one binary. Not for production use.
inline bool ChunkAliasingEnabled() {
  return chunk_store_internal::g_aliasing_enabled.load(
      std::memory_order_relaxed);
}
inline void SetChunkAliasingEnabled(bool enabled) {
  chunk_store_internal::g_aliasing_enabled.store(enabled,
                                                 std::memory_order_relaxed);
}

/// Location of one spilled chunk inside its store's spill file: a byte
/// extent handed out by the backend's allocator. Opaque to the store beyond
/// round-tripping it; length is the serialized (AVMCHK01) size.
struct SpillTicket {
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// What a ChunkStore needs from the out-of-core layer (implemented by
/// src/buffer, which links storage — this interface exists so storage does
/// not link back). One backend instance is bound per store and is immutable
/// after AttachBufferBackend, so the store may call it at any time without
/// further coordination.
///
/// Locking contract, mirroring the rank order kBufferManager(25) <
/// kChunkStore(30) < kSpillFile(35): the spill-I/O entry points are called
/// with the store's mutex HELD (they may lock the spill file, rank above),
/// while the residency notifications are called with NO store mutex held
/// (they lock the buffer manager, rank below).
class BufferBackend {
 public:
  virtual ~BufferBackend() = default;

  /// Appends one serialized chunk to the spill file; returns its extent.
  virtual Result<SpillTicket> WriteSpill(const std::string& bytes) = 0;

  /// Reads back a previously written extent (the full serialized chunk).
  virtual Result<std::string> ReadSpill(const SpillTicket& ticket) = 0;

  /// Returns an extent to the free list (chunk reloaded or erased).
  virtual void FreeSpill(const SpillTicket& ticket) = 0;

  /// A chunk became (or re-became, or changed size while) resident in the
  /// bound store. `stamp` is the entry's shared access stamp; the buffer
  /// manager keeps it in the corresponding clock slot. May trigger eviction
  /// of *other* unpinned chunks to hold the budget — never of this one.
  virtual void NoteResident(ArrayId array, ChunkId chunk, uint64_t bytes,
                            std::shared_ptr<std::atomic<uint64_t>> stamp) = 0;

  /// A resident chunk left the bound store (Erase/EraseArray). Not called
  /// for spill (the manager drives TrySpill and unregisters the slot
  /// itself) nor for spilled entries being erased (no slot exists).
  virtual void NoteDropped(ArrayId array, ChunkId chunk) = 0;
};

/// The physical chunk container of one node: chunks of any array, keyed by
/// (array, chunk id). This models a node's local attached storage in the
/// shared-nothing architecture; a chunk "lives" on node k when k's store
/// holds it and the catalog maps it there. Replicas created during view
/// maintenance are additional entries in other nodes' stores that *alias*
/// the same Chunk — copy-on-write, so moving a chunk is a refcount bump and
/// the bytes are duplicated only when a store mutates its copy.
///
/// Concurrency contract: the chunk *map* is protected by an internal
/// annotated mutex (LockRank::kChunkStore), so concurrent map lookups and
/// handle puts are safe as such. What the lock deliberately does NOT cover
/// is the *chunk data* a Get/GetMutable/GetOrCreate result points at: those
/// escape the critical section by design (mutation happens outside the
/// lock), so mutating entry points still require the chunk to be externally
/// quiesced — in this codebase, the executor's control thread or a parallel
/// phase in which each task owns disjoint chunks. Concurrent *readers of
/// other stores* aliasing the same Chunk are always safe: a COW break
/// replaces this store's handle with a fresh deep copy and never touches
/// the shared original.
///
/// Snapshot serving (src/serve) adds concurrent readers that hold chunk
/// handles *without* touching any store: a published ViewEpoch pins a set of
/// handles, and reader threads may clone them at any moment. That breaks the
/// old use_count()-based sole-ownership test — the count can transiently
/// read 1 on the mutating thread while a reader is acquiring a handle — so
/// while any epoch is live (EpochPinsActive() > 0), GetMutable/GetOrCreate
/// unconditionally deep-copy existing entries before handing out a mutable
/// pointer. Chunks an epoch pinned are thus physically immutable for the
/// epoch's whole lifetime; the sole-owner in-place fast path applies only in
/// the quiesced, epoch-free configuration.
///
/// Out-of-core operation (src/buffer): with a BufferBackend attached, an
/// entry may be *spilled* — its bytes serialized into the backend's spill
/// file and the in-memory Chunk dropped. The entry stays in the map
/// (Contains/SizeBytes still see it; a chunk spilled on node k still lives
/// on node k), and any access that needs the data faults it back in
/// transparently. Pinning is implicit in the handle design: TrySpill only
/// evicts entries whose shared_ptr use_count is exactly 1 under the store
/// lock, and that observation is sound even while epochs are live — an
/// epoch (or any other holder) pinning THIS entry holds a handle to it, so
/// the count reads at least 2 and the count can only be inflated, never
/// deflated, by concurrent readers (cloning requires this lock or an
/// already-counted handle). An outstanding handle to a since-spilled chunk
/// stays valid: the shared_ptr keeps those bytes alive independently of the
/// spill copy.
///
/// Raw-pointer caveat with a backend attached: a `const Chunk*` from Get
/// (or Chunk* / Chunk& from the mutable accessors) is only stable until the
/// next store operation on any thread may trigger eviction. Code that holds
/// a chunk across such a window must hold a ChunkHandle (which is a pin),
/// not a raw pointer.
///
/// Keys are kept in an ordered map for deterministic iteration.
class ChunkStore {
 public:
  using Key = std::pair<ArrayId, ChunkId>;

  ChunkStore() = default;
  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;
  // Non-movable: the internal mutex pins the store (Cluster keeps nodes in
  // a deque for exactly this reason).
  ChunkStore(ChunkStore&&) = delete;
  ChunkStore& operator=(ChunkStore&&) = delete;
  ~ChunkStore();

  /// Stores (or replaces) a chunk by value (fresh data the store becomes the
  /// first owner of). Returns the stored chunk's size in bytes.
  uint64_t Put(ArrayId array, ChunkId chunk,
               Chunk data);  // avm-lint: allow(chunk-by-value)

  /// Stores (or replaces) a chunk by handle: the copy-free replica path.
  /// With aliasing enabled this is a refcount bump; otherwise it deep-copies
  /// (the measurement baseline). Returns the chunk's size in bytes.
  uint64_t PutHandle(ArrayId array, ChunkId chunk, ChunkHandle data);

  /// The chunk if present, else nullptr. Never triggers a copy; faults a
  /// spilled entry back in. The raw pointer is NOT a pin: with a buffer
  /// manager attached and any other thread able to drive eviction, use
  /// GetHandle instead — an unpinned chunk may be spilled (and freed) the
  /// moment this call returns.
  const Chunk* Get(ArrayId array, ChunkId chunk) const;

  /// The owning handle if present, else nullptr — the source side of a
  /// copy-free transfer. The handle keeps the Chunk alive past Erase/Put,
  /// and doubles as an eviction pin while held.
  ChunkHandle GetHandle(ArrayId array, ChunkId chunk) const;

  /// Mutable access with copy-on-write: if this store's entry aliases a
  /// Chunk that other handles still reference, the entry is first replaced
  /// by a deep copy (a "COW break", counted in telemetry), so the mutation
  /// never reaches the other replicas. Returns nullptr if absent. Any
  /// previously obtained raw pointer or handle for this key keeps observing
  /// the pre-break chunk.
  ///
  /// Pin-while-mutating: with a buffer manager attached and any other
  /// thread able to drive eviction, the caller must take a GetHandle pin
  /// for this key and hold it for the duration of the mutation — the
  /// eviction sweep treats use_count() == 1 as proof that nobody is
  /// reading OR WRITING the buffers it is about to serialize. GetHandle
  /// never COW-breaks, so taking the pin after this call aliases exactly
  /// the chunk returned here.
  Chunk* GetMutable(ArrayId array, ChunkId chunk);

  /// The chunk, creating an empty one with the given layout if absent.
  /// Applies the same copy-on-write rule as GetMutable when the existing
  /// entry is shared, and the same pin-while-mutating rule under a buffer
  /// manager.
  Chunk& GetOrCreate(ArrayId array, ChunkId chunk, size_t num_dims,
                     size_t num_attrs);

  /// True if the entry exists, resident or spilled. Never faults anything
  /// in — the presence test for code that must not touch the bytes.
  bool Contains(ArrayId array, ChunkId chunk) const;

  /// True if the entry shares its Chunk with at least one other handle
  /// (another store's entry or an outstanding ChunkHandle). A spilled entry
  /// is by construction unshared: false.
  bool IsAliased(ArrayId array, ChunkId chunk) const;

  /// Drops the chunk; true if it was present. Dropping a primary copy is the
  /// caller's responsibility to coordinate with the catalog. The bytes are
  /// freed only when the last aliasing handle goes away; a spilled entry's
  /// extent is returned to the spill file's free list.
  bool Erase(ArrayId array, ChunkId chunk);

  /// Number of chunks held (all arrays), resident and spilled.
  size_t NumChunks() const {
    MutexLock lock(mu_);
    return chunks_.size();
  }

  /// Total bytes held (all arrays). Aliased replicas count in full on every
  /// store holding them, and spilled entries count at their spill-time
  /// logical size: this is the *logical* residency the simulated cost model
  /// charges for, not host RSS.
  uint64_t SizeBytes() const;

  /// Resident chunks and *physical* buffer bytes split by representation,
  /// plus the spilled remainder. The sparse/dense split covers resident
  /// entries only (actual footprints, PhysicalSizeBytes — the quantity the
  /// store.resident_{sparse,dense}_bytes gauges report); spilled_bytes is
  /// serialized on-disk size.
  struct FormatResidency {
    size_t sparse_chunks = 0;
    size_t dense_chunks = 0;
    uint64_t sparse_bytes = 0;
    uint64_t dense_bytes = 0;
    size_t spilled_chunks = 0;
    uint64_t spilled_bytes = 0;
  };
  FormatResidency ResidencyByFormat() const;

  /// Invokes fn(array, chunk_id, chunk) for every stored chunk in key order.
  /// Iterates over a snapshot of the entries taken under the lock, with fn
  /// invoked outside it, so fn may call back into this store. Faults every
  /// spilled entry in first (the snapshot pins the whole store — callers
  /// that only need keys should use ForEachKey).
  void ForEach(const std::function<void(ArrayId, ChunkId, const Chunk&)>& fn)
      const AVM_EXCLUDES(mu_);

  /// Invokes fn(array, chunk_id) for every entry in key order, resident or
  /// spilled, over a key snapshot. Never faults anything in.
  void ForEachKey(const std::function<void(ArrayId, ChunkId)>& fn) const
      AVM_EXCLUDES(mu_);

  /// Removes every chunk belonging to `array`; returns how many were dropped.
  size_t EraseArray(ArrayId array);

  // --- Out-of-core hooks (src/buffer) --------------------------------------

  /// A resident entry at attach time, reported so the buffer manager can
  /// seed its clock ring without holding the store lock.
  struct ResidentChunkInfo {
    ArrayId array = 0;
    ChunkId chunk = 0;
    uint64_t bytes = 0;  // PhysicalSizeBytes
    std::shared_ptr<std::atomic<uint64_t>> stamp;
  };

  /// Binds `backend` (not owned; must outlive the binding) and creates
  /// access stamps for the current entries. Returns one record per resident
  /// chunk. At most one backend may be attached at a time; attach/detach
  /// happen on the control thread while no spills are in flight.
  std::vector<ResidentChunkInfo> AttachBufferBackend(BufferBackend* backend);

  /// Faults every spilled entry back in, drops the stamps, and unbinds the
  /// backend. After this the store is an ordinary in-memory store again.
  void DetachBufferBackend();

  /// True if the entry exists and its bytes currently live in the spill
  /// file. The planner's residency probe — never faults in.
  bool IsSpilled(ArrayId array, ChunkId chunk) const;

  /// If the entry is resident, writes its current PhysicalSizeBytes to
  /// `bytes` and returns true; false if absent or spilled. Never faults in —
  /// the buffer manager's resampling probe (in-place mutation through
  /// GetMutable can change a chunk's footprint without the manager seeing
  /// a notification; Rebalance uses this to catch up).
  bool PeekResidentBytes(ArrayId array, ChunkId chunk, uint64_t* bytes) const;

  /// Attempts to evict one entry: serialize, write to the backend, drop the
  /// in-memory chunk. Returns the physical bytes freed, or 0 if the entry
  /// is absent, already spilled, or pinned (use_count > 1 — some handle,
  /// replica, or live epoch still references it). Called by the buffer
  /// manager, typically under its own lock (rank below this store's).
  uint64_t TrySpill(ArrayId array, ChunkId chunk);

  /// Debug structural audit: every entry holds a live chunk that passes its
  /// internal row-storage/index contract, or a well-formed spill ticket.
  /// Aliased replicas are legal (they are the point of the handle design);
  /// each shared Chunk is still checked from every store referencing it.
  /// Geometry is not checked here (a store holds chunks of many arrays;
  /// pass the grid at the call sites that have it). Violations fire
  /// AVM_CHECK; O(total resident cells). Never faults spilled entries in.
  void CheckInvariants() const;

 private:
  /// One slot of the map: a resident chunk, or (with a backend attached) a
  /// ticket for its serialized bytes. Exactly one of `chunk` / a nonempty
  /// ticket is active; `spilled_logical_bytes` preserves SizeBytes across
  /// the gap so logical residency accounting never dips.
  struct Entry {
    std::shared_ptr<Chunk> chunk;
    SpillTicket ticket;
    uint64_t spilled_logical_bytes = 0;
    std::shared_ptr<std::atomic<uint64_t>> stamp;

    bool spilled() const { return chunk == nullptr; }
  };

  /// Deferred NoteResident: reload/insert happens under mu_, but the buffer
  /// manager's lock ranks below it, so the notification is delivered by the
  /// public entry points after unlocking.
  struct ResidencyNote {
    BufferBackend* backend = nullptr;
    ArrayId array = 0;
    ChunkId chunk = 0;
    uint64_t bytes = 0;
    std::shared_ptr<std::atomic<uint64_t>> stamp;
  };
  static void Deliver(const ResidencyNote& note);

  /// Stamps the entry with the next global access tick (no-op without a
  /// backend — stamps exist only while one is attached).
  void TouchLocked(Entry& entry) const AVM_REQUIRES(mu_);

  /// Reloads a spilled entry's chunk from the backend (AVM_CHECK on I/O or
  /// format failure — the file is ours) and queues the NoteResident. No-op
  /// for resident entries.
  void FaultInLocked(const Key& key, Entry& entry, ResidencyNote* note) const
      AVM_REQUIRES(mu_);

  /// Protects the map (entries and their handle slots), not the pointed-to
  /// chunk bytes — see the class concurrency contract.
  mutable Mutex mu_{"ChunkStore.mu", LockRank::kChunkStore};

  /// Entries are non-const internally; Get/GetHandle project constness out.
  /// Every stored Chunk was created by a ChunkStore via make_shared<Chunk>
  /// (never from a genuinely const object), so PutHandle's
  /// const_pointer_cast back to the mutable type is sound. Mutable because
  /// const accessors fault spilled entries back in.
  mutable std::map<Key, Entry> chunks_ AVM_GUARDED_BY(mu_);

  /// The bound out-of-core backend, or null for a plain in-memory store.
  BufferBackend* backend_ AVM_GUARDED_BY(mu_) = nullptr;
};

}  // namespace avm
