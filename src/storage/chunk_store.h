#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "array/chunk.h"
#include "array/coords.h"
#include "common/result.h"

namespace avm {

/// Identifier of an array registered in the catalog. Dense, assigned at
/// registration.
using ArrayId = uint32_t;

/// The physical chunk container of one node: chunks of any array, keyed by
/// (array, chunk id). This models a node's local attached storage in the
/// shared-nothing architecture; a chunk "lives" on node k when k's store
/// holds it and the catalog maps it there. Replicas created during view
/// maintenance are additional copies in other nodes' stores.
///
/// Keys are kept in an ordered map for deterministic iteration.
class ChunkStore {
 public:
  using Key = std::pair<ArrayId, ChunkId>;

  ChunkStore() = default;
  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;
  ChunkStore(ChunkStore&&) = default;
  ChunkStore& operator=(ChunkStore&&) = default;

  /// Stores (or replaces) a chunk. Returns the stored chunk's size in bytes.
  uint64_t Put(ArrayId array, ChunkId chunk, Chunk data);

  /// The chunk if present, else nullptr.
  const Chunk* Get(ArrayId array, ChunkId chunk) const;
  Chunk* GetMutable(ArrayId array, ChunkId chunk);

  /// The chunk, creating an empty one with the given layout if absent.
  Chunk& GetOrCreate(ArrayId array, ChunkId chunk, size_t num_dims,
                     size_t num_attrs);

  bool Contains(ArrayId array, ChunkId chunk) const;

  /// Drops the chunk; true if it was present. Dropping a primary copy is the
  /// caller's responsibility to coordinate with the catalog.
  bool Erase(ArrayId array, ChunkId chunk);

  /// Number of chunks held (all arrays).
  size_t NumChunks() const { return chunks_.size(); }

  /// Total bytes held (all arrays).
  uint64_t SizeBytes() const;

  /// Invokes fn(array, chunk_id, chunk) for every stored chunk in key order.
  void ForEach(const std::function<void(ArrayId, ChunkId, const Chunk&)>& fn)
      const;

  /// Removes every chunk belonging to `array`; returns how many were dropped.
  size_t EraseArray(ArrayId array);

  /// Debug structural audit: every stored chunk passes its internal
  /// row-storage/index contract. Geometry is not checked here (a store
  /// holds chunks of many arrays; pass the grid at the call sites that have
  /// it). Violations fire AVM_CHECK; O(total cells).
  void CheckInvariants() const;

 private:
  std::map<Key, Chunk> chunks_;
};

}  // namespace avm

